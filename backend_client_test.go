package seedb

import (
	"context"
	"strings"
	"testing"

	"seedb/internal/sqldriver"
)

// newSQLClient builds one embedded client holding data and a second
// client reaching the same data through the database/sql backend.
func newSQLClient(t *testing.T) (*Client, *Client) {
	t.Helper()
	embedded := New()
	if err := embedded.LoadDatasetRows("census", ColumnLayout, 2000); err != nil {
		t.Fatal(err)
	}
	external := NewWithBackend(NewSQLBackend(sqldriver.Open(embedded.DB()), SQLBackendOptions{}))
	return embedded, external
}

func TestClientWithSQLBackend(t *testing.T) {
	embedded, external := newSQLClient(t)
	if external.DB() != nil {
		t.Error("external client must not expose an embedded DB")
	}
	if external.Backend().Name() != "sql" {
		t.Errorf("backend name = %q", external.Backend().Name())
	}

	ctx := context.Background()
	req := Request{Table: "census", TargetWhere: "marital = 'Unmarried'"}
	opts := Options{K: 3, ScanParallelism: 1}
	want, err := embedded.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := external.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Recommendations) != len(want.Recommendations) {
		t.Fatalf("recommendations = %d, want %d", len(got.Recommendations), len(want.Recommendations))
	}
	for i := range want.Recommendations {
		if got.Recommendations[i].View != want.Recommendations[i].View {
			t.Errorf("rank %d: %v vs %v", i+1,
				got.Recommendations[i].View, want.Recommendations[i].View)
		}
	}
	if got.Metrics.VectorizedQueries != 0 {
		t.Errorf("sql backend cannot vectorize: %+v", got.Metrics)
	}

	// Raw SQL routes through the backend too.
	res, err := external.Query("SELECT COUNT(*) FROM census")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 2000 {
		t.Errorf("COUNT(*) = %d", n)
	}
}

func TestExternalClientGuardsEmbeddedOps(t *testing.T) {
	_, external := newSQLClient(t)
	if err := external.LoadDataset("census", ColumnLayout); err == nil ||
		!strings.Contains(err.Error(), "NewWithBackend") {
		t.Errorf("LoadDataset guard: %v", err)
	}
	if err := external.CreateTable("t", nil, ColumnLayout); err == nil {
		t.Error("CreateTable guard missing")
	}
	schema, err := NewSchema(Column{Name: "a", Type: TypeString})
	if err != nil {
		t.Fatal(err)
	}
	if err := external.LoadCSV("t", schema, ColumnLayout, strings.NewReader("a\nx\n")); err == nil {
		t.Error("LoadCSV guard missing")
	}
}
