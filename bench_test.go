// Benchmarks regenerating every table and figure of the SeeDB paper's
// evaluation. Each benchmark wraps one experiment from internal/bench at
// quick scale and reports headline figures (speedups, accuracies, AUROC)
// as custom metrics. Run the full harness with real output tables via:
//
//	go run ./cmd/seedb-bench -all
//
// and at the paper's Table 1 dataset sizes via:
//
//	go run ./cmd/seedb-bench -all -paperscale
package seedb

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"seedb/internal/bench"
)

// benchConfig is the CI-friendly configuration used by the testing.B
// targets.
func benchConfig() bench.Config {
	return bench.Config{Quick: true, Runs: 2, Seed: 1}
}

// runExperiment executes one experiment b.N times, keeping the tables of
// the final iteration.
func runExperiment(b *testing.B, id string) []*bench.Table {
	b.Helper()
	exp, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables []*bench.Table
	for i := 0; i < b.N; i++ {
		tables, err = exp.Run(context.Background(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		for _, t := range tables {
			b.Log("\n" + t.String())
		}
	}
	return tables
}

// cellFloat parses a numeric table cell ("0.903", "12.5x", "85%").
func cellFloat(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// BenchmarkTable1DatasetInventory regenerates Table 1 (dataset shapes).
func BenchmarkTable1DatasetInventory(b *testing.B) {
	tables := runExperiment(b, "table1")
	b.ReportMetric(float64(len(tables[0].Rows)), "datasets")
}

// BenchmarkFigure5Overall regenerates Figures 5a/5b: NO_OPT vs SHARING vs
// COMB vs COMB_EARLY on the four real datasets, both stores. The metric
// reported is the best total gain observed (paper: 300x ROW / 30x COL at
// full scale).
func BenchmarkFigure5Overall(b *testing.B) {
	tables := runExperiment(b, "fig5")
	best := 0.0
	for _, t := range tables {
		for _, row := range t.Rows {
			if v, ok := cellFloat(row[len(row)-1]); ok && v > best {
				best = v
			}
		}
	}
	b.ReportMetric(best, "max-total-gain-x")
}

// BenchmarkFigure6aLatencyVsRows regenerates Figure 6a.
func BenchmarkFigure6aLatencyVsRows(b *testing.B) {
	tables := runExperiment(b, "fig6")
	// Report the COL-over-ROW advantage at the largest size (paper ≈5x).
	t := tables[0]
	if v, ok := cellFloat(t.Rows[len(t.Rows)-1][3]); ok {
		b.ReportMetric(v, "col-speedup-x")
	}
}

// BenchmarkFigure6bLatencyVsViews regenerates Figure 6b.
func BenchmarkFigure6bLatencyVsViews(b *testing.B) {
	tables := runExperiment(b, "fig6")
	b.ReportMetric(float64(len(tables[1].Rows)), "view-points")
}

// BenchmarkFigure7aMultipleAggregates regenerates Figure 7a (latency vs
// nagg; paper: ~4x ROW / ~3x COL from combining aggregates).
func BenchmarkFigure7aMultipleAggregates(b *testing.B) {
	tables := runExperiment(b, "fig7")
	t := tables[0]
	first, ok1 := cellFloat(strings.TrimSuffix(strings.TrimSuffix(t.Rows[0][1], "ms"), "s"))
	last, ok2 := cellFloat(strings.TrimSuffix(strings.TrimSuffix(t.Rows[len(t.Rows)-1][1], "ms"), "s"))
	if ok1 && ok2 && last > 0 {
		b.ReportMetric(first/last, "row-nagg-gain-x")
	}
}

// BenchmarkFigure7bParallelism regenerates Figure 7b (latency vs parallel
// query count; paper: optimum ≈ number of cores).
func BenchmarkFigure7bParallelism(b *testing.B) {
	tables := runExperiment(b, "fig7")
	b.ReportMetric(float64(len(tables[1].Rows)), "parallelism-points")
}

// BenchmarkFigure8aGroupByMemory regenerates Figure 8a (latency vs ngb
// under the memory budget).
func BenchmarkFigure8aGroupByMemory(b *testing.B) {
	tables := runExperiment(b, "fig8")
	b.ReportMetric(float64(len(tables[0].Rows)), "ngb-points")
}

// BenchmarkFigure8bBinPackingVsMaxGB regenerates Figure 8b (BP vs MAX_GB;
// paper: ~2.5x on ROW).
func BenchmarkFigure8bBinPackingVsMaxGB(b *testing.B) {
	tables := runExperiment(b, "fig8")
	b.ReportMetric(float64(len(tables[1].Rows)), "methods")
}

// BenchmarkFigure9AllSharing regenerates Figures 9a/9b (all sharing
// optimizations; paper: up to 40x ROW / 6x COL).
func BenchmarkFigure9AllSharing(b *testing.B) {
	tables := runExperiment(b, "fig9")
	best := 0.0
	for _, t := range tables {
		for _, row := range t.Rows {
			if v, ok := cellFloat(row[3]); ok && v > best {
				best = v
			}
		}
	}
	b.ReportMetric(best, "max-sharing-gain-x")
}

// BenchmarkFigure10UtilityDistribution regenerates Figures 10a/10b (the
// utility distributions whose Δk structure drives pruning quality).
func BenchmarkFigure10UtilityDistribution(b *testing.B) {
	tables := runExperiment(b, "fig10")
	b.ReportMetric(float64(len(tables)), "datasets")
}

// BenchmarkFigure11BankQuality regenerates Figures 11a/11b (BANK pruning
// accuracy and utility distance; paper: CI/MAB ≥75% accuracy, near-zero
// utility distance).
func BenchmarkFigure11BankQuality(b *testing.B) {
	tables := runExperiment(b, "fig11")
	// Report CI accuracy at the largest k.
	t := tables[0]
	if v, ok := cellFloat(t.Rows[len(t.Rows)-1][1]); ok {
		b.ReportMetric(v, "ci-accuracy")
	}
}

// BenchmarkFigure12DiabetesQuality regenerates Figures 12a/12b.
func BenchmarkFigure12DiabetesQuality(b *testing.B) {
	tables := runExperiment(b, "fig12")
	t := tables[0]
	if v, ok := cellFloat(t.Rows[len(t.Rows)-1][2]); ok {
		b.ReportMetric(v, "mab-accuracy")
	}
}

// BenchmarkFigure13PruningLatency regenerates Figures 13a/13b (pruning
// latency reduction; paper: ≥50% for k≤15, ~90% at small k).
func BenchmarkFigure13PruningLatency(b *testing.B) {
	tables := runExperiment(b, "fig13")
	best := 0.0
	for _, t := range tables {
		for _, row := range t.Rows {
			if v, ok := cellFloat(row[3]); ok && v > best {
				best = v
			}
		}
	}
	b.ReportMetric(best, "max-ci-reduction-pct")
}

// BenchmarkFigure15ROC regenerates Figures 15a/15b (deviation metric vs
// simulated expert ground truth; paper: AUROC 0.903).
func BenchmarkFigure15ROC(b *testing.B) {
	tables := runExperiment(b, "fig15")
	title := tables[1].Title
	if idx := strings.Index(title, "AUROC "); idx >= 0 {
		if v, ok := cellFloat(title[idx+6:]); ok {
			b.ReportMetric(v, "auroc")
		}
	}
}

// BenchmarkTable2Bookmarking regenerates Table 2 (SEEDB vs MANUAL; paper:
// ≈3x bookmark rate).
func BenchmarkTable2Bookmarking(b *testing.B) {
	tables := runExperiment(b, "table2")
	var seedbRate, manualRate float64
	for _, row := range tables[0].Rows {
		if row[0] == "pooled" {
			if v, ok := cellFloat(row[4]); ok {
				if row[1] == "SEEDB" {
					seedbRate = v
				} else {
					manualRate = v
				}
			}
		}
	}
	if manualRate > 0 {
		b.ReportMetric(seedbRate/manualRate, "bookmark-rate-ratio")
	}
}

// BenchmarkAblationDistanceFunctions measures top-k agreement between EMD
// and the other distance functions (the TR's "comparable results" claim).
func BenchmarkAblationDistanceFunctions(b *testing.B) {
	exp := bench.AblationDistance
	var tables []*bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = exp(context.Background(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 1.0
	for _, row := range tables[0].Rows {
		if v, ok := cellFloat(row[1]); ok && v < worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "min-topk-agreement")
}

// BenchmarkAblationPhaseCount sweeps the phased framework's phase count.
func BenchmarkAblationPhaseCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationPhases(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDelta sweeps the CI pruning failure probability δ.
func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationDelta(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEarlyReturn quantifies COMB_EARLY's approximation
// error against COMB.
func BenchmarkAblationEarlyReturn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationEarlyError(context.Background(), benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
