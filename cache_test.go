package seedb

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"seedb/internal/sqldb"
)

// newCachedCensusClient loads a small census table into a client with a
// shared result cache installed.
func newCachedCensusClient(t *testing.T) *Client {
	t.Helper()
	client := New()
	if err := client.LoadDatasetRows("census", ColumnLayout, 4000); err != nil {
		t.Fatal(err)
	}
	client.EnableCache(0)
	return client
}

func TestWarmRecommendIssuesZeroQueries(t *testing.T) {
	client := newCachedCensusClient(t)
	req := Request{Table: "census", TargetWhere: "marital = 'Unmarried'"}
	opts := Options{K: 5, EnableCache: true}

	cold, err := client.Recommend(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Metrics.QueriesExecuted == 0 {
		t.Fatal("cold run executed no queries")
	}
	warm, err := client.Recommend(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics.QueriesExecuted != 0 {
		t.Fatalf("second identical request executed %d queries, want 0", warm.Metrics.QueriesExecuted)
	}
	if !warm.Metrics.ServedFromCache {
		t.Fatal("second identical request not served from cache")
	}
	if st := client.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache stats after warm hit: %+v", st)
	}
}

func TestConcurrentRecommendSingleflight(t *testing.T) {
	client := newCachedCensusClient(t)
	req := Request{Table: "census", TargetWhere: "marital = 'Unmarried'"}
	opts := Options{K: 5, EnableCache: true}

	const callers = 12
	var wg sync.WaitGroup
	results := make([]*Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.Recommend(context.Background(), req, opts)
		}(i)
	}
	wg.Wait()

	totalExecuted, coldRuns := 0, 0
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		totalExecuted += results[i].Metrics.QueriesExecuted
		if !results[i].Metrics.ServedFromCache {
			coldRuns++
		}
	}
	// Singleflight collapses every concurrent identical request into one
	// execution; all callers agree on the answer.
	if coldRuns != 1 {
		t.Errorf("%d callers computed, want exactly 1", coldRuns)
	}
	solo := New()
	if err := solo.LoadDatasetRows("census", ColumnLayout, 4000); err != nil {
		t.Fatal(err)
	}
	ref, err := solo.Recommend(context.Background(), req, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if totalExecuted != ref.Metrics.QueriesExecuted {
		t.Errorf("%d concurrent callers executed %d queries total, want one run's worth (%d)",
			callers, totalExecuted, ref.Metrics.QueriesExecuted)
	}
	for i := 1; i < callers; i++ {
		if len(results[i].Recommendations) != len(results[0].Recommendations) {
			t.Fatalf("caller %d returned %d recs, caller 0 %d", i, len(results[i].Recommendations), len(results[0].Recommendations))
		}
		for j := range results[i].Recommendations {
			if results[i].Recommendations[j].View != results[0].Recommendations[j].View ||
				results[i].Recommendations[j].Utility != results[0].Recommendations[j].Utility {
				t.Fatalf("caller %d disagrees at rank %d", i, j)
			}
		}
	}
}

func TestReloadInvalidatesCache(t *testing.T) {
	client := New()
	client.EnableCache(0)
	schema, err := NewSchema(
		Column{Name: "grp", Type: TypeString},
		Column{Name: "flag", Type: TypeString},
		Column{Name: "val", Type: TypeFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	load := func(scale float64) {
		t.Helper()
		if err := client.CreateTable("facts", schema, ColumnLayout); err != nil {
			t.Fatal(err)
		}
		tab, _ := client.DB().Table("facts")
		for i := 0; i < 400; i++ {
			grp := fmt.Sprintf("g%d", i%4)
			flag := "no"
			if i%2 == 0 {
				flag = "yes"
			}
			val := float64(i % 10)
			if flag == "yes" && i%4 == 0 {
				val *= scale // the signal the recommendation should surface
			}
			if err := tab.AppendRow([]Value{Str(grp), Str(flag), Float(val)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	load(1)
	req := Request{Table: "facts", TargetWhere: "flag = 'yes'"}
	opts := Options{K: 1, EnableCache: true}
	before, err := client.Recommend(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Reload the table with different data: drop + recreate + reinsert.
	if err := client.DB().DropTable("facts"); err != nil {
		t.Fatal(err)
	}
	load(50)
	after, err := client.Recommend(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if after.Metrics.ServedFromCache || after.Metrics.QueriesExecuted == 0 {
		t.Fatalf("request after reload served stale cache: %+v", after.Metrics)
	}
	// The reloaded data has a planted deviation the original lacked; a
	// stale answer would keep the old utility.
	if after.Recommendations[0].Utility == before.Recommendations[0].Utility {
		t.Fatal("post-reload result identical to pre-reload result: stale data served")
	}

	// And the fresh answer matches a cache-free client over the same data.
	plain := New()
	if err := plain.CreateTable("facts", schema, ColumnLayout); err != nil {
		t.Fatal(err)
	}
	tab, _ := plain.DB().Table("facts")
	cached, _ := client.DB().Table("facts")
	row := make([]Value, 3)
	err = cached.ScanRange(0, cached.NumRows(), nil, func(rv sqldb.RowView) error {
		for i := range row {
			row[i] = rv.Value(i)
		}
		return tab.AppendRow(row)
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Recommend(context.Background(), req, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after.Recommendations[0].Utility != want.Recommendations[0].Utility {
		t.Fatalf("post-reload utility %v, want %v", after.Recommendations[0].Utility, want.Recommendations[0].Utility)
	}
}
