// Command seedb-bench drives the experiment harness that regenerates
// every table and figure of the SeeDB paper's evaluation. It prints the
// same rows/series the paper reports, annotated with the paper's expected
// shapes, and can write the output to a file for EXPERIMENTS.md.
//
// Examples:
//
//	seedb-bench -all                 # full suite at default (laptop) scale
//	seedb-bench -all -quick          # CI-friendly reduced scale
//	seedb-bench -exp fig5            # one experiment
//	seedb-bench -all -paperscale     # Table 1 dataset sizes (hours)
//	seedb-bench -list                # list experiment ids
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"seedb/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seedb-bench:", err)
		os.Exit(1)
	}
}

// writeJSON writes v as indented JSON to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run() error {
	var (
		all          = flag.Bool("all", false, "run every experiment")
		expID        = flag.String("exp", "", "run one experiment by id (see -list)")
		list         = flag.Bool("list", false, "list experiments")
		quick        = flag.Bool("quick", false, "reduced datasets and sweeps")
		paperScale   = flag.Bool("paperscale", false, "use Table 1 dataset sizes (very slow)")
		runs         = flag.Int("runs", 0, "repetitions for quality experiments (default 5; paper uses 20)")
		seed         = flag.Int64("seed", 1, "base random seed")
		outPath      = flag.String("o", "", "also write output to this file")
		cacheJSON    = flag.String("cachejson", "", "run the cache experiment and write its datapoint to this JSON file")
		parallelJSON = flag.String("paralleljson", "", "run the parallel-executor experiment and write its datapoint to this JSON file")
		filterJSON   = flag.String("filterjson", "", "run the selection-kernel filter experiment and write its report to this JSON file")
		shardJSON    = flag.String("shardjson", "", "run the shard-router scaling experiment and write its report to this JSON file")
		loadJSON     = flag.String("loadjson", "", "run the mixed-workload load replay and write its report to this JSON file")
		timeout      = flag.Duration("timeout", 4*time.Hour, "overall timeout")
	)
	flag.Parse()

	if *cacheJSON != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		dp, err := bench.MeasureCache(ctx, bench.Config{Quick: *quick, PaperScale: *paperScale, Seed: *seed})
		if err != nil {
			return err
		}
		if err := writeJSON(*cacheJSON, dp); err != nil {
			return err
		}
		fmt.Printf("cache datapoint: cold %.2fms, warm %.2fms (%.1fx), query latency p50/p95/p99 %.2f/%.2f/%.2fms over %d queries, wrote %s\n",
			dp.ColdMS, dp.WarmMS, dp.Speedup,
			dp.QueryLatency.P50MS, dp.QueryLatency.P95MS, dp.QueryLatency.P99MS, dp.QueryLatency.Count, *cacheJSON)
		return nil
	}

	if *parallelJSON != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		dp, err := bench.MeasureParallel(ctx, bench.Config{Quick: *quick, PaperScale: *paperScale, Seed: *seed})
		if err != nil {
			return err
		}
		if err := writeJSON(*parallelJSON, dp); err != nil {
			return err
		}
		fmt.Printf("parallel datapoint: serial %.2fms, vectorized %.2fms (%.1fx at %d workers), query latency p50/p95/p99 %.2f/%.2f/%.2fms, wrote %s\n",
			dp.SerialMS, dp.ParallelMS, dp.Speedup, dp.ScanWorkers,
			dp.QueryLatency.P50MS, dp.QueryLatency.P95MS, dp.QueryLatency.P99MS, *parallelJSON)
		return nil
	}

	if *filterJSON != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		rep, err := bench.MeasureFilter(ctx, bench.Config{Quick: *quick, PaperScale: *paperScale, Seed: *seed})
		if err != nil {
			return err
		}
		if err := writeJSON(*filterJSON, rep); err != nil {
			return err
		}
		best := rep.Points[0]
		fmt.Printf("filter datapoint (%.0f%% selectivity): closure %.2fms, kernels %.2fms (%.1fx; %.1fx vs serial), kernel latency p50/p95/p99 %.2f/%.2f/%.2fms, wrote %s\n",
			best.Selectivity*100, best.BaselineMS, best.KernelMS, best.Speedup, best.SpeedupVsSerial,
			rep.KernelLatency.P50MS, rep.KernelLatency.P95MS, rep.KernelLatency.P99MS, *filterJSON)
		return nil
	}

	if *shardJSON != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		rep, err := bench.MeasureShard(ctx, bench.Config{Quick: *quick, PaperScale: *paperScale, Seed: *seed})
		if err != nil {
			return err
		}
		if err := writeJSON(*shardJSON, rep); err != nil {
			return err
		}
		last := rep.Points[len(rep.Points)-1]
		fmt.Printf("shard curve (GOMAXPROCS=%d): 1 shard %.2fms → %d shards %.2fms (%.2fx), child latency p50/p95/p99 %.2f/%.2f/%.2fms over %d partials, wrote %s\n",
			rep.GOMAXPROCS, rep.Points[0].ColdMS, last.Shards, last.ColdMS, last.Speedup,
			rep.ShardPartialLatency.P50MS, rep.ShardPartialLatency.P95MS, rep.ShardPartialLatency.P99MS,
			rep.ShardPartialLatency.Count, *shardJSON)
		if len(rep.Hedge) == 2 {
			fmt.Printf("hedging vs one slow child: straggler %.2fms → %.2fms (%d of %d partials hedged, %d wins)\n",
				rep.Hedge[0].StragglerMS, rep.Hedge[1].StragglerMS,
				rep.Hedge[1].HedgedPartials, rep.Hedge[1].ShardFanout, rep.Hedge[1].HedgeWins)
		}
		return nil
	}

	if *loadJSON != "" {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		rep, err := bench.MeasureLoad(ctx, bench.Config{Quick: *quick, PaperScale: *paperScale, Seed: *seed})
		if err != nil {
			return err
		}
		if err := writeJSON(*loadJSON, rep); err != nil {
			return err
		}
		rec, raw := rep.Classes["recommend"], rep.Classes["query"]
		fmt.Printf("load replay: %d rows, %d users, %.0fs: %.1f req/s total; recommend p50/p95/p99 %.2f/%.2f/%.2fms, query p50/p95/p99 %.2f/%.2f/%.2fms, %d queries (match=%v), wrote %s\n",
			rep.RowsLoaded, rep.Users, rep.DurationS, rep.ThroughputRPS,
			rec.P50MS, rec.P95MS, rec.P99MS, raw.P50MS, raw.P95MS, raw.P99MS,
			rep.ServerQueriesDelta, rep.QueriesMatch, *loadJSON)
		// The report doubles as the SLO regression gate: a malformed or
		// mismatched run fails the command (and CI with it).
		return rep.Validate()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Name)
		}
		return nil
	}

	cfg := bench.Config{Quick: *quick, PaperScale: *paperScale, Runs: *runs, Seed: *seed}
	var experiments []bench.Experiment
	switch {
	case *all:
		experiments = bench.All()
	case *expID != "":
		e, err := bench.ByID(*expID)
		if err != nil {
			return err
		}
		experiments = []bench.Experiment{e}
	default:
		flag.Usage()
		return fmt.Errorf("need -all, -exp or -list")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	for _, e := range experiments {
		fmt.Fprintf(out, "### %s — %s\n", e.ID, e.Name)
		expStart := time.Now()
		tables, err := e.Run(ctx, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			fmt.Fprintln(out, t.String())
		}
		fmt.Fprintf(out, "(%s in %v)\n\n", e.ID, time.Since(expStart).Round(time.Millisecond))
	}
	fmt.Fprintf(out, "total: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
