// Command seedb-datagen generates the paper's datasets (Table 1) to CSV
// for use outside the embedded engine, or for inspection.
//
// Examples:
//
//	seedb-datagen -dataset census -o census.csv
//	seedb-datagen -dataset bank -rows 40000 -o bank.csv
//	seedb-datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seedb-datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name    = flag.String("dataset", "", "dataset to generate")
		rows    = flag.Int("rows", 0, "override row count (0 = dataset default)")
		outPath = flag.String("o", "", "output CSV path (default: <dataset>.csv)")
		list    = flag.Bool("list", false, "list datasets")
	)
	flag.Parse()

	if *list {
		for _, n := range dataset.Names() {
			spec, err := dataset.ByName(n)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %8d rows (paper: %d)  |A|=%d |M|=%d views=%d  %s\n",
				spec.Name, spec.Rows, spec.PaperRows, len(spec.ViewDims()),
				len(spec.Measures), spec.NumViews(), spec.Description)
		}
		return nil
	}
	if *name == "" {
		flag.Usage()
		return fmt.Errorf("need -dataset or -list")
	}
	spec, err := dataset.ByName(*name)
	if err != nil {
		return err
	}
	if *rows > 0 {
		spec = spec.WithRows(*rows)
	}
	path := *outPath
	if path == "" {
		path = spec.Name + ".csv"
	}

	db := sqldb.NewDB()
	t, err := dataset.Build(db, spec, sqldb.LayoutCol)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, t); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, %d columns (target predicate: %s)\n",
		path, t.NumRows(), t.Schema().NumColumns(), spec.TargetPredicate())
	return nil
}
