// Command seedb-datagen generates datasets to CSV: the paper's Table 1
// catalog, or arbitrary synthetic tables described by a JSON spec with
// per-column distributions, correlations and NULL rates. Rows stream
// from the generator straight into the CSV encoder in batches, so
// generating millions of rows uses constant memory.
//
// Examples:
//
//	seedb-datagen -dataset census -o census.csv
//	seedb-datagen -dataset bank -rows 40000 -seed 7 -o bank.csv
//	seedb-datagen -synth traffic -rows 1000000 -o traffic.csv
//	seedb-datagen -synth spec.json -o custom.csv
//	seedb-datagen -synth traffic -dump-spec   # print the built-in spec
//	seedb-datagen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"seedb/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seedb-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("seedb-datagen", flag.ContinueOnError)
	var (
		name     = fs.String("dataset", "", "paper dataset to generate")
		synth    = fs.String("synth", "", "synthetic spec: 'traffic' (built-in) or a JSON spec file")
		rows     = fs.Int("rows", 0, "override row count (0 = spec default)")
		seed     = fs.Int64("seed", 0, "override generator seed (0 = spec default)")
		outPath  = fs.String("o", "", "output CSV path (default: <name>.csv, '-' = stdout)")
		dumpSpec = fs.Bool("dump-spec", false, "print the resolved synthetic spec as JSON and exit")
		list     = fs.Bool("list", false, "list datasets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range dataset.Names() {
			spec, err := dataset.ByName(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-8s %8d rows (paper: %d)  |A|=%d |M|=%d views=%d  %s\n",
				spec.Name, spec.Rows, spec.PaperRows, len(spec.ViewDims()),
				len(spec.Measures), spec.NumViews(), spec.Description)
		}
		fmt.Fprintf(stdout, "%-8s %8d rows  built-in synthetic traffic spec (-synth traffic)\n",
			"traffic", dataset.TrafficSpec().Rows)
		return nil
	}

	switch {
	case *synth != "":
		spec, err := resolveSynth(*synth)
		if err != nil {
			return err
		}
		if *rows > 0 {
			spec = spec.WithRows(*rows)
		}
		if *seed != 0 {
			spec = spec.WithSeed(*seed)
		}
		if *dumpSpec {
			return dataset.WriteSynthSpec(stdout, spec)
		}
		out, closeOut, err := openOut(*outPath, spec.Name, stdout)
		if err != nil {
			return err
		}
		defer closeOut()
		if err := spec.StreamSynthCSV(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d rows, %d columns (seed %d)\n",
			outName(*outPath, spec.Name), spec.Rows, len(spec.Columns), spec.Seed)
		return nil

	case *name != "":
		spec, err := dataset.ByName(*name)
		if err != nil {
			return err
		}
		if *rows > 0 {
			spec = spec.WithRows(*rows)
		}
		if *seed != 0 {
			spec.Seed = *seed
		}
		out, closeOut, err := openOut(*outPath, spec.Name, stdout)
		if err != nil {
			return err
		}
		defer closeOut()
		if err := dataset.StreamCSV(out, spec, 0); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d rows, %d columns (seed %d, target predicate: %s)\n",
			outName(*outPath, spec.Name), spec.Rows, spec.Schema().NumColumns(),
			spec.Seed, spec.TargetPredicate())
		return nil

	default:
		fs.Usage()
		return fmt.Errorf("need -dataset, -synth, or -list")
	}
}

// resolveSynth maps a -synth argument to a spec: the built-in name, or a
// JSON file path.
func resolveSynth(arg string) (dataset.SynthSpec, error) {
	if arg == "traffic" {
		return dataset.TrafficSpec(), nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return dataset.SynthSpec{}, fmt.Errorf("opening synth spec: %w", err)
	}
	defer f.Close()
	return dataset.ParseSynthSpec(f)
}

// openOut resolves the output writer: "-" streams to stdout, ""
// defaults to <name>.csv.
func openOut(path, name string, stdout io.Writer) (io.Writer, func(), error) {
	if path == "-" {
		return stdout, func() {}, nil
	}
	if path == "" {
		path = name + ".csv"
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func outName(path, name string) string {
	switch path {
	case "-":
		return "stdout"
	case "":
		return name + ".csv"
	}
	return path
}
