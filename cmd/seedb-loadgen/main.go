// Command seedb-loadgen replays a mixed, Zipf-skewed workload against a
// seedb-server and reports throughput plus latency percentiles per
// traffic class. It is the standalone face of internal/load: point it at
// a running server with -url, or let it stand one up in-process.
//
// Examples:
//
//	seedb-loadgen                               # self-serve quick run
//	seedb-loadgen -rows 1000000 -users 64 -duration 25s -o BENCH_load.json
//	seedb-loadgen -url http://127.0.0.1:8080    # drive an external server
//	seedb-loadgen -spec spec.json -shards 4     # custom table, sharded self-serve
//
// The target table is pushed via POST /api/datasets/synth when absent
// (a ~1 KB spec ships instead of a CSV; generation streams server-side).
// Exit status is non-zero when the finished report fails its SLO/shape
// gate: any non-2xx response, malformed percentiles, zero throughput,
// or driver/server query accounting that does not match exactly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/faultbe"
	"seedb/internal/backend/shardbe"
	"seedb/internal/dataset"
	"seedb/internal/load"
	"seedb/internal/resilience"
	"seedb/internal/server"
	"seedb/internal/sqldb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seedb-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("seedb-loadgen", flag.ContinueOnError)
	var (
		url         = fs.String("url", "", "target server base URL (empty = serve in-process)")
		specArg     = fs.String("spec", "traffic", "synthetic spec: \"traffic\" or a spec JSON file")
		rows        = fs.Int("rows", 100_000, "rows to load when the table is absent")
		users       = fs.Int("users", 8, "concurrent simulated users")
		duration    = fs.Duration("duration", 5*time.Second, "replay wall-clock budget")
		seed        = fs.Int64("seed", 1, "deterministic replay seed")
		backendName = fs.String("backend", "", "server backend to route reads to (e.g. \"shard\")")
		shards      = fs.Int("shards", 0, "self-serve only: enable embedded sharding with N children")
		mix         = fs.String("mix", "", "traffic mix as recommend,query,ingest weights (e.g. \"0.6,0.35,0.05\"; normalized)")
		tail        = fs.Float64("tail", 0.15, "fraction of recommends that are cache-hostile tail draws")
		k           = fs.Int("k", 3, "recommend top-k")
		out         = fs.String("o", "", "also write the report JSON to this file")
		chaos       = fs.Bool("chaos", false,
			"self-serve only: shard the table, kill one shard child a third of the way\n"+
				"into the run and restore it at two thirds; reads opt into partial results,\n"+
				"and the report gates on zero errors plus observed degraded responses")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaos {
		if *url != "" {
			return fmt.Errorf("-chaos only applies to self-serve mode (it needs in-process fault injection)")
		}
		if *shards < 2 {
			*shards = 3
		}
		if *backendName == "" {
			*backendName = server.ShardBackendName
		}
	}

	spec, err := resolveSpec(*specArg)
	if err != nil {
		return err
	}
	spec = spec.WithRows(*rows).WithSeed(*seed)

	ctx := context.Background()
	base := *url
	var srv *server.Server
	if base == "" {
		srv = server.New(sqldb.NewDB())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "seedb-loadgen: serving in-process on %s\n", base)
	} else if *shards > 0 {
		return fmt.Errorf("-shards only applies to self-serve mode; enable sharding on the target server instead")
	}

	cfg := load.Config{
		BaseURL:      base,
		Spec:         spec,
		Users:        *users,
		Duration:     *duration,
		Seed:         *seed,
		Backend:      *backendName,
		TailFraction: *tail,
		K:            *k,
		AllowPartial: *chaos,
		Chaos:        *chaos,
	}
	if *mix != "" {
		m, err := parseMix(*mix)
		if err != nil {
			return err
		}
		cfg.Mix = m
	}
	fmt.Fprintf(os.Stderr, "seedb-loadgen: loading %s (%d rows) if absent...\n", spec.Name, spec.Rows)
	if err := load.PushSpec(ctx, cfg); err != nil {
		return err
	}
	var fault *faultbe.Fault
	if srv != nil && *shards > 0 {
		// Sharding scatters every loaded table into the children, so it
		// follows the spec push.
		if *chaos {
			// Chaos runs route around the failure with breakers evicting
			// the dead child; tolerance is purely per-request (the driver
			// sets allow_partial on every read), so the run exercises the
			// same opt-in path real clients use.
			opts := shardbe.Options{
				Breakers: &resilience.BreakerOptions{},
			}
			err = srv.EnableShardingOpts(*shards, opts, func(i int, be backend.Backend) backend.Backend {
				if i != 0 {
					return be
				}
				fault = faultbe.Wrap(be)
				return fault
			})
		} else {
			err = srv.EnableSharding(*shards)
		}
		if err != nil {
			return err
		}
	}
	if fault != nil {
		// Outage window: child 0 hard-down for the middle third of the
		// run — long enough to trip the breaker, with recovery observable
		// before the deadline.
		downAt, upAt := *duration/3, 2**duration/3
		go func() {
			time.Sleep(downAt)
			fault.SetDown(backend.ErrUnavailable)
			fmt.Fprintln(os.Stderr, "seedb-loadgen: chaos: shard child 0 down")
			time.Sleep(upAt - downAt)
			fault.SetDown(nil)
			fmt.Fprintln(os.Stderr, "seedb-loadgen: chaos: shard child 0 restored")
		}()
	}
	fmt.Fprintf(os.Stderr, "seedb-loadgen: replaying %d users for %s...\n", *users, *duration)
	rep, err := load.Run(ctx, cfg)
	if err != nil {
		return err
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "seedb-loadgen: wrote %s\n", *out)
	}
	return rep.Validate()
}

// parseMix parses "recommend,query,ingest" weights.
func parseMix(s string) (load.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return load.Mix{}, fmt.Errorf("-mix wants three comma-separated weights, got %q", s)
	}
	ws := make([]float64, 3)
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || w < 0 {
			return load.Mix{}, fmt.Errorf("-mix weight %q: must be a non-negative number", p)
		}
		ws[i] = w
	}
	if ws[0]+ws[1]+ws[2] <= 0 {
		return load.Mix{}, fmt.Errorf("-mix weights sum to zero")
	}
	return load.Mix{Recommend: ws[0], Query: ws[1], Ingest: ws[2]}, nil
}

// resolveSpec loads the named built-in spec or a spec JSON file.
func resolveSpec(arg string) (dataset.SynthSpec, error) {
	if arg == "traffic" {
		return dataset.TrafficSpec(), nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return dataset.SynthSpec{}, fmt.Errorf("spec %q is not a built-in; opening as file: %w", arg, err)
	}
	defer f.Close()
	return dataset.ParseSynthSpec(f)
}
