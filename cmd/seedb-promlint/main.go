// Command seedb-promlint validates a Prometheus text-exposition payload
// (format 0.0.4) using the repo's self-contained checker — no external
// linter needed. CI points it at a live seedb-server /metrics endpoint;
// it also reads stdin so payloads can be piped in.
//
//	seedb-promlint http://localhost:8080/metrics
//	curl -s localhost:8080/metrics | seedb-promlint
//
// It exits non-zero on the first syntax violation (bad metric or label
// names, misplaced HELP/TYPE, duplicate series, malformed histograms)
// and, with -require, when a named metric family is absent — so a
// refactor that silently drops a family fails the scrape check too.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"

	"seedb/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seedb-promlint:", err)
		os.Exit(1)
	}
}

func run() error {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()

	var (
		data []byte
		err  error
		src  = "stdin"
	)
	if flag.NArg() > 0 {
		src = flag.Arg(0)
		data, err = fetch(src)
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}

	if err := telemetry.ValidatePrometheusText(data); err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	if *require != "" {
		families := familyNames(data)
		for _, want := range strings.Split(*require, ",") {
			if want = strings.TrimSpace(want); want != "" && !families[want] {
				return fmt.Errorf("%s: required metric family %q absent", src, want)
			}
		}
	}
	fmt.Printf("%s: OK (%d metric families, %d bytes)\n", src, len(familyNames(data)), len(data))
	return nil
}

// fetch loads the payload from a URL or a local file path.
func fetch(src string) ([]byte, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	return os.ReadFile(src)
}

// sampleName extracts the metric name leading a sample line.
var sampleName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)

// familyNames collects the base family names present in the payload
// (histogram _bucket/_sum/_count samples fold into their family).
func familyNames(data []byte) map[string]bool {
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := sampleName.FindString(line)
		if name == "" {
			continue
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		out[name] = true
	}
	return out
}
