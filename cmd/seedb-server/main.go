// Command seedb-server runs the SeeDB middleware as an HTTP service —
// the server half of the paper's client/server architecture (Figure 3).
// Any HTTP client plays the role of the SeeDB frontend.
//
//	seedb-server -listen :8080 -dataset census
//	seedb-server -dataset census -shards 4   # partitioned fan-out execution
//	seedb-server -dataset census -pprof -slowlog - -slow-query 250ms
//
// Observability: GET /metrics serves Prometheus text-format counters and
// latency histograms; -slowlog writes JSON-lines slow-query entries (to
// a file, or stderr with "-"); -pprof mounts net/http/pprof under
// /debug/pprof/. See docs/OBSERVABILITY.md.
//
//	curl localhost:8080/api/datasets
//	curl -X POST localhost:8080/api/recommend -d '{
//	  "table": "census",
//	  "target_where": "marital = '\''Unmarried'\''",
//	  "reference": "complement",
//	  "k": 3
//	}'
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"seedb/internal/backend/sqlbe"
	"seedb/internal/dataset"
	"seedb/internal/server"
	"seedb/internal/sqldb"
	"seedb/internal/sqldriver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seedb-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", ":8080", "listen address")
		preload     = flag.String("dataset", "", "comma-separated built-in datasets to preload")
		layoutStr   = flag.String("layout", "col", "physical layout for preloaded datasets")
		rows        = flag.Int("rows", 0, "row override for preloaded datasets (0 = defaults)")
		cacheBudget = flag.Int64("cachebudget", 0, "result cache byte budget (0 = 64MiB default)")
		shards      = flag.Int("shards", 0,
			"also register a \"shard\" backend: a shard router over N embedded children\n"+
				"holding partitions of every loaded table (select per request with {\"backend\": \"shard\"})")
		sqlBackend = flag.Bool("sql-backend", false,
			"also register a \"sql\" backend that reaches the store through database/sql\n"+
				"(the external-backend path; select per request with {\"backend\": \"sql\"})")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: exposes heap contents)")
		slowLog = flag.String("slowlog", "", "write JSON-lines slow-query log entries to this file (\"-\" = stderr)")
		slowThr = flag.Duration("slow-query", 0, "slow-query log threshold (0 = 100ms default; needs -slowlog)")
	)
	flag.Parse()

	db := sqldb.NewDB()
	layout := sqldb.LayoutCol
	if strings.EqualFold(*layoutStr, "row") {
		layout = sqldb.LayoutRow
	}
	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			spec, err := dataset.ByName(name)
			if err != nil {
				return err
			}
			if *rows > 0 {
				spec = spec.WithRows(*rows)
			}
			if _, err := dataset.Build(db, spec, layout); err != nil {
				return err
			}
			fmt.Printf("loaded %s: %d rows (%s)\n", spec.Name, spec.Rows, layout)
		}
	}

	srv := server.NewWithCacheBudget(db, *cacheBudget)
	if *pprofOn {
		srv.EnablePprof()
		fmt.Println("pprof profiling endpoints mounted under /debug/pprof/")
	}
	if *slowLog != "" {
		w := io.Writer(os.Stderr)
		if *slowLog != "-" {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		srv.SetSlowQueryLog(w, *slowThr)
		fmt.Printf("slow-query log -> %s (threshold %v)\n", *slowLog, srv.Telemetry().SlowLog.Threshold())
	}
	if *shards > 0 {
		// Partition every loaded table across N embedded children behind
		// the shard router; view queries then fan out per shard and merge
		// decomposed partial aggregation states. Preloaded datasets are
		// scattered immediately, later /api/datasets/load calls re-scatter.
		if err := srv.EnableSharding(*shards); err != nil {
			return err
		}
		fmt.Printf("registered shard router %q over %d embedded children\n", server.ShardBackendName, *shards)
	}
	if *sqlBackend {
		// Wire the same data through database/sql (the sqldriver shim), so
		// the full external-store execution path — SQL text, driver-value
		// conversion, capability degradation — is exercisable end to end.
		// A real deployment would hand sqlbe.New a postgres/mysql handle
		// instead; see docs/BACKENDS.md. The embedded catalog doubles as
		// the version watermark, so cache invalidation stays automatic
		// even through the database/sql path.
		be := sqlbe.New(sqldriver.Open(db), sqlbe.Options{Version: db.TableVersion})
		if err := srv.RegisterBackend("sql", be); err != nil {
			return err
		}
		fmt.Println(`registered database/sql backend "sql"`)
	}
	fmt.Printf("SeeDB middleware listening on %s\n", *listen)
	return http.ListenAndServe(*listen, srv)
}
