// Command seedb-server runs the SeeDB middleware as an HTTP service —
// the server half of the paper's client/server architecture (Figure 3).
// Any HTTP client plays the role of the SeeDB frontend.
//
//	seedb-server -listen :8080 -dataset census
//	seedb-server -dataset census -shards 4   # partitioned fan-out execution
//	seedb-server -dataset census -pprof -slowlog - -slow-query 250ms
//
// Cross-process sharding splits the same deployment over several
// machines: child servers each hold one contiguous partition, and a
// router server reaches them over the netbe wire protocol:
//
//	seedb-server -listen :8081 -dataset census -partition 0/2   # child 0
//	seedb-server -listen :8082 -dataset census -partition 1/2   # child 1
//	seedb-server -listen :8080 -children http://localhost:8081,http://localhost:8082 -hedge
//
// Observability: GET /metrics serves Prometheus text-format counters and
// latency histograms; -slowlog writes JSON-lines slow-query entries (to
// a file, or stderr with "-"); -pprof mounts net/http/pprof under
// /debug/pprof/. See docs/OBSERVABILITY.md.
//
//	curl localhost:8080/api/datasets
//	curl -X POST localhost:8080/api/recommend -d '{
//	  "table": "census",
//	  "target_where": "marital = '\''Unmarried'\''",
//	  "reference": "complement",
//	  "k": 3
//	}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/netbe"
	"seedb/internal/backend/shardbe"
	"seedb/internal/backend/sqlbe"
	"seedb/internal/dataset"
	"seedb/internal/resilience"
	"seedb/internal/server"
	"seedb/internal/sqldb"
	"seedb/internal/sqldriver"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seedb-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", ":8080", "listen address")
		preload     = flag.String("dataset", "", "comma-separated built-in datasets to preload")
		layoutStr   = flag.String("layout", "col", "physical layout for preloaded datasets")
		rows        = flag.Int("rows", 0, "row override for preloaded datasets (0 = defaults)")
		cacheBudget = flag.Int64("cachebudget", 0, "result cache byte budget (0 = 64MiB default)")
		shards      = flag.Int("shards", 0,
			"also register a \"shard\" backend: a shard router over N embedded children\n"+
				"holding partitions of every loaded table (select per request with {\"backend\": \"shard\"})")
		children = flag.String("children", "",
			"comma-separated base URLs of child seedb-servers: registers the \"shard\"\n"+
				"backend as a router fanning out to them over the netbe wire protocol\n"+
				"(mutually exclusive with -shards)")
		hedge = flag.Bool("hedge", false,
			"hedge straggling child executions behind -children: after the hedge delay,\n"+
				"issue a speculative duplicate and keep the first answer")
		hedgeDelay = flag.Duration("hedge-delay", 0,
			"fixed hedge delay for -hedge (0 = adaptive: p95 of observed child latencies)")
		partialCache = flag.Int("partial-cache", 0,
			"memoize up to N per-shard partial results in the -children router,\n"+
				"keyed by child version tokens (0 = off)")
		partition = flag.String("partition", "",
			"keep only the i-th of n contiguous blocks of each preloaded dataset (\"i/n\",\n"+
				"0-based) — run one child server per partition behind a -children router")
		sqlBackend = flag.Bool("sql-backend", false,
			"also register a \"sql\" backend that reaches the store through database/sql\n"+
				"(the external-backend path; select per request with {\"backend\": \"sql\"})")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: exposes heap contents)")
		slowLog  = flag.String("slowlog", "", "write JSON-lines slow-query log entries to this file (\"-\" = stderr)")
		slowThr  = flag.Duration("slow-query", 0, "slow-query log threshold (0 = 100ms default; needs -slowlog)")
		breakers = flag.Bool("breakers", false,
			"per-child circuit breakers on the shard router: repeatedly failing children\n"+
				"are evicted and probed for recovery; requests opt into results over the\n"+
				"surviving shards with {\"allow_partial\": true}")
		maxInflight = flag.Int("max-inflight", 0,
			"bound concurrently executing query requests; overload waits -queue-wait for\n"+
				"a slot, then is shed with 503 (queue overflow refuses with 429). 0 = unlimited")
		queueWait = flag.Duration("queue-wait", 100*time.Millisecond,
			"how long an over-limit request may queue for an execution slot (needs -max-inflight)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second,
			"how long in-flight requests get to complete after SIGINT/SIGTERM before the\n"+
				"server exits anyway (0 = wait forever)")
		traceSample = flag.Float64("trace-sample", 0,
			"probabilistic head sampling: trace this fraction of recommendation requests\n"+
				"(0..1) and retain the trees in the trace store for GET /api/traces;\n"+
				"an explicit {\"trace\": true} always traces regardless")
	)
	flag.Parse()

	db := sqldb.NewDB()
	layout := sqldb.LayoutCol
	if strings.EqualFold(*layoutStr, "row") {
		layout = sqldb.LayoutRow
	}
	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			spec, err := dataset.ByName(name)
			if err != nil {
				return err
			}
			if *rows > 0 {
				spec = spec.WithRows(*rows)
			}
			if _, err := dataset.Build(db, spec, layout); err != nil {
				return err
			}
			fmt.Printf("loaded %s: %d rows (%s)\n", spec.Name, spec.Rows, layout)
		}
	}

	if *partition != "" {
		var err error
		if db, err = keepPartition(db, *partition); err != nil {
			return err
		}
	}

	srv := server.NewWithCacheBudget(db, *cacheBudget)
	if *pprofOn {
		srv.EnablePprof()
		fmt.Println("pprof profiling endpoints mounted under /debug/pprof/")
	}
	if *slowLog != "" {
		w := io.Writer(os.Stderr)
		if *slowLog != "-" {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		srv.SetSlowQueryLog(w, *slowThr)
		fmt.Printf("slow-query log -> %s (threshold %v)\n", *slowLog, srv.Telemetry().SlowLog.Threshold())
	}
	if *children != "" {
		if *shards > 0 {
			return fmt.Errorf("-children and -shards both register the %q backend; pick one", server.ShardBackendName)
		}
		urls := splitList(*children)
		if len(urls) == 0 {
			return fmt.Errorf("-children lists no URLs")
		}
		bes := make([]backend.Backend, len(urls))
		for i, u := range urls {
			c, err := netbe.New(context.Background(), u, netbe.Options{})
			if err != nil {
				return err
			}
			bes[i] = c
		}
		router, err := shardbe.New(bes, shardbe.Options{
			Telemetry:           srv.Telemetry(),
			Hedge:               shardbe.HedgeOptions{Enabled: *hedge, Delay: *hedgeDelay},
			PartialCacheEntries: *partialCache,
			Breakers:            breakerOptions(*breakers),
		})
		if err != nil {
			return err
		}
		if err := srv.RegisterBackend(server.ShardBackendName, router); err != nil {
			return err
		}
		fmt.Printf("registered shard router %q over %d remote children (hedging %v)\n",
			server.ShardBackendName, len(urls), *hedge)
	}
	if *shards > 0 {
		// Partition every loaded table across N embedded children behind
		// the shard router; view queries then fan out per shard and merge
		// decomposed partial aggregation states. Preloaded datasets are
		// scattered immediately, later /api/datasets/load calls re-scatter.
		if err := srv.EnableShardingOpts(*shards, shardbe.Options{Breakers: breakerOptions(*breakers)}, nil); err != nil {
			return err
		}
		fmt.Printf("registered shard router %q over %d embedded children\n", server.ShardBackendName, *shards)
	}
	if *sqlBackend {
		// Wire the same data through database/sql (the sqldriver shim), so
		// the full external-store execution path — SQL text, driver-value
		// conversion, capability degradation — is exercisable end to end.
		// A real deployment would hand sqlbe.New a postgres/mysql handle
		// instead; see docs/BACKENDS.md. The embedded catalog doubles as
		// the version watermark, so cache invalidation stays automatic
		// even through the database/sql path.
		be := sqlbe.New(sqldriver.Open(db), sqlbe.Options{Version: db.TableVersion})
		if err := srv.RegisterBackend("sql", be); err != nil {
			return err
		}
		fmt.Println(`registered database/sql backend "sql"`)
	}
	if *maxInflight > 0 {
		srv.SetAdmission(*maxInflight, *queueWait)
		fmt.Printf("admission control: %d in-flight queries, %v queue wait\n", *maxInflight, *queueWait)
	}
	if *traceSample > 0 {
		srv.SetTraceSampling(*traceSample)
		fmt.Printf("trace sampling: %.4g of requests retained (GET /api/traces)\n", *traceSample)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("SeeDB middleware listening on %s\n", ln.Addr())
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	return serveWithDrain(&http.Server{Handler: srv}, ln, *drainTimeout, sigCh, os.Stdout)
}

// breakerOptions maps the -breakers flag to router options (nil = off;
// the zero BreakerOptions selects the package defaults).
func breakerOptions(on bool) *resilience.BreakerOptions {
	if !on {
		return nil
	}
	return &resilience.BreakerOptions{}
}

// serveWithDrain serves hs on ln until a signal arrives, then drains:
// the listener closes (new connections are refused), in-flight requests
// get up to drainTimeout to complete, and only then does the process
// exit — a deploy's SIGTERM never truncates running recommendations.
// The slow-query log file (if any) is closed by run's defer after the
// drain completes, so every entry from draining requests is flushed.
func serveWithDrain(hs *http.Server, ln net.Listener, drainTimeout time.Duration, sigCh <-chan os.Signal, out io.Writer) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err // listener failed before any signal
	case sig := <-sigCh:
		fmt.Fprintf(out, "received %v; draining in-flight requests (timeout %v)\n", sig, drainTimeout)
		ctx := context.Background()
		if drainTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, drainTimeout)
			defer cancel()
		}
		err := hs.Shutdown(ctx)
		<-serveErr // Serve has returned http.ErrServerClosed
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		fmt.Fprintln(out, "drained clean")
		return nil
	}
}

// keepPartition replaces the loaded database with just the i-th of n
// contiguous blocks of every table — the child server's share when a
// dataset is split across a fleet. Splitting with the same block
// partitioner the in-process router uses means a -children router over
// the fleet presents the original global row order.
func keepPartition(src *sqldb.DB, spec string) (*sqldb.DB, error) {
	var idx, n int
	if _, err := fmt.Sscanf(spec, "%d/%d", &idx, &n); err != nil || n < 1 || idx < 0 || idx >= n {
		return nil, fmt.Errorf("bad -partition %q (want \"i/n\" with 0 <= i < n)", spec)
	}
	parts := make([]*sqldb.DB, n)
	for i := range parts {
		parts[i] = sqldb.NewDB()
	}
	for _, name := range src.TableNames() {
		t, ok := src.Table(name)
		if !ok {
			continue
		}
		if err := shardbe.ScatterTable(src, name, parts, shardbe.Blocks{Total: t.NumRows()}); err != nil {
			return nil, err
		}
		kept, _ := parts[idx].Table(name)
		fmt.Printf("partition %d/%d of %s: %d rows\n", idx, n, name, kept.NumRows())
	}
	return parts[idx], nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
