package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestServeWithDrain pins the drain contract: after SIGTERM the
// listener stops accepting new connections while the in-flight request
// runs to completion and gets its full 200 response.
func TestServeWithDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("done"))
	})

	sigCh := make(chan os.Signal, 1)
	drained := make(chan error, 1)
	go func() {
		drained <- serveWithDrain(&http.Server{Handler: mux}, ln, 5*time.Second, sigCh, io.Discard)
	}()

	addr := ln.Addr().String()
	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			inflight <- result{0, err}
			return
		}
		_, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- result{resp.StatusCode, nil}
	}()

	<-started
	sigCh <- syscall.SIGTERM

	// Shutdown closes the listener before waiting on in-flight work, so
	// within the deadline new connections must start being refused.
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after drain began")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The request that was already executing must complete, not be cut.
	close(release)
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", r.code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("serveWithDrain returned %v, want nil after clean drain", err)
	}
}
