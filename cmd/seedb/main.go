// Command seedb is the SeeDB command-line frontend: load a dataset (one
// of the paper's built-ins or a CSV file), issue the analyst's query, and
// receive ranked visualization recommendations as terminal bar charts —
// the CLI equivalent of the paper's mixed-initiative web frontend
// (Figure 2).
//
// Examples:
//
//	# The paper's running example: unmarried vs married adults.
//	seedb -dataset census -target "marital = 'Unmarried'" -k 5
//
//	# Bring your own data.
//	seedb -csv sales.csv -table sales -target "region = 'EMEA'" -k 3
//
//	# Manual (non-recommended) SQL, the other half of the frontend.
//	seedb -dataset census -sql "SELECT sex, AVG(age) FROM census GROUP BY sex"
//
//	# Recommend over a running seedb-server (or several, sharded):
//	seedb -join http://localhost:8080 -table census -target "sex = 'Female'"
//	seedb -join http://h1:8081,http://h2:8082 -table census -target "sex = 'Female'"
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"seedb"
	"seedb/internal/backend"
	"seedb/internal/backend/netbe"
	"seedb/internal/backend/shardbe"
	"seedb/internal/dataset"
	"seedb/internal/distance"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seedb:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dsName    = flag.String("dataset", "", "built-in dataset to load ("+strings.Join(dataset.Names(), ", ")+")")
		rows      = flag.Int("rows", 0, "override generated row count for -dataset")
		csvPath   = flag.String("csv", "", "CSV file to load instead of a built-in dataset")
		tableName = flag.String("table", "", "table name for -csv (default: file name) or -join (required)")
		join      = flag.String("join", "",
			"comma-separated base URLs of running seedb-servers: recommend over their data\n"+
				"via the netbe wire protocol instead of loading locally (one URL = direct\n"+
				"remote backend; several = shard router over remote children)")
		layoutStr = flag.String("layout", "col", "physical layout: row or col")
		target    = flag.String("target", "", "target predicate (the analyst's query), e.g. \"marital = 'Unmarried'\"")
		reference = flag.String("reference", "all", "reference dataset: all, complement, or a SQL predicate")
		k         = flag.Int("k", 5, "number of recommendations")
		strategy  = flag.String("strategy", "comb", "execution strategy: noopt, sharing, comb, combearly")
		pruning   = flag.String("pruning", "ci", "pruning scheme: none, ci, mab")
		distName  = flag.String("distance", "EMD", "distance function: EMD, EUCLIDEAN, KL, JS, MAX_DIFF")
		dims      = flag.String("dimensions", "", "comma-separated dimension attributes (default: derive from metadata)")
		measures  = flag.String("measures", "", "comma-separated measure attributes (default: derive from metadata)")
		sqlQuery  = flag.String("sql", "", "run a manual SQL query instead of recommending")
		shards    = flag.Int("shards", 0, "partition the table across N embedded shards and execute with fan-out + merge (0 = unsharded)")
		showStats = flag.Bool("stats", false, "print execution metrics")
		showTrace = flag.Bool("trace", false, "print the request's span trace tree (where the time went)")
		timeout   = flag.Duration("timeout", 5*time.Minute, "recommendation timeout")
	)
	flag.Parse()

	layout := seedb.ColumnLayout
	switch strings.ToLower(*layoutStr) {
	case "row":
		layout = seedb.RowLayout
	case "col", "column":
		layout = seedb.ColumnLayout
	default:
		return fmt.Errorf("unknown layout %q (want row or col)", *layoutStr)
	}

	client := seedb.New()
	if *shards > 1 {
		client = seedb.NewSharded(*shards)
	}
	table := ""
	switch {
	case *join != "":
		if *dsName != "" || *csvPath != "" || *shards > 1 {
			return fmt.Errorf("-join reads remote data; it excludes -dataset, -csv, and -shards")
		}
		if *tableName == "" {
			return fmt.Errorf("-join needs -table (the remote table to analyze)")
		}
		be, err := joinBackend(splitList(*join))
		if err != nil {
			return err
		}
		client = seedb.NewWithBackend(be)
		table = *tableName
		ti, err := client.Backend().TableInfo(context.Background(), table)
		if err != nil {
			return err
		}
		fmt.Printf("joined %s: %d rows over %d server(s)\n", table, ti.Rows, len(splitList(*join)))
	case *dsName != "":
		spec, err := dataset.ByName(*dsName)
		if err != nil {
			return err
		}
		n := spec.Rows
		if *rows > 0 {
			n = *rows
		}
		if err := client.LoadDatasetRows(*dsName, layout, n); err != nil {
			return err
		}
		table = spec.Name
		if s := client.Shards(); s > 0 {
			fmt.Printf("loaded dataset %s: %d rows, layout %s, partitioned over %d shards\n", spec.Name, n, layout, s)
		} else {
			fmt.Printf("loaded dataset %s: %d rows, layout %s\n", spec.Name, n, layout)
		}
		if *target == "" && *sqlQuery == "" {
			*target = spec.TargetPredicate()
			fmt.Printf("using the dataset's canonical target predicate: %s\n", *target)
		}
	case *csvPath != "":
		name := *tableName
		if name == "" {
			base := *csvPath
			if i := strings.LastIndexByte(base, '/'); i >= 0 {
				base = base[i+1:]
			}
			name = strings.TrimSuffix(base, ".csv")
		}
		f, err := os.Open(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		schema, err := inferCSVSchema(*csvPath)
		if err != nil {
			return err
		}
		if err := client.LoadCSV(name, schema, layout, f); err != nil {
			return err
		}
		table = name
		// Row counts come through the backend seam so this works for
		// sharded clients (which have no single embedded database) too.
		ti, err := client.Backend().TableInfo(context.Background(), name)
		if err != nil {
			return err
		}
		if s := client.Shards(); s > 0 {
			fmt.Printf("loaded %s: %d rows, layout %s, partitioned over %d shards\n", name, ti.Rows, layout, s)
		} else {
			fmt.Printf("loaded %s: %d rows, layout %s\n", name, ti.Rows, layout)
		}
	default:
		flag.Usage()
		return fmt.Errorf("need -dataset or -csv")
	}

	if *sqlQuery != "" {
		res, err := client.Query(*sqlQuery)
		if err != nil {
			return err
		}
		printSQLResult(res)
		return nil
	}
	if *target == "" {
		return fmt.Errorf("need -target predicate for recommendations")
	}

	dist, err := distance.ParseFunc(strings.ToUpper(*distName))
	if err != nil {
		return err
	}
	opts := seedb.Options{K: *k, Distance: dist}
	switch strings.ToLower(*strategy) {
	case "noopt":
		opts.Strategy = seedb.NoOpt
	case "sharing":
		opts.Strategy = seedb.Sharing
	case "comb":
		opts.Strategy = seedb.Comb
	case "combearly", "early":
		opts.Strategy = seedb.CombEarly
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	switch strings.ToLower(*pruning) {
	case "none":
		opts.Pruning = seedb.NoPruning
	case "ci":
		opts.Pruning = seedb.CIPruning
	case "mab":
		opts.Pruning = seedb.MABPruning
	default:
		return fmt.Errorf("unknown pruning scheme %q", *pruning)
	}

	req := seedb.Request{Table: table, TargetWhere: *target}
	refLabel := "reference: entire table"
	switch strings.ToLower(*reference) {
	case "all", "":
		req.Reference = seedb.RefAll
	case "complement":
		req.Reference = seedb.RefComplement
		refLabel = "reference: complement of target"
	default:
		req.Reference = seedb.RefCustom
		req.ReferenceWhere = *reference
		refLabel = "reference: " + *reference
	}
	if *dims != "" {
		req.Dimensions = splitList(*dims)
	}
	if *measures != "" {
		req.Measures = splitList(*measures)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var tr *telemetry.Trace
	if *showTrace {
		ctx, tr = telemetry.WithTrace(ctx, "request")
	}
	res, err := client.Recommend(ctx, req, opts)
	if err != nil {
		return err
	}

	fmt.Printf("\ntarget: %s   (%s)\n", *target, refLabel)
	fmt.Printf("top-%d recommended visualizations (%s, %s pruning, %s):\n\n",
		len(res.Recommendations), opts.Strategy, opts.Pruning, dist)
	for i, rec := range res.Recommendations {
		fmt.Printf("#%d  %s", i+1, seedb.RenderChartLabeled(rec, "target", "reference"))
		fmt.Println()
	}
	if *showStats {
		m := res.Metrics
		fmt.Printf("metrics: %d views, %d queries, %d rows scanned, %d phases, %d pruned, early=%v, %v\n",
			m.Views, m.QueriesExecuted, m.RowsScanned, m.PhasesRun, m.PrunedViews, m.EarlyStopped, m.Elapsed.Round(time.Millisecond))
		if m.ShardQueries > 0 {
			fmt.Printf("sharding: %d queries fanned out (%d child executions, straggler %v)\n",
				m.ShardQueries, m.ShardFanout, m.ShardStragglerMax.Round(time.Microsecond))
		}
	}
	if tr != nil {
		// Remote subtrees (netbe children behind -join) render with a
		// "»" marker and a process attribute naming the child.
		fmt.Printf("\ntrace %s:\n%s", tr.ID(), tr.Finish().Render())
	}
	return nil
}

// joinBackend connects to one or more remote seedb-servers: a single
// URL becomes a direct netbe backend, several become a shard router
// whose children are netbe clients (the cross-process deployment).
func joinBackend(urls []string) (backend.Backend, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("-join lists no URLs")
	}
	children := make([]backend.Backend, len(urls))
	for i, u := range urls {
		c, err := netbe.New(context.Background(), u, netbe.Options{})
		if err != nil {
			return nil, fmt.Errorf("joining %s: %w", u, err)
		}
		children[i] = c
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return shardbe.New(children, shardbe.Options{})
}

// splitList splits a comma-separated flag value.
func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// inferCSVSchema reads the CSV header and first data row to guess column
// types: numeric fields become FLOAT, everything else TEXT.
func inferCSVSchema(path string) (*seedb.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("reading CSV header: %w", err)
	}
	sample, err := r.Read()
	if err != nil {
		sample = nil // empty file: default everything to TEXT
	}
	cols := make([]seedb.Column, len(header))
	for i, h := range header {
		typ := sqldb.TypeString
		if sample != nil && i < len(sample) && looksNumeric(sample[i]) {
			typ = sqldb.TypeFloat
		}
		cols[i] = seedb.Column{Name: h, Type: typ}
	}
	return seedb.NewSchema(cols...)
}

// looksNumeric reports whether a CSV field parses as a float.
func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return err == nil
}

// printSQLResult renders a raw query result as an aligned table.
func printSQLResult(res *seedb.SQLResult) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = v.String()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	for i, c := range res.Columns {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%-*s", widths[i], c)
	}
	fmt.Println()
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%-*s", widths[i], c)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
