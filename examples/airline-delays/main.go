// Airline delays: interactive-latency recommendations on a large
// dataset — the paper's AIR workload (Section 5.1), where COMB_EARLY's
// early result return is what keeps SeeDB interactive ("for AIR, the
// COMB_EARLY strategy allows SEEDB to return results in under 4s while
// processing the full dataset takes tens of seconds").
//
// The analyst asks: how do delayed flights differ from on-time flights?
//
// Run with: go run ./examples/airline-delays
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"seedb"
)

func main() {
	ctx := context.Background()
	client := seedb.New()

	const rows = 300_000
	fmt.Printf("generating %d flights...\n", rows)
	if err := client.LoadDatasetRows("air", seedb.ColumnLayout, rows); err != nil {
		log.Fatal(err)
	}

	// The delayed flag itself is excluded from the view space (grouping
	// by the query attribute is degenerate).
	req := seedb.Request{
		Table:       "air",
		TargetWhere: "delayed = 'yes'",
		Reference:   seedb.RefComplement,
		Dimensions: []string{
			"carrier", "origin_state", "dest_state", "month", "day_of_week",
			"dep_block", "arr_block", "distance_band", "aircraft_type",
			"origin_size", "cancel_code", "dep_hour",
		},
	}

	// Warm-up run (page in the columns, warm the caches) so the timed
	// comparison below reflects steady-state engine cost.
	if _, err := client.Recommend(ctx, req, seedb.Options{K: 5, Strategy: seedb.Sharing}); err != nil {
		log.Fatal(err)
	}

	// Full processing (no early return).
	start := time.Now()
	full, err := client.Recommend(ctx, req, seedb.Options{
		K: 5, Strategy: seedb.Comb, Pruning: seedb.CIPruning,
	})
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)

	// Early result return: stop as soon as the top-k is decided.
	start = time.Now()
	early, err := client.Recommend(ctx, req, seedb.Options{
		K: 5, Strategy: seedb.CombEarly, Pruning: seedb.CIPruning,
	})
	if err != nil {
		log.Fatal(err)
	}
	earlyTime := time.Since(start)

	fmt.Printf("\nCOMB       : %8v (%d row-visits, %d phases)\n",
		fullTime.Round(time.Millisecond), full.Metrics.RowsScanned, full.Metrics.PhasesRun)
	fmt.Printf("COMB_EARLY : %8v (%d row-visits, %d phases, stopped early: %v)\n",
		earlyTime.Round(time.Millisecond), early.Metrics.RowsScanned, early.Metrics.PhasesRun,
		early.Metrics.EarlyStopped)
	fmt.Printf("early-return speedup: %.1fx\n\n", float64(fullTime)/float64(earlyTime))

	// The approximate top-k from the early return vs the full top-k.
	fullSet := map[string]bool{}
	for _, r := range full.Recommendations {
		fullSet[r.View.Key()] = true
	}
	hits := 0
	for _, r := range early.Recommendations {
		if fullSet[r.View.Key()] {
			hits++
		}
	}
	fmt.Printf("early top-5 agreement with full top-5: %d/5\n\n", hits)

	fmt.Println("what distinguishes delayed flights (early results):")
	for i, rec := range early.Recommendations {
		fmt.Printf("#%d  %s\n", i+1, seedb.RenderChartLabeled(rec, "delayed", "on-time"))
	}

	// The mixed-initiative side: the analyst drills into a recommended
	// view manually with raw SQL.
	fmt.Println("manual drill-down on the top view's dimension:")
	top := early.Recommendations[0].View
	sql := fmt.Sprintf(
		"SELECT %s, COUNT(*) AS flights, AVG(%s) AS avg_measure FROM air WHERE delayed = 'yes' GROUP BY %s ORDER BY flights DESC LIMIT 5",
		top.Dimension, top.Measure, top.Dimension)
	res, err := client.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", sql)
	for _, row := range res.Rows {
		fmt.Printf("  %-24s %8s %12s\n", row[0].String(), row[1].String(), row[2].String())
	}
}
