// Bank marketing: compare SeeDB's execution strategies on the BANK
// dataset (Table 1) — the workload behind Figures 5, 10, 11 and 13 of
// the paper.
//
// An analyst studies customers holding housing loans against the rest of
// the bank's customers. The example runs the same recommendation under
// all four strategies (NO_OPT, SHARING, COMB, COMB_EARLY) on both
// physical layouts and reports latency, query counts and agreement —
// demonstrating that the optimizations are semantics-preserving while
// delivering order-of-magnitude speedups.
//
// Run with: go run ./examples/bank-marketing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"seedb"
)

func main() {
	ctx := context.Background()

	for _, layout := range []seedb.Layout{seedb.RowLayout, seedb.ColumnLayout} {
		client := seedb.New()
		if err := client.LoadDatasetRows("bank", layout, 40_000); err != nil {
			log.Fatal(err)
		}
		// Exclude the query attribute (housing) from the view space —
		// grouping by it is degenerate.
		req := seedb.Request{
			Table:       "bank",
			TargetWhere: "housing = 'yes'",
			Reference:   seedb.RefComplement,
			Dimensions: []string{
				"job", "marital", "education", "default_credit", "loan",
				"contact", "month", "poutcome", "deposit", "region", "age_band",
			},
		}

		fmt.Printf("=== %v store: housing-loan customers vs rest (77 candidate views, k=10) ===\n", layout)
		type runResult struct {
			name string
			top  []seedb.View
		}
		var runs []runResult
		var baseline time.Duration
		for _, cfg := range []struct {
			name string
			opts seedb.Options
		}{
			{"NO_OPT", seedb.Options{Strategy: seedb.NoOpt, K: 10}},
			{"SHARING", seedb.Options{Strategy: seedb.Sharing, K: 10}},
			{"COMB(CI)", seedb.Options{Strategy: seedb.Comb, Pruning: seedb.CIPruning, K: 10}},
			{"COMB_EARLY(CI)", seedb.Options{Strategy: seedb.CombEarly, Pruning: seedb.CIPruning, K: 10}},
		} {
			start := time.Now()
			res, err := client.Recommend(ctx, req, cfg.opts)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			if cfg.name == "NO_OPT" {
				baseline = elapsed
			}
			var top []seedb.View
			for _, r := range res.Recommendations {
				top = append(top, r.View)
			}
			runs = append(runs, runResult{cfg.name, top})
			fmt.Printf("%-16s %8v  %5.1fx speedup  %3d queries  %9d rows scanned  %d pruned\n",
				cfg.name, elapsed.Round(time.Millisecond),
				float64(baseline)/float64(elapsed),
				res.Metrics.QueriesExecuted, res.Metrics.RowsScanned, res.Metrics.PrunedViews)
		}

		// Agreement of the optimized strategies with the unoptimized
		// baseline (pruned strategies may differ slightly at tight
		// utility gaps — the paper's Figure 11 effect).
		base := map[string]bool{}
		for _, v := range runs[0].top {
			base[v.Key()] = true
		}
		for _, r := range runs[1:] {
			hits := 0
			for _, v := range r.top {
				if base[v.Key()] {
					hits++
				}
			}
			fmt.Printf("%-16s top-10 agreement with NO_OPT: %d/10\n", r.name, hits)
		}
		fmt.Println()
	}

	// Show the winning charts once, on the column store.
	client := seedb.New()
	if err := client.LoadDatasetRows("bank", seedb.ColumnLayout, 40_000); err != nil {
		log.Fatal(err)
	}
	res, err := client.Recommend(ctx, seedb.Request{
		Table:       "bank",
		TargetWhere: "housing = 'yes'",
		Reference:   seedb.RefComplement,
		Dimensions: []string{
			"job", "marital", "education", "default_credit", "loan",
			"contact", "month", "poutcome", "deposit", "region", "age_band",
		},
	}, seedb.Options{K: 3, Strategy: seedb.Comb, Pruning: seedb.MABPruning})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 views (MAB pruning):")
	for i, rec := range res.Recommendations {
		fmt.Printf("#%d  %s\n", i+1, seedb.RenderChartLabeled(rec, "housing=yes", "housing=no"))
	}
}
