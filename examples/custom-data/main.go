// Custom data: using SeeDB as a library on your own tables — the
// "middleware on any DBMS" deployment of the paper, here with data loaded
// from CSV and rows appended programmatically, a custom reference query
// (D_R = an arbitrary Q′, Section 2), multiple aggregate functions, and a
// non-default distance function.
//
// Scenario: an e-commerce analyst compares this quarter's EMEA orders
// against last quarter's EMEA orders (custom reference — not the
// complement, not the whole table).
//
// Run with: go run ./examples/custom-data
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"seedb"
	"seedb/internal/distance"
)

// ordersCSV is a small embedded order log: quarter, region, category,
// channel, revenue, units.
const ordersCSV = `quarter,region,category,channel,revenue,units
Q1,EMEA,electronics,web,120,3
Q1,EMEA,electronics,store,110,3
Q1,EMEA,apparel,web,80,5
Q1,EMEA,apparel,store,85,5
Q1,EMEA,home,web,60,2
Q1,EMEA,home,store,65,2
Q1,AMER,electronics,web,150,4
Q1,AMER,apparel,web,90,6
Q2,EMEA,electronics,web,240,6
Q2,EMEA,electronics,store,70,2
Q2,EMEA,apparel,web,82,5
Q2,EMEA,apparel,store,84,5
Q2,EMEA,home,web,30,1
Q2,EMEA,home,store,95,3
Q2,AMER,electronics,web,155,4
Q2,AMER,apparel,web,88,6
`

func main() {
	ctx := context.Background()
	client := seedb.New()

	// Load the CSV with an explicit schema.
	schema, err := seedb.NewSchema(
		seedb.Column{Name: "quarter", Type: seedb.TypeString},
		seedb.Column{Name: "region", Type: seedb.TypeString},
		seedb.Column{Name: "category", Type: seedb.TypeString},
		seedb.Column{Name: "channel", Type: seedb.TypeString},
		seedb.Column{Name: "revenue", Type: seedb.TypeFloat},
		seedb.Column{Name: "units", Type: seedb.TypeFloat},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.LoadCSV("orders", schema, seedb.RowLayout, strings.NewReader(ordersCSV)); err != nil {
		log.Fatal(err)
	}

	// Rows can also be appended programmatically.
	tab, _ := client.DB().Table("orders")
	extra := [][]seedb.Value{
		{seedb.Str("Q2"), seedb.Str("EMEA"), seedb.Str("electronics"), seedb.Str("web"), seedb.Float(260), seedb.Float(7)},
		{seedb.Str("Q2"), seedb.Str("EMEA"), seedb.Str("home"), seedb.Str("web"), seedb.Float(25), seedb.Float(1)},
	}
	for _, row := range extra {
		if err := tab.AppendRow(row); err != nil {
			log.Fatal(err)
		}
	}

	// Custom reference: compare Q2 EMEA (target) against Q1 EMEA — an
	// arbitrary reference query Q′, not the default D or the complement.
	req := seedb.Request{
		Table:          "orders",
		TargetWhere:    "quarter = 'Q2' AND region = 'EMEA'",
		Reference:      seedb.RefCustom,
		ReferenceWhere: "quarter = 'Q1' AND region = 'EMEA'",
		Dimensions:     []string{"category", "channel"},
		Measures:       []string{"revenue", "units"},
		// Multiple aggregate functions expand the view space: F × A × M.
		Aggs: []seedb.AggFunc{seedb.AggSum, seedb.AggAvg, seedb.AggCount},
	}

	// Jensen–Shannon distance instead of the default EMD.
	res, err := client.Recommend(ctx, req, seedb.Options{
		K:        4,
		Strategy: seedb.Sharing,
		Distance: distance.JS,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Q2 vs Q1 EMEA orders — most-changed views (Jensen–Shannon):")
	fmt.Println()
	for i, rec := range res.Recommendations {
		fmt.Printf("#%d  %s\n", i+1, seedb.RenderChartLabeled(rec, "Q2", "Q1"))
	}
	fmt.Printf("evaluated %d views (%d dims × %d measures × %d aggs) with %d queries\n",
		res.Metrics.Views, 2, 2, 3, res.Metrics.QueriesExecuted)
}
