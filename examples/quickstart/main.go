// Quickstart: the SeeDB paper's running example (Section 1).
//
// A journalist researching millennials compares unmarried US adults
// (target) against married adults (reference) over census data. SeeDB
// evaluates every (dimension, measure, AVG) view and recommends the ones
// whose target and reference distributions deviate most — surfacing the
// capital-gain-by-sex chart of Figure 1a without the journalist having to
// construct dozens of charts by hand.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"seedb"
)

func main() {
	client := seedb.New()

	// Load the built-in census dataset (a synthetic equivalent of the
	// UCI adult data with the paper's planted structure) into the
	// column store.
	if err := client.LoadDataset("census", seedb.ColumnLayout); err != nil {
		log.Fatal(err)
	}

	// The analyst's query: unmarried adults, compared against married
	// adults (the complement of the query subset). The marital attribute
	// itself is excluded from the view space: grouping by the attribute
	// the query conditions on yields degenerate single-group charts that
	// trivially maximize deviation.
	req := seedb.Request{
		Table:       "census",
		TargetWhere: "marital = 'Unmarried'",
		Reference:   seedb.RefComplement,
		Dimensions: []string{
			"sex", "race", "education", "workclass", "occupation",
			"relationship", "country", "income", "age_decade",
		},
	}
	res, err := client.Recommend(context.Background(), req, seedb.Options{
		K:        5,
		Strategy: seedb.Comb,      // sharing + phased pruning
		Pruning:  seedb.CIPruning, // Hoeffding–Serfling confidence intervals
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SeeDB recommendations for unmarried vs married adults:")
	fmt.Println()
	for i, rec := range res.Recommendations {
		fmt.Printf("#%d  %s\n", i+1, seedb.RenderChartLabeled(rec, "unmarried", "married"))
	}

	// The deviation metric in action: compare the interesting view of
	// Figure 1a with the boring one of Figure 1b.
	fmt.Println("Figure 1 contrast — deviation separates interesting from boring:")
	for _, probe := range []seedb.Request{
		{Table: "census", TargetWhere: req.TargetWhere, Reference: seedb.RefComplement,
			Dimensions: []string{"sex"}, Measures: []string{"capital_gain"}},
		{Table: "census", TargetWhere: req.TargetWhere, Reference: seedb.RefComplement,
			Dimensions: []string{"sex"}, Measures: []string{"age"}},
	} {
		r, err := client.Recommend(context.Background(), probe, seedb.Options{K: 1, Strategy: seedb.Sharing})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(seedb.RenderChartLabeled(r.Recommendations[0], "unmarried", "married"))
	}

	m := res.Metrics
	fmt.Printf("evaluated %d candidate views with %d SQL queries over %d row-visits in %v (%d views pruned)\n",
		m.Views, m.QueriesExecuted, m.RowsScanned, m.Elapsed.Round(1000000), m.PrunedViews)
}
