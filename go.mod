module seedb

go 1.24
