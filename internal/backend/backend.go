// Package backend defines the seam between the SeeDB recommendation
// middleware and the data store it runs on.
//
// The paper's architecture (Section 3, Figure 3) deliberately separates
// the middleware — view generation, sharing optimizations, pruning,
// phased execution — from the DBMS that executes the generated
// aggregation queries, so the same optimizer can sit in front of any
// store. This package is that separation made concrete: core.Engine
// depends only on the Backend interface, and a Backend supplies three
// things:
//
//   - schema introspection (TableInfo, TableStats), which feeds the view
//     generator's dimension/measure classification and the bin-packing
//     group-by optimizer;
//   - dataset versioning (TableVersion), which keys the shared result
//     cache so stale entries become unreachable when data changes;
//   - query execution (Exec), which runs one generated SQL aggregation
//     query and returns materialized rows plus execution stats.
//
// Two implementations ship with the repository: Embedded (this package)
// wraps the in-process sqldb column/row store with zero behavior change,
// and sqlbe (a subpackage) pushes the combined CASE-flag aggregate
// queries through database/sql to any external SQL store.
//
// Not every store supports every engine optimization, so backends
// declare Capabilities and the engine degrades gracefully: phased
// sharing-aware execution (COMB/COMB_EARLY) for backends with row-range
// scans, single-pass combined queries (SHARING) otherwise. The
// conformancetest subpackage checks any implementation against the
// embedded reference, modulo exactly those documented degradations.
package backend

import (
	"context"
	"errors"
	"strings"
	"time"

	"seedb/internal/sqldb"
)

// ErrNoTable reports that a table does not exist in the backend's
// store. TableInfo implementations return it (possibly wrapped) when
// they can tell the difference between a missing table and a store
// failure; callers match with errors.Is.
var ErrNoTable = errors.New("backend: table does not exist")

// ErrUnavailable reports that the backing store could not be reached or
// answered with a server-side failure — an outage, not a client mistake.
// Network backends (internal/backend/netbe) wrap it around transport
// errors and remote 5xx responses after their retry budget is spent; the
// shard router preserves it through its child-error wrapping. The HTTP
// server's error classifier maps it to 502 Bad Gateway, which is what
// lets an upstream netbe's retry policy key off status codes instead of
// guessing from message text.
var ErrUnavailable = errors.New("backend: store unavailable")

// Value is the engine's runtime scalar, shared with the embedded store
// so the hot path (the embedded adapter) moves rows without conversion.
type Value = sqldb.Value

// ColumnType identifies a column's declared type.
type ColumnType = sqldb.ColumnType

// Layout identifies a table's physical storage organization. External
// backends that do not know (or do not expose) their physical layout
// should report LayoutRow, whose larger group-by memory budget is the
// conservative default for general-purpose stores.
type Layout = sqldb.Layout

// Column types and layouts, re-exported so engine code above this seam
// does not import the embedded store directly.
const (
	TypeInt    = sqldb.TypeInt
	TypeFloat  = sqldb.TypeFloat
	TypeString = sqldb.TypeString
	TypeBool   = sqldb.TypeBool

	LayoutRow = sqldb.LayoutRow
	LayoutCol = sqldb.LayoutCol
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type ColumnType
}

// TableInfo is the schema-level description of one table, as the view
// generator and the engine's option defaulting need it.
type TableInfo struct {
	// Name is the table's canonical name.
	Name string
	// Columns lists the table's attributes in declaration order.
	Columns []Column
	// Rows is the current row count. The phased execution framework
	// partitions [0, Rows) into scan ranges; backends without
	// SupportsPhasedExecution still report it for diagnostics.
	Rows int
	// Layout is the physical layout, which selects the engine's default
	// group-by memory budget (Figure 8a of the paper).
	Layout Layout
}

// Lookup returns the named column (case-insensitive) and whether it
// exists.
func (ti TableInfo) Lookup(name string) (Column, bool) {
	for _, c := range ti.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return Column{}, false
}

// ColumnStats summarizes one column for the view generator (which
// classifies columns into dimension and measure attributes) and the
// bin-packing group-by optimizer (which needs distinct counts).
type ColumnStats struct {
	Name string
	Type ColumnType
	// Distinct is the distinct non-NULL value count. Exact for the
	// embedded store; external backends may estimate.
	Distinct int
}

// TableStats holds per-column statistics for a table.
type TableStats struct {
	Rows    int
	Columns []ColumnStats
}

// Column returns stats for the named column (case-insensitive).
func (ts *TableStats) Column(name string) (ColumnStats, bool) {
	for _, c := range ts.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return ColumnStats{}, false
}

// ExecOptions controls one query execution.
type ExecOptions struct {
	// Lo and Hi restrict the scan to base-table rows in [Lo, Hi).
	// Hi <= 0 means "to the end of the table". Only meaningful on
	// backends with SupportsPhasedExecution; others must reject a
	// sub-range rather than silently scan everything.
	Lo, Hi int
	// Workers is the intra-query scan parallelism hint. Backends without
	// SupportsVectorized ignore it.
	Workers int
	// NoSelectionKernels disables compiled predicate selection kernels
	// inside a vectorized executor (a cost-only benchmarking knob).
	// Backends without SupportsVectorized ignore it.
	NoSelectionKernels bool
	// AllowPartial opts this execution into degraded results on routing
	// backends (internal/backend/shardbe): child shards that are
	// unavailable (hard failure or open circuit breaker) are skipped and
	// the merge proceeds over the survivors, with the omission reported
	// in ExecStats.ShardsDegraded/DegradedShards. Leaf backends ignore
	// it — a single store is either available or not.
	AllowPartial bool
}

// partialKey carries the per-request degraded-results opt-in through
// the context. Introspection calls (TableInfo, TableStats) have no
// options parameter, and interface wrappers (locking guards, fault
// injectors) defeat optional-interface assertions — the context is the
// one channel that reaches a routing backend through both.
type partialKey struct{}

// WithAllowPartial marks ctx as opted into degraded results, so routing
// backends tolerate unavailable children on the introspection paths the
// same way ExecOptions.AllowPartial covers Exec.
func WithAllowPartial(ctx context.Context) context.Context {
	return context.WithValue(ctx, partialKey{}, true)
}

// AllowPartialFrom reports whether ctx carries the degraded-results
// opt-in set by WithAllowPartial.
func AllowPartialFrom(ctx context.Context) bool {
	b, _ := ctx.Value(partialKey{}).(bool)
	return b
}

// ExecStats reports what one query execution cost. Fields a backend
// cannot measure are zero (see the capability matrix in
// docs/BACKENDS.md).
type ExecStats struct {
	// RowsScanned is the number of base-table rows visited (0 when the
	// store does not expose scan counts).
	RowsScanned int
	// Groups is the number of distinct groups materialized.
	Groups int
	// Vectorized reports whether a parallel vectorized fast path
	// executed the aggregation.
	Vectorized bool
	// FallbackReason says why Vectorized is false (e.g. "serial
	// execution", "non-column group key", "id-space overflow"). Backends
	// that cannot introspect their executor leave it empty; the engine
	// then reports the fallback as "unreported".
	FallbackReason string
	// Workers is the number of scan workers actually used (1 for serial
	// execution).
	Workers int
	// SelectionKernels counts compiled predicate selection kernels the
	// execution used; ResidualPredicates counts predicate conjuncts that
	// stayed on a row-at-a-time path. Zero on backends without an
	// engine-side vectorized executor.
	SelectionKernels   int
	ResidualPredicates int
	// ShardFanout counts the child-backend executions a routing backend
	// (internal/backend/shardbe) fanned this query out to; leaf backends
	// leave it zero. ShardStragglerMax is the slowest of those child
	// executions — the fan-out's critical path, since the merge cannot
	// start until the last shard answers.
	ShardFanout       int
	ShardStragglerMax time.Duration
	// ShardPartialsCached counts child executions a routing backend
	// answered from its per-shard partial memo (keyed by the child's own
	// version token) instead of re-executing; they do not appear in
	// ShardFanout, which counts real executions only.
	ShardPartialsCached int
	// HedgedPartials counts speculative duplicate child executions a
	// routing backend issued against stragglers; HedgeWins counts the
	// duplicates that answered first (the primary was then cancelled).
	// Exactly one result per partial ever reaches the merge, hedged or
	// not.
	HedgedPartials int
	HedgeWins      int
	// NetRetries counts transparent retries a network child backend
	// (internal/backend/netbe) performed inside this execution after
	// retryable transport or 5xx failures. Zero means every round trip
	// succeeded first try.
	NetRetries int
	// ShardsDegraded counts child shards this execution skipped because
	// they were unavailable and ExecOptions.AllowPartial was set; the
	// result covers only the surviving shards' rows. DegradedShards
	// lists their indices (sorted). Both are zero/nil for complete
	// results — callers (and the result cache, which must never admit a
	// partial result) key off ShardsDegraded > 0.
	ShardsDegraded int
	DegradedShards []int
}

// Rows is a fully materialized query result: named columns over rows of
// engine scalars.
type Rows struct {
	Columns []string
	Rows    [][]Value
}

// Capabilities declares which engine optimizations a backend can
// support. The engine consults them once per request and degrades
// gracefully: a missing capability changes cost, never correctness.
type Capabilities struct {
	// SupportsVectorized reports whether Exec honors ExecOptions.Workers
	// with an intra-query parallel scan.
	SupportsVectorized bool
	// SupportsPhasedExecution reports whether Exec honors the
	// ExecOptions.Lo/Hi row-range restriction, which SeeDB's phased
	// execution framework (Section 3) needs to process the i-th of n
	// partitions. Without it the engine rewrites COMB/COMB_EARLY
	// requests to the single-pass SHARING strategy.
	SupportsPhasedExecution bool
}

// Backend is a data store the SeeDB engine can recommend over.
//
// Implementations must be safe for concurrent use: the engine issues
// view queries from a worker pool, and one backend may serve many
// concurrent Recommend invocations.
type Backend interface {
	// Name identifies the backend implementation (e.g. "sqldb", "sql").
	// It namespaces cache version tokens, so two backends over
	// coincidentally same-named tables never share cache entries.
	Name() string
	// Capabilities reports which optional engine optimizations this
	// backend supports.
	Capabilities() Capabilities
	// TableInfo returns the schema-level description of a table. A
	// missing table is reported as ErrNoTable (possibly wrapped); any
	// other error means the store could not be introspected — callers
	// must not conflate the two (an outage is not a bad table name).
	// Introspection against a slow external store must honor ctx
	// cancellation, like Exec.
	TableInfo(ctx context.Context, table string) (TableInfo, error)
	// TableVersion returns an opaque token identifying the table's
	// current contents, and whether the table exists. Any data change
	// must yield a token never seen before; the shared result cache
	// embeds it in every key, which is what makes invalidation purely
	// versioned. Backends that cannot observe external writes return an
	// instance-scoped token and document the staleness window. A
	// cancelled ctx reports the table as absent (the engine then treats
	// the request as uncacheable or fails on a later ctx check).
	TableVersion(ctx context.Context, table string) (string, bool)
	// TableStats returns per-column statistics for the view generator
	// and the bin-packing optimizer, honoring ctx cancellation.
	TableStats(ctx context.Context, table string) (*TableStats, error)
	// Exec runs one SQL query and returns the materialized result and
	// its execution stats. The query text is generated by the engine's
	// query builder (SELECT ... FROM t [WHERE ...] GROUP BY ... with
	// optional CASE-flag group columns); ctx cancellation must abort
	// long scans.
	Exec(ctx context.Context, query string, opts ExecOptions) (*Rows, ExecStats, error)
}
