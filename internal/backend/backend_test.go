package backend

import (
	"context"
	"errors"
	"strings"
	"testing"

	"seedb/internal/sqldb"
)

// buildDB creates an embedded database with one small column-store table.
func buildDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "region", Type: sqldb.TypeString},
		sqldb.Column{Name: "qty", Type: sqldb.TypeInt},
		sqldb.Column{Name: "price", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable("sales", schema, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]sqldb.Value{
		{sqldb.Str("east"), sqldb.Int(1), sqldb.Float(1.5)},
		{sqldb.Str("west"), sqldb.Int(2), sqldb.Float(2.5)},
		{sqldb.Str("east"), sqldb.Int(3), sqldb.Float(3.5)},
		{sqldb.Str("west"), sqldb.Int(4), sqldb.Null()},
	}
	for _, r := range rows {
		if err := tab.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestEmbeddedTableInfo(t *testing.T) {
	db := buildDB(t)
	be := NewEmbedded(db)
	if be.Name() != "sqldb" {
		t.Errorf("Name = %q", be.Name())
	}
	caps := be.Capabilities()
	if !caps.SupportsVectorized || !caps.SupportsPhasedExecution {
		t.Errorf("embedded capabilities = %+v, want all true", caps)
	}
	ti, err := be.TableInfo(context.Background(), "sales")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Name != "sales" || ti.Rows != 4 || ti.Layout != LayoutCol {
		t.Errorf("TableInfo = %+v", ti)
	}
	if len(ti.Columns) != 3 || ti.Columns[0].Name != "region" || ti.Columns[0].Type != TypeString {
		t.Errorf("Columns = %+v", ti.Columns)
	}
	if c, ok := ti.Lookup("PRICE"); !ok || c.Type != TypeFloat {
		t.Errorf("Lookup(PRICE) = %+v %v", c, ok)
	}
	if _, ok := ti.Lookup("nope"); ok {
		t.Error("Lookup(nope) should miss")
	}
	if _, err := be.TableInfo(context.Background(), "missing"); !errors.Is(err, ErrNoTable) {
		t.Errorf("TableInfo(missing) = %v, want ErrNoTable", err)
	}
}

func TestEmbeddedTableVersionChangesOnAppend(t *testing.T) {
	db := buildDB(t)
	be := NewEmbedded(db)
	v1, ok := be.TableVersion(context.Background(), "sales")
	if !ok || v1 == "" {
		t.Fatalf("TableVersion = %q %v", v1, ok)
	}
	tab, _ := db.Table("sales")
	if err := tab.AppendRow([]sqldb.Value{sqldb.Str("north"), sqldb.Int(9), sqldb.Float(9)}); err != nil {
		t.Fatal(err)
	}
	v2, _ := be.TableVersion(context.Background(), "sales")
	if v1 == v2 {
		t.Errorf("version unchanged after append: %q", v1)
	}
}

func TestEmbeddedStatsAndExec(t *testing.T) {
	db := buildDB(t)
	be := NewEmbedded(db)
	ts, err := be.TableStats(context.Background(), "sales")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 4 {
		t.Errorf("stats rows = %d", ts.Rows)
	}
	if c, ok := ts.Column("region"); !ok || c.Distinct != 2 || c.Type != TypeString {
		t.Errorf("region stats = %+v %v", c, ok)
	}

	rows, stats, err := be.Exec(context.Background(),
		"SELECT region, SUM(qty) FROM sales GROUP BY region", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 || stats.Groups != 2 || stats.RowsScanned != 4 {
		t.Errorf("rows=%d stats=%+v", len(rows.Rows), stats)
	}

	// Row-range restriction (the phased-execution primitive).
	rows, _, err = be.Exec(context.Background(),
		"SELECT region, SUM(qty) FROM sales GROUP BY region", ExecOptions{Lo: 0, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, r := range rows.Rows {
		f, _ := r[1].AsFloat()
		total += f
	}
	if total != 3 { // rows 0 and 1: qty 1 + 2
		t.Errorf("partition sum = %v, want 3", total)
	}

	// Parallel scan reports vectorized stats.
	_, stats, err = be.Exec(context.Background(),
		"SELECT region, SUM(qty) FROM sales GROUP BY region", ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Vectorized {
		t.Errorf("Workers=4 over col store should vectorize, stats=%+v", stats)
	}

	// Errors surface.
	if _, _, err := be.Exec(context.Background(), "SELECT nope FROM missing", ExecOptions{}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("want missing-table error, got %v", err)
	}
}
