// Package conformancetest is the shared conformance harness for Backend
// implementations: it runs the engine's full behavior matrix — sharing
// rewrites, pruning schemes, phased execution, reference modes, cache
// reuse and invalidation — against a backend under test and requires the
// results to match an embedded-reference run bit for bit.
//
// Capability degradations are honored exactly as the engine applies
// them (core.EffectiveStrategy): a backend without row-range scans is
// compared against the reference running the degraded single-pass
// strategy, so the harness verifies the documented behavior, not a
// fiction. Everything else — which views win, their utilities, their
// distributions, how many queries were executed — must agree exactly.
//
// To check a new backend, give the harness a constructor that builds
// the backend over the harness's canonical source data (an embedded
// sqldb database the reference engine also reads) and call Run from a
// test in your package:
//
//	func TestConformance(t *testing.T) {
//		conformancetest.Harness{
//			New: func(tb testing.TB, db *sqldb.DB) backend.Backend {
//				return mybackend.New(loadInto(tb, db))
//			},
//		}.Run(t)
//	}
package conformancetest

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"seedb/internal/backend"
	"seedb/internal/core"
	"seedb/internal/sqldb"
)

// Harness drives the conformance suite for one Backend implementation.
type Harness struct {
	// New constructs the backend under test over the canonical source
	// database. The backend must serve the same data db holds (wrap db
	// directly, or mirror its contents into the external store).
	New func(tb testing.TB, db *sqldb.DB) backend.Backend
	// Invalidate signals the backend that db's contents changed, for
	// backends whose TableVersion cannot observe source writes (e.g.
	// sqlbe's instance-scoped generations need a BumpVersion). Nil when
	// versioning tracks the source automatically.
	Invalidate func(be backend.Backend)
}

// SourceTable is the name of the canonical conformance table.
const SourceTable = "conf"

// BuildSource creates the canonical conformance dataset: a column-store
// table mixing string/bool/int dimensions with int/float measures,
// including NULLs, so every merge and classification path is exercised.
//
// Float measures are multiples of 0.25 with bounded magnitude, so every
// partial sum is exactly representable and any association order yields
// identical bits (the same discipline as sqldb/difftest). That is what
// lets the harness hold partition-merging backends — the shard router
// combines per-shard SUM/AVG partials — to bit-identical results instead
// of a tolerance.
func BuildSource(tb testing.TB, rows int) *sqldb.DB {
	tb.Helper()
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "region", Type: sqldb.TypeString},
		sqldb.Column{Name: "segment", Type: sqldb.TypeString},
		sqldb.Column{Name: "active", Type: sqldb.TypeBool},
		sqldb.Column{Name: "code", Type: sqldb.TypeInt},
		sqldb.Column{Name: "qty", Type: sqldb.TypeInt},
		sqldb.Column{Name: "price", Type: sqldb.TypeFloat},
		sqldb.Column{Name: "score", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable(SourceTable, schema, sqldb.LayoutCol)
	if err != nil {
		tb.Fatal(err)
	}
	appendSourceRows(tb, tab, rows, 1)
	return db
}

// appendSourceRows appends deterministic pseudo-random rows.
func appendSourceRows(tb testing.TB, tab sqldb.Table, rows int, seed int64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"east", "west", "north", "south"}
	segments := []string{"retail", "wholesale", "online"}
	for i := 0; i < rows; i++ {
		// Exactly-summable floats (multiples of 0.25): see BuildSource.
		price := sqldb.Float(float64(rng.Intn(400))*0.25 + 1)
		if rng.Intn(20) == 0 {
			price = sqldb.Null()
		}
		row := []sqldb.Value{
			sqldb.Str(regions[rng.Intn(len(regions))]),
			sqldb.Str(segments[rng.Intn(len(segments))]),
			sqldb.Bool(rng.Intn(3) > 0),
			sqldb.Int(int64(rng.Intn(8))),
			sqldb.Int(int64(rng.Intn(100000))),
			price,
			sqldb.Float(float64(rng.Intn(241)-120) * 0.25),
		}
		if err := tab.AppendRow(row); err != nil {
			tb.Fatal(err)
		}
	}
}

// request is the canonical analyst query over the conformance table.
func request() core.Request {
	return core.Request{
		Table:       SourceTable,
		TargetWhere: "segment = 'online'",
		Dimensions:  []string{"region", "segment", "active", "code"},
		Measures:    []string{"qty", "price", "score"},
	}
}

// scenario is one engine configuration of the behavior matrix.
type scenario struct {
	name string
	req  func(core.Request) core.Request
	opts core.Options
}

// scenarios spans strategies × pruning × reference modes × group-by
// strategies × sharing ablations, mirroring the engine's own test
// matrix (sharing, pruning, phased execution).
func scenarios() []scenario {
	id := func(r core.Request) core.Request { return r }
	complement := func(r core.Request) core.Request { r.Reference = core.RefComplement; return r }
	custom := func(r core.Request) core.Request {
		r.Reference = core.RefCustom
		r.ReferenceWhere = "region = 'west' OR region = 'north'"
		return r
	}
	multiAgg := func(r core.Request) core.Request {
		r.Aggs = []core.AggFunc{core.AggAvg, core.AggSum, core.AggCount, core.AggMin, core.AggMax}
		return r
	}
	derived := func(r core.Request) core.Request {
		r.Dimensions, r.Measures = nil, nil
		return r
	}
	return []scenario{
		{"noopt", id, core.Options{Strategy: core.NoOpt, K: 4}},
		{"sharing", id, core.Options{Strategy: core.Sharing, K: 4}},
		{"sharing/complement", complement, core.Options{Strategy: core.Sharing, K: 4}},
		{"sharing/custom-ref", custom, core.Options{Strategy: core.Sharing, K: 4}},
		{"sharing/multi-agg", multiAgg, core.Options{Strategy: core.Sharing, K: 6, MaxAggregatesPerQuery: 2}},
		{"sharing/no-combine-targetref", id, core.Options{Strategy: core.Sharing, K: 4, DisableCombineTargetRef: true}},
		{"sharing/no-combine-aggs", multiAgg, core.Options{Strategy: core.Sharing, K: 4, DisableCombineAggregates: true}},
		{"sharing/binpack", id, core.Options{Strategy: core.Sharing, K: 4, GroupBy: core.GroupByBinPack, GroupBySet: true, MemoryBudget: 64}},
		{"sharing/maxgb", id, core.Options{Strategy: core.Sharing, K: 4, GroupBy: core.GroupByMaxN, GroupBySet: true, MaxGroupBy: 2}},
		{"sharing/derived-metadata", derived, core.Options{Strategy: core.Sharing, K: 4}},
		{"comb/ci", id, core.Options{Strategy: core.Comb, Pruning: core.CIPruning, K: 3, Phases: 6}},
		{"comb/mab", id, core.Options{Strategy: core.Comb, Pruning: core.MABPruning, K: 3}},
		{"comb/nopruning", id, core.Options{Strategy: core.Comb, Pruning: core.NoPruning, K: 3, Phases: 5}},
		{"comb/random", id, core.Options{Strategy: core.Comb, Pruning: core.RandomPruning, K: 3, Seed: 7}},
		{"combearly/ci", id, core.Options{Strategy: core.CombEarly, Pruning: core.CIPruning, K: 3, Phases: 8, ConfidenceScale: 0.4}},
	}
}

// Run executes the full conformance suite against the backend under
// test.
func (h Harness) Run(t *testing.T) {
	t.Run("Scenarios", h.runScenarios)
	t.Run("CacheReuseAndInvalidation", h.runCaching)
	t.Run("IntrospectionCancellation", h.runIntrospectionCancellation)
}

// runIntrospectionCancellation checks the introspection half of the
// Backend contract honors context cancellation: against a fresh backend
// (no introspection memo), a cancelled ctx must fail TableInfo and
// TableStats promptly and report no version token, rather than issuing
// store round-trips whose results the caller will discard.
func (h Harness) runIntrospectionCancellation(t *testing.T) {
	db := BuildSource(t, 300)
	under := h.New(t, db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := under.TableInfo(ctx, SourceTable); err == nil {
		t.Error("TableInfo with a cancelled ctx must fail")
	}
	if _, err := under.TableStats(ctx, SourceTable); err == nil {
		t.Error("TableStats with a cancelled ctx must fail")
	}
	if v, ok := under.TableVersion(ctx, SourceTable); ok {
		t.Errorf("TableVersion with a cancelled ctx reported %q, want absent", v)
	}

	// And the same calls succeed once the context is live again.
	live := context.Background()
	if _, err := under.TableInfo(live, SourceTable); err != nil {
		t.Errorf("TableInfo after cancellation: %v", err)
	}
	if _, err := under.TableStats(live, SourceTable); err != nil {
		t.Errorf("TableStats after cancellation: %v", err)
	}
}

// runScenarios compares every scenario's complete output against the
// embedded reference, and checks the executor-counter invariants.
func (h Harness) runScenarios(t *testing.T) {
	db := BuildSource(t, 2400)
	under := h.New(t, db)
	ref := core.NewEngine(backend.NewEmbedded(db))
	caps := under.Capabilities()
	ctx := context.Background()

	for _, sc := range scenarios() {
		t.Run(sc.name, func(t *testing.T) {
			req := sc.req(request())
			opts := sc.opts
			// ScanParallelism 1 keeps float aggregation byte-stable, so
			// results must match exactly (the parallel merge reassociates
			// float addition and is checked separately by sqldb/difftest).
			opts.ScanParallelism = 1
			opts.KeepAllViews = true
			// Pin the group-by strategy unless the scenario chose one: the
			// engine's default depends on the backend's reported layout
			// (row stores bin-pack, column stores stay single-attribute),
			// and different groupings reassociate float accumulation. The
			// layout-default behavior itself is covered by engine tests.
			if !opts.GroupBySet {
				opts.GroupBy, opts.GroupBySet = core.GroupBySingle, true
			}

			// The reference executes the strategy the engine will actually
			// run on the backend under test (documented degradation).
			refOpts := opts
			refOpts.Strategy = core.EffectiveStrategy(opts.Strategy, caps)
			want, err := ref.Recommend(ctx, req, refOpts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.NewEngine(under).Recommend(ctx, req, opts)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(got.Recommendations, want.Recommendations) {
				t.Errorf("recommendations diverge from embedded reference\ngot:  %s\nwant: %s",
					summarize(got.Recommendations), summarize(want.Recommendations))
			}
			if !reflect.DeepEqual(got.AllViews, want.AllViews) {
				t.Errorf("full view ranking diverges from embedded reference")
			}

			// Executor counters must agree between backends: the same
			// effective plan issues the same number of queries, and on
			// every backend the executed count must partition into
			// vectorized + fallback.
			if got.Metrics.QueriesExecuted != want.Metrics.QueriesExecuted {
				t.Errorf("QueriesExecuted = %d, reference executed %d",
					got.Metrics.QueriesExecuted, want.Metrics.QueriesExecuted)
			}
			checkCounterInvariant(t, got.Metrics)
			checkCounterInvariant(t, want.Metrics)
		})
	}
}

// checkCounterInvariant asserts QueriesExecuted == VectorizedQueries +
// FallbackQueries (cache hits count in neither).
func checkCounterInvariant(t *testing.T, m core.Metrics) {
	t.Helper()
	if m.QueriesExecuted != m.VectorizedQueries+m.FallbackQueries {
		t.Errorf("counter invariant violated: QueriesExecuted=%d, Vectorized=%d + Fallback=%d",
			m.QueriesExecuted, m.VectorizedQueries, m.FallbackQueries)
	}
}

// runCaching exercises the shared result cache through the backend
// under test: whole-request reuse, reference-view reuse across different
// target predicates, and versioned invalidation after the data changes.
func (h Harness) runCaching(t *testing.T) {
	db := BuildSource(t, 1200)
	under := h.New(t, db)
	eng := core.NewEngine(under)
	ctx := context.Background()
	req := request()
	opts := core.Options{Strategy: core.Sharing, K: 3, EnableCache: true, ScanParallelism: 1}

	cold, err := eng.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Metrics.QueriesExecuted == 0 || cold.Metrics.ServedFromCache {
		t.Fatalf("cold run metrics: %+v", cold.Metrics)
	}

	warm, err := eng.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Metrics.ServedFromCache || warm.Metrics.QueriesExecuted != 0 {
		t.Errorf("repeat request not served from cache: %+v", warm.Metrics)
	}
	if !reflect.DeepEqual(cold.Recommendations, warm.Recommendations) {
		t.Error("cached result diverges from cold result")
	}

	// A different target predicate under RefAll reuses the materialized
	// reference views: the second request issues target-only queries.
	other := req
	other.TargetWhere = "region = 'east'"
	reused, err := eng.Recommend(ctx, other, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reused.Metrics.RefViewsReused == 0 {
		t.Errorf("expected reference-view reuse, metrics: %+v", reused.Metrics)
	}

	// Changing the data must invalidate: append rows to the source and
	// tell the backend (when its versioning cannot see source writes).
	tab, ok := db.Table(SourceTable)
	if !ok {
		t.Fatal("source table missing")
	}
	appendSourceRows(t, tab, 300, 99)
	if h.Invalidate != nil {
		h.Invalidate(under)
	}
	fresh, err := eng.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Metrics.ServedFromCache || fresh.Metrics.QueriesExecuted == 0 {
		t.Errorf("post-invalidation request served stale: %+v", fresh.Metrics)
	}
}

// summarize renders a recommendation list compactly for failure output.
func summarize(recs []core.Recommendation) string {
	out := ""
	for i, r := range recs {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s:%.6f", r.View, r.Utility)
	}
	return out
}
