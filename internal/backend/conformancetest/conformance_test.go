package conformancetest

import (
	"testing"

	"seedb/internal/backend"
	"seedb/internal/backend/sqlbe"
	"seedb/internal/sqldb"
	"seedb/internal/sqldriver"
)

// TestEmbeddedConformance runs the suite against the embedded sqldb
// adapter — the reference implementation must (trivially but
// verifiably) conform to itself, including counters and caching.
func TestEmbeddedConformance(t *testing.T) {
	Harness{
		New: func(tb testing.TB, db *sqldb.DB) backend.Backend {
			return backend.NewEmbedded(db)
		},
	}.Run(t)
}

// TestSQLBackendConformance runs the suite against the database/sql
// backend, reaching the same source data through the sqldriver stub —
// the full external-store path: SQL text → database/sql → driver →
// store and row values back up through driver-value conversion.
func TestSQLBackendConformance(t *testing.T) {
	Harness{
		New: func(tb testing.TB, db *sqldb.DB) backend.Backend {
			return sqlbe.New(sqldriver.Open(db), sqlbe.Options{})
		},
		// sqlbe's instance-scoped versions cannot observe writes to the
		// source store; the operator contract is to bump on change.
		Invalidate: func(be backend.Backend) {
			be.(*sqlbe.Backend).BumpVersion()
		},
	}.Run(t)
}
