package conformancetest

import (
	"context"
	"net/http/httptest"
	"testing"

	"seedb/internal/backend"
	"seedb/internal/backend/netbe"
	"seedb/internal/backend/shardbe"
	"seedb/internal/server"
	"seedb/internal/sqldb"
)

// startRemote stands up a seedb-server over db and connects a netbe
// client to it.
func startRemote(tb testing.TB, db *sqldb.DB) *netbe.Client {
	tb.Helper()
	srv := httptest.NewServer(server.New(db))
	tb.Cleanup(srv.Close)
	c, err := netbe.New(context.Background(), srv.URL, netbe.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// TestNetBackendConformance holds the network backend bit-identical to
// the embedded reference: the backend under test is a netbe client
// whose remote server serves the harness's own source database, so
// every divergence is the wire protocol's fault — value encoding, stats
// transport, version tokens, error mapping. The remote embedded store
// keeps full capabilities, so phased strategies run phased end to end
// (Lo/Hi travel in the query request).
//
// No Invalidate hook: the remote server reads the source database
// directly, and the embedded store's version tokens observe the
// harness's appends, so the version endpoint stays truthful on its own.
func TestNetBackendConformance(t *testing.T) {
	Harness{
		New: func(tb testing.TB, db *sqldb.DB) backend.Backend {
			return startRemote(tb, db)
		},
	}.Run(t)
}

// TestShardedNetBackendConformance is the scale-out deployment the
// paper's middleware architecture promises, in miniature: a shard
// router whose two children are netbe clients of two separate
// seedb-servers, each holding one contiguous block of the source table.
// The whole stack — partition, remote wire hops, partial-aggregate
// merge — must stay bit-identical to one unsharded in-process run.
func TestShardedNetBackendConformance(t *testing.T) {
	const shards = 2
	var cur struct {
		src *sqldb.DB
		dbs []*sqldb.DB
	}
	mirror := func(tb testing.TB) {
		tb.Helper()
		tab, ok := cur.src.Table(SourceTable)
		if !ok {
			tb.Fatalf("source table %q missing", SourceTable)
		}
		if err := shardbe.ScatterTable(cur.src, SourceTable, cur.dbs, shardbe.Blocks{Total: tab.NumRows()}); err != nil {
			tb.Fatal(err)
		}
	}
	Harness{
		New: func(tb testing.TB, db *sqldb.DB) backend.Backend {
			cur.src = db
			cur.dbs = make([]*sqldb.DB, shards)
			children := make([]backend.Backend, shards)
			for i := range cur.dbs {
				cur.dbs[i] = sqldb.NewDB()
			}
			// Scatter before the servers see traffic, then connect one
			// netbe client per child server.
			mirror(tb)
			for i, cdb := range cur.dbs {
				children[i] = startRemote(tb, cdb)
			}
			r, err := shardbe.New(children, shardbe.Options{})
			if err != nil {
				tb.Fatal(err)
			}
			return r
		},
		Invalidate: func(backend.Backend) { mirror(t) },
	}.Run(t)
}
