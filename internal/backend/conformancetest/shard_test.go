package conformancetest

import (
	"testing"

	"seedb/internal/backend"
	"seedb/internal/backend/shardbe"
	"seedb/internal/sqldb"
)

// TestShardRouterConformance holds the shard router (2 and 4 embedded
// children) bit-identical to the unsharded embedded reference across the
// whole behavior matrix: strategies × pruning × reference modes ×
// group-by strategies, plus cache reuse and versioned invalidation.
//
// Children are loaded with the contiguous block partitioner, so the
// router's shard-major global row space equals the source insertion
// order: phased execution then scans exactly the row subsets the
// reference scans, and the merge's shard-order group appending
// reproduces the reference's first-seen group order. The embedded
// children keep every capability, so no strategy degrades — COMB and
// COMB_EARLY run phased on both sides.
func TestShardRouterConformance(t *testing.T) {
	for _, shards := range []int{2, 4} {
		t.Run(shardName(shards), func(t *testing.T) {
			// The caching sub-suite appends to the SOURCE database and then
			// calls Invalidate; re-scattering refreshes the children (and
			// bumps their versions, which is what invalidates the router's
			// version vector). Sub-suites run sequentially, so tracking the
			// most recent mirror is sound.
			var cur struct {
				src *sqldb.DB
				dbs []*sqldb.DB
			}
			mirror := func(tb testing.TB) {
				tb.Helper()
				tab, ok := cur.src.Table(SourceTable)
				if !ok {
					tb.Fatalf("source table %q missing", SourceTable)
				}
				if err := shardbe.ScatterTable(cur.src, SourceTable, cur.dbs, shardbe.Blocks{Total: tab.NumRows()}); err != nil {
					tb.Fatal(err)
				}
			}
			Harness{
				New: func(tb testing.TB, db *sqldb.DB) backend.Backend {
					dbs, bes := shardbe.EmbeddedChildren(shards)
					cur.src, cur.dbs = db, dbs
					mirror(tb)
					r, err := shardbe.New(bes, shardbe.Options{})
					if err != nil {
						tb.Fatal(err)
					}
					return r
				},
				Invalidate: func(backend.Backend) { mirror(t) },
			}.Run(t)
		})
	}
}

// shardName renders a sub-test name for a shard count.
func shardName(n int) string {
	return map[int]string{2: "2children", 4: "4children"}[n]
}
