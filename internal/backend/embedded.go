package backend

import (
	"context"
	"fmt"

	"seedb/internal/sqldb"
)

// Embedded adapts the in-process sqldb store to the Backend interface
// with zero behavior change: queries, row-range scans and the parallel
// vectorized executor are delegated directly, and result rows are shared
// (not copied) with the underlying store's materialized results.
type Embedded struct {
	db *sqldb.DB
}

// NewEmbedded wraps db as a Backend.
func NewEmbedded(db *sqldb.DB) *Embedded {
	return &Embedded{db: db}
}

// DB returns the underlying embedded database, for table management
// paths (loading datasets, appending rows) that are inherently
// embedded-only.
func (b *Embedded) DB() *sqldb.DB { return b.db }

// Name identifies the embedded store.
func (b *Embedded) Name() string { return "sqldb" }

// Capabilities: the embedded store supports everything — row-range
// scans for phased execution, and the parallel vectorized fast path.
func (b *Embedded) Capabilities() Capabilities {
	return Capabilities{
		SupportsVectorized:      true,
		SupportsPhasedExecution: true,
	}
}

// TableInfo describes a table from the live catalog. The lookup is an
// in-memory map read, so ctx only gates entry (a cancelled context
// fails fast instead of returning metadata the caller will discard).
func (b *Embedded) TableInfo(ctx context.Context, table string) (TableInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return TableInfo{}, err
	}
	t, ok := b.db.Table(table)
	if !ok {
		return TableInfo{}, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	schema := t.Schema()
	cols := make([]Column, schema.NumColumns())
	for i := range cols {
		c := schema.Column(i)
		cols[i] = Column{Name: c.Name, Type: c.Type}
	}
	return TableInfo{
		Name:    t.Name(),
		Columns: cols,
		Rows:    t.NumRows(),
		Layout:  t.Layout(),
	}, nil
}

// TableVersion delegates to the store's versioned catalog (process-unique
// DB id + catalog epoch + row generation), so every load, append and
// drop-and-reload yields a fresh token. A cancelled ctx reports the
// table as absent.
func (b *Embedded) TableVersion(ctx context.Context, table string) (string, bool) {
	if ctxErr(ctx) != nil {
		return "", false
	}
	return b.db.TableVersion(table)
}

// TableStats converts the store's exact single-scan statistics. The
// statistics scan itself honors ctx, so introspecting a huge cold table
// is cancellable, not just Exec.
func (b *Embedded) TableStats(ctx context.Context, table string) (*TableStats, error) {
	ts, err := b.db.StatsContext(ctx, table)
	if err != nil {
		return nil, err
	}
	out := &TableStats{Rows: ts.Rows, Columns: make([]ColumnStats, len(ts.Columns))}
	for i, c := range ts.Columns {
		out.Columns[i] = ColumnStats{Name: c.Name, Type: c.Type, Distinct: c.Distinct}
	}
	return out, nil
}

// Exec executes one query with full support for row ranges and
// intra-query scan parallelism.
func (b *Embedded) Exec(ctx context.Context, query string, opts ExecOptions) (*Rows, ExecStats, error) {
	res, err := b.db.QueryOpts(query, sqldb.ExecOptions{
		Ctx:                ctx,
		Lo:                 opts.Lo,
		Hi:                 opts.Hi,
		Workers:            opts.Workers,
		NoSelectionKernels: opts.NoSelectionKernels,
	})
	if err != nil {
		return nil, ExecStats{}, err
	}
	stats := ExecStats{
		RowsScanned:        res.Stats.RowsScanned,
		Groups:             res.Stats.Groups,
		Vectorized:         res.Stats.Vectorized,
		FallbackReason:     res.Stats.FallbackReason,
		Workers:            res.Stats.Workers,
		SelectionKernels:   res.Stats.SelectionKernels,
		ResidualPredicates: res.Stats.ResidualPredicates,
	}
	return &Rows{Columns: res.Columns, Rows: res.Rows}, stats, nil
}

// ctxErr returns ctx.Err(), tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
