// Package faultbe wraps a backend.Backend with injectable faults —
// added latency and scripted errors — for tests and benchmarks that
// need a misbehaving child on demand: the shard router's hedging tests
// make one child a straggler, the netbe robustness tests script
// outages, and the shard benchmark's hedged-vs-unhedged curve injects a
// deterministic straggler per fan-out.
//
// The wrapper is deliberately boring: it never changes results, only
// when (latency) and whether (errors) they arrive. Latency honors ctx
// cancellation — a hedged loser or a timed-out call aborts its sleep
// immediately, which is exactly the behavior cancellation tests need to
// observe (the Aborted counter counts those).
package faultbe

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"seedb/internal/backend"
)

// Fault is a fault-injecting backend wrapper. Safe for concurrent use.
type Fault struct {
	inner backend.Backend

	mu       sync.Mutex
	delay    time.Duration
	failures int
	failErr  error

	// Flap mode: fail flapFail calls, let flapOK through, repeat.
	flapFail, flapOK int
	flapErr          error
	flapPos          int

	// Down mode: every Exec fails with downErr until cleared.
	downErr error

	execs   atomic.Int64
	failed  atomic.Int64
	aborted atomic.Int64
}

// Wrap decorates inner with fault injection (no faults configured yet).
func Wrap(inner backend.Backend) *Fault {
	return &Fault{inner: inner}
}

// SetExecDelay makes every subsequent Exec sleep d before delegating
// (0 removes the delay). The sleep aborts on ctx cancellation.
func (f *Fault) SetExecDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// FailNextExecs scripts the next n Exec calls to fail with err without
// reaching the inner backend.
func (f *Fault) FailNextExecs(n int, err error) {
	f.mu.Lock()
	f.failures, f.failErr = n, err
	f.mu.Unlock()
}

// SetFlap scripts a repeating fail/recover cycle: the next failN Exec
// calls fail with err, the okN after that delegate normally, then the
// cycle restarts. failN <= 0 clears flap mode. Breaker tests use this
// to drive deterministic open→half-open→open→...→closed sequences.
func (f *Fault) SetFlap(failN, okN int, err error) {
	f.mu.Lock()
	f.flapFail, f.flapOK, f.flapErr, f.flapPos = failN, okN, err, 0
	f.mu.Unlock()
}

// SetDown makes every subsequent Exec fail with err until SetDown(nil)
// restores the child. TableInfo/TableVersion still delegate — this
// models a store whose query path is dead while cheap introspection
// (often cached or served by a proxy) survives, the harder degraded
// case for the shard router.
func (f *Fault) SetDown(err error) {
	f.mu.Lock()
	f.downErr = err
	f.mu.Unlock()
}

// Execs counts Exec calls that reached this wrapper (failed, aborted
// and delegated alike).
func (f *Fault) Execs() int64 { return f.execs.Load() }

// FailedExecs counts Exec calls that failed with an injected error
// (scripted, flap, or down), letting breaker tests assert exactly how
// many calls the child actually rejected.
func (f *Fault) FailedExecs() int64 { return f.failed.Load() }

// Aborted counts Exec calls whose injected delay was cut short by ctx
// cancellation — hedging's cancelled losers land here.
func (f *Fault) Aborted() int64 { return f.aborted.Load() }

// Name delegates to the inner backend, so version tokens and cache keys
// are indistinguishable from the unwrapped store.
func (f *Fault) Name() string { return f.inner.Name() }

// Capabilities delegates to the inner backend.
func (f *Fault) Capabilities() backend.Capabilities { return f.inner.Capabilities() }

// TableInfo delegates to the inner backend.
func (f *Fault) TableInfo(ctx context.Context, table string) (backend.TableInfo, error) {
	return f.inner.TableInfo(ctx, table)
}

// TableVersion delegates to the inner backend.
func (f *Fault) TableVersion(ctx context.Context, table string) (string, bool) {
	return f.inner.TableVersion(ctx, table)
}

// TableStats delegates to the inner backend.
func (f *Fault) TableStats(ctx context.Context, table string) (*backend.TableStats, error) {
	return f.inner.TableStats(ctx, table)
}

// Exec applies the scripted faults, then delegates.
func (f *Fault) Exec(ctx context.Context, query string, opts backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	f.execs.Add(1)
	f.mu.Lock()
	delay := f.delay
	var err error
	switch {
	case f.downErr != nil:
		err = f.downErr
	case f.failures > 0:
		f.failures--
		err = f.failErr
	case f.flapFail > 0:
		cycle := f.flapFail + f.flapOK
		if f.flapPos < f.flapFail {
			err = f.flapErr
		}
		f.flapPos++
		if f.flapPos >= cycle {
			f.flapPos = 0
		}
	}
	f.mu.Unlock()
	if err != nil {
		f.failed.Add(1)
		return nil, backend.ExecStats{}, err
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			f.aborted.Add(1)
			return nil, backend.ExecStats{}, ctx.Err()
		case <-t.C:
		}
	}
	return f.inner.Exec(ctx, query, opts)
}
