// Package netbe implements the network child backend: an HTTP client
// adapter that makes a remote seedb-server a conforming backend.Backend.
// It is the cross-process step of the middleware/DBMS split the paper's
// architecture draws (Section 3) — the engine, the shard router, the
// cache, none of them change; a remote server simply becomes one more
// store behind the seam, and a shardbe router over N netbe children is
// a scale-out deployment instead of an in-process simulation.
//
// Wire contract (shared types in the wire subpackage; the server side
// lives in internal/server):
//
//	GET  /api/backend/caps     handshake: protocol version + capability flags
//	GET  /api/backend/info     TableInfo (404 ⇒ backend.ErrNoTable)
//	GET  /api/backend/stats    TableStats
//	GET  /api/backend/version  TableVersion token
//	POST /api/query            Exec with {"wire":true}: typed values + ExecStats
//
// Tracing: when the caller's context carries a span, every call is
// stamped with a Traceparent header (telemetry.TraceparentHeader), and
// /api/query responses bring the child process's span tree home, which
// Exec grafts under the calling span — one stitched cross-process
// trace. Untraced calls send no header and pay nothing.
//
// Robustness: every call runs under a per-call timeout and a bounded,
// jittered-backoff retry budget. Retries are safe because every call is
// an idempotent read (the server's query path is SELECT-only); they
// fire only on transport failures, torn responses and 5xx statuses —
// 4xx are the caller's mistake and surface immediately. The retry loop
// is context-deadline aware: it never sleeps past the caller's deadline
// and never retries a cancelled call. Exhausted budgets surface as
// errors wrapping backend.ErrUnavailable, which the HTTP server maps to
// 502 — so a router stacked on top of THIS server keys its own retry
// policy off the same status codes.
package netbe

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/netbe/wire"
	"seedb/internal/telemetry"
)

// DefaultName is the backend name when Options.Name is empty.
const DefaultName = "net"

// Options configures a Client.
type Options struct {
	// Name labels the backend instance (default "net"). Version tokens
	// additionally embed the base URL and remote backend name, so two
	// same-named clients of different servers never share cache entries.
	Name string
	// Backend selects which backend of the remote server serves this
	// client's calls ("" = the remote default).
	Backend string
	// HTTPClient overrides the pooled default client (tests inject
	// fault-injecting transports here). Its Timeout is left alone;
	// per-call deadlines come from CallTimeout and the caller's ctx.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, first attempt included
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the backoff before the first retry; it doubles per
	// retry up to MaxBackoff, with ±50% jitter (defaults 25ms / 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// CallTimeout bounds each individual attempt (default 30s), on top
	// of whatever deadline the caller's ctx carries.
	CallTimeout time.Duration
}

// withDefaults fills the zero fields.
func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = DefaultName
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 30 * time.Second
	}
	return o
}

// Stats are cumulative client-side robustness counters (all calls, Exec
// and introspection alike).
type Stats struct {
	// Calls counts logical calls; Attempts counts HTTP round trips
	// issued for them (Attempts - Calls = retries).
	Calls    int64
	Attempts int64
	// Retries counts attempts beyond the first.
	Retries int64
}

// Client is the network backend. It is safe for concurrent use.
type Client struct {
	base  string // normalized base URL, no trailing slash
	opts  Options
	hc    *http.Client
	caps  backend.Capabilities
	calls atomic.Int64
	tries atomic.Int64
}

// New connects to a seedb-server at baseURL and performs the capability
// handshake (under the same retry budget as every other call). The
// returned client reports the remote backend's capabilities, so an
// engine — or a shard router — degrades for the remote store exactly as
// it would in-process.
func New(ctx context.Context, baseURL string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("netbe: invalid base URL %q", baseURL)
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		opts: opts,
		hc:   opts.HTTPClient,
	}
	if c.hc == nil {
		// Pooled transport: netbe children sit on a router's hot path, so
		// keep-alive connections matter more than the default's 2-per-host
		// idle cap allows.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 32
		c.hc = &http.Client{Transport: tr}
	}
	var hs wire.Handshake
	if _, err := c.getJSON(ctx, c.endpoint("/api/backend/caps", ""), &hs); err != nil {
		return nil, fmt.Errorf("netbe: handshake with %s: %w", c.base, err)
	}
	if hs.Proto != wire.ProtoVersion {
		return nil, fmt.Errorf("netbe: server %s speaks wire protocol %d, this client speaks %d", c.base, hs.Proto, wire.ProtoVersion)
	}
	c.caps = backend.Capabilities{
		SupportsVectorized:      hs.SupportsVectorized,
		SupportsPhasedExecution: hs.SupportsPhasedExecution,
	}
	return c, nil
}

// endpoint builds an API URL with the backend selector and optional
// table parameter.
func (c *Client) endpoint(path, table string) string {
	q := url.Values{}
	if c.opts.Backend != "" {
		q.Set("backend", c.opts.Backend)
	}
	if table != "" {
		q.Set("table", table)
	}
	if enc := q.Encode(); enc != "" {
		return c.base + path + "?" + enc
	}
	return c.base + path
}

// Name identifies the backend instance.
func (c *Client) Name() string { return c.opts.Name }

// Base returns the normalized remote base URL.
func (c *Client) Base() string { return c.base }

// Capabilities reports the remote backend's flags from the handshake.
func (c *Client) Capabilities() backend.Capabilities { return c.caps }

// Stats snapshots the client's robustness counters.
func (c *Client) Stats() Stats {
	calls, tries := c.calls.Load(), c.tries.Load()
	return Stats{Calls: calls, Attempts: tries, Retries: tries - calls}
}

// TableInfo fetches the remote table description. A remote 404 surfaces
// as backend.ErrNoTable; outages (after the retry budget) wrap
// backend.ErrUnavailable.
func (c *Client) TableInfo(ctx context.Context, table string) (backend.TableInfo, error) {
	var w wire.TableInfo
	if _, err := c.getJSON(ctx, c.endpoint("/api/backend/info", table), &w); err != nil {
		return backend.TableInfo{}, fmt.Errorf("netbe: table info %s: %w", table, err)
	}
	return w.ToTableInfo(), nil
}

// TableStats fetches the remote per-column statistics.
func (c *Client) TableStats(ctx context.Context, table string) (*backend.TableStats, error) {
	var w wire.TableStats
	if _, err := c.getJSON(ctx, c.endpoint("/api/backend/stats", table), &w); err != nil {
		return nil, fmt.Errorf("netbe: table stats %s: %w", table, err)
	}
	return w.ToTableStats(), nil
}

// TableVersion fetches the remote version token, prefixed with the base
// URL and remote backend name: remote tokens are only unique within one
// server process, and the cache must never conflate two servers that
// happen to hand out the same generation counters. Any failure —
// cancelled ctx included — reports the table absent, per the Backend
// contract; the engine then treats the request as uncacheable.
func (c *Client) TableVersion(ctx context.Context, table string) (string, bool) {
	var w wire.TableVersion
	if _, err := c.getJSON(ctx, c.endpoint("/api/backend/version", table), &w); err != nil || !w.OK {
		return "", false
	}
	return c.base + "#" + c.opts.Backend + "#" + w.Version, true
}

// Exec runs one query on the remote server over the typed wire protocol
// and returns the decoded rows and stats. Retries this call performed
// are reported in ExecStats.NetRetries, which the metrics pipeline sums
// into /healthz and /metrics.
func (c *Client) Exec(ctx context.Context, query string, opts backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	reqBody, err := json.Marshal(wire.QueryRequest{
		SQL:                query,
		Backend:            c.opts.Backend,
		Wire:               true,
		Lo:                 opts.Lo,
		Hi:                 opts.Hi,
		Workers:            opts.Workers,
		NoSelectionKernels: opts.NoSelectionKernels,
		AllowPartial:       opts.AllowPartial,
	})
	if err != nil {
		return nil, backend.ExecStats{}, err
	}
	var w wire.QueryResponse
	retries, err := c.doJSON(ctx, http.MethodPost, c.base+"/api/query", reqBody, &w)
	if err != nil {
		return nil, backend.ExecStats{}, fmt.Errorf("netbe: exec: %w", err)
	}
	rows, err := wire.DecodeRows(w.Rows)
	if err != nil {
		return nil, backend.ExecStats{}, fmt.Errorf("netbe: exec: %w", err)
	}
	stats := w.Stats.ToExecStats()
	stats.NetRetries += retries
	if w.Trace != nil {
		if sp := telemetry.SpanFromContext(ctx); sp != nil {
			// Stitch the child process's span tree under the span that
			// issued the call, marked so renderers show the process hop.
			if w.Trace.Attrs == nil {
				w.Trace.Attrs = make(map[string]string, 2)
			}
			w.Trace.Attrs["remote"] = "child"
			w.Trace.Attrs["process"] = c.opts.Name + " " + c.base
			sp.AttachRemote(w.Trace)
		}
	}
	return &backend.Rows{Columns: w.Columns, Rows: rows}, stats, nil
}

// getJSON is doJSON for body-less GETs.
func (c *Client) getJSON(ctx context.Context, url string, out any) (int, error) {
	return c.doJSON(ctx, http.MethodGet, url, nil, out)
}

// RemoteError is a non-2xx response from the remote server, carrying
// the HTTP status the retry policy and error classification key off.
type RemoteError struct {
	Status int
	Msg    string
}

// Error renders the remote failure.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote status %d: %s", e.Status, e.Msg)
}

// Is maps statuses onto the backend sentinel errors: 404 is
// backend.ErrNoTable (the remote store says the table does not exist),
// any 5xx is backend.ErrUnavailable (the remote store is the problem).
func (e *RemoteError) Is(target error) bool {
	switch target {
	case backend.ErrNoTable:
		return e.Status == http.StatusNotFound
	case backend.ErrUnavailable:
		return e.Status >= 500
	}
	return false
}

// retryableStatus reports whether a status is worth another attempt:
// transient server-side failures only. 4xx repeats identically, so it
// never retries.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusTooManyRequests:
		return true
	}
	return false
}

// doJSON performs one logical call: up to MaxAttempts HTTP round trips
// with exponential jittered backoff, each under CallTimeout, the whole
// loop under the caller's ctx. On success the body decodes into out.
// Returns how many retries (attempts beyond the first) were spent.
func (c *Client) doJSON(ctx context.Context, method, url string, body []byte, out any) (int, error) {
	c.calls.Add(1)
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleepBackoff(ctx, attempt); err != nil {
				// The caller's deadline leaves no room for another attempt:
				// the last real failure is the answer, not the sleep abort.
				return attempt - 1, lastErr
			}
		}
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return attempt, lastErr
		}
		c.tries.Add(1)
		err := c.attempt(ctx, method, url, body, out)
		if err == nil {
			return attempt, nil
		}
		lastErr = err
		if !retryable(err) {
			return attempt, err
		}
	}
	return c.opts.MaxAttempts - 1, fmt.Errorf("%w: %d attempts failed, last: %v", backend.ErrUnavailable, c.opts.MaxAttempts, lastErr)
}

// attempt is one HTTP round trip.
func (c *Client) attempt(ctx context.Context, method, url string, body []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp := telemetry.SpanFromContext(ctx).Traceparent(); tp != "" {
		// Cross-process propagation: the child server opens its own
		// trace under the span that issued this call and returns its
		// span tree in the wire response.
		req.Header.Set(telemetry.TraceparentHeader, tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport failure: unreachable, reset, attempt timeout. The
		// caller's own cancellation must surface as such, not as an
		// outage.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &transportError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := readErrorBody(resp.Body)
		return &RemoteError{Status: resp.StatusCode, Msg: msg}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A torn or malformed response body: the bytes on the wire were
		// damaged, so treat it like a transport failure and retry.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &transportError{err: fmt.Errorf("decoding response: %w", err)}
	}
	return nil
}

// transportError marks connection-level failures (and torn responses)
// as retryable outages.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }
func (e *transportError) Is(target error) bool {
	return target == backend.ErrUnavailable
}

// retryable decides whether one attempt's failure is worth another try.
func retryable(err error) bool {
	if re, ok := err.(*RemoteError); ok {
		return retryableStatus(re.Status)
	}
	if _, ok := err.(*transportError); ok {
		return true
	}
	return false // caller cancellation, marshalling bugs, 4xx
}

// readErrorBody extracts the server's error payload (bounded).
func readErrorBody(r io.Reader) string {
	data, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(data) == 0 {
		return "(no body)"
	}
	var we wire.Error
	if json.Unmarshal(data, &we) == nil && we.Error != "" {
		return we.Error
	}
	return strings.TrimSpace(string(data))
}
