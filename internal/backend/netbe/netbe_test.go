package netbe_test

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/netbe"
	"seedb/internal/server"
	"seedb/internal/sqldb"
)

// buildDB creates a small table with values a decimal wire format would
// mangle: non-representable fractions, negative zero, NaN and infinity.
func buildDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "k", Type: sqldb.TypeString},
		sqldb.Column{Name: "v", Type: sqldb.TypeInt},
		sqldb.Column{Name: "f", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable("t", schema, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]sqldb.Value{
		{sqldb.Str("a"), sqldb.Int(1), sqldb.Float(0.1)},
		{sqldb.Str("a"), sqldb.Int(1 << 60), sqldb.Float(math.Copysign(0, -1))},
		{sqldb.Str("b"), sqldb.Int(-7), sqldb.Float(math.NaN())},
		{sqldb.Str("b"), sqldb.Int(0), sqldb.Float(math.Inf(1))},
		{sqldb.Null(), sqldb.Int(3), sqldb.Null()},
	}
	for _, row := range rows {
		if err := tab.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// flaky is an HTTP middleman that sabotages the next N requests in a
// configurable way before delegating to the real server.
type flaky struct {
	inner http.Handler

	mu       sync.Mutex
	fail     int
	mode     string // "503", "abort", "torn"
	requests int
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.requests++
	sabotage := f.fail > 0
	if sabotage {
		f.fail--
	}
	mode := f.mode
	f.mu.Unlock()
	if !sabotage {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch mode {
	case "abort":
		// net/http closes the connection mid-response: the client sees a
		// connection reset, not a status.
		panic(http.ErrAbortHandler)
	case "torn":
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"columns":["k"],"vrows":[[{"k":`))
	default:
		http.Error(w, `{"error":"injected outage"}`, http.StatusServiceUnavailable)
	}
}

// sabotage arms the next n requests with the given failure mode.
func (f *flaky) sabotage(n int, mode string) {
	f.mu.Lock()
	f.fail, f.mode = n, mode
	f.mu.Unlock()
}

// count returns how many requests the middleman has seen.
func (f *flaky) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests
}

// newClient stands up a seedb-server behind a flaky middleman and
// connects a netbe client with a tight, deterministic retry budget.
func newClient(t *testing.T, opts netbe.Options) (*netbe.Client, *flaky) {
	t.Helper()
	db := buildDB(t)
	f := &flaky{inner: server.New(db)}
	srv := httptest.NewServer(f)
	t.Cleanup(srv.Close)
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 3
	}
	if opts.BaseBackoff == 0 {
		opts.BaseBackoff = time.Millisecond
		opts.MaxBackoff = 4 * time.Millisecond
	}
	c, err := netbe.New(context.Background(), srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, f
}

const testQuery = "SELECT k, v, f FROM t"

// wantRows is the embedded reference result for testQuery.
func wantRows(t *testing.T) *backend.Rows {
	t.Helper()
	rows, _, err := backend.NewEmbedded(buildDB(t)).Exec(context.Background(), testQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// sameValues compares results with bit-level float identity (NaN equals
// NaN, -0.0 differs from +0.0 — exactly what the wire must preserve).
func sameValues(a, b *backend.Rows) bool {
	if !reflect.DeepEqual(a.Columns, b.Columns) || len(a.Rows) != len(b.Rows) {
		return false
	}
	var ka, kb []byte
	for r := range a.Rows {
		if len(a.Rows[r]) != len(b.Rows[r]) {
			return false
		}
		for c := range a.Rows[r] {
			ka = a.Rows[r][c].AppendKey(ka[:0])
			kb = b.Rows[r][c].AppendKey(kb[:0])
			if string(ka) != string(kb) {
				return false
			}
		}
	}
	return true
}

// TestExecRoundTripBitExact drives the full wire path with hostile
// float values and requires bit identity with an in-process execution.
func TestExecRoundTripBitExact(t *testing.T) {
	c, _ := newClient(t, netbe.Options{})
	rows, stats, err := c.Exec(context.Background(), testQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(rows, wantRows(t)) {
		t.Errorf("wire round trip diverged:\ngot  %+v\nwant %+v", rows.Rows, wantRows(t).Rows)
	}
	if stats.NetRetries != 0 {
		t.Errorf("NetRetries = %d on a healthy exchange", stats.NetRetries)
	}
}

// TestIntrospectionRoundTrip checks the schema/stats/version endpoints
// against the embedded source of truth.
func TestIntrospectionRoundTrip(t *testing.T) {
	c, _ := newClient(t, netbe.Options{})
	ctx := context.Background()

	ti, err := c.TableInfo(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Name != "t" || ti.Rows != 5 || len(ti.Columns) != 3 || ti.Columns[2].Type != backend.TypeFloat {
		t.Errorf("TableInfo = %+v", ti)
	}
	ts, err := c.TableStats(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 5 || len(ts.Columns) != 3 {
		t.Errorf("TableStats = %+v", ts)
	}
	if kc, ok := ts.Column("k"); !ok || kc.Distinct != 2 {
		t.Errorf("k distinct = %+v", kc)
	}
	caps := c.Capabilities()
	if !caps.SupportsVectorized || !caps.SupportsPhasedExecution {
		t.Errorf("embedded remote should keep full capabilities, got %+v", caps)
	}

	if _, err := c.TableInfo(ctx, "nope"); !errors.Is(err, backend.ErrNoTable) {
		t.Errorf("missing table error = %v, want ErrNoTable", err)
	}
}

// TestVersionTokensAreServerScoped: two servers holding identical data
// must hand out distinct version tokens — remote generation counters
// are process-scoped and must never collide across servers in a shared
// cache.
func TestVersionTokensAreServerScoped(t *testing.T) {
	c1, _ := newClient(t, netbe.Options{})
	c2, _ := newClient(t, netbe.Options{})
	v1, ok1 := c1.TableVersion(context.Background(), "t")
	v2, ok2 := c2.TableVersion(context.Background(), "t")
	if !ok1 || !ok2 {
		t.Fatalf("versions absent: %t %t", ok1, ok2)
	}
	if v1 == v2 {
		t.Errorf("two servers share version token %q", v1)
	}
	if !strings.Contains(v1, c1.Base()) {
		t.Errorf("token %q does not embed the server URL %q", v1, c1.Base())
	}
}

// TestCancelledIntrospection: the Backend contract under a dead ctx —
// introspection fails promptly, the version is absent, nothing retries.
func TestCancelledIntrospection(t *testing.T) {
	c, f := newClient(t, netbe.Options{})
	before := f.count()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.TableInfo(ctx, "t"); err == nil {
		t.Error("TableInfo with cancelled ctx succeeded")
	}
	if v, ok := c.TableVersion(ctx, "t"); ok {
		t.Errorf("TableVersion with cancelled ctx = %q", v)
	}
	// A dead ctx must not spend the retry budget: at most one wire
	// attempt per call ever starts.
	if got := f.count() - before; got > 2 {
		t.Errorf("cancelled calls issued %d requests", got)
	}
}

// TestRetryRecoversFrom503 scripts two outages: the third attempt wins
// and the spent retries surface in ExecStats.NetRetries.
func TestRetryRecoversFrom503(t *testing.T) {
	c, f := newClient(t, netbe.Options{})
	f.sabotage(2, "503")
	rows, stats, err := c.Exec(context.Background(), testQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(rows, wantRows(t)) {
		t.Error("post-retry result diverged")
	}
	if stats.NetRetries != 2 {
		t.Errorf("NetRetries = %d, want 2", stats.NetRetries)
	}
	if s := c.Stats(); s.Retries != 2 {
		t.Errorf("client Stats.Retries = %d, want 2", s.Retries)
	}
}

// TestRetryRecoversFromConnectionReset and ...FromTornResponse: both
// transport-level failure shapes must count as retryable.
func TestRetryRecoversFromConnectionReset(t *testing.T) {
	c, f := newClient(t, netbe.Options{})
	f.sabotage(1, "abort")
	_, stats, err := c.Exec(context.Background(), testQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NetRetries != 1 {
		t.Errorf("NetRetries = %d, want 1", stats.NetRetries)
	}
}

func TestRetryRecoversFromTornResponse(t *testing.T) {
	c, f := newClient(t, netbe.Options{})
	f.sabotage(1, "torn")
	_, stats, err := c.Exec(context.Background(), testQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NetRetries != 1 {
		t.Errorf("NetRetries = %d, want 1", stats.NetRetries)
	}
}

// TestRetryBudgetIsBounded: a persistent outage consumes exactly
// MaxAttempts round trips and surfaces as backend.ErrUnavailable.
func TestRetryBudgetIsBounded(t *testing.T) {
	c, f := newClient(t, netbe.Options{MaxAttempts: 3})
	f.sabotage(100, "503")
	before := f.count()
	_, _, err := c.Exec(context.Background(), testQuery, backend.ExecOptions{})
	if !errors.Is(err, backend.ErrUnavailable) {
		t.Fatalf("exhausted budget error = %v, want ErrUnavailable", err)
	}
	if got := f.count() - before; got != 3 {
		t.Errorf("spent %d attempts, want exactly 3", got)
	}
}

// TestClientErrorsNeverRetry: a 400 (bad SQL) and a 404 (no table)
// repeat identically, so the client must spend exactly one attempt.
func TestClientErrorsNeverRetry(t *testing.T) {
	c, f := newClient(t, netbe.Options{})
	before := f.count()
	if _, _, err := c.Exec(context.Background(), "SELEKT broken", backend.ExecOptions{}); err == nil {
		t.Fatal("broken SQL succeeded")
	} else if errors.Is(err, backend.ErrUnavailable) {
		t.Errorf("client mistake classified as outage: %v", err)
	}
	if got := f.count() - before; got != 1 {
		t.Errorf("bad SQL spent %d attempts, want 1", got)
	}
	before = f.count()
	if _, err := c.TableInfo(context.Background(), "nope"); !errors.Is(err, backend.ErrNoTable) {
		t.Fatalf("missing table = %v", err)
	}
	if got := f.count() - before; got != 1 {
		t.Errorf("missing table spent %d attempts, want 1", got)
	}
}

// TestDeadlineBoundsRetries: with a deadline far shorter than the
// backoff schedule, the call returns promptly instead of sleeping
// through retries the caller can no longer use.
func TestDeadlineBoundsRetries(t *testing.T) {
	c, f := newClient(t, netbe.Options{
		MaxAttempts: 10,
		BaseBackoff: 200 * time.Millisecond,
		MaxBackoff:  time.Second,
	})
	f.sabotage(100, "503")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Exec(ctx, testQuery, backend.ExecOptions{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exec under a tight deadline succeeded against a dead server")
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline-bounded exec took %v", elapsed)
	}
}

// TestHandshakeRejectsNonServer: constructing a client against an
// endpoint that does not speak the wire protocol fails loudly.
func TestHandshakeRejectsNonServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"hello":"world"}`))
	}))
	defer srv.Close()
	if _, err := netbe.New(context.Background(), srv.URL, netbe.Options{}); err == nil {
		t.Error("handshake against a non-seedb server succeeded")
	}
	if _, err := netbe.New(context.Background(), "not-a-url", netbe.Options{}); err == nil {
		t.Error("invalid base URL accepted")
	}
}
