package netbe

import (
	"context"
	"math/rand"
	"time"
)

// sleepBackoff waits out the backoff before retry number attempt
// (1-based): exponential from BaseBackoff, capped at MaxBackoff, with
// ±50% jitter so a fleet of clients hammered by the same outage does
// not retry in lockstep. It returns early with an error when the
// caller's ctx is cancelled mid-sleep or its deadline leaves no room
// for the sleep at all — sleeping past a deadline would burn the
// remaining budget on a wait whose attempt can only fail.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	d := c.opts.BaseBackoff << (attempt - 1)
	if d <= 0 || d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	// Jitter: uniform in [d/2, d].
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
