// Package wire defines the JSON wire protocol between a seedb-server
// and the netbe network-backend client — the cross-process half of the
// paper's middleware/DBMS split. The server (internal/server) encodes
// these types on its introspection endpoints and on the typed
// /api/query path; netbe decodes them back into backend.Backend
// results. Both sides compile against this one package, so the contract
// cannot drift silently.
//
// Values round-trip bit-exactly: integers travel as JSON numbers
// (decoded straight into int64, no float detour), and floats travel as
// hexadecimal float strings (strconv 'x' format), which preserves the
// exact bit pattern — including -0.0, ±Inf and NaN — where a decimal
// JSON number could not. That is what lets a netbe-backed engine stay
// bit-identical to the embedded reference in backend/conformancetest.
package wire

import (
	"fmt"
	"strconv"
	"time"

	"seedb/internal/backend"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// ProtoVersion identifies the wire protocol generation. The handshake
// endpoint reports it; a client refusing to speak to a newer server
// fails loudly instead of mis-decoding.
const ProtoVersion = 1

// Value is one engine scalar on the wire. Exactly one of the payload
// fields is meaningful, selected by K.
type Value struct {
	// K is the value kind: "n" (NULL), "i" (int), "f" (float),
	// "s" (string), "b" (bool).
	K string `json:"k"`
	I int64  `json:"i,omitempty"`
	// F is the float payload in strconv's hexadecimal 'x' format
	// ("0x1.8p+01"), or "NaN"/"+Inf"/"-Inf". Hex keeps the round trip
	// bit-exact.
	F string `json:"f,omitempty"`
	S string `json:"s,omitempty"`
	B bool   `json:"b,omitempty"`
}

// FromValue encodes one engine scalar.
func FromValue(v sqldb.Value) Value {
	switch v.Kind {
	case sqldb.KindNull:
		return Value{K: "n"}
	case sqldb.KindInt:
		return Value{K: "i", I: v.I}
	case sqldb.KindFloat:
		return Value{K: "f", F: strconv.FormatFloat(v.F, 'x', -1, 64)}
	case sqldb.KindString:
		return Value{K: "s", S: v.S}
	case sqldb.KindBool:
		return Value{K: "b", B: v.I != 0}
	default:
		return Value{K: "n"}
	}
}

// ToValue decodes one wire scalar.
func (w Value) ToValue() (sqldb.Value, error) {
	switch w.K {
	case "n":
		return sqldb.Null(), nil
	case "i":
		return sqldb.Int(w.I), nil
	case "f":
		f, err := strconv.ParseFloat(w.F, 64)
		if err != nil {
			return sqldb.Null(), fmt.Errorf("wire: bad float payload %q: %w", w.F, err)
		}
		return sqldb.Float(f), nil
	case "s":
		return sqldb.Str(w.S), nil
	case "b":
		return sqldb.Bool(w.B), nil
	default:
		return sqldb.Null(), fmt.Errorf("wire: unknown value kind %q", w.K)
	}
}

// EncodeRows converts a materialized result to wire rows.
func EncodeRows(rows [][]sqldb.Value) [][]Value {
	out := make([][]Value, len(rows))
	for r, row := range rows {
		wr := make([]Value, len(row))
		for i, v := range row {
			wr[i] = FromValue(v)
		}
		out[r] = wr
	}
	return out
}

// DecodeRows converts wire rows back to engine rows.
func DecodeRows(rows [][]Value) ([][]sqldb.Value, error) {
	out := make([][]sqldb.Value, len(rows))
	for r, row := range rows {
		vr := make([]sqldb.Value, len(row))
		for i, wv := range row {
			v, err := wv.ToValue()
			if err != nil {
				return nil, fmt.Errorf("row %d column %d: %w", r, i, err)
			}
			vr[i] = v
		}
		out[r] = vr
	}
	return out, nil
}

// ExecStats mirrors backend.ExecStats field for field (durations in
// nanoseconds), so a remote execution's cost report survives the wire.
type ExecStats struct {
	RowsScanned         int    `json:"rows_scanned"`
	Groups              int    `json:"groups"`
	Vectorized          bool   `json:"vectorized"`
	FallbackReason      string `json:"fallback_reason,omitempty"`
	Workers             int    `json:"workers"`
	SelectionKernels    int    `json:"selection_kernels"`
	ResidualPredicates  int    `json:"residual_predicates"`
	ShardFanout         int    `json:"shard_fanout"`
	ShardStragglerNS    int64  `json:"shard_straggler_ns"`
	ShardPartialsCached int    `json:"shard_partials_cached"`
	HedgedPartials      int    `json:"hedged_partials"`
	HedgeWins           int    `json:"hedge_wins"`
	NetRetries          int    `json:"net_retries"`
	ShardsDegraded      int    `json:"shards_degraded,omitempty"`
	DegradedShards      []int  `json:"degraded_shards,omitempty"`
}

// FromExecStats encodes execution stats.
func FromExecStats(s backend.ExecStats) ExecStats {
	return ExecStats{
		RowsScanned:         s.RowsScanned,
		Groups:              s.Groups,
		Vectorized:          s.Vectorized,
		FallbackReason:      s.FallbackReason,
		Workers:             s.Workers,
		SelectionKernels:    s.SelectionKernels,
		ResidualPredicates:  s.ResidualPredicates,
		ShardFanout:         s.ShardFanout,
		ShardStragglerNS:    s.ShardStragglerMax.Nanoseconds(),
		ShardPartialsCached: s.ShardPartialsCached,
		HedgedPartials:      s.HedgedPartials,
		HedgeWins:           s.HedgeWins,
		NetRetries:          s.NetRetries,
		ShardsDegraded:      s.ShardsDegraded,
		DegradedShards:      s.DegradedShards,
	}
}

// ToExecStats decodes execution stats.
func (w ExecStats) ToExecStats() backend.ExecStats {
	return backend.ExecStats{
		RowsScanned:         w.RowsScanned,
		Groups:              w.Groups,
		Vectorized:          w.Vectorized,
		FallbackReason:      w.FallbackReason,
		Workers:             w.Workers,
		SelectionKernels:    w.SelectionKernels,
		ResidualPredicates:  w.ResidualPredicates,
		ShardFanout:         w.ShardFanout,
		ShardStragglerMax:   time.Duration(w.ShardStragglerNS),
		ShardPartialsCached: w.ShardPartialsCached,
		HedgedPartials:      w.HedgedPartials,
		HedgeWins:           w.HedgeWins,
		NetRetries:          w.NetRetries,
		ShardsDegraded:      w.ShardsDegraded,
		DegradedShards:      w.DegradedShards,
	}
}

// Column is one schema column on the wire.
type Column struct {
	Name string `json:"name"`
	// Type is the ColumnType's numeric code (stable across both sides:
	// the codes are part of this protocol).
	Type uint8 `json:"type"`
}

// TableInfo is GET /api/backend/info's payload.
type TableInfo struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	Rows    int      `json:"rows"`
	// Layout is "row" or "col".
	Layout string `json:"layout"`
}

// FromTableInfo encodes a table description.
func FromTableInfo(ti backend.TableInfo) TableInfo {
	out := TableInfo{Name: ti.Name, Rows: ti.Rows, Layout: "row"}
	if ti.Layout == backend.LayoutCol {
		out.Layout = "col"
	}
	for _, c := range ti.Columns {
		out.Columns = append(out.Columns, Column{Name: c.Name, Type: uint8(c.Type)})
	}
	return out
}

// ToTableInfo decodes a table description.
func (w TableInfo) ToTableInfo() backend.TableInfo {
	out := backend.TableInfo{Name: w.Name, Rows: w.Rows, Layout: backend.LayoutRow}
	if w.Layout == "col" {
		out.Layout = backend.LayoutCol
	}
	for _, c := range w.Columns {
		out.Columns = append(out.Columns, backend.Column{Name: c.Name, Type: backend.ColumnType(c.Type)})
	}
	return out
}

// ColumnStats is one column's statistics on the wire.
type ColumnStats struct {
	Name     string `json:"name"`
	Type     uint8  `json:"type"`
	Distinct int    `json:"distinct"`
}

// TableStats is GET /api/backend/stats's payload.
type TableStats struct {
	Rows    int           `json:"rows"`
	Columns []ColumnStats `json:"columns"`
}

// FromTableStats encodes table statistics.
func FromTableStats(ts *backend.TableStats) TableStats {
	out := TableStats{Rows: ts.Rows}
	for _, c := range ts.Columns {
		out.Columns = append(out.Columns, ColumnStats{Name: c.Name, Type: uint8(c.Type), Distinct: c.Distinct})
	}
	return out
}

// ToTableStats decodes table statistics.
func (w TableStats) ToTableStats() *backend.TableStats {
	out := &backend.TableStats{Rows: w.Rows}
	for _, c := range w.Columns {
		out.Columns = append(out.Columns, backend.ColumnStats{Name: c.Name, Type: backend.ColumnType(c.Type), Distinct: c.Distinct})
	}
	return out
}

// TableVersion is GET /api/backend/version's payload. OK false means
// the table does not exist (or the store could not say).
type TableVersion struct {
	Version string `json:"version"`
	OK      bool   `json:"ok"`
}

// Handshake is GET /api/backend/caps's payload: the remote backend's
// identity and capability flags, checked once when a netbe client is
// constructed.
type Handshake struct {
	Proto                   int    `json:"proto"`
	Backend                 string `json:"backend"`
	SupportsVectorized      bool   `json:"supports_vectorized"`
	SupportsPhasedExecution bool   `json:"supports_phased_execution"`
}

// QueryRequest is the typed POST /api/query payload a netbe client
// sends: Wire true selects the typed response (string cells otherwise,
// for human clients), and the ExecOptions fields travel alongside.
type QueryRequest struct {
	SQL     string `json:"sql"`
	Backend string `json:"backend,omitempty"`
	Wire    bool   `json:"wire,omitempty"`
	Lo      int    `json:"lo,omitempty"`
	Hi      int    `json:"hi,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// NoSelectionKernels forwards the cost-ablation knob.
	NoSelectionKernels bool `json:"no_selection_kernels,omitempty"`
	// AllowPartial forwards the degraded-results opt-in to a remote
	// shard router (leaf backends ignore it).
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// QueryResponse is the typed /api/query response (Wire true). Trace is
// the child process's span tree for this execution, present only when
// the request carried a Traceparent header: the client grafts it under
// the span that issued the call, stitching one cross-process tree.
type QueryResponse struct {
	Columns []string            `json:"columns"`
	Rows    [][]Value           `json:"vrows"`
	Stats   ExecStats           `json:"stats"`
	Trace   *telemetry.SpanNode `json:"trace,omitempty"`
}

// Error is the uniform error payload netbe decodes from non-200
// responses (the server's errorResponse shape).
type Error struct {
	Error string `json:"error"`
}
