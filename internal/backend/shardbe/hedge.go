// Straggler hedging and per-shard partial memoization for the shard
// router.
//
// Hedging bounds a fan-out's tail latency: the merge cannot start until
// the slowest shard answers, so one straggling child drags the whole
// query to its pace (ShardStragglerMax is exactly that critical path).
// When a child execution outlives the hedge delay — a percentile of the
// router's own recent child latencies, or a fixed operator-chosen
// duration — the router issues a speculative duplicate of the same
// partial, takes whichever answer arrives first, and cancels the loser.
// Exactly one result per partial ever reaches the merge, so hedged and
// unhedged executions are bit-identical; hedging spends duplicate work
// to buy tail latency, never correctness.
//
// The partial memo answers repeated child executions from memory, keyed
// by the child's own version token — the shard-level analogue of the
// engine's result cache. It is off by default: the shard benchmarks
// (and TestShardFanoutEngages) measure cold fan-out cost, and a router
// that silently answered from memory would report a fanout of zero.
// Deployments opt in with Options.PartialCacheEntries.
package shardbe

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"seedb/internal/backend"
	"seedb/internal/telemetry"
)

// HedgeOptions configures straggler hedging.
type HedgeOptions struct {
	// Enabled turns hedging on.
	Enabled bool
	// Delay is a fixed hedge delay. Zero selects the adaptive delay: the
	// configured Percentile of the router's own observed child latencies,
	// floored at MinDelay.
	Delay time.Duration
	// Percentile picks the adaptive delay from the child-latency
	// distribution (50, 90, 95 or 99; default 95). A partial slower than
	// this percentile is, by construction, a straggler.
	Percentile float64
	// MinDelay floors the adaptive delay (default 1ms), and stands in for
	// it entirely until enough latency history accumulates. It keeps a
	// fast-and-tight latency distribution from hedging every call.
	MinDelay time.Duration
}

// hedgeHistoryMin is how many child latencies the adaptive delay wants
// before trusting a percentile over MinDelay.
const hedgeHistoryMin = 8

// hedgeLoserGrace bounds how long a winning attempt waits for the
// cancelled loser to unwind. A cooperative child aborts its scan within
// microseconds of cancellation, so the loser's span is closed — marked
// status=cancelled — by the time Exec returns and a trace snapshot is
// taken. A child that ignores cancellation costs the hedge this grace
// period, never an unbounded stall; its span then ends whenever the
// goroutine finally dies.
const hedgeLoserGrace = 20 * time.Millisecond

// hedgeDelay computes the current hedge delay.
func (r *Router) hedgeDelay() time.Duration {
	if r.hedge.Delay > 0 {
		return r.hedge.Delay
	}
	min := r.hedge.MinDelay
	if min <= 0 {
		min = time.Millisecond
	}
	snap := r.hedgeLat.Snapshot()
	if snap.Count < hedgeHistoryMin {
		return min
	}
	var ms float64
	switch {
	case r.hedge.Percentile >= 99:
		ms = snap.P99MS
	case r.hedge.Percentile >= 95 || r.hedge.Percentile <= 0:
		ms = snap.P95MS
	case r.hedge.Percentile >= 90:
		ms = snap.P90MS
	default:
		ms = snap.P50MS
	}
	d := time.Duration(ms * float64(time.Millisecond))
	if d < min {
		d = min
	}
	return d
}

// hedgeTarget picks where a child's speculative duplicate runs: the
// configured replica when one exists, the same child otherwise (a
// duplicate against the same store still beats a transient stall —
// scheduling hiccups, one slow connection — though not a uniformly slow
// child).
func (r *Router) hedgeTarget(child int) backend.Backend {
	if r.hasReplica(child) {
		return r.replicas[child][0]
	}
	return r.children[child]
}

// hasReplica reports whether a child has a configured hedge replica.
func (r *Router) hasReplica(child int) bool {
	return child < len(r.replicas) && len(r.replicas[child]) > 0
}

// runChild executes one planned partial: memo lookup first (when the
// memo is on and the child's version is observable), then a plain or
// hedged execution, then memo fill.
func (r *Router) runChild(ctx context.Context, table, childSQL string, t childTask, opts backend.ExecOptions) childRun {
	childOpts := backend.ExecOptions{
		Lo: t.lo, Hi: t.hi,
		Workers:            opts.Workers,
		NoSelectionKernels: opts.NoSelectionKernels,
	}
	var memoKey string
	if r.memo != nil {
		if v, ok := r.children[t.child].TableVersion(ctx, table); ok {
			memoKey = partialKey(t.child, v, childSQL, childOpts)
			if e, ok := r.memo.get(memoKey); ok {
				// A memo hit did no scanning, so only the result-shaped
				// stats survive; scan-cost counters stay zero and the hit
				// is invisible to the straggler max.
				return childRun{
					rows: e.rows,
					stats: backend.ExecStats{
						Groups:         e.groups,
						Vectorized:     e.vectorized,
						FallbackReason: e.reason,
						Workers:        1,
					},
					cached: true,
				}
			}
		}
	}
	run := r.execHedged(ctx, t, childSQL, childOpts)
	if run.err == nil && memoKey != "" {
		r.memo.put(memoKey, partialEntry{
			rows:       run.rows,
			groups:     run.stats.Groups,
			vectorized: run.stats.Vectorized,
			reason:     run.stats.FallbackReason,
		})
	}
	return run
}

// execHedged runs one partial with hedging (when enabled): launch the
// primary, arm a timer with the hedge delay, duplicate the partial on
// expiry, keep the first success and cancel the other attempt. A
// failure is returned as-is when no other attempt is in flight —
// hedging is a tail-latency tool, not a retry policy (netbe owns
// retries, with its own budget).
func (r *Router) execHedged(ctx context.Context, t childTask, childSQL string, childOpts backend.ExecOptions) childRun {
	if !r.hedge.Enabled {
		cctx, csp := telemetry.StartSpan(ctx, "shard.exec")
		csp.SetAttr("shard", strconv.Itoa(t.child))
		start := time.Now()
		rows, stats, err := r.children[t.child].Exec(cctx, childSQL, childOpts)
		lat := time.Since(start)
		stampChildSpan(csp, stats, err)
		csp.End()
		return childRun{rows: rows, stats: stats, lat: lat, err: err}
	}

	type attempt struct {
		run    childRun
		hedged bool
	}
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	// Buffered to both attempts, so a loser finishing after the winner
	// never blocks on a channel nobody reads.
	results := make(chan attempt, 2)
	launch := func(be backend.Backend, hedged bool) {
		go func() {
			cctx, csp := telemetry.StartSpan(actx, "shard.exec")
			csp.SetAttr("shard", strconv.Itoa(t.child))
			if hedged {
				csp.SetAttr("hedged", "true")
			}
			start := time.Now()
			rows, stats, err := func() (rows *backend.Rows, stats backend.ExecStats, err error) {
				// A panicking child must report as a failed attempt, not
				// hang the select below forever (and take the process
				// down) — the router's callers rely on every launched
				// attempt producing exactly one result.
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("shardbe: child panicked: %v", p)
					}
				}()
				return be.Exec(cctx, childSQL, childOpts)
			}()
			lat := time.Since(start)
			stampChildSpan(csp, stats, err)
			csp.End()
			results <- attempt{run: childRun{rows: rows, stats: stats, lat: lat, err: err}, hedged: hedged}
		}()
	}
	launch(r.children[t.child], false)

	timer := time.NewTimer(r.hedgeDelay())
	defer timer.Stop()
	outstanding := 1
	hedgedIssued := false
	var failure childRun
	for {
		select {
		case <-timer.C:
			// A duplicate against the straggler itself is pointless — and
			// actively harmful — when that child's breaker has opened
			// since the primary launched: hedging must never resurrect an
			// open circuit. Replicas have no breaker and stay eligible.
			if !hedgedIssued && (r.hasReplica(t.child) || r.breakerFor(t.child) == nil || r.breakerFor(t.child).Ready()) {
				hedgedIssued = true
				outstanding++
				launch(r.hedgeTarget(t.child), true)
			}
		case a := <-results:
			outstanding--
			if a.run.err == nil {
				// First success wins; cancelling actx aborts the loser's
				// scan mid-flight. Only the winner's latency feeds the
				// adaptive-delay history — the loser's says nothing about
				// how fast a healthy partial runs.
				acancel()
				a.run.hedged = hedgedIssued
				a.run.hedgeWon = a.hedged
				r.hedgeLat.Observe(a.run.lat)
				if outstanding > 0 {
					grace := time.NewTimer(hedgeLoserGrace)
					for outstanding > 0 {
						select {
						case <-results:
							outstanding--
						case <-grace.C:
							outstanding = 0
						}
					}
					grace.Stop()
				}
				return a.run
			}
			// Keep the most diagnostic failure: a real error over the
			// cancellation it caused on the other attempt.
			if failure.err == nil || (isCtxErr(failure.err) && !isCtxErr(a.run.err)) {
				failure = a.run
			}
			if outstanding == 0 {
				failure.hedged = hedgedIssued
				return failure
			}
		}
	}
}

// stampChildSpan records one child attempt's outcome on its span:
// resource counters on success, a status marker on failure. Hedge
// losers cancelled by the winner land here with a context error, so the
// stitched tree shows them as cancelled — ended exactly once, never
// dangling open.
func stampChildSpan(sp *telemetry.Span, stats backend.ExecStats, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		if isCtxErr(err) {
			sp.SetAttr("status", "cancelled")
		} else {
			sp.SetAttr("status", "error")
		}
		return
	}
	sp.SetAttr("rows_scanned", strconv.Itoa(stats.RowsScanned))
	if stats.NetRetries > 0 {
		sp.SetAttr("net_retries", strconv.Itoa(stats.NetRetries))
	}
}

// partialKey identifies one child execution for the memo. The child's
// version token pins the data generation; the rest pins the exact work.
func partialKey(child int, version, childSQL string, opts backend.ExecOptions) string {
	return fmt.Sprintf("%d\x00%s\x00%s\x00%d|%d|%d|%t",
		child, version, childSQL, opts.Lo, opts.Hi, opts.Workers, opts.NoSelectionKernels)
}

// partialEntry is one memoized child partial. Rows are shared, never
// copied: partial results are immutable once returned (the merge builds
// fresh output rows and only reads child rows).
type partialEntry struct {
	rows       *backend.Rows
	groups     int
	vectorized bool
	reason     string
}

// partialMemo is a bounded FIFO memo of child partials. FIFO (not LRU)
// keeps eviction O(1) with no per-hit bookkeeping; the memo's job is
// absorbing repeated identical fan-outs, not modelling reuse distance.
type partialMemo struct {
	mu      sync.Mutex
	max     int
	entries map[string]partialEntry
	order   []string
}

// newPartialMemo creates a memo holding at most max entries.
func newPartialMemo(max int) *partialMemo {
	return &partialMemo{max: max, entries: make(map[string]partialEntry, max)}
}

// get returns the memoized partial for key, if any.
func (m *partialMemo) get(key string) (partialEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	return e, ok
}

// put memoizes one partial, evicting the oldest entry over budget.
func (m *partialMemo) put(key string, e partialEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.entries[key]; dup {
		return
	}
	for len(m.entries) >= m.max && len(m.order) > 0 {
		oldest := m.order[0]
		m.order = m.order[1:]
		delete(m.entries, oldest)
	}
	m.entries[key] = e
	m.order = append(m.order, key)
}
