package shardbe

import (
	"context"
	"reflect"
	"testing"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/faultbe"
	"seedb/internal/sqldb"
)

// hedgeFixture builds a 2-child router where child 1 is a faultbe
// straggler, with a healthy replica of child 1's shard available for
// hedged duplicates.
func hedgeFixture(t *testing.T, opts Options) (*Router, *faultbe.Fault) {
	t.Helper()
	src := buildSource(t, 90)
	dbs, bes := EmbeddedChildren(2)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	// The replica is a third embedded store mirroring child 1's shard
	// exactly: re-scatter into a padded child list and keep the copy.
	repDBs, repBes := EmbeddedChildren(2)
	if err := ScatterTable(src, "sales", repDBs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	slow := faultbe.Wrap(bes[1])
	opts.Replicas = [][]backend.Backend{1: {repBes[1]}}
	r, err := New([]backend.Backend{bes[0], slow}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, slow
}

const hedgeQuery = "SELECT region, COUNT(*), SUM(price), AVG(qty) FROM sales GROUP BY region"

// TestHedgeWinnerCancelsStraggler makes child 1 stall far past the
// hedge delay: the duplicate must win, the result must stay bit-exact,
// and the straggling primary must be cancelled instead of dragging the
// fan-out to its pace.
func TestHedgeWinnerCancelsStraggler(t *testing.T) {
	r, slow := hedgeFixture(t, Options{
		Hedge: HedgeOptions{Enabled: true, Delay: 5 * time.Millisecond},
	})
	// The unhedged reference result, before the straggler is installed.
	wantRows, _, err := r.Exec(context.Background(), hedgeQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	slow.SetExecDelay(30 * time.Second)
	start := time.Now()
	rows, stats, err := r.Exec(context.Background(), hedgeQuery, backend.ExecOptions{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("hedged fan-out took %v: the straggler was waited out", elapsed)
	}
	if !reflect.DeepEqual(rows, wantRows) {
		t.Errorf("hedged result diverges from unhedged:\ngot  %+v\nwant %+v", rows.Rows, wantRows.Rows)
	}
	if stats.HedgedPartials == 0 || stats.HedgeWins == 0 {
		t.Errorf("HedgedPartials = %d, HedgeWins = %d, want both > 0", stats.HedgedPartials, stats.HedgeWins)
	}
	if stats.ShardFanout != 2 {
		t.Errorf("ShardFanout = %d, want 2 (one result per partial, hedged or not)", stats.ShardFanout)
	}
	// The cancelled loser aborts its injected sleep; give the goroutine
	// a moment to observe the cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for slow.Aborted() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if slow.Aborted() == 0 {
		t.Error("straggling primary was never cancelled")
	}
}

// TestHedgePrimaryWinsFastPath leaves every child healthy with a
// generous hedge delay: no duplicates should be issued at all.
func TestHedgePrimaryWinsFastPath(t *testing.T) {
	r, slow := hedgeFixture(t, Options{
		Hedge: HedgeOptions{Enabled: true, Delay: 10 * time.Second},
	})
	_, stats, err := r.Exec(context.Background(), hedgeQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.HedgedPartials != 0 || stats.HedgeWins != 0 {
		t.Errorf("healthy fan-out hedged: HedgedPartials = %d, HedgeWins = %d", stats.HedgedPartials, stats.HedgeWins)
	}
	if got := slow.Execs(); got != 1 {
		t.Errorf("child 1 executed %d times, want 1", got)
	}
}

// TestHedgeFailureIsNotRetried scripts a child failure: hedging must
// surface it immediately (retries are netbe's job, with a bounded
// budget), not mask it behind a speculative duplicate.
func TestHedgeFailureIsNotRetried(t *testing.T) {
	r, slow := hedgeFixture(t, Options{
		Hedge: HedgeOptions{Enabled: true, Delay: time.Hour},
	})
	slow.FailNextExecs(1, context.DeadlineExceeded)
	_, _, err := r.Exec(context.Background(), hedgeQuery, backend.ExecOptions{})
	if err == nil {
		t.Fatal("scripted child failure did not surface")
	}
	if got := slow.Execs(); got != 1 {
		t.Errorf("failed child executed %d times, want 1 (no hedge-as-retry)", got)
	}
}

// TestAdaptiveHedgeDelay seeds the latency history and checks the
// percentile-based delay respects both the distribution and the floor.
func TestAdaptiveHedgeDelay(t *testing.T) {
	r, _ := hedgeFixture(t, Options{
		Hedge: HedgeOptions{Enabled: true, Percentile: 95, MinDelay: 2 * time.Millisecond},
	})
	// No history yet: the floor stands in.
	if d := r.hedgeDelay(); d != 2*time.Millisecond {
		t.Errorf("empty-history delay = %v, want the 2ms floor", d)
	}
	for i := 0; i < 32; i++ {
		r.hedgeLat.Observe(80 * time.Millisecond)
	}
	if d := r.hedgeDelay(); d < 40*time.Millisecond {
		t.Errorf("delay = %v after uniform 80ms history, want ≈p95 (≥40ms)", d)
	}
	// A fixed delay overrides the distribution entirely.
	r.hedge.Delay = 7 * time.Millisecond
	if d := r.hedgeDelay(); d != 7*time.Millisecond {
		t.Errorf("fixed delay = %v, want 7ms", d)
	}
}

// TestPartialMemo opts into the per-shard partial memo and checks the
// full lifecycle: cold fan-out fills it, an identical query answers
// from it (bit-exactly, with ShardPartialsCached accounting and no
// child executions), and a single child's data change invalidates only
// because the version key rotates.
func TestPartialMemo(t *testing.T) {
	src := buildSource(t, 90)
	dbs, bes := EmbeddedChildren(2)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	counted := []*faultbe.Fault{faultbe.Wrap(bes[0]), faultbe.Wrap(bes[1])}
	r, err := New([]backend.Backend{counted[0], counted[1]}, Options{PartialCacheEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cold, coldStats, err := r.Exec(ctx, hedgeQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.ShardFanout != 2 || coldStats.ShardPartialsCached != 0 {
		t.Fatalf("cold stats = fanout %d cached %d, want 2/0", coldStats.ShardFanout, coldStats.ShardPartialsCached)
	}

	warm, warmStats, err := r.Exec(ctx, hedgeQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.ShardFanout != 0 || warmStats.ShardPartialsCached != 2 {
		t.Errorf("warm stats = fanout %d cached %d, want 0/2", warmStats.ShardFanout, warmStats.ShardPartialsCached)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Errorf("memoized result diverges:\ngot  %+v\nwant %+v", warm.Rows, cold.Rows)
	}
	if counted[0].Execs() != 1 || counted[1].Execs() != 1 {
		t.Errorf("children executed %d/%d times, want 1/1", counted[0].Execs(), counted[1].Execs())
	}
	// Vectorized accounting must survive the memo: a warm fan-out is
	// still "vectorized" iff the memoized executions were.
	if warmStats.Vectorized != coldStats.Vectorized {
		t.Errorf("warm Vectorized = %t, cold was %t", warmStats.Vectorized, coldStats.Vectorized)
	}

	// Appending a row to child 1 rotates its version token: its partial
	// re-executes, child 0's stays memoized.
	ctab, _ := dbs[1].Table("sales")
	if err := ctab.AppendRow([]sqldb.Value{sqldb.Str("east"), sqldb.Int(1), sqldb.Float(0.25)}); err != nil {
		t.Fatal(err)
	}
	_, postStats, err := r.Exec(ctx, hedgeQuery, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if postStats.ShardFanout != 1 || postStats.ShardPartialsCached != 1 {
		t.Errorf("post-append stats = fanout %d cached %d, want 1/1", postStats.ShardFanout, postStats.ShardPartialsCached)
	}
}

// TestPartialMemoBound checks FIFO eviction keeps the memo at its
// configured size.
func TestPartialMemoBound(t *testing.T) {
	m := newPartialMemo(2)
	m.put("a", partialEntry{groups: 1})
	m.put("b", partialEntry{groups: 2})
	m.put("c", partialEntry{groups: 3})
	if _, ok := m.get("a"); ok {
		t.Error("oldest entry survived over-budget insert")
	}
	if _, ok := m.get("b"); !ok {
		t.Error("entry b evicted early")
	}
	if _, ok := m.get("c"); !ok {
		t.Error("entry c missing")
	}
}
