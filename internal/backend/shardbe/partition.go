package shardbe

import (
	"fmt"
	"hash/fnv"

	"seedb/internal/backend"
	"seedb/internal/sqldb"
)

// Partitioner routes one row to a shard. seq is the row's global
// insertion sequence number (0-based across all shards of the table),
// which keeps routing deterministic across restarts and batches.
type Partitioner interface {
	Shard(seq int, row []sqldb.Value, shards int) int
}

// RoundRobin spreads rows evenly by sequence number. Balanced and
// streaming-friendly; it interleaves the global row order (see the
// ordering contract in the package comment).
type RoundRobin struct{}

// Shard implements Partitioner.
func (RoundRobin) Shard(seq int, _ []sqldb.Value, shards int) int { return seq % shards }

// HashColumn routes by the hash of one column's value, so all rows
// sharing a partition key land on one shard (the classic fact-table hash
// partitioning). NULLs hash like any other value.
type HashColumn struct {
	// Col is the column index within the row.
	Col int
}

// Shard implements Partitioner. An out-of-range Col returns -1, which
// the routing helpers reject loudly — hashing a missing column would
// silently send every row to one shard.
func (h HashColumn) Shard(_ int, row []sqldb.Value, shards int) int {
	if h.Col < 0 || h.Col >= len(row) {
		return -1
	}
	f := fnv.New64a()
	_, _ = f.Write(row[h.Col].AppendKey(nil))
	return int(f.Sum64() % uint64(shards))
}

// Blocks assigns contiguous row blocks: shard i gets global rows
// [i*Total/shards, (i+1)*Total/shards). This is the order-preserving
// partitioner — the router's shard-major global row space then equals
// the original insertion order, which is what makes sharded execution
// bit-identical to an unsharded scan (first-seen group order, phased
// row-range subsets). It needs the total row count up front, so it fits
// bulk loads, not streaming appends.
type Blocks struct {
	Total int
}

// Shard implements Partitioner.
func (b Blocks) Shard(seq int, _ []sqldb.Value, shards int) int {
	if b.Total <= 0 {
		return 0
	}
	s := seq * shards / b.Total
	if s >= shards {
		s = shards - 1
	}
	return s
}

// EmbeddedChildren creates n empty embedded stores and wraps each as a
// Backend, the in-process child set the router runs over today.
func EmbeddedChildren(n int) ([]*sqldb.DB, []backend.Backend) {
	dbs := make([]*sqldb.DB, n)
	bes := make([]backend.Backend, n)
	for i := range dbs {
		dbs[i] = sqldb.NewDB()
		bes[i] = backend.NewEmbedded(dbs[i])
	}
	return dbs, bes
}

// ScatterTable copies one table from src into the child databases,
// routing every row through part. Existing same-named child tables are
// dropped first, so re-scattering after source writes refreshes every
// shard — and bumps the child versions the router's version vector is
// built from, which is what invalidates cached results.
func ScatterTable(src *sqldb.DB, table string, children []*sqldb.DB, part Partitioner) error {
	if len(children) == 0 {
		return fmt.Errorf("shardbe: scatter needs at least one child")
	}
	t, ok := src.Table(table)
	if !ok {
		return fmt.Errorf("shardbe: table %q does not exist in the source store", table)
	}
	schema := t.Schema()
	layout := t.Layout()
	tabs := make([]sqldb.Table, len(children))
	for i, db := range children {
		if _, exists := db.Table(table); exists {
			if err := db.DropTable(table); err != nil {
				return err
			}
		}
		ct, err := db.CreateTable(t.Name(), schema, layout)
		if err != nil {
			return err
		}
		tabs[i] = ct
	}

	cols := make([]int, schema.NumColumns())
	for i := range cols {
		cols[i] = i
	}
	seq := 0
	row := make([]sqldb.Value, schema.NumColumns())
	return t.ScanRange(0, t.NumRows(), cols, func(rv sqldb.RowView) error {
		for i := range row {
			row[i] = rv.Value(i)
		}
		shard := part.Shard(seq, row, len(children))
		seq++
		if shard < 0 || shard >= len(children) {
			return fmt.Errorf("shardbe: partitioner routed row %d to shard %d of %d", seq-1, shard, len(children))
		}
		return tabs[shard].AppendRow(row)
	})
}

// AppendRow routes one new row into the child databases, continuing the
// table's global sequence from the current total row count (so repeated
// appends stay deterministic). The table must already exist on every
// child (CreateTable or ScatterTable first).
func AppendRow(children []*sqldb.DB, table string, part Partitioner, row []sqldb.Value) error {
	tabs := make([]sqldb.Table, len(children))
	seq := 0
	for i, db := range children {
		t, ok := db.Table(table)
		if !ok {
			return fmt.Errorf("shardbe: table %q does not exist on shard %d", table, i)
		}
		tabs[i] = t
		seq += t.NumRows()
	}
	shard := part.Shard(seq, row, len(children))
	if shard < 0 || shard >= len(children) {
		return fmt.Errorf("shardbe: partitioner routed row to shard %d of %d", shard, len(children))
	}
	return tabs[shard].AppendRow(row)
}
