package shardbe

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/faultbe"
	"seedb/internal/resilience"
	"seedb/internal/sqldb"
)

// testClock is an injectable clock shared by every breaker in a router.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newFaultRouter scatters the source across n children and wraps child 0
// in a faultbe so tests can script its outages.
func newFaultRouter(t *testing.T, src *sqldb.DB, n int, opts Options) (*Router, *faultbe.Fault) {
	t.Helper()
	dbs, bes := EmbeddedChildren(n)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	fault := faultbe.Wrap(bes[0])
	bes[0] = fault
	r, err := New(bes, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, fault
}

// TestPartialMergeOracle pins the degraded-results contract: with one of
// three children hard-down, an allow-partial query must return exactly
// the unsharded result computed over the surviving partitions' rows —
// bit-identical values, not an approximation.
func TestPartialMergeOracle(t *testing.T) {
	const rows = 90
	src := buildSource(t, rows)
	r, fault := newFaultRouter(t, src, 3, Options{AllowPartial: true})
	fault.SetDown(backend.ErrUnavailable)
	ctx := context.Background()

	// Blocks partitioning is contiguous: child 0 owns rows [0, 30), so
	// the surviving partitions are exactly rows [30, 90).
	const surviveLo = rows / 3
	queries := []string{
		"SELECT region, COUNT(*), SUM(price), AVG(price), MIN(qty), MAX(qty) FROM sales GROUP BY region",
		"SELECT COUNT(DISTINCT region), COUNT(*) FROM sales",
		"SELECT qty, AVG(price) FROM sales GROUP BY qty HAVING COUNT(*) > 2 ORDER BY 2 DESC LIMIT 3",
		"SELECT region, qty FROM sales WHERE price IS NOT NULL ORDER BY qty DESC, region LIMIT 7",
	}
	for _, sql := range queries {
		want, err := src.QueryOpts(sql, sqldb.ExecOptions{Lo: surviveLo, Hi: rows})
		if err != nil {
			t.Fatalf("%s: oracle: %v", sql, err)
		}
		got, stats, err := r.Exec(ctx, sql, backend.ExecOptions{})
		if err != nil {
			t.Fatalf("%s: degraded exec: %v", sql, err)
		}
		if stats.ShardsDegraded != 1 || len(stats.DegradedShards) != 1 || stats.DegradedShards[0] != 0 {
			t.Fatalf("%s: degraded stats = %d %v, want 1 [0]", sql, stats.ShardsDegraded, stats.DegradedShards)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d rows, want %d", sql, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if got.Rows[i][j].String() != want.Rows[i][j].String() || got.Rows[i][j].Kind != want.Rows[i][j].Kind {
					t.Errorf("%s: row %d col %d = %s, want %s", sql, i, j, got.Rows[i][j], want.Rows[i][j])
				}
			}
		}
	}
}

// TestPerRequestAllowPartial verifies the per-request opt-in reaches the
// fan-out even when the router itself is strict.
func TestPerRequestAllowPartial(t *testing.T) {
	src := buildSource(t, 90)
	r, fault := newFaultRouter(t, src, 3, Options{})
	fault.SetDown(backend.ErrUnavailable)

	_, stats, err := r.Exec(context.Background(),
		"SELECT COUNT(*) FROM sales", backend.ExecOptions{AllowPartial: true})
	if err != nil {
		t.Fatalf("per-request allow-partial exec: %v", err)
	}
	if stats.ShardsDegraded != 1 {
		t.Errorf("ShardsDegraded = %d, want 1", stats.ShardsDegraded)
	}
}

// TestStrictModeOutageIsError pins the default contract: without
// allow-partial, a down child fails the whole query with ErrUnavailable
// (the server classifies that as 502, never a silent partial answer).
func TestStrictModeOutageIsError(t *testing.T) {
	src := buildSource(t, 90)
	r, fault := newFaultRouter(t, src, 3, Options{})
	fault.SetDown(backend.ErrUnavailable)

	_, _, err := r.Exec(context.Background(), "SELECT COUNT(*) FROM sales", backend.ExecOptions{})
	if err == nil {
		t.Fatal("strict exec over a down child should fail")
	}
	if !errors.Is(err, backend.ErrUnavailable) {
		t.Errorf("error should wrap ErrUnavailable, got %v", err)
	}
}

// TestAllShardsDownIsOutage: allow-partial tolerates losing part of the
// ring, not all of it — with every child down the query is an outage.
func TestAllShardsDownIsOutage(t *testing.T) {
	src := buildSource(t, 90)
	dbs, bes := EmbeddedChildren(3)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	faults := make([]*faultbe.Fault, len(bes))
	for i := range bes {
		faults[i] = faultbe.Wrap(bes[i])
		faults[i].SetDown(backend.ErrUnavailable)
		bes[i] = faults[i]
	}
	r, err := New(bes, Options{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.Exec(context.Background(), "SELECT COUNT(*) FROM sales", backend.ExecOptions{})
	if !errors.Is(err, backend.ErrUnavailable) {
		t.Errorf("all-down exec should be ErrUnavailable, got %v", err)
	}
}

// TestRangeOnDownShardIsEmptyDegraded: a row range confined to the down
// child's partition has no surviving rows, but healthy children remain
// elsewhere — the partial contract returns an empty degraded result,
// not an outage.
func TestRangeOnDownShardIsEmptyDegraded(t *testing.T) {
	src := buildSource(t, 90)
	r, fault := newFaultRouter(t, src, 3, Options{AllowPartial: true})
	fault.SetDown(backend.ErrUnavailable)

	// Rows [5, 25) live entirely inside child 0's [0, 30) block.
	rows, stats, err := r.Exec(context.Background(),
		"SELECT region, COUNT(*) FROM sales GROUP BY region", backend.ExecOptions{Lo: 5, Hi: 25})
	if err != nil {
		t.Fatalf("range-on-down-shard exec: %v", err)
	}
	if len(rows.Rows) != 0 {
		t.Errorf("expected empty degraded result, got %d rows", len(rows.Rows))
	}
	if stats.ShardsDegraded != 1 {
		t.Errorf("ShardsDegraded = %d, want 1", stats.ShardsDegraded)
	}
}

// TestBreakerTripsEvictsAndRecovers drives the full breaker lifecycle
// through real fan-outs: consecutive failures open child 0's circuit,
// an open circuit stops queries from touching the child at all, and
// after the cooldown a single successful half-open probe closes it.
func TestBreakerTripsEvictsAndRecovers(t *testing.T) {
	const threshold = 3
	clk := &testClock{t: time.Unix(1000, 0)}
	src := buildSource(t, 90)
	r, fault := newFaultRouter(t, src, 3, Options{
		AllowPartial: true,
		Breakers: &resilience.BreakerOptions{
			FailureThreshold: threshold,
			Cooldown:         time.Second,
			Now:              clk.now,
		},
	})
	fault.SetDown(backend.ErrUnavailable)
	ctx := context.Background()
	const sql = "SELECT COUNT(*) FROM sales"

	for i := 0; i < threshold; i++ {
		if _, _, err := r.Exec(ctx, sql, backend.ExecOptions{}); err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
	bs := r.BreakerStats()
	if bs[0].State != resilience.Open {
		t.Fatalf("after %d failures breaker state = %v, want open", threshold, bs[0].State)
	}
	if bs[0].Transitions.ClosedToOpen != 1 {
		t.Errorf("ClosedToOpen = %d, want 1", bs[0].Transitions.ClosedToOpen)
	}

	// Open circuit: further queries degrade without touching the child.
	before := fault.Execs()
	for i := 0; i < 4; i++ {
		if _, stats, err := r.Exec(ctx, sql, backend.ExecOptions{}); err != nil || stats.ShardsDegraded != 1 {
			t.Fatalf("open-circuit exec: err=%v degraded=%d", err, stats.ShardsDegraded)
		}
	}
	if got := fault.Execs(); got != before {
		t.Errorf("open circuit still reached the child: %d execs, want %d", got, before)
	}

	// Cooldown elapses and the child recovers: the next query carries
	// the half-open probe, succeeds, and closes the circuit.
	fault.SetDown(nil)
	clk.advance(2 * time.Second)
	_, stats, err := r.Exec(ctx, sql, backend.ExecOptions{})
	if err != nil {
		t.Fatalf("probe exec: %v", err)
	}
	if stats.ShardsDegraded != 0 {
		t.Errorf("recovered exec still degraded: %d", stats.ShardsDegraded)
	}
	bs = r.BreakerStats()
	if bs[0].State != resilience.Closed {
		t.Errorf("post-probe state = %v, want closed", bs[0].State)
	}
	if tr := bs[0].Transitions; tr.OpenToHalfOpen != 1 || tr.HalfOpenToClosed != 1 || tr.HalfOpenToOpen != 0 {
		t.Errorf("transitions = %+v, want exactly one open->half_open and half_open->closed", tr)
	}
	// Healthy children never tripped.
	for i := 1; i < 3; i++ {
		if bs[i].State != resilience.Closed || bs[i].Transitions.ClosedToOpen != 0 {
			t.Errorf("child %d breaker = %+v, want untouched closed", i, bs[i])
		}
	}
}

// TestBreakerFailedProbeReopens: when the half-open probe still fails,
// the circuit snaps back open for another full cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := &testClock{t: time.Unix(1000, 0)}
	src := buildSource(t, 90)
	r, fault := newFaultRouter(t, src, 3, Options{
		AllowPartial: true,
		Breakers: &resilience.BreakerOptions{
			FailureThreshold: 2,
			Cooldown:         time.Second,
			Now:              clk.now,
		},
	})
	fault.SetDown(backend.ErrUnavailable)
	ctx := context.Background()
	const sql = "SELECT COUNT(*) FROM sales"

	for i := 0; i < 2; i++ {
		if _, _, err := r.Exec(ctx, sql, backend.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(2 * time.Second) // cooldown over, child still down
	if _, _, err := r.Exec(ctx, sql, backend.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	bs := r.BreakerStats()
	if bs[0].State != resilience.Open {
		t.Errorf("state after failed probe = %v, want open", bs[0].State)
	}
	if tr := bs[0].Transitions; tr.OpenToHalfOpen != 1 || tr.HalfOpenToOpen != 1 {
		t.Errorf("transitions = %+v, want one open->half_open and one half_open->open", tr)
	}
}

// TestBreakerFlapRecovery exercises the sliding-window rate trip with a
// flapping child: alternating failures trip the rate breaker even
// though consecutive-failure streaks stay short.
func TestBreakerFlapRecovery(t *testing.T) {
	clk := &testClock{t: time.Unix(1000, 0)}
	src := buildSource(t, 90)
	r, fault := newFaultRouter(t, src, 3, Options{
		AllowPartial: true,
		Breakers: &resilience.BreakerOptions{
			FailureThreshold: 100, // consecutive-streak trip effectively off
			ErrorRate:        0.5,
			WindowSize:       8,
			MinSamples:       4,
			Cooldown:         time.Second,
			Now:              clk.now,
		},
	})
	// fail 1, pass 1, repeat: a 50% error rate with max streak 1.
	fault.SetFlap(1, 1, backend.ErrUnavailable)
	ctx := context.Background()
	const sql = "SELECT COUNT(*) FROM sales"

	tripped := false
	for i := 0; i < 12; i++ {
		if _, _, err := r.Exec(ctx, sql, backend.ExecOptions{}); err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		if r.BreakerStats()[0].State == resilience.Open {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("flapping child never tripped the error-rate breaker")
	}
	if fault.FailedExecs() == 0 {
		t.Fatal("fault injection never fired")
	}
}
