// Package shardbe implements the shard router: a backend.Backend that
// holds a fact table partitioned row-wise across N child backends and
// answers queries by fanning them out and merging decomposed partial
// aggregation states (internal/sqldb's ShardPlan).
//
// The router is "just another Backend" on the seam PR 3 built — the
// engine above it runs unchanged — which is exactly the middleware
// scale-out story of the SeeDB paper's architecture: partition the work
// across executors, share nothing, merge cheap partial states. Today the
// children are embedded sqldb stores in one process; any conforming
// Backend works, because the router only speaks SQL and the Backend
// interface to them.
//
// Contract highlights:
//
//   - Global row space. The router presents the concatenation of its
//     children's row spaces, in child order: child 0's rows first, then
//     child 1's, and so on. A phased-execution range [lo, hi) maps onto
//     at most one contiguous local range per child. When tables are
//     loaded with the contiguous block partitioner (ScatterTable with
//     Blocks), the global order equals the original insertion order and
//     every result — group first-seen order included — is bit-identical
//     to an unsharded embedded execution on exactly-summable data (see
//     the float caveat in sqldb/shardexec.go). Hash and round-robin
//     partitioning keep results deterministic and aggregates correct but
//     permute the global order, so phased pruning may make different
//     (equally valid) decisions than an unsharded run.
//
//   - Capabilities are the intersection of the children's: the router
//     can only honor a row-range or a parallel-scan hint if every child
//     can. Degradation then happens in the engine exactly as for any
//     other backend (core.EffectiveStrategy) and is recorded in Metrics.
//
//   - TableVersion is a version vector: the concatenation of every
//     child's token. Any child-level load, append or drop changes the
//     vector, so the shared result cache invalidates without the router
//     tracking writes itself.
//
//   - TableStats merges child statistics exactly: row counts add, and
//     per-column distinct counts are the size of the union of per-child
//     distinct value sets (collected with one GROUP BY query per column
//     per child, memoized per version vector). Summing per-child
//     distinct counts would overcount values present on several shards.
package shardbe

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"seedb/internal/backend"
	"seedb/internal/resilience"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// DefaultName is the backend name the router registers version tokens
// under when Options.Name is empty.
const DefaultName = "shard"

// Options configures a Router.
type Options struct {
	// Name overrides the backend name (default "shard"). Two routers over
	// different child sets may share a result cache even under one name:
	// the child version tokens embed process-unique store ids.
	Name string
	// MaxParallel bounds how many children one Exec queries concurrently
	// (default: all of them). Child-side scan parallelism multiplies on
	// top, exactly as Options.Parallelism × ScanParallelism does in the
	// engine.
	MaxParallel int
	// Telemetry, when non-nil, observes every child execution's latency
	// in the collector's shard-latency histogram — per-child partials,
	// which is what turns "the straggler max" into a distribution.
	Telemetry *telemetry.Collector
	// Hedge configures straggler hedging (off by default): child
	// executions outliving the hedge delay get a speculative duplicate,
	// first answer wins, loser is cancelled. See hedge.go.
	Hedge HedgeOptions
	// Replicas optionally lists, per child index, alternate backends
	// holding the same shard's data; hedged duplicates run there instead
	// of doubling load on the straggler itself. Missing or empty entries
	// fall back to re-querying the same child.
	Replicas [][]backend.Backend
	// PartialCacheEntries bounds the per-shard partial memo (0 disables
	// it, the default): repeated identical child executions answer from
	// memory, keyed by the child's own version token, and report as
	// ShardPartialsCached instead of ShardFanout. Off by default because
	// the shard benchmarks measure cold fan-out cost.
	PartialCacheEntries int
	// Breakers, when non-nil, arms one circuit breaker per child with
	// these options: a child whose executions keep failing with
	// unavailability is opened (fail-fast, no hammering) until a
	// half-open probe succeeds. Nil disables breakers (the default).
	Breakers *resilience.BreakerOptions
	// AllowPartial opts the whole router into degraded results: when a
	// child is unavailable (hard failure or open breaker), the merge
	// proceeds over the surviving shards instead of failing the query,
	// and the omission is stamped into ExecStats.ShardsDegraded/
	// DegradedShards. Per-request opt-in ORs on top: via
	// ExecOptions.AllowPartial for Exec, and via the
	// backend.WithAllowPartial context marker for the introspection
	// paths (TableInfo, TableStats) whose signatures carry no options.
	// Off by default: complete-or-error.
	AllowPartial bool
}

// Router is the shard-routing backend. It is safe for concurrent use
// when its children are.
type Router struct {
	name     string
	children []backend.Backend
	par      int
	tel      *telemetry.Collector
	hedge    HedgeOptions
	replicas [][]backend.Backend
	// hedgeLat tracks winning child-execution latencies for the adaptive
	// hedge delay (router-internal, independent of Options.Telemetry).
	hedgeLat *telemetry.Histogram
	// memo is the per-shard partial memo, nil when disabled.
	memo *partialMemo
	// breakers holds one circuit breaker per child, nil when disabled.
	breakers []*resilience.Breaker
	// allowPartial is the router-level degraded-results opt-in;
	// ExecOptions.AllowPartial ORs on top per request.
	allowPartial bool

	mu        sync.Mutex
	statsMemo map[string]statsEntry // table (lowercased) → memoized stats
}

// statsEntry memoizes one table's merged statistics under the version
// vector they were computed at.
type statsEntry struct {
	version string
	stats   *backend.TableStats
}

// New creates a router over the given children (at least one).
func New(children []backend.Backend, opts Options) (*Router, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("shardbe: need at least one child backend")
	}
	name := opts.Name
	if name == "" {
		name = DefaultName
	}
	par := opts.MaxParallel
	if par <= 0 || par > len(children) {
		par = len(children)
	}
	if len(opts.Replicas) > len(children) {
		return nil, fmt.Errorf("shardbe: %d replica sets for %d children", len(opts.Replicas), len(children))
	}
	r := &Router{
		name:         name,
		children:     append([]backend.Backend(nil), children...),
		par:          par,
		tel:          opts.Telemetry,
		hedge:        opts.Hedge,
		replicas:     opts.Replicas,
		hedgeLat:     &telemetry.Histogram{},
		statsMemo:    make(map[string]statsEntry),
		allowPartial: opts.AllowPartial,
	}
	if opts.PartialCacheEntries > 0 {
		r.memo = newPartialMemo(opts.PartialCacheEntries)
	}
	if opts.Breakers != nil {
		r.breakers = make([]*resilience.Breaker, len(children))
		for i := range r.breakers {
			r.breakers[i] = resilience.NewBreaker(*opts.Breakers)
		}
	}
	return r, nil
}

// BreakerStats snapshots the per-child circuit breakers, in child
// order. Nil when breakers are disabled. The server's /metrics and
// /healthz endpoints export these.
func (r *Router) BreakerStats() []resilience.BreakerStats {
	if r.breakers == nil {
		return nil
	}
	out := make([]resilience.BreakerStats, len(r.breakers))
	for i, b := range r.breakers {
		out[i] = b.Snapshot()
	}
	return out
}

// breakerFor returns child i's breaker, nil when breakers are off.
func (r *Router) breakerFor(i int) *resilience.Breaker {
	if r.breakers == nil {
		return nil
	}
	return r.breakers[i]
}

// partialMode reports whether a call runs with degraded-results
// tolerance: the router-level opt-in, or the per-request opt-in carried
// by the context (the only channel that reaches introspection calls,
// whose signatures have no options).
func (r *Router) partialMode(ctx context.Context) bool {
	return r.allowPartial || backend.AllowPartialFrom(ctx)
}

// childDown reports whether child i should be treated as unavailable
// right now without touching it: its breaker is open and still inside
// the cooldown. Introspection paths use it; Exec consumes Allow.
func (r *Router) childDown(i int) bool {
	b := r.breakerFor(i)
	return b != nil && !b.Ready()
}

// NumChildren returns the fan-out width.
func (r *Router) NumChildren() int { return len(r.children) }

// Name identifies the router.
func (r *Router) Name() string { return r.name }

// Capabilities is the intersection of the children's capabilities: a
// shared optimization the router cannot guarantee on every shard is not
// offered at all, and the engine degrades exactly as documented for any
// single backend.
func (r *Router) Capabilities() backend.Capabilities {
	caps := backend.Capabilities{SupportsVectorized: true, SupportsPhasedExecution: true}
	for _, c := range r.children {
		cc := c.Capabilities()
		caps.SupportsVectorized = caps.SupportsVectorized && cc.SupportsVectorized
		caps.SupportsPhasedExecution = caps.SupportsPhasedExecution && cc.SupportsPhasedExecution
	}
	return caps
}

// childInfos fetches every child's TableInfo and checks the shards agree
// on the schema. A table absent from every child is ErrNoTable; a table
// present on only some children is a partitioning inconsistency, which
// is an error distinct from "no such table".
func (r *Router) childInfos(ctx context.Context, table string) ([]backend.TableInfo, error) {
	infos, _, err := r.childInfosPartial(ctx, table, r.partialMode(ctx))
	return infos, err
}

// childInfosPartial is childInfos with degraded-results awareness: in
// partial mode a child that is unavailable — open breaker, or a
// TableInfo failure shaped like an outage — is marked down instead of
// failing the call. A down child reports zero rows, so the router's
// global row space becomes exactly the concatenation of the surviving
// shards (which is what makes a degraded result equal an unsharded run
// over the survivors' rows). At least one child must survive; an
// all-down table is ErrUnavailable, never a silent empty result.
func (r *Router) childInfosPartial(ctx context.Context, table string, partial bool) ([]backend.TableInfo, []bool, error) {
	infos := make([]backend.TableInfo, len(r.children))
	var down []bool
	missing, alive := 0, 0
	for i, c := range r.children {
		if r.childDown(i) {
			if !partial {
				return nil, nil, fmt.Errorf("shardbe: shard %d: %w: circuit open", i, backend.ErrUnavailable)
			}
			if down == nil {
				down = make([]bool, len(r.children))
			}
			down[i] = true
			continue
		}
		ti, err := c.TableInfo(ctx, table)
		if errors.Is(err, backend.ErrNoTable) {
			missing++
			continue
		}
		if err != nil {
			if partial && errors.Is(err, backend.ErrUnavailable) && ctx.Err() == nil {
				if b := r.breakerFor(i); b != nil {
					// Introspection outages feed the breaker too, so a
					// dead child opens even when no Exec reaches it.
					if b.Allow() {
						b.RecordFailure()
					}
				}
				if down == nil {
					down = make([]bool, len(r.children))
				}
				down[i] = true
				continue
			}
			return nil, nil, fmt.Errorf("shardbe: shard %d: %w", i, err)
		}
		infos[i] = ti
		alive++
	}
	if alive == 0 {
		if missing > 0 && down == nil {
			return nil, nil, fmt.Errorf("%w: %q", backend.ErrNoTable, table)
		}
		return nil, nil, fmt.Errorf("shardbe: table %q: %w: all %d shards down", table, backend.ErrUnavailable, len(r.children))
	}
	if missing > 0 {
		return nil, nil, fmt.Errorf("shardbe: table %q exists on only %d of %d reachable shards", table, alive, alive+missing)
	}
	// Schema agreement is checked among the survivors only.
	first := -1
	for i := range infos {
		if down != nil && down[i] {
			continue
		}
		if first < 0 {
			first = i
			continue
		}
		if err := sameColumns(infos[first].Columns, infos[i].Columns); err != nil {
			return nil, nil, fmt.Errorf("shardbe: table %q: shard %d schema disagrees with shard %d: %w", table, i, first, err)
		}
	}
	// A down child carries the shared schema (zero rows) so downstream
	// consumers can index infos uniformly.
	if down != nil {
		for i := range infos {
			if down[i] {
				infos[i] = backend.TableInfo{Name: infos[first].Name, Columns: infos[first].Columns, Layout: infos[first].Layout}
			}
		}
	}
	return infos, down, nil
}

// sameColumns checks two shards declare identical columns.
func sameColumns(a, b []backend.Column) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d columns vs %d", len(a), len(b))
	}
	for i := range a {
		if !strings.EqualFold(a[i].Name, b[i].Name) || a[i].Type != b[i].Type {
			return fmt.Errorf("column %d is %s %v vs %s %v", i, a[i].Name, a[i].Type, b[i].Name, b[i].Type)
		}
	}
	return nil
}

// TableInfo merges the children's descriptions: identical schema, summed
// row counts, and the shared layout (the conservative row layout when
// shards disagree).
func (r *Router) TableInfo(ctx context.Context, table string) (backend.TableInfo, error) {
	infos, err := r.childInfos(ctx, table)
	if err != nil {
		return backend.TableInfo{}, err
	}
	out := infos[0]
	for _, ti := range infos[1:] {
		out.Rows += ti.Rows
		if ti.Layout != out.Layout {
			out.Layout = backend.LayoutRow
		}
	}
	return out, nil
}

// TableVersion returns the child version vector, joined in child order.
// Any shard-level data change yields a fresh vector, which is what keys
// result-cache invalidation. The table must exist on every child.
func (r *Router) TableVersion(ctx context.Context, table string) (string, bool) {
	parts := make([]string, 0, len(r.children)+1)
	parts = append(parts, fmt.Sprintf("n%d", len(r.children)))
	for _, c := range r.children {
		v, ok := c.TableVersion(ctx, table)
		if !ok {
			return "", false
		}
		parts = append(parts, v)
	}
	return strings.Join(parts, "|"), true
}

// TableStats merges per-shard statistics: rows add, distinct counts come
// from the union of per-child distinct value sets so values living on
// several shards count once. The union is collected with one GROUP BY
// query per column per child and memoized under the version vector.
func (r *Router) TableStats(ctx context.Context, table string) (*backend.TableStats, error) {
	infos, err := r.childInfos(ctx, table)
	if err != nil {
		return nil, err
	}
	version, versioned := r.TableVersion(ctx, table)
	key := strings.ToLower(table)
	if versioned {
		r.mu.Lock()
		if e, ok := r.statsMemo[key]; ok && e.version == version {
			r.mu.Unlock()
			return e.stats, nil
		}
		r.mu.Unlock()
	}

	rows := 0
	for _, ti := range infos {
		rows += ti.Rows
	}
	out := &backend.TableStats{Rows: rows, Columns: make([]backend.ColumnStats, len(infos[0].Columns))}
	statsDegraded := false
	for ci, col := range infos[0].Columns {
		distinct, degraded, err := r.distinctCount(ctx, table, col.Name)
		if err != nil {
			return nil, err
		}
		statsDegraded = statsDegraded || degraded
		out.Columns[ci] = backend.ColumnStats{Name: col.Name, Type: col.Type, Distinct: distinct}
	}

	// Stats computed while a shard was down describe the survivors, not
	// the table: never memoize them, or they would outlive the outage
	// (the version vector need not change when a child recovers).
	if versioned && !statsDegraded {
		r.mu.Lock()
		r.statsMemo[key] = statsEntry{version: version, stats: out}
		r.mu.Unlock()
	}
	return out, nil
}

// distinctCount unions one column's distinct non-NULL values across
// shards, keyed by the embedded engine's injective value encoding so the
// count is exact (bit-level float identity included). In router-level
// partial mode, unavailable shards are skipped (the stats then describe
// the survivors, matching what a degraded Exec will scan) and the
// second return reports the omission.
func (r *Router) distinctCount(ctx context.Context, table, column string) (int, bool, error) {
	col := &sqldb.ColumnExpr{Name: column}
	stmt := &sqldb.SelectStmt{
		Items:   []sqldb.SelectItem{{Expr: col}},
		Table:   table,
		GroupBy: []sqldb.Expr{col},
		Limit:   -1,
	}
	sql := stmt.String()
	seen := make(map[string]struct{})
	var keyBuf []byte
	partial := r.partialMode(ctx)
	degraded := false
	for i, c := range r.children {
		if partial && r.childDown(i) {
			degraded = true
			continue
		}
		rows, _, err := c.Exec(ctx, sql, backend.ExecOptions{})
		if err != nil {
			if partial && errors.Is(err, backend.ErrUnavailable) && ctx.Err() == nil {
				degraded = true
				continue
			}
			return 0, false, fmt.Errorf("shardbe: distinct scan on shard %d: %w", i, err)
		}
		for _, row := range rows.Rows {
			if len(row) != 1 || row[0].IsNull() {
				continue
			}
			keyBuf = row[0].AppendKey(keyBuf[:0])
			seen[string(keyBuf)] = struct{}{}
		}
	}
	return len(seen), degraded, nil
}

// childTask is one planned child execution.
type childTask struct {
	child  int
	lo, hi int // local range; 0,0 means "full child table"
}

// childRun is one partial's outcome: the winning attempt's result plus
// how it was obtained (memo hit, hedged, hedge won).
type childRun struct {
	rows  *backend.Rows
	stats backend.ExecStats
	lat   time.Duration
	err   error
	// cached marks a partial answered from the memo (no execution).
	cached bool
	// hedged marks that a speculative duplicate was issued for this
	// partial; hedgeWon that the duplicate answered first.
	hedged   bool
	hedgeWon bool
	// degraded marks a partial skipped in degraded-results mode: the
	// child was unavailable, the merge proceeds without it, and the
	// omission is stamped into the fan-out's ExecStats.
	degraded bool
}

// Exec fans one query out to the children and merges the partial
// results. The query is decomposed by sqldb.NewShardPlan: aggregates
// travel as mergeable partial states (AVG as SUM+COUNT, COUNT(DISTINCT)
// as value sets), and HAVING/ORDER BY/DISTINCT/LIMIT apply after the
// merge. Fan-out is concurrent with bounded parallelism; the first child
// error cancels the remaining executions.
func (r *Router) Exec(ctx context.Context, query string, opts backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	partial := r.partialMode(ctx) || opts.AllowPartial
	_, psp := telemetry.StartSpan(ctx, "shard.plan")
	stmt, err := sqldb.Parse(query)
	if err != nil {
		psp.End()
		return nil, backend.ExecStats{}, err
	}
	infos, down, err := r.childInfosPartial(ctx, stmt.Table, partial)
	if err != nil {
		psp.End()
		return nil, backend.ExecStats{}, err
	}
	schema, err := schemaOf(infos[0])
	if err != nil {
		psp.End()
		return nil, backend.ExecStats{}, err
	}
	sp, err := sqldb.NewShardPlan(stmt, schema)
	psp.End()
	if err != nil {
		return nil, backend.ExecStats{}, err
	}

	// Map the global row range onto per-child contiguous local ranges:
	// the global space is the concatenation of child row spaces in child
	// order. A full-table request passes the "whole table" form through,
	// so children without row-range support still serve unranged queries.
	total := 0
	for _, ti := range infos {
		total += ti.Rows
	}
	lo, hi := opts.Lo, opts.Hi
	if hi <= 0 {
		hi = total
	}
	lo = clamp(lo, 0, total)
	hi = clamp(hi, lo, total)
	full := lo == 0 && hi == total

	var tasks []childTask
	off := 0
	for i, ti := range infos {
		cLo := clamp(lo-off, 0, ti.Rows)
		cHi := clamp(hi-off, 0, ti.Rows)
		off += ti.Rows
		if cHi <= cLo {
			continue // this shard holds no rows of the requested range
		}
		t := childTask{child: i, lo: cLo, hi: cHi}
		if full {
			t.lo, t.hi = 0, 0
		}
		tasks = append(tasks, t)
	}

	// Children skipped at planning time — open breaker or introspection
	// outage — never become tasks, but a traced tree must still account
	// for every shard: emit a closed, status-marked span per skipped
	// child so the stitched tree shows the hole instead of silently
	// missing a partition.
	if down != nil {
		for i := range r.children {
			if !down[i] {
				continue
			}
			_, ssp := telemetry.StartSpan(ctx, "shard.exec")
			ssp.SetAttr("shard", strconv.Itoa(i))
			ssp.SetAttr("status", "skipped")
			if r.childDown(i) {
				ssp.SetAttr("circuit", "open")
			}
			ssp.End()
		}
	}

	childSQL := sp.ChildSQL()
	runs := make([]childRun, len(tasks))

	if len(tasks) > 0 {
		fanCtx, fsp := telemetry.StartSpan(ctx, "shard.fanout")
		fsp.SetAttr("children", strconv.Itoa(len(tasks)))
		cancel := context.CancelFunc(func() {})
		if fanCtx == nil {
			fanCtx = context.Background()
		}
		fanCtx, cancel = context.WithCancel(fanCtx)
		defer cancel()

		par := r.par
		if par > len(tasks) {
			par = len(tasks)
		}
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ti := range work {
					t := tasks[ti]
					br := r.breakerFor(t.child)
					if br != nil && !br.Allow() {
						// Open circuit: fail fast without touching the child.
						// The skip still leaves a closed, status-marked span,
						// so a traced tree shows the hole instead of silently
						// missing a shard.
						_, ssp := telemetry.StartSpan(fanCtx, "shard.exec")
						ssp.SetAttr("shard", strconv.Itoa(t.child))
						ssp.SetAttr("status", "skipped")
						ssp.SetAttr("circuit", "open")
						ssp.End()
						if partial {
							runs[ti] = childRun{degraded: true}
						} else {
							runs[ti] = childRun{err: fmt.Errorf("%w: circuit open", backend.ErrUnavailable)}
							cancel()
						}
						continue
					}
					run := r.runChild(fanCtx, stmt.Table, childSQL, t, opts)
					if br != nil {
						// A child is "failing" only when it looks down —
						// unreachable or timing out while the request itself
						// is still live. The caller's own cancellation, and
						// child-side errors like a parse rejection, say
						// nothing bad about child health.
						switch {
						case run.err == nil:
							br.RecordSuccess()
						case (errors.Is(run.err, backend.ErrUnavailable) || errors.Is(run.err, context.DeadlineExceeded)) && ctx.Err() == nil:
							br.RecordFailure()
						case !isCtxErr(run.err):
							// The child answered, just not usefully (parse
							// rejection, unknown column): it is alive.
							br.RecordSuccess()
						default:
							// Cancellation with the parent request dead or
							// dying: no health signal either way.
							br.RecordCancel()
						}
					}
					if run.err != nil && partial && errors.Is(run.err, backend.ErrUnavailable) && ctx.Err() == nil {
						// Degraded-results mode tolerates an unavailable
						// child: skip its part, keep the fan-out running.
						run = childRun{degraded: true}
					}
					runs[ti] = run
					if run.err != nil {
						cancel() // first failure aborts the straggling shards
					} else if !run.cached && !run.degraded {
						// Memo hits cost no child execution; only winners of
						// real executions belong in the latency distribution.
						r.tel.ObserveShard(run.lat)
					}
				}
			}()
		}
		for ti := range tasks {
			work <- ti
		}
		close(work)
		wg.Wait()
		fsp.End()
	}

	// Report the root cause, not a casualty: after a first failure
	// cancels the fan-out, innocent shards abort with ctx errors — prefer
	// the error that is not a cancellation when one exists.
	var firstErr error
	firstChild := -1
	for ti := range tasks {
		if err := runs[ti].err; err != nil {
			if firstErr == nil || (isCtxErr(firstErr) && !isCtxErr(err)) {
				firstErr, firstChild = err, tasks[ti].child
			}
		}
	}
	if firstErr != nil {
		return nil, backend.ExecStats{}, fmt.Errorf("shardbe: shard %d: %w", firstChild, firstErr)
	}

	// Collect the degraded shard set: children skipped before fan-out
	// (down at introspection time) plus partials dropped mid-fan-out.
	var degradedShards []int
	for i := range r.children {
		if down != nil && down[i] {
			degradedShards = append(degradedShards, i)
		}
	}
	survivors := 0
	for ti := range tasks {
		if runs[ti].degraded {
			degradedShards = append(degradedShards, tasks[ti].child)
		} else {
			survivors++
		}
	}
	sort.Ints(degradedShards)
	if partial && survivors == 0 && len(degradedShards) >= len(r.children) {
		// Every child in the router is gone: that is an outage, not a
		// degraded result. A row range that only touches down children
		// while healthy children survive elsewhere stays degraded — the
		// partial contract is "the result over surviving partitions",
		// and the surviving partitions hold no rows in that range.
		return nil, backend.ExecStats{}, fmt.Errorf("shardbe: %w: all %d shards unavailable", backend.ErrUnavailable, len(r.children))
	}

	// ShardFanout counts real child executions; memo hits report as
	// ShardPartialsCached instead (and cost no latency, so they never
	// touch the straggler max). Nested robustness counters — a netbe
	// child's retries, a nested router's hedges — sum through, so the
	// top-level ExecStats sees the whole tree.
	var stats backend.ExecStats
	stats.ShardsDegraded = len(degradedShards)
	stats.DegradedShards = degradedShards
	for ti := range tasks {
		run := &runs[ti]
		if run.degraded {
			continue // no execution, no part: only the degraded stamp above
		}
		if run.cached {
			stats.ShardPartialsCached++
		} else {
			stats.ShardFanout++
		}
		if run.hedged {
			stats.HedgedPartials++
		}
		if run.hedgeWon {
			stats.HedgeWins++
		}
		stats.RowsScanned += run.stats.RowsScanned
		stats.SelectionKernels += run.stats.SelectionKernels
		stats.ResidualPredicates += run.stats.ResidualPredicates
		stats.ShardPartialsCached += run.stats.ShardPartialsCached
		stats.HedgedPartials += run.stats.HedgedPartials
		stats.HedgeWins += run.stats.HedgeWins
		stats.NetRetries += run.stats.NetRetries
		if run.stats.Workers > stats.Workers {
			stats.Workers = run.stats.Workers
		}
		if run.lat > stats.ShardStragglerMax {
			stats.ShardStragglerMax = run.lat
		}
	}

	// A degraded partial merges as zero rows: the global result is then
	// exactly what an unsharded store holding only the surviving
	// partitions' rows would produce.
	parts := make([]sqldb.ShardPart, len(tasks))
	for ti := range tasks {
		if runs[ti].degraded {
			continue
		}
		parts[ti] = sqldb.ShardPart{Rows: runs[ti].rows.Rows, Groups: runs[ti].stats.Groups}
	}
	_, msp := telemetry.StartSpan(ctx, "shard.merge")
	merged, err := sp.Merge(parts)
	msp.End()
	if err != nil {
		return nil, backend.ExecStats{}, err
	}
	stats.Groups = merged.Stats.Groups
	if stats.Workers < 1 {
		stats.Workers = 1
	}

	// The fan-out counts as vectorized only when every scanned shard ran
	// the fast path; otherwise the first shard's reason stands in for the
	// whole query (a per-shard breakdown would not fit one ExecStats).
	// Degraded partials scanned nothing and have no say.
	stats.Vectorized = survivors > 0
	for ti := range tasks {
		if runs[ti].degraded {
			continue
		}
		if !runs[ti].stats.Vectorized {
			stats.Vectorized = false
			stats.FallbackReason = runs[ti].stats.FallbackReason
			break
		}
	}
	if !stats.Vectorized && stats.FallbackReason == "" {
		stats.FallbackReason = "empty shard fan-out"
	}

	return &backend.Rows{Columns: merged.Columns, Rows: merged.Rows}, stats, nil
}

// isCtxErr reports a context cancellation/deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// schemaOf rebuilds a sqldb schema from a backend table description.
func schemaOf(ti backend.TableInfo) (*sqldb.Schema, error) {
	cols := make([]sqldb.Column, len(ti.Columns))
	for i, c := range ti.Columns {
		cols[i] = sqldb.Column{Name: c.Name, Type: c.Type}
	}
	return sqldb.NewSchema(cols...)
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
