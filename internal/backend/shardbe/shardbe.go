// Package shardbe implements the shard router: a backend.Backend that
// holds a fact table partitioned row-wise across N child backends and
// answers queries by fanning them out and merging decomposed partial
// aggregation states (internal/sqldb's ShardPlan).
//
// The router is "just another Backend" on the seam PR 3 built — the
// engine above it runs unchanged — which is exactly the middleware
// scale-out story of the SeeDB paper's architecture: partition the work
// across executors, share nothing, merge cheap partial states. Today the
// children are embedded sqldb stores in one process; any conforming
// Backend works, because the router only speaks SQL and the Backend
// interface to them.
//
// Contract highlights:
//
//   - Global row space. The router presents the concatenation of its
//     children's row spaces, in child order: child 0's rows first, then
//     child 1's, and so on. A phased-execution range [lo, hi) maps onto
//     at most one contiguous local range per child. When tables are
//     loaded with the contiguous block partitioner (ScatterTable with
//     Blocks), the global order equals the original insertion order and
//     every result — group first-seen order included — is bit-identical
//     to an unsharded embedded execution on exactly-summable data (see
//     the float caveat in sqldb/shardexec.go). Hash and round-robin
//     partitioning keep results deterministic and aggregates correct but
//     permute the global order, so phased pruning may make different
//     (equally valid) decisions than an unsharded run.
//
//   - Capabilities are the intersection of the children's: the router
//     can only honor a row-range or a parallel-scan hint if every child
//     can. Degradation then happens in the engine exactly as for any
//     other backend (core.EffectiveStrategy) and is recorded in Metrics.
//
//   - TableVersion is a version vector: the concatenation of every
//     child's token. Any child-level load, append or drop changes the
//     vector, so the shared result cache invalidates without the router
//     tracking writes itself.
//
//   - TableStats merges child statistics exactly: row counts add, and
//     per-column distinct counts are the size of the union of per-child
//     distinct value sets (collected with one GROUP BY query per column
//     per child, memoized per version vector). Summing per-child
//     distinct counts would overcount values present on several shards.
package shardbe

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"seedb/internal/backend"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// DefaultName is the backend name the router registers version tokens
// under when Options.Name is empty.
const DefaultName = "shard"

// Options configures a Router.
type Options struct {
	// Name overrides the backend name (default "shard"). Two routers over
	// different child sets may share a result cache even under one name:
	// the child version tokens embed process-unique store ids.
	Name string
	// MaxParallel bounds how many children one Exec queries concurrently
	// (default: all of them). Child-side scan parallelism multiplies on
	// top, exactly as Options.Parallelism × ScanParallelism does in the
	// engine.
	MaxParallel int
	// Telemetry, when non-nil, observes every child execution's latency
	// in the collector's shard-latency histogram — per-child partials,
	// which is what turns "the straggler max" into a distribution.
	Telemetry *telemetry.Collector
	// Hedge configures straggler hedging (off by default): child
	// executions outliving the hedge delay get a speculative duplicate,
	// first answer wins, loser is cancelled. See hedge.go.
	Hedge HedgeOptions
	// Replicas optionally lists, per child index, alternate backends
	// holding the same shard's data; hedged duplicates run there instead
	// of doubling load on the straggler itself. Missing or empty entries
	// fall back to re-querying the same child.
	Replicas [][]backend.Backend
	// PartialCacheEntries bounds the per-shard partial memo (0 disables
	// it, the default): repeated identical child executions answer from
	// memory, keyed by the child's own version token, and report as
	// ShardPartialsCached instead of ShardFanout. Off by default because
	// the shard benchmarks measure cold fan-out cost.
	PartialCacheEntries int
}

// Router is the shard-routing backend. It is safe for concurrent use
// when its children are.
type Router struct {
	name     string
	children []backend.Backend
	par      int
	tel      *telemetry.Collector
	hedge    HedgeOptions
	replicas [][]backend.Backend
	// hedgeLat tracks winning child-execution latencies for the adaptive
	// hedge delay (router-internal, independent of Options.Telemetry).
	hedgeLat *telemetry.Histogram
	// memo is the per-shard partial memo, nil when disabled.
	memo *partialMemo

	mu        sync.Mutex
	statsMemo map[string]statsEntry // table (lowercased) → memoized stats
}

// statsEntry memoizes one table's merged statistics under the version
// vector they were computed at.
type statsEntry struct {
	version string
	stats   *backend.TableStats
}

// New creates a router over the given children (at least one).
func New(children []backend.Backend, opts Options) (*Router, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("shardbe: need at least one child backend")
	}
	name := opts.Name
	if name == "" {
		name = DefaultName
	}
	par := opts.MaxParallel
	if par <= 0 || par > len(children) {
		par = len(children)
	}
	if len(opts.Replicas) > len(children) {
		return nil, fmt.Errorf("shardbe: %d replica sets for %d children", len(opts.Replicas), len(children))
	}
	r := &Router{
		name:      name,
		children:  append([]backend.Backend(nil), children...),
		par:       par,
		tel:       opts.Telemetry,
		hedge:     opts.Hedge,
		replicas:  opts.Replicas,
		hedgeLat:  &telemetry.Histogram{},
		statsMemo: make(map[string]statsEntry),
	}
	if opts.PartialCacheEntries > 0 {
		r.memo = newPartialMemo(opts.PartialCacheEntries)
	}
	return r, nil
}

// NumChildren returns the fan-out width.
func (r *Router) NumChildren() int { return len(r.children) }

// Name identifies the router.
func (r *Router) Name() string { return r.name }

// Capabilities is the intersection of the children's capabilities: a
// shared optimization the router cannot guarantee on every shard is not
// offered at all, and the engine degrades exactly as documented for any
// single backend.
func (r *Router) Capabilities() backend.Capabilities {
	caps := backend.Capabilities{SupportsVectorized: true, SupportsPhasedExecution: true}
	for _, c := range r.children {
		cc := c.Capabilities()
		caps.SupportsVectorized = caps.SupportsVectorized && cc.SupportsVectorized
		caps.SupportsPhasedExecution = caps.SupportsPhasedExecution && cc.SupportsPhasedExecution
	}
	return caps
}

// childInfos fetches every child's TableInfo and checks the shards agree
// on the schema. A table absent from every child is ErrNoTable; a table
// present on only some children is a partitioning inconsistency, which
// is an error distinct from "no such table".
func (r *Router) childInfos(ctx context.Context, table string) ([]backend.TableInfo, error) {
	infos := make([]backend.TableInfo, len(r.children))
	missing := 0
	for i, c := range r.children {
		ti, err := c.TableInfo(ctx, table)
		if errors.Is(err, backend.ErrNoTable) {
			missing++
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("shardbe: shard %d: %w", i, err)
		}
		infos[i] = ti
	}
	if missing == len(r.children) {
		return nil, fmt.Errorf("%w: %q", backend.ErrNoTable, table)
	}
	if missing > 0 {
		return nil, fmt.Errorf("shardbe: table %q exists on only %d of %d shards", table, len(r.children)-missing, len(r.children))
	}
	first := infos[0]
	for i := 1; i < len(infos); i++ {
		if err := sameColumns(first.Columns, infos[i].Columns); err != nil {
			return nil, fmt.Errorf("shardbe: table %q: shard %d schema disagrees with shard 0: %w", table, i, err)
		}
	}
	return infos, nil
}

// sameColumns checks two shards declare identical columns.
func sameColumns(a, b []backend.Column) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d columns vs %d", len(a), len(b))
	}
	for i := range a {
		if !strings.EqualFold(a[i].Name, b[i].Name) || a[i].Type != b[i].Type {
			return fmt.Errorf("column %d is %s %v vs %s %v", i, a[i].Name, a[i].Type, b[i].Name, b[i].Type)
		}
	}
	return nil
}

// TableInfo merges the children's descriptions: identical schema, summed
// row counts, and the shared layout (the conservative row layout when
// shards disagree).
func (r *Router) TableInfo(ctx context.Context, table string) (backend.TableInfo, error) {
	infos, err := r.childInfos(ctx, table)
	if err != nil {
		return backend.TableInfo{}, err
	}
	out := infos[0]
	for _, ti := range infos[1:] {
		out.Rows += ti.Rows
		if ti.Layout != out.Layout {
			out.Layout = backend.LayoutRow
		}
	}
	return out, nil
}

// TableVersion returns the child version vector, joined in child order.
// Any shard-level data change yields a fresh vector, which is what keys
// result-cache invalidation. The table must exist on every child.
func (r *Router) TableVersion(ctx context.Context, table string) (string, bool) {
	parts := make([]string, 0, len(r.children)+1)
	parts = append(parts, fmt.Sprintf("n%d", len(r.children)))
	for _, c := range r.children {
		v, ok := c.TableVersion(ctx, table)
		if !ok {
			return "", false
		}
		parts = append(parts, v)
	}
	return strings.Join(parts, "|"), true
}

// TableStats merges per-shard statistics: rows add, distinct counts come
// from the union of per-child distinct value sets so values living on
// several shards count once. The union is collected with one GROUP BY
// query per column per child and memoized under the version vector.
func (r *Router) TableStats(ctx context.Context, table string) (*backend.TableStats, error) {
	infos, err := r.childInfos(ctx, table)
	if err != nil {
		return nil, err
	}
	version, versioned := r.TableVersion(ctx, table)
	key := strings.ToLower(table)
	if versioned {
		r.mu.Lock()
		if e, ok := r.statsMemo[key]; ok && e.version == version {
			r.mu.Unlock()
			return e.stats, nil
		}
		r.mu.Unlock()
	}

	rows := 0
	for _, ti := range infos {
		rows += ti.Rows
	}
	out := &backend.TableStats{Rows: rows, Columns: make([]backend.ColumnStats, len(infos[0].Columns))}
	for ci, col := range infos[0].Columns {
		distinct, err := r.distinctCount(ctx, table, col.Name)
		if err != nil {
			return nil, err
		}
		out.Columns[ci] = backend.ColumnStats{Name: col.Name, Type: col.Type, Distinct: distinct}
	}

	if versioned {
		r.mu.Lock()
		r.statsMemo[key] = statsEntry{version: version, stats: out}
		r.mu.Unlock()
	}
	return out, nil
}

// distinctCount unions one column's distinct non-NULL values across
// shards, keyed by the embedded engine's injective value encoding so the
// count is exact (bit-level float identity included).
func (r *Router) distinctCount(ctx context.Context, table, column string) (int, error) {
	col := &sqldb.ColumnExpr{Name: column}
	stmt := &sqldb.SelectStmt{
		Items:   []sqldb.SelectItem{{Expr: col}},
		Table:   table,
		GroupBy: []sqldb.Expr{col},
		Limit:   -1,
	}
	sql := stmt.String()
	seen := make(map[string]struct{})
	var keyBuf []byte
	for i, c := range r.children {
		rows, _, err := c.Exec(ctx, sql, backend.ExecOptions{})
		if err != nil {
			return 0, fmt.Errorf("shardbe: distinct scan on shard %d: %w", i, err)
		}
		for _, row := range rows.Rows {
			if len(row) != 1 || row[0].IsNull() {
				continue
			}
			keyBuf = row[0].AppendKey(keyBuf[:0])
			seen[string(keyBuf)] = struct{}{}
		}
	}
	return len(seen), nil
}

// childTask is one planned child execution.
type childTask struct {
	child  int
	lo, hi int // local range; 0,0 means "full child table"
}

// childRun is one partial's outcome: the winning attempt's result plus
// how it was obtained (memo hit, hedged, hedge won).
type childRun struct {
	rows  *backend.Rows
	stats backend.ExecStats
	lat   time.Duration
	err   error
	// cached marks a partial answered from the memo (no execution).
	cached bool
	// hedged marks that a speculative duplicate was issued for this
	// partial; hedgeWon that the duplicate answered first.
	hedged   bool
	hedgeWon bool
}

// Exec fans one query out to the children and merges the partial
// results. The query is decomposed by sqldb.NewShardPlan: aggregates
// travel as mergeable partial states (AVG as SUM+COUNT, COUNT(DISTINCT)
// as value sets), and HAVING/ORDER BY/DISTINCT/LIMIT apply after the
// merge. Fan-out is concurrent with bounded parallelism; the first child
// error cancels the remaining executions.
func (r *Router) Exec(ctx context.Context, query string, opts backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	_, psp := telemetry.StartSpan(ctx, "shard.plan")
	stmt, err := sqldb.Parse(query)
	if err != nil {
		psp.End()
		return nil, backend.ExecStats{}, err
	}
	infos, err := r.childInfos(ctx, stmt.Table)
	if err != nil {
		psp.End()
		return nil, backend.ExecStats{}, err
	}
	schema, err := schemaOf(infos[0])
	if err != nil {
		psp.End()
		return nil, backend.ExecStats{}, err
	}
	sp, err := sqldb.NewShardPlan(stmt, schema)
	psp.End()
	if err != nil {
		return nil, backend.ExecStats{}, err
	}

	// Map the global row range onto per-child contiguous local ranges:
	// the global space is the concatenation of child row spaces in child
	// order. A full-table request passes the "whole table" form through,
	// so children without row-range support still serve unranged queries.
	total := 0
	for _, ti := range infos {
		total += ti.Rows
	}
	lo, hi := opts.Lo, opts.Hi
	if hi <= 0 {
		hi = total
	}
	lo = clamp(lo, 0, total)
	hi = clamp(hi, lo, total)
	full := lo == 0 && hi == total

	var tasks []childTask
	off := 0
	for i, ti := range infos {
		cLo := clamp(lo-off, 0, ti.Rows)
		cHi := clamp(hi-off, 0, ti.Rows)
		off += ti.Rows
		if cHi <= cLo {
			continue // this shard holds no rows of the requested range
		}
		t := childTask{child: i, lo: cLo, hi: cHi}
		if full {
			t.lo, t.hi = 0, 0
		}
		tasks = append(tasks, t)
	}

	childSQL := sp.ChildSQL()
	runs := make([]childRun, len(tasks))

	if len(tasks) > 0 {
		fanCtx, fsp := telemetry.StartSpan(ctx, "shard.fanout")
		fsp.SetAttr("children", strconv.Itoa(len(tasks)))
		cancel := context.CancelFunc(func() {})
		if fanCtx == nil {
			fanCtx = context.Background()
		}
		fanCtx, cancel = context.WithCancel(fanCtx)
		defer cancel()

		par := r.par
		if par > len(tasks) {
			par = len(tasks)
		}
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ti := range work {
					run := r.runChild(fanCtx, stmt.Table, childSQL, tasks[ti], opts)
					runs[ti] = run
					if run.err != nil {
						cancel() // first failure aborts the straggling shards
					} else if !run.cached {
						// Memo hits cost no child execution; only winners of
						// real executions belong in the latency distribution.
						r.tel.ObserveShard(run.lat)
					}
				}
			}()
		}
		for ti := range tasks {
			work <- ti
		}
		close(work)
		wg.Wait()
		fsp.End()
	}

	// Report the root cause, not a casualty: after a first failure
	// cancels the fan-out, innocent shards abort with ctx errors — prefer
	// the error that is not a cancellation when one exists.
	var firstErr error
	firstChild := -1
	for ti := range tasks {
		if err := runs[ti].err; err != nil {
			if firstErr == nil || (isCtxErr(firstErr) && !isCtxErr(err)) {
				firstErr, firstChild = err, tasks[ti].child
			}
		}
	}
	if firstErr != nil {
		return nil, backend.ExecStats{}, fmt.Errorf("shardbe: shard %d: %w", firstChild, firstErr)
	}

	// ShardFanout counts real child executions; memo hits report as
	// ShardPartialsCached instead (and cost no latency, so they never
	// touch the straggler max). Nested robustness counters — a netbe
	// child's retries, a nested router's hedges — sum through, so the
	// top-level ExecStats sees the whole tree.
	var stats backend.ExecStats
	for ti := range tasks {
		run := &runs[ti]
		if run.cached {
			stats.ShardPartialsCached++
		} else {
			stats.ShardFanout++
		}
		if run.hedged {
			stats.HedgedPartials++
		}
		if run.hedgeWon {
			stats.HedgeWins++
		}
		stats.RowsScanned += run.stats.RowsScanned
		stats.SelectionKernels += run.stats.SelectionKernels
		stats.ResidualPredicates += run.stats.ResidualPredicates
		stats.ShardPartialsCached += run.stats.ShardPartialsCached
		stats.HedgedPartials += run.stats.HedgedPartials
		stats.HedgeWins += run.stats.HedgeWins
		stats.NetRetries += run.stats.NetRetries
		if run.stats.Workers > stats.Workers {
			stats.Workers = run.stats.Workers
		}
		if run.lat > stats.ShardStragglerMax {
			stats.ShardStragglerMax = run.lat
		}
	}

	parts := make([]sqldb.ShardPart, len(tasks))
	for ti := range tasks {
		parts[ti] = sqldb.ShardPart{Rows: runs[ti].rows.Rows, Groups: runs[ti].stats.Groups}
	}
	_, msp := telemetry.StartSpan(ctx, "shard.merge")
	merged, err := sp.Merge(parts)
	msp.End()
	if err != nil {
		return nil, backend.ExecStats{}, err
	}
	stats.Groups = merged.Stats.Groups
	if stats.Workers < 1 {
		stats.Workers = 1
	}

	// The fan-out counts as vectorized only when every scanned shard ran
	// the fast path; otherwise the first shard's reason stands in for the
	// whole query (a per-shard breakdown would not fit one ExecStats).
	stats.Vectorized = len(tasks) > 0
	for ti := range tasks {
		if !runs[ti].stats.Vectorized {
			stats.Vectorized = false
			stats.FallbackReason = runs[ti].stats.FallbackReason
			break
		}
	}
	if !stats.Vectorized && stats.FallbackReason == "" {
		stats.FallbackReason = "empty shard fan-out"
	}

	return &backend.Rows{Columns: merged.Columns, Rows: merged.Rows}, stats, nil
}

// isCtxErr reports a context cancellation/deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// schemaOf rebuilds a sqldb schema from a backend table description.
func schemaOf(ti backend.TableInfo) (*sqldb.Schema, error) {
	cols := make([]sqldb.Column, len(ti.Columns))
	for i, c := range ti.Columns {
		cols[i] = sqldb.Column{Name: c.Name, Type: c.Type}
	}
	return sqldb.NewSchema(cols...)
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
