package shardbe

import (
	"context"
	"errors"
	"strings"
	"testing"

	"seedb/internal/backend"
	"seedb/internal/sqldb"
)

// buildSource creates a small source table with NULLs in both a
// dimension and a measure.
func buildSource(t *testing.T, rows int) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "region", Type: sqldb.TypeString},
		sqldb.Column{Name: "qty", Type: sqldb.TypeInt},
		sqldb.Column{Name: "price", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable("sales", schema, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"east", "west", "north"}
	for i := 0; i < rows; i++ {
		region := sqldb.Str(regions[i%len(regions)])
		if i%11 == 0 {
			region = sqldb.Null()
		}
		price := sqldb.Float(float64(i%40) * 0.25)
		if i%7 == 0 {
			price = sqldb.Null()
		}
		if err := tab.AppendRow([]sqldb.Value{region, sqldb.Int(int64(i % 5)), price}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// newRouter scatters the source across n embedded children contiguously.
func newRouter(t *testing.T, src *sqldb.DB, n int) (*Router, []*sqldb.DB) {
	t.Helper()
	dbs, bes := EmbeddedChildren(n)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	r, err := New(bes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r, dbs
}

func TestIntrospection(t *testing.T) {
	src := buildSource(t, 90)
	r, _ := newRouter(t, src, 3)
	ctx := context.Background()

	if r.Name() != "shard" {
		t.Errorf("Name = %q", r.Name())
	}
	caps := r.Capabilities()
	if !caps.SupportsVectorized || !caps.SupportsPhasedExecution {
		t.Errorf("embedded children should keep full capabilities, got %+v", caps)
	}

	ti, err := r.TableInfo(ctx, "sales")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Rows != 90 || len(ti.Columns) != 3 || ti.Layout != backend.LayoutCol {
		t.Errorf("TableInfo = %+v", ti)
	}
	if _, err := r.TableInfo(ctx, "nope"); !errors.Is(err, backend.ErrNoTable) {
		t.Errorf("missing table error = %v, want ErrNoTable", err)
	}

	// Stats must match the unsharded exact statistics (distinct counts
	// union across shards, not sum).
	want, err := src.Stats("sales")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.TableStats(ctx, "sales")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows {
		t.Errorf("stats rows = %d, want %d", got.Rows, want.Rows)
	}
	for _, wc := range want.Columns {
		gc, ok := got.Column(wc.Name)
		if !ok || gc.Distinct != wc.Distinct {
			t.Errorf("column %s distinct = %d (ok=%v), want %d", wc.Name, gc.Distinct, ok, wc.Distinct)
		}
	}
}

func TestVersionVectorInvalidation(t *testing.T) {
	src := buildSource(t, 30)
	r, dbs := newRouter(t, src, 2)
	ctx := context.Background()

	v1, ok := r.TableVersion(ctx, "sales")
	if !ok || v1 == "" {
		t.Fatalf("version = %q, ok=%v", v1, ok)
	}
	// An append on any single child must change the vector.
	tab, _ := dbs[1].Table("sales")
	if err := tab.AppendRow([]sqldb.Value{sqldb.Str("east"), sqldb.Int(1), sqldb.Null()}); err != nil {
		t.Fatal(err)
	}
	v2, ok := r.TableVersion(ctx, "sales")
	if !ok || v2 == v1 {
		t.Errorf("version unchanged after child append: %q", v2)
	}

	// A cancelled context reports the table absent, per the contract.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, ok := r.TableVersion(cctx, "sales"); ok {
		t.Error("TableVersion with cancelled ctx should report absent")
	}
}

func TestExecMergesAndRanges(t *testing.T) {
	src := buildSource(t, 100)
	r, _ := newRouter(t, src, 3)
	ctx := context.Background()

	cases := []struct {
		sql    string
		lo, hi int
	}{
		{"SELECT region, COUNT(*), SUM(price), AVG(price), MIN(qty), MAX(qty) FROM sales GROUP BY region", 0, 0},
		{"SELECT COUNT(DISTINCT region), COUNT(*) FROM sales", 0, 0},
		{"SELECT qty, AVG(price) FROM sales GROUP BY qty HAVING COUNT(*) > 5 ORDER BY 2 DESC LIMIT 3", 0, 0},
		{"SELECT region, qty FROM sales WHERE price IS NOT NULL ORDER BY qty DESC, region LIMIT 7", 0, 0},
		{"SELECT region, SUM(qty) FROM sales GROUP BY region", 13, 61}, // sub-range straddling shard boundaries
		{"SELECT COUNT(*) FROM sales", 40, 40},                         // empty range
		{"SELECT COUNT(*) FROM sales WHERE qty > 100", 0, 0},           // zero matching rows
	}
	for _, tc := range cases {
		want, err := src.QueryOpts(tc.sql, sqldb.ExecOptions{Lo: tc.lo, Hi: tc.hi})
		if err != nil {
			t.Fatalf("%s: unsharded: %v", tc.sql, err)
		}
		rows, stats, err := r.Exec(ctx, tc.sql, backend.ExecOptions{Lo: tc.lo, Hi: tc.hi})
		if err != nil {
			t.Fatalf("%s: sharded: %v", tc.sql, err)
		}
		if len(rows.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d rows, want %d", tc.sql, len(rows.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if rows.Rows[i][j].String() != want.Rows[i][j].String() || rows.Rows[i][j].Kind != want.Rows[i][j].Kind {
					t.Errorf("%s: row %d col %d = %s, want %s", tc.sql, i, j, rows.Rows[i][j], want.Rows[i][j])
				}
			}
		}
		if stats.RowsScanned != want.Stats.RowsScanned {
			t.Errorf("%s: RowsScanned = %d, want %d", tc.sql, stats.RowsScanned, want.Stats.RowsScanned)
		}
		if stats.Groups != want.Stats.Groups {
			t.Errorf("%s: Groups = %d, want %d", tc.sql, stats.Groups, want.Stats.Groups)
		}
	}
}

func TestExecShardStats(t *testing.T) {
	src := buildSource(t, 60)
	r, _ := newRouter(t, src, 4)
	_, stats, err := r.Exec(context.Background(), "SELECT region, COUNT(*) FROM sales GROUP BY region", backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardFanout != 4 {
		t.Errorf("ShardFanout = %d, want 4", stats.ShardFanout)
	}
	if stats.ShardStragglerMax <= 0 {
		t.Errorf("ShardStragglerMax = %v, want > 0", stats.ShardStragglerMax)
	}
}

func TestEmptyTable(t *testing.T) {
	src := buildSource(t, 0)
	r, _ := newRouter(t, src, 3)
	rows, stats, err := r.Exec(context.Background(), "SELECT COUNT(*), SUM(price) FROM sales", backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0][0].I != 0 || !rows.Rows[0][1].IsNull() {
		t.Errorf("empty-table global aggregate = %+v", rows.Rows)
	}
	if stats.ShardFanout != 0 || stats.Groups != 0 {
		t.Errorf("empty-table stats = %+v", stats)
	}
}

func TestPartialPresenceIsAnError(t *testing.T) {
	src := buildSource(t, 20)
	r, dbs := newRouter(t, src, 2)
	if err := dbs[1].DropTable("sales"); err != nil {
		t.Fatal(err)
	}
	_, err := r.TableInfo(context.Background(), "sales")
	if err == nil || errors.Is(err, backend.ErrNoTable) {
		t.Errorf("partially present table should be a distinct error, got %v", err)
	}
	if !strings.Contains(err.Error(), "only") {
		t.Errorf("error should describe partial presence: %v", err)
	}
}

func TestCancellationAbortsFanout(t *testing.T) {
	src := buildSource(t, 5000)
	r, _ := newRouter(t, src, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Exec(ctx, "SELECT region, COUNT(*) FROM sales GROUP BY region", backend.ExecOptions{}); err == nil {
		t.Error("cancelled ctx should fail Exec")
	}
}

func TestPartitioners(t *testing.T) {
	row := []sqldb.Value{sqldb.Str("k")}
	if s := (RoundRobin{}).Shard(7, row, 3); s != 1 {
		t.Errorf("RoundRobin(7,3) = %d", s)
	}
	// HashColumn is deterministic and in range.
	h := HashColumn{Col: 0}
	first := h.Shard(0, row, 5)
	for i := 0; i < 10; i++ {
		if s := h.Shard(i, row, 5); s != first {
			t.Errorf("HashColumn not deterministic: %d vs %d", s, first)
		}
	}
	// Blocks is monotone and spans all shards.
	b := Blocks{Total: 10}
	prev := 0
	for seq := 0; seq < 10; seq++ {
		s := b.Shard(seq, nil, 4)
		if s < prev || s > 3 {
			t.Errorf("Blocks(%d) = %d (prev %d)", seq, s, prev)
		}
		prev = s
	}
	if b.Shard(9, nil, 4) != 3 {
		t.Errorf("Blocks should reach the last shard")
	}
}

// TestAppendRowRouting checks streaming appends continue the global
// sequence deterministically.
func TestAppendRowRouting(t *testing.T) {
	dbs, _ := EmbeddedChildren(3)
	schema := sqldb.MustSchema(sqldb.Column{Name: "v", Type: sqldb.TypeInt})
	for _, db := range dbs {
		if _, err := db.CreateTable("t", schema, sqldb.LayoutCol); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := AppendRow(dbs, "t", RoundRobin{}, []sqldb.Value{sqldb.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]int, 3)
	for i, db := range dbs {
		tab, _ := db.Table("t")
		counts[i] = tab.NumRows()
	}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Errorf("round-robin append counts = %v", counts)
	}
}

// failingBackend wraps a child and fails every Exec, for fan-out error
// propagation tests.
type failingBackend struct {
	backend.Backend
}

func (f failingBackend) Exec(context.Context, string, backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	return nil, backend.ExecStats{}, errors.New("disk on fire")
}

// TestFanoutReportsRootCause checks that when one shard fails and the
// cancellation aborts the innocent shards, the returned error is the
// real failure, not a bystander's "context canceled".
func TestFanoutReportsRootCause(t *testing.T) {
	src := buildSource(t, 40000)
	dbs, bes := EmbeddedChildren(2)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	// Shard 1 fails instantly; shard 0 has a long scan the cancellation
	// should abort.
	bes[1] = failingBackend{bes[1]}
	r, err := New(bes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.Exec(context.Background(), "SELECT region, COUNT(*) FROM sales GROUP BY region", backend.ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Errorf("error = %v, want the failing shard's root cause", err)
	}
	if err != nil && !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error should name the failing shard: %v", err)
	}
}

// TestHashColumnOutOfRangeFailsLoudly pins the fail-loud convention: a
// misconfigured partition column must error at routing time, not
// silently send every row to one shard.
func TestHashColumnOutOfRangeFailsLoudly(t *testing.T) {
	dbs, _ := EmbeddedChildren(2)
	schema := sqldb.MustSchema(sqldb.Column{Name: "v", Type: sqldb.TypeInt})
	for _, db := range dbs {
		if _, err := db.CreateTable("t", schema, sqldb.LayoutCol); err != nil {
			t.Fatal(err)
		}
	}
	err := AppendRow(dbs, "t", HashColumn{Col: 5}, []sqldb.Value{sqldb.Int(1)})
	if err == nil || !strings.Contains(err.Error(), "routed") {
		t.Errorf("out-of-range hash column should fail routing, got %v", err)
	}
	// In range, the hash routes deterministically.
	if err := AppendRow(dbs, "t", HashColumn{Col: 0}, []sqldb.Value{sqldb.Int(1)}); err != nil {
		t.Fatal(err)
	}
}
