package shardbe

import (
	"context"
	"strings"
	"testing"
	"time"

	"seedb/internal/backend"
	"seedb/internal/telemetry"
)

// TestTracePropagatesThroughFanout checks that a traced Exec produces a
// shard.fanout span with one shard.exec child per fanned-out child
// execution, each tagged with its shard index, and that every child's
// latency lands in the collector's shard histogram.
func TestTracePropagatesThroughFanout(t *testing.T) {
	src := buildSource(t, 90)
	dbs, bes := EmbeddedChildren(3)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	tel := telemetry.NewCollector()
	r, err := New(bes, Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	ctx, tr := telemetry.WithTrace(context.Background(), "test")
	_, stats, err := r.Exec(ctx, "SELECT region, COUNT(*) FROM sales GROUP BY region", backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardFanout != 3 {
		t.Fatalf("fanout = %d", stats.ShardFanout)
	}

	node := tr.Finish()
	fan := node.Find("shard.fanout")
	if fan == nil {
		t.Fatalf("no shard.fanout span:\n%s", node.Render())
	}
	if fan.Attrs["children"] != "3" {
		t.Errorf("fanout children attr = %q", fan.Attrs["children"])
	}
	shards := map[string]bool{}
	for _, c := range fan.Children {
		if c.Name != "shard.exec" {
			continue
		}
		shards[c.Attrs["shard"]] = true
		// The embedded child runs under the span's context, so its sqldb
		// spans must nest beneath the shard.exec span.
		if c.Find("sqldb.scan") == nil {
			t.Errorf("shard.exec %s has no nested sqldb.scan span:\n%s", c.Attrs["shard"], node.Render())
		}
	}
	if len(shards) != 3 || !shards["0"] || !shards["1"] || !shards["2"] {
		t.Errorf("shard.exec spans for shards %v, want 0,1,2:\n%s", shards, node.Render())
	}
	if node.Find("shard.plan") == nil || node.Find("shard.merge") == nil {
		t.Errorf("missing shard.plan/shard.merge spans:\n%s", node.Render())
	}
	if got := tel.ShardLatency.Count(); got != 3 {
		t.Errorf("shard histogram count = %d, want 3", got)
	}
}

// slowBackend delays each Exec until its context dies, simulating a
// straggling shard the first-error cancellation must abort.
type slowBackend struct{ backend.Backend }

func (s slowBackend) Exec(ctx context.Context, q string, opts backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	select {
	case <-ctx.Done():
		return nil, backend.ExecStats{}, ctx.Err()
	case <-time.After(5 * time.Second):
		return nil, backend.ExecStats{}, nil
	}
}

// TestCancellationClosesOpenSpans checks that when one shard fails and
// cancellation aborts the stragglers, every span still closes by the
// time Exec returns — no leaked open shard.exec spans.
func TestCancellationClosesOpenSpans(t *testing.T) {
	src := buildSource(t, 60)
	dbs, bes := EmbeddedChildren(3)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	bes[0] = failingBackend{bes[0]}
	bes[1] = slowBackend{bes[1]}
	bes[2] = slowBackend{bes[2]}
	tel := telemetry.NewCollector()
	r, err := New(bes, Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	ctx, tr := telemetry.WithTrace(context.Background(), "test")
	_, _, err = r.Exec(ctx, "SELECT region, COUNT(*) FROM sales GROUP BY region", backend.ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("error = %v, want root cause", err)
	}
	if open := tr.Open(); len(open) != 0 {
		t.Errorf("open spans after cancelled fan-out: %v", open)
	}
	// Failed and cancelled children do not pollute the latency histogram.
	if got := tel.ShardLatency.Count(); got != 0 {
		t.Errorf("shard histogram count = %d after all-error fan-out", got)
	}
}
