package shardbe

import (
	"context"
	"testing"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/faultbe"
	"seedb/internal/resilience"
	"seedb/internal/telemetry"
)

// execSpans collects every shard.exec node in the tree, in render order.
func execSpans(n *telemetry.SpanNode) []*telemetry.SpanNode {
	var out []*telemetry.SpanNode
	var walk func(n *telemetry.SpanNode)
	walk = func(n *telemetry.SpanNode) {
		if n.Name == "shard.exec" {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// TestHedgeLoserSpanLifecycle pins the span contract for hedged
// executions: the loser attempt — cancelled mid-flight by the winner —
// still ends its span exactly once, marked status=cancelled, while the
// winner's span carries resource counters. A fast replica makes the
// outcome deterministic: the primary is stalled far longer than the
// hedge delay, so the hedged attempt always wins and the primary is
// always the cancelled loser.
func TestHedgeLoserSpanLifecycle(t *testing.T) {
	src := buildSource(t, 90)
	dbs, bes := EmbeddedChildren(3)
	tab, _ := src.Table("sales")
	if err := ScatterTable(src, "sales", dbs, Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	fault := faultbe.Wrap(bes[0])
	fault.SetExecDelay(2 * time.Second)
	replica := bes[0] // same partition, no delay
	bes[0] = fault
	r, err := New(bes, Options{
		Replicas: [][]backend.Backend{{replica}},
		Hedge:    HedgeOptions{Enabled: true, Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, tr := telemetry.WithTrace(context.Background(), "test")
	_, stats, err := r.Exec(ctx, "SELECT region, COUNT(*) FROM sales GROUP BY region", backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.HedgedPartials != 1 || stats.HedgeWins != 1 {
		t.Fatalf("hedged=%d wins=%d, want 1/1", stats.HedgedPartials, stats.HedgeWins)
	}

	if open := tr.Open(); len(open) != 0 {
		t.Fatalf("open spans after hedged fan-out: %v", open)
	}
	node := tr.Finish()
	var winner, loser *telemetry.SpanNode
	others := 0
	for _, sp := range execSpans(node) {
		if sp.Attrs["shard"] != "0" {
			others++
			if sp.Attrs["rows_scanned"] == "" {
				t.Errorf("healthy shard %s span missing rows_scanned:\n%s", sp.Attrs["shard"], node.Render())
			}
			continue
		}
		if sp.Attrs["hedged"] == "true" {
			winner = sp
		} else {
			loser = sp
		}
	}
	if others != 2 {
		t.Fatalf("%d non-hedged shard.exec spans, want 2:\n%s", others, node.Render())
	}
	if winner == nil || loser == nil {
		t.Fatalf("missing primary or hedged shard-0 span:\n%s", node.Render())
	}
	if winner.Attrs["status"] != "" || winner.Attrs["rows_scanned"] == "" {
		t.Errorf("winner span attrs = %v, want rows_scanned and no status", winner.Attrs)
	}
	if loser.Attrs["status"] != "cancelled" {
		t.Errorf("loser span status = %q, want cancelled:\n%s", loser.Attrs["status"], node.Render())
	}
	if got := fault.Aborted(); got != 1 {
		t.Errorf("aborted primary execs = %d, want 1", got)
	}
}

// TestOpenCircuitSkipSpan pins the degraded-path span contract: a child
// whose breaker is open is never executed, but the trace still shows a
// closed shard.exec span marked status=skipped/circuit=open so the tree
// accounts for every planned partial.
func TestOpenCircuitSkipSpan(t *testing.T) {
	src := buildSource(t, 90)
	r, fault := newFaultRouter(t, src, 3, Options{
		AllowPartial: true,
		Breakers:     &resilience.BreakerOptions{FailureThreshold: 1},
	})
	fault.SetDown(backend.ErrUnavailable)
	ctx := context.Background()
	const sql = "SELECT region, COUNT(*) FROM sales GROUP BY region"

	// First exec: child 0 fails, its span is marked error, breaker trips.
	tctx, tr := telemetry.WithTrace(ctx, "trip")
	if _, _, err := r.Exec(tctx, sql, backend.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if open := tr.Open(); len(open) != 0 {
		t.Fatalf("open spans after failed fan-out: %v", open)
	}
	node := tr.Finish()
	found := false
	for _, sp := range execSpans(node) {
		if sp.Attrs["shard"] == "0" {
			found = true
			if sp.Attrs["status"] != "error" {
				t.Errorf("failed shard span status = %q, want error", sp.Attrs["status"])
			}
		}
	}
	if !found {
		t.Fatalf("no shard-0 span in tripping exec:\n%s", node.Render())
	}
	if r.BreakerStats()[0].State != resilience.Open {
		t.Fatal("breaker did not open")
	}

	// Second exec: open circuit skips the child without touching it, yet
	// the trace still carries a closed, status-marked span for it.
	before := fault.Execs()
	tctx, tr = telemetry.WithTrace(ctx, "skip")
	_, stats, err := r.Exec(tctx, sql, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsDegraded != 1 {
		t.Fatalf("ShardsDegraded = %d, want 1", stats.ShardsDegraded)
	}
	if got := fault.Execs(); got != before {
		t.Fatalf("open circuit reached the child: %d execs, want %d", got, before)
	}
	if open := tr.Open(); len(open) != 0 {
		t.Fatalf("open spans after skipped fan-out: %v", open)
	}
	node = tr.Finish()
	var skipped *telemetry.SpanNode
	for _, sp := range execSpans(node) {
		if sp.Attrs["shard"] == "0" {
			skipped = sp
		}
	}
	if skipped == nil {
		t.Fatalf("no shard-0 skip span:\n%s", node.Render())
	}
	if skipped.Attrs["status"] != "skipped" || skipped.Attrs["circuit"] != "open" {
		t.Errorf("skip span attrs = %v, want status=skipped circuit=open", skipped.Attrs)
	}
	if len(skipped.Children) != 0 {
		t.Errorf("skip span has %d children, want 0 (child never executed)", len(skipped.Children))
	}
}

// TestDegradedFanoutSpanLifecycle runs an allow-partial fan-out with a
// hard-down child (no breakers, so the failure is observed each time)
// and checks the span ledger balances: one error-marked span for the
// down child, counter-stamped spans for the survivors, nothing left
// open, and exactly one span per planned partial.
func TestDegradedFanoutSpanLifecycle(t *testing.T) {
	src := buildSource(t, 90)
	r, fault := newFaultRouter(t, src, 3, Options{AllowPartial: true})
	fault.SetDown(backend.ErrUnavailable)

	ctx, tr := telemetry.WithTrace(context.Background(), "test")
	_, stats, err := r.Exec(ctx, "SELECT region, COUNT(*) FROM sales GROUP BY region", backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsDegraded != 1 {
		t.Fatalf("ShardsDegraded = %d, want 1", stats.ShardsDegraded)
	}
	if open := tr.Open(); len(open) != 0 {
		t.Fatalf("open spans after degraded fan-out: %v", open)
	}
	node := tr.Finish()
	spans := execSpans(node)
	if len(spans) != 3 {
		t.Fatalf("%d shard.exec spans, want 3:\n%s", len(spans), node.Render())
	}
	for _, sp := range spans {
		if sp.Attrs["shard"] == "0" {
			if sp.Attrs["status"] != "error" {
				t.Errorf("down shard span status = %q, want error", sp.Attrs["status"])
			}
		} else if sp.Attrs["rows_scanned"] == "" {
			t.Errorf("surviving shard %s span missing rows_scanned", sp.Attrs["shard"])
		}
	}
}
