// Package sqlbe implements a SeeDB backend over Go's database/sql,
// pushing the engine's combined CASE-flag aggregate queries down to any
// external SQL store a database/sql driver can reach.
//
// Capability profile (see docs/BACKENDS.md for the full matrix): the
// backend declares neither SupportsVectorized nor
// SupportsPhasedExecution — generic SQL has no portable "scan rows
// [lo, hi)" primitive — so the engine runs single-pass SHARING plans
// against it: combined aggregates, bin-packed GROUP BYs and the combined
// target/reference rewrite all still apply, because they are plain SQL.
//
// Schema introspection works on any store: column names and types come
// from database/sql column metadata (DatabaseTypeName) with a
// sampled-value fallback for drivers that report none, and per-column
// distinct counts come from one COUNT(DISTINCT ...) query.
//
// Dataset versioning: an external store cannot push invalidations, so
// TableVersion returns an instance-scoped generation token — cached
// results stay valid until BumpVersion is called (or a custom
// Options.Version function supplies real versions, e.g. from an
// updated_at watermark). Deployments whose data changes outside SeeDB
// must wire one of the two or disable caching.
package sqlbe

import (
	"context"
	"database/sql"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"seedb/internal/backend"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// Options configures a Backend.
type Options struct {
	// Name labels the backend instance (default "sql"). It namespaces
	// cache version tokens, so give distinct names to distinct stores.
	Name string
	// Layout declares the store's physical layout, which selects the
	// engine's default group-by memory budget. The zero value is
	// LayoutRow, the conservative choice for general-purpose stores.
	Layout backend.Layout
	// SampleRows bounds the rows sampled to infer column types when the
	// driver reports no usable metadata (default 128).
	SampleRows int
	// Version, when non-nil, supplies the dataset-version token for a
	// table (return ok=false for "unknown table"). Use it to plug in a
	// real change watermark; when nil, versions are instance-scoped and
	// advance only via BumpVersion.
	Version func(table string) (version string, ok bool)
}

// Backend runs SeeDB view queries against a database/sql handle.
type Backend struct {
	db   *sql.DB
	opts Options
	id   uint64
	gen  atomic.Uint64

	mu   sync.Mutex
	meta map[string]*tableMeta // introspection memo, one entry per table
}

// tableMeta memoizes one table's introspection under the version token
// it was computed at. A version change (BumpVersion, or a new token
// from Options.Version) replaces the entry, so the memo holds at most
// one generation per table and never serves metadata from a superseded
// one.
type tableMeta struct {
	version string
	info    backend.TableInfo
	stats   *backend.TableStats // nil until TableStats computes them
}

// ids hands out process-unique instance ids for version tokens.
var ids atomic.Uint64

// New wraps db as a SeeDB backend.
func New(db *sql.DB, opts Options) *Backend {
	if opts.Name == "" {
		opts.Name = "sql"
	}
	if opts.SampleRows <= 0 {
		opts.SampleRows = 128
	}
	return &Backend{
		db:   db,
		opts: opts,
		id:   ids.Add(1),
		meta: make(map[string]*tableMeta),
	}
}

// Name identifies this backend instance.
func (b *Backend) Name() string { return b.opts.Name }

// Capabilities: generic SQL supports neither row-range scans nor the
// engine-side vectorized executor; the engine degrades COMB/COMB_EARLY
// to SHARING and runs queries serially inside the store.
func (b *Backend) Capabilities() backend.Capabilities {
	return backend.Capabilities{}
}

// BumpVersion advances the instance-scoped dataset version,
// invalidating every cached result and memoized introspection computed
// against this backend. Call it after the external store's data changes
// (no-op when Options.Version supplies real versions — those invalidate
// by changing on their own).
func (b *Backend) BumpVersion() { b.gen.Add(1) }

// TableVersion returns the configured version function's token, or the
// instance-scoped generation token. A cancelled ctx reports the table
// absent (the existence probe cannot run).
func (b *Backend) TableVersion(ctx context.Context, table string) (string, bool) {
	if ctx != nil && ctx.Err() != nil {
		// The contract: a cancelled ctx reports the table absent, even
		// when a custom version function could answer without the store.
		return "", false
	}
	if b.opts.Version != nil {
		return b.opts.Version(table)
	}
	if _, err := b.TableInfo(ctx, table); err != nil {
		return "", false
	}
	return fmt.Sprintf("%d.%d", b.id, b.gen.Load()), true
}

// metaVersion is the version token the introspection memo is keyed
// under: the custom version function's token when configured (so fresh
// watermarks re-introspect), else the instance generation.
func (b *Backend) metaVersion(table string) string {
	if b.opts.Version != nil {
		v, ok := b.opts.Version(table)
		if !ok {
			// The version source does not know the table; never memoize.
			return ""
		}
		return "v\x00" + v
	}
	return fmt.Sprintf("g\x00%d", b.gen.Load())
}

// lookupMeta returns the memo entry for table if it is current.
func (b *Backend) lookupMeta(table, version string) (*tableMeta, bool) {
	if version == "" {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tm, ok := b.meta[strings.ToLower(table)]
	if !ok || tm.version != version {
		return nil, false
	}
	return tm, true
}

// storeMeta installs (replacing any superseded generation) a memo entry.
func (b *Backend) storeMeta(table string, tm *tableMeta) {
	if tm.version == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.meta[strings.ToLower(table)] = tm
}

// TableInfo introspects a table by probing it with a sampled SELECT *.
// A failed probe surfaces the store's error (which is how a genuinely
// missing table reports itself, in the store's own words). The probe
// queries run under ctx, so introspecting a slow external store is
// cancellable, not just Exec.
func (b *Backend) TableInfo(ctx context.Context, table string) (backend.TableInfo, error) {
	version := b.metaVersion(table)
	if tm, ok := b.lookupMeta(table, version); ok {
		return tm.info, nil
	}
	ti, err := b.introspect(ctx, table)
	if err != nil {
		return backend.TableInfo{}, fmt.Errorf("sqlbe: introspecting %s: %w", table, err)
	}
	b.storeMeta(table, &tableMeta{version: version, info: ti})
	return ti, nil
}

// validIdent accepts plain (optionally schema-qualified, for tables)
// SQL identifiers: letters, digits and underscores, dot-separated.
// Everything interpolated into generated SQL must pass it, so a
// request-supplied "table" like "(SELECT ...) s" can never smuggle a
// subquery into the store. Reserved words and exotic quoting are out of
// scope — the engine interpolates raw identifiers everywhere, so names
// needing quotes are unsupported across the system, not just here.
var validIdent = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$`)

// checkIdent rejects identifiers that cannot be safely interpolated.
func checkIdent(kind, name string) error {
	if !validIdent.MatchString(name) {
		return fmt.Errorf("sqlbe: invalid %s identifier %q", kind, name)
	}
	return nil
}

// introspect samples the table for column names/types and counts rows.
func (b *Backend) introspect(ctx context.Context, table string) (backend.TableInfo, error) {
	if err := checkIdent("table", table); err != nil {
		return backend.TableInfo{}, err
	}
	rows, err := b.db.QueryContext(ctx, fmt.Sprintf("SELECT * FROM %s LIMIT %d", table, b.opts.SampleRows))
	if err != nil {
		return backend.TableInfo{}, err
	}
	defer rows.Close()
	names, err := rows.Columns()
	if err != nil {
		return backend.TableInfo{}, err
	}
	colTypes, _ := rows.ColumnTypes()

	cols := make([]backend.Column, len(names))
	resolved := make([]bool, len(names))
	for i, n := range names {
		cols[i] = backend.Column{Name: n, Type: backend.TypeString}
		if colTypes != nil && i < len(colTypes) {
			if ct, ok := typeFromDatabaseTypeName(colTypes[i].DatabaseTypeName()); ok {
				cols[i].Type = ct
				resolved[i] = true
			}
		}
	}

	// Fallback: infer unresolved column types from sampled values.
	dest := make([]any, len(names))
	ptrs := make([]any, len(names))
	for i := range dest {
		ptrs[i] = &dest[i]
	}
	sampled := make([]bool, len(names))
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return backend.TableInfo{}, err
		}
		for i, v := range dest {
			if resolved[i] || v == nil {
				continue
			}
			ct, ok := typeFromValue(v)
			if !ok {
				continue
			}
			switch {
			case !sampled[i]:
				cols[i].Type = ct
				sampled[i] = true
			case cols[i].Type == backend.TypeInt && ct == backend.TypeFloat:
				// A column mixing int and float values is a float column.
				cols[i].Type = backend.TypeFloat
			}
		}
	}
	if err := rows.Err(); err != nil {
		return backend.TableInfo{}, err
	}

	var count int
	if err := b.db.QueryRowContext(ctx, fmt.Sprintf("SELECT COUNT(*) FROM %s", table)).Scan(&count); err != nil {
		return backend.TableInfo{}, err
	}
	return backend.TableInfo{Name: table, Columns: cols, Rows: count, Layout: b.opts.Layout}, nil
}

// TableStats computes per-column distinct counts with one
// COUNT(DISTINCT ...) query over the table, run under ctx (the query
// scans the whole table on most stores, so cancellation matters here
// most of all).
func (b *Backend) TableStats(ctx context.Context, table string) (*backend.TableStats, error) {
	version := b.metaVersion(table)
	if tm, ok := b.lookupMeta(table, version); ok && tm.stats != nil {
		return tm.stats, nil
	}
	ti, err := b.TableInfo(ctx, table)
	if err != nil {
		return nil, err
	}

	exprs := make([]string, len(ti.Columns))
	for i, c := range ti.Columns {
		if err := checkIdent("column", c.Name); err != nil {
			return nil, err
		}
		exprs[i] = fmt.Sprintf("COUNT(DISTINCT %s)", c.Name)
	}
	q := fmt.Sprintf("SELECT %s FROM %s", strings.Join(exprs, ", "), table)
	counts := make([]int, len(ti.Columns))
	ptrs := make([]any, len(counts))
	for i := range counts {
		ptrs[i] = &counts[i]
	}
	if err := b.db.QueryRowContext(ctx, q).Scan(ptrs...); err != nil {
		return nil, fmt.Errorf("sqlbe: distinct counts for %s: %w", table, err)
	}
	ts := &backend.TableStats{Rows: ti.Rows, Columns: make([]backend.ColumnStats, len(ti.Columns))}
	for i, c := range ti.Columns {
		ts.Columns[i] = backend.ColumnStats{Name: c.Name, Type: c.Type, Distinct: counts[i]}
	}
	b.storeMeta(table, &tableMeta{version: version, info: ti, stats: ts})
	return ts, nil
}

// Exec runs one generated view query. Row-range restrictions are
// rejected — the backend declares no SupportsPhasedExecution, and
// silently scanning the whole table instead of a partition would
// corrupt phased estimates. Only SELECT statements are accepted: the
// engine never generates anything else, and refusing the rest keeps
// every surface that forwards query text here (e.g. the server's
// /api/query) read-only against the external store.
func (b *Backend) Exec(ctx context.Context, query string, opts backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	if opts.Lo > 0 || opts.Hi > 0 {
		return nil, backend.ExecStats{}, fmt.Errorf("sqlbe: row-range scans are not supported (SupportsPhasedExecution is false)")
	}
	if err := checkReadOnly(query); err != nil {
		return nil, backend.ExecStats{}, err
	}
	ctx, sp := telemetry.StartSpan(ctx, "sqlbe.exec")
	defer sp.End()
	rows, err := b.db.QueryContext(ctx, query)
	if err != nil {
		return nil, backend.ExecStats{}, err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return nil, backend.ExecStats{}, err
	}
	// Result-column metadata drives []byte/string → number conversion:
	// several mainstream drivers (go-sql-driver/mysql for most columns,
	// lib/pq for NUMERIC) return numeric cells as []byte, which would
	// otherwise become string Values the engine's aggregate merger
	// silently skips.
	declared := make([]backend.ColumnType, len(cols))
	known := make([]bool, len(cols))
	if colTypes, err := rows.ColumnTypes(); err == nil {
		for i, ct := range colTypes {
			if i < len(declared) {
				declared[i], known[i] = typeFromDatabaseTypeName(ct.DatabaseTypeName())
			}
		}
	}
	out := &backend.Rows{Columns: cols}
	dest := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range dest {
		ptrs[i] = &dest[i]
	}
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			return nil, backend.ExecStats{}, err
		}
		row := make([]backend.Value, len(cols))
		for i, v := range dest {
			row[i], err = toValue(v)
			if err != nil {
				return nil, backend.ExecStats{}, fmt.Errorf("sqlbe: column %s: %w", cols[i], err)
			}
			if known[i] && row[i].Kind == sqldb.KindString {
				row[i], err = coerceNumeric(row[i], declared[i])
				if err != nil {
					return nil, backend.ExecStats{}, fmt.Errorf("sqlbe: column %s: %w", cols[i], err)
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	if err := rows.Err(); err != nil {
		return nil, backend.ExecStats{}, err
	}
	// RowsScanned stays 0: a generic SQL store does not expose how many
	// base rows the aggregation visited (documented degradation).
	stats := backend.ExecStats{Groups: len(out.Rows), Workers: 1}
	return out, stats, nil
}

// checkReadOnly accepts exactly one SELECT statement. The engine never
// generates anything else, and refusing the rest keeps every surface
// that forwards query text here (e.g. the server's /api/query)
// read-only against the external store: a trailing statement after a
// semicolon ("SELECT 1; DROP TABLE t") would be executed by several
// drivers.
func checkReadOnly(query string) error {
	q := strings.TrimSpace(query)
	q = strings.TrimSuffix(q, ";")
	if !strings.HasPrefix(strings.ToUpper(q), "SELECT") {
		return fmt.Errorf("sqlbe: only SELECT statements are supported (read-only backend)")
	}
	inStr := false
	for i := 0; i < len(q); i++ {
		switch {
		case q[i] == '\'':
			inStr = !inStr // doubled '' toggles twice: net unchanged
		case q[i] == ';' && !inStr:
			return fmt.Errorf("sqlbe: multi-statement queries are not supported (read-only backend)")
		}
	}
	return nil
}

// coerceNumeric parses a string cell whose result-column metadata
// declares a numeric type. A declared-numeric cell that does not parse
// is a loud error — silently keeping it as a string would make the
// engine's merger skip it and corrupt distributions without a trace.
func coerceNumeric(v backend.Value, declared backend.ColumnType) (backend.Value, error) {
	switch declared {
	case backend.TypeInt:
		i, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			// Some stores report wide/decimal ints that only fit a float.
			f, ferr := strconv.ParseFloat(v.S, 64)
			if ferr != nil {
				return v, fmt.Errorf("declared integer value %q does not parse: %w", v.S, err)
			}
			return sqldb.Float(f), nil
		}
		return sqldb.Int(i), nil
	case backend.TypeFloat:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return v, fmt.Errorf("declared numeric value %q does not parse: %w", v.S, err)
		}
		return sqldb.Float(f), nil
	default:
		return v, nil
	}
}

// toValue converts one database/sql scan result into an engine scalar.
func toValue(v any) (backend.Value, error) {
	switch x := v.(type) {
	case nil:
		return sqldb.Null(), nil
	case int64:
		return sqldb.Int(x), nil
	case float64:
		return sqldb.Float(x), nil
	case bool:
		return sqldb.Bool(x), nil
	case string:
		return sqldb.Str(x), nil
	case []byte:
		return sqldb.Str(string(x)), nil
	default:
		return sqldb.Null(), fmt.Errorf("unsupported driver value %T", v)
	}
}

// typeFromDatabaseTypeName maps a driver's declared column type to an
// engine column type. Unknown or empty names report ok=false and fall
// back to sampling.
func typeFromDatabaseTypeName(name string) (backend.ColumnType, bool) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT", "MEDIUMINT",
		"INT2", "INT4", "INT8", "SERIAL", "BIGSERIAL":
		return backend.TypeInt, true
	case "REAL", "FLOAT", "FLOAT4", "FLOAT8", "DOUBLE", "DOUBLE PRECISION",
		"NUMERIC", "DECIMAL":
		return backend.TypeFloat, true
	case "BOOL", "BOOLEAN", "BIT":
		return backend.TypeBool, true
	case "TEXT", "VARCHAR", "CHAR", "NCHAR", "NVARCHAR", "CHARACTER",
		"CHARACTER VARYING", "STRING", "UUID":
		return backend.TypeString, true
	default:
		return backend.TypeString, false
	}
}

// typeFromValue infers a column type from one sampled non-NULL value.
func typeFromValue(v any) (backend.ColumnType, bool) {
	switch v.(type) {
	case int64:
		return backend.TypeInt, true
	case float64:
		return backend.TypeFloat, true
	case bool:
		return backend.TypeBool, true
	case string, []byte:
		return backend.TypeString, true
	default:
		return backend.TypeString, false
	}
}
