package sqlbe

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"seedb/internal/backend"
	"seedb/internal/sqldb"
	"seedb/internal/sqldriver"
)

// newBackend builds an embedded store, loads a small table and wraps it
// through database/sql (the sqldriver stub), which is exactly how the
// conformance tests exercise external-store execution without cgo.
func newBackend(t *testing.T) (*Backend, *sqldb.DB) {
	t.Helper()
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "region", Type: sqldb.TypeString},
		sqldb.Column{Name: "ok", Type: sqldb.TypeBool},
		sqldb.Column{Name: "qty", Type: sqldb.TypeInt},
		sqldb.Column{Name: "price", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable("sales", schema, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]sqldb.Value{
		{sqldb.Str("east"), sqldb.Bool(true), sqldb.Int(1), sqldb.Float(1.5)},
		{sqldb.Str("west"), sqldb.Bool(false), sqldb.Int(2), sqldb.Null()},
		{sqldb.Str("east"), sqldb.Bool(true), sqldb.Int(3), sqldb.Float(3.5)},
		{sqldb.Str("west"), sqldb.Bool(true), sqldb.Int(4), sqldb.Float(4.5)},
	}
	for _, r := range rows {
		if err := tab.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return New(sqldriver.Open(db), Options{}), db
}

func TestIntrospection(t *testing.T) {
	be, _ := newBackend(t)
	if be.Name() != "sql" {
		t.Errorf("Name = %q", be.Name())
	}
	caps := be.Capabilities()
	if caps.SupportsVectorized || caps.SupportsPhasedExecution {
		t.Errorf("capabilities = %+v, want none", caps)
	}

	ti, err := be.TableInfo(context.Background(), "sales")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Rows != 4 || ti.Layout != backend.LayoutRow {
		t.Errorf("TableInfo = %+v", ti)
	}
	wantTypes := map[string]backend.ColumnType{
		"region": backend.TypeString,
		"ok":     backend.TypeBool,
		"qty":    backend.TypeInt,
		"price":  backend.TypeFloat,
	}
	for name, want := range wantTypes {
		c, ok := ti.Lookup(name)
		if !ok || c.Type != want {
			t.Errorf("column %s = %+v (ok=%v), want type %v", name, c, ok, want)
		}
	}
	if _, err := be.TableInfo(context.Background(), "missing"); err == nil {
		t.Error("TableInfo(missing) should error")
	}
}

func TestTableStats(t *testing.T) {
	be, _ := newBackend(t)
	ts, err := be.TableStats(context.Background(), "sales")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 4 {
		t.Errorf("rows = %d", ts.Rows)
	}
	if c, _ := ts.Column("region"); c.Distinct != 2 {
		t.Errorf("region distinct = %d, want 2", c.Distinct)
	}
	if c, _ := ts.Column("price"); c.Distinct != 3 { // one NULL excluded
		t.Errorf("price distinct = %d, want 3", c.Distinct)
	}
	if _, err := be.TableStats(context.Background(), "missing"); err == nil {
		t.Error("TableStats(missing) should error")
	}
}

func TestExec(t *testing.T) {
	be, _ := newBackend(t)
	rows, stats, err := be.Exec(context.Background(),
		"SELECT region, CASE WHEN qty > 2 THEN 1 ELSE 0 END AS __seedb_flag, SUM(price), COUNT(price) "+
			"FROM sales GROUP BY region, CASE WHEN qty > 2 THEN 1 ELSE 0 END",
		backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 4 || stats.Groups != 4 || stats.Vectorized {
		t.Errorf("rows=%d stats=%+v", len(rows.Rows), stats)
	}
	// Values must round-trip as engine scalars usable by the merger.
	for _, r := range rows.Rows {
		if r[0].Kind != sqldb.KindString {
			t.Errorf("group key kind = %v", r[0].Kind)
		}
		if !r[1].Truthy() && r[1].IsNull() {
			t.Errorf("flag column came back NULL")
		}
	}

	// Row ranges must be rejected, not silently widened.
	_, _, err = be.Exec(context.Background(), "SELECT region FROM sales", backend.ExecOptions{Lo: 0, Hi: 2})
	if err == nil || !strings.Contains(err.Error(), "row-range") {
		t.Errorf("want row-range rejection, got %v", err)
	}

	// Non-SELECT statements must be rejected: the backend is read-only
	// whatever surface forwards query text to it.
	_, _, err = be.Exec(context.Background(), "  drop table sales", backend.ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("want read-only rejection, got %v", err)
	}
}

func TestCheckReadOnly(t *testing.T) {
	for _, ok := range []string{
		"SELECT region FROM sales",
		"  select 1  ",
		"SELECT region FROM sales WHERE note = 'a;b';",
		"SELECT region FROM sales WHERE note = 'it''s; fine'",
	} {
		if err := checkReadOnly(ok); err != nil {
			t.Errorf("checkReadOnly(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{
		"DROP TABLE sales",
		"UPDATE sales SET qty = 0",
		"SELECT 1; DROP TABLE sales",
		"SELECT 1;DELETE FROM sales;",
	} {
		if err := checkReadOnly(bad); err == nil {
			t.Errorf("checkReadOnly(%q) should reject", bad)
		}
	}
}

func TestCoerceNumeric(t *testing.T) {
	if v, err := coerceNumeric(sqldb.Str("42"), backend.TypeInt); err != nil || v.Kind != sqldb.KindInt || v.I != 42 {
		t.Errorf("int coercion = %+v, %v", v, err)
	}
	// Declared-int values wider than int64 (or decimal) fall to float.
	if v, err := coerceNumeric(sqldb.Str("1.5"), backend.TypeInt); err != nil || v.Kind != sqldb.KindFloat || v.F != 1.5 {
		t.Errorf("int→float coercion = %+v, %v", v, err)
	}
	if v, err := coerceNumeric(sqldb.Str("123.4500"), backend.TypeFloat); err != nil || v.F != 123.45 {
		t.Errorf("float coercion = %+v, %v", v, err)
	}
	// Declared numeric that cannot parse must fail loudly, not fold as
	// a silently-skipped string.
	if _, err := coerceNumeric(sqldb.Str("abc"), backend.TypeFloat); err == nil {
		t.Error("unparseable declared-numeric value should error")
	}
	// Declared strings pass through untouched.
	if v, err := coerceNumeric(sqldb.Str("02134"), backend.TypeString); err != nil || v.S != "02134" {
		t.Errorf("string passthrough = %+v, %v", v, err)
	}
}

// TestIdentifierValidation: request-supplied table names are
// interpolated into introspection SQL and must not be able to smuggle
// subqueries (or anything else) into the store.
func TestIdentifierValidation(t *testing.T) {
	be, _ := newBackend(t)
	for _, bad := range []string{
		"(SELECT * FROM sales) s",
		"sales; DROP TABLE sales",
		"sales--",
		"sa les",
		"",
	} {
		if _, err := be.TableInfo(context.Background(), bad); err == nil {
			t.Errorf("TableInfo(%q) should reject the identifier", bad)
		}
	}
	// Schema-qualified names are legitimate external-store identifiers.
	if err := checkIdent("table", "analytics.sales"); err != nil {
		t.Errorf("qualified name rejected: %v", err)
	}
}

func TestVersioning(t *testing.T) {
	be, _ := newBackend(t)
	v1, ok := be.TableVersion(context.Background(), "sales")
	if !ok {
		t.Fatal("no version for sales")
	}
	v2, _ := be.TableVersion(context.Background(), "sales")
	if v1 != v2 {
		t.Errorf("version unstable without changes: %q vs %q", v1, v2)
	}
	be.BumpVersion()
	v3, _ := be.TableVersion(context.Background(), "sales")
	if v3 == v1 {
		t.Error("BumpVersion did not change the token")
	}
	if _, ok := be.TableVersion(context.Background(), "missing"); ok {
		t.Error("TableVersion(missing) should report absent")
	}

	custom := New(nil, Options{Version: func(table string) (string, bool) {
		return "wm-42", table == "sales"
	}})
	if v, ok := custom.TableVersion(context.Background(), "sales"); !ok || v != "wm-42" {
		t.Errorf("custom version = %q %v", v, ok)
	}
	// The Backend contract: a cancelled ctx reports the table absent,
	// even when the custom watermark function needs no store round-trip.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if v, ok := custom.TableVersion(cancelled, "sales"); ok {
		t.Errorf("cancelled ctx reported version %q, want absent", v)
	}
}

func TestStatsMemoInvalidatesOnBump(t *testing.T) {
	be, db := newBackend(t)
	ti, _ := be.TableInfo(context.Background(), "sales")
	if ti.Rows != 4 {
		t.Fatalf("rows = %d", ti.Rows)
	}
	tab, _ := db.Table("sales")
	if err := tab.AppendRow([]sqldb.Value{sqldb.Str("north"), sqldb.Bool(false), sqldb.Int(9), sqldb.Float(9)}); err != nil {
		t.Fatal(err)
	}
	// Memoized introspection still reports the old count until the
	// operator signals a change...
	ti, _ = be.TableInfo(context.Background(), "sales")
	if ti.Rows != 4 {
		t.Errorf("memoized rows = %d, want 4", ti.Rows)
	}
	// ...after which it re-introspects.
	be.BumpVersion()
	ti, _ = be.TableInfo(context.Background(), "sales")
	if ti.Rows != 5 {
		t.Errorf("post-bump rows = %d, want 5", ti.Rows)
	}
}

// TestCustomVersionRefreshesIntrospection: with Options.Version, a new
// watermark must invalidate the memoized schema/stats too — not only
// the result cache.
func TestCustomVersionRefreshesIntrospection(t *testing.T) {
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "g", Type: sqldb.TypeString},
		sqldb.Column{Name: "m", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable("t", schema, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow([]sqldb.Value{sqldb.Str("a"), sqldb.Float(1)}); err != nil {
		t.Fatal(err)
	}
	watermark := "w1"
	be := New(sqldriver.Open(db), Options{Version: func(string) (string, bool) {
		return watermark, true
	}})

	if ti, err := be.TableInfo(context.Background(), "t"); err != nil || ti.Rows != 1 {
		t.Fatalf("TableInfo = %+v, %v", ti, err)
	}
	if ts, err := be.TableStats(context.Background(), "t"); err != nil {
		t.Fatal(err)
	} else if c, _ := ts.Column("g"); c.Distinct != 1 {
		t.Fatalf("g distinct = %d", c.Distinct)
	}

	if err := tab.AppendRow([]sqldb.Value{sqldb.Str("b"), sqldb.Float(2)}); err != nil {
		t.Fatal(err)
	}
	// Same watermark → memo still serves the old counts.
	if ti, _ := be.TableInfo(context.Background(), "t"); ti.Rows != 1 {
		t.Errorf("same-watermark rows = %d, want memoized 1", ti.Rows)
	}
	// New watermark → full re-introspection, stats included.
	watermark = "w2"
	if ti, _ := be.TableInfo(context.Background(), "t"); ti.Rows != 2 {
		t.Errorf("new-watermark rows = %d, want 2", ti.Rows)
	}
	if ts, err := be.TableStats(context.Background(), "t"); err != nil {
		t.Fatal(err)
	} else if c, _ := ts.Column("g"); c.Distinct != 2 {
		t.Errorf("new-watermark g distinct = %d, want 2", c.Distinct)
	}
}

// TestArbitraryDoubleRoundTrip pins the driver-value float path on
// non-representable doubles. The conformance dataset restricts floats
// to exactly-summable quarter multiples (so partition-merging backends
// can be held bit-identical), which means conformance no longer pushes
// long-mantissa doubles through the database/sql conversion layer —
// this test keeps that coverage: the same serial query over the same
// rows must produce bit-identical aggregates through sqlbe and through
// the embedded adapter.
func TestArbitraryDoubleRoundTrip(t *testing.T) {
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "g", Type: sqldb.TypeString},
		sqldb.Column{Name: "x", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable("f", schema, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		x := sqldb.Float(rng.NormFloat64() * 1e3)
		if i%17 == 0 {
			x = sqldb.Null()
		}
		row := []sqldb.Value{sqldb.Str(fmt.Sprintf("g%d", i%7)), x}
		if err := tab.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	query := "SELECT g, SUM(x), AVG(x), MIN(x), MAX(x), COUNT(x) FROM f GROUP BY g ORDER BY g"
	ext := New(sqldriver.Open(db), Options{})
	got, _, err := ext.Exec(ctx, query, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := backend.NewEmbedded(db).Exec(ctx, query, backend.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) || len(got.Rows) == 0 {
		t.Fatalf("rows = %d, want %d (nonzero)", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if g.Kind != w.Kind {
				t.Fatalf("row %d col %d kind %v, want %v", i, j, g.Kind, w.Kind)
			}
			if w.Kind == sqldb.KindFloat && math.Float64bits(g.F) != math.Float64bits(w.F) {
				t.Errorf("row %d col %d float bits %x, want %x (%v vs %v)",
					i, j, math.Float64bits(g.F), math.Float64bits(w.F), g.F, w.F)
			} else if w.Kind != sqldb.KindFloat && g.String() != w.String() {
				t.Errorf("row %d col %d = %s, want %s", i, j, g, w)
			}
		}
	}
}
