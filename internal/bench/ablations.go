package bench

import (
	"context"
	"fmt"

	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/distance"
	"seedb/internal/sqldb"
)

// Ablations runs the design-choice studies DESIGN.md calls out beyond the
// paper's own figures: distance-function agreement (the TR's claim that
// other distance functions give comparable results), phase-count
// sensitivity, CI δ sensitivity, and the early-return error.
func Ablations(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	var out []*Table
	for _, fn := range []func(context.Context, Config) ([]*Table, error){
		AblationDistance, AblationPhases, AblationDelta, AblationEarlyError,
	} {
		ts, err := fn(ctx, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// AblationDistance measures how much the top-k sets under alternative
// distance functions agree with EMD's top-k (the paper: "using other
// distance functions gives comparable results").
func AblationDistance(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("bank")
	if err != nil {
		return nil, err
	}
	spec = spec.WithRows(cfg.rowsFor(spec))
	db, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	eng := newEngine(db)
	req := requestFor(spec)

	const k = 10
	baseline, err := eng.ExactTopK(ctx, req, distance.EMD, k)
	if err != nil {
		return nil, err
	}
	baseTop := core.TopViews(baseline, k)

	t := &Table{
		ID:     "ablation-distance",
		Title:  fmt.Sprintf("Top-%d agreement of alternative distance functions with EMD (bank)", k),
		Header: []string{"distance", "top-k overlap", "top-1 same"},
	}
	for _, f := range distance.Funcs() {
		res, err := eng.ExactTopK(ctx, req, f, k)
		if err != nil {
			return nil, err
		}
		top := core.TopViews(res, k)
		overlap := core.Accuracy(baseTop, top)
		same := "no"
		if len(top) > 0 && len(baseTop) > 0 && top[0].Key() == baseTop[0].Key() {
			same = "yes"
		}
		t.AddRow(f.String(), f3(overlap), same)
	}
	t.Notes = append(t.Notes, "TR claim: rankings under EMD, L2, KL, JS and MAX_DIFF are comparable")
	return []*Table{t}, nil
}

// AblationPhases sweeps the phase count for CI pruning: fewer phases
// prune later (slower but safer), more phases prune earlier per row but
// add per-phase overhead.
func AblationPhases(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("bank")
	if err != nil {
		return nil, err
	}
	spec = spec.WithRows(cfg.rowsFor(spec))
	db, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	eng := newEngine(db)
	req := requestFor(spec)
	const k = 10
	oracle, err := eng.ExactTopK(ctx, req, distance.EMD, spec.NumViews())
	if err != nil {
		return nil, err
	}
	trueTop := core.TopViews(oracle, k)
	trueUtil := core.TrueUtilityMap(oracle)

	t := &Table{
		ID:     "ablation-phases",
		Title:  fmt.Sprintf("CI pruning vs phase count (bank, k=%d)", k),
		Header: []string{"phases", "latency", "rows-scanned", "accuracy", "utility-distance"},
	}
	sweep := []int{2, 5, 10, 20, 50}
	if cfg.Quick {
		sweep = []int{2, 10, 50}
	}
	for _, phases := range sweep {
		d, res, err := timeRecommend(ctx, eng, req, core.Options{
			Strategy: core.Comb, Pruning: core.CIPruning, K: k, Phases: phases,
		})
		if err != nil {
			return nil, err
		}
		got := core.ViewsOf(res.Recommendations)
		t.AddRow(fmt.Sprintf("%d", phases), ms(d),
			fmt.Sprintf("%d", res.Metrics.RowsScanned),
			f3(core.Accuracy(trueTop, got)),
			f4(core.UtilityDistance(trueUtil, trueTop, got)))
	}
	t.Notes = append(t.Notes, "the paper fixes 10 phases; this sweep shows the latency/quality trade-off around that choice")
	return []*Table{t}, nil
}

// AblationDelta sweeps the CI failure probability δ.
func AblationDelta(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("diab")
	if err != nil {
		return nil, err
	}
	spec = spec.WithRows(cfg.rowsFor(spec))
	db, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	eng := newEngine(db)
	req := requestFor(spec)
	const k = 5
	oracle, err := eng.ExactTopK(ctx, req, distance.EMD, spec.NumViews())
	if err != nil {
		return nil, err
	}
	trueTop := core.TopViews(oracle, k)
	trueUtil := core.TrueUtilityMap(oracle)

	t := &Table{
		ID:     "ablation-delta",
		Title:  fmt.Sprintf("CI pruning vs δ (diab, k=%d)", k),
		Header: []string{"delta", "rows-scanned", "pruned-views", "accuracy", "utility-distance"},
	}
	for _, delta := range []float64{0.01, 0.05, 0.1, 0.25} {
		_, res, err := timeRecommend(ctx, eng, req, core.Options{
			Strategy: core.Comb, Pruning: core.CIPruning, K: k, Delta: delta,
		})
		if err != nil {
			return nil, err
		}
		got := core.ViewsOf(res.Recommendations)
		t.AddRow(fmt.Sprintf("%.2f", delta),
			fmt.Sprintf("%d", res.Metrics.RowsScanned),
			fmt.Sprintf("%d", res.Metrics.PrunedViews),
			f3(core.Accuracy(trueTop, got)),
			f4(core.UtilityDistance(trueUtil, trueTop, got)))
	}
	t.Notes = append(t.Notes, "larger δ narrows the intervals: more pruning, less scanning, slightly riskier results")
	return []*Table{t}, nil
}

// AblationEarlyError quantifies the cost of COMB_EARLY's approximate
// results: how far the early top-k is from COMB's full top-k.
func AblationEarlyError(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "ablation-early",
		Title:  "COMB_EARLY approximation error vs COMB",
		Header: []string{"dataset", "k", "rows-early", "rows-full", "accuracy", "utility-distance", "early-stopped"},
	}
	for _, name := range []string{"bank", "air"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		spec = spec.WithRows(cfg.rowsFor(spec))
		db, err := build(spec, sqldb.LayoutCol)
		if err != nil {
			return nil, err
		}
		eng := newEngine(db)
		req := requestFor(spec)
		oracle, err := eng.ExactTopK(ctx, req, distance.EMD, spec.NumViews())
		if err != nil {
			return nil, err
		}
		trueUtil := core.TrueUtilityMap(oracle)
		for _, k := range []int{1, 5, 10} {
			trueTop := core.TopViews(oracle, k)
			_, full, err := timeRecommend(ctx, eng, req, core.Options{
				Strategy: core.Comb, Pruning: core.CIPruning, K: k,
			})
			if err != nil {
				return nil, err
			}
			_, early, err := timeRecommend(ctx, eng, req, core.Options{
				Strategy: core.CombEarly, Pruning: core.CIPruning, K: k,
			})
			if err != nil {
				return nil, err
			}
			got := core.ViewsOf(early.Recommendations)
			stopped := "no"
			if early.Metrics.EarlyStopped {
				stopped = "yes"
			}
			t.AddRow(name, fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", early.Metrics.RowsScanned),
				fmt.Sprintf("%d", full.Metrics.RowsScanned),
				f3(core.Accuracy(trueTop, got)),
				f4(core.UtilityDistance(trueUtil, trueTop, got)),
				stopped)
		}
	}
	t.Notes = append(t.Notes, "paper: early return trades a near-zero utility distance for interactive latency on large datasets")
	return []*Table{t}, nil
}
