// Package bench contains the experiment harness that regenerates every
// table and figure of the SeeDB paper's evaluation (Sections 5 and 6).
// Each experiment is a function from a Config to a formatted Table whose
// rows mirror what the paper reports; bench_test.go exposes each as a
// testing.B benchmark and cmd/seedb-bench drives them from the command
// line.
//
// Absolute numbers depend on the host and on the embedded substrate; the
// experiments are designed so the paper's *shapes* reproduce: who wins,
// by roughly what factor, and where crossovers fall. See EXPERIMENTS.md
// for paper-vs-measured results.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"seedb/internal/backend"
	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/distance"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// newEngine wires an engine over the embedded store through the backend
// seam; the experiments always run against the in-process substrate.
func newEngine(db *sqldb.DB) *core.Engine {
	return core.NewEngine(backend.NewEmbedded(db))
}

// Config scales the experiments.
type Config struct {
	// Quick shrinks datasets and sweeps for CI-friendly runtimes.
	Quick bool
	// PaperScale uses the full Table 1 row counts (hours of runtime).
	PaperScale bool
	// Runs is the number of repetitions for quality experiments (the
	// paper uses 20; default 5, quick 3).
	Runs int
	// Seed drives run-to-run data shuffling.
	Seed int64
	// Parallelism for parallel-query execution (0 = GOMAXPROCS).
	Parallelism int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		if c.Quick {
			c.Runs = 3
		} else {
			c.Runs = 5
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// rowsFor picks the generated row count for a dataset under the config.
func (c Config) rowsFor(spec dataset.Spec) int {
	if c.PaperScale {
		return spec.PaperRows
	}
	rows := spec.Rows
	if c.Quick {
		// Quick mode: cap dataset sizes so the full suite runs in
		// minutes on a laptop.
		caps := map[string]int{
			"syn": 20_000, "syn10": 20_000, "syn100": 20_000,
			"bank": 12_000, "diab": 16_000, "air": 16_000, "air10": 80_000,
			"census": 8_000, "housing": 500, "movies": 1000,
		}
		if cap, ok := caps[spec.Name]; ok && rows > cap {
			rows = cap
		}
	}
	return rows
}

// Table is a formatted experiment result.
type Table struct {
	ID     string // e.g. "figure5a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(ctx context.Context, cfg Config) ([]*Table, error)
}

// All returns every experiment, in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Dataset inventory (Table 1)", Table1},
		{"fig5", "Performance gains from all optimizations (Figure 5)", Figure5},
		{"fig6", "Baseline NO_OPT scaling (Figure 6)", Figure6},
		{"fig7", "Multiple aggregates and parallelism (Figure 7)", Figure7},
		{"fig8", "Group-by memory and bin packing (Figure 8)", Figure8},
		{"fig9", "All sharing optimizations (Figure 9)", Figure9},
		{"fig10", "Distribution of view utilities (Figure 10)", Figure10},
		{"fig11", "BANK pruning quality (Figure 11)", Figure11},
		{"fig12", "DIAB pruning quality (Figure 12)", Figure12},
		{"fig13", "Pruning latency reduction (Figure 13)", Figure13},
		{"fig15", "Deviation metric vs expert ground truth (Figure 15)", Figure15},
		{"table2", "SEEDB vs MANUAL bookmarking (Table 2)", Table2},
		{"ablations", "Design-choice ablations (beyond the paper)", Ablations},
		{"cache", "Cross-request result cache (beyond the paper)", CacheExperiment},
		{"parallel", "Intra-query parallel vectorized executor (beyond the paper)", ParallelExperiment},
		{"filter", "Vectorized predicate selection kernels (beyond the paper)", FilterExperiment},
		{"shard", "Shard-router partitioned fan-out scaling (beyond the paper)", ShardExperiment},
		{"load", "Mixed-workload production load replay (beyond the paper)", LoadExperiment},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// buildShuffled generates a dataset with rows inserted in a shuffled
// order (the paper randomizes data order between quality-experiment
// runs) and returns a single-table DB.
func buildShuffled(spec dataset.Spec, layout sqldb.Layout, shuffleSeed int64) (*sqldb.DB, error) {
	var rows [][]sqldb.Value
	err := spec.Generate(func(vals []sqldb.Value) error {
		row := make([]sqldb.Value, len(vals))
		copy(row, vals)
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if shuffleSeed != 0 {
		rng := rand.New(rand.NewSource(shuffleSeed))
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	}
	db := sqldb.NewDB()
	t, err := db.CreateTable(spec.Name, spec.Schema(), layout)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := t.AppendRow(r); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// build generates a dataset in insertion order.
func build(spec dataset.Spec, layout sqldb.Layout) (*sqldb.DB, error) {
	db, _, err := dataset.BuildDB(spec, layout)
	return db, err
}

// requestFor builds the standard request for a dataset spec: target
// subset per the spec's predicate, complement reference (which maps the
// planted intended utilities 1:1 onto measured utilities), view space
// from the spec's view dimensions and measures, AVG aggregate.
func requestFor(spec dataset.Spec) core.Request {
	return core.Request{
		Table:       spec.Name,
		TargetWhere: spec.TargetPredicate(),
		Reference:   core.RefComplement,
		Dimensions:  spec.ViewDimNames(),
		Measures:    spec.MeasureNames(),
		Aggs:        []core.AggFunc{core.AggAvg},
	}
}

// LatencySummary condenses a telemetry latency histogram into the
// percentile fields the BENCH_*.json payloads report.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// summarizeLatency snapshots h, guarding the observation count against
// the number of events the experiment itself counted: percentiles from
// a histogram that silently missed (or double-counted) observations
// would lie, so any drift is an error rather than a degraded report.
func summarizeLatency(h *telemetry.Histogram, wantCount int) (LatencySummary, error) {
	s := h.Snapshot()
	if s.Count != uint64(wantCount) {
		return LatencySummary{}, fmt.Errorf("bench: latency histogram holds %d observations, experiment counted %d", s.Count, wantCount)
	}
	return LatencySummary{Count: s.Count, P50MS: s.P50MS, P95MS: s.P95MS, P99MS: s.P99MS}, nil
}

// timeRecommend runs one Recommend call and returns elapsed time plus the
// result.
func timeRecommend(ctx context.Context, eng *core.Engine, req core.Request, opts core.Options) (time.Duration, *core.Result, error) {
	start := time.Now()
	res, err := eng.Recommend(ctx, req, opts)
	return time.Since(start), res, err
}

// ms formats a duration as milliseconds with sensible precision.
func ms(d time.Duration) string {
	v := float64(d.Microseconds()) / 1000
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.1fs", v/1000)
	case v >= 100:
		return fmt.Sprintf("%.0fms", v)
	default:
		return fmt.Sprintf("%.2fms", v)
	}
}

// speedup formats a ratio as "N.Nx".
func speedup(base, other time.Duration) string {
	if other <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}

// f3 formats a float with 3 decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f4 formats a float with 4 decimals.
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// oracleFor computes exact utilities for a request.
func oracleFor(ctx context.Context, db *sqldb.DB, req core.Request, k int) (*core.Result, error) {
	return newEngine(db).ExactTopK(ctx, req, distance.EMD, k)
}
