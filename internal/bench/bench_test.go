package bench

import (
	"context"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{Quick: true, Runs: 2, Seed: 42}
}

// runExperiment executes one experiment and sanity-checks its tables.
func runExperiment(t *testing.T, id string) []*Table {
	t.Helper()
	exp, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := exp.Run(context.Background(), tinyConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Errorf("%s: incomplete table %+v", id, tab)
		}
		out := tab.String()
		if !strings.Contains(out, tab.ID) {
			t.Errorf("%s: rendering missing ID", id)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s/%s: row width %d != header %d", id, tab.ID, len(row), len(tab.Header))
			}
		}
	}
	return tables
}

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Errorf("registered %d experiments, want 18", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// TestLoadExperiment drives the quick load replay end to end (real
// loopback server, mixed traffic) and checks the rendered table names
// every class. The report's own invariants (zero errors, accounting
// match) are enforced inside LoadExperiment via Report.Validate.
func TestLoadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("load replay takes several seconds")
	}
	tables := runExperiment(t, "load")
	out := tables[0].String()
	for _, class := range []string{"recommend", "query", "ingest", "total"} {
		if !strings.Contains(out, class) {
			t.Errorf("load table missing %s row:\n%s", class, out)
		}
	}
}

func TestTable1Inventory(t *testing.T) {
	tables := runExperiment(t, "table1")
	tab := tables[0]
	if len(tab.Rows) != 10 {
		t.Errorf("Table 1 rows = %d, want 10 datasets", len(tab.Rows))
	}
	// The view counts must match Table 1 of the paper.
	wantViews := map[string]string{
		"bank": "77", "diab": "88", "air": "108", "air10": "108",
		"census": "40", "housing": "40", "movies": "64", "syn": "1000",
	}
	for _, row := range tab.Rows {
		if want, ok := wantViews[row[0]]; ok && row[6] != want {
			t.Errorf("%s views = %s, want %s", row[0], row[6], want)
		}
	}
}

func parseMS(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	switch {
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		if err != nil {
			t.Fatalf("bad ms %q", s)
		}
		return v
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		if err != nil {
			t.Fatalf("bad s %q", s)
		}
		return v * 1000
	}
	t.Fatalf("unparseable duration %q", s)
	return 0
}

func TestFigure5ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tables := runExperiment(t, "fig5")
	if len(tables) != 2 {
		t.Fatalf("fig5 should produce 2 tables (ROW, COL)")
	}
	// On every dataset and store, SHARING must beat NO_OPT and
	// COMB_EARLY must not be slower than SHARING by more than noise.
	for _, tab := range tables {
		for _, row := range tab.Rows {
			noopt := parseMS(t, row[3])
			sharing := parseMS(t, row[4])
			if sharing >= noopt {
				t.Errorf("%s/%s: SHARING (%v) not faster than NO_OPT (%v)", tab.ID, row[0], row[4], row[3])
			}
		}
	}
}

func TestFigure6LatencyGrowsWithRows(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tables := runExperiment(t, "fig6")
	tab := tables[0] // 6a: rows sweep
	first := parseMS(t, tab.Rows[0][1])
	last := parseMS(t, tab.Rows[len(tab.Rows)-1][1])
	if last <= first {
		t.Errorf("ROW latency should grow with rows: %v → %v", first, last)
	}
	// COL faster than ROW at the largest size.
	rowLat := parseMS(t, tab.Rows[len(tab.Rows)-1][1])
	colLat := parseMS(t, tab.Rows[len(tab.Rows)-1][2])
	if colLat >= rowLat {
		t.Errorf("COL (%v) should beat ROW (%v) on NO_OPT", colLat, rowLat)
	}
}

func TestFigure10UtilityProfileShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tables := runExperiment(t, "fig10")
	bank := tables[0]
	// Measured top-2 separation: Δ1 and Δ2 clearly above the 3..9
	// cluster gaps.
	gap := func(tab *Table, r int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[r][3], 64)
		if err != nil {
			t.Fatalf("bad gap %q", tab.Rows[r][3])
		}
		return v
	}
	d2 := gap(bank, 1)
	clusterMax := 0.0
	for r := 2; r <= 7; r++ {
		if g := gap(bank, r); g > clusterMax {
			clusterMax = g
		}
	}
	if d2 < clusterMax {
		t.Errorf("bank Δ2 (%.4f) should exceed the 3-9 cluster gaps (max %.4f)", d2, clusterMax)
	}
	// DIAB: top-10 clustered — every gap among ranks 1..9 small.
	diab := tables[1]
	for r := 0; r < 9; r++ {
		if g := gap(diab, r); g > 0.02 {
			t.Errorf("diab top-10 gap at rank %d = %.4f, want tightly clustered", r+1, g)
		}
	}
}

func TestFigure11QualityBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tables := runExperiment(t, "fig11")
	acc := tables[0]
	for _, row := range acc.Rows {
		ci, _ := strconv.ParseFloat(row[1], 64)
		nopru, _ := strconv.ParseFloat(row[3], 64)
		random, _ := strconv.ParseFloat(row[4], 64)
		if nopru != 1 {
			t.Errorf("NO_PRU accuracy = %v, want 1.0", row[3])
		}
		if ci < random {
			t.Errorf("k=%s: CI accuracy (%v) below RANDOM (%v)", row[0], row[1], row[4])
		}
	}
}

func TestFigure15AUROCHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tables := runExperiment(t, "fig15")
	title := tables[1].Title
	idx := strings.Index(title, "AUROC ")
	if idx < 0 {
		t.Fatalf("no AUROC in title %q", title)
	}
	auroc, err := strconv.ParseFloat(strings.TrimSpace(title[idx+6:]), 64)
	if err != nil {
		t.Fatal(err)
	}
	if auroc < 0.75 {
		t.Errorf("AUROC = %.3f, want ≥ 0.75 (paper: 0.903)", auroc)
	}
	if auroc > 0.995 {
		t.Errorf("AUROC = %.3f suspiciously perfect — expert noise should produce misses", auroc)
	}
}

func TestTable2RateRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tables := runExperiment(t, "table2")
	tab := tables[0]
	var seedbRate, manualRate float64
	for _, row := range tab.Rows {
		if row[0] == "pooled" {
			v, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				t.Fatal(err)
			}
			if row[1] == "SEEDB" {
				seedbRate = v
			} else {
				manualRate = v
			}
		}
	}
	if seedbRate < 2*manualRate {
		t.Errorf("pooled bookmark rates: SEEDB %.2f vs MANUAL %.2f, want ≥2x (paper ≈3x)", seedbRate, manualRate)
	}
}

// TestParallelExecutorNoSlowerThanSerial is the bench regression guard
// for the vectorized executor: on a multi-core machine the parallel cold
// path must not lose to the serial interpreter on the syn dataset. The
// margin absorbs scheduler noise — the point is catching regressions
// where the fast path becomes a slow path, not enforcing a speedup
// (BENCH_parallel.json records the measured speedup).
func TestParallelExecutorNoSlowerThanSerial(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS > 1; single-core machines cannot exercise parallel scans")
	}
	if testing.Short() {
		t.Skip("macro experiment")
	}
	dp, err := MeasureParallel(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dp.VectorizedQueries == 0 {
		t.Fatal("parallel run executed no vectorized queries")
	}
	if dp.ParallelMS > dp.SerialMS*1.25 {
		t.Errorf("parallel executor slower than serial: %.2fms vs %.2fms (%.2fx)",
			dp.ParallelMS, dp.SerialMS, dp.Speedup)
	}
	t.Logf("serial %.2fms, parallel %.2fms (%.1fx, %d workers)",
		dp.SerialMS, dp.ParallelMS, dp.Speedup, dp.ScanWorkers)
}

// TestFilterKernelsNoSlowerThanSerial is the bench regression guard for
// the predicate selection kernels: kernels must never turn a filtered
// parallel scan slower than the Workers=1 serial interpreter, and the
// sweep itself asserts the kernels and numeric group dictionaries
// engaged (vectorized, zero fallback reasons). The margin absorbs
// scheduler noise; BENCH_filter.json records the measured speedups.
func TestFilterKernelsNoSlowerThanSerial(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS > 1; single-core machines cannot exercise parallel scans")
	}
	if testing.Short() {
		t.Skip("macro experiment")
	}
	rep, err := MeasureFilter(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IntGroupVectorized || !rep.FloatGroupVectorized {
		t.Errorf("numeric group keys must vectorize: int=%v float=%v",
			rep.IntGroupVectorized, rep.FloatGroupVectorized)
	}
	for _, dp := range rep.Points {
		if dp.SelectionKernels == 0 {
			t.Errorf("selectivity %.0f%%: no selection kernels bound", dp.Selectivity*100)
		}
		if dp.KernelMS > dp.SerialMS*1.25 {
			t.Errorf("selectivity %.0f%%: kernels slower than serial: %.2fms vs %.2fms",
				dp.Selectivity*100, dp.KernelMS, dp.SerialMS)
		}
		t.Logf("selectivity %.0f%%: serial %.2fms, closure %.2fms, kernels %.2fms (%.1fx vs closure)",
			dp.Selectivity*100, dp.SerialMS, dp.BaselineMS, dp.KernelMS, dp.Speedup)
	}
}

// TestShardFanoutEngages is the CI smoke step for the shard router: the
// scaling experiment must actually fan every measured configuration out
// across its shards (MeasureShard errors when ShardQueries or
// ShardFanout stay zero), and the curve itself is the regression guard —
// 4-shard execution must not lose to the single-shard configuration
// beyond a noise margin. Converting fan-out into wall-clock *speedup*
// needs physical cores (each shard scans 1/N rows concurrently), so the
// speedup expectation only applies on multi-core machines;
// BENCH_shard.json records the measured curve with GOMAXPROCS alongside.
func TestShardFanoutEngages(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	rep, err := MeasureShard(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %+v", rep.Points)
	}
	var p1, p4 ShardPoint
	for _, p := range rep.Points {
		if p.ShardQueries == 0 || p.ShardFanout < p.Shards {
			t.Errorf("%d shards: fan-out did not engage: %+v", p.Shards, p)
		}
		switch p.Shards {
		case 1:
			p1 = p
		case 4:
			p4 = p
		}
	}
	if p4.ColdMS > p1.ColdMS*1.35 {
		t.Errorf("4-shard execution slower than single shard: %.2fms vs %.2fms (%.2fx)",
			p4.ColdMS, p1.ColdMS, p4.Speedup)
	}
	if runtime.GOMAXPROCS(0) >= 4 && p4.Speedup < 1.2 {
		t.Errorf("with %d cores, 4 shards should beat 1: %.2fx", runtime.GOMAXPROCS(0), p4.Speedup)
	}
	t.Logf("cold curve (GOMAXPROCS=%d): 1 shard %.2fms, 4 shards %.2fms (%.2fx, straggler %.2fms)",
		rep.GOMAXPROCS, p1.ColdMS, p4.ColdMS, p4.Speedup, p4.StragglerMS)

	// The hedge curve: unhedged, every query eats the injected straggler
	// delay; hedged, the healthy replica answers first and the straggler
	// collapses well below the injected delay.
	if len(rep.Hedge) != 2 || rep.Hedge[0].Hedged || !rep.Hedge[1].Hedged {
		t.Fatalf("hedge curve = %+v", rep.Hedge)
	}
	off, on := rep.Hedge[0], rep.Hedge[1]
	if min := float64(slowChildDelay.Microseconds()) / 1000; off.StragglerMS < min {
		t.Errorf("unhedged straggler %.2fms below the injected %.2fms delay", off.StragglerMS, min)
	}
	if on.HedgedPartials == 0 || on.HedgeWins == 0 {
		t.Errorf("hedged run never hedged: %+v", on)
	}
	if off.HedgedPartials != 0 || off.HedgeWins != 0 {
		t.Errorf("unhedged run reports hedges: %+v", off)
	}
	if on.StragglerMS >= off.StragglerMS {
		t.Errorf("hedging did not tame the straggler: %.2fms -> %.2fms", off.StragglerMS, on.StragglerMS)
	}
	t.Logf("hedge curve: straggler %.2fms -> %.2fms (%d/%d partials hedged, %d wins)",
		off.StragglerMS, on.StragglerMS, on.HedgedPartials, on.ShardFanout, on.HedgeWins)
}

func TestBuildShuffledPreservesContent(t *testing.T) {
	spec := dataset.Housing().WithRows(200)
	db1, err := buildShuffled(spec, sqldb.LayoutCol, 0)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := buildShuffled(spec, sqldb.LayoutCol, 99)
	if err != nil {
		t.Fatal(err)
	}
	q := "SELECT COUNT(*), SUM(price) FROM housing"
	r1, err := db1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].I != r2.Rows[0][0].I {
		t.Error("shuffling changed row count")
	}
	s1, _ := r1.Rows[0][1].AsFloat()
	s2, _ := r2.Rows[0][1].AsFloat()
	if diff := s1 - s2; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("shuffling changed content: %v vs %v", s1, s2)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "hello")
	out := tab.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestMsFormatting(t *testing.T) {
	cases := []struct {
		us   int64
		want string
	}{
		{1500, "1.50ms"},
		{150_000, "150ms"},
		{1_500_000, "1.5s"},
	}
	for _, c := range cases {
		d := time.Duration(c.us) * time.Microsecond
		if got := ms(d); got != c.want {
			t.Errorf("ms(%dus) = %q, want %q", c.us, got, c.want)
		}
	}
}

func TestSpeedupFormatting(t *testing.T) {
	if got := speedup(10*time.Second, 2*time.Second); got != "5.0x" {
		t.Errorf("speedup = %q", got)
	}
	if got := speedup(time.Second, 0); got != "-" {
		t.Errorf("zero-division speedup = %q", got)
	}
}
