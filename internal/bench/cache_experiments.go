package bench

// Cross-request result-cache experiments (beyond the paper). The
// paper's sharing optimizations deduplicate work within one Recommend;
// the internal/cache subsystem shares it across requests, sessions and
// concurrent users. These experiments measure the three reuse layers on
// the synthetic catalog dataset: whole-request memoization (warm
// repeat), singleflight collapsing (concurrent identical requests), and
// the materialized reference-view store (fresh predicate, shared
// full-table reference distributions).

import (
	"context"
	"fmt"
	"sync"
	"time"

	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// CacheDatapoint is one recorded cold-vs-warm measurement (the
// BENCH_cache.json payload).
type CacheDatapoint struct {
	Dataset         string  `json:"dataset"`
	Rows            int     `json:"rows"`
	Views           int     `json:"views"`
	ColdMS          float64 `json:"cold_ms"`
	WarmMS          float64 `json:"warm_ms"`
	Speedup         float64 `json:"speedup"`
	QueriesCold     int     `json:"queries_cold"`
	QueriesWarm     int     `json:"queries_warm"`
	NewPredicateMS  float64 `json:"new_predicate_ms"`
	RefViewsReused  int     `json:"ref_views_reused"`
	ConcurrentCalls int     `json:"concurrent_calls"`
	ConcurrentExecs int     `json:"concurrent_queries_executed"`
	// QueryLatency summarizes the per-query backend latency histogram
	// across every scenario; its count is guarded against the number of
	// paid query executions (cache hits and singleflight followers never
	// observe).
	QueryLatency LatencySummary `json:"query_latency"`
	// Trace-overhead numbers for the warm (cached-Recommend) hot path:
	// the same cache hit with a full span trace attached, the relative
	// cost of that tracing, and the amortized cost of 1% head sampling
	// (one in a hundred requests pays TraceOverheadPct).
	TracedWarmMS        float64 `json:"traced_warm_ms"`
	TraceOverheadPct    float64 `json:"trace_overhead_pct"`
	SampledTraceCostPct float64 `json:"trace_sampled_1pct_cost_pct"`
}

// msF converts a duration to float milliseconds.
func msF(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// MeasureCache runs the cold/warm/concurrent/new-predicate scenarios on
// the synthetic catalog dataset and returns the datapoint.
func MeasureCache(ctx context.Context, cfg Config) (*CacheDatapoint, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("syn")
	if err != nil {
		return nil, err
	}
	spec = spec.WithRows(cfg.rowsFor(spec))
	db, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	tel := telemetry.NewCollector()
	eng := newEngine(db)
	eng.SetTelemetry(tel)
	req := requestFor(spec)
	req.Reference = core.RefAll // reference views are shareable across predicates
	opts := core.Options{Strategy: core.Sharing, K: 10, EnableCache: true, Parallelism: cfg.Parallelism}

	dCold, cold, err := timeRecommend(ctx, eng, req, opts)
	if err != nil {
		return nil, err
	}
	dWarm, warm, err := timeRecommend(ctx, eng, req, opts)
	if err != nil {
		return nil, err
	}

	// Concurrent identical requests against a fresh engine: singleflight
	// must collapse them into one execution.
	engC := newEngine(db)
	engC.SetTelemetry(tel)
	const concurrent = 8
	var wg sync.WaitGroup
	execs := make([]int, concurrent)
	errs := make([]error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := engC.Recommend(ctx, req, opts)
			if err != nil {
				errs[i] = err
				return
			}
			execs[i] = res.Metrics.QueriesExecuted
		}(i)
	}
	wg.Wait()
	totalExecs := 0
	for i := range execs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		totalExecs += execs[i]
	}

	// A fresh predicate on the warmed engine reuses every materialized
	// reference view and only pays for its target side.
	reqNew := req
	reqNew.TargetWhere = fmt.Sprintf("NOT (%s)", req.TargetWhere)
	dNew, resNew, err := timeRecommend(ctx, eng, reqNew, opts)
	if err != nil {
		return nil, err
	}

	// Trace overhead on the warm hot path: best-of-5 cache hits with and
	// without a span trace attached (warm repeats execute zero SQL, so
	// the latency-histogram guard below is untouched).
	warmRepeat := func(traced bool) (time.Duration, error) {
		var best time.Duration
		for i := 0; i < 5; i++ {
			rctx := ctx
			var tr *telemetry.Trace
			if traced {
				rctx, tr = telemetry.WithTrace(ctx, "request")
			}
			d, _, err := timeRecommend(rctx, eng, req, opts)
			if tr != nil {
				tr.Finish()
			}
			if err != nil {
				return 0, err
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	dPlain, err := warmRepeat(false)
	if err != nil {
		return nil, err
	}
	dTraced, err := warmRepeat(true)
	if err != nil {
		return nil, err
	}
	overheadPct := 0.0
	if dPlain > 0 && dTraced > dPlain {
		overheadPct = 100 * float64(dTraced-dPlain) / float64(dPlain)
	}

	speedup := 0.0
	if dWarm > 0 {
		speedup = float64(dCold) / float64(dWarm)
	}
	totalQueries := cold.Metrics.QueriesExecuted + warm.Metrics.QueriesExecuted +
		resNew.Metrics.QueriesExecuted + totalExecs
	lat, err := summarizeLatency(&tel.QueryLatency, totalQueries)
	if err != nil {
		return nil, err
	}
	return &CacheDatapoint{
		Dataset:         spec.Name,
		Rows:            spec.Rows,
		Views:           cold.Metrics.Views,
		ColdMS:          msF(dCold),
		WarmMS:          msF(dWarm),
		Speedup:         speedup,
		QueriesCold:     cold.Metrics.QueriesExecuted,
		QueriesWarm:     warm.Metrics.QueriesExecuted,
		NewPredicateMS:  msF(dNew),
		RefViewsReused:  resNew.Metrics.RefViewsReused,
		ConcurrentCalls: concurrent,
		ConcurrentExecs: totalExecs,
		QueryLatency:    lat,

		TracedWarmMS:        msF(dTraced),
		TraceOverheadPct:    overheadPct,
		SampledTraceCostPct: overheadPct / 100,
	}, nil
}

// CacheExperiment renders MeasureCache as an experiment table.
func CacheExperiment(ctx context.Context, cfg Config) ([]*Table, error) {
	dp, err := MeasureCache(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "cache",
		Title:  fmt.Sprintf("Cross-request result cache, %s %d rows, %d views (beyond the paper)", dp.Dataset, dp.Rows, dp.Views),
		Header: []string{"scenario", "latency", "queries executed", "vs cold"},
	}
	t.AddRow("cold (empty cache)", fmt.Sprintf("%.2fms", dp.ColdMS), fmt.Sprintf("%d", dp.QueriesCold), "1.0x")
	t.AddRow("warm (identical request)", fmt.Sprintf("%.2fms", dp.WarmMS), fmt.Sprintf("%d", dp.QueriesWarm), fmt.Sprintf("%.1fx", dp.Speedup))
	t.AddRow(fmt.Sprintf("%d concurrent identical (fresh cache)", dp.ConcurrentCalls),
		"-", fmt.Sprintf("%d (singleflight)", dp.ConcurrentExecs), "-")
	newVsCold := "-"
	if dp.NewPredicateMS > 0 {
		newVsCold = fmt.Sprintf("%.1fx", dp.ColdMS/dp.NewPredicateMS)
	}
	t.AddRow(fmt.Sprintf("new predicate (%d ref views reused)", dp.RefViewsReused),
		fmt.Sprintf("%.2fms", dp.NewPredicateMS), "-", newVsCold)
	t.Notes = append(t.Notes,
		fmt.Sprintf("full span tracing on a warm cache hit costs %.1f%% (%.3fms traced); 1%% head sampling amortizes to %.3f%%",
			dp.TraceOverheadPct, dp.TracedWarmMS, dp.SampledTraceCostPct),
		"warm requests are whole-request cache hits: zero SQL executed",
		"concurrent identical requests collapse to one execution via singleflight",
		"a new predicate reuses materialized full-table reference distributions (RefAll)")
	return []*Table{t}, nil
}
