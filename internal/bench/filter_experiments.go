package bench

// Predicate selection-kernel experiment (beyond the paper). Exploration
// frontends filter aggressively — SeeDB requests routinely carry WHERE
// clauses over the fact table — and before predicate compilation every
// WHERE conjunct (and every CASE-flag predicate) evaluated through a
// per-row closure even inside the vectorized fast path. This experiment
// isolates the new axis: the same filtered grouped-aggregate query over
// a numerically-dimensioned table, executed (a) by the Workers=1 serial
// row interpreter, (b) by the parallel vectorized executor with kernels
// disabled (the row-at-a-time closure filter, PR 2's behavior), and
// (c) with the compiled selection kernels on — swept across predicate
// selectivities of 1%/10%/50%/90%. The same run proves int and float
// GROUP BY keys execute on the fast path (runtime value dictionaries)
// with zero fallbacks.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// FilterDatapoint is one selectivity measurement.
type FilterDatapoint struct {
	// Selectivity is the fraction of rows the WHERE clause keeps.
	Selectivity float64 `json:"selectivity"`
	RowsKept    int     `json:"rows_kept"`
	// SerialMS is the Workers=1 row interpreter; BaselineMS the parallel
	// executor with row-at-a-time closure filters (NoSelectionKernels);
	// KernelMS the parallel executor with selection kernels.
	SerialMS   float64 `json:"serial_ms"`
	BaselineMS float64 `json:"baseline_ms"`
	KernelMS   float64 `json:"kernel_ms"`
	// Speedup is BaselineMS/KernelMS — what predicate compilation alone
	// buys at identical parallelism. SpeedupVsSerial is SerialMS/KernelMS.
	Speedup          float64 `json:"speedup"`
	SpeedupVsSerial  float64 `json:"speedup_vs_serial"`
	SelectionKernels int     `json:"selection_kernels"`
}

// FilterReport is the BENCH_filter.json payload.
type FilterReport struct {
	Rows        int     `json:"rows"`
	Groups      int     `json:"groups"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	Query       string  `json:"query"`
	BestSpeedup float64 `json:"best_speedup"`
	// IntGroupVectorized / FloatGroupVectorized confirm the runtime
	// value-dictionary group keys ran on the fast path with no fallback
	// (MeasureFilter errors out, naming the reason, when they do not).
	IntGroupVectorized   bool              `json:"int_group_vectorized"`
	FloatGroupVectorized bool              `json:"float_group_vectorized"`
	Points               []FilterDatapoint `json:"points"`
	// KernelLatency summarizes every individual kernel-configuration run
	// (all repetitions at every selectivity, not just the best-of-3
	// floors), count-guarded against the runs actually timed.
	KernelLatency LatencySummary `json:"kernel_latency"`
}

// filterSelectivities is the swept WHERE selectivity grid.
var filterSelectivities = []float64{0.01, 0.10, 0.50, 0.90}

// buildFilterTable generates the synthetic filtered-scan table: an int
// dimension, a float dimension, a selectivity driver column and two
// measures (floats are multiples of 0.25, matching the difftest
// exactness convention).
func buildFilterTable(rows int) (*sqldb.DB, error) {
	db := sqldb.NewDB()
	tab, err := db.CreateTable("filt", sqldb.MustSchema(
		sqldb.Column{Name: "bucket", Type: sqldb.TypeInt},
		sqldb.Column{Name: "fgroup", Type: sqldb.TypeFloat},
		sqldb.Column{Name: "dim", Type: sqldb.TypeString},
		sqldb.Column{Name: "sel", Type: sqldb.TypeFloat},
		sqldb.Column{Name: "m", Type: sqldb.TypeFloat},
	), sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	if cs, ok := tab.(*sqldb.ColStore); ok {
		cs.Reserve(rows)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		err := tab.AppendRow([]sqldb.Value{
			sqldb.Int(int64(rng.Intn(40))),
			sqldb.Float(float64(rng.Intn(12)) * 0.25),
			sqldb.Str(fmt.Sprintf("d%02d", rng.Intn(20))),
			sqldb.Float(rng.Float64()),
			sqldb.Float(float64(rng.Intn(4001)-2000) * 0.25),
		})
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MeasureFilter runs the selectivity sweep and the numeric-group-key
// checks, returning the report. It fails loudly when the selection
// kernels or the numeric dictionaries do not engage — the CI smoke step
// leans on exactly that.
func MeasureFilter(ctx context.Context, cfg Config) (*FilterReport, error) {
	cfg = cfg.withDefaults()
	rows := 400_000
	if cfg.Quick {
		rows = 60_000
	}
	if cfg.PaperScale {
		rows = 2_000_000
	}
	db, err := buildFilterTable(rows)
	if err != nil {
		return nil, err
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	rep := &FilterReport{
		Rows:       rows,
		Groups:     40,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}

	// best-of-3 timing floor for one configuration; every repetition also
	// lands in hist when one is supplied.
	var kernelHist telemetry.Histogram
	kernelRuns := 0
	run := func(sql string, opts sqldb.ExecOptions, hist *telemetry.Histogram) (time.Duration, *sqldb.Result, error) {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		var bestD time.Duration
		var bestRes *sqldb.Result
		for i := 0; i < 3; i++ {
			start := time.Now()
			res, err := db.QueryOpts(sql, opts)
			if err != nil {
				return 0, nil, err
			}
			d := time.Since(start)
			if hist != nil {
				hist.Observe(d)
				kernelRuns++
			}
			if bestRes == nil || d < bestD {
				bestD, bestRes = d, res
			}
		}
		return bestD, bestRes, nil
	}

	for _, s := range filterSelectivities {
		sql := fmt.Sprintf(
			"SELECT bucket, COUNT(*), SUM(m), MIN(m), MAX(m) FROM filt WHERE sel < %g AND dim != 'd00' GROUP BY bucket", s)
		dSerial, serial, err := run(sql, sqldb.ExecOptions{Ctx: ctx, Workers: 1}, nil)
		if err != nil {
			return nil, err
		}
		if serial.Stats.Vectorized {
			return nil, fmt.Errorf("bench: Workers=1 run used the vectorized path")
		}
		dBase, base, err := run(sql, sqldb.ExecOptions{Ctx: ctx, Workers: workers, NoSelectionKernels: true}, nil)
		if err != nil {
			return nil, err
		}
		if !base.Stats.Vectorized {
			return nil, fmt.Errorf("bench: baseline run fell back (%s)", base.Stats.FallbackReason)
		}
		dKern, kern, err := run(sql, sqldb.ExecOptions{Ctx: ctx, Workers: workers}, &kernelHist)
		if err != nil {
			return nil, err
		}
		if !kern.Stats.Vectorized || kern.Stats.FallbackReason != "" {
			return nil, fmt.Errorf("bench: kernel run fell back (%s)", kern.Stats.FallbackReason)
		}
		if kern.Stats.SelectionKernels == 0 {
			return nil, fmt.Errorf("bench: compilable WHERE bound no selection kernels")
		}
		kept := 0
		for _, row := range kern.Rows {
			if n, ok := row[1].AsInt(); ok {
				kept += int(n)
			}
		}
		dp := FilterDatapoint{
			Selectivity:      s,
			RowsKept:         kept,
			SerialMS:         msF(dSerial),
			BaselineMS:       msF(dBase),
			KernelMS:         msF(dKern),
			SelectionKernels: kern.Stats.SelectionKernels,
		}
		if dKern > 0 {
			dp.Speedup = float64(dBase) / float64(dKern)
			dp.SpeedupVsSerial = float64(dSerial) / float64(dKern)
		}
		if dp.Speedup > rep.BestSpeedup {
			rep.BestSpeedup = dp.Speedup
		}
		rep.Points = append(rep.Points, dp)
		rep.Query = sql
	}

	// Int/float GROUP BY keys must run on the fast path (runtime value
	// dictionaries), with no fallback reason reported.
	for _, probe := range []struct {
		sql   string
		float bool
	}{
		{"SELECT bucket, COUNT(*), AVG(m) FROM filt WHERE sel < 0.5 GROUP BY bucket", false},
		{"SELECT fgroup, COUNT(*), AVG(m) FROM filt WHERE sel < 0.5 GROUP BY fgroup", true},
	} {
		res, err := db.QueryOpts(probe.sql, sqldb.ExecOptions{Ctx: ctx, Workers: workers})
		if err != nil {
			return nil, err
		}
		if !res.Stats.Vectorized || res.Stats.FallbackReason != "" {
			return nil, fmt.Errorf("bench: numeric group key fell back (%s): %s",
				res.Stats.FallbackReason, probe.sql)
		}
		if probe.float {
			rep.FloatGroupVectorized = true
		} else {
			rep.IntGroupVectorized = true
		}
	}
	lat, err := summarizeLatency(&kernelHist, kernelRuns)
	if err != nil {
		return nil, err
	}
	rep.KernelLatency = lat
	return rep, nil
}

// FilterExperiment renders MeasureFilter as an experiment table.
func FilterExperiment(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := MeasureFilter(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "filter",
		Title: fmt.Sprintf("Vectorized predicate selection kernels, %d rows, %d workers (beyond the paper)",
			rep.Rows, rep.Workers),
		Header: []string{"selectivity", "serial", "closure filter", "selection kernels", "vs closure", "vs serial"},
	}
	for _, dp := range rep.Points {
		t.AddRow(
			fmt.Sprintf("%.0f%%", dp.Selectivity*100),
			fmt.Sprintf("%.2fms", dp.SerialMS),
			fmt.Sprintf("%.2fms", dp.BaselineMS),
			fmt.Sprintf("%.2fms", dp.KernelMS),
			fmt.Sprintf("%.1fx", dp.Speedup),
			fmt.Sprintf("%.1fx", dp.SpeedupVsSerial),
		)
	}
	t.Notes = append(t.Notes,
		"closure filter = parallel vectorized executor with NoSelectionKernels (PR 2 behavior)",
		"int and float GROUP BY keys ran on the fast path via runtime value dictionaries",
		"results are identical across all three executors (see internal/sqldb/difftest)")
	return []*Table{t}, nil
}
