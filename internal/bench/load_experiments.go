// The load experiment: stand up a real seedb-server on a loopback
// socket, populate it with the synthetic traffic table, and replay the
// mixed workload through internal/load — the same path CI's smoke runs
// and the BENCH_load.json regeneration uses. Unlike the other
// experiments, this one measures the whole stack (HTTP, JSON, handler,
// cache, engine, store) rather than the engine alone.
package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"seedb/internal/dataset"
	"seedb/internal/load"
	"seedb/internal/server"
	"seedb/internal/sqldb"
)

// loadProfile picks the replay shape: quick is the CI smoke (seconds),
// full is the committed BENCH_load.json profile (a million rows, 64
// simulated users).
func loadProfile(cfg Config) (rows, users int, dur time.Duration) {
	if cfg.Quick {
		return 50_000, 8, 5 * time.Second
	}
	return 1_000_000, 64, 25 * time.Second
}

// MeasureLoad runs the load harness against an in-process server and
// returns its report (the BENCH_load.json payload).
func MeasureLoad(ctx context.Context, cfg Config) (*load.Report, error) {
	cfg = cfg.withDefaults()
	rows, users, dur := loadProfile(cfg)
	return measureLoad(ctx, cfg, rows, users, dur)
}

func measureLoad(ctx context.Context, cfg Config, rows, users int, dur time.Duration) (*load.Report, error) {
	srv := server.New(sqldb.NewDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	lcfg := load.Config{
		BaseURL:  "http://" + ln.Addr().String(),
		Spec:     dataset.TrafficSpec().WithRows(rows).WithSeed(cfg.Seed),
		Users:    users,
		Duration: dur,
		Seed:     cfg.Seed,
	}
	// PushSpec goes over the wire like a real client would, so the
	// million-row build exercises /api/datasets/synth too.
	if err := load.PushSpec(ctx, lcfg); err != nil {
		return nil, err
	}
	return load.Run(ctx, lcfg)
}

// f2 formats a latency/throughput cell.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// LoadExperiment renders the load report as an experiment table.
func LoadExperiment(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := MeasureLoad(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "load",
		Title:  fmt.Sprintf("Mixed-workload replay (%d rows, %d users, %.0fs)", rep.RowsLoaded, rep.Users, rep.DurationS),
		Header: []string{"class", "requests", "rps", "p50 ms", "p95 ms", "p99 ms", "mean ms"},
	}
	for _, class := range []string{load.ClassRecommend, load.ClassQuery, load.ClassIngest} {
		cs := rep.Classes[class]
		t.AddRow(class, fmt.Sprintf("%d", cs.Count), f2(cs.ThroughputRPS),
			f2(cs.P50MS), f2(cs.P95MS), f2(cs.P99MS), f2(cs.MeanMS))
	}
	t.AddRow("total", fmt.Sprintf("%d", rep.TotalRequests), f2(rep.ThroughputRPS), "", "", "", "")
	t.Notes = append(t.Notes,
		fmt.Sprintf("driver observed %d queries, server executed %d (match=%v)",
			rep.DriverQueriesObserved, rep.ServerQueriesDelta, rep.QueriesMatch),
		fmt.Sprintf("%d recommends served from cache; %d rows ingested mid-replay; %d errors",
			rep.CacheServed, rep.RowsIngested, rep.ErrorCount))
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}
