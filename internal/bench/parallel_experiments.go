package bench

// Intra-query parallel executor experiment (beyond the paper). The
// paper's "Parallel Query Execution" optimization runs whole view
// queries concurrently; sqldb's vectorized executor additionally splits
// each query's scan across workers. This experiment isolates that new
// axis: cold Recommend calls on the synthetic catalog dataset with
// inter-query parallelism pinned to 1, comparing ScanParallelism=1 (the
// serial row interpreter) against ScanParallelism=GOMAXPROCS (the
// vectorized fast path). The headline speedup needs multiple physical
// cores; on a single core the vectorized path still wins whatever the
// dictionary-encoded group ids save over per-row string keys.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// ParallelDatapoint is one recorded serial-vs-parallel measurement (the
// BENCH_parallel.json payload).
type ParallelDatapoint struct {
	Dataset           string  `json:"dataset"`
	Rows              int     `json:"rows"`
	Views             int     `json:"views"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	ScanWorkers       int     `json:"scan_workers"`
	SerialMS          float64 `json:"serial_ms"`
	ParallelMS        float64 `json:"parallel_ms"`
	Speedup           float64 `json:"speedup"`
	QueriesExecuted   int     `json:"queries_executed"`
	VectorizedQueries int     `json:"vectorized_queries"`
	FallbackQueries   int     `json:"fallback_queries"`
	// QueryLatency summarizes per-query backend latency across every run
	// of both configurations (count-guarded against paid executions).
	QueryLatency LatencySummary `json:"query_latency"`
}

// MeasureParallel runs the cold serial-vs-parallel scenario on the
// synthetic catalog dataset and returns the datapoint. Each
// configuration runs three times and keeps the best (timing floor).
func MeasureParallel(ctx context.Context, cfg Config) (*ParallelDatapoint, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("syn")
	if err != nil {
		return nil, err
	}
	spec = spec.WithRows(cfg.rowsFor(spec))
	db, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	tel := telemetry.NewCollector()
	eng := newEngine(db)
	eng.SetTelemetry(tel)
	req := requestFor(spec)
	// At least two workers so the vectorized path always runs: on a
	// single core the measurement then isolates what vectorization alone
	// (typed vector reads, dictionary group ids) buys over the
	// interpreter.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}

	baseOpts := core.Options{
		Strategy: core.Sharing,
		K:        10,
		// Pin inter-query parallelism to 1 so the measurement isolates
		// the intra-query axis; EnableCache stays off so every run is a
		// cold path.
		Parallelism: 1,
	}

	totalQueries := 0
	best := func(scanPar int) (time.Duration, *core.Result, error) {
		opts := baseOpts
		opts.ScanParallelism = scanPar
		var bestD time.Duration
		var bestRes *core.Result
		for i := 0; i < 3; i++ {
			d, res, err := timeRecommend(ctx, eng, req, opts)
			if err != nil {
				return 0, nil, err
			}
			totalQueries += res.Metrics.QueriesExecuted
			if bestRes == nil || d < bestD {
				bestD, bestRes = d, res
			}
		}
		return bestD, bestRes, nil
	}

	dSerial, serial, err := best(1)
	if err != nil {
		return nil, err
	}
	if serial.Metrics.VectorizedQueries != 0 {
		return nil, fmt.Errorf("bench: serial run used the vectorized path")
	}
	dPar, par, err := best(workers)
	if err != nil {
		return nil, err
	}

	speedup := 0.0
	if dPar > 0 {
		speedup = float64(dSerial) / float64(dPar)
	}
	lat, err := summarizeLatency(&tel.QueryLatency, totalQueries)
	if err != nil {
		return nil, err
	}
	return &ParallelDatapoint{
		Dataset:           spec.Name,
		Rows:              spec.Rows,
		Views:             par.Metrics.Views,
		GOMAXPROCS:        workers,
		ScanWorkers:       par.Metrics.ScanWorkers,
		SerialMS:          msF(dSerial),
		ParallelMS:        msF(dPar),
		Speedup:           speedup,
		QueriesExecuted:   par.Metrics.QueriesExecuted,
		VectorizedQueries: par.Metrics.VectorizedQueries,
		FallbackQueries:   par.Metrics.FallbackQueries,
		QueryLatency:      lat,
	}, nil
}

// ParallelExperiment renders MeasureParallel as an experiment table.
func ParallelExperiment(ctx context.Context, cfg Config) ([]*Table, error) {
	dp, err := MeasureParallel(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "parallel",
		Title: fmt.Sprintf("Intra-query parallel vectorized executor, %s %d rows, %d views, GOMAXPROCS=%d (beyond the paper)",
			dp.Dataset, dp.Rows, dp.Views, dp.GOMAXPROCS),
		Header: []string{"executor", "cold latency", "queries", "vectorized", "vs serial"},
	}
	t.AddRow("serial interpreter (ScanParallelism=1)",
		fmt.Sprintf("%.2fms", dp.SerialMS), fmt.Sprintf("%d", dp.QueriesExecuted), "0", "1.0x")
	t.AddRow(fmt.Sprintf("vectorized, %d scan workers", dp.ScanWorkers),
		fmt.Sprintf("%.2fms", dp.ParallelMS), fmt.Sprintf("%d", dp.QueriesExecuted),
		fmt.Sprintf("%d", dp.VectorizedQueries), fmt.Sprintf("%.1fx", dp.Speedup))
	t.Notes = append(t.Notes,
		"cold path: result cache off, inter-query parallelism pinned to 1",
		"speedup scales with cores; on one core it reflects vectorization alone",
		"results are identical across worker counts (see internal/sqldb/difftest)")
	return []*Table{t}, nil
}
