package bench

import (
	"context"
	"fmt"
	"time"

	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/distance"
	"seedb/internal/sqldb"
	"seedb/internal/stats"
)

// qualityKs is the k sweep for the pruning-quality experiments (the paper
// sweeps 1..25 with emphasis on 5 and 10).
func qualityKs(quick bool) []int {
	if quick {
		return []int{1, 5, 10, 25}
	}
	return []int{1, 2, 3, 5, 7, 10, 15, 20, 25}
}

// Figure10 regenerates Figures 10a and 10b: the distribution of true
// view utilities for BANK and DIAB, with the Δk gaps that drive pruning
// accuracy.
func Figure10(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	var out []*Table
	for i, name := range []string{"bank", "diab"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		spec = spec.WithRows(cfg.rowsFor(spec))
		db, err := build(spec, sqldb.LayoutCol)
		if err != nil {
			return nil, err
		}
		oracle, err := oracleFor(ctx, db, requestFor(spec), spec.NumViews())
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:     fmt.Sprintf("figure10%c", 'a'+i),
			Title:  fmt.Sprintf("Distribution of view utilities (%s, EMD, complement reference)", name),
			Header: []string{"rank", "view", "utility", "Δk"},
		}
		show := 25
		if show > len(oracle.AllViews) {
			show = len(oracle.AllViews)
		}
		for r := 0; r < show; r++ {
			gap := "-"
			if r+1 < len(oracle.AllViews) {
				gap = f4(oracle.AllViews[r].Utility - oracle.AllViews[r+1].Utility)
			}
			t.AddRow(fmt.Sprintf("%d", r+1), oracle.AllViews[r].View.String(),
				f4(oracle.AllViews[r].Utility), gap)
		}
		if name == "bank" {
			t.Notes = append(t.Notes, "paper: top-2 well separated (Δ≈0.0125), ranks 3-9 clustered (Δ<0.002), rank 10 separated, dense tail")
		} else {
			t.Notes = append(t.Notes, "paper: top-10 tightly clustered (e.g. U(V5)=0.257, U(V6)=0.254, U(V7)=0.252), sparser below")
		}
		out = append(out, t)
	}
	return out, nil
}

// qualityRun measures accuracy and utility distance for every pruning
// scheme over the k sweep, averaged over cfg.Runs data orders.
func qualityRun(ctx context.Context, cfg Config, name string, figID string) ([]*Table, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	spec = spec.WithRows(cfg.rowsFor(spec))
	ks := qualityKs(cfg.Quick)
	schemes := []core.PruningScheme{core.CIPruning, core.MABPruning, core.NoPruning, core.RandomPruning}

	accT := &Table{
		ID:     figID + "a",
		Title:  fmt.Sprintf("Pruning accuracy vs k (%s, mean of %d runs)", name, cfg.Runs),
		Header: []string{"k", "CI", "MAB", "NO_PRU", "RANDOM"},
	}
	udT := &Table{
		ID:     figID + "b",
		Title:  fmt.Sprintf("Utility distance vs k (%s, mean of %d runs)", name, cfg.Runs),
		Header: []string{"k", "CI", "MAB", "NO_PRU", "RANDOM"},
	}

	acc := make(map[string]*stats.Welford)
	ud := make(map[string]*stats.Welford)
	key := func(s core.PruningScheme, k int) string { return fmt.Sprintf("%v/%d", s, k) }
	for _, s := range schemes {
		for _, k := range ks {
			acc[key(s, k)] = &stats.Welford{}
			ud[key(s, k)] = &stats.Welford{}
		}
	}

	for run := 0; run < cfg.Runs; run++ {
		db, err := buildShuffled(spec, sqldb.LayoutCol, cfg.Seed+int64(run)*7919)
		if err != nil {
			return nil, err
		}
		eng := newEngine(db)
		req := requestFor(spec)
		oracle, err := eng.ExactTopK(ctx, req, distance.EMD, spec.NumViews())
		if err != nil {
			return nil, err
		}
		trueUtil := core.TrueUtilityMap(oracle)
		for _, k := range ks {
			trueTop := core.TopViews(oracle, k)
			for _, s := range schemes {
				res, err := eng.Recommend(ctx, req, core.Options{
					Strategy: core.Comb,
					Pruning:  s,
					K:        k,
					Seed:     cfg.Seed + int64(run),
				})
				if err != nil {
					return nil, err
				}
				got := core.ViewsOf(res.Recommendations)
				acc[key(s, k)].Add(core.Accuracy(trueTop, got))
				ud[key(s, k)].Add(core.UtilityDistance(trueUtil, trueTop, got))
			}
		}
	}

	for _, k := range ks {
		accT.AddRow(fmt.Sprintf("%d", k),
			f3(acc[key(core.CIPruning, k)].Mean()),
			f3(acc[key(core.MABPruning, k)].Mean()),
			f3(acc[key(core.NoPruning, k)].Mean()),
			f3(acc[key(core.RandomPruning, k)].Mean()))
		udT.AddRow(fmt.Sprintf("%d", k),
			f4(ud[key(core.CIPruning, k)].Mean()),
			f4(ud[key(core.MABPruning, k)].Mean()),
			f4(ud[key(core.NoPruning, k)].Mean()),
			f4(ud[key(core.RandomPruning, k)].Mean()))
	}
	accT.Notes = append(accT.Notes, "paper: CI/MAB ≥75% accuracy (lower at small Δk); NO_PRU = 1.0; RANDOM ≪")
	udT.Notes = append(udT.Notes, "paper: CI/MAB utility distance near 0; RANDOM ≫ (≥5x CI/MAB)")
	return []*Table{accT, udT}, nil
}

// Figure11 regenerates Figures 11a/11b: BANK pruning quality.
func Figure11(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	return qualityRun(ctx, cfg, "bank", "figure11")
}

// Figure12 regenerates Figures 12a/12b: DIAB pruning quality.
func Figure12(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	return qualityRun(ctx, cfg, "diab", "figure12")
}

// Figure13 regenerates Figures 13a/13b: the latency reduction pruning
// provides relative to NO_PRU, as a function of k.
func Figure13(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	var out []*Table
	for i, name := range []string{"bank", "diab"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		spec = spec.WithRows(cfg.rowsFor(spec))
		db, err := build(spec, sqldb.LayoutCol)
		if err != nil {
			return nil, err
		}
		eng := newEngine(db)
		req := requestFor(spec)
		t := &Table{
			ID:     fmt.Sprintf("figure13%c", 'a'+i),
			Title:  fmt.Sprintf("Latency reduction from pruning vs k (%s, COMB, %% vs NO_PRU)", name),
			Header: []string{"k", "NO_PRU", "CI", "CI-reduction", "MAB", "MAB-reduction", "CI-rows%", "MAB-rows%"},
		}
		for _, k := range qualityKs(cfg.Quick) {
			base, baseRes, err := timeRecommend(ctx, eng, req, core.Options{
				Strategy: core.Comb, Pruning: core.NoPruning, K: k,
			})
			if err != nil {
				return nil, err
			}
			ci, ciRes, err := timeRecommend(ctx, eng, req, core.Options{
				Strategy: core.Comb, Pruning: core.CIPruning, K: k,
			})
			if err != nil {
				return nil, err
			}
			mab, mabRes, err := timeRecommend(ctx, eng, req, core.Options{
				Strategy: core.Comb, Pruning: core.MABPruning, K: k,
			})
			if err != nil {
				return nil, err
			}
			reduction := func(d time.Duration) string {
				if base <= 0 {
					return "-"
				}
				return fmt.Sprintf("%.0f%%", 100*(1-float64(d)/float64(base)))
			}
			rowsPct := func(r *core.Result) string {
				if baseRes.Metrics.RowsScanned == 0 {
					return "-"
				}
				return fmt.Sprintf("%.0f%%", 100*float64(r.Metrics.RowsScanned)/float64(baseRes.Metrics.RowsScanned))
			}
			t.AddRow(fmt.Sprintf("%d", k), ms(base), ms(ci), reduction(ci), ms(mab), reduction(mab),
				rowsPct(ciRes), rowsPct(mabRes))
		}
		t.Notes = append(t.Notes,
			"paper: ≥50% latency reduction for k≤15, up to ~90% for small k (CI); CI faster than MAB, MAB higher quality",
			"rows% is the fraction of base-table row visits relative to NO_PRU — the machine-independent view of the same effect")
		out = append(out, t)
	}
	return out, nil
}
