package bench

// Shard-router scaling experiment (beyond the paper). The ROADMAP's
// scale-out direction partitions the fact table across child stores and
// merges per-shard aggregation states; this experiment measures the
// cold-query scaling curve as the shard count grows, with every other
// parallelism axis pinned to 1 so the fan-out is the only concurrency.
// Wall-clock speedup needs physical cores — each shard scans 1/N of the
// rows concurrently — so the report records GOMAXPROCS next to the
// curve; on a single core the curve instead measures the router's
// overhead (parse + partial rewrite + merge), which the regression guard
// in bench_test.go bounds against the single-shard configuration.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/faultbe"
	"seedb/internal/backend/shardbe"
	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// ShardPoint is one shard-count measurement.
type ShardPoint struct {
	Shards int `json:"shards"`
	// ColdMS is the best-of-3 cold Recommend latency (cache off).
	ColdMS float64 `json:"cold_ms"`
	// Speedup is ColdMS(1 shard) / ColdMS(this point).
	Speedup float64 `json:"speedup"`
	// ShardQueries/ShardFanout confirm the fan-out actually engaged.
	ShardQueries int `json:"shard_queries"`
	ShardFanout  int `json:"shard_fanout"`
	// StragglerMS is the slowest single child execution observed.
	StragglerMS float64 `json:"straggler_ms"`
}

// ShardReport is the BENCH_shard.json payload.
type ShardReport struct {
	Dataset    string       `json:"dataset"`
	Rows       int          `json:"rows"`
	Views      int          `json:"views"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []ShardPoint `json:"points"`
	// SpeedupAt4 repeats the 4-shard speedup for the regression guard.
	// The fan-out parallelism only converts to wall-clock speedup when
	// GOMAXPROCS cores exist to run the shards on.
	SpeedupAt4 float64 `json:"speedup_at_4"`
	// QueryLatency summarizes router-level per-query latency across every
	// run at every shard count; ShardPartialLatency the individual child
	// executions behind them. Both counts are guarded against the
	// experiment's own metrics accounting.
	QueryLatency        LatencySummary `json:"query_latency"`
	ShardPartialLatency LatencySummary `json:"shard_partial_latency"`
	// Hedge is the straggler-mitigation curve: the same 2-shard run with
	// one artificially slow child, hedging off then on (with a healthy
	// replica). The hedged run should collapse the straggler tail.
	Hedge []HedgePoint `json:"hedge"`
}

// HedgePoint is one hedged-vs-unhedged measurement over a deployment
// with one slow child.
type HedgePoint struct {
	Hedged bool `json:"hedged"`
	// ColdMS is the cold Recommend latency with the slow child present.
	ColdMS float64 `json:"cold_ms"`
	// StragglerMS is the slowest per-query child execution: the injected
	// delay unhedged, roughly the hedge delay plus a healthy execution
	// once hedging cuts the straggler off.
	StragglerMS    float64 `json:"straggler_ms"`
	ShardFanout    int     `json:"shard_fanout"`
	HedgedPartials int     `json:"hedged_partials"`
	HedgeWins      int     `json:"hedge_wins"`
}

// MeasureShard runs the cold scaling curve at 1, 2 and 4 shards over the
// synthetic catalog dataset and returns the report.
func MeasureShard(ctx context.Context, cfg Config) (*ShardReport, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("syn")
	if err != nil {
		return nil, err
	}
	spec = spec.WithRows(cfg.rowsFor(spec))
	src, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	srcTab, ok := src.Table(spec.Name)
	if !ok {
		return nil, fmt.Errorf("bench: dataset table %q missing", spec.Name)
	}
	req := requestFor(spec)
	// Cache off (cold path); inter-query and intra-query parallelism
	// pinned to 1 so shard fan-out is the only concurrent axis.
	opts := core.Options{
		Strategy:        core.Sharing,
		K:               10,
		Parallelism:     1,
		ScanParallelism: 1,
	}

	report := &ShardReport{Dataset: spec.Name, Rows: spec.Rows, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	tel := telemetry.NewCollector()
	totalQueries, totalFanout := 0, 0
	var base time.Duration
	for _, shards := range []int{1, 2, 4} {
		dbs, bes := shardbe.EmbeddedChildren(shards)
		if err := shardbe.ScatterTable(src, spec.Name, dbs, shardbe.Blocks{Total: srcTab.NumRows()}); err != nil {
			return nil, err
		}
		router, err := shardbe.New(bes, shardbe.Options{Telemetry: tel})
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(router)
		eng.SetTelemetry(tel)

		var bestD time.Duration
		var bestRes *core.Result
		for i := 0; i < 3; i++ {
			d, res, err := timeRecommend(ctx, eng, req, opts)
			if err != nil {
				return nil, err
			}
			totalQueries += res.Metrics.QueriesExecuted
			totalFanout += res.Metrics.ShardFanout
			if bestRes == nil || d < bestD {
				bestD, bestRes = d, res
			}
		}
		if bestRes.Metrics.ShardQueries == 0 || bestRes.Metrics.ShardFanout < shards {
			return nil, fmt.Errorf("bench: shard fan-out did not engage at %d shards: %+v", shards, bestRes.Metrics)
		}
		if shards == 1 {
			base = bestD
		}
		pt := ShardPoint{
			Shards:       shards,
			ColdMS:       msF(bestD),
			ShardQueries: bestRes.Metrics.ShardQueries,
			ShardFanout:  bestRes.Metrics.ShardFanout,
			StragglerMS:  float64(bestRes.Metrics.ShardStragglerMax.Microseconds()) / 1000,
		}
		if bestD > 0 {
			pt.Speedup = float64(base) / float64(bestD)
		}
		report.Points = append(report.Points, pt)
		report.Views = bestRes.Metrics.Views
		if shards == 4 {
			report.SpeedupAt4 = pt.Speedup
		}
	}
	qLat, err := summarizeLatency(&tel.QueryLatency, totalQueries)
	if err != nil {
		return nil, err
	}
	sLat, err := summarizeLatency(&tel.ShardLatency, totalFanout)
	if err != nil {
		return nil, err
	}
	report.QueryLatency, report.ShardPartialLatency = qLat, sLat
	if report.Hedge, err = measureHedge(ctx, src, srcTab.NumRows(), spec.Name, req, opts); err != nil {
		return nil, err
	}
	return report, nil
}

// Injected straggler profile for the hedge experiment: one child is
// slowed by slowChildDelay on every execution; the hedged run issues a
// speculative duplicate to a healthy replica after hedgeAfter. The
// injected delay must dominate single-core scheduling noise (observed
// around 100-200ms under contention), so the experiment trims the
// request to one dimension/measure pair to keep the unhedged run short.
const (
	slowChildDelay = 250 * time.Millisecond
	hedgeAfter     = 2 * time.Millisecond
)

// measureHedge runs the same 2-shard recommendation twice with child 1
// artificially slowed: hedging off (every query eats the injected
// straggler) and hedging on with a healthy replica of the slow child
// (the speculative duplicate wins and the straggler is cancelled).
func measureHedge(ctx context.Context, src *sqldb.DB, rows int, table string, req core.Request, opts core.Options) ([]HedgePoint, error) {
	const shards = 2
	// One view is enough to expose the straggler; the full view space
	// would multiply the injected delay into the run time.
	req.Dimensions = req.Dimensions[:1]
	req.Measures = req.Measures[:1]
	var points []HedgePoint
	for _, hedged := range []bool{false, true} {
		dbs, bes := shardbe.EmbeddedChildren(shards)
		if err := shardbe.ScatterTable(src, table, dbs, shardbe.Blocks{Total: rows}); err != nil {
			return nil, err
		}
		slow := faultbe.Wrap(bes[1])
		slow.SetExecDelay(slowChildDelay)
		sopts := shardbe.Options{Telemetry: telemetry.NewCollector()}
		if hedged {
			// The replica holds the same partition as the slow child, built
			// by scattering the source again and keeping block 1.
			repDBs, repBes := shardbe.EmbeddedChildren(shards)
			if err := shardbe.ScatterTable(src, table, repDBs, shardbe.Blocks{Total: rows}); err != nil {
				return nil, err
			}
			sopts.Hedge = shardbe.HedgeOptions{Enabled: true, Delay: hedgeAfter}
			sopts.Replicas = [][]backend.Backend{1: {repBes[1]}}
		}
		router, err := shardbe.New([]backend.Backend{bes[0], slow}, sopts)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(router)
		d, res, err := timeRecommend(ctx, eng, req, opts)
		if err != nil {
			return nil, err
		}
		points = append(points, HedgePoint{
			Hedged:         hedged,
			ColdMS:         msF(d),
			StragglerMS:    float64(res.Metrics.ShardStragglerMax.Microseconds()) / 1000,
			ShardFanout:    res.Metrics.ShardFanout,
			HedgedPartials: res.Metrics.HedgedPartials,
			HedgeWins:      res.Metrics.HedgeWins,
		})
	}
	return points, nil
}

// ShardExperiment renders MeasureShard as an experiment table.
func ShardExperiment(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := MeasureShard(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "shard",
		Title: fmt.Sprintf("Shard-router cold scaling, %s %d rows, %d views, GOMAXPROCS=%d (beyond the paper)",
			rep.Dataset, rep.Rows, rep.Views, rep.GOMAXPROCS),
		Header: []string{"shards", "cold latency", "fanned-out queries", "child execs", "straggler", "vs 1 shard"},
	}
	for _, p := range rep.Points {
		t.AddRow(fmt.Sprintf("%d", p.Shards), fmt.Sprintf("%.2fms", p.ColdMS),
			fmt.Sprintf("%d", p.ShardQueries), fmt.Sprintf("%d", p.ShardFanout),
			fmt.Sprintf("%.2fms", p.StragglerMS), fmt.Sprintf("%.2fx", p.Speedup))
	}
	t.Notes = append(t.Notes,
		"cold path: cache off, inter-query and intra-query parallelism pinned to 1",
		"each shard scans 1/N of the rows; speedup needs physical cores to run shards on",
		"results are bit-identical to unsharded execution (see backend/conformancetest and sqldb/difftest)")
	h := &Table{
		ID: "shard-hedge",
		Title: fmt.Sprintf("Straggler hedging, 2 shards with one child slowed by %v (beyond the paper)",
			slowChildDelay),
		Header: []string{"hedging", "cold latency", "straggler", "hedged partials", "hedge wins"},
	}
	for _, p := range rep.Hedge {
		mode := "off"
		if p.Hedged {
			mode = "on"
		}
		h.AddRow(mode, fmt.Sprintf("%.2fms", p.ColdMS), fmt.Sprintf("%.2fms", p.StragglerMS),
			fmt.Sprintf("%d", p.HedgedPartials), fmt.Sprintf("%d", p.HedgeWins))
	}
	h.Notes = append(h.Notes,
		fmt.Sprintf("hedge delay fixed at %v; the duplicate goes to a healthy replica of the slow child", hedgeAfter),
		"first answer wins and the straggling execution is cancelled; results stay bit-identical")
	return []*Table{t, h}, nil
}
