package bench

// Shard-router scaling experiment (beyond the paper). The ROADMAP's
// scale-out direction partitions the fact table across child stores and
// merges per-shard aggregation states; this experiment measures the
// cold-query scaling curve as the shard count grows, with every other
// parallelism axis pinned to 1 so the fan-out is the only concurrency.
// Wall-clock speedup needs physical cores — each shard scans 1/N of the
// rows concurrently — so the report records GOMAXPROCS next to the
// curve; on a single core the curve instead measures the router's
// overhead (parse + partial rewrite + merge), which the regression guard
// in bench_test.go bounds against the single-shard configuration.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"seedb/internal/backend/shardbe"
	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// ShardPoint is one shard-count measurement.
type ShardPoint struct {
	Shards int `json:"shards"`
	// ColdMS is the best-of-3 cold Recommend latency (cache off).
	ColdMS float64 `json:"cold_ms"`
	// Speedup is ColdMS(1 shard) / ColdMS(this point).
	Speedup float64 `json:"speedup"`
	// ShardQueries/ShardFanout confirm the fan-out actually engaged.
	ShardQueries int `json:"shard_queries"`
	ShardFanout  int `json:"shard_fanout"`
	// StragglerMS is the slowest single child execution observed.
	StragglerMS float64 `json:"straggler_ms"`
}

// ShardReport is the BENCH_shard.json payload.
type ShardReport struct {
	Dataset    string       `json:"dataset"`
	Rows       int          `json:"rows"`
	Views      int          `json:"views"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []ShardPoint `json:"points"`
	// SpeedupAt4 repeats the 4-shard speedup for the regression guard.
	// The fan-out parallelism only converts to wall-clock speedup when
	// GOMAXPROCS cores exist to run the shards on.
	SpeedupAt4 float64 `json:"speedup_at_4"`
	// QueryLatency summarizes router-level per-query latency across every
	// run at every shard count; ShardPartialLatency the individual child
	// executions behind them. Both counts are guarded against the
	// experiment's own metrics accounting.
	QueryLatency        LatencySummary `json:"query_latency"`
	ShardPartialLatency LatencySummary `json:"shard_partial_latency"`
}

// MeasureShard runs the cold scaling curve at 1, 2 and 4 shards over the
// synthetic catalog dataset and returns the report.
func MeasureShard(ctx context.Context, cfg Config) (*ShardReport, error) {
	cfg = cfg.withDefaults()
	spec, err := dataset.ByName("syn")
	if err != nil {
		return nil, err
	}
	spec = spec.WithRows(cfg.rowsFor(spec))
	src, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	srcTab, ok := src.Table(spec.Name)
	if !ok {
		return nil, fmt.Errorf("bench: dataset table %q missing", spec.Name)
	}
	req := requestFor(spec)
	// Cache off (cold path); inter-query and intra-query parallelism
	// pinned to 1 so shard fan-out is the only concurrent axis.
	opts := core.Options{
		Strategy:        core.Sharing,
		K:               10,
		Parallelism:     1,
		ScanParallelism: 1,
	}

	report := &ShardReport{Dataset: spec.Name, Rows: spec.Rows, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	tel := telemetry.NewCollector()
	totalQueries, totalFanout := 0, 0
	var base time.Duration
	for _, shards := range []int{1, 2, 4} {
		dbs, bes := shardbe.EmbeddedChildren(shards)
		if err := shardbe.ScatterTable(src, spec.Name, dbs, shardbe.Blocks{Total: srcTab.NumRows()}); err != nil {
			return nil, err
		}
		router, err := shardbe.New(bes, shardbe.Options{Telemetry: tel})
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(router)
		eng.SetTelemetry(tel)

		var bestD time.Duration
		var bestRes *core.Result
		for i := 0; i < 3; i++ {
			d, res, err := timeRecommend(ctx, eng, req, opts)
			if err != nil {
				return nil, err
			}
			totalQueries += res.Metrics.QueriesExecuted
			totalFanout += res.Metrics.ShardFanout
			if bestRes == nil || d < bestD {
				bestD, bestRes = d, res
			}
		}
		if bestRes.Metrics.ShardQueries == 0 || bestRes.Metrics.ShardFanout < shards {
			return nil, fmt.Errorf("bench: shard fan-out did not engage at %d shards: %+v", shards, bestRes.Metrics)
		}
		if shards == 1 {
			base = bestD
		}
		pt := ShardPoint{
			Shards:       shards,
			ColdMS:       msF(bestD),
			ShardQueries: bestRes.Metrics.ShardQueries,
			ShardFanout:  bestRes.Metrics.ShardFanout,
			StragglerMS:  float64(bestRes.Metrics.ShardStragglerMax.Microseconds()) / 1000,
		}
		if bestD > 0 {
			pt.Speedup = float64(base) / float64(bestD)
		}
		report.Points = append(report.Points, pt)
		report.Views = bestRes.Metrics.Views
		if shards == 4 {
			report.SpeedupAt4 = pt.Speedup
		}
	}
	qLat, err := summarizeLatency(&tel.QueryLatency, totalQueries)
	if err != nil {
		return nil, err
	}
	sLat, err := summarizeLatency(&tel.ShardLatency, totalFanout)
	if err != nil {
		return nil, err
	}
	report.QueryLatency, report.ShardPartialLatency = qLat, sLat
	return report, nil
}

// ShardExperiment renders MeasureShard as an experiment table.
func ShardExperiment(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := MeasureShard(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "shard",
		Title: fmt.Sprintf("Shard-router cold scaling, %s %d rows, %d views, GOMAXPROCS=%d (beyond the paper)",
			rep.Dataset, rep.Rows, rep.Views, rep.GOMAXPROCS),
		Header: []string{"shards", "cold latency", "fanned-out queries", "child execs", "straggler", "vs 1 shard"},
	}
	for _, p := range rep.Points {
		t.AddRow(fmt.Sprintf("%d", p.Shards), fmt.Sprintf("%.2fms", p.ColdMS),
			fmt.Sprintf("%d", p.ShardQueries), fmt.Sprintf("%d", p.ShardFanout),
			fmt.Sprintf("%.2fms", p.StragglerMS), fmt.Sprintf("%.2fx", p.Speedup))
	}
	t.Notes = append(t.Notes,
		"cold path: cache off, inter-query and intra-query parallelism pinned to 1",
		"each shard scans 1/N of the rows; speedup needs physical cores to run shards on",
		"results are bit-identical to unsharded execution (see backend/conformancetest and sqldb/difftest)")
	return []*Table{t}, nil
}
