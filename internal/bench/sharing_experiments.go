package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

// Table1 regenerates the dataset inventory of Table 1.
func Table1(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "table1",
		Title:  "Datasets used for testing",
		Header: []string{"Name", "Description", "Size(paper)", "Size(here)", "|A|", "|M|", "Views", "MB(paper)"},
	}
	for _, name := range dataset.Names() {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			spec.Name,
			spec.Description,
			fmt.Sprintf("%d", spec.PaperRows),
			fmt.Sprintf("%d", cfg.rowsFor(spec)),
			fmt.Sprintf("%d", len(spec.ViewDims())),
			fmt.Sprintf("%d", len(spec.Measures)),
			fmt.Sprintf("%d", spec.NumViews()),
			fmt.Sprintf("%.1f", spec.PaperSizeMB),
		)
	}
	t.Notes = append(t.Notes,
		"real datasets are synthetic equivalents with matching shape and planted deviation structure (DESIGN.md §3)",
		"Size(here) is the default generated row count; -paperscale restores Table 1 sizes")
	return []*Table{t}, nil
}

// Figure5 regenerates Figures 5a and 5b: for each real dataset and each
// store, the latency of NO_OPT, SHARING, COMB and COMB_EARLY (CI
// pruning, k=10).
func Figure5(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	datasets := []string{"bank", "diab", "air", "air10"}
	layouts := []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol}
	strategies := []struct {
		name string
		opts core.Options
	}{
		{"NO_OPT", core.Options{Strategy: core.NoOpt, K: 10}},
		{"SHARING", core.Options{Strategy: core.Sharing, K: 10}},
		{"COMB", core.Options{Strategy: core.Comb, Pruning: core.CIPruning, K: 10}},
		{"COMB_EARLY", core.Options{Strategy: core.CombEarly, Pruning: core.CIPruning, K: 10}},
	}

	var out []*Table
	for li, layout := range layouts {
		t := &Table{
			ID:     fmt.Sprintf("figure5%c", 'a'+li),
			Title:  fmt.Sprintf("Performance gains from all optimizations (%s store)", layout),
			Header: []string{"dataset", "rows", "views", "NO_OPT", "SHARING", "COMB", "COMB_EARLY", "sharing-gain", "total-gain"},
		}
		for _, name := range datasets {
			spec, err := dataset.ByName(name)
			if err != nil {
				return nil, err
			}
			spec = spec.WithRows(cfg.rowsFor(spec))
			db, err := build(spec, layout)
			if err != nil {
				return nil, err
			}
			eng := newEngine(db)
			req := requestFor(spec)
			lat := make([]time.Duration, len(strategies))
			for si, s := range strategies {
				opts := s.opts
				opts.Parallelism = cfg.Parallelism
				d, _, err := timeRecommend(ctx, eng, req, opts)
				if err != nil {
					return nil, fmt.Errorf("%s/%v/%s: %w", name, layout, s.name, err)
				}
				lat[si] = d
			}
			t.AddRow(name, fmt.Sprintf("%d", spec.Rows), fmt.Sprintf("%d", spec.NumViews()),
				ms(lat[0]), ms(lat[1]), ms(lat[2]), ms(lat[3]),
				speedup(lat[0], lat[1]), speedup(lat[0], lat[3]))
		}
		t.Notes = append(t.Notes, "paper: ROW 50x(COMB)-300x(COMB_EARLY), COL 10x-30x; gains grow with dataset size")
		out = append(out, t)
	}
	return out, nil
}

// Figure6 regenerates Figures 6a and 6b: basic-framework latency as a
// function of the number of rows and of the number of views.
func Figure6(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	base := dataset.SYN()

	rowSweep := []int{100_000, 250_000, 500_000, 1_000_000}
	if !cfg.PaperScale {
		rowSweep = []int{10_000, 25_000, 50_000, 100_000}
		if cfg.Quick {
			rowSweep = []int{5_000, 10_000, 20_000}
		}
	}
	// Fixed moderate view count for the row sweep: 10 dims × 5 measures.
	dimsA, measA := base.DimNames()[:10], base.MeasureNames()[:5]

	tA := &Table{
		ID:     "figure6a",
		Title:  "NO_OPT latency vs number of rows (SYN, 50 views)",
		Header: []string{"rows", "ROW", "COL", "COL-speedup"},
	}
	for _, rows := range rowSweep {
		spec := base.WithRows(rows)
		var lat [2]time.Duration
		for li, layout := range []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol} {
			db, err := build(spec, layout)
			if err != nil {
				return nil, err
			}
			req := requestFor(spec)
			req.Dimensions, req.Measures = dimsA, measA
			d, _, err := timeRecommend(ctx, newEngine(db), req, core.Options{Strategy: core.NoOpt, K: 10})
			if err != nil {
				return nil, err
			}
			lat[li] = d
		}
		tA.AddRow(fmt.Sprintf("%d", rows), ms(lat[0]), ms(lat[1]), speedup(lat[0], lat[1]))
	}
	tA.Notes = append(tA.Notes, "paper: latency linear in rows; COL ≈5x faster than ROW")

	// View sweep at fixed size.
	viewRows := rowSweep[len(rowSweep)/2]
	viewSweep := []struct{ d, m int }{{10, 5}, {20, 5}, {15, 10}, {20, 10}, {25, 10}} // 50..250 views
	if cfg.Quick {
		viewSweep = viewSweep[:3]
	}
	tB := &Table{
		ID:     "figure6b",
		Title:  fmt.Sprintf("NO_OPT latency vs number of views (SYN, %d rows)", viewRows),
		Header: []string{"views", "ROW", "COL"},
	}
	spec := base.WithRows(viewRows)
	dbRow, err := build(spec, sqldb.LayoutRow)
	if err != nil {
		return nil, err
	}
	dbCol, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	for _, vs := range viewSweep {
		req := requestFor(spec)
		req.Dimensions = base.DimNames()[:vs.d]
		req.Measures = base.MeasureNames()[:vs.m]
		dRow, _, err := timeRecommend(ctx, newEngine(dbRow), req, core.Options{Strategy: core.NoOpt, K: 10})
		if err != nil {
			return nil, err
		}
		dCol, _, err := timeRecommend(ctx, newEngine(dbCol), req, core.Options{Strategy: core.NoOpt, K: 10})
		if err != nil {
			return nil, err
		}
		tB.AddRow(fmt.Sprintf("%d", vs.d*vs.m), ms(dRow), ms(dCol))
	}
	tB.Notes = append(tB.Notes, "paper: latency linear in views")
	return []*Table{tA, tB}, nil
}

// Figure7 regenerates Figure 7a (latency vs aggregates per query) and
// Figure 7b (latency vs parallel query count).
func Figure7(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	spec := dataset.SYN()
	spec = spec.WithRows(cfg.rowsFor(spec))

	naggSweep := []int{1, 2, 5, 10, 20}
	if cfg.Quick {
		naggSweep = []int{1, 2, 5, 10}
	}
	tA := &Table{
		ID:     "figure7a",
		Title:  "Latency vs number of aggregates per query (SYN, SHARING, single group-by)",
		Header: []string{"nagg", "ROW", "COL"},
	}
	var dbs [2]*sqldb.DB
	for li, layout := range []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol} {
		db, err := build(spec, layout)
		if err != nil {
			return nil, err
		}
		dbs[li] = db
	}
	req := requestFor(spec)
	for _, nagg := range naggSweep {
		var lat [2]time.Duration
		for li := range dbs {
			opts := core.Options{
				Strategy:              core.Sharing,
				GroupBy:               core.GroupBySingle,
				GroupBySet:            true,
				MaxAggregatesPerQuery: nagg,
				K:                     10,
				Parallelism:           cfg.Parallelism,
			}
			d, _, err := timeRecommend(ctx, newEngine(dbs[li]), req, opts)
			if err != nil {
				return nil, err
			}
			lat[li] = d
		}
		tA.AddRow(fmt.Sprintf("%d", nagg), ms(lat[0]), ms(lat[1]))
	}
	tA.Notes = append(tA.Notes, "paper: latency falls with nagg, sub-linearly; ~4x ROW / ~3x COL from nagg=1 to 20")

	parSweep := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		parSweep = []int{1, 2, 4, 8}
	}
	tB := &Table{
		ID:     "figure7b",
		Title:  fmt.Sprintf("Latency vs parallel queries (SYN, COL store, %d cores)", runtime.GOMAXPROCS(0)),
		Header: []string{"parallelism", "COL", "ROW"},
	}
	for _, par := range parSweep {
		var lat [2]time.Duration
		for li := range dbs {
			opts := core.Options{
				Strategy:                core.Sharing,
				GroupBy:                 core.GroupBySingle,
				GroupBySet:              true,
				DisableCombineTargetRef: true, // more, smaller queries: parallelism matters
				Parallelism:             par,
				K:                       10,
			}
			d, _, err := timeRecommend(ctx, newEngine(dbs[li]), req, opts)
			if err != nil {
				return nil, err
			}
			lat[li] = d
		}
		tB.AddRow(fmt.Sprintf("%d", par), ms(lat[1]), ms(lat[0]))
	}
	tB.Notes = append(tB.Notes, "paper: gains up to ≈ number of cores, degradation beyond")
	return []*Table{tA, tB}, nil
}

// Figure8 regenerates Figure 8a (group-by width vs latency under the
// memory budget) and Figure 8b (bin packing vs the MAX_GB baseline).
func Figure8(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()

	tA := &Table{
		ID:     "figure8a",
		Title:  "Latency vs number of group-by attributes per query (SYN*)",
		Header: []string{"ngb", "SYN*-10 ROW", "SYN*-10 COL", "SYN*-100 ROW", "SYN*-100 COL", "maxgroups-10", "maxgroups-100"},
	}
	ngbSweep := []int{1, 2, 3, 4, 5, 6}
	if cfg.Quick {
		ngbSweep = []int{1, 2, 3, 4, 5}
	}
	type cell struct {
		lat    time.Duration
		groups int
	}
	results := make(map[string]cell)
	for _, distinct := range []int{10, 100} {
		spec := dataset.SYNStar(distinct)
		spec = spec.WithRows(cfg.rowsFor(spec))
		for _, layout := range []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol} {
			db, err := build(spec, layout)
			if err != nil {
				return nil, err
			}
			eng := newEngine(db)
			req := requestFor(spec)
			for _, ngb := range ngbSweep {
				opts := core.Options{
					Strategy:    core.Sharing,
					GroupBy:     core.GroupByMaxN,
					GroupBySet:  true,
					MaxGroupBy:  ngb,
					K:           10,
					Parallelism: cfg.Parallelism,
				}
				d, res, err := timeRecommend(ctx, eng, req, opts)
				if err != nil {
					return nil, err
				}
				results[fmt.Sprintf("%d/%v/%d", distinct, layout, ngb)] = cell{d, res.Metrics.MaxGroups}
			}
		}
	}
	for _, ngb := range ngbSweep {
		r10 := results[fmt.Sprintf("10/ROW/%d", ngb)]
		c10 := results[fmt.Sprintf("10/COL/%d", ngb)]
		r100 := results[fmt.Sprintf("100/ROW/%d", ngb)]
		c100 := results[fmt.Sprintf("100/COL/%d", ngb)]
		tA.AddRow(fmt.Sprintf("%d", ngb),
			ms(r10.lat), ms(c10.lat), ms(r100.lat), ms(c100.lat),
			fmt.Sprintf("%d", r10.groups), fmt.Sprintf("%d", r100.groups))
	}
	tA.Notes = append(tA.Notes,
		"paper: latency dips then rises once distinct groups exceed the memory budget (ROW ~1e4, COL ~1e2)")

	// Figure 8b: MAX_GB sweep vs BP on SYN.
	spec := dataset.SYN()
	spec = spec.WithRows(cfg.rowsFor(spec))
	tB := &Table{
		ID:     "figure8b",
		Title:  "MAX_GB vs bin-packed grouping (SYN)",
		Header: []string{"method", "ROW", "COL", "ROW-maxgroups", "COL-maxgroups"},
	}
	var dbs [2]*sqldb.DB
	for li, layout := range []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol} {
		db, err := build(spec, layout)
		if err != nil {
			return nil, err
		}
		dbs[li] = db
	}
	req := requestFor(spec)
	maxGBs := []int{1, 2, 3, 5}
	if cfg.Quick {
		maxGBs = []int{1, 2, 3}
	}
	for _, ngb := range maxGBs {
		var lat [2]time.Duration
		var grp [2]int
		for li := range dbs {
			opts := core.Options{
				Strategy: core.Sharing, GroupBy: core.GroupByMaxN, GroupBySet: true,
				MaxGroupBy: ngb, K: 10, Parallelism: cfg.Parallelism,
			}
			d, res, err := timeRecommend(ctx, newEngine(dbs[li]), req, opts)
			if err != nil {
				return nil, err
			}
			lat[li], grp[li] = d, res.Metrics.MaxGroups
		}
		tB.AddRow(fmt.Sprintf("MAX_GB(%d)", ngb), ms(lat[0]), ms(lat[1]),
			fmt.Sprintf("%d", grp[0]), fmt.Sprintf("%d", grp[1]))
	}
	var lat [2]time.Duration
	var grp [2]int
	for li, layout := range []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol} {
		budget := core.DefaultRowMemoryBudget
		if layout == sqldb.LayoutCol {
			budget = core.DefaultColMemoryBudget
		}
		opts := core.Options{
			Strategy: core.Sharing, GroupBy: core.GroupByBinPack, GroupBySet: true,
			MemoryBudget: budget, K: 10, Parallelism: cfg.Parallelism,
		}
		d, res, err := timeRecommend(ctx, newEngine(dbs[li]), req, opts)
		if err != nil {
			return nil, err
		}
		lat[li], grp[li] = d, res.Metrics.MaxGroups
	}
	tB.AddRow("BP", ms(lat[0]), ms(lat[1]), fmt.Sprintf("%d", grp[0]), fmt.Sprintf("%d", grp[1]))
	tB.Notes = append(tB.Notes,
		"paper: BP respects the budget and beats MAX_GB (~2.5x on ROW); COL gains little (small budget → single-attribute groups)")
	return []*Table{tA, tB}, nil
}

// Figure9 regenerates Figures 9a and 9b: all sharing optimizations
// together vs the basic framework, as dataset size grows.
func Figure9(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	base := dataset.SYN()
	rowSweep := []int{250_000, 500_000, 1_000_000}
	if !cfg.PaperScale {
		rowSweep = []int{10_000, 25_000, 50_000}
		if cfg.Quick {
			rowSweep = []int{5_000, 10_000, 20_000}
		}
	}
	// Moderate view space so NO_OPT stays tractable.
	dims, meas := base.DimNames()[:10], base.MeasureNames()[:10]

	var out []*Table
	for li, layout := range []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol} {
		t := &Table{
			ID:     fmt.Sprintf("figure9%c", 'a'+li),
			Title:  fmt.Sprintf("All sharing optimizations (%s store, SYN, 100 views)", layout),
			Header: []string{"rows", "NO_OPT", "SHARING", "speedup"},
		}
		for _, rows := range rowSweep {
			spec := base.WithRows(rows)
			db, err := build(spec, layout)
			if err != nil {
				return nil, err
			}
			eng := newEngine(db)
			req := requestFor(spec)
			req.Dimensions, req.Measures = dims, meas
			dNo, _, err := timeRecommend(ctx, eng, req, core.Options{Strategy: core.NoOpt, K: 10})
			if err != nil {
				return nil, err
			}
			dSh, _, err := timeRecommend(ctx, eng, req, core.Options{Strategy: core.Sharing, K: 10, Parallelism: cfg.Parallelism})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", rows), ms(dNo), ms(dSh), speedup(dNo, dSh))
		}
		t.Notes = append(t.Notes, "paper: up to 40x on ROW, 6x on COL; sharing pays off most on large row-store tables")
		out = append(out, t)
	}
	return out, nil
}
