package bench

import (
	"context"
	"fmt"

	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/study"
)

// studyDims returns the view dimensions for the user-study experiments:
// the selector (query) attribute is excluded even when the spec keeps it
// in the general view space — grouping by the attribute the query
// conditions on yields degenerate single-group charts no analyst would
// call a finding.
func studyDims(spec dataset.Spec) []string {
	var out []string
	for _, d := range spec.ViewDimNames() {
		if d != spec.Selector().Name {
			out = append(out, d)
		}
	}
	return out
}

// interestMapFor builds the ground-truth interestingness map (view key →
// planted intended utility) for a dataset's study view space.
func interestMapFor(spec dataset.Spec) map[string]float64 {
	interest := make(map[string]float64)
	for _, d := range studyDims(spec) {
		for _, m := range spec.MeasureNames() {
			v := core.View{Dimension: d, Measure: m, Agg: core.AggAvg}
			interest[v.Key()] = spec.IntendedUtility(d, m)
		}
	}
	return interest
}

// rankedViewKeys returns the oracle's deviation ranking as view keys.
func rankedViewKeys(oracle *core.Result) []string {
	out := make([]string, len(oracle.AllViews))
	for i, r := range oracle.AllViews {
		out[i] = r.View.Key()
	}
	return out
}

// Figure15 regenerates Figures 15a and 15b: the expert-vote heatmap over
// the deviation ranking, and the ROC curve with AUROC, for the census
// study task.
func Figure15(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	spec := dataset.Census()
	spec = spec.WithRows(cfg.rowsFor(spec))
	db, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	req := requestFor(spec)
	req.Dimensions = studyDims(spec)
	oracle, err := oracleFor(ctx, db, req, spec.NumViews())
	if err != nil {
		return nil, err
	}
	ranked := rankedViewKeys(oracle)
	interest := interestMapFor(spec)
	// Panel threshold calibrated so the majority labels ≈10-15% of views
	// interesting, the fraction the paper's expert panel produced (6/48).
	labels := study.SimulateLabels(study.PanelConfig{Seed: cfg.Seed, Threshold: 0.15}, interest)

	nInteresting := 0
	for _, yes := range labels.Interesting {
		if yes {
			nInteresting++
		}
	}

	// Figure 15a: votes by utility rank.
	heat := study.Heatmap(ranked, labels)
	tA := &Table{
		ID:     "figure15a",
		Title:  fmt.Sprintf("Expert votes by utility rank (census; %d/%d views interesting by majority of %d experts)", nInteresting, len(ranked), labels.Experts),
		Header: []string{"rank", "view", "utility", "votes", "interesting"},
	}
	for i, key := range ranked {
		yes := ""
		if labels.Interesting[key] {
			yes = "yes"
		}
		tA.AddRow(fmt.Sprintf("%d", i+1), oracle.AllViews[i].View.String(),
			f4(oracle.AllViews[i].Utility), fmt.Sprintf("%d", heat[i]), yes)
	}
	tA.Notes = append(tA.Notes, "paper: popular (high-vote) views concentrate at the top of the utility ordering; ~6 of 48 views interesting")

	// Figure 15b: ROC.
	points := study.ROC(ranked, labels.Interesting)
	auroc := study.AUROC(points)
	tB := &Table{
		ID:     "figure15b",
		Title:  fmt.Sprintf("ROC of deviation ranking vs ground truth (census) — AUROC %.3f", auroc),
		Header: []string{"k", "TPR", "FPR"},
	}
	for _, p := range points {
		if p.K%3 == 0 || p.K <= 6 || p.K == len(ranked) {
			tB.AddRow(fmt.Sprintf("%d", p.K), f3(p.TPR), f3(p.FPR))
		}
	}
	tB.Notes = append(tB.Notes,
		"paper: AUROC 0.903 (above 0.9 is excellent); e.g. k=3 → TPR 0.5, FPR 0",
		"false positives are views with high deviation the experts did not care about — the paper observed the same (Figure 14c)")
	return []*Table{tA, tB}, nil
}

// Table2 regenerates Table 2: SEEDB vs MANUAL bookmarking behaviour over
// the Housing and Movies study datasets with 16 simulated analysts.
func Table2(ctx context.Context, cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "table2",
		Title:  "Aggregate visualizations: bookmarking behaviour (16 simulated analysts, 8-minute sessions)",
		Header: []string{"dataset", "tool", "total_viz", "num_bookmarks", "bookmark_rate"},
	}
	var pooled [2][]study.ToolStats
	for _, name := range []string{"housing", "movies"} {
		spec, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		spec = spec.WithRows(cfg.rowsFor(spec))
		db, err := build(spec, sqldb.LayoutCol)
		if err != nil {
			return nil, err
		}
		req := requestFor(spec)
		req.Dimensions = studyDims(spec)
		oracle, err := oracleFor(ctx, db, req, spec.NumViews())
		if err != nil {
			return nil, err
		}
		seedbStats, manualStats := study.SimulateStudy(
			study.StudyConfig{Seed: cfg.Seed}, rankedViewKeys(oracle), interestMapFor(spec))
		pooled[0] = append(pooled[0], seedbStats)
		pooled[1] = append(pooled[1], manualStats)
		for _, s := range []study.ToolStats{manualStats, seedbStats} {
			t.AddRow(name, s.Tool,
				fmt.Sprintf("%.1f ± %.2f", s.TotalViz, s.TotalVizSD),
				fmt.Sprintf("%.1f ± %.2f", s.Bookmarks, s.BookmarksSD),
				fmt.Sprintf("%.2f ± %.2f", s.BookmarkRate, s.BookmarkRateSD))
		}
	}
	// Pooled rows, the form Table 2 reports.
	for i, tool := range []string{"SEEDB", "MANUAL"} {
		var viz, book, rate float64
		for _, s := range pooled[i] {
			viz += s.TotalViz
			book += s.Bookmarks
			rate += s.BookmarkRate
		}
		n := float64(len(pooled[i]))
		t.AddRow("pooled", tool,
			fmt.Sprintf("%.1f", viz/n), fmt.Sprintf("%.1f", book/n), fmt.Sprintf("%.2f", rate/n))
	}
	t.Notes = append(t.Notes,
		"paper: MANUAL 6.3 viz / 1.1 bookmarks / 0.14 rate; SEEDB 10.8 / 3.5 / 0.43 (≈3x bookmark rate)")
	return []*Table{t}, nil
}
