package bench

import (
	"context"
	"testing"
	"time"

	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// TestTracingDisabledOverheadBound guards the telemetry acceptance bar:
// with no trace attached to the context, the always-compiled tracing
// hooks must cost under 2% of a filter-bench query. Untraced,
// StartSpan is one context lookup returning a nil span whose methods
// are no-ops — the test measures that per-hook cost directly and bounds
// a generous per-query hook budget against the query's own runtime.
func TestTracingDisabledOverheadBound(t *testing.T) {
	db, err := buildFilterTable(60_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sql := "SELECT bucket, COUNT(*), SUM(m), MIN(m), MAX(m) FROM filt WHERE sel < 0.5 AND dim != 'd00' GROUP BY bucket"
	var queryDur time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := db.QueryOpts(sql, sqldb.ExecOptions{Ctx: ctx, Workers: 2}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); queryDur == 0 || d < queryDur {
			queryDur = d
		}
	}

	// Per-hook cost of the disabled path: StartSpan + End on a context
	// carrying no trace.
	const hooks = 1_000_000
	start := time.Now()
	for i := 0; i < hooks; i++ {
		hctx, sp := telemetry.StartSpan(ctx, "bench")
		sp.End()
		ctx = hctx // keep the loop's result live
	}
	perHook := time.Since(start) / hooks

	// One executed query passes a handful of hooks (query, cache.do,
	// sqldb.plan, sqldb.scan, sqldb.finalize, plus backend wrappers);
	// budget 32 per query, several times the real count.
	overhead := 32 * perHook
	if limit := queryDur / 50; overhead > limit {
		t.Errorf("disabled tracing overhead %v (32 hooks at %v) exceeds 2%% of the %v filter query",
			overhead, perHook, queryDur)
	}
}

// TestTracingSampledOverheadBound guards the always-on sampling
// acceptance bar: 1% head sampling must cost under 5% on the
// cached-Recommend hot path. One in a hundred requests pays the full
// span-tree cost, every request pays one sampling decision — so the
// amortized per-request overhead is the decision plus 1% of the
// traced-vs-untraced delta, bounded against the untraced cache hit.
func TestTracingSampledOverheadBound(t *testing.T) {
	spec, err := dataset.ByName("syn")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.WithRows(10_000)
	db, err := build(spec, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(db)
	req := requestFor(spec)
	opts := core.Options{Strategy: core.Sharing, K: 5, EnableCache: true}
	ctx := context.Background()
	if _, err := eng.Recommend(ctx, req, opts); err != nil {
		t.Fatal(err) // cold run warms the whole-request cache
	}

	best := func(traced bool) time.Duration {
		var b time.Duration
		for i := 0; i < 7; i++ {
			rctx := ctx
			var tr *telemetry.Trace
			if traced {
				rctx, tr = telemetry.WithTrace(ctx, "request")
			}
			start := time.Now()
			if _, err := eng.Recommend(rctx, req, opts); err != nil {
				t.Fatal(err)
			}
			d := time.Since(start)
			if tr != nil {
				tr.Finish()
			}
			if b == 0 || d < b {
				b = d
			}
		}
		return b
	}
	plain := best(false)
	traced := best(true)

	// Per-request cost of the sampling decision itself.
	const decisions = 1_000_000
	sampled := 0
	start := time.Now()
	for i := 0; i < decisions; i++ {
		if telemetry.ShouldSample(0.01) {
			sampled++
		}
	}
	perDecision := time.Since(start) / decisions
	if sampled == 0 || sampled == decisions {
		t.Fatalf("ShouldSample(0.01) hit %d of %d decisions", sampled, decisions)
	}

	var delta time.Duration
	if traced > plain {
		delta = traced - plain
	}
	amortized := perDecision + delta/100
	if limit := plain / 20; amortized > limit {
		t.Errorf("1%% head sampling costs %v per request (decision %v + 1%% of %v trace delta), over 5%% of the %v cached hot path",
			amortized, perDecision, delta, plain)
	}
}
