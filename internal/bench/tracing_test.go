package bench

import (
	"context"
	"testing"
	"time"

	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// TestTracingDisabledOverheadBound guards the telemetry acceptance bar:
// with no trace attached to the context, the always-compiled tracing
// hooks must cost under 2% of a filter-bench query. Untraced,
// StartSpan is one context lookup returning a nil span whose methods
// are no-ops — the test measures that per-hook cost directly and bounds
// a generous per-query hook budget against the query's own runtime.
func TestTracingDisabledOverheadBound(t *testing.T) {
	db, err := buildFilterTable(60_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sql := "SELECT bucket, COUNT(*), SUM(m), MIN(m), MAX(m) FROM filt WHERE sel < 0.5 AND dim != 'd00' GROUP BY bucket"
	var queryDur time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := db.QueryOpts(sql, sqldb.ExecOptions{Ctx: ctx, Workers: 2}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); queryDur == 0 || d < queryDur {
			queryDur = d
		}
	}

	// Per-hook cost of the disabled path: StartSpan + End on a context
	// carrying no trace.
	const hooks = 1_000_000
	start := time.Now()
	for i := 0; i < hooks; i++ {
		hctx, sp := telemetry.StartSpan(ctx, "bench")
		sp.End()
		ctx = hctx // keep the loop's result live
	}
	perHook := time.Since(start) / hooks

	// One executed query passes a handful of hooks (query, cache.do,
	// sqldb.plan, sqldb.scan, sqldb.finalize, plus backend wrappers);
	// budget 32 per query, several times the real count.
	overhead := 32 * perHook
	if limit := queryDur / 50; overhead > limit {
		t.Errorf("disabled tracing overhead %v (32 hooks at %v) exceeds 2%% of the %v filter query",
			overhead, perHook, queryDur)
	}
}
