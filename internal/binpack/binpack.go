// Package binpack solves SeeDB's Optimal Grouping problem (Problem 4.1 in
// the paper): partition dimension attributes into groups such that any
// multi-attribute GROUP BY over one group stays under the engine's memory
// budget.
//
// The reduction (Section 4.1): each attribute a_i becomes an item of
// weight log|a_i| and the bin capacity is log B, where |a_i| is the
// attribute's distinct-value count and B the budget on distinct groups.
// Packing items into bins then bounds Π|a_i| ≤ B per bin. The paper (and
// this package) uses the classic first-fit heuristic; first-fit-decreasing
// is provided as well since it usually packs tighter.
package binpack

import (
	"math"
	"sort"
)

// Item is one attribute to pack.
type Item struct {
	// ID is an opaque caller identifier (e.g. the attribute's index).
	ID int
	// Weight is the item's size; for SeeDB this is log(distinct count).
	Weight float64
}

// Bin is one packed group of items.
type Bin struct {
	Items  []Item
	Weight float64 // sum of item weights
}

// FirstFit packs items into bins of the given capacity using the
// first-fit heuristic: each item goes into the first bin it fits in, or
// opens a new bin. Items whose weight exceeds the capacity get singleton
// bins (SeeDB must still execute a single-attribute GROUP BY even when
// one attribute alone overflows the budget). Items are processed in the
// order given, matching the paper's use of "the standard first-fit
// algorithm".
func FirstFit(items []Item, capacity float64) []Bin {
	var bins []Bin
	for _, it := range items {
		if it.Weight > capacity {
			bins = append(bins, Bin{Items: []Item{it}, Weight: it.Weight})
			continue
		}
		placed := false
		for i := range bins {
			// Oversized singleton bins never accept more items.
			if bins[i].Weight > capacity {
				continue
			}
			if bins[i].Weight+it.Weight <= capacity {
				bins[i].Items = append(bins[i].Items, it)
				bins[i].Weight += it.Weight
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, Bin{Items: []Item{it}, Weight: it.Weight})
		}
	}
	return bins
}

// FirstFitDecreasing sorts items by descending weight before first-fit,
// the classic 11/9·OPT + 1 heuristic. Ties break on ascending ID so the
// packing is deterministic.
func FirstFitDecreasing(items []Item, capacity float64) []Bin {
	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		return sorted[i].ID < sorted[j].ID
	})
	return FirstFit(sorted, capacity)
}

// PackAttributes is the SeeDB-facing entry point: given per-attribute
// distinct-value counts and a budget B on distinct groups per query, it
// returns groups of attribute indices such that the product of distinct
// counts within each group is at most B (except unavoidable singletons
// whose own cardinality exceeds B). Distinct counts below 1 are treated
// as 1.
func PackAttributes(distinctCounts []int, budget int) [][]int {
	if budget < 1 {
		budget = 1
	}
	items := make([]Item, len(distinctCounts))
	for i, d := range distinctCounts {
		if d < 1 {
			d = 1
		}
		items[i] = Item{ID: i, Weight: math.Log(float64(d))}
	}
	bins := FirstFitDecreasing(items, math.Log(float64(budget)))
	out := make([][]int, len(bins))
	for i, b := range bins {
		ids := make([]int, len(b.Items))
		for j, it := range b.Items {
			ids[j] = it.ID
		}
		sort.Ints(ids)
		out[i] = ids
	}
	return out
}
