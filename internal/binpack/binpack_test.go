package binpack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFirstFitBasic(t *testing.T) {
	items := []Item{{0, 4}, {1, 3}, {2, 2}, {3, 5}, {4, 1}}
	bins := FirstFit(items, 6)
	// First-fit order: [4] -> bin0(4); [3] -> bin0? 4+3>6, bin1(3);
	// [2] -> bin0 (6); [5] -> bin2; [1] -> bin1 (4).
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3: %+v", len(bins), bins)
	}
	if bins[0].Weight != 6 || bins[1].Weight != 4 || bins[2].Weight != 5 {
		t.Errorf("bin weights = %v %v %v", bins[0].Weight, bins[1].Weight, bins[2].Weight)
	}
}

func TestFirstFitOversizedItemGetsSingleton(t *testing.T) {
	bins := FirstFit([]Item{{0, 10}, {1, 2}}, 5)
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
	if len(bins[0].Items) != 1 || bins[0].Items[0].ID != 0 {
		t.Errorf("oversized item should be alone: %+v", bins[0])
	}
	// The oversized bin must not accept later items.
	bins = FirstFit([]Item{{0, 10}, {1, 1}, {2, 1}}, 5)
	for _, b := range bins {
		if b.Weight > 5 && len(b.Items) > 1 {
			t.Errorf("oversized bin accepted extra items: %+v", b)
		}
	}
}

func TestFirstFitDecreasingDeterministicTies(t *testing.T) {
	a := FirstFitDecreasing([]Item{{2, 1}, {0, 1}, {1, 1}}, 2)
	b := FirstFitDecreasing([]Item{{0, 1}, {1, 1}, {2, 1}}, 2)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic bin count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Items) != len(b[i].Items) {
			t.Fatalf("nondeterministic packing")
		}
		for j := range a[i].Items {
			if a[i].Items[j].ID != b[i].Items[j].ID {
				t.Errorf("tie-break unstable: %+v vs %+v", a[i].Items, b[i].Items)
			}
		}
	}
}

func TestPackingValidityProperty(t *testing.T) {
	// Property: every input item appears in exactly one bin, and no bin
	// of non-oversized items exceeds capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: i, Weight: rng.Float64() * 10}
		}
		capacity := 1 + rng.Float64()*9
		for _, pack := range [][]Bin{FirstFit(items, capacity), FirstFitDecreasing(items, capacity)} {
			seen := make(map[int]bool)
			for _, b := range pack {
				var w float64
				for _, it := range b.Items {
					if seen[it.ID] {
						return false // duplicated item
					}
					seen[it.ID] = true
					w += it.Weight
				}
				if math.Abs(w-b.Weight) > 1e-9 {
					return false // weight bookkeeping broken
				}
				if w > capacity+1e-9 && len(b.Items) > 1 {
					return false // over-capacity multi-item bin
				}
			}
			if len(seen) != n {
				return false // lost an item
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFFDNeverWorseThanFF(t *testing.T) {
	// FFD is not universally better item-by-item, but on random
	// instances it should never use more bins than plain FF does on the
	// same (sorted) instance; here we just sanity-check it stays within
	// FF's bin count on many random instances.
	rng := rand.New(rand.NewSource(3))
	worse := 0
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(30)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: i, Weight: rng.Float64() * 5}
		}
		ff := FirstFit(items, 5)
		ffd := FirstFitDecreasing(items, 5)
		if len(ffd) > len(ff) {
			worse++
		}
	}
	if worse > 5 {
		t.Errorf("FFD used more bins than FF in %d/100 trials", worse)
	}
}

func TestPackAttributesRespectsBudget(t *testing.T) {
	distinct := []int{10, 10, 10, 100, 1000, 2, 5}
	const budget = 1000
	groups := PackAttributes(distinct, budget)
	covered := make(map[int]bool)
	for _, g := range groups {
		prod := 1.0
		for _, idx := range g {
			covered[idx] = true
			prod *= float64(distinct[idx])
		}
		if prod > budget*1.000001 && len(g) > 1 {
			t.Errorf("group %v has %g distinct-group product > budget %d", g, prod, budget)
		}
	}
	if len(covered) != len(distinct) {
		t.Errorf("covered %d of %d attributes", len(covered), len(distinct))
	}
}

func TestPackAttributesSingletonOverBudget(t *testing.T) {
	groups := PackAttributes([]int{5000, 2}, 1000)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(groups), groups)
	}
}

func TestPackAttributesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		distinct := make([]int, n)
		for i := range distinct {
			distinct[i] = 1 + rng.Intn(500)
		}
		budget := 1 + rng.Intn(10000)
		groups := PackAttributes(distinct, budget)
		covered := make(map[int]bool)
		for _, g := range groups {
			prod := 1.0
			for _, idx := range g {
				if covered[idx] {
					return false
				}
				covered[idx] = true
				prod *= float64(distinct[idx])
			}
			if len(g) > 1 && prod > float64(budget)*(1+1e-9) {
				return false
			}
		}
		return len(covered) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackAttributesDegenerateInputs(t *testing.T) {
	if got := PackAttributes(nil, 100); len(got) != 0 {
		t.Errorf("nil input should pack to zero groups, got %v", got)
	}
	// Budget below 1 is clamped; zero/negative distinct counts treated
	// as 1.
	groups := PackAttributes([]int{0, -5, 3}, 0)
	covered := 0
	for _, g := range groups {
		covered += len(g)
	}
	if covered != 3 {
		t.Errorf("degenerate inputs: covered %d of 3", covered)
	}
}

func TestPackAttributesCombinesSmallAttributes(t *testing.T) {
	// Ten attributes of 10 distinct values under budget 10^4 should pack
	// into groups of 4 (10^4 each), i.e. 3 bins — far fewer than 10.
	distinct := make([]int, 10)
	for i := range distinct {
		distinct[i] = 10
	}
	groups := PackAttributes(distinct, 10000)
	if len(groups) != 3 {
		t.Errorf("got %d groups, want 3: %v", len(groups), groups)
	}
}
