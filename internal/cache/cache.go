// Package cache implements the shared result-cache subsystem that lets
// SeeDB reuse work *across* requests, sessions and users — the
// complement of the paper's sharing optimizations, which only
// deduplicate work within a single Recommend invocation.
//
// The subsystem has three cooperating pieces:
//
//   - A byte-budgeted LRU memoization cache (Cache) with cost-aware
//     admission: entries are keyed by opaque strings that embed a dataset
//     version token, so a version bump makes every stale entry
//     unreachable (it then ages out under LRU pressure) without any
//     synchronous invalidation scan.
//   - Singleflight request collapsing (Do): N concurrent computations of
//     the same key execute the underlying work exactly once and share
//     the result.
//   - A reference-view store (RefStore, refstore.go) that materializes
//     full-table (dimension, measure, aggregate) distributions once and
//     serves them to every later request regardless of its target
//     predicate.
//
// Values stored in the cache are shared between goroutines and MUST be
// treated as immutable by all readers; callers that need to mutate a
// cached value must deep-copy it first.
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"seedb/internal/telemetry"
)

// DefaultBudgetBytes is the cache byte budget when none is configured.
const DefaultBudgetBytes = 64 << 20

// Outcome reports how a Do call obtained its value.
type Outcome int

const (
	// Computed: this caller executed the compute function itself.
	Computed Outcome = iota
	// Hit: the value was already cached.
	Hit
	// Shared: a concurrent caller was already computing the same key and
	// the result was shared via singleflight.
	Shared
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "unknown"
	}
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	// Hits and Misses count Get/Do lookups.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Shared counts singleflight followers: lookups that neither hit the
	// cache nor executed work, because a concurrent identical computation
	// was already in flight.
	Shared uint64 `json:"shared"`
	// Evictions counts entries removed under LRU byte pressure.
	Evictions uint64 `json:"evictions"`
	// Rejected counts entries refused by the admission policy.
	Rejected uint64 `json:"rejected"`
	// Entries and Bytes describe current occupancy.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// BudgetBytes is the configured byte budget.
	BudgetBytes int64 `json:"budget_bytes"`
}

// Cache is a byte-budgeted LRU memoization cache with singleflight
// request collapsing. It is safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	// maxEntry caps any single entry so one huge result cannot flush the
	// whole cache.
	maxEntry int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, shared uint64
	evictions, rejected  uint64

	flights flightGroup
}

// entry is one cached key/value pair.
type entry struct {
	key   string
	val   any
	bytes int64
}

// New creates a cache with the given byte budget (<= 0 selects
// DefaultBudgetBytes).
func New(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	return &Cache{
		budget:   budgetBytes,
		maxEntry: budgetBytes / 4,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put inserts (or replaces) key with a value of the given estimated size,
// recording how long the value took to compute. It reports whether the
// entry was admitted.
//
// Admission is cost-aware: an entry is admitted only when it fits the
// per-entry cap (budget/4) and, for bulky entries, when the recompute
// cost justifies the space — results that are large but nearly free to
// recompute are not worth evicting hotter entries for. The cost floor is
// linear in size: 100µs per megabyte, with no floor below 64KiB (small
// entries are always worth keeping). A zero cost is treated as unknown
// and admitted on size alone.
func (c *Cache) Put(key string, val any, size int64, cost time.Duration) bool {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxEntry || !c.admissible(size, cost) {
		c.rejected++
		return false
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.bytes
		e.val, e.bytes = val, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, bytes: size})
		c.bytes += size
	}
	for c.bytes > c.budget {
		el := c.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*entry)
		if e.key == key {
			// Never evict the entry just inserted.
			break
		}
		c.removeLocked(el)
		c.evictions++
	}
	return true
}

// admissible applies the cost floor for bulky entries.
func (c *Cache) admissible(size int64, cost time.Duration) bool {
	const (
		smallEntry = 64 << 10
		costPerMB  = 100 * time.Microsecond
	)
	if size <= smallEntry || cost <= 0 {
		return true
	}
	floor := time.Duration(size) * costPerMB / (1 << 20)
	return cost >= floor
}

// Do returns the value for key, computing it at most once across
// concurrent callers: a cached value is returned immediately (Hit);
// otherwise one caller runs compute and admits the result (Computed)
// while concurrent duplicates block and share it (Shared).
//
// size estimates the byte footprint of a computed value for admission
// and budgeting; a negative size marks the value do-not-admit (it is
// returned to this flight's callers but never stored). Errors are not
// cached; every Do after a failure retries the computation. ctx governs only this caller's waiting: a follower
// whose own context dies stops waiting and returns ctx.Err(), while a
// follower that inherits the *leader's* context-cancellation error (the
// leader's client hung up, not the follower's) retries with its own
// compute function rather than failing an innocent caller. A nil ctx is
// treated as context.Background().
//
// compute receives a context derived from ctx that carries the lookup's
// "cache.do" telemetry span, so work performed under the cache attaches
// its own spans beneath the lookup rather than floating beside it. When
// ctx carries no trace the derived context is ctx itself.
func (c *Cache) Do(ctx context.Context, key string, size func(v any) int64, compute func(ctx context.Context) (any, error)) (any, Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sctx, sp := telemetry.StartSpan(ctx, "cache.do")
	defer sp.End()
	if v, ok := c.Get(key); ok {
		sp.SetAttr("outcome", Hit.String())
		return v, Hit, nil
	}
	v, sharedFlight, err := c.flights.do(ctx, key, func() (any, error) {
		start := time.Now()
		v, err := compute(sctx)
		if err != nil {
			return nil, err
		}
		if sz := size(v); sz < 0 {
			// A negative size is the compute's do-not-admit signal: the
			// value is valid for this caller (and any followers sharing
			// the flight) but must not persist — degraded shard results
			// use this, since partial coverage would poison every later
			// reader.
			sp.SetAttr("filled", "uncacheable")
		} else if !c.Put(key, v, sz, time.Since(start)) {
			sp.SetAttr("filled", "rejected")
		}
		return v, nil
	})
	if sharedFlight {
		// The lookup was collapsed, not missed: reclassify the miss the
		// initial Get recorded so operators see one miss per actual
		// computation.
		c.mu.Lock()
		c.misses--
		c.shared++
		c.mu.Unlock()
	}
	if err != nil {
		if sharedFlight && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The leader's context died, not ours. Retry: we either find
			// the value, become the new leader under our own context, or
			// join a healthier flight. Recursion terminates because a
			// caller whose own computation is cancelled gets a
			// non-shared error (and a cancelled waiter fails the
			// ctx.Err() == nil guard).
			sp.SetAttr("outcome", "retry")
			sp.End()
			return c.Do(ctx, key, size, compute)
		}
		sp.SetAttr("outcome", "error")
		return nil, Computed, err
	}
	if sharedFlight {
		sp.SetAttr("outcome", Shared.String())
		return v, Shared, nil
	}
	sp.SetAttr("outcome", Computed.String())
	return v, Computed, nil
}

// Remove deletes key if present.
func (c *Cache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
}

// Clear drops every entry (counters are preserved).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Shared:      c.shared,
		Evictions:   c.evictions,
		Rejected:    c.rejected,
		Entries:     len(c.items),
		Bytes:       c.bytes,
		BudgetBytes: c.budget,
	}
}

// removeLocked unlinks one element; the caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
}
