package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	if !c.Put("a", 1, 100, 0) {
		t.Fatal("small entry rejected")
	}
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", 1, 100, 0)
	c.Put("a", 2, 300, 0)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 300 {
		t.Fatalf("after replace: %+v", st)
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("replaced value = %v, want 2", v)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1000)
	c.maxEntry = 1000 // isolate eviction from the per-entry cap
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 100, 0)
	}
	// Touch k0 so k1 is the LRU victim.
	c.Get("k0")
	c.Put("new", 99, 100, 0)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("LRU victim k1 survived")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("recently used k0 evicted")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if st.Bytes > 1000 {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
}

func TestAdmissionPerEntryCap(t *testing.T) {
	c := New(1000) // maxEntry = 250
	if c.Put("big", 1, 500, time.Second) {
		t.Fatal("oversized entry admitted")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmissionCostFloor(t *testing.T) {
	c := New(64 << 20)
	// 1MB that took 1µs to compute: cheap bulk, rejected.
	if c.Put("cheap", 1, 1<<20, time.Microsecond) {
		t.Fatal("cheap bulky entry admitted")
	}
	// Same size but expensive: admitted.
	if !c.Put("dear", 1, 1<<20, 50*time.Millisecond) {
		t.Fatal("expensive bulky entry rejected")
	}
	// Small entries are always admitted regardless of cost.
	if !c.Put("small", 1, 100, time.Nanosecond) {
		t.Fatal("small entry rejected")
	}
	// Unknown (zero) cost is admitted on size alone.
	if !c.Put("unknown", 1, 1<<20, 0) {
		t.Fatal("unknown-cost entry rejected")
	}
}

func TestDoCachesAndRetriesErrors(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	sz := func(any) int64 { return 10 }
	boom := errors.New("boom")

	_, _, err := c.Do(context.Background(), "k", sz, func(context.Context) (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Errors are not cached: the next Do computes again.
	v, out, err := c.Do(context.Background(), "k", sz, func(context.Context) (any, error) { calls++; return 7, nil })
	if err != nil || v.(int) != 7 || out != Computed {
		t.Fatalf("Do = %v, %v, %v", v, out, err)
	}
	// Now cached.
	v, out, err = c.Do(context.Background(), "k", sz, func(context.Context) (any, error) { calls++; return 8, nil })
	if err != nil || v.(int) != 7 || out != Hit {
		t.Fatalf("Do after fill = %v, %v, %v", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New(1 << 20)
	var computes atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	values := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "k", func(any) int64 { return 8 }, func(context.Context) (any, error) {
				computes.Add(1)
				close(started)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			values[i], outcomes[i] = v, out
		}(i)
	}
	<-started
	// Every other goroutine is now either blocked in the flight or about
	// to join it; give them a moment, then release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	var computed, sharedOrHit int
	for i := range outcomes {
		if values[i].(int) != 42 {
			t.Fatalf("goroutine %d got %v", i, values[i])
		}
		if outcomes[i] == Computed {
			computed++
		} else {
			sharedOrHit++
		}
	}
	if computed != 1 || sharedOrHit != n-1 {
		t.Fatalf("outcomes: %d computed, %d shared/hit; want 1, %d", computed, sharedOrHit, n-1)
	}
	// Followers are reclassified from misses to shared: one actual
	// computation → one miss.
	if st := c.Stats(); st.Misses != 1 || st.Shared != n-1 {
		t.Fatalf("stats after collapse: %+v, want 1 miss and %d shared", st, n-1)
	}
}

func TestDoFollowerRetriesOnLeaderCancellation(t *testing.T) {
	c := New(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	sz := func(any) int64 { return 8 }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Leader: its context is cancelled mid-flight, so its compute
		// fails with context.Canceled.
		_, _, err := c.Do(context.Background(), "k", sz, func(context.Context) (any, error) {
			close(leaderStarted)
			<-release
			return nil, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want context.Canceled", err)
		}
	}()
	<-leaderStarted

	var followerVal any
	var followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Follower joins the in-flight computation. The leader's
		// cancellation must not leak to it: it retries with its own
		// (healthy) compute function.
		followerVal, _, followerErr = c.Do(context.Background(), "k", sz, func(context.Context) (any, error) { return 7, nil })
	}()
	time.Sleep(20 * time.Millisecond) // let the follower join the flight
	cancel()
	close(release)
	wg.Wait()

	if followerErr != nil {
		t.Fatalf("follower inherited leader's cancellation: %v", followerErr)
	}
	if followerVal.(int) != 7 {
		t.Fatalf("follower value = %v, want 7 (own retry)", followerVal)
	}
}

func TestDoFollowerHonorsOwnCancellation(t *testing.T) {
	c := New(1 << 20)
	sz := func(any) int64 { return 8 }
	leaderStarted := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Leader: blocks until released, then succeeds.
		v, _, err := c.Do(context.Background(), "k", sz, func(context.Context) (any, error) {
			close(leaderStarted)
			<-release
			return 5, nil
		})
		if err != nil || v.(int) != 5 {
			t.Errorf("leader = %v, %v", v, err)
		}
	}()
	<-leaderStarted

	// Follower with a short deadline: it must stop waiting on the
	// in-flight leader when its own context expires, long before the
	// leader finishes.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Do(ctx, "k", sz, func(context.Context) (any, error) { return 6, nil })
	waited := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	if waited > time.Second {
		t.Fatalf("follower waited %v past its deadline", waited)
	}
	close(release)
	wg.Wait()
}

func TestDoSurvivesPanickingCompute(t *testing.T) {
	c := New(1 << 20)
	sz := func(any) int64 { return 8 }

	// A panicking leader must propagate the panic...
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic swallowed")
			}
		}()
		_, _, _ = c.Do(context.Background(), "k", sz, func(context.Context) (any, error) { panic("boom") })
	}()
	// ...and must not wedge the key: the next caller computes normally.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.Do(context.Background(), "k", sz, func(context.Context) (any, error) { return 9, nil })
		if err != nil || v.(int) != 9 {
			t.Errorf("Do after panic = %v, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("key wedged after leader panic")
	}
}

func TestVersionedKeysIsolate(t *testing.T) {
	c := New(1 << 20)
	k1 := QueryKey("t", "1.0", "SELECT a FROM t", 0, 0, false)
	k2 := QueryKey("t", "2.0", "SELECT a FROM t", 0, 0, false)
	c.Put(k1, "old", 10, 0)
	if _, ok := c.Get(k2); ok {
		t.Fatal("new version observed old entry")
	}
}

func TestNormalizeSQL(t *testing.T) {
	a := NormalizeSQL("  SELECT a,\n\tb FROM t  ;")
	b := NormalizeSQL("SELECT a, b FROM t")
	if a != b {
		t.Fatalf("normalize: %q != %q", a, b)
	}
	// Whitespace inside string literals is significant: different
	// predicate values must never normalize to the same key.
	c := NormalizeSQL("SELECT a FROM t WHERE city = 'New  York'")
	d := NormalizeSQL("SELECT a FROM t WHERE city = 'New York'")
	if c == d {
		t.Fatal("distinct string literals collapsed to one key")
	}
	if NormalizeSQL("SELECT  a FROM t WHERE city = 'New  York'") != c {
		t.Fatal("whitespace outside literals should still collapse")
	}
	// Doubled-quote escapes keep literal content intact.
	e := NormalizeSQL("SELECT a FROM t WHERE note = 'it''s  here'")
	if !contains(e, "'it''s  here'") {
		t.Fatalf("escaped literal mangled: %q", e)
	}
}

// contains avoids importing strings just for tests.
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestKeyNamespacesDisjoint(t *testing.T) {
	q := QueryKey("t", "1.0", "x", 0, 0, false)
	r := RequestKey("t", "1.0", "x", "0", "0")
	if q == r {
		t.Fatal("query and request keys collide")
	}
}

func TestRefStore(t *testing.T) {
	c := New(1 << 20)
	s := NewRefStore(c)
	if _, ok := s.Get("t", "1.0", "d", "m", "AVG"); ok {
		t.Fatal("empty store hit")
	}
	d := RefDistribution{"a": {Sum: 10, Count: 2}, "b": {Sum: 4, Count: 1}}
	if !s.Put("t", "1.0", "d", "m", "AVG", d, time.Millisecond) {
		t.Fatal("Put rejected")
	}
	got, ok := s.Get("t", "1.0", "d", "m", "AVG")
	if !ok || len(got) != 2 || got["a"].Sum != 10 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// A different version or view misses.
	if _, ok := s.Get("t", "2.0", "d", "m", "AVG"); ok {
		t.Fatal("stale version hit")
	}
	if _, ok := s.Get("t", "1.0", "d", "m", "SUM"); ok {
		t.Fatal("different agg hit")
	}
}

func TestClear(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", 1, 10, 0)
	c.Put("b", 2, 10, 0)
	c.Clear()
	if c.Len() != 0 || c.Stats().Bytes != 0 {
		t.Fatalf("after clear: len=%d stats=%+v", c.Len(), c.Stats())
	}
	// Counters survive a clear.
	if c.Stats().Misses == 0 && c.Stats().Hits == 0 {
		// Get to produce a miss, proving the cache still works.
		if _, ok := c.Get("a"); ok {
			t.Fatal("cleared entry still present")
		}
	}
}
