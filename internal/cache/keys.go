package cache

import (
	"strconv"
	"strings"
)

// Key construction. Every key embeds the dataset version token produced
// by sqldb.(*DB).TableVersion, which is what makes invalidation purely
// versioned: when a table is reloaded or appended to, new requests carry
// a new version and can never observe entries written under the old one.
// Namespace prefixes keep the three key spaces (query results, request
// results, reference views) disjoint inside one shared budget.

// sep separates key components; it cannot appear in SQL text or
// identifiers.
const sep = "\x00"

// NormalizeSQL canonicalizes generated SQL for use as a cache key:
// surrounding whitespace and a trailing semicolon are dropped and runs
// of whitespace outside string literals collapse to single spaces, so
// formatting differences do not defeat memoization. Whitespace inside
// single-quoted literals is preserved — 'New  York' and 'New York' are
// different values and must never share a key. It deliberately does not
// reorder clauses — SeeDB generates SQL deterministically, and semantic
// normalization of arbitrary SQL is not worth the risk of conflating
// distinct queries.
func NormalizeSQL(sql string) string {
	sql = strings.TrimSpace(sql)
	sql = strings.TrimSuffix(sql, ";")
	var b strings.Builder
	b.Grow(len(sql))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(sql); i++ {
		ch := sql[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				// Closes the literal; a doubled '' simply re-enters on
				// the next iteration, preserving its content verbatim.
				inStr = false
			}
			continue
		}
		switch ch {
		case ' ', '\t', '\n', '\r':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if ch == '\'' {
				inStr = true
			}
			b.WriteByte(ch)
		}
	}
	return b.String()
}

// QueryKey keys one shared view query execution: normalized SQL plus the
// table version, the scanned row range (phased execution runs the same
// SQL over different partitions), and the degraded-results opt-in. The
// last matters for singleflight, not storage: a complete-or-error
// request must never share a flight whose computation may legally
// return partial shard coverage.
func QueryKey(table, version, sql string, lo, hi int, allowPartial bool) string {
	return "q" + sep + strings.ToLower(table) + sep + version + sep +
		strconv.Itoa(lo) + sep + strconv.Itoa(hi) + sep +
		strconv.FormatBool(allowPartial) + sep + NormalizeSQL(sql)
}

// RequestKey keys one whole Recommend invocation. parts is the
// canonical, order-sensitive rendering of the request and of every
// option that can influence the result.
func RequestKey(table, version string, parts ...string) string {
	return "r" + sep + strings.ToLower(table) + sep + version + sep + strings.Join(parts, sep)
}

// refViewKey keys one materialized full-table reference distribution.
func refViewKey(table, version, dimension, measure, agg string) string {
	return "v" + sep + strings.ToLower(table) + sep + version + sep +
		dimension + sep + measure + sep + agg
}
