package cache

import "time"

// The reference-view store materializes full-table reference
// distributions. Under the paper's default reference mode (D_R = D, the
// whole table), the reference side of every candidate view is a pure
// function of the dataset — it is identical for every analyst, session
// and target predicate until the data changes. Computing it once and
// sharing it across requests removes roughly half the aggregation work
// of every cold request with a fresh predicate.
//
// Distributions are stored in mergeable partial-aggregate form (Cell)
// rather than finalized values, so the engine can seed its per-view
// accumulators directly and keep folding target-side partials on top.

// Cell is the mergeable partial-aggregate state for one group of a
// reference distribution: enough to finalize any supported aggregate
// function (AVG = Sum/Count, SUM, COUNT, MIN, MAX).
type Cell struct {
	Sum   float64
	Count float64
	Min   float64
	Max   float64
	// Seen marks that MIN/MAX observed at least one value.
	Seen bool
}

// RefDistribution maps group value → partial-aggregate cell. Stored
// distributions are shared between requests and must not be mutated.
type RefDistribution map[string]Cell

// sizeBytes estimates the memory footprint of a distribution.
func (d RefDistribution) sizeBytes() int64 {
	// Map overhead + fixed-size cell per group + key bytes.
	n := int64(48)
	for g := range d {
		n += 64 + int64(len(g))
	}
	return n
}

// RefStore is the typed facade over a shared Cache for materialized
// reference views. It shares the cache's byte budget, LRU policy and
// counters.
type RefStore struct {
	c *Cache
}

// NewRefStore wraps c.
func NewRefStore(c *Cache) *RefStore { return &RefStore{c: c} }

// Get returns the materialized full-table distribution for one
// (dimension, measure, agg) view of table at the given version.
func (s *RefStore) Get(table, version, dimension, measure, agg string) (RefDistribution, bool) {
	v, ok := s.c.Get(refViewKey(table, version, dimension, measure, agg))
	if !ok {
		return nil, false
	}
	return v.(RefDistribution), true
}

// Put stores a freshly materialized distribution. cost is how long the
// distribution took to compute (it feeds the cache's cost-aware
// admission); pass 0 when unknown.
func (s *RefStore) Put(table, version, dimension, measure, agg string, d RefDistribution, cost time.Duration) bool {
	return s.c.Put(refViewKey(table, version, dimension, measure, agg), d, d.sizeBytes(), cost)
}
