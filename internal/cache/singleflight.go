package cache

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup collapses concurrent executions of the same key into one:
// the first caller runs fn, every concurrent duplicate blocks until that
// execution finishes and shares its outcome. Completed flights are
// forgotten immediately, so sequential calls each execute (the LRU cache
// in front of the group provides cross-call reuse).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight execution. done is closed when the leader
// finishes (successfully, with an error, or by panicking).
type flightCall struct {
	done chan struct{}
	val  any
	err  error
	// panicked holds the recovered panic value when fn panicked; the
	// panic is re-raised in the leader and every follower.
	panicked any
}

// flightPanic wraps a recovered panic value so re-raising it keeps the
// original value visible.
type flightPanic struct{ value any }

func (p flightPanic) String() string {
	return fmt.Sprintf("cache: singleflight leader panicked: %v", p.value)
}

// do executes fn under singleflight semantics for key. shared reports
// whether the outcome came (or would have come) from another caller's
// execution.
//
// A follower waits for the leader only as long as its own ctx lives;
// cancellation returns ctx.Err() immediately without disturbing the
// flight. The flight is always unregistered and its waiters released,
// even when fn panics — otherwise a single panic would wedge the key
// forever, hanging every future caller. A leader panic propagates to
// the leader and to every waiting follower.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if fc, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-fc.done:
			if fc.panicked != nil {
				panic(flightPanic{fc.panicked})
			}
			return fc.val, true, fc.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	fc := &flightCall{done: make(chan struct{})}
	g.m[key] = fc
	g.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			fc.panicked = r
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(fc.done)
		if fc.panicked != nil {
			panic(flightPanic{fc.panicked})
		}
	}()
	fc.val, fc.err = fn()
	return fc.val, false, fc.err
}
