// Package chart renders SeeDB's target-vs-reference bar charts as text.
// The paper's frontend is a web application; Go charting libraries are
// limited, so this repository renders the same side-by-side bar charts in
// the terminal (see DESIGN.md §3). The recommendation engine, not the
// rendering, is the system's contribution.
package chart

import (
	"fmt"
	"strings"
)

// Options controls chart rendering.
type Options struct {
	// BarWidth is the maximum bar length in cells (default 24).
	BarWidth int
	// MaxGroups caps how many groups are drawn; the remainder collapse
	// into a "(+n more)" line (default 12).
	MaxGroups int
	// TargetLabel and ReferenceLabel title the two columns (defaults
	// "target" and "reference").
	TargetLabel, ReferenceLabel string
	// ASCII uses '#' bars instead of Unicode blocks.
	ASCII bool
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.BarWidth <= 0 {
		o.BarWidth = 24
	}
	if o.MaxGroups <= 0 {
		o.MaxGroups = 12
	}
	if o.TargetLabel == "" {
		o.TargetLabel = "target"
	}
	if o.ReferenceLabel == "" {
		o.ReferenceLabel = "reference"
	}
	return o
}

// Render draws a two-sided bar chart: one row per group, with the target
// and reference probability masses side by side. title goes on the first
// line; groups, target and reference must have equal lengths.
func Render(title string, groups []string, target, reference []float64, opts Options) string {
	opts = opts.withDefaults()
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if len(groups) != len(target) || len(groups) != len(reference) {
		b.WriteString("  (malformed distributions)\n")
		return b.String()
	}
	if len(groups) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}

	shown := len(groups)
	if shown > opts.MaxGroups {
		shown = opts.MaxGroups
	}
	labelW := 0
	for _, g := range groups[:shown] {
		if len(g) > labelW {
			labelW = len(g)
		}
	}
	if labelW > 20 {
		labelW = 20
	}
	maxVal := 0.0
	for i := 0; i < shown; i++ {
		if target[i] > maxVal {
			maxVal = target[i]
		}
		if reference[i] > maxVal {
			maxVal = reference[i]
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}

	header := fmt.Sprintf("  %-*s  %-*s  %-*s", labelW, "",
		opts.BarWidth+6, opts.TargetLabel, opts.BarWidth+6, opts.ReferenceLabel)
	b.WriteString(strings.TrimRight(header, " "))
	b.WriteByte('\n')
	for i := 0; i < shown; i++ {
		g := groups[i]
		if len(g) > labelW {
			g = g[:labelW-1] + "…"
		}
		fmt.Fprintf(&b, "  %-*s  %s %.3f  %s %.3f\n", labelW, g,
			bar(target[i]/maxVal, opts.BarWidth, opts.ASCII), target[i],
			bar(reference[i]/maxVal, opts.BarWidth, opts.ASCII), reference[i])
	}
	if shown < len(groups) {
		fmt.Fprintf(&b, "  (+%d more groups)\n", len(groups)-shown)
	}
	return b.String()
}

// bar draws a single horizontal bar of the given fill fraction.
func bar(frac float64, width int, ascii bool) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac*float64(width) + 0.5)
	fill, rest := "█", "░"
	if ascii {
		fill, rest = "#", "."
	}
	return strings.Repeat(fill, full) + strings.Repeat(rest, width-full)
}

// Sparkline renders a compact one-line distribution (for tables and
// logs): one block character per group, height by probability mass.
func Sparkline(dist []float64) string {
	if len(dist) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	maxVal := 0.0
	for _, v := range dist {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var b strings.Builder
	for _, v := range dist {
		idx := int(v / maxVal * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
