package chart

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render("AVG(capital_gain) BY sex",
		[]string{"Female", "Male"},
		[]float64{0.52, 0.48},
		[]float64{0.31, 0.69},
		Options{})
	if !strings.Contains(out, "AVG(capital_gain) BY sex") {
		t.Error("title missing")
	}
	for _, want := range []string{"Female", "Male", "0.520", "0.690", "target", "reference"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 groups
		t.Errorf("got %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestRenderASCIIMode(t *testing.T) {
	out := Render("t", []string{"a"}, []float64{1}, []float64{0.5}, Options{ASCII: true})
	if !strings.Contains(out, "#") {
		t.Error("ASCII mode should use # bars")
	}
	if strings.Contains(out, "█") {
		t.Error("ASCII mode must not use Unicode blocks")
	}
}

func TestRenderBarProportions(t *testing.T) {
	out := Render("t", []string{"big", "sml"}, []float64{1.0, 0.25}, []float64{0, 0}, Options{ASCII: true, BarWidth: 8})
	lines := strings.Split(out, "\n")
	bigBar := strings.Count(lines[2], "#")
	smallBar := strings.Count(lines[3], "#")
	if bigBar != 8 {
		t.Errorf("max bar = %d cells, want 8", bigBar)
	}
	if smallBar != 2 {
		t.Errorf("quarter bar = %d cells, want 2", smallBar)
	}
}

func TestRenderGroupCap(t *testing.T) {
	groups := make([]string, 30)
	dist := make([]float64, 30)
	for i := range groups {
		groups[i] = "g"
		dist[i] = 1.0 / 30
	}
	out := Render("t", groups, dist, dist, Options{MaxGroups: 5})
	if !strings.Contains(out, "(+25 more groups)") {
		t.Errorf("overflow note missing:\n%s", out)
	}
}

func TestRenderDegenerateInputs(t *testing.T) {
	if out := Render("t", nil, nil, nil, Options{}); !strings.Contains(out, "no data") {
		t.Error("empty chart should say so")
	}
	if out := Render("t", []string{"a"}, []float64{1, 2}, []float64{1}, Options{}); !strings.Contains(out, "malformed") {
		t.Error("mismatched lengths should be flagged")
	}
	// All-zero distributions must not divide by zero.
	out := Render("t", []string{"a"}, []float64{0}, []float64{0}, Options{})
	if !strings.Contains(out, "0.000") {
		t.Errorf("zero distribution render wrong:\n%s", out)
	}
}

func TestRenderLongLabelsTruncated(t *testing.T) {
	long := strings.Repeat("x", 50)
	out := Render("t", []string{long}, []float64{1}, []float64{1}, Options{})
	if strings.Contains(out, long) {
		t.Error("long labels should be truncated")
	}
	if !strings.Contains(out, "…") {
		t.Error("truncation marker missing")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline length = %d runes", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] >= runes[2] {
		t.Error("sparkline should rise with values")
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	if len([]rune(Sparkline([]float64{0, 0}))) != 2 {
		t.Error("all-zero sparkline should still render")
	}
}

func TestBarClamping(t *testing.T) {
	if got := bar(-1, 4, true); got != "...." {
		t.Errorf("negative frac bar = %q", got)
	}
	if got := bar(2, 4, true); got != "####" {
		t.Errorf("overflow frac bar = %q", got)
	}
}
