package core

import (
	"context"
	"testing"

	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

// These tests pin the executor-counter contract: on every execution
// path, QueriesExecuted == VectorizedQueries + FallbackQueries, and the
// counters describe what actually ran. The audit behind them found the
// counters are folded in exactly one place (Metrics.RecordExec, called
// per paid execution in runQueries); the edge most worth guarding is the
// vectorized fast path's runtime fallback retry — a query whose plan is
// vectorizable (opts.Workers > 1, eligible shape) but whose execution
// falls back to the serial interpreter at runtime (row-store table,
// group-id-space overflow). A regression that counted that retry as
// vectorized, or skipped QueriesExecuted for it, would silently skew the
// /healthz executor dashboards and the bench reports.

// assertCounters checks the partition invariants: executed queries
// split into vectorized + fallback, and the per-reason fallback counts
// sum back to the fallback total.
func assertCounters(t *testing.T, m Metrics) {
	t.Helper()
	if m.QueriesExecuted != m.VectorizedQueries+m.FallbackQueries {
		t.Errorf("QueriesExecuted=%d must equal Vectorized=%d + Fallback=%d",
			m.QueriesExecuted, m.VectorizedQueries, m.FallbackQueries)
	}
	reasonSum := 0
	for reason, n := range m.FallbackReasons {
		if reason == "" {
			t.Error("FallbackReasons must not contain an empty reason key")
		}
		if n <= 0 {
			t.Errorf("FallbackReasons[%q] = %d, want positive", reason, n)
		}
		reasonSum += n
	}
	if reasonSum != m.FallbackQueries {
		t.Errorf("FallbackReasons sum to %d, FallbackQueries = %d (%v)",
			reasonSum, m.FallbackQueries, m.FallbackReasons)
	}
}

// TestCountersVectorizedPath: column store + Workers>1 runs the fast
// path, and the counters say so.
func TestCountersVectorizedPath(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 2000)
	res, err := e.Recommend(context.Background(), req, Options{
		Strategy: Sharing, K: 3, ScanParallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	assertCounters(t, m)
	if m.QueriesExecuted == 0 || m.VectorizedQueries == 0 {
		t.Errorf("expected vectorized executions, metrics: %+v", m)
	}
	if m.ScanWorkers < 2 {
		t.Errorf("ScanWorkers = %d, want >= 2", m.ScanWorkers)
	}
}

// TestCountersRuntimeFallbackEdge: a row-store table compiles the same
// vectorizable plan, but the fast path declines at runtime (it only
// scans column-store vectors) and retries on the serial interpreter.
// Every such retry must still count as an executed fallback query.
func TestCountersRuntimeFallbackEdge(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutRow, 2000)
	res, err := e.Recommend(context.Background(), req, Options{
		Strategy: Sharing, K: 3, ScanParallelism: 4,
		// Row stores default to bin-packed group-bys; pin single so the
		// query count is layout-independent.
		GroupBy: GroupBySingle, GroupBySet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	assertCounters(t, m)
	if m.QueriesExecuted == 0 {
		t.Fatal("no queries executed")
	}
	if m.VectorizedQueries != 0 {
		t.Errorf("row store cannot vectorize, metrics: %+v", m)
	}
	if m.FallbackQueries != m.QueriesExecuted {
		t.Errorf("fallback retries must all be counted: %+v", m)
	}
}

// TestCountersInterpreterShapes: int-dimension group keys vectorize via
// the runtime value dictionaries under SHARING; NoOpt pins the serial
// interpreter (reason "serial execution"); phased execution mixes
// per-phase executions. All paths must keep the partition invariants.
func TestCountersInterpreterShapes(t *testing.T) {
	db := sqldb.NewDB()
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "code", Type: sqldb.TypeInt},
		sqldb.Column{Name: "m", Type: sqldb.TypeFloat},
	)
	tab, err := db.CreateTable("t", schema, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tab.AppendRow([]sqldb.Value{sqldb.Int(int64(i % 5)), sqldb.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	e := newTestEngine(db)
	req := Request{Table: "t", TargetWhere: "code = 1 OR code = 2",
		Dimensions: []string{"code"}, Measures: []string{"m"}}

	for _, opts := range []Options{
		{Strategy: Sharing, K: 1, ScanParallelism: 4}, // int dim → numeric dictionary fast path
		{Strategy: NoOpt, K: 1, ScanParallelism: 4},   // baseline pins serial
		{Strategy: Comb, Pruning: CIPruning, K: 1, Phases: 4, ScanParallelism: 4},
	} {
		res, err := e.Recommend(context.Background(), req, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Strategy, err)
		}
		m := res.Metrics
		assertCounters(t, m)
		if m.QueriesExecuted == 0 {
			t.Errorf("%v: no queries executed", opts.Strategy)
		}
		switch opts.Strategy {
		case Sharing:
			if m.FallbackQueries != 0 {
				t.Errorf("SHARING: int group key should vectorize now, metrics: %+v", m)
			}
			if m.SelectionKernels == 0 {
				t.Errorf("SHARING: the combined CASE-flag predicate should compile to kernels, metrics: %+v", m)
			}
		case NoOpt:
			if m.VectorizedQueries != 0 {
				t.Errorf("NO_OPT: must stay on the serial baseline, metrics: %+v", m)
			}
			if m.FallbackReasons["serial execution"] != m.FallbackQueries {
				t.Errorf("NO_OPT: every fallback should be 'serial execution': %v", m.FallbackReasons)
			}
		}
	}
}

// TestCountersFallbackReasons: a row-store table reports every fallback
// under the "row-store table" reason.
func TestCountersFallbackReasons(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutRow, 1000)
	res, err := e.Recommend(context.Background(), req, Options{
		Strategy: Sharing, K: 2, ScanParallelism: 4,
		GroupBy: GroupBySingle, GroupBySet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	assertCounters(t, m)
	if m.FallbackQueries == 0 {
		t.Fatal("expected fallback executions on a row store")
	}
	if m.FallbackReasons["row-store table"] != m.FallbackQueries {
		t.Errorf("want all fallbacks under 'row-store table', got %v", m.FallbackReasons)
	}
}

// TestCountersCacheHitsExcluded: warm requests count cache hits, not
// executions, so the partition invariant holds trivially at zero.
func TestCountersCacheHitsExcluded(t *testing.T) {
	spec := dataset.Census().WithRows(1000)
	db, _, err := dataset.BuildDB(spec, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(db)
	req := Request{Table: spec.Name, TargetWhere: spec.TargetPredicate(),
		Dimensions: spec.DimNames(), Measures: spec.MeasureNames()}
	opts := Options{Strategy: Sharing, K: 2, EnableCache: true}
	if _, err := e.Recommend(context.Background(), req, opts); err != nil {
		t.Fatal(err)
	}
	warm, err := e.Recommend(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := warm.Metrics
	assertCounters(t, m)
	if m.QueriesExecuted != 0 || m.VectorizedQueries != 0 || m.FallbackQueries != 0 || m.ScanWorkers != 0 {
		t.Errorf("warm metrics must not report executions: %+v", m)
	}
}
