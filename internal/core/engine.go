package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seedb/internal/backend"
	"seedb/internal/cache"
	"seedb/internal/distance"
	"seedb/internal/telemetry"
)

// Engine is the SeeDB execution engine: it evaluates the candidate view
// space for a request and returns the k most interesting (highest
// deviation) visualizations. It talks to the store exclusively through
// the backend seam (internal/backend), so the same sharing/pruning
// optimizer runs over the embedded sqldb store or any external SQL
// store, degrading per the backend's declared capabilities.
type Engine struct {
	be  backend.Backend
	gen *ViewGenerator

	cacheMu sync.Mutex
	cache   *cache.Cache

	// tel is the optional telemetry collector: latency histograms and
	// the slow-query log. Atomic so it can be installed while requests
	// are in flight; a nil collector makes every observation a no-op.
	tel atomic.Pointer[telemetry.Collector]

	// The stale-result store backs Options.ServeStaleOnError: the last
	// complete Result per request shape, kept independently of the
	// dataset version so an outage can be masked with yesterday's
	// answer. Bounded FIFO; deliberately separate from the result cache,
	// whose entries die with their version — stale serving exists
	// precisely for the moment the current version is unreachable.
	staleMu    sync.Mutex
	stale      map[string]*Result
	staleOrder []string
}

// staleStoreMax bounds how many request shapes the stale store retains.
const staleStoreMax = 256

// NewEngine creates an engine over a backend. Wrap the embedded store
// with backend.NewEmbedded.
func NewEngine(be backend.Backend) *Engine {
	return &Engine{be: be, gen: NewViewGenerator(be)}
}

// Backend returns the backend the engine executes against.
func (e *Engine) Backend() backend.Backend { return e.be }

// Generator returns the engine's view generator.
func (e *Engine) Generator() *ViewGenerator { return e.gen }

// SetCache installs a shared result cache. One cache may back many
// engines (and the HTTP server installs one process-wide cache); it is
// only consulted by requests with Options.EnableCache set.
func (e *Engine) SetCache(c *cache.Cache) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	e.cache = c
}

// Cache returns the engine's cache, or nil if none is installed yet.
func (e *Engine) Cache() *cache.Cache {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	return e.cache
}

// SetTelemetry installs a telemetry collector: Recommend then observes
// request latency, every paid query execution observes exec latency,
// and operations over the slow-log threshold are written to the
// collector's slow-query log. One collector may back many engines (the
// HTTP server shares one process-wide). A nil collector disables
// observation again.
func (e *Engine) SetTelemetry(tel *telemetry.Collector) { e.tel.Store(tel) }

// Telemetry returns the installed collector, or nil.
func (e *Engine) Telemetry() *telemetry.Collector { return e.tel.Load() }

// ensureCache returns the installed cache, creating one with the given
// budget on first cached request.
func (e *Engine) ensureCache(budgetBytes int64) *cache.Cache {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if e.cache == nil {
		e.cache = cache.New(budgetBytes)
	}
	return e.cache
}

// Metrics reports what one Recommend invocation cost.
type Metrics struct {
	// Views is the number of candidate views enumerated.
	Views int
	// QueriesExecuted counts SQL queries executed against the DBMS.
	QueriesExecuted int
	// VectorizedQueries counts executed queries served by sqldb's
	// parallel vectorized fast path; FallbackQueries counts the ones the
	// serial row interpreter handled. Together they partition
	// QueriesExecuted (cache hits are counted in neither).
	VectorizedQueries int
	FallbackQueries   int
	// FallbackReasons breaks FallbackQueries down by the executor's
	// reported reason ("serial execution", "non-column group key",
	// "id-space overflow", ...); backends that report none are counted
	// under "unreported". The per-reason counts always sum to
	// FallbackQueries. Nil when nothing fell back.
	FallbackReasons map[string]int
	// SelectionKernels counts the compiled predicate selection kernels
	// bound across executed queries; ResidualPredicates counts predicate
	// conjuncts that stayed on the per-row closure path (the hybrid
	// residual filter).
	SelectionKernels   int
	ResidualPredicates int
	// ScanWorkers is the peak per-query scan worker count used.
	ScanWorkers int
	// ShardQueries counts executed queries that a shard-routing backend
	// fanned out to child backends; ShardFanout sums the child executions
	// across them (fanout/queries is the average fan-out width). Both are
	// zero on leaf backends.
	ShardQueries int
	ShardFanout  int
	// ShardStragglerMax is the slowest child execution observed across
	// all fanned-out queries — the shard merge's critical path.
	ShardStragglerMax time.Duration
	// ShardPartialsCached counts per-shard partials the router served
	// from its version-keyed partial memo instead of re-executing on a
	// child.
	ShardPartialsCached int
	// HedgedPartials counts speculative duplicate child executions the
	// shard router issued against stragglers; HedgeWins counts the
	// duplicates that answered first. Wins never double-count in any
	// merge — exactly one result per partial is folded.
	HedgedPartials int
	HedgeWins      int
	// NetRetries counts transparent retries network child backends
	// performed after retryable transport or 5xx failures.
	NetRetries int
	// ShardsDegraded sums child shards skipped across this invocation's
	// queries because they were unavailable under Options.AllowPartial;
	// DegradedShards lists the distinct skipped shard indices (sorted).
	// Non-zero means the recommendation covers only the surviving
	// partitions' rows — such results are never admitted to the shared
	// result cache.
	ShardsDegraded int
	DegradedShards []int
	// ServedStale marks a response answered from the stale-result store
	// under Options.ServeStaleOnError after the backend became
	// unavailable: the data may predate the current dataset version.
	ServedStale bool
	// RowsScanned sums base-table rows visited across all queries.
	RowsScanned int64
	// MaxGroups is the peak distinct-group count of any single query
	// (the memory-utilization proxy).
	MaxGroups int
	// PhasesRun counts executed phases (1 for non-phased strategies).
	PhasesRun int
	// PrunedViews counts views discarded before full processing.
	PrunedViews int
	// EarlyStopped reports whether COMB_EARLY returned before scanning
	// everything.
	EarlyStopped bool
	// CacheHits and CacheMisses count result-cache lookups (whole-request
	// and per-query) made on behalf of this invocation. A query served
	// from the cache counts as a hit and does not appear in
	// QueriesExecuted or RowsScanned.
	CacheHits   int
	CacheMisses int
	// RefViewsReused counts candidate views whose full-table reference
	// distribution came from the materialized reference-view store.
	RefViewsReused int
	// ServedFromCache marks an invocation answered entirely by the
	// result cache (a whole-request hit, or a concurrent duplicate that
	// shared another request's execution).
	ServedFromCache bool
	// StrategyDegraded reports that the requested strategy could not run
	// on this backend and was rewritten by EffectiveStrategy (COMB and
	// COMB_EARLY degrade to SHARING on backends without row-range scans
	// — including a shard router whose capability intersection lost
	// SupportsPhasedExecution). DegradedFrom names the strategy the
	// caller asked for; the executed one is what Options carried after
	// the rewrite. Recorded on warm (cached) responses too: degradation
	// describes the request-backend pair, not one execution.
	StrategyDegraded bool
	DegradedFrom     string
	// Elapsed is wall-clock execution time.
	Elapsed time.Duration
}

// Recommendation is one scored view with its distributions, ready to
// render as a bar chart.
type Recommendation struct {
	View View
	// Utility is the deviation-based utility estimate. For pruned views
	// it reflects only the data processed before pruning.
	Utility float64
	// Groups is the shared group axis (sorted union of target and
	// reference groups).
	Groups []string
	// Target and Reference are the normalized probability distributions
	// over Groups.
	Target, Reference []float64
	// TargetAgg and ReferenceAgg are the raw (unnormalized) aggregate
	// values per group.
	TargetAgg, ReferenceAgg map[string]float64
	// Partial marks estimates computed from a strict subset of the data
	// (early-returned or pruned views).
	Partial bool
}

// Result is the output of one Recommend invocation.
type Result struct {
	// Recommendations holds the top-k views, highest utility first.
	Recommendations []Recommendation
	// AllViews holds every enumerated view's final state (only when
	// Options.KeepAllViews is set), in utility order.
	AllViews []Recommendation
	// Metrics reports execution cost.
	Metrics Metrics
}

// execState carries one invocation's working state.
type execState struct {
	be      backend.Backend
	req     Request
	opts    Options
	views   []View
	accums  []*viewAccum
	alive   []bool
	partial []bool // per-view: estimate computed from a strict data subset
	metrics Metrics

	// Shared result-cache state (nil/empty when caching is off).
	cache     *cache.Cache
	version   string // dataset version token the whole run is keyed under
	refSeeded []bool // per-view: reference side came from the ref-view store

	// tel observes per-query execution latency and feeds the slow-query
	// log; nil when the engine has no collector.
	tel *telemetry.Collector
}

// Recommend evaluates the view space for req and returns the top-k
// recommendations under the configured options.
//
// The strategy actually executed may degrade per the backend's
// capabilities — see EffectiveStrategy — so COMB/COMB_EARLY requests
// against a backend without row-range scans run as single-pass SHARING.
//
// With Options.EnableCache set, the whole invocation is memoized in the
// engine's shared cache under the request's canonical key and the
// table's dataset version: repeat requests return without issuing any
// SQL, and concurrent identical requests collapse into one execution
// (singleflight). Cold requests still reuse cached shared-query results
// and materialized reference views where they overlap earlier work.
func (e *Engine) Recommend(ctx context.Context, req Request, opts Options) (*Result, error) {
	start := time.Now()
	ctx, sp := telemetry.StartSpan(ctx, "recommend")
	sp.SetAttr("table", req.Table)
	res, err := e.recommend(ctx, req, opts)
	sp.End()
	elapsed := time.Since(start)
	tel := e.tel.Load()
	tel.ObserveRequest(elapsed)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	sp.SetAttr("queries", strconv.Itoa(res.Metrics.QueriesExecuted))
	if res.Metrics.ServedFromCache {
		sp.SetAttr("served_from_cache", "true")
	}
	if sp != nil {
		// Per-request cost rollup: the root of the recommend subtree
		// answers "where did the rows go" without walking every query
		// span. Zero-valued shard/net counters stay off leaf-backend
		// traces.
		m := res.Metrics
		sp.SetAttr("rows_scanned", strconv.FormatInt(m.RowsScanned, 10))
		sp.SetAttr("cache_hits", strconv.Itoa(m.CacheHits))
		sp.SetAttr("cache_misses", strconv.Itoa(m.CacheMisses))
		if m.ShardFanout > 0 {
			sp.SetAttr("shard_fanout", strconv.Itoa(m.ShardFanout))
		}
		if m.NetRetries > 0 {
			sp.SetAttr("net_retries", strconv.Itoa(m.NetRetries))
		}
		if m.HedgedPartials > 0 {
			sp.SetAttr("hedged_partials", strconv.Itoa(m.HedgedPartials))
		}
	}
	if sl := tel.Slow(); sl != nil {
		thr := opts.SlowQueryThreshold
		if thr <= 0 {
			thr = sl.Threshold()
		}
		if elapsed >= thr {
			sl.Log(telemetry.SlowEntry{
				Kind:        "request",
				Table:       req.Table,
				Strategy:    opts.Strategy.String(),
				Queries:     res.Metrics.QueriesExecuted,
				ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
				ThresholdMS: float64(thr) / float64(time.Millisecond),
				TraceID:     sp.TraceID(),
				Trace:       sp.Node(),
			})
		}
	}
	return res, nil
}

// recommend wraps recommendInner with the stale-on-outage path
// (Options.ServeStaleOnError): fresh complete results refresh the stale
// store, and an unavailability failure is answered from it when
// possible. The store is keyed on the raw request+options — option
// canonicalization needs table metadata, which is exactly what a
// full outage takes away — so the key is computable on both the fill
// and the serve side without touching the backend.
func (e *Engine) recommend(ctx context.Context, req Request, opts Options) (*Result, error) {
	if opts.AllowPartial {
		// The introspection legs (TableInfo, TableStats) have no options
		// parameter; the context carries the opt-in to routing backends.
		ctx = backend.WithAllowPartial(ctx)
	}
	useStale := opts.ServeStaleOnError && opts.EnableCache
	var staleKey string
	if useStale {
		staleKey = requestCacheKey(req, opts, "stale")
	}
	start := time.Now()
	res, err := e.recommendInner(ctx, req, opts)
	if err == nil {
		// Only complete, freshly-consistent answers are worth replaying
		// during an outage: degraded results are partial by construction.
		if useStale && res.Metrics.ShardsDegraded == 0 {
			e.storeStale(staleKey, res)
		}
		return res, nil
	}
	if useStale && errors.Is(err, backend.ErrUnavailable) && ctx.Err() == nil {
		if sres, ok := e.loadStale(staleKey); ok {
			telemetry.SpanFromContext(ctx).SetAttr("served_stale", "true")
			sres.Metrics.Elapsed = time.Since(start)
			return sres, nil
		}
	}
	return nil, err
}

// storeStale records a private copy of a complete result as the outage
// fallback for its request shape, evicting the oldest shape at cap.
func (e *Engine) storeStale(key string, res *Result) {
	cp := cloneResult(res)
	e.staleMu.Lock()
	defer e.staleMu.Unlock()
	if e.stale == nil {
		e.stale = make(map[string]*Result, staleStoreMax)
	}
	if _, exists := e.stale[key]; !exists {
		e.staleOrder = append(e.staleOrder, key)
		if len(e.staleOrder) > staleStoreMax {
			delete(e.stale, e.staleOrder[0])
			e.staleOrder = e.staleOrder[1:]
		}
	}
	e.stale[key] = cp
}

// loadStale returns a copy of the stored fallback for a request shape,
// with cost counters zeroed (this invocation executed nothing) and
// ServedStale stamped.
func (e *Engine) loadStale(key string) (*Result, bool) {
	e.staleMu.Lock()
	r, ok := e.stale[key]
	e.staleMu.Unlock()
	if !ok {
		return nil, false
	}
	res := cloneResult(r)
	m := &res.Metrics
	m.QueriesExecuted, m.RowsScanned, m.MaxGroups, m.PhasesRun = 0, 0, 0, 0
	m.VectorizedQueries, m.FallbackQueries, m.ScanWorkers = 0, 0, 0
	m.FallbackReasons = nil
	m.SelectionKernels, m.ResidualPredicates = 0, 0
	m.ShardQueries, m.ShardFanout, m.ShardStragglerMax = 0, 0, 0
	m.ShardPartialsCached, m.HedgedPartials, m.HedgeWins, m.NetRetries = 0, 0, 0, 0
	m.CacheHits, m.CacheMisses, m.RefViewsReused = 0, 0, 0
	m.ServedFromCache = false
	m.ServedStale = true
	return res, true
}

// recommendInner is the Recommend body; the exported wrapper owns the
// request span, latency observation and slow-request logging, and the
// recommend wrapper owns stale-on-outage serving.
func (e *Engine) recommendInner(ctx context.Context, req Request, opts Options) (*Result, error) {
	start := time.Now()
	if req.TargetWhere == "" {
		return nil, fmt.Errorf("core: request needs a target predicate (TargetWhere)")
	}
	if req.Reference == RefCustom && req.ReferenceWhere == "" {
		return nil, fmt.Errorf("core: RefCustom requires ReferenceWhere")
	}
	_, tsp := telemetry.StartSpan(ctx, "table_info")
	ti, err := e.be.TableInfo(ctx, req.Table)
	tsp.End()
	if errors.Is(err, backend.ErrNoTable) {
		return nil, fmt.Errorf("core: table %q does not exist", req.Table)
	}
	if err != nil {
		return nil, fmt.Errorf("core: table metadata for %q: %w", req.Table, err)
	}
	_, vsp := telemetry.StartSpan(ctx, "view_enum")
	views, err := e.gen.Views(ctx, req)
	vsp.SetAttr("views", strconv.Itoa(len(views)))
	vsp.End()
	if err != nil {
		return nil, err
	}
	caps := e.be.Capabilities()
	requested := opts.Strategy
	opts.Strategy = EffectiveStrategy(opts.Strategy, caps)
	degraded := opts.Strategy != requested
	if opts.Strategy == NoOpt || opts.Strategy == Sharing {
		// Pruning options are inert on single-pass plans (the pruner
		// never runs); canonicalize them before defaulting and cache-key
		// construction so equivalent requests — including a COMB request
		// degraded to SHARING — share one cache entry.
		opts.Pruning = NoPruning
		opts.Phases = 0
		opts.Delta = 0
		opts.ConfidenceScale = 0
		opts.Seed = 0
	}
	if opts.Strategy == NoOpt {
		// The unoptimized baseline pins serial scans (see runQueries);
		// canonicalize the inert intra-query knobs the same way the
		// pruning options are, so they can never make two equivalent
		// NO_OPT requests look different anywhere downstream.
		opts.ScanParallelism = 1
		opts.DisableSelectionKernels = false
	}
	opts = opts.withDefaults(ti.Layout, len(views))
	telemetry.SpanFromContext(ctx).SetAttr("strategy", opts.Strategy.String())
	if !caps.SupportsVectorized {
		// Scan-parallelism knobs are inert on backends without an
		// engine-side vectorized executor; canonicalize them too.
		opts.ScanParallelism = 1
		opts.DisableSelectionKernels = false
	}
	if opts.K > len(views) {
		opts.K = len(views)
	}

	// Without a dataset version token, cached entries could never be
	// invalidated — treat the request as uncacheable rather than risk
	// serving stale results forever. The token is only fetched for
	// caching requests (it may cost a store round-trip on external
	// backends with watermark version functions).
	version, versioned := "", false
	if opts.EnableCache {
		version, versioned = e.be.TableVersion(ctx, req.Table)
	}
	// recordDegradation stamps the strategy rewrite onto a result. The
	// rewrite happens before cache-key construction (a degraded COMB
	// request shares the equivalent SHARING request's entry), so warm
	// responses are re-stamped per caller rather than trusting whatever
	// request computed the cached value.
	recordDegradation := func(res *Result) {
		res.Metrics.StrategyDegraded = degraded
		if degraded {
			res.Metrics.DegradedFrom = requested.String()
		} else {
			res.Metrics.DegradedFrom = ""
		}
	}

	if !versioned {
		res, err := e.runRecommend(ctx, req, opts, views, ti, nil, "")
		if err != nil {
			return nil, err
		}
		recordDegradation(res)
		res.Metrics.Elapsed = time.Since(start)
		return res, nil
	}

	c := e.ensureCache(opts.CacheBudgetBytes)
	// The version token is namespaced by the backend's name, so two
	// backends holding coincidentally same-named tables can share one
	// cache without ever sharing entries.
	version = e.be.Name() + "|" + version
	key := requestCacheKey(req, opts, version)
	v, outcome, err := c.Do(ctx, key,
		func(v any) int64 { return resultSizeBytes(v.(*Result)) },
		func(cctx context.Context) (any, error) {
			return e.runRecommend(cctx, req, opts, views, ti, c, version)
		},
	)
	if err != nil {
		return nil, err
	}
	// The cached Result is shared; every caller (the computing one
	// included, since its Result now lives in the cache) gets a private
	// deep copy.
	res := cloneResult(v.(*Result))
	if outcome != cache.Computed {
		// Warm path: report what THIS invocation cost, keeping the
		// fields that describe the result's content (Views, PrunedViews,
		// EarlyStopped, Partial flags).
		m := &res.Metrics
		m.QueriesExecuted, m.RowsScanned, m.MaxGroups, m.PhasesRun = 0, 0, 0, 0
		m.VectorizedQueries, m.FallbackQueries, m.ScanWorkers = 0, 0, 0
		m.FallbackReasons = nil
		m.SelectionKernels, m.ResidualPredicates = 0, 0
		m.ShardQueries, m.ShardFanout, m.ShardStragglerMax = 0, 0, 0
		m.ShardPartialsCached, m.HedgedPartials, m.HedgeWins, m.NetRetries = 0, 0, 0, 0
		// Degraded results are never admitted, so a warm response is by
		// construction complete and fresh.
		m.ShardsDegraded, m.DegradedShards, m.ServedStale = 0, nil, false
		m.CacheMisses, m.RefViewsReused = 0, 0
		m.CacheHits = 1
		m.ServedFromCache = true
	}
	recordDegradation(res)
	res.Metrics.Elapsed = time.Since(start)
	return res, nil
}

// runRecommend executes one cold recommendation. With a non-nil cache it
// consults the shared-query memoization inside runQueries and the
// reference-view store around the run.
func (e *Engine) runRecommend(ctx context.Context, req Request, opts Options, views []View, ti backend.TableInfo, c *cache.Cache, version string) (*Result, error) {
	start := time.Now()
	st := &execState{
		be:      e.be,
		req:     req,
		opts:    opts,
		views:   views,
		cache:   c,
		version: version,
		tel:     e.tel.Load(),
	}
	st.metrics.Views = len(views)
	st.accums = make([]*viewAccum, len(views))
	st.alive = make([]bool, len(views))
	for i, v := range views {
		st.accums[i] = newViewAccum(v)
		st.alive[i] = true
	}

	// Seed reference sides from the materialized reference-view store:
	// under RefAll the reference distribution of a view is a pure
	// function of the dataset, so any earlier request (whatever its
	// target predicate) may already have paid for it. Seeded views issue
	// target-only queries below.
	//
	// Only single-pass strategies seed: their output is determined by
	// the final (complete) accumulators, so a seeded run returns the
	// same result as a cold one. Phased strategies prune on per-phase
	// estimates — seeding would compare partial targets against full
	// references and make prune decisions (and therefore cached results)
	// depend on cache warmth. They still publish below.
	var refs *cache.RefStore
	if c != nil && req.Reference == RefAll {
		_, rsp := telemetry.StartSpan(ctx, "ref_seed")
		refs = cache.NewRefStore(c)
		st.refSeeded = make([]bool, len(views))
		if opts.Strategy == NoOpt || opts.Strategy == Sharing {
			for i, v := range views {
				if d, ok := refs.Get(req.Table, version, v.Dimension, v.Measure, string(v.Agg)); ok {
					seedReference(st.accums[i], d)
					st.refSeeded[i] = true
					st.metrics.RefViewsReused++
				}
			}
		}
		rsp.SetAttr("seeded", strconv.Itoa(st.metrics.RefViewsReused))
		rsp.End()
	}

	qb := &queryBuilder{table: req.Table, req: req, opts: opts, refDone: st.refSeeded}
	if opts.GroupBy == GroupByBinPack && opts.Strategy != NoOpt {
		_, ssp := telemetry.StartSpan(ctx, "stats")
		dims := dimensionSet(views)
		cards, err := e.gen.DimensionCardinalities(ctx, req.Table, dims)
		ssp.End()
		if err != nil {
			return nil, err
		}
		qb.distinct = make(map[string]int, len(dims))
		for i, d := range dims {
			qb.distinct[d] = cards[i]
		}
	}

	ectx, esp := telemetry.StartSpan(ctx, "execute")
	var err error
	switch opts.Strategy {
	case NoOpt, Sharing:
		err = st.runSinglePass(ectx, qb)
	case Comb, CombEarly:
		err = st.runPhased(ectx, qb, ti.Rows)
	default:
		err = fmt.Errorf("core: unknown strategy %v", opts.Strategy)
	}
	esp.End()
	if err != nil {
		return nil, err
	}

	// Materialize freshly completed reference distributions for later
	// requests. Only views that saw every partition qualify (pruned,
	// bandit-accepted and early-returned views hold partial reference
	// state).
	if refs != nil {
		_, psp := telemetry.StartSpan(ctx, "ref_publish")
		cost := time.Since(start) / time.Duration(len(views))
		for i, v := range views {
			if st.refSeeded[i] || (st.partial != nil && st.partial[i]) {
				continue
			}
			refs.Put(req.Table, version, v.Dimension, v.Measure, string(v.Agg),
				snapshotReference(st.accums[i].reference), cost)
		}
		psp.End()
	}

	_, csp := telemetry.StartSpan(ctx, "score")
	res := st.buildResult()
	csp.End()
	res.Metrics.Elapsed = time.Since(start)
	return res, nil
}

// runSinglePass executes NO_OPT or SHARING: one full pass over the data.
func (st *execState) runSinglePass(ctx context.Context, qb *queryBuilder) error {
	queries := qb.build(st.views, st.alive)
	st.metrics.PhasesRun = 1
	return st.runQueries(ctx, queries, 0, 0)
}

// runPhased executes COMB / COMB_EARLY: the phased execution framework of
// Section 3. Phase i processes the i-th of n equal partitions for the
// views still alive, then the pruner discards low-utility views.
func (st *execState) runPhased(ctx context.Context, qb *queryBuilder, totalRows int) error {
	phases := st.opts.Phases
	if phases > totalRows && totalRows > 0 {
		phases = totalRows
	}
	if phases < 1 {
		phases = 1
	}
	p := newPruner(st.opts)
	ps := &phaseState{
		estimates: make([]float64, len(st.views)),
		alive:     st.alive,
		accepted:  make([]bool, len(st.views)),
		totalRows: totalRows,
		k:         st.opts.K,
	}

	for phase := 0; phase < phases; phase++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		lo := phase * totalRows / phases
		hi := (phase + 1) * totalRows / phases
		if hi <= lo {
			continue
		}
		// Rebuild queries for the views still alive so pruned views
		// stop consuming scan and aggregation work.
		queries := qb.build(st.views, st.alive)
		pctx, psp := telemetry.StartSpan(ctx, "phase")
		psp.SetAttr("phase", strconv.Itoa(phase))
		psp.SetAttr("rows", fmt.Sprintf("%d..%d", lo, hi))
		err := st.runQueries(pctx, queries, lo, hi)
		psp.End()
		if err != nil {
			return err
		}
		st.metrics.PhasesRun++
		ps.rowsSeen = hi

		for i := range st.views {
			if st.alive[i] {
				ps.estimates[i] = st.accums[i].utility(st.opts.Distance)
			}
		}
		p.prune(ps)

		if st.opts.Strategy == CombEarly && p.decided(ps) {
			if hi < totalRows {
				st.metrics.EarlyStopped = true
			}
			break
		}
	}

	// A view's estimate is partial when it stopped being scanned before
	// the data ran out: pruned, bandit-accepted mid-run, or the whole
	// run returned early.
	st.partial = make([]bool, len(st.views))
	for i := range st.views {
		st.partial[i] = !st.alive[i] || st.metrics.EarlyStopped
	}
	// Views the bandit accepted count as winners, not as pruned.
	for i := range st.views {
		if ps.accepted[i] {
			st.alive[i] = true
		}
	}
	for _, a := range st.alive {
		if !a {
			st.metrics.PrunedViews++
		}
	}
	return nil
}

// buildResult ranks views and materializes recommendations.
func (st *execState) buildResult() *Result {
	type scored struct {
		idx     int
		utility float64
	}
	ranked := make([]scored, 0, len(st.views))
	var pruned []scored
	for i := range st.views {
		u := st.accums[i].utility(st.opts.Distance)
		if st.alive[i] {
			ranked = append(ranked, scored{i, u})
		} else {
			pruned = append(pruned, scored{i, u})
		}
	}
	byUtility := func(s []scored) func(a, b int) bool {
		return func(a, b int) bool {
			if s[a].utility != s[b].utility {
				return s[a].utility > s[b].utility
			}
			return s[a].idx < s[b].idx
		}
	}
	sort.Slice(ranked, byUtility(ranked))
	sort.Slice(pruned, byUtility(pruned))

	res := &Result{Metrics: st.metrics}

	emit := func(s scored) Recommendation {
		acc := st.accums[s.idx]
		tAgg := acc.target.finalize(acc.view.Agg)
		rAgg := acc.reference.finalize(acc.view.Agg)
		groups, tv, rv := distance.Align(tAgg, rAgg)
		// Surviving views of a full run saw every partition and are
		// exact; pruned, bandit-accepted and early-returned views are
		// partial (st.partial is nil for single-pass strategies, which
		// are always exact).
		partial := st.partial != nil && st.partial[s.idx]
		return Recommendation{
			View:         acc.view,
			Utility:      s.utility,
			Groups:       groups,
			Target:       distance.Normalize(tv),
			Reference:    distance.Normalize(rv),
			TargetAgg:    tAgg,
			ReferenceAgg: rAgg,
			Partial:      partial,
		}
	}

	k := st.opts.K
	for _, s := range ranked {
		if len(res.Recommendations) >= k {
			break
		}
		res.Recommendations = append(res.Recommendations, emit(s))
	}
	// If pruning overshot (fewer than k survivors), backfill from the
	// best pruned estimates.
	for _, s := range pruned {
		if len(res.Recommendations) >= k {
			break
		}
		res.Recommendations = append(res.Recommendations, emit(s))
	}

	if st.opts.KeepAllViews {
		all := append(append([]scored(nil), ranked...), pruned...)
		sort.Slice(all, byUtility(all))
		res.AllViews = make([]Recommendation, 0, len(all))
		for _, s := range all {
			res.AllViews = append(res.AllViews, emit(s))
		}
	}
	return res
}

// dimensionSet returns the distinct dimensions across views, in
// first-use order.
func dimensionSet(views []View) []string {
	var dims []string
	seen := make(map[string]bool)
	for _, v := range views {
		if !seen[v.Dimension] {
			seen[v.Dimension] = true
			dims = append(dims, v.Dimension)
		}
	}
	return dims
}

// ExactTopK computes ground-truth utilities for every view of a request
// with the SHARING strategy and no pruning — the oracle the evaluation
// metrics compare against.
func (e *Engine) ExactTopK(ctx context.Context, req Request, dist distance.Func, k int) (*Result, error) {
	return e.Recommend(ctx, req, Options{
		Strategy:     Sharing,
		Pruning:      NoPruning,
		Distance:     dist,
		K:            k,
		KeepAllViews: true,
	})
}
