package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"seedb/internal/backend"
	"seedb/internal/dataset"
	"seedb/internal/distance"
	"seedb/internal/sqldb"
)

// newTestEngine wires an engine over the embedded store.
func newTestEngine(db *sqldb.DB) *Engine {
	return NewEngine(backend.NewEmbedded(db))
}

// embeddedDB unwraps the embedded database behind an engine's backend,
// for tests that mutate table data directly.
func embeddedDB(e *Engine) *sqldb.DB {
	return e.Backend().(*backend.Embedded).DB()
}

// buildCensus loads a scaled-down census dataset and returns an engine
// plus the canonical request (unmarried vs. all adults).
func buildCensus(t testing.TB, layout sqldb.Layout, rows int) (*Engine, Request) {
	t.Helper()
	spec := dataset.Census().WithRows(rows)
	db, _, err := dataset.BuildDB(spec, layout)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		Table:       spec.Name,
		TargetWhere: spec.TargetPredicate(),
		Dimensions:  spec.DimNames(),
		Measures:    spec.MeasureNames(),
	}
	return newTestEngine(db), req
}

func TestViewSQLGeneration(t *testing.T) {
	v := View{Dimension: "sex", Measure: "capital_gain", Agg: AggAvg}
	target := v.TargetSQL("census", "marital = 'Unmarried'")
	want := "SELECT sex, AVG(capital_gain) FROM census WHERE marital = 'Unmarried' GROUP BY sex"
	if target != want {
		t.Errorf("TargetSQL = %q, want %q", target, want)
	}
	ref := v.ReferenceSQL("census", "")
	if ref != "SELECT sex, AVG(capital_gain) FROM census GROUP BY sex" {
		t.Errorf("ReferenceSQL = %q", ref)
	}
	refW := v.ReferenceSQL("census", "marital = 'Married'")
	if !strings.Contains(refW, "WHERE marital = 'Married'") {
		t.Errorf("ReferenceSQL with where = %q", refW)
	}
	if v.String() != "AVG(capital_gain) BY sex" {
		t.Errorf("String = %q", v.String())
	}
	if v.Key() == (View{Dimension: "sex", Measure: "capital_gain", Agg: AggSum}).Key() {
		t.Error("keys must distinguish aggregate functions")
	}
}

func TestViewGeneratorEnumeration(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 2000)
	views, err := e.Generator().Views(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 40 { // 10 dims × 4 measures × 1 agg
		t.Errorf("views = %d, want 40", len(views))
	}
	// Default aggregate is AVG.
	for _, v := range views {
		if v.Agg != AggAvg {
			t.Errorf("default agg = %v", v.Agg)
		}
	}
	// Multiple aggregate functions multiply the space.
	req.Aggs = []AggFunc{AggAvg, AggSum}
	views, err = e.Generator().Views(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 80 {
		t.Errorf("views with 2 aggs = %d, want 80", len(views))
	}
}

func TestViewGeneratorDerivesFromMetadata(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 2000)
	req.Dimensions = nil
	req.Measures = nil
	views, err := e.Generator().Views(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Census generates 10 string dims and 4 float measures.
	if len(views) != 40 {
		t.Errorf("derived views = %d, want 40", len(views))
	}
}

func TestViewGeneratorErrors(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 500)
	bad := req
	bad.Table = "nope"
	if _, err := e.Generator().Views(context.Background(), bad); err == nil {
		t.Error("unknown table should fail")
	}
	bad = req
	bad.Dimensions = []string{"nosuch"}
	if _, err := e.Generator().Views(context.Background(), bad); err == nil {
		t.Error("unknown dimension should fail")
	}
	bad = req
	bad.Measures = []string{"nosuch"}
	if _, err := e.Generator().Views(context.Background(), bad); err == nil {
		t.Error("unknown measure should fail")
	}
	bad = req
	bad.Aggs = []AggFunc{"MEDIAN"}
	if _, err := e.Generator().Views(context.Background(), bad); err == nil {
		t.Error("unsupported aggregate should fail")
	}
}

func TestRecommendValidation(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 500)
	ctx := context.Background()
	bad := req
	bad.TargetWhere = ""
	if _, err := e.Recommend(ctx, bad, Options{}); err == nil {
		t.Error("empty target predicate should fail")
	}
	bad = req
	bad.Reference = RefCustom
	if _, err := e.Recommend(ctx, bad, Options{}); err == nil {
		t.Error("RefCustom without ReferenceWhere should fail")
	}
	bad = req
	bad.Table = "missing"
	if _, err := e.Recommend(ctx, bad, Options{}); err == nil {
		t.Error("missing table should fail")
	}
	bad = req
	bad.TargetWhere = "syntax error here ("
	if _, err := e.Recommend(ctx, bad, Options{Strategy: Sharing}); err == nil {
		t.Error("malformed predicate should surface a SQL error")
	}
}

func TestRecommendFindsPlantedTopView(t *testing.T) {
	// The census generator plants (sex, capital_gain) as the strongest
	// non-selector deviation; SeeDB must rank it near the top.
	for _, layout := range []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol} {
		e, req := buildCensus(t, layout, 8000)
		res, err := e.Recommend(context.Background(), req, Options{Strategy: Sharing, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range res.Recommendations {
			if r.View.Dimension == "sex" && r.View.Measure == "capital_gain" {
				found = true
			}
		}
		if !found {
			t.Errorf("[%v] (sex, capital_gain) missing from top-5: %v", layout, ViewsOf(res.Recommendations))
		}
	}
}

func TestAllStrategiesAgreeWithoutPruning(t *testing.T) {
	// NO_OPT, SHARING and COMB (with NO_PRU) must produce identical
	// utilities — the optimizations are semantics-preserving.
	e, req := buildCensus(t, sqldb.LayoutCol, 4000)
	ctx := context.Background()
	utilities := func(strategy Strategy) map[string]float64 {
		res, err := e.Recommend(ctx, req, Options{
			Strategy: strategy, Pruning: NoPruning, K: 40, KeepAllViews: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		m := make(map[string]float64)
		for _, r := range res.AllViews {
			m[r.View.Key()] = r.Utility
		}
		return m
	}
	base := utilities(NoOpt)
	for _, s := range []Strategy{Sharing, Comb} {
		got := utilities(s)
		if len(got) != len(base) {
			t.Fatalf("%v: %d views vs %d", s, len(got), len(base))
		}
		for k, u := range base {
			if math.Abs(got[k]-u) > 1e-9 {
				t.Errorf("%v: utility mismatch for %s: %g vs %g", s, k, got[k], u)
			}
		}
	}
}

func TestSharingOptionsPreserveResults(t *testing.T) {
	// Every sharing knob (group-by strategy, nagg cap, combined
	// target/ref) must leave utilities unchanged.
	e, req := buildCensus(t, sqldb.LayoutCol, 3000)
	ctx := context.Background()
	run := func(opts Options) map[string]float64 {
		opts.Strategy = Sharing
		opts.K = 40
		opts.KeepAllViews = true
		res, err := e.Recommend(ctx, req, opts)
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[string]float64)
		for _, r := range res.AllViews {
			m[r.View.Key()] = r.Utility
		}
		return m
	}
	base := run(Options{})
	variants := []Options{
		{GroupBy: GroupByBinPack, GroupBySet: true, MemoryBudget: 500},
		{GroupBy: GroupByBinPack, GroupBySet: true, MemoryBudget: 1000000},
		{GroupBy: GroupByMaxN, GroupBySet: true, MaxGroupBy: 4},
		{GroupBy: GroupBySingle, GroupBySet: true},
		{MaxAggregatesPerQuery: 1},
		{MaxAggregatesPerQuery: 2},
		{DisableCombineAggregates: true},
		{DisableCombineTargetRef: true},
		{Parallelism: 1},
		{Parallelism: 8},
	}
	for i, opt := range variants {
		got := run(opt)
		for k, u := range base {
			if math.Abs(got[k]-u) > 1e-9 {
				t.Errorf("variant %d (%+v): utility mismatch for %s: %g vs %g", i, opt, k, got[k], u)
				break
			}
		}
	}
}

func TestSharingReducesQueryCount(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 2000)
	ctx := context.Background()
	noopt, err := e.Recommend(ctx, req, Options{Strategy: NoOpt, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	sharing, err := e.Recommend(ctx, req, Options{Strategy: Sharing, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// NO_OPT: 2 queries per view = 80. SHARING with single-attribute
	// group-bys and combined target/ref: one query per dimension = 10.
	if noopt.Metrics.QueriesExecuted != 80 {
		t.Errorf("NO_OPT queries = %d, want 80", noopt.Metrics.QueriesExecuted)
	}
	if sharing.Metrics.QueriesExecuted != 10 {
		t.Errorf("SHARING queries = %d, want 10", sharing.Metrics.QueriesExecuted)
	}
	if sharing.Metrics.RowsScanned >= noopt.Metrics.RowsScanned {
		t.Errorf("sharing scanned %d rows, NO_OPT %d — sharing must scan less",
			sharing.Metrics.RowsScanned, noopt.Metrics.RowsScanned)
	}
}

func TestBinPackingReducesQueriesOnRowStore(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutRow, 2000)
	ctx := context.Background()
	single, err := e.Recommend(ctx, req, Options{
		Strategy: Sharing, GroupBy: GroupBySingle, GroupBySet: true, K: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := e.Recommend(ctx, req, Options{
		Strategy: Sharing, GroupBy: GroupByBinPack, GroupBySet: true, MemoryBudget: 10000, K: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Metrics.QueriesExecuted >= single.Metrics.QueriesExecuted {
		t.Errorf("bin packing issued %d queries, single %d — packing must combine",
			packed.Metrics.QueriesExecuted, single.Metrics.QueriesExecuted)
	}
}

func TestReferenceModes(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 4000)
	ctx := context.Background()

	// RefComplement: married adults only.
	reqC := req
	reqC.Reference = RefComplement
	resC, err := e.Recommend(ctx, reqC, Options{Strategy: Sharing, K: 3, KeepAllViews: true})
	if err != nil {
		t.Fatal(err)
	}
	// RefCustom with the same complement predicate must agree.
	reqX := req
	reqX.Reference = RefCustom
	reqX.ReferenceWhere = "marital = 'Married'"
	resX, err := e.Recommend(ctx, reqX, Options{Strategy: Sharing, K: 3, KeepAllViews: true})
	if err != nil {
		t.Fatal(err)
	}
	mapOf := func(r *Result) map[string]float64 {
		m := make(map[string]float64)
		for _, rec := range r.AllViews {
			m[rec.View.Key()] = rec.Utility
		}
		return m
	}
	mc, mx := mapOf(resC), mapOf(resX)
	for k, u := range mc {
		if math.Abs(mx[k]-u) > 1e-9 {
			t.Errorf("complement vs custom mismatch on %s: %g vs %g", k, u, mx[k])
		}
	}

	// RefAll must differ from RefComplement (the target rows dilute the
	// reference) but preserve the planted ordering: capital_gain-by-sex
	// still beats age-by-sex.
	resA, err := e.Recommend(ctx, req, Options{Strategy: Sharing, K: 3, KeepAllViews: true})
	if err != nil {
		t.Fatal(err)
	}
	ma := mapOf(resA)
	gainKey := View{Dimension: "sex", Measure: "capital_gain", Agg: AggAvg}.Key()
	ageKey := View{Dimension: "sex", Measure: "age", Agg: AggAvg}.Key()
	if ma[gainKey] <= ma[ageKey] {
		t.Error("RefAll: planted ordering lost")
	}
	if math.Abs(ma[gainKey]-mc[gainKey]) < 1e-12 {
		t.Error("RefAll and RefComplement should differ on utilities")
	}
}

func TestAggregateFunctionsEndToEnd(t *testing.T) {
	// A tiny hand-built table with exactly known aggregates per side.
	db := sqldb.NewDB()
	tab, err := db.CreateTable("t", sqldb.MustSchema(
		sqldb.Column{Name: "grp", Type: sqldb.TypeString},
		sqldb.Column{Name: "flagcol", Type: sqldb.TypeString},
		sqldb.Column{Name: "m", Type: sqldb.TypeFloat},
	), sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		g, f string
		m    float64
	}{
		{"a", "t", 1}, {"a", "t", 3}, {"b", "t", 10},
		{"a", "r", 4}, {"b", "r", 2}, {"b", "r", 6},
	}
	for _, r := range rows {
		if err := tab.AppendRow([]sqldb.Value{sqldb.Str(r.g), sqldb.Str(r.f), sqldb.Float(r.m)}); err != nil {
			t.Fatal(err)
		}
	}
	e := newTestEngine(db)
	req := Request{
		Table:       "t",
		TargetWhere: "flagcol = 't'",
		Reference:   RefComplement,
		Dimensions:  []string{"grp"},
		Measures:    []string{"m"},
		Aggs:        []AggFunc{AggAvg, AggSum, AggCount, AggMin, AggMax},
	}
	res, err := e.Recommend(context.Background(), req, Options{Strategy: Sharing, K: 5, KeepAllViews: true})
	if err != nil {
		t.Fatal(err)
	}
	want := map[AggFunc]struct {
		target, ref map[string]float64
	}{
		AggAvg:   {map[string]float64{"a": 2, "b": 10}, map[string]float64{"a": 4, "b": 4}},
		AggSum:   {map[string]float64{"a": 4, "b": 10}, map[string]float64{"a": 4, "b": 8}},
		AggCount: {map[string]float64{"a": 2, "b": 1}, map[string]float64{"a": 1, "b": 2}},
		AggMin:   {map[string]float64{"a": 1, "b": 10}, map[string]float64{"a": 4, "b": 2}},
		AggMax:   {map[string]float64{"a": 3, "b": 10}, map[string]float64{"a": 4, "b": 6}},
	}
	if len(res.AllViews) != 5 {
		t.Fatalf("got %d views, want 5", len(res.AllViews))
	}
	for _, r := range res.AllViews {
		w := want[r.View.Agg]
		for g, v := range w.target {
			if math.Abs(r.TargetAgg[g]-v) > 1e-9 {
				t.Errorf("%v target[%s] = %g, want %g", r.View.Agg, g, r.TargetAgg[g], v)
			}
		}
		for g, v := range w.ref {
			if math.Abs(r.ReferenceAgg[g]-v) > 1e-9 {
				t.Errorf("%v ref[%s] = %g, want %g", r.View.Agg, g, r.ReferenceAgg[g], v)
			}
		}
	}
}

func TestCIPruningAccuracy(t *testing.T) {
	// CI pruning on the planted census data must recover most of the
	// true top-k while pruning a meaningful number of views.
	e, req := buildCensus(t, sqldb.LayoutCol, 10000)
	ctx := context.Background()
	oracle, err := e.ExactTopK(ctx, req, distance.EMD, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Recommend(ctx, req, Options{
		Strategy: Comb, Pruning: CIPruning, K: 5, Phases: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(TopViews(oracle, 5), ViewsOf(res.Recommendations))
	if acc < 0.6 {
		t.Errorf("CI accuracy = %.2f, want ≥ 0.6", acc)
	}
	ud := UtilityDistance(TrueUtilityMap(oracle), TopViews(oracle, 5), ViewsOf(res.Recommendations))
	if ud > 0.05 {
		t.Errorf("CI utility distance = %.4f, want ≤ 0.05", ud)
	}
}

func TestMABPruningAccuracy(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 10000)
	ctx := context.Background()
	oracle, err := e.ExactTopK(ctx, req, distance.EMD, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Recommend(ctx, req, Options{
		Strategy: Comb, Pruning: MABPruning, K: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 5 {
		t.Fatalf("got %d recommendations, want 5", len(res.Recommendations))
	}
	acc := Accuracy(TopViews(oracle, 5), ViewsOf(res.Recommendations))
	if acc < 0.6 {
		t.Errorf("MAB accuracy = %.2f, want ≥ 0.6", acc)
	}
	ud := UtilityDistance(TrueUtilityMap(oracle), TopViews(oracle, 5), ViewsOf(res.Recommendations))
	if ud > 0.05 {
		t.Errorf("MAB utility distance = %.4f, want ≤ 0.05", ud)
	}
}

func TestRandomPruningIsWorse(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 6000)
	ctx := context.Background()
	oracle, err := e.ExactTopK(ctx, req, distance.EMD, 5)
	if err != nil {
		t.Fatal(err)
	}
	trueTop := TopViews(oracle, 5)
	trueUtil := TrueUtilityMap(oracle)
	var randAcc, ciAcc float64
	const runs = 5
	for i := 0; i < runs; i++ {
		r1, err := e.Recommend(ctx, req, Options{
			Strategy: Comb, Pruning: RandomPruning, K: 5, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		randAcc += Accuracy(trueTop, ViewsOf(r1.Recommendations))
		r2, err := e.Recommend(ctx, req, Options{
			Strategy: Comb, Pruning: CIPruning, K: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		ciAcc += Accuracy(trueTop, ViewsOf(r2.Recommendations))
	}
	if randAcc >= ciAcc {
		t.Errorf("RANDOM accuracy (%.2f) should be below CI (%.2f)", randAcc/runs, ciAcc/runs)
	}
	_ = trueUtil
}

func TestCombEarlyStopsEarly(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 10000)
	ctx := context.Background()
	// K=4: the four marital (selector) views stand far above the rest,
	// so CI pruning can decide the top-4 long before the scan finishes.
	full, err := e.Recommend(ctx, req, Options{
		Strategy: Comb, Pruning: CIPruning, K: 4, Phases: 20, ConfidenceScale: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	early, err := e.Recommend(ctx, req, Options{
		Strategy: CombEarly, Pruning: CIPruning, K: 4, Phases: 20, ConfidenceScale: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !early.Metrics.EarlyStopped {
		t.Error("COMB_EARLY should have stopped early with aggressive intervals")
	}
	if early.Metrics.RowsScanned >= full.Metrics.RowsScanned {
		t.Errorf("early scanned %d rows, full %d", early.Metrics.RowsScanned, full.Metrics.RowsScanned)
	}
	for _, r := range early.Recommendations {
		if !r.Partial {
			t.Error("early results must be marked partial")
		}
	}
}

func TestPrunedViewCountsReported(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 8000)
	res, err := e.Recommend(context.Background(), req, Options{
		Strategy: Comb, Pruning: CIPruning, K: 5, Phases: 10, ConfidenceScale: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PrunedViews == 0 {
		t.Error("aggressive CI pruning should prune at least one view")
	}
	if res.Metrics.PhasesRun == 0 || res.Metrics.Views != 40 {
		t.Errorf("metrics incomplete: %+v", res.Metrics)
	}
}

func TestContextCancellationPhased(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Recommend(ctx, req, Options{Strategy: Comb}); err == nil {
		t.Error("cancelled context should abort recommendation")
	}
}

func TestKExceedsViewCount(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 1000)
	res, err := e.Recommend(context.Background(), req, Options{Strategy: Sharing, K: 999})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 40 {
		t.Errorf("got %d recommendations, want all 40", len(res.Recommendations))
	}
}

func TestRecommendationPayload(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 3000)
	res, err := e.Recommend(context.Background(), req, Options{Strategy: Sharing, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Recommendations[0]
	if len(r.Groups) == 0 || len(r.Target) != len(r.Groups) || len(r.Reference) != len(r.Groups) {
		t.Fatalf("distribution payload inconsistent: %+v", r)
	}
	sumT, sumR := 0.0, 0.0
	for i := range r.Groups {
		sumT += r.Target[i]
		sumR += r.Reference[i]
	}
	if math.Abs(sumT-1) > 1e-9 || math.Abs(sumR-1) > 1e-9 {
		t.Errorf("distributions not normalized: %g, %g", sumT, sumR)
	}
	if r.Partial {
		t.Error("full-scan result must not be partial")
	}
	if r.Utility <= 0 {
		t.Error("top view should have positive utility")
	}
}

func TestDistanceFunctionOption(t *testing.T) {
	// All five distance functions must run end to end and rank the
	// planted (sex, capital_gain) view above (sex, age).
	e, req := buildCensus(t, sqldb.LayoutCol, 6000)
	gainKey := View{Dimension: "sex", Measure: "capital_gain", Agg: AggAvg}.Key()
	ageKey := View{Dimension: "sex", Measure: "age", Agg: AggAvg}.Key()
	for _, f := range distance.Funcs() {
		res, err := e.Recommend(context.Background(), req, Options{
			Strategy: Sharing, Distance: f, K: 40, KeepAllViews: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		m := make(map[string]float64)
		for _, r := range res.AllViews {
			m[r.View.Key()] = r.Utility
		}
		if m[gainKey] <= m[ageKey] {
			t.Errorf("%v: planted ordering lost (%g vs %g)", f, m[gainKey], m[ageKey])
		}
	}
}

func TestMABAcceptsExactlyK(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 5000)
	res, err := e.Recommend(context.Background(), req, Options{
		Strategy: CombEarly, Pruning: MABPruning, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) != 3 {
		t.Errorf("got %d recommendations, want 3", len(res.Recommendations))
	}
}

func TestAccuracyMetric(t *testing.T) {
	v := func(d string) View { return View{Dimension: d, Measure: "m", Agg: AggAvg} }
	trueTop := []View{v("a"), v("b"), v("c"), v("d")}
	if got := Accuracy(trueTop, []View{v("a"), v("b"), v("c"), v("d")}); got != 1 {
		t.Errorf("perfect accuracy = %g", got)
	}
	if got := Accuracy(trueTop, []View{v("a"), v("b"), v("x"), v("y")}); got != 0.5 {
		t.Errorf("half accuracy = %g", got)
	}
	if got := Accuracy(nil, nil); got != 1 {
		t.Errorf("empty truth accuracy = %g", got)
	}
}

func TestUtilityDistanceMetric(t *testing.T) {
	v := func(d string) View { return View{Dimension: d, Measure: "m", Agg: AggAvg} }
	util := map[string]float64{
		v("a").Key(): 0.5, v("b").Key(): 0.4, v("c").Key(): 0.3, v("d").Key(): 0.2,
	}
	trueTop := []View{v("a"), v("b")}
	// Perfect: distance 0.
	if got := UtilityDistance(util, trueTop, []View{v("a"), v("b")}); got != 0 {
		t.Errorf("perfect UD = %g", got)
	}
	// Swap b (0.4) for c (0.3): averages 0.45 vs 0.40 → 0.05.
	if got := UtilityDistance(util, trueTop, []View{v("a"), v("c")}); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("UD = %g, want 0.05", got)
	}
	if got := UtilityDistance(util, nil, nil); got != 0 {
		t.Errorf("empty UD = %g", got)
	}
}

func TestNoOptQueriesAreSerialAndPerView(t *testing.T) {
	// NO_OPT must not share anything: query count is exactly
	// 2 × |views| even when views share dimensions.
	db := sqldb.NewDB()
	tab, _ := db.CreateTable("t", sqldb.MustSchema(
		sqldb.Column{Name: "d", Type: sqldb.TypeString},
		sqldb.Column{Name: "m1", Type: sqldb.TypeFloat},
		sqldb.Column{Name: "m2", Type: sqldb.TypeFloat},
	), sqldb.LayoutCol)
	for i := 0; i < 100; i++ {
		err := tab.AppendRow([]sqldb.Value{
			sqldb.Str(fmt.Sprintf("g%d", i%4)), sqldb.Float(float64(i)), sqldb.Float(float64(i * 2)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	e := newTestEngine(db)
	res, err := e.Recommend(context.Background(), Request{
		Table:       "t",
		TargetWhere: "d = 'g0' OR d = 'g1'",
		Dimensions:  []string{"d"},
		Measures:    []string{"m1", "m2"},
	}, Options{Strategy: NoOpt, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.QueriesExecuted != 4 { // 2 views × 2 queries
		t.Errorf("NO_OPT queries = %d, want 4", res.Metrics.QueriesExecuted)
	}
}

func TestResultRankingIsSorted(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 3000)
	res, err := e.Recommend(context.Background(), req, Options{Strategy: Sharing, K: 40, KeepAllViews: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(res.AllViews, func(a, b int) bool {
		return res.AllViews[a].Utility > res.AllViews[b].Utility
	}) {
		t.Error("AllViews must be sorted by utility descending")
	}
	for i := 1; i < len(res.Recommendations); i++ {
		if res.Recommendations[i].Utility > res.Recommendations[i-1].Utility {
			t.Error("Recommendations must be sorted by utility descending")
		}
	}
}

func TestStrategyAndSchemeStrings(t *testing.T) {
	if NoOpt.String() != "NO_OPT" || CombEarly.String() != "COMB_EARLY" {
		t.Error("Strategy.String wrong")
	}
	if CIPruning.String() != "CI" || MABPruning.String() != "MAB" || RandomPruning.String() != "RANDOM" || NoPruning.String() != "NO_PRU" {
		t.Error("PruningScheme.String wrong")
	}
	if GroupByBinPack.String() != "BP" || GroupByMaxN.String() != "MAX_GB" {
		t.Error("GroupByStrategy.String wrong")
	}
	if RefAll.String() != "ALL" || RefComplement.String() != "COMPLEMENT" || RefCustom.String() != "CUSTOM" {
		t.Error("RefMode.String wrong")
	}
}
