package core

import "sort"

// This file implements the generalized utility metric sketched in
// Section 7 of the paper: deviation is one component of interestingness,
// combinable with metadata-driven attribute relevance (task-relevant
// columns), aesthetics (charts with too many groups are hard to read),
// and explicit user preference. The optimization strategies are agnostic
// to the scoring function, so generalization happens as a re-scoring pass
// over the engine's deviation-ranked output.

// UtilityWeights configures the generalized utility metric
//
//	U(V) = Deviation·S(P_target, P_ref)
//	     + DimensionBoost[V.a] + MeasureBoost[V.m]
//	     − GroupPenalty·max(0, |groups| − PreferredGroups)
type UtilityWeights struct {
	// Deviation scales the deviation component (default 1).
	Deviation float64
	// DimensionBoost adds a per-dimension relevance bonus (metadata or
	// user preference: "the analyst chooses attributes of interest").
	DimensionBoost map[string]float64
	// MeasureBoost adds a per-measure relevance bonus.
	MeasureBoost map[string]float64
	// GroupPenalty is subtracted for every group beyond PreferredGroups
	// (an aesthetics proxy: wide bar charts are hard to read).
	GroupPenalty float64
	// PreferredGroups is the widest chart considered fully readable
	// (default 12).
	PreferredGroups int
}

// withDefaults fills zero fields.
func (w UtilityWeights) withDefaults() UtilityWeights {
	if w.Deviation == 0 {
		w.Deviation = 1
	}
	if w.PreferredGroups <= 0 {
		w.PreferredGroups = 12
	}
	return w
}

// Score computes the generalized utility of one recommendation.
func (w UtilityWeights) Score(rec Recommendation) float64 {
	w = w.withDefaults()
	u := w.Deviation * rec.Utility
	if b, ok := w.DimensionBoost[rec.View.Dimension]; ok {
		u += b
	}
	if b, ok := w.MeasureBoost[rec.View.Measure]; ok {
		u += b
	}
	if over := len(rec.Groups) - w.PreferredGroups; over > 0 && w.GroupPenalty > 0 {
		u -= w.GroupPenalty * float64(over)
	}
	return u
}

// Rerank re-scores recommendations under the generalized metric and
// returns them in descending generalized-utility order (stable for
// ties). The input is not modified; Utility fields of the returned
// slice hold the generalized scores.
func (w UtilityWeights) Rerank(recs []Recommendation) []Recommendation {
	out := make([]Recommendation, len(recs))
	copy(out, recs)
	scores := make([]float64, len(out))
	for i := range out {
		scores[i] = w.Score(out[i])
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	ranked := make([]Recommendation, len(out))
	for pos, i := range idx {
		ranked[pos] = out[i]
		ranked[pos].Utility = scores[i]
	}
	return ranked
}
