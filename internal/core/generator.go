package core

import (
	"context"
	"errors"
	"fmt"

	"seedb/internal/backend"
)

// maxDimensionCardinality is the default ceiling on distinct values for a
// column to qualify as a dimension attribute when dimensions are derived
// from metadata. Columns beyond this produce unreadably wide bar charts.
const maxDimensionCardinality = 1000

// ViewGenerator enumerates the candidate aggregate views for a request
// from system metadata (the "view generator" component in the paper's
// architecture, Figure 3). Metadata comes from the backend's schema
// introspection, so enumeration works identically over the embedded
// store and external SQL stores.
type ViewGenerator struct {
	be backend.Backend
}

// NewViewGenerator creates a generator over a backend.
func NewViewGenerator(be backend.Backend) *ViewGenerator {
	return &ViewGenerator{be: be}
}

// Views enumerates V = A × M × F for the request. Explicitly listed
// dimensions/measures are validated against the schema; otherwise
// dimension attributes are string-typed columns (or integer columns with
// at most maxDimensionCardinality distinct values) and measures are
// numeric columns. A column never plays both roles in the derived
// enumeration: low-cardinality numerics become dimensions, the rest
// measures.
func (g *ViewGenerator) Views(ctx context.Context, req Request) ([]View, error) {
	ti, err := g.be.TableInfo(ctx, req.Table)
	if errors.Is(err, backend.ErrNoTable) {
		return nil, fmt.Errorf("core: table %q does not exist", req.Table)
	}
	if err != nil {
		return nil, fmt.Errorf("core: table metadata for %q: %w", req.Table, err)
	}

	dims := req.Dimensions
	measures := req.Measures
	if len(dims) == 0 || len(measures) == 0 {
		stats, err := g.be.TableStats(ctx, req.Table)
		if err != nil {
			return nil, err
		}
		var derivedDims, derivedMeasures []string
		for _, cs := range stats.Columns {
			switch cs.Type {
			case backend.TypeString, backend.TypeBool:
				if cs.Distinct <= maxDimensionCardinality {
					derivedDims = append(derivedDims, cs.Name)
				}
			case backend.TypeInt:
				if cs.Distinct <= maxDimensionCardinality/10 {
					derivedDims = append(derivedDims, cs.Name)
				} else {
					derivedMeasures = append(derivedMeasures, cs.Name)
				}
			case backend.TypeFloat:
				derivedMeasures = append(derivedMeasures, cs.Name)
			}
		}
		if len(dims) == 0 {
			dims = derivedDims
		}
		if len(measures) == 0 {
			measures = derivedMeasures
		}
	}
	for _, d := range dims {
		if _, ok := ti.Lookup(d); !ok {
			return nil, fmt.Errorf("core: dimension %q not in table %s", d, req.Table)
		}
	}
	for _, m := range measures {
		if _, ok := ti.Lookup(m); !ok {
			return nil, fmt.Errorf("core: measure %q not in table %s", m, req.Table)
		}
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("core: no dimension attributes found in table %s", req.Table)
	}
	if len(measures) == 0 {
		return nil, fmt.Errorf("core: no measure attributes found in table %s", req.Table)
	}

	aggs := req.Aggs
	if len(aggs) == 0 {
		aggs = []AggFunc{AggAvg}
	}
	for _, f := range aggs {
		if !ValidAggFunc(f) {
			return nil, fmt.Errorf("core: unsupported aggregate %q", f)
		}
	}

	views := make([]View, 0, len(dims)*len(measures)*len(aggs))
	for _, a := range dims {
		for _, m := range measures {
			if a == m {
				continue
			}
			for _, f := range aggs {
				views = append(views, View{Dimension: a, Measure: m, Agg: f})
			}
		}
	}
	if len(views) == 0 {
		return nil, fmt.Errorf("core: view space is empty for table %s", req.Table)
	}
	return views, nil
}

// DimensionCardinalities returns the distinct-value count for each named
// dimension, in order — the |a_i| inputs to the bin-packing optimizer.
func (g *ViewGenerator) DimensionCardinalities(ctx context.Context, table string, dims []string) ([]int, error) {
	stats, err := g.be.TableStats(ctx, table)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(dims))
	for i, d := range dims {
		cs, ok := stats.Column(d)
		if !ok {
			return nil, fmt.Errorf("core: no statistics for column %q", d)
		}
		out[i] = cs.Distinct
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out, nil
}
