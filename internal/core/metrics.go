package core

// This file implements the result-quality metrics from Section 5.4 of the
// paper: accuracy (fraction of true top-k views returned) and utility
// distance (how far the returned set's true average utility is from the
// true top-k's average utility).

// Accuracy returns |{νT} ∩ {νS}| / |{νT}|: the fraction of the true
// top-k views that appear in the returned set.
func Accuracy(trueTop, returned []View) float64 {
	if len(trueTop) == 0 {
		return 1
	}
	got := make(map[string]bool, len(returned))
	for _, v := range returned {
		got[v.Key()] = true
	}
	hits := 0
	for _, v := range trueTop {
		if got[v.Key()] {
			hits++
		}
	}
	return float64(hits) / float64(len(trueTop))
}

// UtilityDistance returns the difference between the average true utility
// of the true top-k views and the average true utility of the returned
// views: (Σ U(νT_i) − Σ U(νS_i)) / k. Utilities are looked up in
// trueUtil (keyed by View.Key()); unknown returned views count as utility
// 0. The result is non-negative for any returned set when trueTop really
// is the top-k.
func UtilityDistance(trueUtil map[string]float64, trueTop, returned []View) float64 {
	if len(trueTop) == 0 || len(returned) == 0 {
		return 0
	}
	var sumTrue float64
	for _, v := range trueTop {
		sumTrue += trueUtil[v.Key()]
	}
	var sumGot float64
	for _, v := range returned {
		sumGot += trueUtil[v.Key()]
	}
	d := sumTrue/float64(len(trueTop)) - sumGot/float64(len(returned))
	if d < 0 {
		return -d
	}
	return d
}

// TrueUtilityMap builds the View.Key() → utility lookup from an oracle
// result (ExactTopK with KeepAllViews).
func TrueUtilityMap(oracle *Result) map[string]float64 {
	m := make(map[string]float64, len(oracle.AllViews))
	for _, r := range oracle.AllViews {
		m[r.View.Key()] = r.Utility
	}
	return m
}

// ViewsOf extracts the view identities from recommendations.
func ViewsOf(recs []Recommendation) []View {
	out := make([]View, len(recs))
	for i, r := range recs {
		out[i] = r.View
	}
	return out
}

// TopViews returns the first k views of an oracle's ranked AllViews.
func TopViews(oracle *Result, k int) []View {
	if k > len(oracle.AllViews) {
		k = len(oracle.AllViews)
	}
	out := make([]View, k)
	for i := 0; i < k; i++ {
		out[i] = oracle.AllViews[i].View
	}
	return out
}
