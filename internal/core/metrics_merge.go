package core

// Merge folds another invocation's metrics into m, producing the
// aggregate view a server exposes across requests: additive counters
// sum, peak counters take the max, and booleans OR. FallbackReasons
// merges per reason (allocating only when the source has any), so the
// aggregate preserves the RecordExec invariants — QueriesExecuted ==
// VectorizedQueries + FallbackQueries and the per-reason counts sum to
// FallbackQueries — whenever every input satisfied them. DegradedFrom
// keeps the first value seen, since a mixed aggregate has no single
// requested strategy.
func (m *Metrics) Merge(o Metrics) {
	m.Views += o.Views
	m.QueriesExecuted += o.QueriesExecuted
	m.VectorizedQueries += o.VectorizedQueries
	m.FallbackQueries += o.FallbackQueries
	if len(o.FallbackReasons) > 0 {
		if m.FallbackReasons == nil {
			m.FallbackReasons = make(map[string]int, len(o.FallbackReasons))
		}
		for reason, n := range o.FallbackReasons {
			m.FallbackReasons[reason] += n
		}
	}
	m.SelectionKernels += o.SelectionKernels
	m.ResidualPredicates += o.ResidualPredicates
	if o.ScanWorkers > m.ScanWorkers {
		m.ScanWorkers = o.ScanWorkers
	}
	m.ShardQueries += o.ShardQueries
	m.ShardFanout += o.ShardFanout
	if o.ShardStragglerMax > m.ShardStragglerMax {
		m.ShardStragglerMax = o.ShardStragglerMax
	}
	m.ShardPartialsCached += o.ShardPartialsCached
	m.HedgedPartials += o.HedgedPartials
	m.HedgeWins += o.HedgeWins
	m.NetRetries += o.NetRetries
	m.ShardsDegraded += o.ShardsDegraded
	m.DegradedShards = unionSorted(m.DegradedShards, o.DegradedShards)
	m.ServedStale = m.ServedStale || o.ServedStale
	m.RowsScanned += o.RowsScanned
	if o.MaxGroups > m.MaxGroups {
		m.MaxGroups = o.MaxGroups
	}
	m.PhasesRun += o.PhasesRun
	m.PrunedViews += o.PrunedViews
	m.EarlyStopped = m.EarlyStopped || o.EarlyStopped
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.RefViewsReused += o.RefViewsReused
	m.ServedFromCache = m.ServedFromCache || o.ServedFromCache
	m.StrategyDegraded = m.StrategyDegraded || o.StrategyDegraded
	if m.DegradedFrom == "" {
		m.DegradedFrom = o.DegradedFrom
	}
	m.Elapsed += o.Elapsed
}

// unionSorted merges two sorted int slices without duplicates. Either
// input may be nil; the result is nil only when both are.
func unionSorted(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
