package core

import (
	"testing"
	"time"
)

func TestMetricsMergeCounters(t *testing.T) {
	a := Metrics{
		Views: 10, QueriesExecuted: 4, VectorizedQueries: 3, FallbackQueries: 1,
		FallbackReasons:  map[string]int{"serial execution": 1},
		SelectionKernels: 2, ResidualPredicates: 1,
		ScanWorkers: 2, RowsScanned: 100, MaxGroups: 7, PhasesRun: 1,
		CacheHits: 1, Elapsed: time.Second,
	}
	b := Metrics{
		Views: 5, QueriesExecuted: 6, VectorizedQueries: 2, FallbackQueries: 4,
		FallbackReasons:  map[string]int{"serial execution": 3, "id-space overflow": 1},
		SelectionKernels: 1,
		ScanWorkers:      8, RowsScanned: 50, MaxGroups: 3, PhasesRun: 10,
		PrunedViews: 2, EarlyStopped: true, CacheMisses: 2, RefViewsReused: 1,
		ServedFromCache: true, StrategyDegraded: true, DegradedFrom: "COMB",
		Elapsed: time.Second,
	}
	a.Merge(b)

	if a.Views != 15 || a.QueriesExecuted != 10 || a.RowsScanned != 150 {
		t.Fatalf("additive counters wrong: %+v", a)
	}
	if a.VectorizedQueries+a.FallbackQueries != a.QueriesExecuted {
		t.Fatalf("executed partition broken: %+v", a)
	}
	sum := 0
	for _, n := range a.FallbackReasons {
		sum += n
	}
	if sum != a.FallbackQueries {
		t.Fatalf("reasons sum %d != fallback %d", sum, a.FallbackQueries)
	}
	if a.FallbackReasons["serial execution"] != 4 || a.FallbackReasons["id-space overflow"] != 1 {
		t.Fatalf("FallbackReasons = %v", a.FallbackReasons)
	}
	if a.ScanWorkers != 8 || a.MaxGroups != 7 {
		t.Fatalf("peak counters wrong: workers=%d groups=%d", a.ScanWorkers, a.MaxGroups)
	}
	if !a.EarlyStopped || !a.ServedFromCache || !a.StrategyDegraded || a.DegradedFrom != "COMB" {
		t.Fatalf("flags wrong: %+v", a)
	}
	if a.Elapsed != 2*time.Second || a.PhasesRun != 11 || a.PrunedViews != 2 {
		t.Fatalf("elapsed/phases/pruned wrong: %+v", a)
	}
	if a.CacheHits != 1 || a.CacheMisses != 2 || a.RefViewsReused != 1 {
		t.Fatalf("cache counters wrong: %+v", a)
	}
	// The source is untouched (maps are not aliased).
	a.FallbackReasons["serial execution"] = 99
	if b.FallbackReasons["serial execution"] != 3 {
		t.Fatalf("merge aliased the source map: %v", b.FallbackReasons)
	}
}

func TestMetricsMergeZeroValues(t *testing.T) {
	// zero.Merge(zero) stays zero, reasons map stays nil.
	var a, b Metrics
	a.Merge(b)
	if a.FallbackReasons != nil {
		t.Fatalf("merge of zero metrics allocated a map: %v", a.FallbackReasons)
	}
	if a.QueriesExecuted != 0 || a.Elapsed != 0 || a.EarlyStopped || a.DegradedFrom != "" {
		t.Fatalf("zero merge mutated: %+v", a)
	}

	// zero.Merge(populated) copies everything.
	src := Metrics{QueriesExecuted: 2, FallbackQueries: 2,
		FallbackReasons: map[string]int{"unreported": 2}, DegradedFrom: "COMB_EARLY"}
	var dst Metrics
	dst.Merge(src)
	if dst.FallbackReasons["unreported"] != 2 || dst.DegradedFrom != "COMB_EARLY" {
		t.Fatalf("zero-dest merge lost data: %+v", dst)
	}

	// populated.Merge(zero) is a no-op on content.
	before := dst.QueriesExecuted
	dst.Merge(Metrics{})
	if dst.QueriesExecuted != before || dst.FallbackReasons["unreported"] != 2 {
		t.Fatalf("merge with zero changed content: %+v", dst)
	}
}

func TestMetricsMergeShardCounters(t *testing.T) {
	a := Metrics{ShardQueries: 1, ShardFanout: 4, ShardStragglerMax: 5 * time.Millisecond}
	b := Metrics{ShardQueries: 2, ShardFanout: 8, ShardStragglerMax: 3 * time.Millisecond}
	a.Merge(b)
	if a.ShardQueries != 3 || a.ShardFanout != 12 {
		t.Fatalf("shard sums wrong: %+v", a)
	}
	if a.ShardStragglerMax != 5*time.Millisecond {
		t.Fatalf("straggler max wrong: %v", a.ShardStragglerMax)
	}
	a.Merge(Metrics{ShardStragglerMax: time.Second})
	if a.ShardStragglerMax != time.Second {
		t.Fatalf("straggler max did not advance: %v", a.ShardStragglerMax)
	}
}

func TestMetricsMergeDegradedFromKeepsFirst(t *testing.T) {
	var a Metrics
	a.Merge(Metrics{StrategyDegraded: true, DegradedFrom: "COMB"})
	a.Merge(Metrics{StrategyDegraded: true, DegradedFrom: "COMB_EARLY"})
	if a.DegradedFrom != "COMB" {
		t.Fatalf("DegradedFrom = %q, want first value kept", a.DegradedFrom)
	}
}
