package core

import (
	"fmt"
	"runtime"
	"time"

	"seedb/internal/backend"
	"seedb/internal/cache"
	"seedb/internal/distance"
)

// Strategy selects the execution strategy, mirroring the paper's
// evaluation configurations (Figure 5).
type Strategy int

// Execution strategies.
const (
	// NoOpt is the basic framework: two serial SQL queries per view.
	NoOpt Strategy = iota
	// Sharing applies all sharing optimizations (Section 4.1) in a
	// single pass over the data: combined aggregates, combined group-bys
	// under a memory budget, combined target/reference queries, and
	// parallel query execution.
	Sharing
	// Comb composes sharing with the phased execution framework and
	// pruning (Sections 3 and 4.2).
	Comb
	// CombEarly is Comb with early result return: execution stops as
	// soon as the top-k set is decided and approximate results are
	// returned (the paper's COMB_EARLY).
	CombEarly
)

// EffectiveStrategy returns the strategy the engine actually executes
// against a backend with the given capabilities. The phased execution
// framework needs row-range scans (process the i-th of n partitions);
// backends without SupportsPhasedExecution therefore run COMB and
// COMB_EARLY requests as single-pass SHARING — every sharing
// optimization still applies, only pruning and early return are lost.
// The engine applies this rewrite (and canonicalizes the now-inert
// pruning options) before cache-key construction, so a degraded COMB
// request and the equivalent SHARING request share one cache entry.
func EffectiveStrategy(s Strategy, caps backend.Capabilities) Strategy {
	if !caps.SupportsPhasedExecution && (s == Comb || s == CombEarly) {
		return Sharing
	}
	return s
}

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case NoOpt:
		return "NO_OPT"
	case Sharing:
		return "SHARING"
	case Comb:
		return "COMB"
	case CombEarly:
		return "COMB_EARLY"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// PruningScheme selects the pruning optimization (Section 4.2).
type PruningScheme int

// Pruning schemes.
const (
	// NoPruning (NO_PRU) processes all data for all views.
	NoPruning PruningScheme = iota
	// CIPruning discards views whose Hoeffding–Serfling confidence
	// interval upper bound falls below the lower bound of at least k
	// views.
	CIPruning
	// MABPruning runs the Successive Accepts and Rejects bandit
	// strategy: each phase accepts the top view or rejects the bottom
	// view based on the Δ1 vs Δn comparison.
	MABPruning
	// RandomPruning returns a random k-subset (the paper's RANDOM
	// baseline; a lower bound on accuracy).
	RandomPruning
)

// String returns the paper's name for the scheme.
func (p PruningScheme) String() string {
	switch p {
	case NoPruning:
		return "NO_PRU"
	case CIPruning:
		return "CI"
	case MABPruning:
		return "MAB"
	case RandomPruning:
		return "RANDOM"
	default:
		return fmt.Sprintf("PruningScheme(%d)", int(p))
	}
}

// GroupByStrategy selects how dimension attributes combine into
// multi-attribute GROUP BY queries (Section 4.1, Problem 4.1).
type GroupByStrategy int

// Group-by combination strategies.
const (
	// GroupBySingle issues one single-attribute GROUP BY per dimension
	// (no combining) — the paper's choice for column stores, whose small
	// memory budget biases optimal groupings toward single attributes.
	GroupBySingle GroupByStrategy = iota
	// GroupByBinPack packs dimensions with first-fit so each query's
	// worst-case distinct-group count stays under MemoryBudget (the
	// paper's BP).
	GroupByBinPack
	// GroupByMaxN caps the number of group-by attributes per query at
	// MaxGroupBy regardless of cardinality (the paper's MAX_GB
	// baseline).
	GroupByMaxN
)

// String returns a short name for the strategy.
func (g GroupByStrategy) String() string {
	switch g {
	case GroupBySingle:
		return "SINGLE"
	case GroupByBinPack:
		return "BP"
	case GroupByMaxN:
		return "MAX_GB"
	default:
		return fmt.Sprintf("GroupByStrategy(%d)", int(g))
	}
}

// Default memory budgets (maximum distinct groups per query), matching
// the empirical thresholds in Figure 8a of the paper.
const (
	DefaultRowMemoryBudget = 10000
	DefaultColMemoryBudget = 100
)

// DefaultCacheBudgetBytes is the shared result cache's byte budget when
// caching is enabled without an explicit budget.
const DefaultCacheBudgetBytes = cache.DefaultBudgetBytes

// Options configures the SeeDB engine.
type Options struct {
	// Strategy is the execution strategy (default Comb).
	Strategy Strategy
	// Pruning selects the pruning scheme for Comb/CombEarly (default
	// CIPruning).
	Pruning PruningScheme
	// Distance is the utility distance function (default EMD, the
	// paper's default).
	Distance distance.Func
	// K is the number of visualizations to recommend (default 10).
	K int
	// Phases is the number of partitions for phased execution. 0 means
	// automatic: 10 for CI (the paper's configuration), and enough
	// phases for one bandit action per view for MAB.
	Phases int
	// Parallelism caps concurrently executing view queries (default:
	// GOMAXPROCS, matching the paper's "number of cores" guidance).
	Parallelism int
	// ScanParallelism sets the intra-query scan parallelism: the number
	// of workers sqldb's vectorized executor may use per view query
	// (default: GOMAXPROCS; 1 forces the serial row interpreter, for
	// byte-stable float aggregation across runs). Like Parallelism it
	// changes cost, never which views win, so it is excluded from cache
	// keys. It composes with Parallelism — up to Parallelism ×
	// ScanParallelism goroutines scan concurrently — which pays off when
	// sharing collapses a request into fewer queries than cores.
	ScanParallelism int
	// DisableSelectionKernels turns off the compiled predicate selection
	// kernels inside sqldb's vectorized executor: WHERE and CASE-flag
	// predicates then evaluate row-at-a-time through closures. Like
	// ScanParallelism it changes cost, never output, so it is excluded
	// from cache keys (and canonicalized away wherever it is inert:
	// NO_OPT plans and backends without a vectorized executor). Intended
	// for benchmarking the kernels against the closure baseline.
	DisableSelectionKernels bool
	// GroupBy selects the group-by combining strategy. Defaults to
	// GroupByBinPack for row stores and GroupBySingle for column stores.
	GroupBy GroupByStrategy
	// GroupBySet forces GroupBy to be honored even when it is the zero
	// value (GroupBySingle); otherwise layout defaults apply.
	GroupBySet bool
	// MemoryBudget is the maximum estimated distinct groups per query
	// for GroupByBinPack. 0 picks the layout default.
	MemoryBudget int
	// MaxGroupBy is the attribute cap for GroupByMaxN (default 3).
	MaxGroupBy int
	// MaxAggregatesPerQuery caps how many measures one shared query may
	// aggregate (the paper's nagg experiment, Figure 7a). 0 = unlimited.
	MaxAggregatesPerQuery int
	// CombineAggregates enables the multiple-aggregates optimization.
	// Only honored by Sharing/Comb strategies; disabled implies one
	// measure per query. Default true.
	DisableCombineAggregates bool
	// DisableCombineTargetRef disables rewriting target+reference into a
	// single flag-grouped query; the engine then issues separate target
	// and reference queries. Default false (combining on).
	DisableCombineTargetRef bool
	// Delta is the CI pruning failure probability δ (default 0.05).
	Delta float64
	// ConfidenceScale multiplies the Hoeffding–Serfling half-width; 1.0
	// is the theoretical worst-case interval. Values below 1 prune more
	// aggressively (default 1.0).
	ConfidenceScale float64
	// Seed drives the RANDOM pruning baseline and any tie-breaking
	// shuffles (default 1).
	Seed int64
	// KeepAllViews retains per-view estimates for every enumerated view
	// in the result (needed by the evaluation harness; default false
	// keeps only the top-k).
	KeepAllViews bool
	// EnableCache routes this request through the engine's shared result
	// cache (internal/cache): whole-request memoization, shared-query
	// memoization with singleflight collapsing, and the materialized
	// reference-view store. The cache is keyed by dataset version, so
	// loads, inserts and drops invalidate stale entries automatically.
	// Default false (every request recomputes, the paper's behavior).
	EnableCache bool
	// CacheBudgetBytes sizes the engine's cache when EnableCache has to
	// create it lazily (an engine-level cache installed via SetCache
	// wins). 0 means DefaultCacheBudgetBytes.
	CacheBudgetBytes int64
	// SlowQueryThreshold overrides the engine telemetry collector's
	// slow-log threshold for this request: queries (and the request
	// itself) taking at least this long are written to the collector's
	// slow-query log. 0 uses the log's own threshold. Inert without a
	// collector carrying a slow log (Engine.SetTelemetry). Like
	// Parallelism it describes observation cost, never output, so it is
	// excluded from cache keys.
	SlowQueryThreshold time.Duration
	// AllowPartial opts the request into degraded results on routing
	// backends: when a shard child is unavailable, its partition is
	// skipped and the recommendation is computed over the surviving
	// shards, with Metrics.ShardsDegraded/DegradedShards stamped so the
	// caller knows coverage is partial. Degraded results are never
	// admitted to the shared result cache. It IS part of the cache key:
	// a complete-or-error request must not share a flight (or an entry)
	// with one that may legally return partial coverage. Default false.
	AllowPartial bool
	// ServeStaleOnError serves the last successfully computed result for
	// the same request (whatever dataset version it was computed at)
	// when the backend is unavailable — outage masking for read-mostly
	// dashboards. The response is marked via Metrics.ServedStale.
	// Requires EnableCache; default false (errors propagate).
	ServeStaleOnError bool
}

// withDefaults fills unset options given the table layout.
func (o Options) withDefaults(layout backend.Layout, numViews int) Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.ScanParallelism <= 0 {
		o.ScanParallelism = runtime.GOMAXPROCS(0)
	}
	if !o.GroupBySet {
		if layout == backend.LayoutRow {
			o.GroupBy = GroupByBinPack
		} else {
			o.GroupBy = GroupBySingle
		}
	}
	if o.MemoryBudget <= 0 {
		if layout == backend.LayoutRow {
			o.MemoryBudget = DefaultRowMemoryBudget
		} else {
			o.MemoryBudget = DefaultColMemoryBudget
		}
	}
	if o.MaxGroupBy <= 0 {
		o.MaxGroupBy = 3
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		o.Delta = 0.05
	}
	if o.ConfidenceScale <= 0 {
		o.ConfidenceScale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CacheBudgetBytes <= 0 {
		o.CacheBudgetBytes = DefaultCacheBudgetBytes
	}
	if o.Phases <= 0 {
		switch o.Pruning {
		case MABPruning:
			o.Phases = numViews - o.K
			if o.Phases < 10 {
				o.Phases = 10
			}
		default:
			o.Phases = 10
		}
	}
	return o
}

// RefMode selects the reference dataset D_R (Section 2).
type RefMode int

// Reference modes.
const (
	// RefAll uses the entire dataset D as the reference (the paper's
	// default when the analyst does not specify one).
	RefAll RefMode = iota
	// RefComplement uses D − D_Q, the complement of the target subset.
	RefComplement
	// RefCustom uses the rows matching Request.ReferenceWhere (an
	// arbitrary query Q′).
	RefCustom
)

// String names the reference mode.
func (m RefMode) String() string {
	switch m {
	case RefAll:
		return "ALL"
	case RefComplement:
		return "COMPLEMENT"
	case RefCustom:
		return "CUSTOM"
	default:
		return fmt.Sprintf("RefMode(%d)", int(m))
	}
}

// Request describes one SeeDB invocation: the analyst's query plus the
// candidate-view space.
type Request struct {
	// Table is the fact table to analyze.
	Table string
	// TargetWhere is the SQL predicate selecting the target subset D_Q,
	// e.g. "marital = 'Unmarried'".
	TargetWhere string
	// Reference selects D_R (default RefAll).
	Reference RefMode
	// ReferenceWhere is the predicate for RefCustom.
	ReferenceWhere string
	// Dimensions optionally restricts the dimension attributes A; empty
	// means derive from table metadata (string-typed or low-cardinality
	// columns).
	Dimensions []string
	// Measures optionally restricts the measure attributes M; empty
	// means derive from metadata (numeric columns).
	Measures []string
	// Aggs lists the aggregate functions F (default {AVG}).
	Aggs []AggFunc
}
