package core

import (
	"context"
	"math"
	"testing"

	"seedb/internal/sqldb"
)

// TestScanParallelismPreservesResults asserts the intra-query parallel
// executor changes cost, not output: every worker count returns the same
// views with the same utilities (within float reassociation noise), and
// the executor metrics reflect which path ran.
func TestScanParallelismPreservesResults(t *testing.T) {
	e, req := buildCensus(t, sqldb.LayoutCol, 3000)
	ctx := context.Background()

	run := func(strategy Strategy, scanPar int) *Result {
		res, err := e.Recommend(ctx, req, Options{
			Strategy:        strategy,
			Pruning:         NoPruning,
			K:               40,
			KeepAllViews:    true,
			ScanParallelism: scanPar,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, strategy := range []Strategy{Sharing, Comb} {
		base := run(strategy, 1)
		if base.Metrics.VectorizedQueries != 0 || base.Metrics.ScanWorkers != 1 {
			t.Errorf("%v scan=1: vectorized=%d workers=%d, want serial interpreter",
				strategy, base.Metrics.VectorizedQueries, base.Metrics.ScanWorkers)
		}
		for _, scanPar := range []int{2, 4, 7} {
			got := run(strategy, scanPar)
			if got.Metrics.VectorizedQueries == 0 {
				t.Errorf("%v scan=%d: no vectorized queries", strategy, scanPar)
			}
			if got.Metrics.FallbackQueries != 0 {
				t.Errorf("%v scan=%d: %d queries fell back; SeeDB-shaped queries should all vectorize",
					strategy, scanPar, got.Metrics.FallbackQueries)
			}
			if got.Metrics.ScanWorkers < 2 || got.Metrics.ScanWorkers > scanPar {
				t.Errorf("%v scan=%d: reported %d workers", strategy, scanPar, got.Metrics.ScanWorkers)
			}
			if len(got.AllViews) != len(base.AllViews) {
				t.Fatalf("%v scan=%d: %d views vs %d", strategy, scanPar, len(got.AllViews), len(base.AllViews))
			}
			for i := range base.AllViews {
				b, g := base.AllViews[i], got.AllViews[i]
				if b.View.Key() != g.View.Key() {
					t.Errorf("%v scan=%d: rank %d view %s vs %s", strategy, scanPar, i, g.View.Key(), b.View.Key())
					break
				}
				if math.Abs(b.Utility-g.Utility) > 1e-9 {
					t.Errorf("%v scan=%d: utility of %s: %g vs %g", strategy, scanPar, b.View.Key(), g.Utility, b.Utility)
					break
				}
			}
		}
	}

	// NO_OPT is the unoptimized baseline: it must ignore ScanParallelism
	// and keep the serial interpreter.
	noopt := run(NoOpt, 8)
	if noopt.Metrics.VectorizedQueries != 0 || noopt.Metrics.ScanWorkers != 1 {
		t.Errorf("NO_OPT: vectorized=%d workers=%d, want serial baseline",
			noopt.Metrics.VectorizedQueries, noopt.Metrics.ScanWorkers)
	}
}
