package core

import (
	"math/rand"
	"sort"

	"seedb/internal/stats"
)

// phaseState is the information a pruner sees at the end of each phase.
type phaseState struct {
	// estimates[i] is view i's utility estimate from the data processed
	// so far (cumulative across phases), clamped to [0,1] for the
	// statistical bounds.
	estimates []float64
	// alive[i] marks views still being processed.
	alive []bool
	// accepted[i] marks views the pruner has already locked into the
	// top-k (MAB accepts); accepted views stop being scanned.
	accepted []bool
	// rowsSeen/totalRows track scan progress for interval width.
	rowsSeen, totalRows int
	// k is the number of views requested.
	k int
}

// aliveCount returns how many views are still being processed.
func (ps *phaseState) aliveCount() int {
	n := 0
	for _, a := range ps.alive {
		if a {
			n++
		}
	}
	return n
}

// acceptedCount returns how many views have been accepted.
func (ps *phaseState) acceptedCount() int {
	n := 0
	for _, a := range ps.accepted {
		if a {
			n++
		}
	}
	return n
}

// pruner is the per-phase pruning policy (Section 4.2).
type pruner interface {
	// prune inspects the end-of-phase state and discards (alive=false)
	// or accepts (accepted=true, alive=false) views in place.
	prune(ps *phaseState)
	// decided reports whether the top-k set is already determined, which
	// lets COMB_EARLY stop scanning.
	decided(ps *phaseState) bool
}

// newPruner builds the pruner for the configured scheme.
func newPruner(opts Options) pruner {
	switch opts.Pruning {
	case CIPruning:
		return &ciPruner{delta: opts.Delta, scale: opts.ConfidenceScale}
	case MABPruning:
		return &mabPruner{}
	case RandomPruning:
		return &randomPruner{rng: rand.New(rand.NewSource(opts.Seed))}
	default:
		return noPruner{}
	}
}

// noPruner is the NO_PRU baseline: every view is processed on all data.
type noPruner struct{}

func (noPruner) prune(*phaseState)        {}
func (noPruner) decided(*phaseState) bool { return false }

// ciPruner implements confidence-interval pruning: maintain a
// Hoeffding–Serfling interval around each view's utility estimate and
// discard a view when its upper bound falls below the lower bound of at
// least k views (Figure 4 in the paper).
type ciPruner struct {
	delta float64
	scale float64
}

func (p *ciPruner) prune(ps *phaseState) {
	eps := stats.HoeffdingSerfling(ps.rowsSeen, ps.totalRows, p.delta) * p.scale
	if eps != eps || eps < 0 { // NaN guard
		return
	}
	// All views share m and N, so every interval has the same width and
	// the rule reduces to: prune v if est(v)+ε < L, where L is the k-th
	// largest est−ε among live views.
	var lowers []float64
	for i, alive := range ps.alive {
		if alive || ps.accepted[i] {
			lowers = append(lowers, clamp01(ps.estimates[i])-eps)
		}
	}
	if len(lowers) <= ps.k {
		return
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(lowers)))
	threshold := lowers[ps.k-1]
	for i, alive := range ps.alive {
		if !alive {
			continue
		}
		if clamp01(ps.estimates[i])+eps < threshold {
			ps.alive[i] = false
		}
	}
}

func (p *ciPruner) decided(ps *phaseState) bool {
	return ps.aliveCount()+ps.acceptedCount() <= ps.k
}

// mabPruner implements the Successive Accepts and Rejects bandit strategy
// [Bubeck et al. 2013]: per phase, rank live views by estimated utility;
// let Δ1 be the gap between the best and the (k+1)-st, and Δn the gap
// between the k-th and the worst. Accept the best view if Δ1 > Δn,
// otherwise reject the worst.
type mabPruner struct{}

func (p *mabPruner) prune(ps *phaseState) {
	kRemaining := ps.k - ps.acceptedCount()
	if kRemaining <= 0 {
		// Top-k fully accepted: discard everything still running.
		for i := range ps.alive {
			ps.alive[i] = false
		}
		return
	}
	// Rank live views by estimate, descending.
	type ranked struct {
		idx int
		est float64
	}
	var live []ranked
	for i, alive := range ps.alive {
		if alive {
			live = append(live, ranked{i, ps.estimates[i]})
		}
	}
	if len(live) <= kRemaining {
		// Everything left is needed; accept them all.
		for _, r := range live {
			ps.alive[r.idx] = false
			ps.accepted[r.idx] = true
		}
		return
	}
	sort.Slice(live, func(a, b int) bool {
		if live[a].est != live[b].est {
			return live[a].est > live[b].est
		}
		return live[a].idx < live[b].idx
	})
	delta1 := live[0].est - live[kRemaining].est
	deltaN := live[kRemaining-1].est - live[len(live)-1].est
	if delta1 > deltaN {
		best := live[0].idx
		ps.alive[best] = false
		ps.accepted[best] = true
	} else {
		worst := live[len(live)-1].idx
		ps.alive[worst] = false
	}
}

func (p *mabPruner) decided(ps *phaseState) bool {
	return ps.acceptedCount() >= ps.k || ps.aliveCount()+ps.acceptedCount() <= ps.k
}

// randomPruner is the RANDOM baseline: after the first phase it keeps a
// uniformly random k-subset of the views and discards the rest. It lower
// bounds accuracy and upper bounds utility distance.
type randomPruner struct {
	rng  *rand.Rand
	done bool
}

func (p *randomPruner) prune(ps *phaseState) {
	if p.done {
		return
	}
	p.done = true
	var live []int
	for i, alive := range ps.alive {
		if alive {
			live = append(live, i)
		}
	}
	p.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	for j, idx := range live {
		if j >= ps.k {
			ps.alive[idx] = false
		}
	}
}

func (p *randomPruner) decided(ps *phaseState) bool { return p.done }

// clamp01 clamps a utility into [0, 1] for the statistical machinery.
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
