package core

import (
	"math"
	"testing"
)

// newPhaseState builds a phase state with the given estimates, all views
// alive, k as specified, halfway through the scan.
func newPhaseState(est []float64, k int) *phaseState {
	ps := &phaseState{
		estimates: append([]float64(nil), est...),
		alive:     make([]bool, len(est)),
		accepted:  make([]bool, len(est)),
		rowsSeen:  5000,
		totalRows: 10000,
		k:         k,
	}
	for i := range ps.alive {
		ps.alive[i] = true
	}
	return ps
}

func TestCIPrunerDropsClearlyLowViews(t *testing.T) {
	// Figure 4's scenario: V1, V2 high; V3 overlapping (within the
	// interval width, ≈0.021 at half-scan); V4 clearly low.
	ps := newPhaseState([]float64{0.9, 0.85, 0.84, 0.05}, 2)
	p := &ciPruner{delta: 0.05, scale: 1.0}
	p.prune(ps)
	if !ps.alive[0] || !ps.alive[1] {
		t.Error("top views must survive")
	}
	if !ps.alive[2] {
		t.Error("V3 overlaps the top-2 interval and must survive")
	}
	if ps.alive[3] {
		t.Error("V4's upper bound is below the top-2 lower bounds; it must be pruned")
	}
}

func TestCIPrunerKeepsAllWhenIntervalsWide(t *testing.T) {
	ps := newPhaseState([]float64{0.5, 0.49, 0.48, 0.47}, 2)
	ps.rowsSeen = 10 // huge ε
	p := &ciPruner{delta: 0.05, scale: 1.0}
	p.prune(ps)
	for i, a := range ps.alive {
		if !a {
			t.Errorf("view %d pruned under very wide intervals", i)
		}
	}
}

func TestCIPrunerNeverPrunesBelowK(t *testing.T) {
	ps := newPhaseState([]float64{0.9, 0.1}, 3) // k > views
	p := &ciPruner{delta: 0.05, scale: 1.0}
	p.prune(ps)
	if !ps.alive[0] || !ps.alive[1] {
		t.Error("with k ≥ live views nothing may be pruned")
	}
}

func TestCIPrunerDecided(t *testing.T) {
	ps := newPhaseState([]float64{0.9, 0.1, 0.1}, 2)
	p := &ciPruner{delta: 0.05, scale: 1.0}
	if p.decided(ps) {
		t.Error("3 alive > k=2: not decided")
	}
	ps.alive[2] = false
	if !p.decided(ps) {
		t.Error("2 alive = k: decided")
	}
}

func TestCIPrunerScaleControlsAggression(t *testing.T) {
	est := []float64{0.5, 0.45, 0.40, 0.35, 0.30, 0.25}
	wide := newPhaseState(est, 2)
	narrow := newPhaseState(est, 2)
	(&ciPruner{delta: 0.05, scale: 1.0}).prune(wide)
	(&ciPruner{delta: 0.05, scale: 0.01}).prune(narrow)
	countAlive := func(ps *phaseState) int {
		n := 0
		for _, a := range ps.alive {
			if a {
				n++
			}
		}
		return n
	}
	if countAlive(narrow) > countAlive(wide) {
		t.Errorf("smaller scale should prune at least as much: %d vs %d",
			countAlive(narrow), countAlive(wide))
	}
	if countAlive(narrow) != 2 {
		t.Errorf("near-zero intervals should prune to exactly k, kept %d", countAlive(narrow))
	}
}

func TestMABPrunerAcceptsTopWhenGapAboveIsLarger(t *testing.T) {
	// Δ1 = 0.9 − 0.3 = 0.6 (best vs k+1-st), Δn = 0.5 − 0.2 = 0.3
	// (k-th vs worst): accept the best.
	ps := newPhaseState([]float64{0.9, 0.5, 0.3, 0.2}, 2)
	p := &mabPruner{}
	p.prune(ps)
	if !ps.accepted[0] || ps.alive[0] {
		t.Errorf("best view should be accepted: accepted=%v alive=%v", ps.accepted, ps.alive)
	}
	if !ps.alive[1] || !ps.alive[2] || !ps.alive[3] {
		t.Error("no other view should change")
	}
}

func TestMABPrunerRejectsBottomWhenGapBelowIsLarger(t *testing.T) {
	// Δ1 = 0.50−0.45 = 0.05, Δn = 0.48−0.05 = 0.43: reject the worst.
	ps := newPhaseState([]float64{0.50, 0.48, 0.45, 0.05}, 2)
	p := &mabPruner{}
	p.prune(ps)
	if ps.alive[3] || ps.accepted[3] {
		t.Error("worst view should be rejected (alive=false, not accepted)")
	}
	if !ps.alive[0] || !ps.alive[1] || !ps.alive[2] {
		t.Error("other views should stay")
	}
}

func TestMABPrunerAcceptsAllWhenOnlyKRemain(t *testing.T) {
	ps := newPhaseState([]float64{0.5, 0.4}, 2)
	p := &mabPruner{}
	p.prune(ps)
	if !ps.accepted[0] || !ps.accepted[1] {
		t.Error("when live = kRemaining, all are accepted")
	}
	if !p.decided(ps) {
		t.Error("fully accepted → decided")
	}
}

func TestMABPrunerStopsAfterKAccepted(t *testing.T) {
	ps := newPhaseState([]float64{0.9, 0.8, 0.3, 0.2}, 1)
	p := &mabPruner{}
	// Accept the top view (Δ1 = 0.9−0.8 = 0.1 vs Δn = 0.9−0.2 = 0.7 →
	// hmm: with k=1, Δ1 = best − 2nd = 0.1, Δn = 1st(k-th) − worst = 0.7
	// → reject worst first.
	p.prune(ps)
	if ps.alive[3] {
		t.Error("worst should be rejected first")
	}
	// Force-accept then verify everything else is dropped.
	ps.accepted[0] = true
	ps.alive[0] = false
	p.prune(ps)
	for i := 1; i < 4; i++ {
		if ps.alive[i] {
			t.Errorf("view %d should be discarded once k are accepted", i)
		}
	}
}

func TestMABPrunerSequenceConvergesToTopK(t *testing.T) {
	// Driving the bandit until decided must yield exactly the top-k.
	est := []float64{0.9, 0.7, 0.5, 0.4, 0.3, 0.2, 0.1}
	ps := newPhaseState(est, 3)
	p := &mabPruner{}
	for i := 0; i < 20 && !p.decided(ps); i++ {
		p.prune(ps)
	}
	if !p.decided(ps) {
		t.Fatal("bandit did not converge")
	}
	for i := 0; i < 3; i++ {
		if !ps.accepted[i] && !ps.alive[i] {
			t.Errorf("true top view %d lost", i)
		}
	}
	for i := 3; i < len(est); i++ {
		if ps.accepted[i] {
			t.Errorf("non-top view %d accepted", i)
		}
	}
}

func TestRandomPrunerKeepsExactlyK(t *testing.T) {
	ps := newPhaseState(make([]float64, 20), 5)
	p := newPruner(Options{Pruning: RandomPruning, Seed: 3})
	p.prune(ps)
	if ps.aliveCount() != 5 {
		t.Errorf("random pruner kept %d views, want 5", ps.aliveCount())
	}
	if !p.decided(ps) {
		t.Error("random pruner decides immediately")
	}
	// Second prune is a no-op.
	alive := append([]bool(nil), ps.alive...)
	p.prune(ps)
	for i := range alive {
		if alive[i] != ps.alive[i] {
			t.Error("second prune changed the selection")
		}
	}
}

func TestRandomPrunerSeedDetermines(t *testing.T) {
	pick := func(seed int64) []bool {
		ps := newPhaseState(make([]float64, 12), 4)
		p := newPruner(Options{Pruning: RandomPruning, Seed: seed})
		p.prune(ps)
		return ps.alive
	}
	a, b := pick(7), pick(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same selection")
		}
	}
	c := pick(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestNoPrunerIsInert(t *testing.T) {
	ps := newPhaseState([]float64{0.9, 0.1}, 1)
	p := newPruner(Options{Pruning: NoPruning})
	p.prune(ps)
	if ps.aliveCount() != 2 {
		t.Error("NO_PRU must not prune")
	}
	if p.decided(ps) {
		t.Error("NO_PRU never decides early")
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 wrong")
	}
}

func TestGeneralizedUtilityScore(t *testing.T) {
	rec := Recommendation{
		View:    View{Dimension: "sex", Measure: "capital_gain", Agg: AggAvg},
		Utility: 0.25,
		Groups:  []string{"F", "M"},
	}
	// Plain deviation.
	if got := (UtilityWeights{}).Score(rec); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("default score = %g, want 0.25", got)
	}
	// Attribute boosts.
	w := UtilityWeights{
		DimensionBoost: map[string]float64{"sex": 0.1},
		MeasureBoost:   map[string]float64{"capital_gain": 0.05},
	}
	if got := w.Score(rec); math.Abs(got-0.40) > 1e-12 {
		t.Errorf("boosted score = %g, want 0.40", got)
	}
	// Group penalty for wide charts.
	wide := rec
	wide.Groups = make([]string, 20)
	wp := UtilityWeights{GroupPenalty: 0.01, PreferredGroups: 12}
	if got := wp.Score(wide); math.Abs(got-(0.25-0.08)) > 1e-12 {
		t.Errorf("penalized score = %g, want 0.17", got)
	}
	// Narrow charts pay no penalty.
	if got := wp.Score(rec); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("narrow chart penalized: %g", got)
	}
}

func TestGeneralizedUtilityRerank(t *testing.T) {
	recs := []Recommendation{
		{View: View{Dimension: "a", Measure: "m", Agg: AggAvg}, Utility: 0.5},
		{View: View{Dimension: "b", Measure: "m", Agg: AggAvg}, Utility: 0.4},
		{View: View{Dimension: "c", Measure: "m", Agg: AggAvg}, Utility: 0.3},
	}
	w := UtilityWeights{DimensionBoost: map[string]float64{"c": 0.3}}
	ranked := w.Rerank(recs)
	if ranked[0].View.Dimension != "c" {
		t.Errorf("boosted view should rank first, got %s", ranked[0].View.Dimension)
	}
	if math.Abs(ranked[0].Utility-0.6) > 1e-12 {
		t.Errorf("reranked utility = %g, want 0.6", ranked[0].Utility)
	}
	// Input untouched.
	if recs[0].View.Dimension != "a" || recs[0].Utility != 0.5 {
		t.Error("Rerank must not mutate its input")
	}
	// Empty input.
	if out := w.Rerank(nil); len(out) != 0 {
		t.Error("empty rerank should be empty")
	}
}
