package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"seedb/internal/distance"
	"seedb/internal/sqldb"
)

// randomTable builds a random schema (2-4 string dims, 1-3 float
// measures) and fills it with random rows in both layouts.
func randomTable(rng *rand.Rand) (*sqldb.DB, *sqldb.DB, Request) {
	nd := 2 + rng.Intn(3)
	nm := 1 + rng.Intn(3)
	cols := make([]sqldb.Column, 0, nd+nm)
	var dims, measures []string
	cards := make([]int, nd)
	for i := 0; i < nd; i++ {
		name := fmt.Sprintf("d%d", i)
		dims = append(dims, name)
		cards[i] = 2 + rng.Intn(6)
		cols = append(cols, sqldb.Column{Name: name, Type: sqldb.TypeString})
	}
	for j := 0; j < nm; j++ {
		name := fmt.Sprintf("m%d", j)
		measures = append(measures, name)
		cols = append(cols, sqldb.Column{Name: name, Type: sqldb.TypeFloat})
	}
	schema := sqldb.MustSchema(cols...)
	dbRow, dbCol := sqldb.NewDB(), sqldb.NewDB()
	tRow, _ := dbRow.CreateTable("t", schema, sqldb.LayoutRow)
	tCol, _ := dbCol.CreateTable("t", schema, sqldb.LayoutCol)
	n := 300 + rng.Intn(700)
	for r := 0; r < n; r++ {
		row := make([]sqldb.Value, 0, nd+nm)
		for i := 0; i < nd; i++ {
			row = append(row, sqldb.Str(fmt.Sprintf("v%d", rng.Intn(cards[i]))))
		}
		for j := 0; j < nm; j++ {
			row = append(row, sqldb.Float(rng.NormFloat64()*10+50))
		}
		if err := tRow.AppendRow(row); err != nil {
			panic(err)
		}
		if err := tCol.AppendRow(row); err != nil {
			panic(err)
		}
	}
	req := Request{
		Table:       "t",
		TargetWhere: "d0 = 'v0'",
		Dimensions:  dims,
		Measures:    measures,
		Aggs:        []AggFunc{AggAvg, AggSum, AggCount, AggMin, AggMax}[0 : 1+rng.Intn(4)],
	}
	switch rng.Intn(3) {
	case 0:
		req.Reference = RefAll
	case 1:
		req.Reference = RefComplement
	default:
		req.Reference = RefCustom
		req.ReferenceWhere = "d1 = 'v1' OR d1 = 'v0'"
	}
	return dbRow, dbCol, req
}

// utilitiesOf runs a strategy and returns view-key → utility.
func utilitiesOf(t *testing.T, db *sqldb.DB, req Request, opts Options) map[string]float64 {
	t.Helper()
	opts.KeepAllViews = true
	opts.K = 1000
	res, err := newTestEngine(db).Recommend(context.Background(), req, opts)
	if err != nil {
		t.Fatalf("%v/%v: %v", opts.Strategy, opts.Pruning, err)
	}
	out := make(map[string]float64, len(res.AllViews))
	for _, r := range res.AllViews {
		out[r.View.Key()] = r.Utility
	}
	return out
}

// TestStrategiesEquivalentOnRandomInputs is the DESIGN.md §6 property:
// on arbitrary schemas, data, reference modes and aggregate sets, every
// optimization level produces identical utilities for every view, on
// both physical layouts.
func TestStrategiesEquivalentOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 6; trial++ {
		dbRow, dbCol, req := randomTable(rng)
		base := utilitiesOf(t, dbRow, req, Options{Strategy: NoOpt})
		configs := []Options{
			{Strategy: Sharing},
			{Strategy: Sharing, GroupBy: GroupByBinPack, GroupBySet: true, MemoryBudget: 50},
			{Strategy: Sharing, GroupBy: GroupByMaxN, GroupBySet: true, MaxGroupBy: 2},
			{Strategy: Sharing, MaxAggregatesPerQuery: 1},
			{Strategy: Sharing, DisableCombineTargetRef: true},
			{Strategy: Comb, Pruning: NoPruning, Phases: 7},
			{Strategy: Comb, Pruning: NoPruning, Phases: 1},
		}
		for ci, opts := range configs {
			for li, db := range []*sqldb.DB{dbRow, dbCol} {
				got := utilitiesOf(t, db, req, opts)
				if len(got) != len(base) {
					t.Fatalf("trial %d cfg %d layout %d: %d views vs %d", trial, ci, li, len(got), len(base))
				}
				for k, u := range base {
					if math.Abs(got[k]-u) > 1e-9 {
						t.Errorf("trial %d cfg %d layout %d: view %s utility %g != %g",
							trial, ci, li, k, got[k], u)
					}
				}
			}
		}
	}
}

// TestDistanceFunctionsConsistentAcrossStrategies verifies that switching
// the distance function changes scores but not the execution semantics.
func TestDistanceFunctionsConsistentAcrossStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	dbRow, _, req := randomTable(rng)
	for _, f := range distance.Funcs() {
		a := utilitiesOf(t, dbRow, req, Options{Strategy: NoOpt, Distance: f})
		b := utilitiesOf(t, dbRow, req, Options{Strategy: Sharing, Distance: f})
		for k, u := range a {
			if math.Abs(b[k]-u) > 1e-9 {
				t.Errorf("%v: sharing disagrees with noopt on %s: %g vs %g", f, k, b[k], u)
			}
		}
	}
}

// TestOptionDefaults pins the defaulting rules.
func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults(sqldb.LayoutRow, 100)
	if o.K != 10 || o.GroupBy != GroupByBinPack || o.MemoryBudget != DefaultRowMemoryBudget {
		t.Errorf("row defaults wrong: %+v", o)
	}
	if o.Phases != 10 || o.Delta != 0.05 || o.ConfidenceScale != 1 || o.Seed != 1 {
		t.Errorf("row defaults wrong: %+v", o)
	}
	o = Options{}.withDefaults(sqldb.LayoutCol, 100)
	if o.GroupBy != GroupBySingle || o.MemoryBudget != DefaultColMemoryBudget {
		t.Errorf("col defaults wrong: %+v", o)
	}
	// MAB auto-phases: one bandit action per non-top view.
	o = Options{Pruning: MABPruning, K: 10}.withDefaults(sqldb.LayoutCol, 88)
	if o.Phases != 78 {
		t.Errorf("MAB phases = %d, want 78", o.Phases)
	}
	o = Options{Pruning: MABPruning, K: 80}.withDefaults(sqldb.LayoutCol, 88)
	if o.Phases != 10 {
		t.Errorf("MAB phases floor = %d, want 10", o.Phases)
	}
	// Explicit settings survive.
	o = Options{GroupBy: GroupBySingle, GroupBySet: true, Phases: 3, Parallelism: 2}.withDefaults(sqldb.LayoutRow, 10)
	if o.GroupBy != GroupBySingle || o.Phases != 3 || o.Parallelism != 2 {
		t.Errorf("explicit options overridden: %+v", o)
	}
	// Degenerate delta falls back.
	o = Options{Delta: 2}.withDefaults(sqldb.LayoutRow, 10)
	if o.Delta != 0.05 {
		t.Errorf("delta fallback = %g", o.Delta)
	}
}

// TestPhasesClampedToRows: more phases than rows must not break.
func TestPhasesClampedToRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dbRow, _, req := randomTable(rng)
	res, err := newTestEngine(dbRow).Recommend(context.Background(), req, Options{
		Strategy: Comb, Pruning: NoPruning, Phases: 1_000_000, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) == 0 {
		t.Error("no recommendations")
	}
}
