package core

// This file is the engine side of the shared result-cache subsystem
// (internal/cache). Three reuse layers compose, coarsest first:
//
//  1. Whole-request memoization: a Recommend whose canonical request key
//     (request + result-affecting options + dataset version) was already
//     answered returns the cached Result without touching the DBMS, and
//     concurrent identical requests collapse to one execution.
//  2. Shared-query memoization: each generated view query is keyed by
//     normalized SQL + row range + dataset version, so requests that
//     overlap partially (different K, different pruning, a re-issued
//     phase) still skip the scans they share with earlier work.
//  3. The reference-view store: under RefAll the reference side of every
//     view depends only on the data, so completed reference
//     distributions are materialized once and seeded into later
//     requests, which then issue target-only queries.

import (
	"fmt"
	"strconv"

	"seedb/internal/cache"
)

// requestCacheKey canonicalizes everything that can influence a
// Recommend result. opts must already have defaults applied.
// Parallelism, ScanParallelism and the cache options themselves are
// excluded: they change cost, never output. (ScanParallelism's parallel
// merge is deterministic, but SUM/AVG reassociate float addition across
// scan chunks, so a cached result may differ in final ulps from what a
// different worker count would have computed; both are valid
// materializations of the same query and the cache serves whichever was
// computed first.) The attribute lists are length-prefixed and
// spliced in as individual key parts (the key separator cannot occur in
// identifiers), so lists like ["a,b"] and ["a","b"] — or elements
// shifting between adjacent lists — can never collide.
func requestCacheKey(req Request, opts Options, version string) string {
	parts := []string{
		req.TargetWhere,
		strconv.Itoa(int(req.Reference)),
		req.ReferenceWhere,
	}
	parts = appendList(parts, req.Dimensions)
	parts = appendList(parts, req.Measures)
	aggs := make([]string, len(req.Aggs))
	for i, a := range req.Aggs {
		aggs[i] = string(a)
	}
	parts = appendList(parts, aggs)
	parts = append(parts,
		strconv.Itoa(int(opts.Strategy)),
		strconv.Itoa(int(opts.Pruning)),
		strconv.Itoa(int(opts.Distance)),
		strconv.Itoa(opts.K),
		strconv.Itoa(opts.Phases),
		strconv.Itoa(int(opts.GroupBy)),
		strconv.Itoa(opts.MemoryBudget),
		strconv.Itoa(opts.MaxGroupBy),
		strconv.Itoa(opts.MaxAggregatesPerQuery),
		strconv.FormatBool(opts.DisableCombineAggregates),
		strconv.FormatBool(opts.DisableCombineTargetRef),
		fmt.Sprintf("%g", opts.Delta),
		fmt.Sprintf("%g", opts.ConfidenceScale),
		strconv.FormatInt(opts.Seed, 10),
		strconv.FormatBool(opts.KeepAllViews),
		// AllowPartial changes what a result may legally contain
		// (degraded shard coverage), so complete-or-error requests must
		// never share a key — and above all never share a singleflight
		// flight — with degradable ones.
		strconv.FormatBool(opts.AllowPartial),
	)
	return cache.RequestKey(req.Table, version, parts...)
}

// appendList appends a length-prefixed string list to key parts.
func appendList(parts []string, list []string) []string {
	parts = append(parts, strconv.Itoa(len(list)))
	return append(parts, list...)
}

// cloneResult deep-copies a Result so cached values stay immutable while
// callers are free to mutate what Recommend returns.
func cloneResult(r *Result) *Result {
	cp := *r
	cp.Recommendations = cloneRecommendations(r.Recommendations)
	cp.AllViews = cloneRecommendations(r.AllViews)
	cp.Metrics.DegradedShards = append([]int(nil), r.Metrics.DegradedShards...)
	return &cp
}

// cloneRecommendations deep-copies a recommendation slice.
func cloneRecommendations(recs []Recommendation) []Recommendation {
	if recs == nil {
		return nil
	}
	out := make([]Recommendation, len(recs))
	for i, rec := range recs {
		out[i] = rec
		out[i].Groups = append([]string(nil), rec.Groups...)
		out[i].Target = append([]float64(nil), rec.Target...)
		out[i].Reference = append([]float64(nil), rec.Reference...)
		out[i].TargetAgg = cloneAggMap(rec.TargetAgg)
		out[i].ReferenceAgg = cloneAggMap(rec.ReferenceAgg)
	}
	return out
}

// cloneAggMap copies a group → value map.
func cloneAggMap(m map[string]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// resultSizeBytes estimates a Result's cache footprint. Degraded
// results (partial shard coverage) report a negative size — the cache's
// do-not-admit signal — because a cached partial answer would keep
// serving incomplete data long after the missing shard recovered.
func resultSizeBytes(r *Result) int64 {
	if r.Metrics.ShardsDegraded > 0 {
		return -1
	}
	n := int64(128)
	n += recommendationsSizeBytes(r.Recommendations)
	n += recommendationsSizeBytes(r.AllViews)
	return n
}

// recommendationsSizeBytes estimates one recommendation slice.
func recommendationsSizeBytes(recs []Recommendation) int64 {
	var n int64
	for _, rec := range recs {
		n += 160
		for _, g := range rec.Groups {
			// Group value appears in Groups and as a key in both agg
			// maps; the float payloads are fixed-width.
			n += 3*int64(len(g)) + 96
		}
	}
	return n
}

// execResultSizeBytes estimates a materialized query result's cache
// footprint. Like resultSizeBytes, degraded shard results are marked
// do-not-admit with a negative size.
func execResultSizeBytes(res *execResult) int64 {
	if res.stats.ShardsDegraded > 0 {
		return -1
	}
	n := int64(96)
	for _, c := range res.rows.Columns {
		n += int64(len(c)) + 16
	}
	for _, row := range res.rows.Rows {
		n += 24
		for _, v := range row {
			n += 40 + int64(len(v.S))
		}
	}
	return n
}

// seedReference fills a view accumulator's reference side from a
// materialized distribution (copying into fresh cells; the stored
// distribution is shared and immutable).
func seedReference(acc *viewAccum, d cache.RefDistribution) {
	for g, cl := range d {
		acc.reference[g] = &cell{sum: cl.Sum, count: cl.Count, min: cl.Min, max: cl.Max, seen: cl.Seen}
	}
}

// snapshotReference converts a completed reference accumulator into the
// store's shareable form.
func snapshotReference(s sideAccum) cache.RefDistribution {
	d := make(cache.RefDistribution, len(s))
	for g, c := range s {
		d[g] = cache.Cell{Sum: c.sum, Count: c.count, Min: c.min, Max: c.max, Seen: c.seen}
	}
	return d
}
