package core

import (
	"context"
	"math"
	"testing"

	"seedb/internal/sqldb"
)

// sameRecommendations compares two recommendation lists view-by-view
// with a floating-point tolerance on utilities and distributions.
func sameRecommendations(t *testing.T, a, b []Recommendation, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("recommendation counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].View != b[i].View {
			t.Fatalf("rank %d: view %v vs %v", i, a[i].View, b[i].View)
		}
		if math.Abs(a[i].Utility-b[i].Utility) > tol {
			t.Fatalf("rank %d (%v): utility %v vs %v", i, a[i].View, a[i].Utility, b[i].Utility)
		}
		if len(a[i].Groups) != len(b[i].Groups) {
			t.Fatalf("rank %d: group counts differ", i)
		}
		for j := range a[i].Target {
			if math.Abs(a[i].Target[j]-b[i].Target[j]) > tol ||
				math.Abs(a[i].Reference[j]-b[i].Reference[j]) > tol {
				t.Fatalf("rank %d group %d: distributions differ", i, j)
			}
		}
	}
}

func TestRequestCacheKeyListBoundaries(t *testing.T) {
	// Attribute lists must keep their element boundaries and their list
	// membership in the key: none of these requests may share a key.
	base := Request{Table: "t", TargetWhere: "x = 1"}
	opts := Options{}.withDefaults(sqldb.LayoutCol, 4)
	variants := []Request{
		{Table: "t", TargetWhere: "x = 1", Dimensions: []string{"a,b"}},
		{Table: "t", TargetWhere: "x = 1", Dimensions: []string{"a", "b"}},
		{Table: "t", TargetWhere: "x = 1", Dimensions: []string{"a"}, Measures: []string{"b"}},
		{Table: "t", TargetWhere: "x = 1", Measures: []string{"a", "b"}},
	}
	seen := map[string]int{}
	for i, req := range variants {
		k := requestCacheKey(req, opts, "1.1.1")
		if j, dup := seen[k]; dup {
			t.Errorf("variants %d and %d share request key %q", j, i, k)
		}
		seen[k] = i
	}
	if k := requestCacheKey(base, opts, "1.1.1"); func() bool { _, dup := seen[k]; return dup }() {
		t.Errorf("empty-list request collides with a variant key")
	}
}

func TestCacheWarmRequestIssuesZeroQueries(t *testing.T) {
	eng, req := buildCensus(t, sqldb.LayoutCol, 4000)
	ctx := context.Background()
	opts := Options{K: 5, EnableCache: true}

	cold, err := eng.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Metrics.QueriesExecuted == 0 || cold.Metrics.ServedFromCache {
		t.Fatalf("cold run: %+v", cold.Metrics)
	}

	warm, err := eng.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics.QueriesExecuted != 0 {
		t.Fatalf("warm run executed %d queries, want 0", warm.Metrics.QueriesExecuted)
	}
	if warm.Metrics.RowsScanned != 0 || !warm.Metrics.ServedFromCache || warm.Metrics.CacheHits == 0 {
		t.Fatalf("warm metrics: %+v", warm.Metrics)
	}
	sameRecommendations(t, cold.Recommendations, warm.Recommendations, 0)
}

// TestCacheHitParityAcrossCostKnobs pins the cost-knob canonicalization:
// ScanParallelism and DisableSelectionKernels change how a query
// executes, never what it returns, so requests differing only in those
// knobs must share one cache entry (mirroring the PR 3 pruning-option
// canonicalization for single-pass plans).
func TestCacheHitParityAcrossCostKnobs(t *testing.T) {
	eng, req := buildCensus(t, sqldb.LayoutCol, 3000)
	ctx := context.Background()

	cold, err := eng.Recommend(ctx, req, Options{
		Strategy: Sharing, K: 4, EnableCache: true, ScanParallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Metrics.ServedFromCache {
		t.Fatalf("first request must be cold: %+v", cold.Metrics)
	}

	variants := []Options{
		{Strategy: Sharing, K: 4, EnableCache: true, ScanParallelism: 4},
		{Strategy: Sharing, K: 4, EnableCache: true, ScanParallelism: 7, DisableSelectionKernels: true},
		{Strategy: Sharing, K: 4, EnableCache: true, DisableSelectionKernels: true},
	}
	for i, opts := range variants {
		warm, err := eng.Recommend(ctx, req, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Metrics.ServedFromCache || warm.Metrics.QueriesExecuted != 0 {
			t.Errorf("variant %d (%+v): not served from cache: %+v", i, opts, warm.Metrics)
		}
		sameRecommendations(t, cold.Recommendations, warm.Recommendations, 0)
	}
}

func TestCacheMatchesUncachedAcrossStrategies(t *testing.T) {
	ctx := context.Background()
	for _, strat := range []Strategy{NoOpt, Sharing, Comb, CombEarly} {
		for _, layout := range []sqldb.Layout{sqldb.LayoutRow, sqldb.LayoutCol} {
			t.Run(strat.String()+"/"+layout.String(), func(t *testing.T) {
				engPlain, req := buildCensus(t, layout, 3000)
				engCached, _ := buildCensus(t, layout, 3000)
				opts := Options{K: 5, Strategy: strat}

				plain, err := engPlain.Recommend(ctx, req, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.EnableCache = true
				cold, err := engCached.Recommend(ctx, req, opts)
				if err != nil {
					t.Fatal(err)
				}
				// A cold cached run sees an empty cache, so it issues the
				// exact same queries and must produce identical output.
				sameRecommendations(t, plain.Recommendations, cold.Recommendations, 0)
				if cold.Metrics.QueriesExecuted != plain.Metrics.QueriesExecuted {
					t.Fatalf("cold cached run executed %d queries, uncached %d",
						cold.Metrics.QueriesExecuted, plain.Metrics.QueriesExecuted)
				}

				warm, err := engCached.Recommend(ctx, req, opts)
				if err != nil {
					t.Fatal(err)
				}
				if warm.Metrics.QueriesExecuted != 0 || !warm.Metrics.ServedFromCache {
					t.Fatalf("warm metrics: %+v", warm.Metrics)
				}
				sameRecommendations(t, plain.Recommendations, warm.Recommendations, 0)
			})
		}
	}
}

func TestReferenceViewStoreReuseAcrossPredicates(t *testing.T) {
	// Two requests with different target predicates share the full-table
	// reference distributions (RefAll): the second request reuses every
	// materialized view and only pays for its target side.
	ctx := context.Background()
	engCached, req := buildCensus(t, sqldb.LayoutCol, 4000)
	engPlain, _ := buildCensus(t, sqldb.LayoutCol, 4000)
	opts := Options{K: 5, Strategy: Sharing, EnableCache: true}

	if _, err := engCached.Recommend(ctx, req, opts); err != nil {
		t.Fatal(err)
	}

	req2 := req
	req2.TargetWhere = "sex = 'Female'"
	reused, err := engCached.Recommend(ctx, req2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reused.Metrics.RefViewsReused != reused.Metrics.Views {
		t.Fatalf("reused %d of %d reference views", reused.Metrics.RefViewsReused, reused.Metrics.Views)
	}
	if reused.Metrics.ServedFromCache {
		t.Fatal("different predicate must not be a whole-request hit")
	}

	optsPlain := opts
	optsPlain.EnableCache = false
	plain, err := engPlain.Recommend(ctx, req2, optsPlain)
	if err != nil {
		t.Fatal(err)
	}
	// Reference sides were folded in a different (but equivalent) order,
	// so allow float tolerance.
	sameRecommendations(t, plain.Recommendations, reused.Recommendations, 1e-9)
}

func TestPhasedStrategiesDoNotSeedReferences(t *testing.T) {
	// Comb/CombEarly prune on per-phase estimates; seeding full
	// reference distributions would make prune decisions (and cached
	// results) depend on cache warmth. They publish to the store but
	// never read from it, so identical requests are deterministic.
	ctx := context.Background()
	eng, req := buildCensus(t, sqldb.LayoutCol, 3000)
	opts := Options{K: 5, Strategy: Sharing, EnableCache: true}

	// Warm the reference-view store with a full Sharing run.
	if _, err := eng.Recommend(ctx, req, opts); err != nil {
		t.Fatal(err)
	}

	req2 := req
	req2.TargetWhere = "sex = 'Female'"
	for _, strat := range []Strategy{Comb, CombEarly} {
		opts2 := Options{K: 5, Strategy: strat, EnableCache: true}
		res, err := eng.Recommend(ctx, req2, opts2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.RefViewsReused != 0 {
			t.Errorf("%v reused %d reference views, want 0", strat, res.Metrics.RefViewsReused)
		}
	}
}

func TestCacheInvalidationOnAppend(t *testing.T) {
	eng, req := buildCensus(t, sqldb.LayoutCol, 2000)
	ctx := context.Background()
	opts := Options{K: 3, EnableCache: true}

	if _, err := eng.Recommend(ctx, req, opts); err != nil {
		t.Fatal(err)
	}
	// Appending a row bumps the table generation: the next request must
	// recompute rather than serve the stale entry.
	tab, _ := embeddedDB(eng).Table(req.Table)
	row := make([]sqldb.Value, tab.Schema().NumColumns())
	err := tab.ScanRange(0, 1, nil, func(rv sqldb.RowView) error {
		for i := range row {
			row[i] = rv.Value(i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(row); err != nil {
		t.Fatal(err)
	}

	res, err := eng.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ServedFromCache || res.Metrics.QueriesExecuted == 0 {
		t.Fatalf("request after append served stale cache: %+v", res.Metrics)
	}
}

func TestCachedResultsAreIsolated(t *testing.T) {
	eng, req := buildCensus(t, sqldb.LayoutCol, 2000)
	ctx := context.Background()
	opts := Options{K: 3, EnableCache: true}

	first, err := eng.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt everything the caller can reach.
	want := first.Recommendations[0].Target[0]
	first.Recommendations[0].Target[0] = 12345
	first.Recommendations[0].Groups[0] = "corrupted"
	for k := range first.Recommendations[0].TargetAgg {
		first.Recommendations[0].TargetAgg[k] = -1
	}

	second, err := eng.Recommend(ctx, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Recommendations[0].Target[0] != want {
		t.Fatal("caller mutation leaked into the cache")
	}
	if second.Recommendations[0].Groups[0] == "corrupted" {
		t.Fatal("caller mutation of groups leaked into the cache")
	}
}
