package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"seedb/internal/backend"
	"seedb/internal/binpack"
	"seedb/internal/cache"
	"seedb/internal/telemetry"
)

// accumRole identifies how one aggregate output column folds into a view
// accumulator cell.
type accumRole uint8

const (
	roleSum accumRole = iota
	roleCount
	roleMin
	roleMax
)

// rolesFor returns the aggregate SQL expressions a view's aggregate
// function needs, with the accumulator role each one feeds. Partial
// results must merge across phases and across the sub-groups of a
// multi-attribute GROUP BY, so AVG decomposes into SUM+COUNT, and
// SUM/COUNT also carry COUNT to track group presence.
func rolesFor(f AggFunc, measure string) []roleExpr {
	switch f {
	case AggAvg:
		return []roleExpr{
			{role: roleSum, expr: fmt.Sprintf("SUM(%s)", measure)},
			{role: roleCount, expr: fmt.Sprintf("COUNT(%s)", measure)},
		}
	case AggSum:
		return []roleExpr{
			{role: roleSum, expr: fmt.Sprintf("SUM(%s)", measure)},
			{role: roleCount, expr: fmt.Sprintf("COUNT(%s)", measure)},
		}
	case AggCount:
		return []roleExpr{
			{role: roleCount, expr: fmt.Sprintf("COUNT(%s)", measure)},
		}
	case AggMin:
		return []roleExpr{
			{role: roleMin, expr: fmt.Sprintf("MIN(%s)", measure)},
		}
	case AggMax:
		return []roleExpr{
			{role: roleMax, expr: fmt.Sprintf("MAX(%s)", measure)},
		}
	default:
		return nil
	}
}

// roleExpr pairs an aggregate SQL expression with the role it feeds.
type roleExpr struct {
	role accumRole
	expr string
}

// consumer routes one aggregate output column of a shared query into one
// view's accumulator.
type consumer struct {
	viewIdx int       // index into the engine's view list
	dimPos  int       // which group-by column holds this view's dimension
	col     int       // which aggregate output column to read
	role    accumRole // how to fold it
}

// querySide tells the executor which accumulator side(s) a concrete query
// execution feeds.
type querySide uint8

const (
	// sideCombined: the query carries a target-flag group column; rows
	// route by flag (and reference mode).
	sideCombined querySide = iota
	// sideTarget: a WHERE-target query feeding only target accumulators.
	sideTarget
	// sideReference: a reference query feeding only reference
	// accumulators.
	sideReference
)

// sharedQuery is one executable SQL query serving one or more views.
type sharedQuery struct {
	sql       string
	numDims   int
	side      querySide
	consumers []consumer
}

// flagColumn is the alias of the injected target/reference flag.
const flagColumn = "__seedb_flag"

// viewGroup is a set of views evaluated by one family of shared queries:
// they share the group-by dimension list.
type viewGroup struct {
	dims     []string
	viewIdxs []int
}

// queryBuilder turns view groups into shared queries according to the
// sharing options.
type queryBuilder struct {
	table    string
	req      Request
	opts     Options
	distinct map[string]int // dimension → distinct count
	// refDone marks views whose reference side was seeded from the
	// materialized reference-view store; they get target-only queries so
	// the shared reference work is not redone (and not double-counted).
	// nil means no view is seeded.
	refDone []bool
}

// partitionViews builds the view groups for the configured group-by
// strategy over the alive views. NoOpt gets one group per view
// (no sharing at all).
func (qb *queryBuilder) partitionViews(views []View, alive []bool) []viewGroup {
	if qb.opts.Strategy == NoOpt {
		var groups []viewGroup
		for i, v := range views {
			if alive[i] {
				groups = append(groups, viewGroup{dims: []string{v.Dimension}, viewIdxs: []int{i}})
			}
		}
		return groups
	}

	// Collect distinct dimensions of alive views, in first-use order.
	var dims []string
	seen := make(map[string]bool)
	byDim := make(map[string][]int)
	for i, v := range views {
		if !alive[i] {
			continue
		}
		if !seen[v.Dimension] {
			seen[v.Dimension] = true
			dims = append(dims, v.Dimension)
		}
		byDim[v.Dimension] = append(byDim[v.Dimension], i)
	}

	var dimGroups [][]string
	switch qb.opts.GroupBy {
	case GroupByBinPack:
		counts := make([]int, len(dims))
		for i, d := range dims {
			counts[i] = qb.distinct[d]
			if counts[i] < 1 {
				counts[i] = 1
			}
		}
		budget := qb.opts.MemoryBudget
		if !qb.opts.DisableCombineTargetRef && qb.req.Reference != RefCustom {
			// The flag column doubles the worst-case group count.
			budget /= 2
			if budget < 1 {
				budget = 1
			}
		}
		for _, bin := range binpack.PackAttributes(counts, budget) {
			g := make([]string, len(bin))
			for j, idx := range bin {
				g[j] = dims[idx]
			}
			dimGroups = append(dimGroups, g)
		}
	case GroupByMaxN:
		n := qb.opts.MaxGroupBy
		for i := 0; i < len(dims); i += n {
			end := i + n
			if end > len(dims) {
				end = len(dims)
			}
			dimGroups = append(dimGroups, dims[i:end])
		}
	default: // GroupBySingle
		for _, d := range dims {
			dimGroups = append(dimGroups, []string{d})
		}
	}

	groups := make([]viewGroup, 0, len(dimGroups))
	for _, g := range dimGroups {
		var idxs []int
		for _, d := range g {
			idxs = append(idxs, byDim[d]...)
		}
		sort.Ints(idxs)
		groups = append(groups, viewGroup{dims: g, viewIdxs: idxs})
	}
	return groups
}

// build compiles the alive views into concrete shared queries.
func (qb *queryBuilder) build(views []View, alive []bool) []*sharedQuery {
	var queries []*sharedQuery
	for _, vg := range qb.partitionViews(views, alive) {
		queries = append(queries, qb.buildGroup(views, vg)...)
	}
	return queries
}

// buildGroup emits the queries for one view group, applying the
// multiple-aggregates combining (with the nagg cap) and the combined
// target/reference rewrite.
func (qb *queryBuilder) buildGroup(views []View, vg viewGroup) []*sharedQuery {
	dimPos := make(map[string]int, len(vg.dims))
	for i, d := range vg.dims {
		dimPos[d] = i
	}

	// Chunk the group's views by measure so one query aggregates at
	// most nagg measures ("Combine Multiple Aggregates", Figure 7a).
	type chunkT struct {
		measures []string
		viewIdxs []int
	}
	nagg := qb.opts.MaxAggregatesPerQuery
	if qb.opts.DisableCombineAggregates {
		nagg = 1
	}
	var chunks []chunkT
	measureChunk := make(map[string]int) // measure → chunk index
	for _, vi := range vg.viewIdxs {
		m := views[vi].Measure
		ci, ok := measureChunk[m]
		if !ok {
			// Place the measure in the last chunk with room, else open
			// a new chunk.
			ci = -1
			if len(chunks) > 0 {
				last := len(chunks) - 1
				if nagg <= 0 || len(chunks[last].measures) < nagg {
					ci = last
				}
			}
			if ci < 0 {
				chunks = append(chunks, chunkT{})
				ci = len(chunks) - 1
			}
			chunks[ci].measures = append(chunks[ci].measures, m)
			measureChunk[m] = ci
		}
		chunks[ci].viewIdxs = append(chunks[ci].viewIdxs, vi)
	}

	// NO_OPT is the unoptimized baseline: it never combines target and
	// reference into one query (2 × f × a × m queries, Section 3).
	combined := qb.opts.Strategy != NoOpt &&
		!qb.opts.DisableCombineTargetRef && qb.req.Reference != RefCustom

	var queries []*sharedQuery
	for _, ch := range chunks {
		// Views whose reference side is already materialized only need
		// the target side; the rest need both.
		needRef := ch.viewIdxs
		var haveRef []int
		if qb.refDone != nil {
			needRef = nil
			for _, vi := range ch.viewIdxs {
				if qb.refDone[vi] {
					haveRef = append(haveRef, vi)
				} else {
					needRef = append(needRef, vi)
				}
			}
		}

		if len(needRef) > 0 {
			exprs, consumers := qb.aggPlan(views, needRef, dimPos)
			if combined {
				queries = append(queries, &sharedQuery{
					sql:       qb.renderSQL(vg.dims, exprs, "", true),
					numDims:   len(vg.dims),
					side:      sideCombined,
					consumers: consumers,
				})
			} else {
				// Separate target and reference executions.
				queries = append(queries, &sharedQuery{
					sql:       qb.renderSQL(vg.dims, exprs, qb.req.TargetWhere, false),
					numDims:   len(vg.dims),
					side:      sideTarget,
					consumers: consumers,
				})
				refWhere := ""
				switch qb.req.Reference {
				case RefComplement:
					refWhere = fmt.Sprintf("NOT (%s)", qb.req.TargetWhere)
				case RefCustom:
					refWhere = qb.req.ReferenceWhere
				}
				queries = append(queries, &sharedQuery{
					sql:       qb.renderSQL(vg.dims, exprs, refWhere, false),
					numDims:   len(vg.dims),
					side:      sideReference,
					consumers: consumers,
				})
			}
		}
		if len(haveRef) > 0 {
			exprs, consumers := qb.aggPlan(views, haveRef, dimPos)
			queries = append(queries, &sharedQuery{
				sql:       qb.renderSQL(vg.dims, exprs, qb.req.TargetWhere, false),
				numDims:   len(vg.dims),
				side:      sideTarget,
				consumers: consumers,
			})
		}
	}
	return queries
}

// aggPlan deduplicates the aggregate expressions the given views need
// and routes each output column to its consumers.
func (qb *queryBuilder) aggPlan(views []View, viewIdxs []int, dimPos map[string]int) ([]string, []consumer) {
	var exprs []string
	exprCol := make(map[string]int)
	var consumers []consumer
	for _, vi := range viewIdxs {
		v := views[vi]
		for _, re := range rolesFor(v.Agg, v.Measure) {
			col, ok := exprCol[re.expr]
			if !ok {
				col = len(exprs)
				exprCol[re.expr] = col
				exprs = append(exprs, re.expr)
			}
			consumers = append(consumers, consumer{
				viewIdx: vi,
				dimPos:  dimPos[v.Dimension],
				col:     col,
				role:    re.role,
			})
		}
	}
	return exprs, consumers
}

// renderSQL assembles one view query. With flag=true the target predicate
// becomes a CASE group column (the paper's combined target/reference
// rewrite); otherwise where (possibly empty) filters the scan.
func (qb *queryBuilder) renderSQL(dims, exprs []string, where string, flag bool) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(strings.Join(dims, ", "))
	if flag {
		fmt.Fprintf(&b, ", CASE WHEN %s THEN 1 ELSE 0 END AS %s", qb.req.TargetWhere, flagColumn)
	}
	for _, e := range exprs {
		b.WriteString(", ")
		b.WriteString(e)
	}
	fmt.Fprintf(&b, " FROM %s", qb.table)
	if where != "" {
		fmt.Fprintf(&b, " WHERE %s", where)
	}
	b.WriteString(" GROUP BY ")
	b.WriteString(strings.Join(dims, ", "))
	if flag {
		fmt.Fprintf(&b, ", CASE WHEN %s THEN 1 ELSE 0 END", qb.req.TargetWhere)
	}
	return b.String()
}

// execResult pairs one query's materialized rows with the stats of the
// execution that produced them; the pair is what the shared-query cache
// stores, so warm hits replay the rows without re-counting the cost.
type execResult struct {
	rows  *backend.Rows
	stats backend.ExecStats
}

// runQueries executes the shared queries over table rows [lo, hi) on a
// worker pool and merges every result into the view accumulators.
// Results merge in deterministic (query-index) order.
//
// With a cache attached, each query is memoized under its normalized
// SQL + row range + dataset version: a hit skips the DBMS entirely and
// concurrent identical queries (within or across requests) collapse to
// one execution. Cached results are shared and treated as immutable —
// merging only reads them.
func (s *execState) runQueries(ctx context.Context, queries []*sharedQuery, lo, hi int) error {
	if len(queries) == 0 {
		return nil
	}
	par := s.opts.Parallelism
	if s.opts.Strategy == NoOpt {
		// The basic framework is the paper's unoptimized baseline: it
		// executes queries serially and scans with the serial interpreter
		// (runQuery pins the per-query scan workers the same way).
		par = 1
	}
	if par > len(queries) {
		par = len(queries)
	}
	if par < 1 {
		par = 1
	}

	results := make([]*execResult, len(queries))
	outcomes := make([]cache.Outcome, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range work {
				// A panicking backend must fail the query, not kill the
				// process: these workers run outside the HTTP handler
				// goroutine, so the server's recovery middleware cannot
				// catch them. The worker also has to survive to keep
				// draining the work channel, or the feeder would block.
				func() {
					defer func() {
						if p := recover(); p != nil {
							errs[qi] = fmt.Errorf("core: backend panicked: %v", p)
						}
					}()
					s.runQuery(ctx, queries[qi].sql, qi, lo, hi, results, outcomes, errs)
				}()
			}
		}()
	}
	for qi := range queries {
		work <- qi
	}
	close(work)
	wg.Wait()

	for qi, err := range errs {
		if err != nil {
			return fmt.Errorf("core: view query failed: %w (sql: %s)", err, queries[qi].sql)
		}
	}
	for qi, res := range results {
		if outcomes[qi] == cache.Computed {
			// This invocation paid for the execution. RecordExec keeps the
			// executed/vectorized/fallback counters in lockstep whatever
			// path the backend took (fast path, runtime fallback, external
			// store).
			s.metrics.RecordExec(res.stats)
			if s.cache != nil {
				s.metrics.CacheMisses++
			}
		} else {
			s.metrics.CacheHits++
		}
		s.mergeResult(queries[qi], res.rows)
	}
	return nil
}

// runQuery executes (or cache-resolves) one shared query and stores its
// result, outcome and error at index qi.
func (s *execState) runQuery(ctx context.Context, sql string, qi, lo, hi int, results []*execResult, outcomes []cache.Outcome, errs []error) {
	scanWorkers := s.opts.ScanParallelism
	if s.opts.Strategy == NoOpt {
		scanWorkers = 1
	}
	execOpts := backend.ExecOptions{
		Lo: lo, Hi: hi, Workers: scanWorkers,
		NoSelectionKernels: s.opts.DisableSelectionKernels,
		AllowPartial:       s.opts.AllowPartial,
	}
	qctx, qsp := telemetry.StartSpan(ctx, "query")
	qsp.SetAttr("sql", sql)
	// exec is the paid execution path: singleflight runs it in
	// exactly one caller per flight, so observing here keeps the
	// query-latency histogram count equal to QueriesExecuted.
	exec := func(cctx context.Context) (any, error) {
		t0 := time.Now()
		rows, stats, err := s.be.Exec(cctx, sql, execOpts)
		d := time.Since(t0)
		if err != nil {
			return nil, err
		}
		if qsp != nil {
			// Cost attribution on the paid path: the query span carries
			// the execution's resource counters, so a trace shows where
			// the rows went, not just where the time went.
			qsp.SetAttr("rows_scanned", strconv.Itoa(stats.RowsScanned))
			qsp.SetAttr("groups", strconv.Itoa(stats.Groups))
			if stats.ShardFanout > 0 {
				qsp.SetAttr("shard_fanout", strconv.Itoa(stats.ShardFanout))
			}
			if stats.NetRetries > 0 {
				qsp.SetAttr("net_retries", strconv.Itoa(stats.NetRetries))
			}
		}
		s.tel.ObserveQuery(d)
		s.logSlowQuery(sql, lo, hi, d, stats, qsp)
		return &execResult{rows: rows, stats: stats}, nil
	}
	if s.cache == nil {
		v, err := exec(qctx)
		qsp.End()
		if err != nil {
			errs[qi] = err
			return
		}
		results[qi], outcomes[qi] = v.(*execResult), cache.Computed
		return
	}
	key := cache.QueryKey(s.req.Table, s.version, sql, lo, hi, s.opts.AllowPartial)
	v, outcome, err := s.cache.Do(qctx, key,
		func(v any) int64 { return execResultSizeBytes(v.(*execResult)) },
		exec,
	)
	qsp.End()
	if err != nil {
		errs[qi] = err
		return
	}
	results[qi], outcomes[qi] = v.(*execResult), outcome
}

// RecordExec folds one paid query execution into the invocation
// metrics. It is the single place the executor counters advance, which
// is what keeps the invariant QueriesExecuted == VectorizedQueries +
// FallbackQueries true on every path — including the vectorized fast
// path's runtime fallback retry (row-store tables, group-id overflow)
// and backends that never vectorize. It is exported because the HTTP
// server's raw-query path (/api/query) folds its executions through the
// same single point, so manual-chart traffic obeys the same invariants
// as engine traffic.
func (m *Metrics) RecordExec(stats backend.ExecStats) {
	m.QueriesExecuted++
	if stats.Vectorized {
		m.VectorizedQueries++
	} else {
		m.FallbackQueries++
		reason := stats.FallbackReason
		if reason == "" {
			reason = "unreported"
		}
		if m.FallbackReasons == nil {
			m.FallbackReasons = make(map[string]int)
		}
		m.FallbackReasons[reason]++
	}
	m.SelectionKernels += stats.SelectionKernels
	m.ResidualPredicates += stats.ResidualPredicates
	if stats.ShardFanout > 0 || stats.ShardPartialsCached > 0 {
		m.ShardQueries++
		m.ShardFanout += stats.ShardFanout
		if stats.ShardStragglerMax > m.ShardStragglerMax {
			m.ShardStragglerMax = stats.ShardStragglerMax
		}
	}
	m.ShardPartialsCached += stats.ShardPartialsCached
	m.HedgedPartials += stats.HedgedPartials
	m.HedgeWins += stats.HedgeWins
	m.NetRetries += stats.NetRetries
	m.ShardsDegraded += stats.ShardsDegraded
	m.DegradedShards = unionSorted(m.DegradedShards, stats.DegradedShards)
	if stats.Workers > m.ScanWorkers {
		m.ScanWorkers = stats.Workers
	}
	m.RowsScanned += int64(stats.RowsScanned)
	if stats.Groups > m.MaxGroups {
		m.MaxGroups = stats.Groups
	}
}

// logSlowQuery writes one paid execution over the slow threshold to the
// collector's slow-query log. The request's SlowQueryThreshold wins over
// the log's own; sp contributes the query's span subtree when the
// request is traced (the span is still open here, so its duration reads
// as elapsed-so-far).
func (s *execState) logSlowQuery(sql string, lo, hi int, d time.Duration, stats backend.ExecStats, sp *telemetry.Span) {
	sl := s.tel.Slow()
	if sl == nil {
		return
	}
	thr := s.opts.SlowQueryThreshold
	if thr <= 0 {
		thr = sl.Threshold()
	}
	if d < thr {
		return
	}
	sl.Log(telemetry.SlowEntry{
		Kind:           "query",
		Table:          s.req.Table,
		SQL:            sql,
		Lo:             lo,
		Hi:             hi,
		ElapsedMS:      float64(d) / float64(time.Millisecond),
		ThresholdMS:    float64(thr) / float64(time.Millisecond),
		RowsScanned:    int64(stats.RowsScanned),
		Vectorized:     stats.Vectorized,
		FallbackReason: stats.FallbackReason,
		ShardFanout:    stats.ShardFanout,
		TraceID:        sp.TraceID(),
		Trace:          sp.Node(),
	})
}

// mergeResult folds one query result into the accumulators.
func (s *execState) mergeResult(q *sharedQuery, res *backend.Rows) {
	aggBase := q.numDims
	flagPos := -1
	if q.side == sideCombined {
		flagPos = q.numDims
		aggBase = q.numDims + 1
	}
	for _, row := range res.Rows {
		isTarget := false
		switch q.side {
		case sideCombined:
			isTarget = row[flagPos].Truthy()
		case sideTarget:
			isTarget = true
		}
		for _, c := range q.consumers {
			v := row[aggBase+c.col]
			if v.IsNull() {
				continue
			}
			f, ok := v.AsFloat()
			if !ok {
				continue
			}
			group := row[c.dimPos].String()
			acc := s.accums[c.viewIdx]
			if acc == nil {
				continue // view pruned between build and merge (defensive)
			}
			switch q.side {
			case sideCombined:
				if isTarget {
					fold(acc.target.at(group), c.role, f)
				}
				// Reference side: RefAll folds every row (D_R = D);
				// RefComplement folds only non-target rows.
				if s.req.Reference == RefAll || !isTarget {
					fold(acc.reference.at(group), c.role, f)
				}
			case sideTarget:
				fold(acc.target.at(group), c.role, f)
			case sideReference:
				fold(acc.reference.at(group), c.role, f)
			}
		}
	}
}

// fold applies one role update to a cell.
func fold(c *cell, role accumRole, v float64) {
	switch role {
	case roleSum:
		c.addSum(v)
	case roleCount:
		c.addCount(v)
	case roleMin:
		c.addMin(v)
	case roleMax:
		c.addMax(v)
	}
}
