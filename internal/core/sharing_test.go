package core

import (
	"sort"
	"strings"
	"testing"
)

// testViews builds a small view set over two dims and two measures.
func testViews() []View {
	return []View{
		{Dimension: "a", Measure: "m1", Agg: AggAvg},
		{Dimension: "a", Measure: "m2", Agg: AggSum},
		{Dimension: "b", Measure: "m1", Agg: AggCount},
		{Dimension: "b", Measure: "m2", Agg: AggMax},
	}
}

func allAlive(n int) []bool {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	return alive
}

func TestSharedQuerySQLShapeCombined(t *testing.T) {
	qb := &queryBuilder{
		table: "t",
		req:   Request{Table: "t", TargetWhere: "f = 'x'", Reference: RefAll},
		opts:  Options{Strategy: Sharing, GroupBy: GroupBySingle},
	}
	queries := qb.build(testViews(), allAlive(4))
	if len(queries) != 2 { // one per dimension
		t.Fatalf("got %d queries, want 2: %+v", len(queries), queries)
	}
	var sqls []string
	for _, q := range queries {
		sqls = append(sqls, q.sql)
		if q.side != sideCombined {
			t.Errorf("expected combined target/ref query, got side %v", q.side)
		}
	}
	sort.Strings(sqls)
	// Dimension a: AVG(m1) → SUM+COUNT; SUM(m2) → SUM+COUNT.
	wantA := "SELECT a, CASE WHEN f = 'x' THEN 1 ELSE 0 END AS __seedb_flag, SUM(m1), COUNT(m1), SUM(m2), COUNT(m2) FROM t GROUP BY a, CASE WHEN f = 'x' THEN 1 ELSE 0 END"
	if sqls[0] != wantA {
		t.Errorf("dim-a SQL:\n got %s\nwant %s", sqls[0], wantA)
	}
	// Dimension b: COUNT(m1); MAX(m2).
	wantB := "SELECT b, CASE WHEN f = 'x' THEN 1 ELSE 0 END AS __seedb_flag, COUNT(m1), MAX(m2) FROM t GROUP BY b, CASE WHEN f = 'x' THEN 1 ELSE 0 END"
	if sqls[1] != wantB {
		t.Errorf("dim-b SQL:\n got %s\nwant %s", sqls[1], wantB)
	}
}

func TestSharedQuerySQLShapeSeparate(t *testing.T) {
	qb := &queryBuilder{
		table: "t",
		req:   Request{Table: "t", TargetWhere: "f = 'x'", Reference: RefComplement},
		opts:  Options{Strategy: Sharing, GroupBy: GroupBySingle, DisableCombineTargetRef: true},
	}
	queries := qb.build(testViews()[:1], allAlive(1))
	if len(queries) != 2 {
		t.Fatalf("got %d queries, want target + reference", len(queries))
	}
	if queries[0].side != sideTarget || !strings.Contains(queries[0].sql, "WHERE f = 'x'") {
		t.Errorf("target query wrong: %s", queries[0].sql)
	}
	if queries[1].side != sideReference || !strings.Contains(queries[1].sql, "WHERE NOT (f = 'x')") {
		t.Errorf("complement reference query wrong: %s", queries[1].sql)
	}
}

func TestSharedQuerySQLCustomReference(t *testing.T) {
	qb := &queryBuilder{
		table: "t",
		req: Request{Table: "t", TargetWhere: "f = 'x'",
			Reference: RefCustom, ReferenceWhere: "g = 'y'"},
		opts: Options{Strategy: Sharing, GroupBy: GroupBySingle},
	}
	queries := qb.build(testViews()[:1], allAlive(1))
	// Custom references can never combine (target and reference rows may
	// overlap arbitrarily).
	if len(queries) != 2 {
		t.Fatalf("got %d queries, want 2", len(queries))
	}
	if !strings.Contains(queries[1].sql, "WHERE g = 'y'") {
		t.Errorf("custom reference not applied: %s", queries[1].sql)
	}
}

func TestNoOptNeverShares(t *testing.T) {
	qb := &queryBuilder{
		table: "t",
		req:   Request{Table: "t", TargetWhere: "f = 'x'", Reference: RefAll},
		opts:  Options{Strategy: NoOpt},
	}
	queries := qb.build(testViews(), allAlive(4))
	if len(queries) != 8 { // 2 per view
		t.Fatalf("NO_OPT got %d queries, want 8", len(queries))
	}
	for _, q := range queries {
		if q.side == sideCombined {
			t.Error("NO_OPT must not combine target and reference")
		}
		if len(q.consumers) > 2 { // at most SUM+COUNT for one view
			t.Errorf("NO_OPT query serves multiple views: %s", q.sql)
		}
	}
}

func TestNaggCapSplitsQueries(t *testing.T) {
	views := []View{
		{Dimension: "a", Measure: "m1", Agg: AggAvg},
		{Dimension: "a", Measure: "m2", Agg: AggAvg},
		{Dimension: "a", Measure: "m3", Agg: AggAvg},
	}
	build := func(nagg int) int {
		qb := &queryBuilder{
			table: "t",
			req:   Request{Table: "t", TargetWhere: "f = 'x'", Reference: RefAll},
			opts:  Options{Strategy: Sharing, GroupBy: GroupBySingle, MaxAggregatesPerQuery: nagg},
		}
		return len(qb.build(views, allAlive(3)))
	}
	if got := build(0); got != 1 {
		t.Errorf("unlimited nagg: %d queries, want 1", got)
	}
	if got := build(1); got != 3 {
		t.Errorf("nagg=1: %d queries, want 3", got)
	}
	if got := build(2); got != 2 {
		t.Errorf("nagg=2: %d queries, want 2", got)
	}
}

func TestDisableCombineAggregates(t *testing.T) {
	views := []View{
		{Dimension: "a", Measure: "m1", Agg: AggAvg},
		{Dimension: "a", Measure: "m2", Agg: AggAvg},
	}
	qb := &queryBuilder{
		table: "t",
		req:   Request{Table: "t", TargetWhere: "f = 'x'", Reference: RefAll},
		opts:  Options{Strategy: Sharing, GroupBy: GroupBySingle, DisableCombineAggregates: true},
	}
	if got := len(qb.build(views, allAlive(2))); got != 2 {
		t.Errorf("disabled aggregate combining: %d queries, want 2", got)
	}
}

func TestAggExprDeduplication(t *testing.T) {
	// AVG and SUM on the same measure share the SUM and COUNT columns.
	views := []View{
		{Dimension: "a", Measure: "m", Agg: AggAvg},
		{Dimension: "a", Measure: "m", Agg: AggSum},
	}
	qb := &queryBuilder{
		table: "t",
		req:   Request{Table: "t", TargetWhere: "f = 'x'", Reference: RefAll},
		opts:  Options{Strategy: Sharing, GroupBy: GroupBySingle},
	}
	queries := qb.build(views, allAlive(2))
	if len(queries) != 1 {
		t.Fatalf("got %d queries, want 1", len(queries))
	}
	if n := strings.Count(queries[0].sql, "SUM(m)"); n != 1 {
		t.Errorf("SUM(m) appears %d times, want 1 (dedup): %s", n, queries[0].sql)
	}
	// Both views consume, via 4 consumer entries over 2 columns.
	if len(queries[0].consumers) != 4 {
		t.Errorf("consumers = %d, want 4", len(queries[0].consumers))
	}
}

func TestDeadViewsExcludedFromQueries(t *testing.T) {
	views := testViews()
	alive := allAlive(4)
	alive[2], alive[3] = false, false // kill dimension b's views
	qb := &queryBuilder{
		table: "t",
		req:   Request{Table: "t", TargetWhere: "f = 'x'", Reference: RefAll},
		opts:  Options{Strategy: Sharing, GroupBy: GroupBySingle},
	}
	queries := qb.build(views, alive)
	if len(queries) != 1 {
		t.Fatalf("got %d queries, want 1 (dimension b pruned away)", len(queries))
	}
	if strings.Contains(queries[0].sql, " b,") || strings.HasPrefix(queries[0].sql, "SELECT b") {
		t.Errorf("pruned dimension still queried: %s", queries[0].sql)
	}
}

func TestBinPackBudgetHalvedForFlag(t *testing.T) {
	// The combined-query flag doubles worst-case groups, so the packer
	// must see half the budget. With budget 8 and dims of cardinality 3
	// and 2 (product 6 > 8/2=4), they must not share a query.
	views := []View{
		{Dimension: "a", Measure: "m1", Agg: AggCount},
		{Dimension: "b", Measure: "m1", Agg: AggCount},
	}
	qb := &queryBuilder{
		table:    "t",
		req:      Request{Table: "t", TargetWhere: "f = 'x'", Reference: RefAll},
		opts:     Options{Strategy: Sharing, GroupBy: GroupByBinPack, MemoryBudget: 8},
		distinct: map[string]int{"a": 3, "b": 2},
	}
	queries := qb.build(views, allAlive(2))
	if len(queries) != 2 {
		t.Errorf("flag-halved budget should split dims: got %d queries", len(queries))
	}
	// Without combining, the full budget applies and they fit together
	// (3·2 = 6 ≤ 8) → one dim-group → 2 queries (target + reference).
	qb.opts.DisableCombineTargetRef = true
	queries = qb.build(views, allAlive(2))
	if len(queries) != 2 {
		t.Fatalf("separate t/r with shared dims: got %d queries, want 2", len(queries))
	}
	if !strings.Contains(queries[0].sql, "a, b") {
		t.Errorf("dims should pack together under full budget: %s", queries[0].sql)
	}
}
