// Package core implements the SeeDB engine: metadata-driven enumeration
// of candidate aggregate views, the deviation-based utility metric, and
// the execution engine with the paper's sharing optimizations (combined
// aggregates, bin-packed multi-attribute GROUP BYs, combined
// target/reference queries, parallel execution) and pruning optimizations
// (confidence-interval and multi-armed-bandit pruning) composed through
// the phased execution framework.
//
// The engine is store-agnostic: it executes against the Backend
// interface (internal/backend), obtaining schema metadata, dataset
// version tokens and query results through that seam, and degrading per
// the backend's declared capabilities (see EffectiveStrategy). Cross-
// request reuse comes from the shared result cache (internal/cache),
// consulted at three granularities: whole requests, individual shared
// queries, and materialized reference views. docs/ARCHITECTURE.md walks
// one Recommend invocation through all of it.
package core

import (
	"fmt"
	"strings"

	"seedb/internal/distance"
)

// AggFunc is an aggregate function applicable to a measure attribute.
type AggFunc string

// Supported aggregate functions (the paper's F = {COUNT, SUM, AVG}; MIN
// and MAX are also supported).
const (
	AggAvg   AggFunc = "AVG"
	AggSum   AggFunc = "SUM"
	AggCount AggFunc = "COUNT"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// ValidAggFunc reports whether f is a supported aggregate.
func ValidAggFunc(f AggFunc) bool {
	switch f {
	case AggAvg, AggSum, AggCount, AggMin, AggMax:
		return true
	}
	return false
}

// View is one candidate aggregate view V ≡ (a, m, f): group rows by
// dimension attribute a and aggregate measure m with f (Section 2 of the
// paper). Applied to the target data D_Q it yields the target view;
// applied to the reference data D_R, the reference view.
type View struct {
	Dimension string
	Measure   string
	Agg       AggFunc
}

// String renders the view as "f(m) BY a".
func (v View) String() string {
	return fmt.Sprintf("%s(%s) BY %s", v.Agg, v.Measure, v.Dimension)
}

// Key returns a unique map key for the view.
func (v View) Key() string {
	return v.Dimension + "\x00" + v.Measure + "\x00" + string(v.Agg)
}

// TargetSQL returns the view query over the target subset (QT in the
// paper).
func (v View) TargetSQL(table, targetWhere string) string {
	return fmt.Sprintf("SELECT %s, %s(%s) FROM %s WHERE %s GROUP BY %s",
		v.Dimension, v.Agg, v.Measure, table, targetWhere, v.Dimension)
}

// ReferenceSQL returns the view query over the reference data (QR in the
// paper). An empty refWhere means the whole table (D_R = D, the paper's
// default).
func (v View) ReferenceSQL(table, refWhere string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s, %s(%s) FROM %s", v.Dimension, v.Agg, v.Measure, table)
	if refWhere != "" {
		fmt.Fprintf(&b, " WHERE %s", refWhere)
	}
	fmt.Fprintf(&b, " GROUP BY %s", v.Dimension)
	return b.String()
}

// cell is the mergeable accumulator for one group of one side of a view.
// All aggregate functions finalize from these four fields, which is what
// lets partial results accumulate across phases and across the subgroups
// of a bin-packed multi-attribute GROUP BY.
type cell struct {
	sum      float64
	count    float64
	min, max float64
	seen     bool
}

// addSum folds a partial SUM.
func (c *cell) addSum(v float64) { c.sum += v }

// addCount folds a partial COUNT.
func (c *cell) addCount(v float64) { c.count += v }

// addMin folds a partial MIN.
func (c *cell) addMin(v float64) {
	if !c.seen || v < c.min {
		c.min = v
	}
	if !c.seen {
		c.max = v
		c.seen = true
	}
}

// addMax folds a partial MAX.
func (c *cell) addMax(v float64) {
	if !c.seen || v > c.max {
		c.max = v
	}
	if !c.seen {
		c.min = v
		c.seen = true
	}
}

// sideAccum accumulates one side (target or reference) of a view:
// group value → cell.
type sideAccum map[string]*cell

// at returns (allocating) the cell for a group.
func (s sideAccum) at(group string) *cell {
	c, ok := s[group]
	if !ok {
		c = &cell{}
		s[group] = c
	}
	return c
}

// finalize converts the accumulated cells into group → aggregate value
// under the view's aggregate function. Groups with no contributing rows
// (count 0 for COUNT/SUM/AVG, nothing seen for MIN/MAX) are omitted.
func (s sideAccum) finalize(f AggFunc) map[string]float64 {
	out := make(map[string]float64, len(s))
	for g, c := range s {
		switch f {
		case AggAvg:
			if c.count > 0 {
				out[g] = c.sum / c.count
			}
		case AggSum:
			if c.count > 0 {
				out[g] = c.sum
			}
		case AggCount:
			out[g] = c.count
		case AggMin:
			if c.seen {
				out[g] = c.min
			}
		case AggMax:
			if c.seen {
				out[g] = c.max
			}
		}
	}
	return out
}

// viewAccum is the running state of one candidate view during execution.
type viewAccum struct {
	view      View
	target    sideAccum
	reference sideAccum
}

// newViewAccum creates empty accumulators for a view.
func newViewAccum(v View) *viewAccum {
	return &viewAccum{view: v, target: make(sideAccum), reference: make(sideAccum)}
}

// utility computes the deviation-based utility from the current partial
// state: normalize both sides into probability distributions and measure
// their distance (Section 2).
func (a *viewAccum) utility(f distance.Func) float64 {
	t := a.target.finalize(a.view.Agg)
	r := a.reference.finalize(a.view.Agg)
	if len(t) == 0 && len(r) == 0 {
		return 0
	}
	return distance.Deviation(f, t, r)
}
