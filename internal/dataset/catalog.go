package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Catalog returns every dataset spec from Table 1 of the paper, keyed by
// canonical name.
func Catalog() map[string]Spec {
	return map[string]Spec{
		"syn":     SYN(),
		"syn10":   SYNStar(10),
		"syn100":  SYNStar(100),
		"bank":    Bank(),
		"diab":    Diabetes(),
		"air":     Air(),
		"air10":   Air10(),
		"census":  Census(),
		"housing": Housing(),
		"movies":  Movies(),
	}
}

// Names returns the catalog's dataset names, sorted.
func Names() []string {
	c := Catalog()
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName resolves a dataset spec by (case-insensitive) name.
func ByName(name string) (Spec, error) {
	spec, ok := Catalog()[strings.ToLower(name)]
	if !ok {
		return Spec{}, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	return spec, nil
}

// SYN is the paper's main synthetic dataset: 1M rows (scaled down by
// default), 50 dimensions with distinct counts varying from 1 to 1000,
// and 20 measures — 1000 candidate views.
func SYN() Spec {
	dims := make([]Dim, 50)
	// Distinct counts sweep 1..1000 roughly geometrically, as in the
	// paper ("attributes with between 1 – 1000 distinct values").
	cards := []int{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}
	for i := range dims {
		dims[i] = Dim{Name: fmt.Sprintf("d%02d", i), Cardinality: cards[i%len(cards)]}
	}
	// dims[1] has cardinality 2 and acts as the selector.
	dims[1].Values = []string{"ref", "target"}
	measures := make([]Measure, 20)
	for j := range measures {
		measures[j] = Measure{Name: fmt.Sprintf("m%02d", j), Base: 100 + 10*float64(j), Noise: 5}
	}
	effects := make([]float64, len(dims)*len(measures))
	for k := range effects {
		// Mild planted deviation so pruning has something to find; the
		// sharing experiments only measure latency.
		effects[k] = 0.25 * float64(k%7) / 7
	}
	return Spec{
		Name:            "syn",
		Description:     "Randomly distributed, varying # distinct values",
		Rows:            100_000,
		PaperRows:       1_000_000,
		PaperSizeMB:     411,
		Dims:            dims,
		Measures:        measures,
		SelectorIdx:     1,
		SelectorInViews: true,
		TargetValue:     "target",
		TargetFrac:      0.5,
		Effects:         effects,
		Seed:            101,
	}
}

// SYNStar is SYN*-10 / SYN*-100: 20 dimensions with a uniform distinct
// count (10 or 100) and a single measure; used for the group-by memory
// experiments (Figure 8a).
func SYNStar(distinct int) Spec {
	dims := make([]Dim, 20)
	for i := range dims {
		dims[i] = Dim{Name: fmt.Sprintf("d%02d", i), Cardinality: distinct}
	}
	return Spec{
		Name:            fmt.Sprintf("syn%d", distinct),
		Description:     fmt.Sprintf("Randomly distributed, %d distinct values/dim", distinct),
		Rows:            100_000,
		PaperRows:       1_000_000,
		PaperSizeMB:     21,
		Dims:            dims,
		Measures:        []Measure{{Name: "m00", Base: 100, Noise: 5}},
		SelectorIdx:     0,
		SelectorInViews: true,
		TargetValue:     dims[0].Value(0),
		TargetFrac:      1.0 / float64(distinct),
		Seed:            103,
	}
}

// bankUtilityProfile shapes BANK's per-view effects to match Figure 10a:
// the top two views well separated from the rest, views 3–9 clustered
// (Δ<0.002), #10 separated again, a dense tail through rank ~25 (Δ<0.001
// — the paper's experiments sweep k up to 25), and a fast decay beyond.
// The fast far-tail decay keeps the total measure tilt per column small,
// so the generator's planted utilities are achieved without clamping
// distortion (see Spec.effectTable).
func bankUtilityProfile(views int) []float64 {
	u := make([]float64, views)
	for k := range u {
		switch {
		case k == 0:
			u[k] = 0.36
		case k == 1:
			u[k] = 0.32
		case k <= 8:
			u[k] = 0.28 - 0.0015*float64(k-2)
		case k == 9:
			u[k] = 0.25
		case k <= 25:
			u[k] = 0.17 - 0.0008*float64(k-10)
		default:
			u[k] = 0.15 * math.Exp(-float64(k-25)/5)
			if u[k] < 0.012 {
				u[k] = 0.012
			}
		}
	}
	return u
}

// Bank models the UCI bank-marketing dataset: 40K rows, 11 dimensions,
// 7 measures (77 views). The target subset is customers with housing
// loans.
func Bank() Spec {
	dims := []Dim{
		{Name: "housing", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "job", Cardinality: 12},
		{Name: "marital", Cardinality: 3, Values: []string{"married", "single", "divorced"}},
		{Name: "education", Cardinality: 4, Values: []string{"primary", "secondary", "tertiary", "unknown"}},
		{Name: "default_credit", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "loan", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "contact", Cardinality: 3, Values: []string{"cellular", "telephone", "unknown"}},
		{Name: "month", Cardinality: 12},
		{Name: "poutcome", Cardinality: 4, Values: []string{"failure", "other", "success", "unknown"}},
		{Name: "deposit", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "region", Cardinality: 8},
		{Name: "age_band", Cardinality: 6},
	}
	measures := []Measure{
		{Name: "age", Base: 41, Noise: 4},
		{Name: "balance", Base: 1400, Noise: 140},
		{Name: "duration", Base: 260, Noise: 26},
		{Name: "campaign", Base: 2.8, Noise: 0.28},
		{Name: "pdays", Base: 40, Noise: 4},
		{Name: "previous", Base: 0.8, Noise: 0.08},
		{Name: "day", Base: 15.8, Noise: 1.6},
	}
	return Spec{
		Name:        "bank",
		Description: "Customer Loan dataset",
		Rows:        40_000,
		PaperRows:   40_000,
		PaperSizeMB: 6.7,
		Dims:        dims,
		Measures:    measures,
		SelectorIdx: 0,
		TargetValue: "yes",
		TargetFrac:  0.44,
		Effects:     bankUtilityProfile((len(dims) - 1) * len(measures)),
		Seed:        107,
	}
}

// diabUtilityProfile shapes DIAB's effects to match Figure 10b: the top
// ten views tightly clustered (Δ<0.002, e.g. U(V5)=0.257, U(V6)=0.254,
// U(V7)=0.252) with a sparser distribution below.
func diabUtilityProfile(views int) []float64 {
	u := make([]float64, views)
	for k := 0; k < 10 && k < views; k++ {
		u[k] = 0.262 - 0.0017*float64(k)
	}
	for k := 10; k < views; k++ {
		u[k] = 0.21 - 0.004*float64(k-10)
		if u[k] < 0.01 {
			u[k] = 0.01
		}
	}
	return u
}

// Diabetes models the UCI hospital-readmission diabetes dataset: 100K
// rows, 11 dimensions, 8 measures (88 views). The target subset is
// readmitted patients.
func Diabetes() Spec {
	dims := []Dim{
		{Name: "readmitted", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "race", Cardinality: 6},
		{Name: "gender", Cardinality: 2, Values: []string{"female", "male"}},
		{Name: "age_bracket", Cardinality: 10},
		{Name: "admission_type", Cardinality: 8},
		{Name: "discharge_disposition", Cardinality: 26},
		{Name: "admission_source", Cardinality: 17},
		{Name: "insulin", Cardinality: 4, Values: []string{"no", "steady", "up", "down"}},
		{Name: "diabetes_med", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "payer_code", Cardinality: 18},
		{Name: "specialty", Cardinality: 20},
		{Name: "weight_band", Cardinality: 9},
	}
	measures := []Measure{
		{Name: "time_in_hospital", Base: 4.4, Noise: 0.44},
		{Name: "num_lab_procedures", Base: 43, Noise: 4.3},
		{Name: "num_procedures", Base: 1.3, Noise: 0.13},
		{Name: "num_medications", Base: 16, Noise: 1.6},
		{Name: "number_outpatient", Base: 4, Noise: 0.4},
		{Name: "number_emergency", Base: 2, Noise: 0.2},
		{Name: "number_inpatient", Base: 6, Noise: 0.6},
		{Name: "number_diagnoses", Base: 7.4, Noise: 0.74},
	}
	return Spec{
		Name:        "diab",
		Description: "Hospital data about diabetic patients",
		Rows:        50_000,
		PaperRows:   100_000,
		PaperSizeMB: 23,
		Dims:        dims,
		Measures:    measures,
		SelectorIdx: 0,
		TargetValue: "yes",
		TargetFrac:  0.46,
		Effects:     diabUtilityProfile((len(dims) - 1) * len(measures)),
		Seed:        109,
	}
}

// airEffects gives AIR a geometrically decaying utility distribution:
// clearly separated top views (so confidence-interval pruning can decide
// the top-k early — the paper's AIR is where COMB_EARLY shines) over a
// thin tail.
func airEffects(views int) []float64 {
	u := make([]float64, views)
	for k := 0; k < views; k++ {
		u[k] = 0.32 * math.Pow(0.93, float64(k))
		if u[k] < 0.008 {
			u[k] = 0.008
		}
	}
	return u
}

// Air models the US DOT airline on-time dataset: 6M rows (scaled down by
// default), 12 dimensions, 9 measures (108 views). The target subset is
// delayed flights.
func Air() Spec {
	dims := []Dim{
		{Name: "delayed", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "carrier", Cardinality: 14},
		{Name: "origin_state", Cardinality: 52},
		{Name: "dest_state", Cardinality: 52},
		{Name: "month", Cardinality: 12},
		{Name: "day_of_week", Cardinality: 7},
		{Name: "dep_block", Cardinality: 6},
		{Name: "arr_block", Cardinality: 6},
		{Name: "distance_band", Cardinality: 8},
		{Name: "aircraft_type", Cardinality: 10},
		{Name: "origin_size", Cardinality: 4, Values: []string{"small", "medium", "large", "hub"}},
		{Name: "cancel_code", Cardinality: 5},
		{Name: "dep_hour", Cardinality: 24},
	}
	measures := []Measure{
		{Name: "dep_delay", Base: 12, Noise: 1.2},
		{Name: "arr_delay", Base: 10, Noise: 1},
		{Name: "taxi_out", Base: 16, Noise: 1.6},
		{Name: "taxi_in", Base: 7, Noise: 0.7},
		{Name: "air_time", Base: 110, Noise: 11},
		{Name: "distance", Base: 750, Noise: 75},
		{Name: "carrier_delay", Base: 4, Noise: 0.4},
		{Name: "weather_delay", Base: 1, Noise: 0.1},
		{Name: "late_aircraft_delay", Base: 5, Noise: 0.5},
	}
	return Spec{
		Name:        "air",
		Description: "Airline delays dataset",
		Rows:        100_000,
		PaperRows:   6_000_000,
		PaperSizeMB: 974,
		Dims:        dims,
		Measures:    measures,
		SelectorIdx: 0,
		TargetValue: "yes",
		TargetFrac:  0.22,
		Effects:     airEffects(12 * 9),
		Seed:        113,
	}
}

// Air10 is AIR scaled 10X (60M rows in the paper; 10× the default AIR
// scale here).
func Air10() Spec {
	s := Air()
	s.Name = "air10"
	s.Description = "Airline dataset scaled 10X"
	s.Rows = 1_000_000
	s.PaperRows = 60_000_000
	s.PaperSizeMB = 9737
	s.Seed = 127
	return s
}

// censusEffects plants the user-study structure over the 40 census views
// (10 dims × 4 measures): roughly six strongly deviating views (the
// number the expert panel labelled interesting), with the worked example
// of Figure 1 — (sex, capital_gain) deviating, (sex, age) flat — encoded
// directly. Effects are assigned in order (no permutation) so view
// indices are meaningful.
func censusEffects(dims, measures int) []float64 {
	e := make([]float64, dims*measures)
	idx := func(d, m int) int { return d*measures + m }
	// Measures: 0=age, 1=capital_gain, 2=capital_loss, 3=hours_per_week.
	// Dims: 0=marital(selector),1=sex,2=race,3=education,4=workclass,
	//       5=occupation,6=relationship,7=country,8=income,9=age_decade.
	e[idx(1, 1)] = 0.26  // sex × capital_gain       — Figure 1a (interesting)
	e[idx(1, 0)] = 0.005 // sex × age               — Figure 1b (boring)
	e[idx(4, 1)] = 0.24  // workclass × capital_gain — Figure 14a (self-inc earning gap)
	e[idx(3, 1)] = 0.22  // education × capital_gain
	e[idx(5, 3)] = 0.20  // occupation × hours_per_week
	e[idx(8, 1)] = 0.19  // income × capital_gain
	e[idx(6, 3)] = 0.17  // relationship × hours_per_week
	// A handful of mild deviations that the deviation metric ranks high
	// but experts may not care about (the paper's false positives).
	e[idx(2, 2)] = 0.12
	e[idx(7, 2)] = 0.10
	e[idx(9, 0)] = 0.09
	// Everything else: small noise-level deviation.
	for k := range e {
		if e[k] == 0 {
			e[k] = 0.01 + 0.0005*float64(k%13)
		}
	}
	return e
}

// Census models the UCI adult census dataset used in the user study and
// the paper's running example (Section 1): 21K rows, 10 dimensions, 4
// measures. The analyst's query compares unmarried adults (target)
// against married adults.
func Census() Spec {
	dims := []Dim{
		{Name: "marital", Cardinality: 2, Values: []string{"Married", "Unmarried"}},
		{Name: "sex", Cardinality: 2, Values: []string{"Female", "Male"}},
		{Name: "race", Cardinality: 5},
		{Name: "education", Cardinality: 8},
		{Name: "workclass", Cardinality: 7, Values: []string{"private", "self-inc", "self-not-inc", "federal", "state", "local", "unemployed"}},
		{Name: "occupation", Cardinality: 14},
		{Name: "relationship", Cardinality: 6},
		{Name: "country", Cardinality: 10},
		{Name: "income", Cardinality: 2, Values: []string{"<=50K", ">50K"}},
		{Name: "age_decade", Cardinality: 7},
	}
	measures := []Measure{
		{Name: "age", Base: 40, Noise: 9},
		{Name: "capital_gain", Base: 1100, Noise: 300},
		{Name: "capital_loss", Base: 90, Noise: 30},
		{Name: "hours_per_week", Base: 40, Noise: 8},
	}
	return Spec{
		Name:            "census",
		Description:     "Census data",
		Rows:            21_000,
		PaperRows:       21_000,
		PaperSizeMB:     2.7,
		Dims:            dims,
		Measures:        measures,
		SelectorIdx:     0,
		SelectorInViews: true,
		TargetValue:     "Unmarried",
		TargetFrac:      0.47,
		Effects:         censusEffects(10, 4),
		EffectsInOrder:  true,
		Seed:            131,
	}
}

// studyProfile shapes the user-study datasets' interestingness: a handful
// of genuinely interesting views (as the paper's expert panel found for
// census: ~10-15% of views) and a long boring tail. Table 2's MANUAL
// bookmark rate (~0.14) is the base rate of interesting views an analyst
// hits when examining views in arbitrary order.
func studyProfile(views, interesting int) []float64 {
	u := make([]float64, views)
	for k := range u {
		if k < interesting {
			u[k] = 0.30 - 0.018*float64(k)
		} else {
			u[k] = 0.015 + 0.0005*float64(k%7)
		}
	}
	return u
}

// Housing models the user-study housing-prices dataset: 0.5K rows, 4
// dimensions, 10 measures (40 views).
func Housing() Spec {
	dims := []Dim{
		{Name: "near_river", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "neighborhood", Cardinality: 10},
		{Name: "house_type", Cardinality: 4, Values: []string{"detached", "semi", "terraced", "flat"}},
		{Name: "decade_built", Cardinality: 8},
		{Name: "school_district", Cardinality: 12},
	}
	measures := []Measure{
		{Name: "price", Base: 320_000, Noise: 80_000},
		{Name: "sqft", Base: 1500, Noise: 350},
		{Name: "lot_size", Base: 6000, Noise: 1500},
		{Name: "bedrooms", Base: 3.1, Noise: 0.8},
		{Name: "bathrooms", Base: 1.9, Noise: 0.5},
		{Name: "crime_rate", Base: 3.6, Noise: 1.1},
		{Name: "school_score", Base: 6.8, Noise: 1.4},
		{Name: "tax_rate", Base: 1.2, Noise: 0.3},
		{Name: "commute_min", Base: 28, Noise: 8},
		{Name: "age_years", Base: 42, Noise: 15},
	}
	effects := studyProfile((len(dims)-1)*len(measures), 6)
	return Spec{
		Name:        "housing",
		Description: "Housing prices",
		Rows:        500,
		PaperRows:   500,
		PaperSizeMB: 0.9,
		Dims:        dims,
		Measures:    measures,
		SelectorIdx: 0,
		TargetValue: "yes",
		TargetFrac:  0.3,
		Effects:     effects,
		Seed:        137,
	}
}

// Movies models the user-study movie-sales dataset: 1K rows, 8
// dimensions, 8 measures (64 views).
func Movies() Spec {
	dims := []Dim{
		{Name: "franchise", Cardinality: 2, Values: []string{"no", "yes"}},
		{Name: "genre", Cardinality: 12},
		{Name: "studio", Cardinality: 9},
		{Name: "rating", Cardinality: 5, Values: []string{"G", "PG", "PG-13", "R", "NR"}},
		{Name: "decade", Cardinality: 6},
		{Name: "country", Cardinality: 8},
		{Name: "format", Cardinality: 3, Values: []string{"live-action", "animated", "documentary"}},
		{Name: "season", Cardinality: 4, Values: []string{"winter", "spring", "summer", "fall"}},
		{Name: "era", Cardinality: 3, Values: []string{"classic", "modern", "contemporary"}},
	}
	measures := []Measure{
		{Name: "gross_sales", Base: 95e6, Noise: 30e6},
		{Name: "budget", Base: 45e6, Noise: 15e6},
		{Name: "opening_weekend", Base: 22e6, Noise: 8e6},
		{Name: "run_time", Base: 112, Noise: 15},
		{Name: "critic_score", Base: 61, Noise: 14},
		{Name: "audience_score", Base: 64, Noise: 13},
		{Name: "screens", Base: 2600, Noise: 700},
		{Name: "weeks_in_theaters", Base: 11, Noise: 4},
	}
	effects := studyProfile((len(dims)-1)*len(measures), 7)
	return Spec{
		Name:        "movies",
		Description: "Movie sales",
		Rows:        1000,
		PaperRows:   1000,
		PaperSizeMB: 1.2,
		Dims:        dims,
		Measures:    measures,
		SelectorIdx: 0,
		TargetValue: "yes",
		TargetFrac:  0.35,
		Effects:     effects,
		Seed:        139,
	}
}
