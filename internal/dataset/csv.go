package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"seedb/internal/sqldb"
)

// WriteCSV writes a table (header + all rows) as CSV.
func WriteCSV(w io.Writer, t sqldb.Table) error {
	cw := csv.NewWriter(w)
	schema := t.Schema()
	header := make([]string, schema.NumColumns())
	cols := make([]int, schema.NumColumns())
	for i := range header {
		header[i] = schema.Column(i).Name
		cols[i] = i
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, len(header))
	err := t.ScanRange(0, t.NumRows(), cols, func(row sqldb.RowView) error {
		for i := range record {
			v := row.Value(i)
			if v.IsNull() {
				record[i] = ""
			} else {
				record[i] = v.String()
			}
		}
		return cw.Write(record)
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// streamCSV writes a header plus generated rows as CSV, flushing every
// synthBatch rows so memory stays bounded regardless of the row count.
// generate must call emit once per row; the emitted slice may be reused.
func streamCSV(w io.Writer, schema *sqldb.Schema, rows int, generate func(emit func(vals []sqldb.Value) error) error) error {
	cw := csv.NewWriter(w)
	header := make([]string, schema.NumColumns())
	for i := range header {
		header[i] = schema.Column(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, len(header))
	emitted := 0
	err := generate(func(vals []sqldb.Value) error {
		for i, v := range vals {
			if v.IsNull() {
				record[i] = ""
			} else {
				record[i] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
		emitted++
		if emitted%synthBatch == 0 {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// StreamCSV writes a paper-catalog spec as CSV without materializing a
// table: rows flow from the spec's generator straight into the encoder.
func StreamCSV(w io.Writer, spec Spec, rows int) error {
	if rows > 0 {
		spec.Rows = rows
	}
	return streamCSV(w, spec.Schema(), spec.Rows, spec.Generate)
}

// LoadCSV reads CSV data (with a header row naming columns) into a new
// table. Column types are taken from the provided schema; the CSV header
// must list exactly the schema's columns, in order. Empty fields load as
// NULL.
func LoadCSV(db *sqldb.DB, name string, schema *sqldb.Schema, layout sqldb.Layout, r io.Reader) (sqldb.Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != schema.NumColumns() {
		return nil, fmt.Errorf("dataset: CSV has %d columns, schema has %d", len(header), schema.NumColumns())
	}
	for i, h := range header {
		if h != schema.Column(i).Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema says %q", i, h, schema.Column(i).Name)
		}
	}
	t, err := db.CreateTable(name, schema, layout)
	if err != nil {
		return nil, err
	}
	vals := make([]sqldb.Value, schema.NumColumns())
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		for i, field := range record {
			v, err := ParseField(field, schema.Column(i).Type)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %s: %w", line, schema.Column(i).Name, err)
			}
			vals[i] = v
		}
		if err := t.AppendRow(vals); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
	return t, nil
}

// ParseField converts one textual field to a Value of the given type;
// the empty string parses as NULL. It is the shared cell decoder for
// CSV loading and the server's /api/ingest row format.
func ParseField(s string, typ sqldb.ColumnType) (sqldb.Value, error) {
	if s == "" {
		return sqldb.Null(), nil
	}
	switch typ {
	case sqldb.TypeInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return sqldb.Null(), fmt.Errorf("bad int %q", s)
		}
		return sqldb.Int(i), nil
	case sqldb.TypeFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return sqldb.Null(), fmt.Errorf("bad float %q", s)
		}
		return sqldb.Float(f), nil
	case sqldb.TypeBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return sqldb.Null(), fmt.Errorf("bad bool %q", s)
		}
		return sqldb.Bool(b), nil
	default:
		return sqldb.Str(s), nil
	}
}
