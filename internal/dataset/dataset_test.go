package dataset

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"seedb/internal/distance"
	"seedb/internal/sqldb"
)

func TestCatalogShapesMatchTable1(t *testing.T) {
	// |A|, |M| and view counts straight from Table 1 of the paper.
	cases := []struct {
		name      string
		dims      int
		measures  int
		views     int
		paperRows int
	}{
		{"syn", 50, 20, 1000, 1_000_000},
		{"syn10", 20, 1, 20, 1_000_000},
		{"syn100", 20, 1, 20, 1_000_000},
		{"bank", 11, 7, 77, 40_000},
		{"diab", 11, 8, 88, 100_000},
		{"air", 12, 9, 108, 6_000_000},
		{"air10", 12, 9, 108, 60_000_000},
		{"census", 10, 4, 40, 21_000},
		{"housing", 4, 10, 40, 500},
		{"movies", 8, 8, 64, 1000},
	}
	for _, c := range cases {
		spec, err := ByName(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(spec.ViewDims()) != c.dims {
			t.Errorf("%s: |A| = %d, want %d", c.name, len(spec.ViewDims()), c.dims)
		}
		if len(spec.Measures) != c.measures {
			t.Errorf("%s: |M| = %d, want %d", c.name, len(spec.Measures), c.measures)
		}
		if spec.NumViews() != c.views {
			t.Errorf("%s: views = %d, want %d", c.name, spec.NumViews(), c.views)
		}
		if spec.PaperRows != c.paperRows {
			t.Errorf("%s: paper rows = %d, want %d", c.name, spec.PaperRows, c.paperRows)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := ByName("BANK"); err != nil {
		t.Error("lookup should be case-insensitive")
	}
	names := Names()
	if len(names) != 10 {
		t.Errorf("catalog has %d datasets, want 10", len(names))
	}
}

func TestSpecHelpers(t *testing.T) {
	spec := Census()
	if got := spec.TargetPredicate(); got != "marital = 'Unmarried'" {
		t.Errorf("TargetPredicate = %q", got)
	}
	if spec.Selector().Name != "marital" {
		t.Errorf("selector = %q", spec.Selector().Name)
	}
	if got := spec.WithRows(42).Rows; got != 42 {
		t.Errorf("WithRows = %d", got)
	}
	if len(spec.DimNames()) != 10 || spec.DimNames()[1] != "sex" {
		t.Errorf("DimNames = %v", spec.DimNames())
	}
	if len(spec.MeasureNames()) != 4 || spec.MeasureNames()[1] != "capital_gain" {
		t.Errorf("MeasureNames = %v", spec.MeasureNames())
	}
	if spec.Effect(1, 1) <= spec.Effect(1, 0) {
		t.Error("planted (sex, capital_gain) effect must exceed (sex, age)")
	}
	schema := spec.Schema()
	if schema.NumColumns() != 14 {
		t.Errorf("schema columns = %d, want 14", schema.NumColumns())
	}
}

func TestDimValueNaming(t *testing.T) {
	d := Dim{Name: "x", Cardinality: 4, Values: []string{"a", "b"}}
	if d.Value(0) != "a" || d.Value(1) != "b" {
		t.Error("explicit names should win")
	}
	if d.Value(2) != "x_2" {
		t.Errorf("synthesized name = %q", d.Value(2))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Bank().WithRows(500)
	sig := func() string {
		var b strings.Builder
		err := spec.Generate(func(vals []sqldb.Value) error {
			for _, v := range vals {
				fmt.Fprintf(&b, "%s|", v.String())
			}
			b.WriteByte('\n')
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if sig() != sig() {
		t.Error("generation must be deterministic for a fixed seed")
	}
}

func TestGenerateRespectsTargetFraction(t *testing.T) {
	spec := Census().WithRows(20_000)
	total, target := 0, 0
	err := spec.Generate(func(vals []sqldb.Value) error {
		total++
		if vals[spec.SelectorIdx].S == spec.TargetValue {
			target++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(target) / float64(total)
	if math.Abs(frac-spec.TargetFrac) > 0.02 {
		t.Errorf("target fraction = %.3f, want ≈ %.2f", frac, spec.TargetFrac)
	}
}

func TestGenerateCardinalities(t *testing.T) {
	spec := Bank().WithRows(5000)
	db, tab, err := BuildDB(spec, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5000 {
		t.Errorf("rows = %d", tab.NumRows())
	}
	ts, err := db.Stats(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range spec.Dims {
		cs, ok := ts.Column(d.Name)
		if !ok {
			t.Fatalf("missing column %s", d.Name)
		}
		if cs.Distinct > d.Cardinality {
			t.Errorf("%s: distinct %d exceeds declared cardinality %d", d.Name, cs.Distinct, d.Cardinality)
		}
		// With 5000 rows every small-cardinality dim should be saturated.
		if d.Cardinality <= 12 && cs.Distinct != d.Cardinality {
			t.Errorf("%s: distinct %d, want %d", d.Name, cs.Distinct, d.Cardinality)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := Spec{Name: "x", Rows: 1}
	if err := bad.Generate(func([]sqldb.Value) error { return nil }); err == nil {
		t.Error("empty dims/measures should fail")
	}
	bad2 := Bank()
	bad2.SelectorIdx = 99
	if err := bad2.Generate(func([]sqldb.Value) error { return nil }); err == nil {
		t.Error("bad selector index should fail")
	}
	bad3 := Bank()
	bad3.TargetValue = "nonexistent"
	if err := bad3.Generate(func([]sqldb.Value) error { return nil }); err == nil {
		t.Error("unknown target value should fail")
	}
	// Emit errors propagate.
	spec := Bank().WithRows(10)
	wantErr := fmt.Errorf("sink full")
	err := spec.Generate(func([]sqldb.Value) error { return wantErr })
	if err != wantErr {
		t.Errorf("emit error not propagated: %v", err)
	}
}

func TestPlantedDeviationOrdering(t *testing.T) {
	// The measured deviation of a strongly planted census view must
	// exceed a weakly planted one: (sex, capital_gain) ≫ (sex, age).
	spec := Census().WithRows(15_000)
	db, _, err := BuildDB(spec, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	dev := func(dim, measure string) float64 {
		t.Helper()
		target, err := db.Query(fmt.Sprintf(
			"SELECT %s, AVG(%s) FROM census WHERE %s GROUP BY %s", dim, measure, spec.TargetPredicate(), dim))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := db.Query(fmt.Sprintf(
			"SELECT %s, AVG(%s) FROM census WHERE marital = 'Married' GROUP BY %s", dim, measure, dim))
		if err != nil {
			t.Fatal(err)
		}
		toMap := func(rows [][]sqldb.Value) map[string]float64 {
			m := make(map[string]float64)
			for _, r := range rows {
				f, _ := r[1].AsFloat()
				m[r[0].S] = f
			}
			return m
		}
		return distance.Deviation(distance.EMD, toMap(target.Rows), toMap(ref.Rows))
	}
	gain := dev("sex", "capital_gain")
	age := dev("sex", "age")
	if gain < 4*age {
		t.Errorf("capital-gain-by-sex deviation (%.4f) should dwarf age-by-sex (%.4f)", gain, age)
	}
	if gain < 0.05 {
		t.Errorf("planted deviation too weak: %.4f", gain)
	}
}

func TestFigure1ShapeCapitalGainBySex(t *testing.T) {
	// Reproduce the qualitative shape of Figure 1: in the target
	// (unmarried) the female/male capital-gain split is near even, in
	// the reference (married) it is skewed toward males.
	spec := Census().WithRows(15_000)
	db, _, err := BuildDB(spec, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	split := func(where string) (f, m float64) {
		res, err := db.Query("SELECT sex, AVG(capital_gain) FROM census " + where + " GROUP BY sex")
		if err != nil {
			t.Fatal(err)
		}
		var vals [2]float64
		for _, r := range res.Rows {
			v, _ := r[1].AsFloat()
			if r[0].S == "Female" {
				vals[0] = v
			} else {
				vals[1] = v
			}
		}
		total := vals[0] + vals[1]
		return vals[0] / total, vals[1] / total
	}
	tf, _ := split("WHERE marital = 'Unmarried'")
	rf, rm := split("WHERE marital = 'Married'")
	if math.Abs(tf-0.5) > 0.1 {
		t.Errorf("target female share = %.3f, want near 0.5", tf)
	}
	if rm < rf+0.1 {
		t.Errorf("reference male share (%.3f) should clearly exceed female (%.3f)", rm, rf)
	}
}

func TestBankUtilityProfileShape(t *testing.T) {
	u := bankUtilityProfile(77)
	if len(u) != 77 {
		t.Fatalf("len = %d", len(u))
	}
	// Top-2 separated, 3..9 clustered, 10 separated, dense tail through
	// rank 25 (the experiments' k ceiling), fast decay beyond.
	if u[0]-u[1] < 0.01 || u[1]-u[2] < 0.01 {
		t.Error("top two views should stand apart")
	}
	for k := 2; k < 8; k++ {
		if u[k]-u[k+1] > 0.002+1e-12 {
			t.Errorf("views %d-%d should be clustered (Δ=%g)", k+1, k+2, u[k]-u[k+1])
		}
	}
	if u[9]-u[10] < 0.01 {
		t.Error("view 10 should be separated from the tail")
	}
	for k := 10; k < 25; k++ {
		if u[k]-u[k+1] > 0.001+1e-12 {
			t.Errorf("dense-tail gap at %d too large: %g", k, u[k]-u[k+1])
		}
	}
	for k := 0; k < 76; k++ {
		if u[k+1] > u[k] {
			t.Errorf("profile must be non-increasing at %d", k)
		}
	}
	// The slim far tail keeps total measure tilt clamp-free: the sum of
	// intended utilities weighted by worst-case (c=2) unit-EMD must stay
	// bounded.
	var sum float64
	for _, x := range u {
		sum += x
	}
	if sum > 8 {
		t.Errorf("profile mass %.2f risks tilt clamping", sum)
	}
}

func TestDiabUtilityProfileShape(t *testing.T) {
	u := diabUtilityProfile(88)
	for k := 0; k < 9; k++ {
		if u[k]-u[k+1] > 0.002+1e-12 {
			t.Errorf("top-10 should be clustered, Δ%d = %g", k+1, u[k]-u[k+1])
		}
	}
	if u[9]-u[10] < 0.01 {
		t.Error("drop after the top-10 cluster expected")
	}
	for k := 0; k < 87; k++ {
		if u[k+1] > u[k] {
			t.Errorf("profile must be non-increasing at %d", k)
		}
	}
}

func TestBuildBothLayoutsAgree(t *testing.T) {
	spec := Housing() // tiny
	dbR, _, err := BuildDB(spec, sqldb.LayoutRow)
	if err != nil {
		t.Fatal(err)
	}
	dbC, _, err := BuildDB(spec, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	q := "SELECT neighborhood, AVG(price), COUNT(*) FROM housing GROUP BY neighborhood ORDER BY neighborhood"
	r1, err := dbR.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dbC.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		for j := range r1.Rows[i] {
			if r1.Rows[i][j].String() != r2.Rows[i][j].String() {
				t.Errorf("row %d col %d: %v vs %v", i, j, r1.Rows[i][j], r2.Rows[i][j])
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	spec := Housing().WithRows(50)
	db, tab, err := BuildDB(spec, sqldb.LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCSV(db, "housing2", spec.Schema(), sqldb.LayoutRow, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRows() != 50 {
		t.Fatalf("loaded %d rows, want 50", loaded.NumRows())
	}
	r1, err := db.Query("SELECT COUNT(*), SUM(price) FROM housing")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Query("SELECT COUNT(*), SUM(price) FROM housing2")
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := r1.Rows[0][1].AsFloat()
	s2, _ := r2.Rows[0][1].AsFloat()
	if r1.Rows[0][0].I != r2.Rows[0][0].I || math.Abs(s1-s2) > math.Abs(s1)*1e-9 {
		t.Errorf("round trip changed aggregates: %v vs %v", r1.Rows[0], r2.Rows[0])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "a", Type: sqldb.TypeString},
		sqldb.Column{Name: "m", Type: sqldb.TypeFloat},
	)
	db := sqldb.NewDB()
	cases := []struct {
		name string
		csv  string
	}{
		{"t1", "a\nx\n"},             // wrong column count
		{"t2", "a,wrong\nx,1\n"},     // wrong header name
		{"t3", "a,m\nx,notafloat\n"}, // bad field
		{"t4", ""},                   // missing header
	}
	for _, c := range cases {
		if _, err := LoadCSV(db, c.name, schema, sqldb.LayoutCol, strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: LoadCSV(%q) should fail", c.name, c.csv)
		}
	}
	// NULLs load from empty fields.
	tab, err := LoadCSV(db, "ok", schema, sqldb.LayoutCol, strings.NewReader("a,m\nx,\n,2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*), COUNT(m), COUNT(a) FROM ok")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 2 || res.Rows[0][1].I != 1 || res.Rows[0][2].I != 1 {
		t.Errorf("NULL loading wrong: %v", res.Rows[0])
	}
	_ = tab
}

func TestParseFieldTypes(t *testing.T) {
	if v, err := ParseField("5", sqldb.TypeInt); err != nil || v.I != 5 {
		t.Error("int parse failed")
	}
	if v, err := ParseField("true", sqldb.TypeBool); err != nil || !v.Truthy() {
		t.Error("bool parse failed")
	}
	if _, err := ParseField("xyz", sqldb.TypeInt); err == nil {
		t.Error("bad int should fail")
	}
	if _, err := ParseField("xyz", sqldb.TypeBool); err == nil {
		t.Error("bad bool should fail")
	}
	if v, err := ParseField("", sqldb.TypeFloat); err != nil || !v.IsNull() {
		t.Error("empty field should be NULL")
	}
}
