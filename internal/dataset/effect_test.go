package dataset

import (
	"math"
	"testing"
)

func TestUnitEMDKnownValues(t *testing.T) {
	// c=2: ramp (−1, +1), cum (−1, 0) → Σ|cum|/c = 0.5.
	if got := unitEMD(rampFor(2)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("unitEMD(2) = %g, want 0.5", got)
	}
	// c=3: ramp (−1, 0, 1), cums (−1, −1, 0) → 2/3.
	if got := unitEMD(rampFor(3)); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("unitEMD(3) = %g, want 2/3", got)
	}
	// c=1: no tilt possible.
	if got := unitEMD(rampFor(1)); got != 0 {
		t.Errorf("unitEMD(1) = %g, want 0", got)
	}
	// Larger cardinalities approach c/6.
	if got := unitEMD(rampFor(60)); math.Abs(got-10) > 0.5 {
		t.Errorf("unitEMD(60) = %g, want ≈ 10", got)
	}
}

func TestUnitEMDMonotoneInCardinality(t *testing.T) {
	prev := 0.0
	for c := 2; c <= 30; c++ {
		got := unitEMD(rampFor(c))
		if got <= prev {
			t.Errorf("unitEMD(%d) = %g not increasing (prev %g)", c, got, prev)
		}
		prev = got
	}
}

func TestRampForShape(t *testing.T) {
	r := rampFor(5)
	if r[0] != -1 || r[4] != 1 || r[2] != 0 {
		t.Errorf("ramp(5) = %v", r)
	}
	sum := 0.0
	for _, x := range r {
		sum += x
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("ramp must sum to 0, got %g", sum)
	}
	if len(rampFor(1)) != 1 || rampFor(1)[0] != 0 {
		t.Error("single-bucket ramp should be {0}")
	}
}

func TestEffectTableAssignsEveryEffectOnce(t *testing.T) {
	for _, name := range []string{"bank", "diab", "air", "housing", "movies"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		table := spec.effectTable()
		var assigned []float64
		for _, row := range table {
			assigned = append(assigned, row...)
		}
		if len(assigned) != spec.NumViews() {
			t.Fatalf("%s: table covers %d views, want %d", name, len(assigned), spec.NumViews())
		}
		// The multiset of assigned values must equal the profile.
		sum, profSum := 0.0, 0.0
		for _, v := range assigned {
			sum += v
		}
		for _, v := range spec.Effects {
			profSum += v
		}
		if math.Abs(sum-profSum) > 1e-9 {
			t.Errorf("%s: assigned mass %.4f != profile mass %.4f", name, sum, profSum)
		}
	}
}

func TestEffectTableBalancesMeasureLoads(t *testing.T) {
	// The balanced assignment must keep every measure's total calibrated
	// tilt well below the clamp region (|shift| < 1).
	for _, name := range []string{"bank", "diab", "air"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		table := spec.effectTable()
		viewDims := spec.ViewDims()
		for m := range spec.Measures {
			load := 0.0
			for vd := range viewDims {
				u := unitEMD(rampFor(viewDims[vd].Cardinality))
				if u > 0 {
					load += table[vd][m] / u
				}
			}
			if load > 0.95 {
				t.Errorf("%s measure %s: tilt load %.3f risks clamping", name, spec.Measures[m].Name, load)
			}
		}
	}
}

func TestEffectTableTopUtilityOnHighCardinalityDim(t *testing.T) {
	spec := Bank()
	table := spec.effectTable()
	viewDims := spec.ViewDims()
	// Find where the maximum intended utility landed.
	best, bestDim := 0.0, -1
	for vd := range table {
		for m := range table[vd] {
			if table[vd][m] > best {
				best, bestDim = table[vd][m], vd
			}
		}
	}
	if best != 0.36 {
		t.Fatalf("max assigned utility = %g, want 0.36", best)
	}
	// It must sit on one of the highest-cardinality dims (c=12).
	if viewDims[bestDim].Cardinality < 12 {
		t.Errorf("top utility on cardinality-%d dim %s; balanced assignment should use c=12",
			viewDims[bestDim].Cardinality, viewDims[bestDim].Name)
	}
}

func TestEffectTableInOrderMode(t *testing.T) {
	spec := Census() // EffectsInOrder
	table := spec.effectTable()
	// Positional mapping: effect k = vd*nm + m.
	nm := len(spec.Measures)
	for vd := range table {
		for m := range table[vd] {
			want := 0.0
			if k := vd*nm + m; k < len(spec.Effects) {
				want = spec.Effects[k]
			}
			if table[vd][m] != want {
				t.Fatalf("in-order mapping broken at (%d,%d): %g != %g", vd, m, table[vd][m], want)
			}
		}
	}
}

func TestIntendedUtilityLookups(t *testing.T) {
	spec := Census()
	// The hand-planted star view.
	if got := spec.IntendedUtility("sex", "capital_gain"); got != 0.26 {
		t.Errorf("IntendedUtility(sex, capital_gain) = %g, want 0.26", got)
	}
	if got := spec.IntendedUtility("sex", "age"); got != 0.005 {
		t.Errorf("IntendedUtility(sex, age) = %g, want 0.005", got)
	}
	// Unknown columns → 0.
	if spec.IntendedUtility("nosuch", "age") != 0 || spec.IntendedUtility("sex", "nosuch") != 0 {
		t.Error("unknown columns should yield 0")
	}
	// Selector-excluded dims → 0 for non-census datasets.
	bank := Bank()
	if bank.IntendedUtility("housing", "age") != 0 {
		t.Error("selector dim (excluded from views) should yield 0")
	}
	// Consistency: IntendedUtility matches effectTable for a sample.
	table := bank.effectTable()
	viewDims := bank.ViewDims()
	for vd := 0; vd < len(viewDims); vd += 3 {
		for m := 0; m < len(bank.Measures); m += 2 {
			if got := bank.IntendedUtility(viewDims[vd].Name, bank.Measures[m].Name); got != table[vd][m] {
				t.Errorf("IntendedUtility(%s, %s) = %g, table says %g",
					viewDims[vd].Name, bank.Measures[m].Name, got, table[vd][m])
			}
		}
	}
}

func TestMeasuredUtilityTracksPlantedProfile(t *testing.T) {
	// End-to-end calibration check: generate bank, compute per-view
	// deviation manually, and verify rank correlation with the planted
	// intended utilities is strong for the top views.
	spec := Bank().WithRows(12000)
	// Use the distance helper through the generated data: checked more
	// cheaply in bench tests; here verify the planted top view is the
	// measured top view's neighborhood by checking the assignment exists.
	top := 0.0
	for _, d := range spec.ViewDimNames() {
		for _, m := range spec.MeasureNames() {
			if u := spec.IntendedUtility(d, m); u > top {
				top = u
			}
		}
	}
	if top != 0.36 {
		t.Errorf("bank top intended utility = %g, want 0.36", top)
	}
}

func TestZeroPaddedValueNames(t *testing.T) {
	d := Dim{Name: "job", Cardinality: 12}
	if d.Value(1) != "job_01" || d.Value(11) != "job_11" {
		t.Errorf("padded names wrong: %s, %s", d.Value(1), d.Value(11))
	}
	// Lexicographic order must equal bucket order.
	for i := 1; i < d.Cardinality; i++ {
		if !(d.Value(i-1) < d.Value(i)) {
			t.Errorf("value names out of order at %d: %s >= %s", i, d.Value(i-1), d.Value(i))
		}
	}
	big := Dim{Name: "x", Cardinality: 150}
	if big.Value(7) != "x_007" {
		t.Errorf("3-digit padding wrong: %s", big.Value(7))
	}
}
