package dataset

import (
	"fmt"
	"math/rand"

	"seedb/internal/sqldb"
)

// Generate produces the spec's rows deterministically and passes each to
// emit. Row layout matches Spec.Schema(): dimension values first (as
// strings), then measures (as floats).
func (s Spec) Generate(emit func(vals []sqldb.Value) error) error {
	if len(s.Dims) == 0 || len(s.Measures) == 0 {
		return fmt.Errorf("dataset %s: needs at least one dimension and one measure", s.Name)
	}
	if s.SelectorIdx < 0 || s.SelectorIdx >= len(s.Dims) {
		return fmt.Errorf("dataset %s: selector index %d out of range", s.Name, s.SelectorIdx)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	nd, nm := len(s.Dims), len(s.Measures)

	// Per-dimension −1..+1 bucket ramps and their unit-EMDs.
	ramps := make([][]float64, nd)
	unit := make([]float64, nd)
	for i, d := range s.Dims {
		ramps[i] = rampFor(d.Cardinality)
		unit[i] = unitEMD(ramps[i])
	}

	// Map view-space dimension index → dims index.
	viewDimIdx := make([]int, 0, nd)
	for i := range s.Dims {
		if s.SelectorInViews || i != s.SelectorIdx {
			viewDimIdx = append(viewDimIdx, i)
		}
	}

	// Calibrated measure tilts: intended utility / unit-EMD, per the
	// balanced effect assignment.
	effects := s.effectTable()
	tilt := make([][]float64, nd)
	for i := range tilt {
		tilt[i] = make([]float64, nm)
	}
	for vd, d := range viewDimIdx {
		for m := 0; m < nm; m++ {
			if u := effects[vd][m]; u != 0 && unit[d] > 0 {
				e := u / unit[d]
				if e > 0.9 {
					e = 0.9 // keep measures positive
				}
				tilt[d][m] = e
			}
		}
	}

	// Find the selector's target value index.
	sel := s.Dims[s.SelectorIdx]
	targetIdx := -1
	for v := 0; v < sel.Cardinality; v++ {
		if sel.Value(v) == s.TargetValue {
			targetIdx = v
			break
		}
	}
	if targetIdx < 0 {
		return fmt.Errorf("dataset %s: target value %q not among selector values", s.Name, s.TargetValue)
	}

	vals := make([]sqldb.Value, nd+nm)
	dimIdx := make([]int, nd)
	for r := 0; r < s.Rows; r++ {
		// Draw dimension values. The selector honors TargetFrac; other
		// dimensions are uniform.
		for i, d := range s.Dims {
			if i == s.SelectorIdx {
				if rng.Float64() < s.TargetFrac {
					dimIdx[i] = targetIdx
				} else {
					v := rng.Intn(d.Cardinality - 1)
					if v >= targetIdx {
						v++
					}
					if d.Cardinality == 1 {
						v = 0
					}
					dimIdx[i] = v
				}
			} else {
				dimIdx[i] = rng.Intn(d.Cardinality)
			}
			vals[i] = sqldb.Str(d.Value(dimIdx[i]))
		}
		// Target rows are flat; reference rows carry the tilt. This
		// matches the paper's worked example (Figure 1): the unmarried
		// (target) capital-gain split is near even while the married
		// (reference) split is skewed.
		dir := 1.0
		if dimIdx[s.SelectorIdx] == targetIdx {
			dir = 0.0
		}
		// Measures: Base·(1 + Σ_i tilt(i,j)·ramp_i(v_i)·dir) + noise.
		for j, m := range s.Measures {
			shift := 0.0
			for i := range s.Dims {
				if e := tilt[i][j]; e != 0 {
					shift += e * ramps[i][dimIdx[i]]
				}
			}
			x := m.Base*(1+shift*dir) + rng.NormFloat64()*m.Noise
			if x < 0.01*m.Base {
				x = 0.01 * m.Base
			}
			vals[nd+j] = sqldb.Float(x)
		}
		if err := emit(vals); err != nil {
			return err
		}
	}
	return nil
}

// IntendedUtility returns the planted intended utility for the view
// (dimName, measureName), resolving the same balanced effect assignment
// the generator uses. It returns 0 for unknown columns, selector-excluded
// dimensions, and views without a planted effect. The user-study harness
// uses this as the ground-truth interestingness signal.
func (s Spec) IntendedUtility(dimName, measureName string) float64 {
	mIdx := -1
	for j, m := range s.Measures {
		if m.Name == measureName {
			mIdx = j
			break
		}
	}
	if mIdx < 0 {
		return 0
	}
	vd := -1
	for i, d := range s.ViewDims() {
		if d.Name == dimName {
			vd = i
			break
		}
	}
	if vd < 0 {
		return 0
	}
	return s.effectTable()[vd][mIdx]
}

// Build generates the dataset into a new table of the given layout inside
// db, returning the table.
func Build(db *sqldb.DB, spec Spec, layout sqldb.Layout) (sqldb.Table, error) {
	t, err := db.CreateTable(spec.Name, spec.Schema(), layout)
	if err != nil {
		return nil, err
	}
	switch s := t.(type) {
	case *sqldb.RowStore:
		s.Reserve(spec.Rows)
	case *sqldb.ColStore:
		s.Reserve(spec.Rows)
	}
	if err := spec.Generate(t.AppendRow); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildDB creates a fresh single-table database containing the dataset in
// the given layout.
func BuildDB(spec Spec, layout sqldb.Layout) (*sqldb.DB, sqldb.Table, error) {
	db := sqldb.NewDB()
	t, err := Build(db, spec, layout)
	if err != nil {
		return nil, nil, err
	}
	return db, t, nil
}
