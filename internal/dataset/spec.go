// Package dataset provides deterministic generators for every dataset in
// Table 1 of the SeeDB paper, plus CSV import/export.
//
// The real datasets (BANK, DIAB, AIR, AIR10, CENSUS, HOUSING, MOVIES) are
// UCI / US-DOT data that this repository substitutes with synthetic
// equivalents (see DESIGN.md §3). Each generator reproduces the dataset's
// published shape — row count, dimension/measure counts, realistic
// cardinalities — and, crucially for the pruning experiments, plants a
// *deviation profile*: a per-view effect size controlling how strongly
// each (dimension, measure) view deviates between the target subset and
// the reference data. The profiles are shaped to match the utility
// distributions the paper describes (Figure 10): BANK has two
// well-separated top views followed by a cluster; DIAB has ten tightly
// clustered top views.
//
// The measure model: for a row with dimension values v and target flag t,
//
//	M_j = Base_j · (1 + Σ_i e(i,j)·s_i(v_i)·dir(t)) + noise
//
// where s_i ramps linearly from −1 to +1 across dimension i's buckets and
// dir(t) is 0 on target rows and 1 otherwise (the target distribution is
// flat, the reference carries the tilt, matching the paper's Figure 1
// example). In expectation, the view (A_i, M_j, AVG) then shows a
// target-vs-reference tilt proportional to e(i,j), so view utility is a
// monotone function of the planted effect.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"seedb/internal/sqldb"
)

// Dim describes one dimension (group-by) attribute.
type Dim struct {
	// Name is the column name.
	Name string
	// Cardinality is the number of distinct values.
	Cardinality int
	// Values optionally names the distinct values; when shorter than
	// Cardinality the remainder are synthesized as "<name>_<i>".
	Values []string
}

// Value returns the name of the i-th distinct value. Synthesized names
// are zero-padded so their lexicographic order matches bucket order —
// the EMD group axis sorts labels, and the planted tilt is monotone in
// bucket index.
func (d Dim) Value(i int) string {
	if i < len(d.Values) {
		return d.Values[i]
	}
	width := len(fmt.Sprintf("%d", d.Cardinality-1))
	return fmt.Sprintf("%s_%0*d", d.Name, width, i)
}

// Measure describes one measure (aggregated) attribute.
type Measure struct {
	// Name is the column name.
	Name string
	// Base is the measure's baseline mean.
	Base float64
	// Noise is the standard deviation of additive Gaussian noise.
	Noise float64
}

// Spec fully describes a generatable dataset.
type Spec struct {
	// Name is the dataset (and table) name, e.g. "bank".
	Name string
	// Description is a one-line description for Table 1.
	Description string
	// Rows is the default generated row count (test-friendly scale).
	Rows int
	// PaperRows is the row count reported in Table 1 of the paper.
	PaperRows int
	// PaperSizeMB is the on-disk size reported in Table 1.
	PaperSizeMB float64
	// Dims are the dimension attributes; Dims[SelectorIdx] also acts as
	// the target selector.
	Dims []Dim
	// Measures are the measure attributes.
	Measures []Measure
	// SelectorIdx is the index into Dims of the selector attribute.
	SelectorIdx int
	// SelectorInViews includes the selector among the view dimensions.
	// The experiment datasets exclude it: grouping by the attribute the
	// query already conditions on yields a degenerate one-group target
	// view whose utility would swamp the planted profile. Census keeps
	// it (the paper's running example groups the full attribute set).
	SelectorInViews bool
	// TargetValue is the selector value defining the target subset D_Q.
	TargetValue string
	// TargetFrac is the fraction of rows whose selector equals
	// TargetValue.
	TargetFrac float64
	// Effects holds per-view planted *intended utilities* (the EMD the
	// view should exhibit between target and complement-reference),
	// indexed by viewDimIdx*len(Measures)+measureIdx over the view-space
	// dimensions; missing entries default to 0. The generator converts
	// each intended utility into a measure tilt calibrated by the
	// dimension's exact unit-EMD, so the utility ordering matches the
	// profile regardless of dimension cardinality. Effects are assigned
	// to views through a seed-derived permutation unless EffectsInOrder
	// is set.
	Effects []float64
	// EffectsInOrder, when true, assigns Effects[k] directly to flat
	// view index k instead of permuting.
	EffectsInOrder bool
	// Seed makes generation deterministic.
	Seed int64
}

// ViewDims returns the dimensions participating in the view space (all
// dims, minus the selector unless SelectorInViews).
func (s Spec) ViewDims() []Dim {
	if s.SelectorInViews {
		return s.Dims
	}
	out := make([]Dim, 0, len(s.Dims)-1)
	for i, d := range s.Dims {
		if i != s.SelectorIdx {
			out = append(out, d)
		}
	}
	return out
}

// ViewDimNames returns the names of the view-space dimensions.
func (s Spec) ViewDimNames() []string {
	dims := s.ViewDims()
	out := make([]string, len(dims))
	for i, d := range dims {
		out[i] = d.Name
	}
	return out
}

// NumViews returns |A| × |M|, the number of candidate aggregate views for
// a single aggregate function (|A| counts view-space dimensions).
func (s Spec) NumViews() int { return len(s.ViewDims()) * len(s.Measures) }

// Selector returns the selector dimension.
func (s Spec) Selector() Dim { return s.Dims[s.SelectorIdx] }

// TargetPredicate returns the SQL predicate selecting the target subset,
// e.g. "marital = 'Unmarried'".
func (s Spec) TargetPredicate() string {
	return fmt.Sprintf("%s = '%s'", s.Selector().Name, strings.ReplaceAll(s.TargetValue, "'", "''"))
}

// Schema returns the sqldb schema: string dimensions followed by float
// measures.
func (s Spec) Schema() *sqldb.Schema {
	cols := make([]sqldb.Column, 0, len(s.Dims)+len(s.Measures))
	for _, d := range s.Dims {
		cols = append(cols, sqldb.Column{Name: d.Name, Type: sqldb.TypeString})
	}
	for _, m := range s.Measures {
		cols = append(cols, sqldb.Column{Name: m.Name, Type: sqldb.TypeFloat})
	}
	return sqldb.MustSchema(cols...)
}

// WithRows returns a copy of the spec with a different row count.
func (s Spec) WithRows(n int) Spec {
	s.Rows = n
	return s
}

// DimNames returns the dimension column names in order.
func (s Spec) DimNames() []string {
	out := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = d.Name
	}
	return out
}

// MeasureNames returns the measure column names in order.
func (s Spec) MeasureNames() []string {
	out := make([]string, len(s.Measures))
	for i, m := range s.Measures {
		out[i] = m.Name
	}
	return out
}

// Effect returns the planted intended utility for view (viewDimIdx,
// measureIdx) before assignment, where viewDimIdx indexes ViewDims().
func (s Spec) Effect(viewDimIdx, measureIdx int) float64 {
	k := viewDimIdx*len(s.Measures) + measureIdx
	if k < len(s.Effects) {
		return s.Effects[k]
	}
	return 0
}

// unitEMD computes, for a dimension with the given bucket ramp, the EMD a
// unit tilt produces between the tilted and flat distributions:
// (1/c)·Σ_j |Σ_{i≤j} ramp_i|. Dividing an intended utility by this value
// calibrates the measure tilt so planted utilities are comparable across
// cardinalities.
func unitEMD(ramp []float64) float64 {
	cum, total := 0.0, 0.0
	for _, r := range ramp {
		cum += r
		total += math.Abs(cum)
	}
	if len(ramp) == 0 {
		return 0
	}
	return total / float64(len(ramp))
}

// rampFor returns the linear −1..+1 ramp for a dimension cardinality.
func rampFor(cardinality int) []float64 {
	ramp := make([]float64, cardinality)
	if cardinality > 1 {
		for v := 0; v < cardinality; v++ {
			ramp[v] = 2*float64(v)/float64(cardinality-1) - 1
		}
	}
	return ramp
}

// effectTable assigns the spec's intended utilities to (view dimension,
// measure) pairs and returns u[viewDimIdx][measureIdx].
//
// With EffectsInOrder the list maps positionally (hand-authored specs
// like census). Otherwise a deterministic balanced assignment places the
// largest intended utilities on the dimensions with the largest unit-EMD
// (where they need the smallest measure tilt) while round-robining across
// measures to minimize each measure's total tilt load — keeping the sum
// of tilts on any one measure far from the clamp region, so measured
// utilities track intended utilities faithfully.
func (s Spec) effectTable() [][]float64 {
	viewDims := s.ViewDims()
	nvd, nm := len(viewDims), len(s.Measures)
	u := make([][]float64, nvd)
	for i := range u {
		u[i] = make([]float64, nm)
	}
	if s.EffectsInOrder {
		for vd := 0; vd < nvd; vd++ {
			for m := 0; m < nm; m++ {
				if k := vd*nm + m; k < len(s.Effects) {
					u[vd][m] = s.Effects[k]
				}
			}
		}
		return u
	}

	// Dimensions ordered by descending unit-EMD (ties: ascending index).
	unit := make([]float64, nvd)
	dimOrder := make([]int, nvd)
	for i, d := range viewDims {
		unit[i] = unitEMD(rampFor(d.Cardinality))
		dimOrder[i] = i
	}
	sort.SliceStable(dimOrder, func(a, b int) bool {
		return unit[dimOrder[a]] > unit[dimOrder[b]]
	})

	// Intended utilities, largest first.
	profile := make([]float64, nvd*nm)
	copy(profile, s.Effects)
	sort.Sort(sort.Reverse(sort.Float64Slice(profile)))

	load := make([]float64, nm) // per-measure Σ tilt
	nextDim := make([]int, nm)  // per-measure progress through dimOrder
	for _, uv := range profile {
		// Measure with the lightest tilt load and free slots.
		m := -1
		for j := 0; j < nm; j++ {
			if nextDim[j] >= nvd {
				continue
			}
			if m < 0 || load[j] < load[m] {
				m = j
			}
		}
		if m < 0 {
			break
		}
		d := dimOrder[nextDim[m]]
		nextDim[m]++
		u[d][m] = uv
		if unit[d] > 0 {
			load[m] += uv / unit[d]
		}
	}
	return u
}
