package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"seedb/internal/sqldb"
)

// This file is the production-scale half of the dataset package: where
// spec.go reproduces the paper's Table 1 datasets with planted utility
// profiles, SynthSpec describes arbitrary realistic tables — per-column
// Zipf/normal/weighted/uniform distributions, configurable
// cardinalities, correlated column groups (categorical hierarchies like
// region→state→city and numeric dependencies like revenue~quantity),
// and NULL rates — generated deterministically from a seed and streamed
// row by row, so producing millions of rows costs O(1) memory beyond
// the destination. The load harness (internal/load, cmd/seedb-loadgen)
// uses these specs to shape north-star traffic; the differential tests
// reuse them (with quantized floats) as a conformance-proven source of
// skewed data.

// Distribution names accepted by SynthColumn.Dist.
const (
	// DistUniform draws every value (or numeric point in [Min, Max])
	// with equal probability. The default when Dist is empty.
	DistUniform = "uniform"
	// DistZipf draws value ranks from a Zipf distribution with exponent
	// ZipfS (> 1; default 1.2): rank 0 is most popular. For numeric
	// columns the rank offsets Min, giving heavy-tailed counts.
	DistZipf = "zipf"
	// DistNormal draws from a Gaussian. For numeric columns: mean Mean,
	// standard deviation StdDev. For categorical columns: a Gaussian
	// over value indices centred mid-cardinality.
	DistNormal = "normal"
	// DistWeighted draws categorical values with explicit Weights
	// (normalized internally; they need not sum to 1). For bool columns
	// Weights[0] is P(true).
	DistWeighted = "weighted"
)

// SynthColumn describes one generated column. JSON tags make specs
// file-loadable for cmd/seedb-datagen -synth and cmd/seedb-loadgen
// -spec.
type SynthColumn struct {
	// Name is the column name.
	Name string `json:"name"`
	// Type is one of "string", "int", "float", "bool".
	Type string `json:"type"`
	// Dist selects the sampling distribution (default uniform).
	Dist string `json:"dist,omitempty"`

	// Cardinality is the number of distinct values for categorical
	// (string) columns without an explicit Values list. Values beyond
	// the list (or without one) are synthesized as "<name>_<i>",
	// zero-padded so lexicographic order matches index order.
	Cardinality int `json:"cardinality,omitempty"`
	// Values optionally names the distinct values of a string column.
	Values []string `json:"values,omitempty"`
	// Weights drives DistWeighted (one weight per value; normalized).
	// For bool columns, Weights[0] is P(true).
	Weights []float64 `json:"weights,omitempty"`
	// ZipfS is the Zipf exponent for DistZipf (must be > 1; default 1.2).
	ZipfS float64 `json:"zipf_s,omitempty"`

	// Min and Max bound numeric columns (inclusive). Uniform draws
	// inside them; normal and correlated draws clamp into them when
	// Max > Min.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Mean and StdDev parameterize DistNormal, and Mean doubles as the
	// intercept (and StdDev as the noise) of correlated numeric columns.
	Mean   float64 `json:"mean,omitempty"`
	StdDev float64 `json:"stddev,omitempty"`
	// Quantum, when > 0, rounds float values to its multiples. Setting
	// it to a negative power of two (0.25, 0.125) makes every partial
	// sum exactly representable, which is what lets the differential
	// tests compare sharded/parallel execution bit-for-bit.
	Quantum float64 `json:"quantum,omitempty"`

	// NullRate is the probability a value is NULL (0 ≤ rate < 1).
	NullRate float64 `json:"null_rate,omitempty"`

	// Parent names an earlier column this one correlates with.
	//
	// String column with string parent: a hierarchy level. The column's
	// cardinality is parentCardinality×Fanout and each value belongs to
	// exactly one parent value (value index = parentIndex*Fanout +
	// child draw), so region→state→city chains stay referentially
	// consistent. The child draw uses Dist over [0, Fanout).
	//
	// Numeric column with numeric parent: value = Scale·parent + Mean +
	// Gaussian noise with StdDev, then clamped/quantized — price ~
	// quantity correlations. A NULL parent contributes 0.
	Parent string `json:"parent,omitempty"`
	// Fanout is the number of child values per parent value (hierarchy
	// columns only; default 2).
	Fanout int `json:"fanout,omitempty"`
	// Scale is the linear coefficient on Parent for correlated numeric
	// columns (default 1).
	Scale float64 `json:"scale,omitempty"`
}

// categorical reports whether the column draws from a discrete value
// index space (strings).
func (c SynthColumn) categorical() bool { return c.Type == "string" }

// SynthSpec fully describes one generatable synthetic table.
type SynthSpec struct {
	// Name is the table name.
	Name string `json:"name"`
	// Rows is the row count to generate.
	Rows int `json:"rows"`
	// Seed makes generation deterministic; two generators with equal
	// specs emit identical rows.
	Seed int64 `json:"seed"`
	// Columns are generated left to right; Parent references must point
	// at earlier columns.
	Columns []SynthColumn `json:"columns"`
}

// WithRows returns a copy generating n rows.
func (s SynthSpec) WithRows(n int) SynthSpec {
	s.Rows = n
	return s
}

// WithSeed returns a copy generating from the given seed.
func (s SynthSpec) WithSeed(seed int64) SynthSpec {
	s.Seed = seed
	return s
}

// columnType maps the spec's type name to the engine's column type.
func columnType(name string) (sqldb.ColumnType, error) {
	switch strings.ToLower(name) {
	case "string":
		return sqldb.TypeString, nil
	case "int":
		return sqldb.TypeInt, nil
	case "float":
		return sqldb.TypeFloat, nil
	case "bool":
		return sqldb.TypeBool, nil
	default:
		return 0, fmt.Errorf("unknown column type %q (want string/int/float/bool)", name)
	}
}

// Schema returns the sqldb schema the spec generates.
func (s SynthSpec) Schema() (*sqldb.Schema, error) {
	cols := make([]sqldb.Column, len(s.Columns))
	for i, c := range s.Columns {
		t, err := columnType(c.Type)
		if err != nil {
			return nil, fmt.Errorf("dataset: synth column %s: %w", c.Name, err)
		}
		cols[i] = sqldb.Column{Name: c.Name, Type: t}
	}
	return sqldb.NewSchema(cols...)
}

// columnIndex resolves a column by name.
func (s SynthSpec) columnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Cardinality returns the distinct-value count of a string column
// (resolving hierarchy fan-outs), and 0 for non-string columns or
// unknown names.
func (s SynthSpec) Cardinality(name string) int {
	i := s.columnIndex(name)
	if i < 0 || !s.Columns[i].categorical() {
		return 0
	}
	return s.cardinalityAt(i)
}

// cardinalityAt resolves the value-index space of categorical column i.
func (s SynthSpec) cardinalityAt(i int) int {
	c := s.Columns[i]
	if c.Parent != "" {
		p := s.columnIndex(c.Parent)
		if p < 0 {
			return 0
		}
		fan := c.Fanout
		if fan <= 0 {
			fan = 2
		}
		return s.cardinalityAt(p) * fan
	}
	if len(c.Values) > 0 {
		return len(c.Values)
	}
	return c.Cardinality
}

// ValueName returns the name of value index i of a categorical column:
// the explicit Values entry when present, else "<name>_<i>" zero-padded
// to the column's cardinality width.
func (s SynthSpec) ValueName(col string, i int) string {
	ci := s.columnIndex(col)
	if ci < 0 {
		return ""
	}
	c := s.Columns[ci]
	if i < len(c.Values) {
		return c.Values[i]
	}
	card := s.cardinalityAt(ci)
	width := len(fmt.Sprintf("%d", card-1))
	return fmt.Sprintf("%s_%0*d", c.Name, width, i)
}

// Validate checks the spec is generatable and reports the first problem.
func (s SynthSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("dataset: synth spec needs a name")
	}
	if s.Rows < 0 {
		return fmt.Errorf("dataset: synth spec %s: negative row count %d", s.Name, s.Rows)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("dataset: synth spec %s: needs at least one column", s.Name)
	}
	seen := map[string]bool{}
	for i, c := range s.Columns {
		where := fmt.Sprintf("dataset: synth spec %s column %s", s.Name, c.Name)
		if c.Name == "" {
			return fmt.Errorf("dataset: synth spec %s: column %d has no name", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("%s: duplicate name", where)
		}
		seen[c.Name] = true
		if _, err := columnType(c.Type); err != nil {
			return fmt.Errorf("%s: %w", where, err)
		}
		switch c.Dist {
		case "", DistUniform, DistZipf, DistNormal, DistWeighted:
		default:
			return fmt.Errorf("%s: unknown dist %q", where, c.Dist)
		}
		if c.NullRate < 0 || c.NullRate >= 1 {
			return fmt.Errorf("%s: null_rate %v outside [0, 1)", where, c.NullRate)
		}
		if c.ZipfS != 0 && c.ZipfS <= 1 {
			return fmt.Errorf("%s: zipf_s must be > 1, got %v", where, c.ZipfS)
		}
		if c.Dist == DistWeighted {
			want := 1 // bool: Weights[0] = P(true)
			if c.categorical() {
				want = len(c.Values)
				if want == 0 {
					want = c.Cardinality
				}
			}
			if c.Type == "int" || c.Type == "float" {
				return fmt.Errorf("%s: weighted applies to string/bool columns", where)
			}
			if len(c.Weights) != want {
				return fmt.Errorf("%s: %d weights for %d values", where, len(c.Weights), want)
			}
			sum := 0.0
			for _, w := range c.Weights {
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return fmt.Errorf("%s: bad weight %v", where, w)
				}
				sum += w
			}
			if sum <= 0 {
				return fmt.Errorf("%s: weights sum to %v", where, sum)
			}
		}
		if c.Parent != "" {
			p := s.columnIndex(c.Parent)
			if p < 0 || p >= i {
				return fmt.Errorf("%s: parent %q must name an earlier column", where, c.Parent)
			}
			pc := s.Columns[p]
			switch {
			case c.categorical():
				if !pc.categorical() {
					return fmt.Errorf("%s: hierarchy parent %q must be a string column", where, c.Parent)
				}
				if c.Fanout < 0 {
					return fmt.Errorf("%s: negative fanout %d", where, c.Fanout)
				}
			case c.Type == "int" || c.Type == "float":
				if pc.Type != "int" && pc.Type != "float" {
					return fmt.Errorf("%s: correlated parent %q must be numeric", where, c.Parent)
				}
			default:
				return fmt.Errorf("%s: bool columns cannot correlate with %q", where, c.Parent)
			}
		}
		if c.categorical() && c.Parent == "" && len(c.Values) == 0 && c.Cardinality < 1 {
			return fmt.Errorf("%s: needs values or a positive cardinality", where)
		}
		if (c.Type == "int" || c.Type == "float") && c.Parent == "" &&
			(c.Dist == "" || c.Dist == DistUniform || c.Dist == DistZipf) && c.Max < c.Min {
			return fmt.Errorf("%s: max %v < min %v", where, c.Max, c.Min)
		}
	}
	return nil
}

// rowState carries the per-row draws dependents read: the categorical
// value index and the numeric value of every already-generated column.
type rowState struct {
	catIdx []int     // value index of categorical columns (-1 = NULL)
	num    []float64 // value of numeric columns (0 when NULL)
	isNull []bool
}

// RowGen is a pull-based deterministic row generator: Next returns the
// spec's rows one at a time in a reused buffer. It is the primitive the
// streaming builders (BuildSynth, StreamSynthCSV) and the load driver's
// ingest traffic share; it is not safe for concurrent use.
type RowGen struct {
	spec    SynthSpec
	rng     *rand.Rand
	zipfs   []*rand.Zipf // per-column, nil unless DistZipf
	cards   []int        // categorical value-space sizes
	parents []int        // resolved parent column indices (-1 = none)
	fanouts []int
	cumw    [][]float64 // weighted: cumulative normalized weights
	row     []sqldb.Value
	st      rowState
	emitted int
}

// NewRowGen validates the spec and prepares a generator. A zero seed
// falls back to the spec's Seed.
func NewRowGen(spec SynthSpec, seed int64) (*RowGen, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = spec.Seed
	}
	n := len(spec.Columns)
	g := &RowGen{
		spec:    spec,
		rng:     rand.New(rand.NewSource(seed)),
		zipfs:   make([]*rand.Zipf, n),
		cards:   make([]int, n),
		parents: make([]int, n),
		fanouts: make([]int, n),
		cumw:    make([][]float64, n),
		row:     make([]sqldb.Value, n),
		st: rowState{
			catIdx: make([]int, n),
			num:    make([]float64, n),
			isNull: make([]bool, n),
		},
	}
	for i, c := range spec.Columns {
		g.parents[i] = -1
		if c.Parent != "" {
			g.parents[i] = spec.columnIndex(c.Parent)
		}
		g.fanouts[i] = c.Fanout
		if g.fanouts[i] <= 0 {
			g.fanouts[i] = 2
		}
		if c.categorical() {
			g.cards[i] = spec.cardinalityAt(i)
		}
		// The discrete space Zipf ranks span: child slots for hierarchy
		// levels, the value space for flat categoricals, the [Min, Max]
		// span for ints.
		space := 0
		switch {
		case c.categorical() && c.Parent != "":
			space = g.fanouts[i]
		case c.categorical():
			space = g.cards[i]
		case c.Type == "int" && c.Parent == "":
			space = int(c.Max-c.Min) + 1
		}
		if c.Dist == DistZipf && space > 0 {
			zs := c.ZipfS
			if zs == 0 {
				zs = 1.2
			}
			// rand.Zipf draws from [0, imax]; imax 0 is a single value.
			g.zipfs[i] = rand.NewZipf(g.rng, zs, 1, uint64(space-1))
		}
		if c.Dist == DistWeighted && len(c.Weights) > 0 {
			sum := 0.0
			for _, w := range c.Weights {
				sum += w
			}
			cum := make([]float64, len(c.Weights))
			acc := 0.0
			for j, w := range c.Weights {
				acc += w / sum
				cum[j] = acc
			}
			cum[len(cum)-1] = 1 // absorb rounding
			g.cumw[i] = cum
		}
	}
	return g, nil
}

// Emitted returns how many rows Next has produced.
func (g *RowGen) Emitted() int { return g.emitted }

// drawIndex samples a value index in [0, space) under the column's
// distribution.
func (g *RowGen) drawIndex(i, space int) int {
	if space <= 1 {
		return 0
	}
	c := g.spec.Columns[i]
	switch c.Dist {
	case DistZipf:
		if z := g.zipfs[i]; z != nil {
			return int(z.Uint64())
		}
		return g.rng.Intn(space)
	case DistNormal:
		// Gaussian over indices centred mid-space; σ = space/6 puts
		// ±3σ at the edges.
		mu, sigma := float64(space-1)/2, float64(space)/6
		v := int(math.Round(g.rng.NormFloat64()*sigma + mu))
		if v < 0 {
			v = 0
		}
		if v >= space {
			v = space - 1
		}
		return v
	case DistWeighted:
		u := g.rng.Float64()
		for j, cw := range g.cumw[i] {
			if u <= cw {
				return j
			}
		}
		return space - 1
	default:
		return g.rng.Intn(space)
	}
}

// drawNumeric samples a float under the column's distribution and
// correlation, before clamping/quantization.
func (g *RowGen) drawNumeric(i int) float64 {
	c := g.spec.Columns[i]
	if p := g.parents[i]; p >= 0 {
		scale := c.Scale
		if scale == 0 {
			scale = 1
		}
		return scale*g.st.num[p] + c.Mean + g.rng.NormFloat64()*c.StdDev
	}
	switch c.Dist {
	case DistNormal:
		return g.rng.NormFloat64()*c.StdDev + c.Mean
	case DistZipf:
		if c.Type == "int" {
			if z := g.zipfs[i]; z != nil {
				return c.Min + float64(z.Uint64())
			}
		}
		// Float Zipf: inverse-power transform of a uniform draw over
		// [Min, Max] — heavy mass near Min.
		zs := c.ZipfS
		if zs == 0 {
			zs = 1.2
		}
		u := g.rng.Float64()
		frac := math.Pow(u, zs)
		return c.Min + frac*(c.Max-c.Min)
	default:
		if c.Type == "int" {
			return c.Min + float64(g.rng.Intn(int(c.Max-c.Min)+1))
		}
		return c.Min + g.rng.Float64()*(c.Max-c.Min)
	}
}

// finishNumeric clamps into [Min, Max] (when Max > Min) and quantizes.
func finishNumeric(c SynthColumn, v float64) float64 {
	if c.Max > c.Min {
		if v < c.Min {
			v = c.Min
		}
		if v > c.Max {
			v = c.Max
		}
	}
	if c.Quantum > 0 {
		v = math.Round(v/c.Quantum) * c.Quantum
	}
	return v
}

// Next generates one row. The returned slice is reused by the following
// call; consumers that retain rows must copy. Every column consumes its
// random draws in a fixed order, so generation is deterministic
// regardless of how values are consumed.
func (g *RowGen) Next() []sqldb.Value {
	for i, c := range g.spec.Columns {
		// The value is drawn whether or not the cell prints NULL, so
		// every column consumes a fixed draw pattern and dependents
		// always have a hidden parent value to correlate with.
		isNull := c.NullRate > 0 && g.rng.Float64() < c.NullRate
		g.st.isNull[i] = false
		switch {
		case c.categorical():
			var idx int
			if p := g.parents[i]; p >= 0 {
				fan := g.fanouts[i]
				pidx := g.st.catIdx[p]
				if pidx < 0 {
					pidx = 0 // NULL parent: attach to its first value
				}
				idx = pidx*fan + g.drawIndex(i, fan)
			} else {
				idx = g.drawIndex(i, g.cards[i])
			}
			// Keep the drawn index even when the cell prints NULL: a
			// child level stays inside the subtree of the value its
			// parent actually drew, so hierarchy shape is independent
			// of NULL placement.
			g.st.catIdx[i] = idx
			if isNull {
				g.st.isNull[i] = true
				g.row[i] = sqldb.Null()
			} else {
				g.row[i] = sqldb.Str(g.spec.ValueName(c.Name, idx))
			}
		case c.Type == "bool":
			pTrue := 0.5
			if c.Dist == DistWeighted && len(c.Weights) > 0 {
				pTrue = c.Weights[0]
			}
			v := g.rng.Float64() < pTrue
			if isNull {
				g.st.isNull[i] = true
				g.row[i] = sqldb.Null()
			} else {
				g.row[i] = sqldb.Bool(v)
			}
		default: // int, float
			v := finishNumeric(c, g.drawNumeric(i))
			g.st.num[i] = v // kept even when NULL, as with catIdx above
			if isNull {
				g.st.isNull[i] = true
				g.row[i] = sqldb.Null()
			} else if c.Type == "int" {
				g.row[i] = sqldb.Int(int64(math.Round(v)))
			} else {
				g.row[i] = sqldb.Float(v)
			}
		}
	}
	g.emitted++
	return g.row
}

// Generate streams the spec's rows to emit in order. The slice passed
// to emit is reused between calls. Memory stays O(1) in the row count.
func (s SynthSpec) Generate(emit func(vals []sqldb.Value) error) error {
	g, err := NewRowGen(s, 0)
	if err != nil {
		return err
	}
	for r := 0; r < s.Rows; r++ {
		if err := emit(g.Next()); err != nil {
			return err
		}
	}
	return nil
}

// synthBatch is how many rows the streaming builders buffer between
// flushes; generation memory is O(synthBatch), never O(rows).
const synthBatch = 4096

// BuildSynth generates the spec into a new table inside db.
func BuildSynth(db *sqldb.DB, spec SynthSpec, layout sqldb.Layout) (sqldb.Table, error) {
	schema, err := spec.Schema()
	if err != nil {
		return nil, err
	}
	t, err := db.CreateTable(spec.Name, schema, layout)
	if err != nil {
		return nil, err
	}
	switch s := t.(type) {
	case *sqldb.RowStore:
		s.Reserve(spec.Rows)
	case *sqldb.ColStore:
		s.Reserve(spec.Rows)
	}
	if err := spec.Generate(t.AppendRow); err != nil {
		return nil, err
	}
	return t, nil
}

// StreamSynthCSV writes the spec as CSV (header + rows) without ever
// materializing the table: rows stream from the generator straight into
// the encoder, flushed every synthBatch rows.
func (s SynthSpec) StreamSynthCSV(w io.Writer) error {
	schema, err := s.Schema()
	if err != nil {
		return err
	}
	return streamCSV(w, schema, s.Rows, s.Generate)
}

// WriteSynthSpec encodes a spec as indented JSON, ParseSynthSpec's
// inverse.
func WriteSynthSpec(w io.Writer, spec SynthSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// ParseSynthSpec reads a SynthSpec from JSON.
func ParseSynthSpec(r io.Reader) (SynthSpec, error) {
	var spec SynthSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return SynthSpec{}, fmt.Errorf("dataset: parsing synth spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return SynthSpec{}, err
	}
	return spec, nil
}

// TrafficSpec is the built-in load-harness table: a sales-traffic fact
// table with a region→state→city hierarchy, Zipf-skewed device and
// session columns, weighted plan tiers, a revenue~quantity correlation
// and sprinkled NULLs. cmd/seedb-loadgen and the bench load experiment
// default to it; its string columns are the recommend dimensions and
// its float columns the measures.
func TrafficSpec() SynthSpec {
	return SynthSpec{
		Name: "traffic",
		Rows: 100_000,
		Seed: 42,
		Columns: []SynthColumn{
			{Name: "region", Type: "string", Dist: DistWeighted,
				Values:  []string{"na", "emea", "apac", "latam"},
				Weights: []float64{0.4, 0.3, 0.2, 0.1}},
			{Name: "state", Type: "string", Parent: "region", Fanout: 6, Dist: DistZipf, ZipfS: 1.3},
			{Name: "city", Type: "string", Parent: "state", Fanout: 8, Dist: DistUniform, NullRate: 0.01},
			{Name: "device", Type: "string", Dist: DistZipf, Cardinality: 12, ZipfS: 1.4},
			{Name: "plan", Type: "string", Dist: DistWeighted,
				Values:  []string{"free", "pro", "team", "enterprise"},
				Weights: []float64{0.70, 0.20, 0.07, 0.03}},
			{Name: "active", Type: "bool", Dist: DistWeighted, Weights: []float64{0.85}, NullRate: 0.02},
			{Name: "sessions", Type: "int", Dist: DistZipf, Min: 1, Max: 500, ZipfS: 1.25},
			{Name: "quantity", Type: "int", Dist: DistUniform, Min: 1, Max: 50, NullRate: 0.02},
			{Name: "price", Type: "float", Dist: DistNormal, Mean: 25, StdDev: 6, Min: 0.5, Max: 100, Quantum: 0.01},
			{Name: "revenue", Type: "float", Parent: "quantity", Scale: 23.5, StdDev: 30, Min: 0, Max: 2500, Quantum: 0.01},
			{Name: "score", Type: "float", Dist: DistUniform, Min: 0, Max: 1, NullRate: 0.05},
		},
	}
}
