package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"seedb/internal/sqldb"
)

// sampleColumn generates n rows of a single-purpose spec and returns the
// emitted values of the named column (copies, since rows are reused).
func sampleColumn(t *testing.T, spec SynthSpec, col string, n int) []sqldb.Value {
	t.Helper()
	spec.Rows = n
	idx := spec.columnIndex(col)
	if idx < 0 {
		t.Fatalf("column %s not in spec", col)
	}
	var out []sqldb.Value
	if err := spec.Generate(func(vals []sqldb.Value) error {
		out = append(out, vals[idx])
		return nil
	}); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return out
}

func TestSynthValidateRejectsBadSpecs(t *testing.T) {
	col := func(c SynthColumn) SynthSpec {
		return SynthSpec{Name: "t", Rows: 1, Seed: 1, Columns: []SynthColumn{c}}
	}
	cases := []struct {
		name string
		spec SynthSpec
		want string
	}{
		{"no name", SynthSpec{Rows: 1, Columns: []SynthColumn{{Name: "a", Type: "int"}}}, "needs a name"},
		{"no columns", SynthSpec{Name: "t", Rows: 1}, "at least one column"},
		{"bad type", col(SynthColumn{Name: "a", Type: "decimal"}), "unknown column type"},
		{"bad dist", col(SynthColumn{Name: "a", Type: "int", Dist: "pareto"}), "unknown dist"},
		{"null rate 1", col(SynthColumn{Name: "a", Type: "int", NullRate: 1}), "null_rate"},
		{"zipf s too small", col(SynthColumn{Name: "a", Type: "string", Cardinality: 3, Dist: DistZipf, ZipfS: 0.5}), "zipf_s"},
		{"weighted int", col(SynthColumn{Name: "a", Type: "int", Dist: DistWeighted, Weights: []float64{1}}), "weighted applies"},
		{"weight count mismatch", col(SynthColumn{
			Name: "a", Type: "string", Values: []string{"x", "y"},
			Dist: DistWeighted, Weights: []float64{1},
		}), "1 weights for 2 values"},
		{"negative weight", col(SynthColumn{
			Name: "a", Type: "string", Values: []string{"x", "y"},
			Dist: DistWeighted, Weights: []float64{1, -1},
		}), "bad weight"},
		{"zero weight sum", col(SynthColumn{
			Name: "a", Type: "string", Values: []string{"x", "y"},
			Dist: DistWeighted, Weights: []float64{0, 0},
		}), "weights sum"},
		{"no cardinality", col(SynthColumn{Name: "a", Type: "string"}), "positive cardinality"},
		{"max below min", col(SynthColumn{Name: "a", Type: "int", Min: 5, Max: 1}), "max"},
		{"unknown parent", col(SynthColumn{Name: "a", Type: "string", Cardinality: 2, Parent: "ghost"}), "earlier column"},
		{"forward parent", SynthSpec{Name: "t", Rows: 1, Columns: []SynthColumn{
			{Name: "a", Type: "string", Cardinality: 2, Parent: "b"},
			{Name: "b", Type: "string", Cardinality: 2},
		}}, "earlier column"},
		{"numeric parent of string", SynthSpec{Name: "t", Rows: 1, Columns: []SynthColumn{
			{Name: "a", Type: "int", Max: 3},
			{Name: "b", Type: "string", Cardinality: 2, Parent: "a"},
		}}, "must be a string column"},
		{"string parent of float", SynthSpec{Name: "t", Rows: 1, Columns: []SynthColumn{
			{Name: "a", Type: "string", Cardinality: 2},
			{Name: "b", Type: "float", Parent: "a"},
		}}, "must be numeric"},
		{"bool parent", SynthSpec{Name: "t", Rows: 1, Columns: []SynthColumn{
			{Name: "a", Type: "int", Max: 3},
			{Name: "b", Type: "bool", Parent: "a"},
		}}, "bool columns cannot"},
		{"duplicate column", SynthSpec{Name: "t", Rows: 1, Columns: []SynthColumn{
			{Name: "a", Type: "int", Max: 3},
			{Name: "a", Type: "int", Max: 3},
		}}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatalf("Validate accepted bad spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := TrafficSpec().Validate(); err != nil {
		t.Fatalf("TrafficSpec invalid: %v", err)
	}
}

func TestSynthZipfSkewAndBounds(t *testing.T) {
	const n = 20_000
	cases := []struct {
		name string
		col  SynthColumn
		card int
	}{
		{"string zipf", SynthColumn{Name: "c", Type: "string", Dist: DistZipf, Cardinality: 10, ZipfS: 1.3}, 10},
		{"int zipf", SynthColumn{Name: "c", Type: "int", Dist: DistZipf, Min: 1, Max: 10, ZipfS: 1.3}, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := SynthSpec{Name: "t", Seed: 7, Columns: []SynthColumn{tc.col}}
			vals := sampleColumn(t, spec, "c", n)
			counts := map[string]int{}
			for _, v := range vals {
				if v.IsNull() {
					t.Fatal("unexpected NULL")
				}
				counts[v.String()]++
				// Bounds: value must be inside the declared space.
				if tc.col.Type == "int" && (v.I < 1 || v.I > 10) {
					t.Fatalf("int zipf out of [1,10]: %d", v.I)
				}
			}
			if len(counts) > tc.card {
				t.Fatalf("zipf emitted %d distinct values, cardinality %d", len(counts), tc.card)
			}
			// Rank 0 must dominate: the most popular value should hold a
			// clear majority share for s=1.3 over 10 values.
			top := spec.ValueName("c", 0)
			if tc.col.Type == "int" {
				top = "1"
			}
			if share := float64(counts[top]) / n; share < 0.4 {
				t.Fatalf("zipf rank-0 share %.3f, want ≥ 0.4 (counts %v)", share, counts)
			}
		})
	}
}

func TestSynthWeightedProportions(t *testing.T) {
	const n = 40_000
	// Weights deliberately not normalized: 6/3/1.
	spec := SynthSpec{Name: "t", Seed: 11, Columns: []SynthColumn{{
		Name: "c", Type: "string",
		Values:  []string{"a", "b", "c"},
		Weights: []float64{6, 3, 1},
		Dist:    DistWeighted,
	}}}
	counts := map[string]int{}
	for _, v := range sampleColumn(t, spec, "c", n) {
		counts[v.String()]++
	}
	want := map[string]float64{"a": 0.6, "b": 0.3, "c": 0.1}
	total := 0
	for val, p := range want {
		got := float64(counts[val]) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("value %s share %.3f, want %.2f ± 0.02", val, got, p)
		}
		total += counts[val]
	}
	if total != n {
		t.Fatalf("emitted unexpected values: %v", counts)
	}
}

func TestSynthWeightedBool(t *testing.T) {
	const n = 20_000
	spec := SynthSpec{Name: "t", Seed: 3, Columns: []SynthColumn{{
		Name: "c", Type: "bool", Dist: DistWeighted, Weights: []float64{0.85},
	}}}
	trues := 0
	for _, v := range sampleColumn(t, spec, "c", n) {
		if v.I != 0 {
			trues++
		}
	}
	if got := float64(trues) / n; math.Abs(got-0.85) > 0.02 {
		t.Fatalf("P(true) %.3f, want 0.85 ± 0.02", got)
	}
}

func TestSynthNormalDistribution(t *testing.T) {
	const n = 20_000
	spec := SynthSpec{Name: "t", Seed: 5, Columns: []SynthColumn{{
		Name: "c", Type: "float", Dist: DistNormal, Mean: 50, StdDev: 10, Min: 0, Max: 100,
	}}}
	sum, sumSq := 0.0, 0.0
	for _, v := range sampleColumn(t, spec, "c", n) {
		if v.F < 0 || v.F > 100 {
			t.Fatalf("normal draw escaped clamp: %v", v.F)
		}
		sum += v.F
		sumSq += v.F * v.F
	}
	mean := sum / n
	stddev := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-50) > 0.5 {
		t.Errorf("mean %.2f, want 50 ± 0.5", mean)
	}
	if math.Abs(stddev-10) > 0.5 {
		t.Errorf("stddev %.2f, want 10 ± 0.5", stddev)
	}
}

func TestSynthHierarchyReferentialConsistency(t *testing.T) {
	// region (4) → state (fanout 6 = 24) → city (fanout 8 = 192): every
	// non-NULL child value must sit inside its parent's subtree on the
	// SAME ROW — value index = parentIndex*Fanout + child slot.
	spec := SynthSpec{Name: "t", Rows: 5_000, Seed: 13, Columns: []SynthColumn{
		{Name: "region", Type: "string", Values: []string{"na", "emea", "apac", "latam"},
			Dist: DistWeighted, Weights: []float64{4, 3, 2, 1}},
		{Name: "state", Type: "string", Parent: "region", Fanout: 6, Dist: DistZipf, ZipfS: 1.3},
		{Name: "city", Type: "string", Parent: "state", Fanout: 8, NullRate: 0.05},
	}}
	if got := spec.Cardinality("state"); got != 24 {
		t.Fatalf("state cardinality %d, want 24", got)
	}
	if got := spec.Cardinality("city"); got != 192 {
		t.Fatalf("city cardinality %d, want 192", got)
	}

	// Invert ValueName so emitted strings map back to indices.
	stateIdx := map[string]int{}
	for i := 0; i < 24; i++ {
		stateIdx[spec.ValueName("state", i)] = i
	}
	cityIdx := map[string]int{}
	for i := 0; i < 192; i++ {
		cityIdx[spec.ValueName("city", i)] = i
	}
	regionIdx := map[string]int{"na": 0, "emea": 1, "apac": 2, "latam": 3}

	checked := 0
	err := spec.Generate(func(vals []sqldb.Value) error {
		region, state, city := vals[0], vals[1], vals[2]
		if !region.IsNull() && !state.IsNull() {
			si, ok := stateIdx[state.S]
			if !ok {
				t.Fatalf("unknown state %q", state.S)
			}
			if si/6 != regionIdx[region.S] {
				t.Fatalf("state %q (idx %d) outside region %q", state.S, si, region.S)
			}
			checked++
		}
		if !state.IsNull() && !city.IsNull() {
			ci, ok := cityIdx[city.S]
			if !ok {
				t.Fatalf("unknown city %q", city.S)
			}
			if ci/8 != stateIdx[state.S] {
				t.Fatalf("city %q (idx %d) outside state %q", city.S, ci, state.S)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if checked < 4_000 {
		t.Fatalf("only %d rows checked", checked)
	}
}

func TestSynthNumericCorrelation(t *testing.T) {
	// revenue = 20·quantity + noise: the Pearson correlation over
	// non-NULL pairs must be strong, and never NaN/Inf.
	const n = 10_000
	spec := SynthSpec{Name: "t", Seed: 17, Columns: []SynthColumn{
		{Name: "quantity", Type: "int", Min: 1, Max: 50, NullRate: 0.05},
		{Name: "revenue", Type: "float", Parent: "quantity", Scale: 20, StdDev: 25, Min: 0, Max: 2000, Quantum: 0.01},
	}}
	spec.Rows = n
	var qs, rs []float64
	err := spec.Generate(func(vals []sqldb.Value) error {
		if vals[0].IsNull() || vals[1].IsNull() {
			return nil
		}
		qs = append(qs, float64(vals[0].I))
		rs = append(rs, vals[1].F)
		return nil
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var sq, sr, sqq, srr, sqr float64
	m := float64(len(qs))
	for i := range qs {
		sq += qs[i]
		sr += rs[i]
		sqq += qs[i] * qs[i]
		srr += rs[i] * rs[i]
		sqr += qs[i] * rs[i]
	}
	corr := (m*sqr - sq*sr) / math.Sqrt((m*sqq-sq*sq)*(m*srr-sr*sr))
	if math.IsNaN(corr) || corr < 0.9 {
		t.Fatalf("quantity~revenue correlation %.3f, want ≥ 0.9", corr)
	}
}

func TestSynthNullRateTolerance(t *testing.T) {
	const n = 20_000
	cases := []struct {
		name string
		col  SynthColumn
		rate float64
	}{
		{"string", SynthColumn{Name: "c", Type: "string", Cardinality: 5, NullRate: 0.15}, 0.15},
		{"float", SynthColumn{Name: "c", Type: "float", Min: 0, Max: 1, NullRate: 0.30}, 0.30},
		{"bool", SynthColumn{Name: "c", Type: "bool", NullRate: 0.08}, 0.08},
		{"none", SynthColumn{Name: "c", Type: "int", Min: 0, Max: 9}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := SynthSpec{Name: "t", Seed: 23, Columns: []SynthColumn{tc.col}}
			nulls := 0
			for _, v := range sampleColumn(t, spec, "c", n) {
				if v.IsNull() {
					nulls++
				}
			}
			got := float64(nulls) / n
			if math.Abs(got-tc.rate) > 0.01 {
				t.Fatalf("null rate %.4f, want %.2f ± 0.01", got, tc.rate)
			}
		})
	}
}

func TestSynthQuantumMakesExactSums(t *testing.T) {
	// Quantum 0.25 with |v| ≤ 500: every value and every partial sum is
	// exactly representable, so summation order cannot change the total.
	const n = 5_000
	spec := SynthSpec{Name: "t", Seed: 29, Columns: []SynthColumn{{
		Name: "c", Type: "float", Dist: DistNormal, Mean: 0, StdDev: 100,
		Min: -500, Max: 500, Quantum: 0.25,
	}}}
	for _, v := range sampleColumn(t, spec, "c", n) {
		if q := v.F / 0.25; q != math.Trunc(q) {
			t.Fatalf("value %v not a multiple of 0.25", v.F)
		}
		if v.F < -500 || v.F > 500 {
			t.Fatalf("value %v outside ±500", v.F)
		}
	}
}

func TestSynthDeterministicAcrossGenerators(t *testing.T) {
	spec := TrafficSpec().WithRows(2_000)
	var a, b bytes.Buffer
	if err := spec.StreamSynthCSV(&a); err != nil {
		t.Fatalf("first stream: %v", err)
	}
	if err := spec.StreamSynthCSV(&b); err != nil {
		t.Fatalf("second stream: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same spec+seed produced different CSV bytes")
	}
	// A different seed must actually change the data.
	var c bytes.Buffer
	if err := spec.WithSeed(99).StreamSynthCSV(&c); err != nil {
		t.Fatalf("reseeded stream: %v", err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical CSV bytes")
	}
}

func TestSynthBuildMatchesStreamedCSV(t *testing.T) {
	// Building into the engine and streaming to CSV must describe the
	// same rows: load the streamed CSV back and dump both tables.
	spec := TrafficSpec().WithRows(500)
	db := sqldb.NewDB()
	built, err := BuildSynth(db, spec, sqldb.LayoutCol)
	if err != nil {
		t.Fatalf("BuildSynth: %v", err)
	}
	if built.NumRows() != 500 {
		t.Fatalf("built %d rows, want 500", built.NumRows())
	}
	var streamed bytes.Buffer
	if err := spec.StreamSynthCSV(&streamed); err != nil {
		t.Fatalf("StreamSynthCSV: %v", err)
	}
	schema, err := spec.Schema()
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	db2 := sqldb.NewDB()
	loaded, err := LoadCSV(db2, "copy", schema, sqldb.LayoutCol, &streamed)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	var dumpBuilt, dumpLoaded bytes.Buffer
	if err := WriteCSV(&dumpBuilt, built); err != nil {
		t.Fatalf("WriteCSV built: %v", err)
	}
	if err := WriteCSV(&dumpLoaded, loaded); err != nil {
		t.Fatalf("WriteCSV loaded: %v", err)
	}
	gotB, gotL := dumpBuilt.String(), dumpLoaded.String()
	// The loaded copy has a different table name but identical contents.
	if gotB != strings.Replace(gotL, "copy", spec.Name, 1) && gotB != gotL {
		t.Fatal("engine-built and CSV-round-tripped rows differ")
	}
}

func TestSynthSpecJSONRoundTrip(t *testing.T) {
	orig := TrafficSpec()
	var buf bytes.Buffer
	if err := WriteSynthSpec(&buf, orig); err != nil {
		t.Fatalf("encode: %v", err)
	}
	parsed, err := ParseSynthSpec(&buf)
	if err != nil {
		t.Fatalf("ParseSynthSpec: %v", err)
	}
	var a, b bytes.Buffer
	if err := orig.WithRows(300).StreamSynthCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := parsed.WithRows(300).StreamSynthCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSON round-trip changed generated data")
	}
	if _, err := ParseSynthSpec(strings.NewReader(`{"name":"x","rows":1,"columns":[{"name":"a","type":"blob"}]}`)); err == nil {
		t.Fatal("ParseSynthSpec accepted a bad spec")
	}
}
