// Package distance implements the distance functions SeeDB uses to score
// the deviation between a target-view distribution and a reference-view
// distribution (Section 2 of the paper): Earth Mover's Distance (the
// paper's default), Euclidean distance, Kullback–Leibler divergence,
// Jensen–Shannon distance, and MAX_DIFF.
//
// All functions operate on aligned probability vectors: two slices of the
// same length whose entries are the probabilities of the same group in
// the target and reference distributions. Use Normalize to turn raw
// aggregate summaries into probability distributions, and Align to place
// two group→value maps onto a shared group order.
//
// Every function in this package is a consistent distance function in the
// paper's sense (Property 4.1): it is continuous in its arguments, so as
// partial results converge to the true distributions the estimated
// utility converges to the true utility.
package distance

import (
	"fmt"
	"math"
	"sort"
)

// Func identifies a distance function.
type Func int

// Supported distance functions.
const (
	// EMD is the Earth Mover's Distance between 1-D distributions laid
	// out on the group axis (ordinal ground distance with unit spacing,
	// the standard 1-D EMD). This is SeeDB's default utility distance.
	EMD Func = iota
	// Euclidean is the L2 distance between probability vectors.
	Euclidean
	// KL is the (smoothed) Kullback–Leibler divergence D(P‖Q).
	KL
	// JS is the Jensen–Shannon distance (square root of JS divergence),
	// a true metric bounded by sqrt(ln 2).
	JS
	// MaxDiff is the maximum absolute per-group difference (L∞). The
	// paper's technical report uses it as an alternative ranking metric.
	MaxDiff
)

// String returns the canonical name of the function.
func (f Func) String() string {
	switch f {
	case EMD:
		return "EMD"
	case Euclidean:
		return "EUCLIDEAN"
	case KL:
		return "KL"
	case JS:
		return "JS"
	case MaxDiff:
		return "MAX_DIFF"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// ParseFunc resolves a distance-function name (case-sensitive, canonical
// names as returned by String).
func ParseFunc(name string) (Func, error) {
	switch name {
	case "EMD":
		return EMD, nil
	case "EUCLIDEAN", "L2":
		return Euclidean, nil
	case "KL":
		return KL, nil
	case "JS":
		return JS, nil
	case "MAX_DIFF", "MAXDIFF":
		return MaxDiff, nil
	default:
		return 0, fmt.Errorf("distance: unknown function %q", name)
	}
}

// Funcs lists every supported distance function, in a stable order.
func Funcs() []Func { return []Func{EMD, Euclidean, KL, JS, MaxDiff} }

// klEpsilon smooths zero probabilities for KL (which is otherwise
// unbounded); the smoothed divergence remains consistent.
const klEpsilon = 1e-9

// Distance computes f between aligned probability vectors p and q.
// Vectors must have equal length; empty vectors have distance 0.
func Distance(f Func, p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("distance: mismatched lengths %d vs %d", len(p), len(q)))
	}
	switch f {
	case EMD:
		return emd1D(p, q)
	case Euclidean:
		return euclidean(p, q)
	case KL:
		return kl(p, q)
	case JS:
		return js(p, q)
	case MaxDiff:
		return maxDiff(p, q)
	default:
		panic(fmt.Sprintf("distance: unknown function %v", f))
	}
}

// emd1D computes the 1-D Earth Mover's Distance with unit ground distance
// between adjacent positions: EMD = Σ_i |CDF_p(i) − CDF_q(i)|.
func emd1D(p, q []float64) float64 {
	var cum, total float64
	for i := range p {
		cum += p[i] - q[i]
		total += math.Abs(cum)
	}
	return total
}

// euclidean computes the L2 distance.
func euclidean(p, q []float64) float64 {
	var sum float64
	for i := range p {
		d := p[i] - q[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// kl computes the smoothed KL divergence D(p ‖ q).
func kl(p, q []float64) float64 {
	var sum float64
	for i := range p {
		pi := p[i] + klEpsilon
		qi := q[i] + klEpsilon
		sum += pi * math.Log(pi/qi)
	}
	if sum < 0 {
		// Numerical noise from smoothing can produce a tiny negative.
		return 0
	}
	return sum
}

// js computes the Jensen–Shannon distance: sqrt(JSD) where
// JSD = ½ D(p‖m) + ½ D(q‖m), m = (p+q)/2.
func js(p, q []float64) float64 {
	var sum float64
	for i := range p {
		pi, qi := p[i], q[i]
		m := (pi + qi) / 2
		if pi > 0 && m > 0 {
			sum += 0.5 * pi * math.Log(pi/m)
		}
		if qi > 0 && m > 0 {
			sum += 0.5 * qi * math.Log(qi/m)
		}
	}
	if sum < 0 {
		return 0
	}
	return math.Sqrt(sum)
}

// maxDiff computes the L∞ distance.
func maxDiff(p, q []float64) float64 {
	var m float64
	for i := range p {
		if d := math.Abs(p[i] - q[i]); d > m {
			m = d
		}
	}
	return m
}

// MaxValue returns an upper bound on Distance(f, p, q) over probability
// vectors, used to scale utilities into [0, 1] for the Hoeffding-based
// pruning bounds.
func MaxValue(f Func, groups int) float64 {
	switch f {
	case EMD:
		if groups < 2 {
			return 1
		}
		return float64(groups - 1) // all mass moved end to end
	case Euclidean:
		return math.Sqrt2
	case KL:
		// Smoothed KL is bounded by log(1/ε) on probability vectors.
		return math.Log(1 / klEpsilon)
	case JS:
		return math.Sqrt(math.Ln2)
	case MaxDiff:
		return 1
	default:
		return 1
	}
}

// Normalize scales a non-negative vector into a probability distribution
// (entries sum to 1). Negative entries are clamped to zero (aggregates
// such as SUM over negative measures are shifted by the caller if
// relevant; SeeDB normalizes magnitudes). A zero vector normalizes to the
// uniform distribution so that comparisons remain well-defined.
func Normalize(v []float64) []float64 {
	out := make([]float64, len(v))
	var sum, maxv float64
	for i, x := range v {
		if x < 0 || math.IsNaN(x) {
			x = 0
		}
		if math.IsInf(x, 1) {
			x = math.MaxFloat64
		}
		out[i] = x
		sum += x
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(sum, 1) {
		// Rescale by the maximum to avoid overflow, then re-sum.
		sum = 0
		for i := range out {
			out[i] /= maxv
			sum += out[i]
		}
	}
	if sum == 0 {
		if len(out) == 0 {
			return out
		}
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Align places two group→value maps onto a shared group axis (the sorted
// union of keys; missing groups contribute 0) and returns the aligned raw
// vectors together with the group order.
func Align(target, reference map[string]float64) (groups []string, t, r []float64) {
	seen := make(map[string]bool, len(target)+len(reference))
	for g := range target {
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	for g := range reference {
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	sort.Strings(groups)
	t = make([]float64, len(groups))
	r = make([]float64, len(groups))
	for i, g := range groups {
		t[i] = target[g]
		r[i] = reference[g]
	}
	return groups, t, r
}

// Deviation is the full SeeDB utility computation for one view: align the
// two group→aggregate maps, normalize each side into a probability
// distribution, and return their distance under f.
func Deviation(f Func, target, reference map[string]float64) float64 {
	_, t, r := Align(target, reference)
	return Distance(f, Normalize(t), Normalize(r))
}
