package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDist draws a random probability vector of length n.
func randomDist(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return Normalize(v)
}

func TestPaperExampleCapitalGain(t *testing.T) {
	// Section 2's worked example: capital-gain-by-sex distributions for
	// unmarried (0.52, 0.48) vs married (0.31, 0.69) show large
	// deviation; age-by-sex (0.5, 0.5) vs (0.51, 0.49) shows almost none.
	gain := Distance(EMD, []float64{0.52, 0.48}, []float64{0.31, 0.69})
	age := Distance(EMD, []float64{0.5, 0.5}, []float64{0.51, 0.49})
	if gain <= age {
		t.Errorf("capital-gain EMD (%f) must exceed age EMD (%f)", gain, age)
	}
	if math.Abs(gain-0.21) > 1e-9 {
		t.Errorf("capital-gain EMD = %f, want 0.21", gain)
	}
	if math.Abs(age-0.01) > 1e-9 {
		t.Errorf("age EMD = %f, want 0.01", age)
	}
}

func TestIdentityProperty(t *testing.T) {
	// d(p, p) = 0 for every function.
	rng := rand.New(rand.NewSource(1))
	for _, f := range Funcs() {
		for trial := 0; trial < 50; trial++ {
			p := randomDist(rng, 1+rng.Intn(20))
			if d := Distance(f, p, p); d > 1e-9 {
				t.Errorf("%v: d(p,p) = %g, want 0", f, d)
			}
		}
	}
}

func TestNonNegativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, f := range Funcs() {
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(20)
			p, q := randomDist(rng, n), randomDist(rng, n)
			if d := Distance(f, p, q); d < 0 {
				t.Errorf("%v: d = %g < 0", f, d)
			}
		}
	}
}

func TestSymmetryProperty(t *testing.T) {
	// All supported functions except KL are symmetric.
	rng := rand.New(rand.NewSource(3))
	for _, f := range []Func{EMD, Euclidean, JS, MaxDiff} {
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(20)
			p, q := randomDist(rng, n), randomDist(rng, n)
			d1, d2 := Distance(f, p, q), Distance(f, q, p)
			if math.Abs(d1-d2) > 1e-12 {
				t.Errorf("%v: asymmetric: %g vs %g", f, d1, d2)
			}
		}
	}
}

func TestTriangleInequalityMetrics(t *testing.T) {
	// EMD, Euclidean, JS and MaxDiff are metrics on distributions.
	rng := rand.New(rand.NewSource(4))
	for _, f := range []Func{EMD, Euclidean, JS, MaxDiff} {
		for trial := 0; trial < 100; trial++ {
			n := 2 + rng.Intn(10)
			p, q, r := randomDist(rng, n), randomDist(rng, n), randomDist(rng, n)
			dpq := Distance(f, p, q)
			dqr := Distance(f, q, r)
			dpr := Distance(f, p, r)
			if dpr > dpq+dqr+1e-9 {
				t.Errorf("%v: triangle violated: d(p,r)=%g > %g + %g", f, dpr, dpq, dqr)
			}
		}
	}
}

func TestBoundsRespectMaxValue(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, f := range Funcs() {
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(15)
			p, q := randomDist(rng, n), randomDist(rng, n)
			if d := Distance(f, p, q); d > MaxValue(f, n)+1e-9 {
				t.Errorf("%v: d = %g exceeds MaxValue %g (n=%d)", f, d, MaxValue(f, n), n)
			}
		}
	}
}

func TestEMDExtremes(t *testing.T) {
	// Moving all mass across k-1 positions costs k-1.
	p := []float64{1, 0, 0, 0}
	q := []float64{0, 0, 0, 1}
	if d := Distance(EMD, p, q); math.Abs(d-3) > 1e-12 {
		t.Errorf("EMD corner-to-corner = %g, want 3", d)
	}
	// Adjacent swap costs exactly the mass moved.
	p2 := []float64{0.6, 0.4}
	q2 := []float64{0.4, 0.6}
	if d := Distance(EMD, p2, q2); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("EMD adjacent = %g, want 0.2", d)
	}
}

func TestEuclideanKnown(t *testing.T) {
	d := Distance(Euclidean, []float64{1, 0}, []float64{0, 1})
	if math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("euclidean = %g, want sqrt(2)", d)
	}
}

func TestKLAsymmetryAndZeroHandling(t *testing.T) {
	p := []float64{0.9, 0.1}
	q := []float64{0.1, 0.9}
	if Distance(KL, p, q) <= 0 {
		t.Error("KL of distinct distributions should be positive")
	}
	// Zero entries must not produce Inf/NaN thanks to smoothing.
	d := Distance(KL, []float64{1, 0}, []float64{0, 1})
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("smoothed KL = %g, want finite", d)
	}
}

func TestJSBounded(t *testing.T) {
	d := Distance(JS, []float64{1, 0}, []float64{0, 1})
	if d > math.Sqrt(math.Ln2)+1e-12 {
		t.Errorf("JS = %g exceeds sqrt(ln 2)", d)
	}
	if d < math.Sqrt(math.Ln2)-1e-9 {
		t.Errorf("JS of disjoint distributions = %g, want sqrt(ln 2)", d)
	}
}

func TestMaxDiffKnown(t *testing.T) {
	d := Distance(MaxDiff, []float64{0.5, 0.3, 0.2}, []float64{0.1, 0.3, 0.6})
	if math.Abs(d-0.4) > 1e-12 {
		t.Errorf("MAX_DIFF = %g, want 0.4", d)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths must panic")
		}
	}()
	Distance(EMD, []float64{1}, []float64{0.5, 0.5})
}

func TestNormalizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		out := Normalize(raw)
		if len(out) != len(raw) {
			return false
		}
		if len(out) == 0 {
			return true
		}
		var sum float64
		for _, x := range out {
			if x < 0 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNormalizeZeroVectorIsUniform(t *testing.T) {
	out := Normalize([]float64{0, 0, 0, 0})
	for _, x := range out {
		if math.Abs(x-0.25) > 1e-12 {
			t.Errorf("zero vector should normalize to uniform, got %v", out)
		}
	}
	if len(Normalize(nil)) != 0 {
		t.Error("empty input → empty output")
	}
}

func TestNormalizeClampsNegatives(t *testing.T) {
	out := Normalize([]float64{-5, 1, 1})
	if out[0] != 0 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("negative clamp wrong: %v", out)
	}
}

func TestAlign(t *testing.T) {
	target := map[string]float64{"a": 1, "b": 2}
	ref := map[string]float64{"b": 3, "c": 4}
	groups, tv, rv := Align(target, ref)
	if len(groups) != 3 || groups[0] != "a" || groups[1] != "b" || groups[2] != "c" {
		t.Fatalf("groups = %v", groups)
	}
	if tv[0] != 1 || tv[1] != 2 || tv[2] != 0 {
		t.Errorf("target aligned = %v", tv)
	}
	if rv[0] != 0 || rv[1] != 3 || rv[2] != 4 {
		t.Errorf("reference aligned = %v", rv)
	}
}

func TestDeviationEndToEnd(t *testing.T) {
	// Deviation(map, map) must equal manual align+normalize+distance.
	target := map[string]float64{"F": 5289, "M": 4879} // ≈ paper Table 1c ratios
	ref := map[string]float64{"F": 1500, "M": 3400}
	got := Deviation(EMD, target, ref)
	_, tv, rv := Align(target, ref)
	want := Distance(EMD, Normalize(tv), Normalize(rv))
	if got != want {
		t.Errorf("Deviation = %g, manual = %g", got, want)
	}
	if got <= 0 {
		t.Error("deviating distributions must have positive utility")
	}
}

func TestDeviationDisjointGroups(t *testing.T) {
	// Groups present only in one side still align correctly.
	d := Deviation(EMD, map[string]float64{"x": 1}, map[string]float64{"y": 1})
	if d <= 0 {
		t.Error("disjoint groups should deviate")
	}
}

func TestConsistencyUnderSampling(t *testing.T) {
	// Property 4.1: as the sample grows, the estimated deviation
	// converges to the true deviation, for every distance function.
	rng := rand.New(rand.NewSource(42))
	groups := []string{"a", "b", "c", "d"}
	pTrue := []float64{0.4, 0.3, 0.2, 0.1}
	qTrue := []float64{0.1, 0.2, 0.3, 0.4}
	draw := func(dist []float64, n int) map[string]float64 {
		counts := make(map[string]float64)
		for i := 0; i < n; i++ {
			r := rng.Float64()
			cum := 0.0
			for j, p := range dist {
				cum += p
				if r <= cum {
					counts[groups[j]]++
					break
				}
			}
		}
		return counts
	}
	for _, f := range Funcs() {
		trueD := Distance(f, pTrue, qTrue)
		small := math.Abs(Deviation(f, draw(pTrue, 100), draw(qTrue, 100)) - trueD)
		var bigSum float64
		const reps = 5
		for r := 0; r < reps; r++ {
			bigSum += math.Abs(Deviation(f, draw(pTrue, 50000), draw(qTrue, 50000)) - trueD)
		}
		big := bigSum / reps
		if big > small+0.02 {
			t.Errorf("%v: estimate did not improve with samples: err(100)=%g err(50000)=%g", f, small, big)
		}
		if big > 0.05*math.Max(trueD, 1) {
			t.Errorf("%v: large-sample error %g too big (true %g)", f, big, trueD)
		}
	}
}

func TestParseFunc(t *testing.T) {
	for _, f := range Funcs() {
		got, err := ParseFunc(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFunc(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFunc("EUCLIDEAN"); err != nil {
		t.Error("EUCLIDEAN should parse")
	}
	if _, err := ParseFunc("L2"); err != nil {
		t.Error("L2 alias should parse")
	}
	if _, err := ParseFunc("bogus"); err == nil {
		t.Error("bogus name should fail")
	}
}

func TestFuncStrings(t *testing.T) {
	if EMD.String() != "EMD" || MaxDiff.String() != "MAX_DIFF" {
		t.Error("Func.String wrong")
	}
	if Func(99).String() == "" {
		t.Error("unknown Func should still render")
	}
}
