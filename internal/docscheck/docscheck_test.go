// Package docscheck keeps the repository's documentation from rotting:
// it verifies that every relative markdown link in README.md and docs/
// points at a file that exists, and that the architecture docs stay
// linked from the README. CI runs it as a dedicated step.
package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the repository root from this file's location.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", ".."))
}

// mdFiles returns the markdown files under the docs contract: README.md
// plus everything in docs/.
func mdFiles(t *testing.T, root string) []string {
	t.Helper()
	files := []string{filepath.Join(root, "README.md")}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		t.Fatalf("docs/ directory: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join(root, "docs", e.Name()))
		}
	}
	return files
}

// linkRE matches markdown inline links [text](target).
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestRelativeLinksResolve fails on any relative markdown link whose
// target file does not exist.
func TestRelativeLinksResolve(t *testing.T) {
	root := repoRoot(t)
	for _, f := range mdFiles(t, root) {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				rel, _ := filepath.Rel(root, f)
				t.Errorf("%s: dangling link %q (resolved %s)", rel, m[1], resolved)
			}
		}
	}
}

// TestArchitectureDocsLinkedFromREADME pins the documentation contract
// of the backend seam: both guides exist, the README links them, and
// each names the four layers and the capability flags it documents.
func TestArchitectureDocsLinkedFromREADME(t *testing.T) {
	root := repoRoot(t)
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"docs/ARCHITECTURE.md", "docs/BACKENDS.md", "docs/OBSERVABILITY.md"} {
		if !strings.Contains(string(readme), "("+doc+")") {
			t.Errorf("README.md does not link %s", doc)
		}
	}

	arch, err := os.ReadFile(filepath.Join(root, "docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"internal/core", "internal/cache", "internal/backend",
		"internal/sqldb", "internal/server", "SupportsPhasedExecution", "SupportsVectorized"} {
		if !strings.Contains(string(arch), want) {
			t.Errorf("ARCHITECTURE.md does not mention %s", want)
		}
	}

	be, err := os.ReadFile(filepath.Join(root, "docs", "BACKENDS.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Capabilities", "TableVersion", "conformancetest",
		"SupportsPhasedExecution", "SupportsVectorized", "RegisterBackend",
		// cross-process tracing wire contract
		"Traceparent", "child.query", "remote=child"} {
		if !strings.Contains(string(be), want) {
			t.Errorf("BACKENDS.md does not mention %s", want)
		}
	}
}

// TestBenchmarksDocPinned pins the benchmark documentation contract:
// the guide must exist, be linked from the README, and describe every
// committed BENCH_*.json artifact, the load workload model, and the
// regeneration commands.
func TestBenchmarksDocPinned(t *testing.T) {
	root := repoRoot(t)
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "(docs/BENCHMARKS.md)") {
		t.Error("README.md does not link docs/BENCHMARKS.md")
	}
	doc, err := os.ReadFile(filepath.Join(root, "docs", "BENCHMARKS.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		// every committed artifact
		"BENCH_cache.json", "BENCH_parallel.json", "BENCH_filter.json",
		"BENCH_shard.json", "BENCH_load.json",
		// regeneration commands
		"-cachejson", "-paralleljson", "-filterjson", "-shardjson",
		"-loadjson", "seedb-loadgen",
		// load workload model + gates
		"recommend", "ingest", "cache-hostile", "tail_fraction",
		"driver_queries_observed", "server_queries_delta", "queries_match",
		"p50_ms", "p95_ms", "p99_ms", "Report.Validate",
	} {
		if !strings.Contains(string(doc), want) {
			t.Errorf("BENCHMARKS.md does not mention %s", want)
		}
	}
	// Every committed BENCH artifact must actually be documented; a new
	// one must land with its schema description.
	matches, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if !strings.Contains(string(doc), filepath.Base(m)) {
			t.Errorf("BENCHMARKS.md does not document committed artifact %s", filepath.Base(m))
		}
	}
}

// TestObservabilityDocPinned pins the telemetry documentation contract:
// the guide must describe the span taxonomy, every exported metric
// family, the slow-log schema and the knobs that switch each piece on.
func TestObservabilityDocPinned(t *testing.T) {
	root := repoRoot(t)
	obs, err := os.ReadFile(filepath.Join(root, "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		// span taxonomy
		"recommend", "cache.do", "sqldb.scan", "shard.fanout", "shard.exec",
		// metric families
		"seedb_requests_total", "seedb_queries_executed_total",
		"seedb_fallback_queries_by_reason_total",
		"seedb_request_duration_seconds", "seedb_query_duration_seconds",
		"seedb_shard_partial_duration_seconds", "seedb_cache_",
		// slow-log schema + knobs
		"elapsed_ms", "threshold_ms", "SlowQueryThreshold",
		"-slowlog", "-pprof", "trace",
		// distributed tracing: identity, propagation, sampling, retention
		"Traceparent", "WithRemoteTrace", "child.query", "AttachRemote",
		"-trace-sample", "SetTraceSampling", "/api/traces",
		"spans_dropped", "trace_id", "TraceStore",
		"seedb_traces_sampled_total", "seedb_trace_dropped_total",
		"seedb_trace_store_entries", "seedb_trace_store_bytes",
		// tooling
		"seedb-promlint", "ValidatePrometheusText",
	} {
		if !strings.Contains(string(obs), want) {
			t.Errorf("OBSERVABILITY.md does not mention %s", want)
		}
	}
	arch, err := os.ReadFile(filepath.Join(root, "docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(arch), "## Telemetry") {
		t.Error("ARCHITECTURE.md has no Telemetry section")
	}
	if !strings.Contains(string(arch), "OBSERVABILITY.md") {
		t.Error("ARCHITECTURE.md does not link OBSERVABILITY.md")
	}
}

// TestResilienceDocPinned pins the graceful-degradation documentation
// contract: the guide must exist, be linked from the README, and
// describe the breaker state machine, the degraded/stale response
// markers, the admission knobs and the chaos harness — and the new
// metric families must be in the observability table too.
func TestResilienceDocPinned(t *testing.T) {
	root := repoRoot(t)
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "(docs/RESILIENCE.md)") {
		t.Error("README.md does not link docs/RESILIENCE.md")
	}
	doc, err := os.ReadFile(filepath.Join(root, "docs", "RESILIENCE.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		// breaker state machine + knobs
		"closed", "open", "half_open", "FailureThreshold", "Cooldown",
		"-breakers",
		// degraded results contract
		"allow_partial", "degraded_shards", "ShardsDegraded",
		"never admitted to the result cache",
		// admission control
		"-max-inflight", "-queue-wait", "Retry-After", "503", "429",
		// stale serving, panics, drain
		"serve_stale", "seedb_panics_total", "-drain-timeout", "SIGTERM",
		// chaos harness
		"seedb-loadgen -chaos", "faultbe",
	} {
		if !strings.Contains(string(doc), want) {
			t.Errorf("RESILIENCE.md does not mention %s", want)
		}
	}
	obs, err := os.ReadFile(filepath.Join(root, "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"seedb_breaker_state", "seedb_breaker_transitions_total",
		"seedb_degraded_requests_total", "seedb_shed_requests_total",
		"seedb_stale_serves_total", "seedb_panics_total",
	} {
		if !strings.Contains(string(obs), want) {
			t.Errorf("OBSERVABILITY.md does not list %s", want)
		}
	}
}
