// Package load is the production load harness: it replays a mixed,
// Zipf-skewed workload against a running seedb-server over HTTP and
// reports throughput plus latency percentiles per traffic class.
//
// The workload model is the north-star traffic shape the ROADMAP
// describes, scaled down to a knob set:
//
//   - N concurrent simulated users, each a goroutine with its own
//     deterministic RNG (seed + user index), issuing requests
//     back-to-back until the wall-clock deadline;
//   - recommend traffic (/api/recommend) whose target predicates are
//     drawn Zipf-skewed from a popularity-ranked pool — a few analyses
//     are hot (and should ride the result cache), the rest are a long
//     tail;
//   - cache-hostile tail queries: a configurable fraction of recommend
//     traffic targets uniformly random values of the highest-cardinality
//     column, so each is almost surely a cold cache miss;
//   - raw query traffic (/api/query), the manual chart-building path;
//   - concurrent ingest (/api/ingest): batches of generated rows
//     appended mid-replay, exercising version-based cache invalidation
//     and the server's reader/writer data guard under fire.
//
// Latencies are recorded into telemetry.Histogram per class — the same
// histogram machinery the server exports on /metrics — so driver-side
// and server-side percentiles are directly comparable. The report
// cross-checks the driver's observed query count (the sum of every
// response's queries_executed, plus one per raw query) against the
// server's /healthz queries_executed delta: the two must match exactly,
// which catches dropped requests, double counting, and silent errors in
// either process.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seedb/internal/dataset"
	"seedb/internal/telemetry"
)

// Traffic class names, used as map keys in the report.
const (
	ClassRecommend = "recommend"
	ClassQuery     = "query"
	ClassIngest    = "ingest"
)

// Mix weighs the traffic classes; weights are normalized, so {6, 3, 1}
// means 60% recommends, 30% raw queries, 10% ingest batches.
type Mix struct {
	Recommend float64 `json:"recommend"`
	Query     float64 `json:"query"`
	Ingest    float64 `json:"ingest"`
}

// DefaultMix is read-heavy with a write stream, the analytic-dashboard
// shape: mostly recommendations, some manual charts, a trickle of
// appends (each append invalidates the table's cached results, so even
// a trickle keeps the cache honest).
func DefaultMix() Mix { return Mix{Recommend: 0.60, Query: 0.35, Ingest: 0.05} }

// Config parameterizes one load run.
type Config struct {
	// BaseURL locates the target server (e.g. "http://127.0.0.1:8080").
	BaseURL string `json:"base_url"`
	// Spec is the synthetic table the workload runs over; the driver
	// derives its predicate pools, recommend dimensions/measures, and
	// ingest row shape from it. The table must already be loaded (see
	// PushSpec) under Spec.Name.
	Spec dataset.SynthSpec `json:"-"`
	// Users is the number of concurrent simulated users (default 8).
	Users int `json:"users"`
	// Duration is the replay wall-clock budget (default 5s).
	Duration time.Duration `json:"-"`
	// Seed makes the whole replay deterministic modulo scheduling: user
	// u draws from rng(Seed*1e6 + u).
	Seed int64 `json:"seed"`
	// Mix weighs the traffic classes (zero value = DefaultMix).
	Mix Mix `json:"mix"`
	// TailFraction is the probability a recommend request is
	// cache-hostile (uniform draw over the highest-cardinality column)
	// instead of Zipf-popular. Default 0.15.
	TailFraction float64 `json:"tail_fraction"`
	// ZipfS skews the popularity ranking of the predicate pool
	// (default 1.2; must be > 1).
	ZipfS float64 `json:"zipf_s"`
	// K is the recommend top-k (default 3).
	K int `json:"k"`
	// IngestBatch is the rows per ingest request (default 50).
	IngestBatch int `json:"ingest_batch"`
	// Backend optionally routes recommend/query traffic to a named
	// server backend ("" = the embedded default).
	Backend string `json:"backend,omitempty"`
	// AllowPartial opts recommend traffic into degraded results: with a
	// breaker-equipped shard backend, a child outage then yields 200s
	// covering the surviving shards (marked degraded) instead of 5xx.
	AllowPartial bool `json:"allow_partial,omitempty"`
	// Chaos marks a run whose harness injects a mid-run child outage
	// (see cmd/seedb-loadgen -chaos). Validate then additionally
	// requires that degraded responses were actually observed — the
	// outage must have been hit — while keeping the zero-error gate:
	// graceful degradation means the fault is absorbed, not surfaced.
	Chaos bool `json:"chaos,omitempty"`
	// Client overrides the HTTP client (default: no timeout — the
	// driver never abandons an in-flight request, which is what keeps
	// the driver/server query-count cross-check exact).
	Client *http.Client `json:"-"`
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix()
	}
	if c.TailFraction == 0 {
		c.TailFraction = 0.15
	}
	if c.TailFraction < 0 {
		c.TailFraction = 0
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// ClassStats is one traffic class's share of the report.
type ClassStats struct {
	Count         uint64  `json:"count"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MeanMS        float64 `json:"mean_ms"`
}

// Report is the load run's result — the BENCH_load.json payload.
type Report struct {
	Experiment string  `json:"experiment"`
	Table      string  `json:"table"`
	RowsLoaded int     `json:"rows_loaded"`
	Users      int     `json:"users"`
	DurationS  float64 `json:"duration_s"`
	Seed       int64   `json:"seed"`
	Backend    string  `json:"backend,omitempty"`
	Mix        Mix     `json:"mix"`
	GoMaxProcs int     `json:"gomaxprocs"`

	Classes map[string]ClassStats `json:"classes"`

	TotalRequests uint64  `json:"total_requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	ErrorCount    int64   `json:"error_count"`
	// FirstErrors preserves a few error messages for diagnosis (the
	// counters alone can't say *why* a run went bad).
	FirstErrors []string `json:"first_errors,omitempty"`

	// RowsIngested counts rows appended by the ingest class.
	RowsIngested int64 `json:"rows_ingested"`
	// CacheServed counts recommend responses answered entirely from the
	// result cache — the Zipf head doing its job.
	CacheServed int64 `json:"cache_served"`
	// Chaos echoes Config.Chaos; DegradedResponses counts recommend 200s
	// computed from partial shard coverage during the injected outage,
	// StaleResponses counts 200s served from the stale-result store, and
	// ShedResponses counts 503/429 admission rejections (these also
	// count as errors — the driver's SLO gate treats shedding as a
	// capacity failure the run must be sized to avoid).
	Chaos             bool  `json:"chaos,omitempty"`
	DegradedResponses int64 `json:"degraded_responses"`
	StaleResponses    int64 `json:"stale_responses"`
	ShedResponses     int64 `json:"shed_responses"`

	// DriverQueriesObserved sums queries_executed over every recommend
	// response plus one per successful raw query; ServerQueriesDelta is
	// the server's /healthz queries_executed growth over the run. They
	// must match exactly.
	DriverQueriesObserved int64 `json:"driver_queries_observed"`
	ServerQueriesDelta    int64 `json:"server_queries_delta"`
	QueriesMatch          bool  `json:"queries_match"`
}

// Validate applies the SLO regression gates CI and the loadgen CLI
// enforce on a finished report: every class that ran must carry sane
// percentiles, throughput must be positive, no request may have failed,
// and the driver/server query accounting must agree.
func (r *Report) Validate() error {
	var probs []string
	if r.TotalRequests == 0 || r.ThroughputRPS <= 0 {
		probs = append(probs, fmt.Sprintf("no throughput (requests=%d, rps=%.2f)", r.TotalRequests, r.ThroughputRPS))
	}
	if r.ErrorCount > 0 {
		probs = append(probs, fmt.Sprintf("%d request errors (first: %s)", r.ErrorCount, strings.Join(r.FirstErrors, "; ")))
	}
	for _, class := range []string{ClassRecommend, ClassQuery} {
		cs, ok := r.Classes[class]
		if !ok || cs.Count == 0 {
			probs = append(probs, fmt.Sprintf("class %s never ran", class))
			continue
		}
		if cs.P50MS <= 0 || cs.P95MS < cs.P50MS || cs.P99MS < cs.P95MS {
			probs = append(probs, fmt.Sprintf("class %s percentiles malformed (p50=%.3f p95=%.3f p99=%.3f)",
				class, cs.P50MS, cs.P95MS, cs.P99MS))
		}
	}
	if !r.QueriesMatch {
		probs = append(probs, fmt.Sprintf("driver observed %d queries, server executed %d",
			r.DriverQueriesObserved, r.ServerQueriesDelta))
	}
	if r.Chaos && r.DegradedResponses == 0 && r.StaleResponses == 0 {
		// The zero-error gate above already proves no 5xx leaked; this
		// gate proves the run actually exercised the outage — a chaos run
		// where nothing degraded tested nothing.
		probs = append(probs, "chaos run observed no degraded or stale responses (outage never hit)")
	}
	if len(probs) > 0 {
		return fmt.Errorf("load report failed validation: %s", strings.Join(probs, "; "))
	}
	return nil
}

// workload is the precomputed request material every user draws from.
type workload struct {
	table string
	// popular predicates, rank 0 hottest; drawn via Zipf.
	predicates []string
	// tailCol/tailCard parameterize cache-hostile draws: a uniformly
	// random value of the highest-cardinality string column.
	tailCol  string
	tailCard int
	// dims/measures bound the recommend view space (1-core calibration:
	// a handful of views per request, not the full cross product).
	dims     []string
	measures []string
	// queries are raw /api/query SQL texts, drawn Zipf like predicates.
	queries []string
}

// buildWorkload derives the request pools from the spec.
func buildWorkload(spec dataset.SynthSpec) (*workload, error) {
	w := &workload{table: spec.Name}

	type cat struct {
		name string
		card int
	}
	var cats []cat
	for _, c := range spec.Columns {
		if card := spec.Cardinality(c.Name); card > 0 {
			cats = append(cats, cat{c.Name, card})
		}
	}
	if len(cats) == 0 {
		return nil, fmt.Errorf("load: spec %s has no string columns to predicate on", spec.Name)
	}
	sort.SliceStable(cats, func(a, b int) bool { return cats[a].card < cats[b].card })

	// Popular predicates: equality on values of the low-cardinality
	// columns, most-popular values first (value index 0 is the most
	// likely under every skewed distribution the generator offers).
	for _, c := range cats {
		if c.card > 16 {
			continue
		}
		for i := 0; i < c.card; i++ {
			w.predicates = append(w.predicates,
				fmt.Sprintf("%s = '%s'", c.name, escapeSQL(spec.ValueName(c.name, i))))
		}
	}
	if len(w.predicates) == 0 {
		c := cats[0]
		for i := 0; i < c.card && i < 16; i++ {
			w.predicates = append(w.predicates,
				fmt.Sprintf("%s = '%s'", c.name, escapeSQL(spec.ValueName(c.name, i))))
		}
	}

	// The tail targets the highest-cardinality column.
	w.tailCol = cats[len(cats)-1].name
	w.tailCard = cats[len(cats)-1].card

	// Dimensions: up to three low-cardinality columns (grouped charts
	// want few groups); measures: up to two numeric columns. This keeps
	// each recommend at a handful of views so single-core cold latency
	// stays interactive at millions of rows.
	for _, c := range cats {
		if len(w.dims) < 3 && c.card <= 32 {
			w.dims = append(w.dims, c.name)
		}
	}
	if len(w.dims) == 0 {
		w.dims = []string{cats[0].name}
	}
	for _, c := range spec.Columns {
		if (c.Type == "float" || c.Type == "int") && len(w.measures) < 2 {
			w.measures = append(w.measures, c.Name)
		}
	}
	if len(w.measures) == 0 {
		return nil, fmt.Errorf("load: spec %s has no numeric columns to measure", spec.Name)
	}

	// Raw query pool: grouped aggregates over dim × measure × agg,
	// optionally filtered by a popular predicate.
	aggs := []string{"COUNT(*)", "SUM", "AVG"}
	for _, d := range w.dims {
		for _, m := range w.measures {
			for _, a := range aggs {
				expr := a
				if a != "COUNT(*)" {
					expr = fmt.Sprintf("%s(%s)", a, m)
				}
				w.queries = append(w.queries,
					fmt.Sprintf("SELECT %s, %s FROM %s GROUP BY %s", d, expr, spec.Name, d))
				w.queries = append(w.queries,
					fmt.Sprintf("SELECT %s, %s FROM %s WHERE %s GROUP BY %s",
						d, expr, spec.Name, w.predicates[0], d))
			}
		}
	}
	return w, nil
}

// escapeSQL doubles single quotes for SQL string literals.
func escapeSQL(s string) string { return strings.ReplaceAll(s, "'", "''") }

// counters aggregates worker observations; histograms and atomics are
// all safe for concurrent use.
type counters struct {
	hists        map[string]*telemetry.Histogram
	counts       map[string]*atomic.Uint64
	errors       atomic.Int64
	rowsIngested atomic.Int64
	cacheServed  atomic.Int64
	queriesSeen  atomic.Int64
	degraded     atomic.Int64
	stale        atomic.Int64
	shed         atomic.Int64

	errMu     sync.Mutex
	firstErrs []string
}

func newCounters() *counters {
	c := &counters{
		hists:  map[string]*telemetry.Histogram{},
		counts: map[string]*atomic.Uint64{},
	}
	for _, class := range []string{ClassRecommend, ClassQuery, ClassIngest} {
		c.hists[class] = &telemetry.Histogram{}
		c.counts[class] = &atomic.Uint64{}
	}
	return c
}

// fail records one failed request.
func (c *counters) fail(class string, err error) {
	c.errors.Add(1)
	c.errMu.Lock()
	if len(c.firstErrs) < 5 {
		c.firstErrs = append(c.firstErrs, fmt.Sprintf("%s: %v", class, err))
	}
	c.errMu.Unlock()
}

// Run replays the configured workload and returns the report. The
// target table (cfg.Spec.Name) must already be loaded server-side; use
// PushSpec first when driving a fresh server. Run returns an error only
// for harness-level failures (unreachable server, bad spec); request
// failures are counted in the report and surfaced by Validate.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("load: Config.BaseURL is required")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	w, err := buildWorkload(cfg.Spec)
	if err != nil {
		return nil, err
	}

	rowsLoaded, queriesBefore, err := serverSnapshot(ctx, cfg, w.table)
	if err != nil {
		return nil, err
	}

	cnt := newCounters()
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			newUser(cfg, w, cnt, u).replay(ctx, deadline)
		}(u)
	}
	wg.Wait()
	// Every worker has joined and no request is in flight, so the
	// server's counters are quiescent: snapshot the delta.
	_, queriesAfter, err := serverSnapshot(ctx, cfg, w.table)
	if err != nil {
		return nil, err
	}

	total := uint64(0)
	for _, c := range cnt.counts {
		total += c.Load()
	}
	r := &Report{
		Experiment: "load",
		Table:      w.table,
		RowsLoaded: rowsLoaded,
		Users:      cfg.Users,
		DurationS:  cfg.Duration.Seconds(),
		Seed:       cfg.Seed,
		Backend:    cfg.Backend,
		Mix:        cfg.Mix,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Classes:    map[string]ClassStats{},

		TotalRequests:     total,
		ThroughputRPS:     float64(total) / cfg.Duration.Seconds(),
		ErrorCount:        cnt.errors.Load(),
		FirstErrors:       cnt.firstErrs,
		RowsIngested:      cnt.rowsIngested.Load(),
		CacheServed:       cnt.cacheServed.Load(),
		Chaos:             cfg.Chaos,
		DegradedResponses: cnt.degraded.Load(),
		StaleResponses:    cnt.stale.Load(),
		ShedResponses:     cnt.shed.Load(),

		DriverQueriesObserved: cnt.queriesSeen.Load(),
		ServerQueriesDelta:    queriesAfter - queriesBefore,
	}
	r.QueriesMatch = r.DriverQueriesObserved == r.ServerQueriesDelta
	for class, h := range cnt.hists {
		snap := h.Snapshot()
		cs := ClassStats{
			Count:         cnt.counts[class].Load(),
			ThroughputRPS: float64(cnt.counts[class].Load()) / cfg.Duration.Seconds(),
			P50MS:         snap.P50MS,
			P95MS:         snap.P95MS,
			P99MS:         snap.P99MS,
		}
		if snap.Count > 0 {
			cs.MeanMS = snap.SumMS / float64(snap.Count)
		}
		r.Classes[class] = cs
	}
	return r, nil
}

// user is one simulated analyst: a deterministic RNG plus its ingest
// row generator.
type user struct {
	cfg  Config
	w    *workload
	cnt  *counters
	rng  *rand.Rand
	zipf *rand.Zipf
	qz   *rand.Zipf
	gen  *dataset.RowGen
	buf  bytes.Buffer
}

// newUser seeds user u.
func newUser(cfg Config, w *workload, cnt *counters, u int) *user {
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(u)))
	// Each user generates a disjoint ingest row stream (its own seed),
	// so concurrent appends never insert identical data.
	gen, _ := dataset.NewRowGen(cfg.Spec, cfg.Seed*7_000_003+int64(u)+1)
	return &user{
		cfg:  cfg,
		w:    w,
		cnt:  cnt,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(w.predicates)-1)),
		qz:   rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(w.queries)-1)),
		gen:  gen,
	}
}

// replay issues requests until the deadline. In-flight requests are
// never cancelled at the deadline — they finish and count, preserving
// the query-accounting cross-check.
func (s *user) replay(ctx context.Context, deadline time.Time) {
	mix := s.cfg.Mix
	norm := mix.Recommend + mix.Query + mix.Ingest
	if norm <= 0 {
		return
	}
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return
		}
		u := s.rng.Float64() * norm
		switch {
		case u < mix.Recommend:
			s.doRecommend(ctx)
		case u < mix.Recommend+mix.Query:
			s.doQuery(ctx)
		default:
			s.doIngest(ctx)
		}
	}
}

// recommendResult is the slice of the server response the driver needs.
type recommendResult struct {
	QueriesExecuted int64 `json:"queries_executed"`
	ServedFromCache bool  `json:"served_from_cache"`
	Degraded        bool  `json:"degraded"`
	Stale           bool  `json:"stale"`
}

// doRecommend issues one /api/recommend draw: Zipf-popular predicate,
// or a cache-hostile uniform tail draw with probability TailFraction.
func (s *user) doRecommend(ctx context.Context) {
	var where string
	if s.rng.Float64() < s.cfg.TailFraction {
		v := s.rng.Intn(s.w.tailCard)
		where = fmt.Sprintf("%s = '%s'", s.w.tailCol, escapeSQL(s.cfg.Spec.ValueName(s.w.tailCol, v)))
	} else {
		where = s.w.predicates[int(s.zipf.Uint64())]
	}
	req := map[string]any{
		"table":        s.w.table,
		"target_where": where,
		"k":            s.cfg.K,
		"dimensions":   s.w.dims,
		"measures":     s.w.measures,
		"aggregates":   []string{"AVG"},
		"backend":      s.cfg.Backend,
	}
	if s.cfg.AllowPartial {
		req["allow_partial"] = true
	}
	var res recommendResult
	if s.timedPost(ctx, ClassRecommend, "/api/recommend", req, &res) {
		s.cnt.queriesSeen.Add(res.QueriesExecuted)
		if res.ServedFromCache {
			s.cnt.cacheServed.Add(1)
		}
		if res.Degraded {
			s.cnt.degraded.Add(1)
		}
		if res.Stale {
			s.cnt.stale.Add(1)
		}
	}
}

// doQuery issues one raw /api/query draw from the Zipf-ranked pool.
func (s *user) doQuery(ctx context.Context) {
	sql := s.w.queries[int(s.qz.Uint64())]
	req := map[string]any{"sql": sql, "backend": s.cfg.Backend}
	if s.cfg.AllowPartial {
		req["allow_partial"] = true
	}
	if s.timedPost(ctx, ClassQuery, "/api/query", req, nil) {
		// One /api/query = exactly one backend execution folded into
		// the server's queries_executed.
		s.cnt.queriesSeen.Add(1)
	}
}

// doIngest appends one generated batch.
func (s *user) doIngest(ctx context.Context) {
	rows := make([][]string, s.cfg.IngestBatch)
	for i := range rows {
		vals := s.gen.Next()
		cells := make([]string, len(vals))
		for j, v := range vals {
			if v.IsNull() {
				cells[j] = ""
			} else {
				cells[j] = v.String()
			}
		}
		rows[i] = cells
	}
	req := map[string]any{"table": s.w.table, "rows": rows}
	if s.timedPost(ctx, ClassIngest, "/api/ingest", req, nil) {
		s.cnt.rowsIngested.Add(int64(len(rows)))
	}
}

// timedPost performs one timed request, recording latency and outcome.
// It reports whether the request succeeded with 200.
func (s *user) timedPost(ctx context.Context, class, path string, body any, out any) bool {
	s.buf.Reset()
	if err := json.NewEncoder(&s.buf).Encode(body); err != nil {
		s.cnt.fail(class, err)
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.cfg.BaseURL+path, &s.buf)
	if err != nil {
		s.cnt.fail(class, err)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := s.cfg.Client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		s.cnt.fail(class, err)
		return false
	}
	defer resp.Body.Close()
	s.cnt.hists[class].Observe(elapsed)
	s.cnt.counts[class].Add(1)
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			s.cnt.shed.Add(1)
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
		s.cnt.fail(class, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, msg))
		return false
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			s.cnt.fail(class, err)
			return false
		}
	}
	io.Copy(io.Discard, resp.Body)
	return true
}

// healthzExecutor is the /healthz slice the driver reads.
type healthzExecutor struct {
	Executor struct {
		QueriesExecuted int64 `json:"queries_executed"`
	} `json:"executor"`
}

// serverSnapshot reads the target table's row count and the server's
// cumulative queries_executed.
func serverSnapshot(ctx context.Context, cfg Config, table string) (rows int, queries int64, err error) {
	var health healthzExecutor
	if err := getJSON(ctx, cfg.Client, cfg.BaseURL+"/healthz", &health); err != nil {
		return 0, 0, fmt.Errorf("load: server unreachable: %w", err)
	}
	var tables []struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
	}
	if err := getJSON(ctx, cfg.Client, cfg.BaseURL+"/api/tables", &tables); err != nil {
		return 0, 0, err
	}
	for _, t := range tables {
		if t.Name == table {
			return t.Rows, health.Executor.QueriesExecuted, nil
		}
	}
	return 0, 0, fmt.Errorf("load: table %q not loaded on %s (PushSpec first)", table, cfg.BaseURL)
}

// getJSON fetches one JSON document.
func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// PushSpec loads cfg.Spec into the target server via
// POST /api/datasets/synth (generation streams server-side, so a
// million-row load ships a ~1 KB spec, not a CSV). A table that already
// exists under the spec's name is left untouched.
func PushSpec(ctx context.Context, cfg Config) error {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return err
	}
	var tables []struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
	}
	if err := getJSON(ctx, cfg.Client, cfg.BaseURL+"/api/tables", &tables); err != nil {
		return fmt.Errorf("load: server unreachable: %w", err)
	}
	for _, t := range tables {
		if t.Name == cfg.Spec.Name {
			return nil
		}
	}
	body, err := json.Marshal(map[string]any{"spec": cfg.Spec})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/api/datasets/synth", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 300))
		return fmt.Errorf("load: pushing spec: status %d: %s", resp.StatusCode, msg)
	}
	return nil
}
