package load

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seedb/internal/dataset"
	"seedb/internal/server"
	"seedb/internal/sqldb"
)

// TestSoakMixedWorkload is the short-profile soak gate CI runs under
// -race: several seconds of full mixed traffic (Zipf recommends, tail
// recommends, raw queries, concurrent ingest) against an in-process
// server, after which every invariant the harness advertises must hold
// — zero non-2xx responses, driver/server query accounting matches
// exactly, the server-side histogram count still equals
// queries_executed, row counts reflect every ingested batch, and a
// final recommendation still parses and ranks views.
func TestSoakMixedWorkload(t *testing.T) {
	spec := dataset.TrafficSpec().WithRows(20_000).WithSeed(9)
	srv := server.New(sqldb.NewDB())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	dur := 5 * time.Second
	if testing.Short() {
		dur = 1 * time.Second
	}
	cfg := Config{
		BaseURL:  ts.URL,
		Spec:     spec,
		Users:    8,
		Duration: dur,
		Seed:     4,
	}
	ctx := context.Background()
	if err := PushSpec(ctx, cfg); err != nil {
		t.Fatalf("loading spec into server: %v", err)
	}
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("load run: %v", err)
	}

	// Zero non-2xx responses over the whole soak.
	if rep.ErrorCount != 0 {
		t.Fatalf("%d request errors during soak; first: %v", rep.ErrorCount, rep.FirstErrors)
	}
	// The full SLO/shape gate the CLI enforces must pass too.
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every traffic class must actually have run.
	for _, class := range []string{ClassRecommend, ClassQuery, ClassIngest} {
		if rep.Classes[class].Count == 0 {
			t.Errorf("class %s issued no requests in %v", class, dur)
		}
	}
	// Exact query accounting: driver-observed == server delta.
	if !rep.QueriesMatch {
		t.Fatalf("driver observed %d queries, server executed %d",
			rep.DriverQueriesObserved, rep.ServerQueriesDelta)
	}
	// The Zipf head should be hitting the result cache at least once.
	if rep.CacheServed == 0 {
		t.Error("no recommend response was served from cache despite Zipf-skewed traffic")
	}

	// Server-side telemetry invariant survives the soak: the query
	// latency histogram counts exactly queries_executed.
	var health struct {
		Executor struct {
			QueriesExecuted uint64 `json:"queries_executed"`
		} `json:"executor"`
	}
	mustGetJSON(t, ts.URL+"/healthz", &health)
	if got := srv.Telemetry().QueryLatency.Count(); got != health.Executor.QueriesExecuted {
		t.Fatalf("query histogram count %d != queries_executed %d", got, health.Executor.QueriesExecuted)
	}

	// Row accounting: the table grew by exactly the ingested rows.
	var tables []struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
	}
	mustGetJSON(t, ts.URL+"/api/tables", &tables)
	found := false
	for _, tab := range tables {
		if tab.Name == spec.Name {
			found = true
			if want := spec.Rows + int(rep.RowsIngested); tab.Rows != want {
				t.Fatalf("table holds %d rows, want %d (loaded %d + ingested %d)",
					tab.Rows, want, spec.Rows, rep.RowsIngested)
			}
		}
	}
	if !found {
		t.Fatalf("table %s missing after soak", spec.Name)
	}

	// Final results still parse and rank: a fresh recommendation over
	// the mutated table returns scored views.
	body := strings.NewReader(`{"table":"traffic","target_where":"plan = 'free'","k":3,` +
		`"dimensions":["region","device"],"measures":["price"]}`)
	resp, err := http.Post(ts.URL+"/api/recommend", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-soak recommend: status %d", resp.StatusCode)
	}
	var rec struct {
		Recommendations []struct {
			Dimension string  `json:"dimension"`
			Measure   string  `json:"measure"`
			Utility   float64 `json:"utility"`
		} `json:"recommendations"`
		QueriesExecuted int `json:"queries_executed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("post-soak recommend does not parse: %v", err)
	}
	if len(rec.Recommendations) == 0 {
		t.Fatal("post-soak recommend returned no recommendations")
	}
	for _, r := range rec.Recommendations {
		if r.Dimension == "" || r.Measure == "" {
			t.Fatalf("malformed recommendation %+v", r)
		}
	}
}

// TestRunIsDeterministicRequestStream pins the deterministic seeding
// contract: two runs with the same seed against fresh servers draw the
// same request mix (identical per-class request counts are too timing
// dependent to pin, but the ingest row streams must be identical, which
// the row-count invariant already proves per run; here we pin that a
// different seed actually changes the draw sequence).
func TestRunIsDeterministicRequestStream(t *testing.T) {
	spec := dataset.TrafficSpec().WithRows(500).WithSeed(3)
	w, err := buildWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{BaseURL: "http://unused", Spec: spec, Seed: 11}.withDefaults()
	cnt := newCounters()
	draws := func(seed int64) []string {
		c := cfg
		c.Seed = seed
		u := newUser(c, w, cnt, 0)
		var out []string
		for i := 0; i < 50; i++ {
			out = append(out, w.predicates[int(u.zipf.Uint64())])
		}
		return out
	}
	a, b, c := draws(11), draws(11), draws(12)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatal("same seed produced different predicate streams")
	}
	if strings.Join(a, "|") == strings.Join(c, "|") {
		t.Fatal("different seeds produced identical predicate streams")
	}
}

// TestBuildWorkloadPools sanity-checks pool derivation from the traffic
// spec: popular predicates exist, the tail column is the widest one,
// dims/measures are bounded, and the raw query pool is non-empty.
func TestBuildWorkloadPools(t *testing.T) {
	spec := dataset.TrafficSpec()
	w, err := buildWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.predicates) == 0 || len(w.queries) == 0 {
		t.Fatalf("empty pools: %d predicates, %d queries", len(w.predicates), len(w.queries))
	}
	if w.tailCol != "city" {
		t.Errorf("tail column %s, want city (highest cardinality)", w.tailCol)
	}
	if w.tailCard != spec.Cardinality("city") {
		t.Errorf("tail cardinality %d, want %d", w.tailCard, spec.Cardinality("city"))
	}
	if len(w.dims) == 0 || len(w.dims) > 3 {
		t.Errorf("dims %v, want 1-3", w.dims)
	}
	if len(w.measures) == 0 || len(w.measures) > 2 {
		t.Errorf("measures %v, want 1-2", w.measures)
	}
}

// TestReportValidateGates proves the SLO gate actually rejects bad
// reports (CI leans on this to fail the build, so it must not be
// vacuous).
func TestReportValidateGates(t *testing.T) {
	good := &Report{
		TotalRequests: 100,
		ThroughputRPS: 20,
		QueriesMatch:  true,
		Classes: map[string]ClassStats{
			ClassRecommend: {Count: 60, P50MS: 1, P95MS: 2, P99MS: 3},
			ClassQuery:     {Count: 40, P50MS: 1, P95MS: 2, P99MS: 3},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("well-formed report rejected: %v", err)
	}
	cases := []struct {
		name  string
		wreck func(*Report)
		want  string
	}{
		{"no traffic", func(r *Report) { r.TotalRequests = 0; r.ThroughputRPS = 0 }, "no throughput"},
		{"errors", func(r *Report) { r.ErrorCount = 3; r.FirstErrors = []string{"query: status 500"} }, "request errors"},
		{"missing class", func(r *Report) { delete(r.Classes, ClassQuery) }, "never ran"},
		{"inverted percentiles", func(r *Report) {
			cs := r.Classes[ClassRecommend]
			cs.P95MS = 0.5
			r.Classes[ClassRecommend] = cs
		}, "percentiles malformed"},
		{"accounting mismatch", func(r *Report) { r.QueriesMatch = false }, "server executed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := *good
			r.Classes = map[string]ClassStats{}
			for k, v := range good.Classes {
				r.Classes[k] = v
			}
			tc.wreck(&r)
			err := r.Validate()
			if err == nil {
				t.Fatal("bad report passed validation")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// mustGetJSON fetches and decodes one JSON document or fails the test.
func mustGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
