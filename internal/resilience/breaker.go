// Package resilience holds the graceful-degradation primitives the
// server and shard router share: per-child circuit breakers that stop
// hammering a failing backend, and an admission gate that bounds
// in-flight work with a short timed wait queue.
//
// Both primitives are deliberately dependency-free and synchronous so
// they can sit on hot paths: a breaker decision is one mutex acquire,
// and the gate's fast path is a single channel send.
package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position in the closed→open→half-open
// cycle.
type State int

const (
	// Closed admits every request; failures are being counted.
	Closed State = iota
	// Open refuses every request until the cooldown elapses.
	Open
	// HalfOpen admits exactly one concurrent probe request; its
	// outcome decides between re-closing and re-opening.
	HalfOpen
)

// String names the state for metrics and logs.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// BreakerOptions tunes one circuit breaker.
type BreakerOptions struct {
	// FailureThreshold trips the breaker after this many consecutive
	// failures. Defaults to 5.
	FailureThreshold int
	// ErrorRate additionally trips the breaker when the failure
	// fraction over the sliding window reaches this value (0 disables
	// rate tripping).
	ErrorRate float64
	// WindowSize is the sliding outcome window used for ErrorRate.
	// Defaults to 20.
	WindowSize int
	// MinSamples is the minimum number of windowed outcomes before
	// ErrorRate can trip. Defaults to 10.
	MinSamples int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe. Defaults to 1s.
	Cooldown time.Duration
	// Now injects a clock for tests. Defaults to time.Now.
	Now func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.WindowSize <= 0 {
		o.WindowSize = 20
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 10
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Transitions counts every state change the breaker has made. The
// counters are exact: each transition increments exactly one field.
type Transitions struct {
	ClosedToOpen     int64
	OpenToHalfOpen   int64
	HalfOpenToClosed int64
	HalfOpenToOpen   int64
}

// BreakerStats is a point-in-time snapshot for /metrics and /healthz.
type BreakerStats struct {
	State       State
	Successes   int64
	Failures    int64
	Refusals    int64
	Transitions Transitions
}

// Breaker is one circuit breaker. The zero value is not usable; build
// with NewBreaker. All methods are safe for concurrent use.
type Breaker struct {
	opts BreakerOptions

	mu        sync.Mutex
	state     State
	consec    int    // consecutive failures while closed
	window    []bool // ring of recent outcomes, true = failure
	windowPos int
	windowLen int
	openedAt  time.Time
	probing   bool // a half-open probe is in flight

	successes int64
	failures  int64
	refusals  int64
	trans     Transitions
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(opts BreakerOptions) *Breaker {
	o := opts.withDefaults()
	return &Breaker{opts: o, window: make([]bool, o.WindowSize)}
}

// Allow reports whether a request may proceed, consuming the half-open
// probe slot when it does. Callers that are admitted MUST report the
// outcome via RecordSuccess or RecordFailure; an admitted half-open
// probe that never reports would wedge the breaker half-open.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.opts.Now().Sub(b.openedAt) < b.opts.Cooldown {
			b.refusals++
			return false
		}
		// Cooldown elapsed: this caller becomes the half-open probe.
		b.state = HalfOpen
		b.trans.OpenToHalfOpen++
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			b.refusals++
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Ready is Allow without side effects: it reports whether a request
// would currently be admitted, without consuming the probe slot or
// counting a refusal. Introspection paths (TableInfo, stats scans) use
// it to decide whether a child should be treated as down.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		return b.opts.Now().Sub(b.openedAt) >= b.opts.Cooldown
	case HalfOpen:
		return !b.probing
	}
	return false
}

// RecordSuccess reports a successful admitted request.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.successes++
	switch b.state {
	case Closed:
		b.consec = 0
		b.push(false)
	case HalfOpen:
		// The probe came back healthy: close and reset all failure
		// history so one stale window can't immediately re-trip.
		b.state = Closed
		b.trans.HalfOpenToClosed++
		b.probing = false
		b.consec = 0
		b.windowLen, b.windowPos = 0, 0
	case Open:
		// A straggler from before the trip; its success is stale news.
	}
}

// RecordFailure reports a failed admitted request.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case Closed:
		b.consec++
		b.push(true)
		if b.consec >= b.opts.FailureThreshold || b.rateTripped() {
			b.state = Open
			b.trans.ClosedToOpen++
			b.openedAt = b.opts.Now()
		}
	case HalfOpen:
		// The probe failed: re-open and restart the cooldown.
		b.state = Open
		b.trans.HalfOpenToOpen++
		b.probing = false
		b.openedAt = b.opts.Now()
	case Open:
		// Straggler failure; the breaker is already open.
	}
}

// RecordCancel reports that an admitted request ended with no health
// signal either way — typically the caller's own context was cancelled
// before the child could prove anything. It only releases a held
// half-open probe slot (the next caller becomes the probe); closed-state
// failure history is untouched.
func (b *Breaker) RecordCancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

// push records one outcome in the sliding window (caller holds mu).
func (b *Breaker) push(failed bool) {
	b.window[b.windowPos] = failed
	b.windowPos = (b.windowPos + 1) % len(b.window)
	if b.windowLen < len(b.window) {
		b.windowLen++
	}
}

// rateTripped reports whether the windowed error rate crossed the
// configured threshold (caller holds mu).
func (b *Breaker) rateTripped() bool {
	if b.opts.ErrorRate <= 0 || b.windowLen < b.opts.MinSamples {
		return false
	}
	fails := 0
	for i := 0; i < b.windowLen; i++ {
		if b.window[i] {
			fails++
		}
	}
	return float64(fails) >= b.opts.ErrorRate*float64(b.windowLen)
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns a consistent copy of the breaker's counters.
func (b *Breaker) Snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:       b.state,
		Successes:   b.successes,
		Failures:    b.failures,
		Refusals:    b.refusals,
		Transitions: b.trans,
	}
}
