package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerOptions{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		Now:              clk.now,
	})
	return b, clk
}

func TestBreakerFullCycle(t *testing.T) {
	b, clk := newTestBreaker(3, time.Second)

	if b.State() != Closed {
		t.Fatalf("new breaker state = %v, want Closed", b.State())
	}
	// Two failures stay below the threshold.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.RecordFailure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want Closed", b.State())
	}
	// A success resets the consecutive count.
	b.Allow()
	b.RecordSuccess()
	for i := 0; i < 2; i++ {
		b.Allow()
		b.RecordFailure()
	}
	if b.State() != Closed {
		t.Fatalf("consecutive count not reset by success: state = %v", b.State())
	}
	// Third consecutive failure trips it.
	b.Allow()
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("state after threshold failures = %v, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	// Cooldown elapses: exactly one probe is admitted.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after probe admit = %v, want HalfOpen", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: re-open, cooldown restarts.
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request immediately")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	// Probe succeeds: close.
	b.RecordSuccess()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want Closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a request")
	}
	b.RecordSuccess()

	// The transition counters must be exact.
	want := Transitions{
		ClosedToOpen:     1,
		OpenToHalfOpen:   2,
		HalfOpenToClosed: 1,
		HalfOpenToOpen:   1,
	}
	if got := b.Snapshot().Transitions; got != want {
		t.Fatalf("transitions = %+v, want %+v", got, want)
	}
}

func TestBreakerErrorRateTrip(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerOptions{
		FailureThreshold: 1000, // out of reach: only the rate can trip
		ErrorRate:        0.5,
		WindowSize:       10,
		MinSamples:       10,
		Cooldown:         time.Second,
		Now:              clk.now,
	})
	// Alternate success/failure: at a 50% threshold with 10 samples the
	// breaker must trip once the window fills (the tenth outcome, a
	// failure, is what runs the rate check).
	for i := 0; i < 10 && b.State() == Closed; i++ {
		b.Allow()
		if i%2 == 1 {
			b.RecordFailure()
		} else {
			b.RecordSuccess()
		}
	}
	if b.State() != Open {
		t.Fatalf("state after 50%% failures over full window = %v, want Open", b.State())
	}
	// Recovery resets the window: a single post-recovery failure must
	// not re-trip off stale samples.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.RecordSuccess()
	b.Allow()
	b.RecordFailure()
	if b.State() != Closed {
		t.Fatalf("stale window re-tripped breaker: state = %v", b.State())
	}
}

func TestBreakerReadyHasNoSideEffects(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.RecordFailure()
	if b.Ready() {
		t.Fatal("Ready true while open inside cooldown")
	}
	clk.advance(time.Second)
	// Ready must not consume the probe slot however often it is asked.
	for i := 0; i < 5; i++ {
		if !b.Ready() {
			t.Fatalf("Ready false after cooldown (call %d)", i)
		}
	}
	if b.State() != Open {
		t.Fatalf("Ready transitioned state to %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("Allow refused after cooldown despite Ready reporting admissible")
	}
	if b.Ready() {
		t.Fatal("Ready true while the half-open probe is in flight")
	}
	if b.Snapshot().Refusals != 0 {
		t.Fatalf("Ready counted refusals: %d", b.Snapshot().Refusals)
	}
}

// TestBreakerHalfOpenSingleProbe hammers a half-open breaker from many
// goroutines: exactly one must be admitted per half-open episode. Run
// with -race in CI.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	for round := 0; round < 20; round++ {
		b.Allow()
		b.RecordFailure() // trip
		clk.advance(time.Second)

		var admitted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		wg.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d goroutines admitted in half-open, want exactly 1", round, n)
		}
		b.RecordSuccess() // close again for the next round
	}
	tr := b.Snapshot().Transitions
	want := Transitions{ClosedToOpen: 20, OpenToHalfOpen: 20, HalfOpenToClosed: 20}
	if tr != want {
		t.Fatalf("transitions = %+v, want %+v", tr, want)
	}
}

func TestBreakerStragglersDoNotCorruptState(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.Allow()
	b.Allow()
	b.RecordFailure()
	b.RecordFailure() // trips
	if b.State() != Open {
		t.Fatalf("state = %v, want Open", b.State())
	}
	// Stragglers from before the trip report in while open: no effect.
	b.RecordSuccess()
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("straggler outcome changed open state to %v", b.State())
	}
	if got := b.Snapshot().Transitions.ClosedToOpen; got != 1 {
		t.Fatalf("ClosedToOpen = %d, want 1", got)
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after stragglers")
	}
	b.RecordSuccess()
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed", b.State())
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Closed: "closed", Open: "open", HalfOpen: "half_open", State(9): "unknown"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
