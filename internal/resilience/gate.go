package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrShed is returned when a request waited its full queue budget
// without an in-flight slot freeing up. Maps to 503 + Retry-After.
var ErrShed = errors.New("resilience: overloaded, request shed after queue wait")

// ErrQueueFull is returned when the wait queue itself is at capacity,
// so the request is refused immediately. Maps to 429 + Retry-After.
var ErrQueueFull = errors.New("resilience: wait queue full, request refused")

// GateStats is a point-in-time admission snapshot (JSON-tagged for the
// server's /healthz payload).
type GateStats struct {
	InFlight  int64         `json:"in_flight"`
	Waiting   int64         `json:"waiting"`
	Admitted  int64         `json:"admitted"`
	Shed      int64         `json:"shed"`       // timed out waiting
	Refused   int64         `json:"refused"`    // queue full
	MaxSlots  int           `json:"max_slots"`  // concurrent admission budget
	QueueCap  int           `json:"queue_cap"`  // waiters beyond the budget
	QueueWait time.Duration `json:"queue_wait"` // ns a waiter may queue
}

// Gate bounds concurrent admitted work. Up to maxInflight requests run
// at once; up to queueCap more wait at most queueWait for a slot, after
// which they are shed. Requests beyond the queue are refused outright.
type Gate struct {
	slots     chan struct{}
	queueCap  int64
	queueWait time.Duration

	waiting  atomic.Int64
	inflight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
	refused  atomic.Int64
}

// NewGate builds a gate. maxInflight < 1 is clamped to 1; queueCap < 0
// is clamped to 0 (no waiting: every overflow request is refused).
func NewGate(maxInflight, queueCap int, queueWait time.Duration) *Gate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	if queueWait < 0 {
		queueWait = 0
	}
	return &Gate{
		slots:     make(chan struct{}, maxInflight),
		queueCap:  int64(queueCap),
		queueWait: queueWait,
	}
}

// Acquire claims an in-flight slot, waiting up to the queue budget when
// the gate is saturated. On success it returns a release func the
// caller must invoke exactly once. On failure it returns ErrQueueFull,
// ErrShed, or the ctx's error if the caller's context ended first.
func (g *Gate) Acquire(ctx context.Context) (func(), error) {
	// Fast path: a slot is free right now.
	select {
	case g.slots <- struct{}{}:
		return g.admit(), nil
	default:
	}
	// Saturated: join the wait queue if there's room.
	if g.waiting.Add(1) > g.queueCap {
		g.waiting.Add(-1)
		g.refused.Add(1)
		return nil, ErrQueueFull
	}
	defer g.waiting.Add(-1)
	timer := time.NewTimer(g.queueWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.admit(), nil
	case <-timer.C:
		g.shed.Add(1)
		return nil, ErrShed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *Gate) admit() func() {
	g.admitted.Add(1)
	g.inflight.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			g.inflight.Add(-1)
			<-g.slots
		}
	}
}

// Stats returns a snapshot of the gate's counters.
func (g *Gate) Stats() GateStats {
	return GateStats{
		InFlight:  g.inflight.Load(),
		Waiting:   g.waiting.Load(),
		Admitted:  g.admitted.Load(),
		Shed:      g.shed.Load(),
		Refused:   g.refused.Load(),
		MaxSlots:  cap(g.slots),
		QueueCap:  int(g.queueCap),
		QueueWait: g.queueWait,
	}
}
