package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateFastPath(t *testing.T) {
	g := NewGate(2, 2, 50*time.Millisecond)
	rel1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	rel2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := g.Stats().InFlight; got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	rel1()
	rel1() // double release must be a no-op
	rel2()
	st := g.Stats()
	if st.InFlight != 0 || st.Admitted != 2 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestGateShedAfterWait(t *testing.T) {
	g := NewGate(1, 4, 20*time.Millisecond)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	_, err = g.Acquire(context.Background())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("saturated acquire error = %v, want ErrShed", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after %v, want a full queue wait (~20ms)", waited)
	}
	if got := g.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
}

func TestGateQueueFull(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Fill the single queue slot with a parked waiter.
	parked := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background())
		parked <- err
	}()
	// Wait until the waiter is actually queued.
	for i := 0; i < 200 && g.Stats().Waiting == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.Stats().Waiting != 1 {
		t.Fatal("waiter never queued")
	}
	_, err = g.Acquire(context.Background())
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire error = %v, want ErrQueueFull", err)
	}
	if got := g.Stats().Refused; got != 1 {
		t.Fatalf("Refused = %d, want 1", got)
	}
	rel() // free the slot: the parked waiter must get it
	if err := <-parked; err != nil {
		t.Fatalf("parked waiter error = %v, want admitted", err)
	}
}

func TestGateCtxCancelWhileWaiting(t *testing.T) {
	g := NewGate(1, 2, time.Second)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		done <- err
	}()
	for i := 0; i < 200 && g.Stats().Waiting == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	if g.Stats().Waiting != 0 {
		t.Fatalf("Waiting = %d after cancel, want 0", g.Stats().Waiting)
	}
}

// TestGateConcurrentInvariant hammers the gate and checks the in-flight
// bound is never exceeded. Run with -race in CI.
func TestGateConcurrentInvariant(t *testing.T) {
	const slots = 4
	g := NewGate(slots, 64, 50*time.Millisecond)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				rel, err := g.Acquire(context.Background())
				if err != nil {
					continue
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Microsecond)
				cur.Add(-1)
				rel()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("observed %d concurrent holders, gate max is %d", p, slots)
	}
	st := g.Stats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

func TestGateClamps(t *testing.T) {
	g := NewGate(0, -1, -time.Second)
	st := g.Stats()
	if st.MaxSlots != 1 || st.QueueCap != 0 || st.QueueWait != 0 {
		t.Fatalf("clamped stats = %+v", st)
	}
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Zero queue capacity: overflow is refused immediately.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("zero-queue overflow error = %v, want ErrQueueFull", err)
	}
}
