package server

import (
	"net/http/httptest"
	"testing"

	"seedb/internal/backend"
	"seedb/internal/backend/sqlbe"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/sqldriver"
)

// newMultiBackendServer loads a census and registers a database/sql
// backend named "sql" next to the embedded default.
func newMultiBackendServer(t *testing.T) *httptest.Server {
	t.Helper()
	db := sqldb.NewDB()
	spec := dataset.Census().WithRows(3000)
	if _, err := dataset.Build(db, spec, sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	if err := s.RegisterBackend("sql", sqlbe.New(sqldriver.Open(db), sqlbe.Options{})); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func TestRegisterBackendValidation(t *testing.T) {
	s := New(sqldb.NewDB())
	if err := s.RegisterBackend("", backend.NewEmbedded(sqldb.NewDB())); err == nil {
		t.Error("empty backend name should be rejected")
	}
	if err := s.RegisterBackend(DefaultBackendName, backend.NewEmbedded(sqldb.NewDB())); err == nil {
		t.Error("duplicate backend name should be rejected")
	}
	if err := s.RegisterBackend("other", backend.NewEmbedded(sqldb.NewDB())); err != nil {
		t.Errorf("fresh name rejected: %v", err)
	}
}

func TestHealthzListsBackends(t *testing.T) {
	srv := newMultiBackendServer(t)
	var out struct {
		Backends []backendInfo `json:"backends"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &out); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if len(out.Backends) != 2 {
		t.Fatalf("backends = %+v, want 2", out.Backends)
	}
	// Default first.
	if b := out.Backends[0]; b.Name != DefaultBackendName || !b.Default ||
		!b.SupportsVectorized || !b.SupportsPhasedExecution {
		t.Errorf("default backend entry = %+v", b)
	}
	if b := out.Backends[1]; b.Name != "sql" || b.Default ||
		b.SupportsVectorized || b.SupportsPhasedExecution {
		t.Errorf("sql backend entry = %+v", b)
	}
}

func TestRecommendBackendSelection(t *testing.T) {
	srv := newMultiBackendServer(t)
	// pruning "none" + serial scans make the phased run's final
	// utilities bit-identical to the single-pass SHARING run the sql
	// backend degrades to, so the winner comparison is deterministic.
	req := map[string]any{
		"table":            "census",
		"target_where":     "marital = 'Unmarried'",
		"k":                2,
		"strategy":         "comb",
		"pruning":          "none",
		"cache":            false,
		"scan_parallelism": 1,
	}

	var def RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &def); code != 200 {
		t.Fatalf("default backend recommend = %d", code)
	}
	if def.Backend != DefaultBackendName || def.Strategy != "COMB" {
		t.Errorf("default response backend/strategy = %q/%q", def.Backend, def.Strategy)
	}

	// The sql backend serves the same request, degraded to SHARING
	// (no row-range scans) and never vectorized.
	req["backend"] = "sql"
	var ext RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &ext); code != 200 {
		t.Fatalf("sql backend recommend = %d", code)
	}
	if ext.Backend != "sql" || ext.Strategy != "SHARING" {
		t.Errorf("sql response backend/strategy = %q/%q", ext.Backend, ext.Strategy)
	}
	if ext.Vectorized != 0 || ext.QueriesExecuted == 0 {
		t.Errorf("sql executor counters = %+v", ext)
	}
	if len(ext.Recommendations) != len(def.Recommendations) {
		t.Fatalf("recommendation counts differ: %d vs %d",
			len(ext.Recommendations), len(def.Recommendations))
	}
	// Both backends must agree on which views win.
	for i := range def.Recommendations {
		d, e := def.Recommendations[i], ext.Recommendations[i]
		if d.Dimension != e.Dimension || d.Measure != e.Measure || d.Aggregate != e.Aggregate {
			t.Errorf("rank %d: %s(%s) by %s vs %s(%s) by %s",
				i+1, d.Aggregate, d.Measure, d.Dimension, e.Aggregate, e.Measure, e.Dimension)
		}
	}

	// Unknown backend names are a client error.
	req["backend"] = "nope"
	var errResp map[string]any
	if code := postJSON(t, srv.URL+"/api/recommend", req, &errResp); code != 400 {
		t.Errorf("unknown backend = %d, want 400", code)
	}
}
