// Ingest and synthetic-load endpoints, plus the reader/writer guard
// that makes them safe to run concurrently with query traffic.
//
// The embedded store's Table contract says writes are not synchronized
// with reads, and every query the server executes flows through a
// registered backend.Backend (PR 3's seam). That makes the seam the one
// chokepoint where a server-level reader/writer lock covers all
// execution paths at once: RegisterBackend wraps each backend so Exec
// and introspection hold the read side, and the mutating handlers
// (/api/ingest, /api/datasets/load, /api/datasets/synth) hold the write
// side. Readers proceed concurrently with each other exactly as before;
// a write drains in-flight queries, applies, and releases.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"seedb/internal/backend"
	"seedb/internal/backend/shardbe"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

// guardedBackend wraps a backend so every read-side operation holds the
// server's data lock, serializing queries against ingest writes without
// reducing query-query concurrency.
type guardedBackend struct {
	inner backend.Backend
	mu    *sync.RWMutex
}

func (g guardedBackend) Name() string                       { return g.inner.Name() }
func (g guardedBackend) Capabilities() backend.Capabilities { return g.inner.Capabilities() }

func (g guardedBackend) TableInfo(ctx context.Context, table string) (backend.TableInfo, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.inner.TableInfo(ctx, table)
}

func (g guardedBackend) TableVersion(ctx context.Context, table string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.inner.TableVersion(ctx, table)
}

func (g guardedBackend) TableStats(ctx context.Context, table string) (*backend.TableStats, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.inner.TableStats(ctx, table)
}

func (g guardedBackend) Exec(ctx context.Context, query string, opts backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.inner.Exec(ctx, query, opts)
}

// ingestRequest is the POST /api/ingest payload: rows as string cells
// in schema column order, "" meaning NULL — the CSV cell format, so one
// decoder (dataset.ParseField) serves files and the wire.
type ingestRequest struct {
	Table string     `json:"table"`
	Rows  [][]string `json:"rows"`
}

// ingestResponse reports an append.
type ingestResponse struct {
	Table     string `json:"table"`
	Appended  int    `json:"appended"`
	TotalRows int    `json:"total_rows"`
}

// handleIngest implements POST /api/ingest: append rows to a loaded
// table while the server keeps answering queries. Appends invalidate
// cached results for the table via the existing version tokens (every
// append bumps Table.Generation). When embedded sharding is enabled the
// rows are also routed into the shard children, keeping {"backend":
// "shard"} answers consistent with the primary store.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no rows to ingest"))
		return
	}
	t, ok := s.db.Table(req.Table)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("table %q does not exist", req.Table))
		return
	}
	schema := t.Schema()

	// Decode every cell before taking the write lock, so malformed
	// requests cost readers nothing.
	parsed := make([][]sqldb.Value, len(req.Rows))
	for i, cells := range req.Rows {
		if len(cells) != schema.NumColumns() {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("row %d has %d cells, table %s has %d columns", i, len(cells), req.Table, schema.NumColumns()))
			return
		}
		vals := make([]sqldb.Value, len(cells))
		for j, cell := range cells {
			v, err := dataset.ParseField(cell, schema.Column(j).Type)
			if err != nil {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("row %d column %s: %w", i, schema.Column(j).Name, err))
				return
			}
			vals[j] = v
		}
		parsed[i] = vals
	}

	s.mu.RLock()
	shardDBs := s.shardDBs
	s.mu.RUnlock()

	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	for i, vals := range parsed {
		if err := t.AppendRow(vals); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("appending row %d: %w", i, err))
			return
		}
		if len(shardDBs) > 0 {
			if err := shardbe.AppendRow(shardDBs, req.Table, shardbe.RoundRobin{}, vals); err != nil {
				writeError(w, http.StatusInternalServerError, fmt.Errorf("mirroring row %d to shards: %w", i, err))
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Table:     req.Table,
		Appended:  len(parsed),
		TotalRows: t.NumRows(),
	})
}

// synthLoadRequest is the POST /api/datasets/synth payload.
type synthLoadRequest struct {
	Spec   dataset.SynthSpec `json:"spec"`
	Layout string            `json:"layout"` // "row" or "col" (default col)
	Rows   int               `json:"rows"`   // override spec rows when > 0
	Seed   int64             `json:"seed"`   // override spec seed when != 0
}

// handleLoadSynth implements POST /api/datasets/synth: generate a
// synthetic-spec table directly inside the server. The load driver uses
// it to populate a remote server before replay (generation streams
// server-side, so a million-row load ships a ~1 KB spec instead of a
// CSV).
func (s *Server) handleLoadSynth(w http.ResponseWriter, r *http.Request) {
	var req synthLoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec := req.Spec
	if req.Rows > 0 {
		spec = spec.WithRows(req.Rows)
	}
	if req.Seed != 0 {
		spec = spec.WithSeed(req.Seed)
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	layout, err := parseLayout(req.Layout)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The write lock covers both the build and the shard re-scatter:
	// scatter drops and recreates child tables, which concurrent shard
	// queries must never observe mid-flight.
	s.dataMu.Lock()
	_, buildErr := dataset.BuildSynth(s.db, spec, layout)
	if buildErr == nil {
		buildErr = s.scatterShards(spec.Name)
	}
	s.dataMu.Unlock()
	if buildErr != nil {
		writeError(w, http.StatusConflict, buildErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"table": spec.Name, "rows": spec.Rows})
}
