package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

func TestIngestEndpoint(t *testing.T) {
	db := sqldb.NewDB()
	spec := dataset.Census().WithRows(1000)
	if _, err := dataset.Build(db, spec, sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	srv := httptest.NewServer(s)
	defer srv.Close()

	t.Run("appends and bumps the version", func(t *testing.T) {
		before, _ := db.TableVersion("census")
		cols := 0
		if tab, ok := db.Table("census"); ok {
			cols = tab.Schema().NumColumns()
		}
		row := make([]string, cols)
		for i := range row {
			row[i] = "" // all NULL is a valid row
		}
		var resp ingestResponse
		status := postJSON(t, srv.URL+"/api/ingest", ingestRequest{
			Table: "census",
			Rows:  [][]string{row, row, row},
		}, &resp)
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if resp.Appended != 3 || resp.TotalRows != 1003 {
			t.Fatalf("appended %d total %d, want 3/1003", resp.Appended, resp.TotalRows)
		}
		after, _ := db.TableVersion("census")
		if before == after {
			t.Fatal("ingest did not change the table version (cached results would go stale)")
		}
	})

	t.Run("rejects bad requests", func(t *testing.T) {
		cases := []struct {
			req  ingestRequest
			want int
		}{
			{ingestRequest{Table: "census"}, http.StatusBadRequest},                                       // no rows
			{ingestRequest{Table: "ghost", Rows: [][]string{{"x"}}}, http.StatusNotFound},                 // no table
			{ingestRequest{Table: "census", Rows: [][]string{{"just-one"}}}, http.StatusBadRequest},       // width
			{ingestRequest{Table: "census", Rows: [][]string{make([]string, 20)}}, http.StatusBadRequest}, // width
		}
		for _, tc := range cases {
			var e errorResponse
			if status := postJSON(t, srv.URL+"/api/ingest", tc.req, &e); status != tc.want {
				t.Errorf("req %+v: status %d, want %d (%s)", tc.req, status, tc.want, e.Error)
			}
		}
	})

	t.Run("rejects unparsable cells before writing", func(t *testing.T) {
		tab, _ := db.Table("census")
		before := tab.NumRows()
		row := make([]string, tab.Schema().NumColumns())
		// Find a float column and poison it.
		for i := 0; i < tab.Schema().NumColumns(); i++ {
			if tab.Schema().Column(i).Type == sqldb.TypeFloat {
				row[i] = "not-a-number"
				break
			}
		}
		var e errorResponse
		if status := postJSON(t, srv.URL+"/api/ingest", ingestRequest{
			Table: "census", Rows: [][]string{row},
		}, &e); status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 (%s)", status, e.Error)
		}
		if tab.NumRows() != before {
			t.Fatal("failed ingest partially applied")
		}
	})
}

func TestIngestMirrorsToShards(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := dataset.Build(db, dataset.Census().WithRows(600), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	if err := s.EnableSharding(3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	tab, _ := db.Table("census")
	row := make([]string, tab.Schema().NumColumns())
	var resp ingestResponse
	if status := postJSON(t, srv.URL+"/api/ingest", ingestRequest{
		Table: "census", Rows: [][]string{row, row},
	}, &resp); status != http.StatusOK {
		t.Fatalf("ingest status %d", status)
	}

	// The shard children must hold every row the primary does.
	total := 0
	for _, sdb := range s.shardDBs {
		st, ok := sdb.Table("census")
		if !ok {
			t.Fatal("shard child missing table")
		}
		total += st.NumRows()
	}
	if total != 602 {
		t.Fatalf("shards hold %d rows, primary holds 602", total)
	}

	// And a sharded COUNT(*) must agree with the primary, post-append.
	var q struct {
		Rows [][]string `json:"rows"`
	}
	if status := postJSON(t, srv.URL+"/api/query", map[string]any{
		"sql": "SELECT COUNT(*) FROM census", "backend": "shard",
	}, &q); status != http.StatusOK {
		t.Fatalf("shard query status %d", status)
	}
	if len(q.Rows) != 1 || q.Rows[0][0] != "602" {
		t.Fatalf("sharded COUNT(*) = %v, want 602", q.Rows)
	}
}

func TestLoadSynthEndpoint(t *testing.T) {
	s := New(sqldb.NewDB())
	srv := httptest.NewServer(s)
	defer srv.Close()

	var resp map[string]any
	status := postJSON(t, srv.URL+"/api/datasets/synth", synthLoadRequest{
		Spec: dataset.TrafficSpec(), Rows: 2500, Seed: 5,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, resp)
	}
	if resp["table"] != "traffic" || resp["rows"] != float64(2500) {
		t.Fatalf("unexpected response %v", resp)
	}

	// The table must be immediately recommendable.
	var rec RecommendResponse
	status = postJSON(t, srv.URL+"/api/recommend", RecommendRequest{
		Table:       "traffic",
		TargetWhere: "plan = 'free'",
		K:           3,
	}, &rec)
	if status != http.StatusOK {
		t.Fatalf("recommend over synth table: status %d", status)
	}
	if len(rec.Recommendations) == 0 {
		t.Fatal("no recommendations over the synthetic table")
	}

	// Duplicate load conflicts; invalid specs are rejected.
	var e errorResponse
	if status := postJSON(t, srv.URL+"/api/datasets/synth", synthLoadRequest{
		Spec: dataset.TrafficSpec(), Rows: 10,
	}, &e); status != http.StatusConflict {
		t.Fatalf("duplicate synth load: status %d, want 409", status)
	}
	bad := dataset.TrafficSpec()
	bad.Columns[0].Dist = "pareto"
	if status := postJSON(t, srv.URL+"/api/datasets/synth", synthLoadRequest{Spec: bad}, &e); status != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400 (%s)", status, e.Error)
	}
}

// TestConcurrentIngestAndQueries is the in-process version of the load
// harness's soak invariant: appends racing full query traffic (raw
// queries + recommendations, embedded and sharded) must never produce a
// non-2xx response or a torn read. Run under -race in CI.
func TestConcurrentIngestAndQueries(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := dataset.Build(db, dataset.Census().WithRows(800), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	if err := s.EnableSharding(2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	tab, _ := db.Table("census")
	blank := make([]string, tab.Schema().NumColumns())

	const (
		writers       = 2
		readers       = 4
		opsPerWorker  = 25
		rowsPerIngest = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, (writers+readers)*opsPerWorker)

	// Goroutine-safe POST (postJSON may t.Fatal, which is only legal on
	// the test goroutine).
	post := func(path string, v any) {
		body, err := json.Marshal(v)
		if err != nil {
			errs <- err
			return
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			errs <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([][]string, rowsPerIngest)
			for i := range batch {
				batch[i] = blank
			}
			for i := 0; i < opsPerWorker; i++ {
				post("/api/ingest", ingestRequest{Table: "census", Rows: batch})
			}
		}()
	}
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			backendName := ""
			if rdr%2 == 1 {
				backendName = ShardBackendName
			}
			for i := 0; i < opsPerWorker; i++ {
				if i%3 == 0 {
					post("/api/query", map[string]any{
						"sql": "SELECT sex, COUNT(*) FROM census GROUP BY sex", "backend": backendName,
					})
				} else {
					post("/api/recommend", RecommendRequest{
						Table:       "census",
						TargetWhere: "marital = 'Unmarried'",
						K:           2,
						Backend:     backendName,
					})
				}
			}
		}(rdr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Post-race invariants: primary and shards agree on the row count.
	want := 800 + writers*opsPerWorker*rowsPerIngest
	if got := tab.NumRows(); got != want {
		t.Fatalf("primary holds %d rows, want %d", got, want)
	}
	total := 0
	for _, sdb := range s.shardDBs {
		st, _ := sdb.Table("census")
		total += st.NumRows()
	}
	if total != want {
		t.Fatalf("shards hold %d rows, want %d", total, want)
	}

	// And the executor invariant the telemetry PR pinned still holds:
	// the query-latency histogram counts exactly queries_executed.
	var health struct {
		Executor struct {
			QueriesExecuted int `json:"queries_executed"`
		} `json:"executor"`
	}
	if status := getJSON(t, srv.URL+"/healthz", &health); status != http.StatusOK {
		t.Fatal("healthz unreachable after race")
	}
	if got := int(s.Telemetry().QueryLatency.Count()); got != health.Executor.QueriesExecuted {
		t.Fatalf("query histogram count %d != queries_executed %d", got, health.Executor.QueriesExecuted)
	}
	if health.Executor.QueriesExecuted == 0 {
		t.Fatal("no queries recorded")
	}
}
