package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/faultbe"
	"seedb/internal/backend/shardbe"
	"seedb/internal/dataset"
	"seedb/internal/resilience"
	"seedb/internal/sqldb"
)

// panicBackend explodes on Exec: the fixture for the panic-containment
// middleware.
type panicBackend struct{}

func (panicBackend) Name() string                                        { return "boom" }
func (panicBackend) Capabilities() backend.Capabilities                  { return backend.Capabilities{} }
func (panicBackend) TableVersion(context.Context, string) (string, bool) { return "v0", true }
func (panicBackend) TableInfo(context.Context, string) (backend.TableInfo, error) {
	return backend.TableInfo{}, nil
}
func (panicBackend) TableStats(context.Context, string) (*backend.TableStats, error) {
	return &backend.TableStats{}, nil
}
func (panicBackend) Exec(context.Context, string, backend.ExecOptions) (*backend.Rows, backend.ExecStats, error) {
	panic("injected handler panic")
}

// lockedBuffer is a race-safe io.Writer for capturing the slow-query log.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newChaosServer loads census behind a 3-child shard router with every
// child wrapped in a faultbe, so tests can fail any subset of the ring.
func newChaosServer(t *testing.T, opts shardbe.Options) (*Server, *httptest.Server, []*faultbe.Fault) {
	t.Helper()
	db := sqldb.NewDB()
	if _, err := dataset.Build(db, dataset.Census().WithRows(900), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	faults := make([]*faultbe.Fault, 3)
	err := s.EnableShardingOpts(3, opts, func(i int, be backend.Backend) backend.Backend {
		faults[i] = faultbe.Wrap(be)
		return faults[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv, faults
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestRecommendDegradedVsStrict pins the HTTP degradation contract with
// one of three shard children down: allow_partial requests get 200 plus
// the degraded markers, strict requests get 502 — never a silent
// partial answer, never a 500.
func TestRecommendDegradedVsStrict(t *testing.T) {
	_, srv, faults := newChaosServer(t, shardbe.Options{
		Breakers: &resilience.BreakerOptions{},
	})
	faults[0].SetDown(backend.ErrUnavailable)

	req := map[string]any{
		"table":         "census",
		"target_where":  "marital = 'Unmarried'",
		"k":             3,
		"strategy":      "sharing",
		"backend":       ShardBackendName,
		"allow_partial": true,
	}
	var rec RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &rec); code != 200 {
		t.Fatalf("allow_partial recommend = %d, want 200", code)
	}
	if !rec.Degraded {
		t.Error("response not marked degraded")
	}
	if len(rec.DegradedShards) != 1 || rec.DegradedShards[0] != 0 {
		t.Errorf("degraded_shards = %v, want [0]", rec.DegradedShards)
	}
	if len(rec.Recommendations) == 0 {
		t.Error("degraded response carried no recommendations")
	}

	// Degraded results are never admitted to the result cache: the same
	// request repeated is recomputed, not served from cache.
	var again RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &again); code != 200 {
		t.Fatalf("repeat allow_partial recommend = %d", code)
	}
	if again.ServedFromCache {
		t.Error("degraded result was served from cache on repeat")
	}
	if !again.Degraded {
		t.Error("repeat response not marked degraded")
	}

	// Strict: the same request without allow_partial is an outage.
	delete(req, "allow_partial")
	var e struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, srv.URL+"/api/recommend", req, &e); code != http.StatusBadGateway {
		t.Fatalf("strict recommend over down child = %d (%s), want 502", code, e.Error)
	}

	// The degradation shows up on /metrics and /healthz.
	code, metrics := getBody(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, family := range []string{
		"seedb_degraded_requests_total",
		"seedb_breaker_state",
		"seedb_breaker_transitions_total",
		"seedb_shed_requests_total",
		"seedb_panics_total",
		"seedb_stale_serves_total",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	var health struct {
		Resilience struct {
			DegradedRequests float64         `json:"degraded_requests"`
			Breakers         []breakerHealth `json:"breakers"`
		} `json:"resilience"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if health.Resilience.DegradedRequests < 1 {
		t.Errorf("healthz degraded_requests = %v, want >= 1", health.Resilience.DegradedRequests)
	}
	if len(health.Resilience.Breakers) != 3 {
		t.Errorf("healthz breakers = %d entries, want 3", len(health.Resilience.Breakers))
	}
}

// TestStaleServeOnOutage pins the stale-on-outage contract: a warm
// request shape keeps answering (marked "stale": true) when the whole
// ring goes down, while requests that did not opt in still get 502.
func TestStaleServeOnOutage(t *testing.T) {
	s, srv, faults := newChaosServer(t, shardbe.Options{})
	req := map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            3,
		"strategy":     "sharing",
		"backend":      ShardBackendName,
		"serve_stale":  true,
	}
	var fresh RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &fresh); code != 200 {
		t.Fatalf("warm recommend = %d", code)
	}
	if fresh.Stale {
		t.Fatal("healthy response marked stale")
	}

	// Ingest bumps the table version so the outage request cannot be
	// answered from the regular (version-keyed) result cache.
	tab, _ := s.db.Table("census")
	row := make([]string, tab.Schema().NumColumns())
	if code := postJSON(t, srv.URL+"/api/ingest", ingestRequest{
		Table: "census", Rows: [][]string{row},
	}, nil); code != 200 {
		t.Fatalf("ingest = %d", code)
	}
	for _, f := range faults {
		f.SetDown(backend.ErrUnavailable)
	}

	var stale RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &stale); code != 200 {
		t.Fatalf("outage recommend with serve_stale = %d, want 200", code)
	}
	if !stale.Stale {
		t.Error("outage response not marked stale")
	}
	if len(stale.Recommendations) != len(fresh.Recommendations) {
		t.Errorf("stale recommendations = %d, fresh had %d",
			len(stale.Recommendations), len(fresh.Recommendations))
	}

	// Without the opt-in the outage surfaces as 502.
	delete(req, "serve_stale")
	if code := postJSON(t, srv.URL+"/api/recommend", req, nil); code != http.StatusBadGateway {
		t.Fatalf("outage recommend without serve_stale = %d, want 502", code)
	}

	code, metrics := getBody(t, srv.URL+"/metrics")
	if code != 200 || !strings.Contains(metrics, "seedb_stale_serves_total 1") {
		t.Errorf("/metrics should count 1 stale serve (code %d)", code)
	}
}

// TestPanicContainment: a handler panic becomes a 500 with the panic
// counter bumped and a stack in the slow-query log — and the server
// keeps serving afterwards.
func TestPanicContainment(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := dataset.Build(db, dataset.Census().WithRows(200), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	if err := s.RegisterBackend("boom", panicBackend{}); err != nil {
		t.Fatal(err)
	}
	slow := &lockedBuffer{}
	s.SetSlowQueryLog(slow, time.Hour) // only panics should appear
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var e struct {
		Error string `json:"error"`
	}
	code := postJSON(t, srv.URL+"/api/query", map[string]any{
		"sql": "SELECT COUNT(*) FROM census", "backend": "boom",
	}, &e)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", code)
	}
	if !strings.Contains(e.Error, "internal error") {
		t.Errorf("error body = %q, want internal error marker", e.Error)
	}

	logged := slow.String()
	if !strings.Contains(logged, `"panic"`) || !strings.Contains(logged, "/api/query") {
		t.Errorf("slow log missing panic entry: %q", logged)
	}
	if !strings.Contains(logged, "injected handler panic") {
		t.Errorf("slow log missing panic stack: %q", logged)
	}
	code, metrics := getBody(t, srv.URL+"/metrics")
	if code != 200 || !strings.Contains(metrics, "seedb_panics_total 1") {
		t.Errorf("/metrics should count the panic (code %d)", code)
	}

	// The process survived: normal traffic still works.
	var q queryResponse
	if code := postJSON(t, srv.URL+"/api/query", map[string]any{
		"sql": "SELECT COUNT(*) FROM census",
	}, &q); code != 200 {
		t.Fatalf("query after panic = %d, want 200", code)
	}
}

// TestAdmissionShed: with the single query slot held, an over-limit
// request waits its queue budget and is shed with 503 + Retry-After,
// while /healthz stays reachable. Releasing the slot restores service.
func TestAdmissionShed(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := dataset.Build(db, dataset.Census().WithRows(200), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	s.SetAdmission(1, 30*time.Millisecond)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	release, err := s.queryGate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/query", "application/json",
		strings.NewReader(`{"sql":"SELECT COUNT(*) FROM census"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated query = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After header")
	}

	// Health and metrics are deliberately ungated.
	var health struct {
		Resilience struct {
			QueryGate *resilience.GateStats `json:"query_gate"`
		} `json:"resilience"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Fatalf("/healthz while saturated = %d, want 200", code)
	}
	if health.Resilience.QueryGate == nil || health.Resilience.QueryGate.Shed != 1 {
		t.Errorf("healthz query_gate = %+v, want shed = 1", health.Resilience.QueryGate)
	}

	release()
	if code := postJSON(t, srv.URL+"/api/query", map[string]any{
		"sql": "SELECT COUNT(*) FROM census",
	}, nil); code != 200 {
		t.Fatalf("query after release = %d, want 200", code)
	}
}

// TestAdmissionQueueFull: when the wait queue itself is at capacity the
// next request is refused immediately with 429, and the queued requests
// all complete once the slot frees up.
func TestAdmissionQueueFull(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := dataset.Build(db, dataset.Census().WithRows(200), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	s.SetAdmission(1, 10*time.Second) // waiters park until the slot frees
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	release, err := s.queryGate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the wait queue (cap = 4 x maxInflight = 4).
	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() {
			codes <- postJSONCode(srv.URL+"/api/query", `{"sql":"SELECT COUNT(*) FROM census"}`)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.queryGate.Stats().Waiting < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters queued", s.queryGate.Stats().Waiting)
		}
		time.Sleep(time.Millisecond)
	}
	if got := postJSONCode(srv.URL+"/api/query", `{"sql":"SELECT COUNT(*) FROM census"}`); got != http.StatusTooManyRequests {
		t.Fatalf("over-queue request = %d, want 429", got)
	}

	release()
	for i := 0; i < 4; i++ {
		if code := <-codes; code != 200 {
			t.Errorf("queued request %d = %d, want 200 after slot freed", i, code)
		}
	}
	if st := s.queryGate.Stats(); st.Refused != 1 {
		t.Errorf("gate refused = %d, want 1", st.Refused)
	}
}

// postJSONCode posts a raw JSON body and returns only the status code
// (0 on transport error); helper for concurrent admission tests where
// t.Fatal is off-limits outside the main goroutine.
func postJSONCode(url, body string) int {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
