// Package server implements SeeDB's middleware HTTP API — the
// client/server architecture of Figure 3 in the paper. The SeeDB client
// (the paper's web frontend; here any HTTP client) issues the analyst's
// query and receives ranked visualization recommendations; the manual
// chart-building half of the mixed-initiative frontend maps to a raw
// query endpoint.
//
// Endpoints (all JSON):
//
//	GET  /healthz               liveness probe + cache/executor counters + backends
//	GET  /metrics               Prometheus text-format counters and histograms
//	GET  /api/datasets          built-in dataset generators
//	POST /api/datasets/load     {"name","layout","rows"} → load a builtin
//	POST /api/datasets/synth    {"spec",...} → generate a synthetic table in-server
//	POST /api/ingest            {"table","rows"} → append rows under live traffic
//	GET  /api/tables            tables with schemas and row counts
//	POST /api/query             {"sql"} → columns + rows ({"wire":true} → typed)
//	POST /api/recommend         RecommendRequest → RecommendResponse
//	GET  /api/traces            recent completed trace summaries
//	GET  /api/traces/{id}       one retained trace's full span tree
//	GET  /api/cache             result-cache statistics
//	POST /api/cache/clear       drop every cached entry
//	GET  /api/backend/caps      netbe handshake: wire protocol + capabilities
//	GET  /api/backend/info      ?table= → schema description (404 = no table)
//	GET  /api/backend/stats     ?table= → per-column statistics
//	GET  /api/backend/version   ?table= → dataset version token
//
// The four /api/backend/* endpoints plus the typed /api/query mode form
// the netbe wire protocol (internal/backend/netbe/wire): they make a
// remote seedb-server usable as a backend.Backend from another process.
// Error statuses are classified (see statusForError) so remote clients
// can retry outages (502/504) and never retry their own mistakes
// (400/404).
//
// EnablePprof additionally mounts net/http/pprof under /debug/pprof/
// (off by default: profiling endpoints expose heap contents, so they
// are opt-in via the -pprof flag on cmd/seedb-server).
//
// Requests with a wrong HTTP method receive 405 Method Not Allowed.
//
// The server owns one process-wide result cache (internal/cache) shared
// by every recommendation request, so repeated and concurrent identical
// requests from different clients are answered from memory instead of
// re-aggregating the data. It can front several backends at once
// (RegisterBackend); recommendation requests select one by name with
// {"backend": "..."} and degrade per its capabilities — see
// docs/BACKENDS.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/netbe/wire"
	"seedb/internal/backend/shardbe"
	"seedb/internal/cache"
	"seedb/internal/chart"
	"seedb/internal/core"
	"seedb/internal/dataset"
	"seedb/internal/distance"
	"seedb/internal/resilience"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// DefaultBackendName is the name the embedded store registers under.
const DefaultBackendName = "sqldb"

// ShardBackendName is the name EnableSharding registers the shard
// router under.
const ShardBackendName = "shard"

// Server is the SeeDB middleware server. It can front several backends
// at once — the embedded store is always registered under
// DefaultBackendName, and RegisterBackend adds external stores — with
// every recommendation request free to pick one by name. All backends
// share the one process-wide result cache (version tokens are
// backend-namespaced, so entries never leak across stores).
type Server struct {
	db    *sqldb.DB
	cache *cache.Cache
	mux   *http.ServeMux
	exec  executorStats
	// tel is the process-wide telemetry collector: latency histograms
	// (exported on /metrics) and the optional slow-query log. Every
	// registered engine and the shard router share it.
	tel *telemetry.Collector
	// traces retains recently completed traces for GET /api/traces;
	// traceSample is the head-sampling probability for requests that did
	// not ask for a trace themselves (SetTraceSampling; read without
	// synchronization on the hot path, so set it before serving).
	traces      *telemetry.TraceStore
	traceSample float64
	// Timeout bounds each recommendation request (default 2 minutes).
	Timeout time.Duration

	mu       sync.RWMutex
	backends map[string]*registeredBackend
	// shardDBs holds the shard children when EnableSharding registered a
	// router; dataset loads then re-scatter into them.
	shardDBs []*sqldb.DB

	// dataMu is the server-wide reader/writer lock over table data: the
	// embedded store's writes are not synchronized with reads, so every
	// registered backend is wrapped (guardedBackend) to hold the read
	// side around execution and introspection, while the mutating
	// endpoints (/api/ingest and the dataset loaders) hold the write
	// side. Query-query concurrency is untouched; a write drains
	// in-flight queries, applies, and releases.
	dataMu sync.RWMutex

	// Admission gates (SetAdmission; nil = admit everything). Queries
	// and mutating ingest/load traffic hold separate budgets so neither
	// class can starve the other. Install before serving traffic — the
	// fields are read without synchronization on the hot path.
	queryGate  *resilience.Gate
	ingestGate *resilience.Gate

	// Resilience counters for /metrics and /healthz: recovered handler
	// panics, requests answered from partial shard coverage, and
	// requests answered from the stale-result store during an outage.
	panics           atomic.Int64
	degradedRequests atomic.Int64
	staleServes      atomic.Int64
}

// registeredBackend is one named backend with its engine. raw is the
// backend as registered, before the data-lock wrapper — the handle the
// server probes for optional interfaces like breakerReporter.
type registeredBackend struct {
	name   string
	be     backend.Backend
	raw    backend.Backend
	engine *core.Engine
}

// breakerReporter is implemented by backends (the shard router with
// Options.Breakers set) that expose per-child circuit-breaker state.
type breakerReporter interface {
	BreakerStats() []resilience.BreakerStats
}

// executorStats accumulates, across every recommendation served by this
// process, how the sqldb executor ran its queries. Surfaced on /healthz
// and /metrics next to the cache counters so dashboards can see whether
// the parallel vectorized fast path — and its predicate selection
// kernels — is actually carrying the load, and why any queries fell
// back.
//
// All counters fold under one mutex through core.Metrics.Merge and are
// snapshotted under the same mutex, so a scrape concurrent with
// recommendations can never observe a torn aggregate: the RecordExec
// invariants (QueriesExecuted == VectorizedQueries + FallbackQueries,
// per-reason counts summing to FallbackQueries) hold in every snapshot,
// not just at rest. The previous per-field atomics could interleave with
// a scrape mid-record and break exactly those identities.
type executorStats struct {
	mu sync.Mutex
	// requests counts recommendations served; degraded counts the ones
	// whose strategy was rewritten by capability degradation
	// (core.Metrics.Merge only ORs the StrategyDegraded flag, so the
	// count lives here).
	requests int64
	degraded int64
	totals   core.Metrics
}

// record folds one recommendation request's metrics in.
func (e *executorStats) record(m core.Metrics) {
	e.mu.Lock()
	e.requests++
	if m.StrategyDegraded {
		e.degraded++
	}
	e.totals.Merge(m)
	e.mu.Unlock()
}

// recordQuery folds one raw /api/query execution's metrics in without
// advancing the request counter: requests counts recommendations
// served, while the executor totals — and the invariant that the query
// latency histogram's count equals queries_executed — cover manual
// chart traffic too.
func (e *executorStats) recordQuery(m core.Metrics) {
	e.mu.Lock()
	e.totals.Merge(m)
	e.mu.Unlock()
}

// snapshot returns a consistent copy of the aggregate (reasons map
// deep-copied) with the request counters.
func (e *executorStats) snapshot() (requests, degraded int64, totals core.Metrics) {
	e.mu.Lock()
	defer e.mu.Unlock()
	totals = e.totals
	if e.totals.FallbackReasons != nil {
		totals.FallbackReasons = make(map[string]int, len(e.totals.FallbackReasons))
		for r, n := range e.totals.FallbackReasons {
			totals.FallbackReasons[r] = n
		}
	}
	return e.requests, e.degraded, totals
}

// healthSnapshot renders the counters for the /healthz JSON payload.
func (e *executorStats) healthSnapshot() map[string]any {
	requests, degraded, m := e.snapshot()
	reasons := make(map[string]int, len(m.FallbackReasons))
	for r, n := range m.FallbackReasons {
		reasons[r] = n
	}
	return map[string]any{
		"requests":                   requests,
		"queries_executed":           m.QueriesExecuted,
		"vectorized_queries":         m.VectorizedQueries,
		"fallback_queries":           m.FallbackQueries,
		"fallback_reasons":           reasons,
		"max_scan_workers":           m.ScanWorkers,
		"selection_kernels":          m.SelectionKernels,
		"residual_predicates":        m.ResidualPredicates,
		"shard_queries":              m.ShardQueries,
		"shard_fanout":               m.ShardFanout,
		"shard_straggler_max_ms":     float64(m.ShardStragglerMax) / 1e6,
		"shard_partials_cached":      m.ShardPartialsCached,
		"hedged_partials":            m.HedgedPartials,
		"hedge_wins":                 m.HedgeWins,
		"net_retries":                m.NetRetries,
		"shards_degraded":            m.ShardsDegraded,
		"strategy_degraded_requests": degraded,
	}
}

// New creates a server over db with the default cache budget.
func New(db *sqldb.DB) *Server {
	return NewWithCacheBudget(db, core.DefaultCacheBudgetBytes)
}

// NewWithCacheBudget creates a server whose process-wide result cache
// has the given byte budget (<= 0 selects the default).
func NewWithCacheBudget(db *sqldb.DB, cacheBudgetBytes int64) *Server {
	s := &Server{
		db:       db,
		cache:    cache.New(cacheBudgetBytes),
		mux:      http.NewServeMux(),
		tel:      telemetry.NewCollector(),
		traces:   telemetry.NewTraceStore(0, 0),
		Timeout:  2 * time.Minute,
		backends: make(map[string]*registeredBackend),
	}
	if err := s.RegisterBackend(DefaultBackendName, backend.NewEmbedded(db)); err != nil {
		panic(err) // unreachable: the map is empty
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	s.mux.HandleFunc("POST /api/datasets/load", s.handleLoadDataset)
	s.mux.HandleFunc("POST /api/datasets/synth", s.handleLoadSynth)
	s.mux.HandleFunc("POST /api/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /api/tables", s.handleTables)
	s.mux.HandleFunc("POST /api/query", s.handleQuery)
	s.mux.HandleFunc("POST /api/recommend", s.handleRecommend)
	s.mux.HandleFunc("GET /api/cache", s.handleCacheStats)
	s.mux.HandleFunc("POST /api/cache/clear", s.handleCacheClear)
	s.mux.HandleFunc("GET /api/traces", s.handleTraces)
	s.mux.HandleFunc("GET /api/traces/{id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /api/backend/caps", s.handleBackendCaps)
	s.mux.HandleFunc("GET /api/backend/info", s.handleBackendInfo)
	s.mux.HandleFunc("GET /api/backend/stats", s.handleBackendStats)
	s.mux.HandleFunc("GET /api/backend/version", s.handleBackendVersion)
	return s
}

// Cache returns the server's process-wide result cache.
func (s *Server) Cache() *cache.Cache { return s.cache }

// Telemetry returns the server's process-wide telemetry collector.
func (s *Server) Telemetry() *telemetry.Collector { return s.tel }

// SetSlowQueryLog routes slow-query and slow-request JSON lines to w,
// flagging anything slower than threshold (<= 0 selects the default,
// telemetry.DefaultSlowThreshold). Call before serving traffic; see
// docs/OBSERVABILITY.md for the line schema.
func (s *Server) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	s.tel.SlowLog = telemetry.NewSlowLog(w, threshold)
}

// SetTraceSampling enables probabilistic head sampling: each
// recommendation request that did not opt into tracing itself is traced
// with probability p (an explicit {"trace": true} always wins) and the
// completed tree is retained in the trace store for GET /api/traces —
// sampled requests do not carry the tree in their response, only its
// "trace_id". p <= 0 disables sampling. Call before serving traffic.
func (s *Server) SetTraceSampling(p float64) {
	s.traceSample = p
}

// TraceStore returns the server's bounded ring of completed traces.
func (s *Server) TraceStore() *telemetry.TraceStore { return s.traces }

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default — profiling endpoints expose heap and
// goroutine contents, so operators opt in explicitly (the -pprof flag
// on cmd/seedb-server).
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// RegisterBackend adds a named backend; recommendation requests select
// it with {"backend": name}. The engine it gets shares the server's
// process-wide result cache. Registering a duplicate name is an error.
// The backend is wrapped so its execution and introspection hold the
// server's data read-lock, making it safe to serve queries concurrently
// with /api/ingest writes.
func (s *Server) RegisterBackend(name string, be backend.Backend) error {
	if name == "" {
		return fmt.Errorf("server: backend name must be non-empty")
	}
	raw := be
	be = guardedBackend{inner: be, mu: &s.dataMu}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.backends[name]; dup {
		return fmt.Errorf("server: backend %q already registered", name)
	}
	eng := core.NewEngine(be)
	eng.SetCache(s.cache)
	eng.SetTelemetry(s.tel)
	s.backends[name] = &registeredBackend{name: name, be: be, raw: raw, engine: eng}
	return nil
}

// SetAdmission installs admission control: at most maxInflight query
// requests (/api/recommend, /api/query) execute concurrently, with
// over-limit requests waiting up to queueWait for a slot before being
// shed with 503 (a full wait queue refuses immediately with 429).
// Mutating traffic (/api/ingest and the dataset loaders) gets its own
// smaller budget — max(1, maxInflight/4) — so a query flood cannot
// starve writes nor vice versa. maxInflight <= 0 disables admission
// control. Call before serving traffic.
func (s *Server) SetAdmission(maxInflight int, queueWait time.Duration) {
	if maxInflight <= 0 {
		s.queryGate, s.ingestGate = nil, nil
		return
	}
	ingest := maxInflight / 4
	if ingest < 1 {
		ingest = 1
	}
	s.queryGate = resilience.NewGate(maxInflight, 4*maxInflight, queueWait)
	s.ingestGate = resilience.NewGate(ingest, 4*ingest, queueWait)
}

// gateFor classifies a request path into an admission budget (nil =
// ungated: health, metrics and introspection must stay reachable
// exactly when the server is saturated).
func (s *Server) gateFor(path string) *resilience.Gate {
	switch path {
	case "/api/recommend", "/api/query":
		return s.queryGate
	case "/api/ingest", "/api/datasets/load", "/api/datasets/synth":
		return s.ingestGate
	}
	return nil
}

// EnableSharding registers a shard router (under ShardBackendName) over
// n embedded children that mirror the server's embedded store: every
// table already loaded is scattered across the children immediately with
// the order-preserving block partitioner, and later dataset loads
// re-scatter automatically. Requests opt in per call with
// {"backend": "shard"}; see docs/ARCHITECTURE.md, "Sharded execution".
// n = 1 is a valid degenerate router (the single-shard baseline of the
// shard bench experiment).
func (s *Server) EnableSharding(n int) error {
	return s.EnableShardingOpts(n, shardbe.Options{}, nil)
}

// EnableShardingOpts is EnableSharding with explicit router options
// (circuit breakers, degraded-results mode, hedging, ...) and an
// optional per-child wrapper: wrap(i, child) replaces child i in the
// router, letting callers interpose fault injection or instrumentation
// between the router and an embedded shard. The options' Telemetry is
// always the server's collector.
func (s *Server) EnableShardingOpts(n int, opts shardbe.Options, wrap func(int, backend.Backend) backend.Backend) error {
	if n < 1 {
		return fmt.Errorf("server: sharding needs at least 1 shard, got %d", n)
	}
	dbs, bes := shardbe.EmbeddedChildren(n)
	if wrap != nil {
		for i, be := range bes {
			bes[i] = wrap(i, be)
		}
	}
	opts.Telemetry = s.tel
	router, err := shardbe.New(bes, opts)
	if err != nil {
		return err
	}
	if err := s.RegisterBackend(ShardBackendName, router); err != nil {
		return err
	}
	s.mu.Lock()
	s.shardDBs = dbs
	s.mu.Unlock()
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	for _, name := range s.db.TableNames() {
		if err := s.scatterShards(name); err != nil {
			return err
		}
	}
	return nil
}

// scatterShards mirrors one embedded table across the shard children
// (a no-op when sharding is off).
func (s *Server) scatterShards(table string) error {
	s.mu.RLock()
	dbs := s.shardDBs
	s.mu.RUnlock()
	if len(dbs) == 0 {
		return nil
	}
	t, ok := s.db.Table(table)
	if !ok {
		return nil
	}
	return shardbe.ScatterTable(s.db, table, dbs, shardbe.Blocks{Total: t.NumRows()})
}

// backendFor resolves a request's backend name ("" = the default).
func (s *Server) backendFor(name string) (*registeredBackend, error) {
	if name == "" {
		name = DefaultBackendName
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	rb, ok := s.backends[name]
	if !ok {
		return nil, fmt.Errorf("unknown backend %q", name)
	}
	return rb, nil
}

// backendInfo is one backend's /healthz description.
type backendInfo struct {
	Name                    string `json:"name"`
	Default                 bool   `json:"default"`
	SupportsVectorized      bool   `json:"supports_vectorized"`
	SupportsPhasedExecution bool   `json:"supports_phased_execution"`
}

// backendSnapshot lists registered backends, default first then by name.
func (s *Server) backendSnapshot() []backendInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]backendInfo, 0, len(s.backends))
	for name, rb := range s.backends {
		caps := rb.be.Capabilities()
		out = append(out, backendInfo{
			Name:                    name,
			Default:                 name == DefaultBackendName,
			SupportsVectorized:      caps.SupportsVectorized,
			SupportsPhasedExecution: caps.SupportsPhasedExecution,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Default != out[b].Default {
			return out[a].Default
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// ServeHTTP implements http.Handler: admission control, then panic
// containment, then the route mux. A handler panic is converted to a
// 500 (instead of net/http's per-connection reset, which looks like an
// outage to load balancers), counted in seedb_panics_total, and logged
// with its stack to the slow-query sink.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if gate := s.gateFor(r.URL.Path); gate != nil {
		release, err := gate.Acquire(r.Context())
		if err != nil {
			s.writeAdmissionError(w, err)
			return
		}
		defer release()
	}
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			if sl := s.tel.Slow(); sl != nil {
				sl.Log(telemetry.SlowEntry{
					Kind:  "panic",
					Path:  r.URL.Path,
					Stack: fmt.Sprintf("panic: %v\n%s", p, debug.Stack()),
				})
			}
			// Best-effort: if the handler already wrote headers this is a
			// no-op on the status, but the connection still closes cleanly.
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", p))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// writeAdmissionError maps a gate rejection to its HTTP shape: 429 for
// a full wait queue (clients should back off harder), 503 for a timed
// shed, and the blameless 503 for a caller that gave up while queued.
// Both overload statuses carry Retry-After so well-behaved clients
// pace themselves.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	status := http.StatusServiceUnavailable
	if errors.Is(err, resilience.ErrQueueFull) {
		status = http.StatusTooManyRequests
	}
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, status, err)
}

// errorResponse is the uniform error payload.
type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// handleHealth implements GET /healthz. The payload carries the cache
// and executor counters (so load balancers and dashboards see hit rates
// and fast-path coverage without a second probe) plus the registered
// backends with their capability flags.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"cache":      s.cache.Stats(),
		"executor":   s.exec.healthSnapshot(),
		"backends":   s.backendSnapshot(),
		"resilience": s.resilienceSnapshot(),
	})
}

// breakerHealth is one circuit breaker's /healthz description.
type breakerHealth struct {
	Backend     string                 `json:"backend"`
	Child       int                    `json:"child"`
	State       string                 `json:"state"`
	Successes   int64                  `json:"successes"`
	Failures    int64                  `json:"failures"`
	Refusals    int64                  `json:"refusals"`
	Transitions resilience.Transitions `json:"transitions"`
}

// breakerSnapshot collects per-child breaker state from every backend
// that reports it, in backend-name order.
func (s *Server) breakerSnapshot() []breakerHealth {
	s.mu.RLock()
	type namedReporter struct {
		name string
		rep  breakerReporter
	}
	var reps []namedReporter
	for name, rb := range s.backends {
		if rep, ok := rb.raw.(breakerReporter); ok {
			reps = append(reps, namedReporter{name, rep})
		}
	}
	s.mu.RUnlock()
	sort.Slice(reps, func(a, b int) bool { return reps[a].name < reps[b].name })
	var out []breakerHealth
	for _, nr := range reps {
		for i, bs := range nr.rep.BreakerStats() {
			out = append(out, breakerHealth{
				Backend:     nr.name,
				Child:       i,
				State:       bs.State.String(),
				Successes:   bs.Successes,
				Failures:    bs.Failures,
				Refusals:    bs.Refusals,
				Transitions: bs.Transitions,
			})
		}
	}
	return out
}

// resilienceSnapshot renders the graceful-degradation counters for
// /healthz: admission gates, circuit breakers, and the degraded/stale
// serve counts.
func (s *Server) resilienceSnapshot() map[string]any {
	out := map[string]any{
		"panics":            s.panics.Load(),
		"degraded_requests": s.degradedRequests.Load(),
		"stale_serves":      s.staleServes.Load(),
	}
	if s.queryGate != nil {
		out["query_gate"] = s.queryGate.Stats()
	}
	if s.ingestGate != nil {
		out["ingest_gate"] = s.ingestGate.Stats()
	}
	if brs := s.breakerSnapshot(); len(brs) > 0 {
		out["breakers"] = brs
	}
	return out
}

// handleMetrics implements GET /metrics: the Prometheus text exposition
// (format 0.0.4) of every executor counter, cache counter, and latency
// histogram. Counters come from the same single-lock snapshot as
// /healthz, so scrapes mid-request still satisfy the executor
// invariants. The full name table lives in docs/OBSERVABILITY.md.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	requests, degraded, m := s.exec.snapshot()
	cs := s.cache.Stats()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := telemetry.NewPromWriter(w)

	pw.Counter("seedb_requests_total", "Recommendation requests served.", float64(requests))
	pw.Counter("seedb_queries_executed_total", "View queries executed across all requests.", float64(m.QueriesExecuted))
	pw.Counter("seedb_vectorized_queries_total", "Queries served by the vectorized fast path.", float64(m.VectorizedQueries))
	pw.Counter("seedb_fallback_queries_total", "Queries served by the row-at-a-time interpreter.", float64(m.FallbackQueries))
	reasons := make(map[string]float64, len(m.FallbackReasons))
	for r, n := range m.FallbackReasons {
		reasons[r] = float64(n)
	}
	pw.CounterVec("seedb_fallback_queries_by_reason_total", "Interpreter fallbacks by cause.", "reason", reasons)
	pw.Counter("seedb_selection_kernels_total", "Vectorized predicate selection kernel dispatches.", float64(m.SelectionKernels))
	pw.Counter("seedb_residual_predicates_total", "Predicates evaluated row-at-a-time after kernel selection.", float64(m.ResidualPredicates))
	pw.Counter("seedb_rows_scanned_total", "Base-table rows scanned by view queries.", float64(m.RowsScanned))
	pw.Counter("seedb_strategy_degraded_requests_total", "Requests whose strategy was rewritten by capability degradation.", float64(degraded))
	pw.Counter("seedb_shard_queries_total", "Queries fanned out by the shard router.", float64(m.ShardQueries))
	pw.Counter("seedb_shard_fanout_total", "Child executions issued by the shard router.", float64(m.ShardFanout))
	pw.Gauge("seedb_shard_straggler_seconds_max", "Slowest single shard child execution observed.", m.ShardStragglerMax.Seconds())
	pw.Counter("seedb_shard_partials_cached_total", "Shard partials served from the router's version-keyed memo.", float64(m.ShardPartialsCached))
	pw.Counter("seedb_hedged_partials_total", "Speculative duplicate shard executions issued against stragglers.", float64(m.HedgedPartials))
	pw.Counter("seedb_hedge_wins_total", "Hedged duplicates that answered before their primary.", float64(m.HedgeWins))
	pw.Counter("seedb_net_retries_total", "Transparent retries performed by network child backends.", float64(m.NetRetries))
	pw.Gauge("seedb_scan_workers_max", "Widest per-query scan worker pool observed.", float64(m.ScanWorkers))

	// Graceful-degradation families (docs/RESILIENCE.md).
	pw.Counter("seedb_panics_total", "Handler panics recovered by the middleware.", float64(s.panics.Load()))
	pw.Counter("seedb_degraded_requests_total", "Requests answered from partial shard coverage under allow_partial.", float64(s.degradedRequests.Load()))
	pw.Counter("seedb_stale_serves_total", "Requests answered from the stale-result store during an outage.", float64(s.staleServes.Load()))
	shed := map[string]float64{}
	if s.queryGate != nil {
		gs := s.queryGate.Stats()
		shed["query"] = float64(gs.Shed + gs.Refused)
	}
	if s.ingestGate != nil {
		gs := s.ingestGate.Stats()
		shed["ingest"] = float64(gs.Shed + gs.Refused)
	}
	pw.CounterVec("seedb_shed_requests_total", "Requests rejected by admission control (shed after queueing plus queue-full refusals) by traffic class.", "class", shed)
	states := map[string]float64{}
	transitions := map[string]float64{}
	for _, bh := range s.breakerSnapshot() {
		states[fmt.Sprintf("%s/%d", bh.Backend, bh.Child)] = float64(breakerStateCode(bh.State))
		transitions["closed_to_open"] += float64(bh.Transitions.ClosedToOpen)
		transitions["open_to_half_open"] += float64(bh.Transitions.OpenToHalfOpen)
		transitions["half_open_to_closed"] += float64(bh.Transitions.HalfOpenToClosed)
		transitions["half_open_to_open"] += float64(bh.Transitions.HalfOpenToOpen)
	}
	pw.GaugeVec("seedb_breaker_state", "Per-child circuit breaker state (0=closed, 1=open, 2=half_open).", "child", states)
	pw.CounterVec("seedb_breaker_transitions_total", "Circuit breaker state transitions by edge, summed across children.", "transition", transitions)

	// Trace retention families (docs/OBSERVABILITY.md, "Trace store").
	tss := s.traces.Stats()
	pw.Counter("seedb_traces_sampled_total", "Completed traces captured to the trace store (explicit trace requests plus head-sampled ones).", float64(tss.Sampled))
	pw.Counter("seedb_trace_dropped_total", "Completed traces evicted from the trace store under its count/byte caps.", float64(tss.Dropped))
	pw.Gauge("seedb_trace_store_entries", "Traces currently retained in the trace store.", float64(tss.Entries))
	pw.Gauge("seedb_trace_store_bytes", "Serialized bytes currently retained in the trace store.", float64(tss.Bytes))

	pw.Counter("seedb_cache_hits_total", "Result-cache hits.", float64(cs.Hits))
	pw.Counter("seedb_cache_misses_total", "Result-cache misses.", float64(cs.Misses))
	pw.Counter("seedb_cache_shared_total", "Lookups collapsed onto an in-flight identical computation.", float64(cs.Shared))
	pw.Counter("seedb_cache_evictions_total", "Entries evicted under LRU byte pressure.", float64(cs.Evictions))
	pw.Counter("seedb_cache_rejected_total", "Entries refused by the admission policy.", float64(cs.Rejected))
	pw.Gauge("seedb_cache_entries", "Entries currently cached.", float64(cs.Entries))
	pw.Gauge("seedb_cache_bytes", "Bytes currently cached.", float64(cs.Bytes))
	pw.Gauge("seedb_cache_budget_bytes", "Configured cache byte budget.", float64(cs.BudgetBytes))

	pw.Histogram("seedb_request_duration_seconds", "End-to-end recommendation request latency.", s.tel.RequestLatency.Snapshot())
	pw.Histogram("seedb_query_duration_seconds", "Per-view-query backend execution latency.", s.tel.QueryLatency.Snapshot())
	pw.Histogram("seedb_shard_partial_duration_seconds", "Per-shard child execution latency under fan-out.", s.tel.ShardLatency.Snapshot())
}

// breakerStateCode maps a breaker state name to its stable gauge code.
func breakerStateCode(state string) int {
	switch state {
	case "closed":
		return int(resilience.Closed)
	case "open":
		return int(resilience.Open)
	case "half_open":
		return int(resilience.HalfOpen)
	default:
		return -1
	}
}

// handleCacheStats implements GET /api/cache.
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

// handleCacheClear implements POST /api/cache/clear (an operator escape
// hatch; normal invalidation is automatic via dataset versioning).
func (s *Server) handleCacheClear(w http.ResponseWriter, _ *http.Request) {
	s.cache.Clear()
	writeJSON(w, http.StatusOK, map[string]string{"status": "cleared"})
}

// datasetInfo describes one built-in dataset.
type datasetInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	DefaultRows int    `json:"default_rows"`
	PaperRows   int    `json:"paper_rows"`
	Dimensions  int    `json:"dimensions"`
	Measures    int    `json:"measures"`
	Views       int    `json:"views"`
	TargetWhere string `json:"target_where"`
}

// handleDatasets implements GET /api/datasets.
func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	var out []datasetInfo
	for _, name := range dataset.Names() {
		spec, err := dataset.ByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, datasetInfo{
			Name:        spec.Name,
			Description: spec.Description,
			DefaultRows: spec.Rows,
			PaperRows:   spec.PaperRows,
			Dimensions:  len(spec.ViewDims()),
			Measures:    len(spec.Measures),
			Views:       spec.NumViews(),
			TargetWhere: spec.TargetPredicate(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// loadRequest is the POST /api/datasets/load payload.
type loadRequest struct {
	Name   string `json:"name"`
	Layout string `json:"layout"` // "row" or "col" (default col)
	Rows   int    `json:"rows"`   // 0 = dataset default
}

// handleLoadDataset implements POST /api/datasets/load.
func (s *Server) handleLoadDataset(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := dataset.ByName(req.Name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if req.Rows > 0 {
		spec = spec.WithRows(req.Rows)
	}
	layout, err := parseLayout(req.Layout)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The write lock keeps the build (and the shard re-scatter, which
	// drops and recreates child tables) invisible to in-flight queries.
	s.dataMu.Lock()
	_, buildErr := dataset.Build(s.db, spec, layout)
	if buildErr == nil {
		// Keep the shard children in sync so {"backend": "shard"}
		// requests see every loaded table.
		buildErr = s.scatterShards(spec.Name)
	}
	s.dataMu.Unlock()
	if buildErr != nil {
		writeError(w, http.StatusConflict, buildErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"table": spec.Name, "rows": spec.Rows})
}

// tableInfo describes one loaded table.
type tableInfo struct {
	Name    string   `json:"name"`
	Rows    int      `json:"rows"`
	Layout  string   `json:"layout"`
	Columns []string `json:"columns"`
}

// handleTables implements GET /api/tables.
func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	// Row counts race with ingest appends without the read lock.
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	out := []tableInfo{}
	for _, name := range s.db.TableNames() {
		t, ok := s.db.Table(name)
		if !ok {
			continue
		}
		info := tableInfo{Name: t.Name(), Rows: t.NumRows(), Layout: t.Layout().String()}
		for _, c := range t.Schema().Columns() {
			info.Columns = append(info.Columns, fmt.Sprintf("%s %s", c.Name, c.Type))
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// queryResponse carries a raw SQL result in the human-facing string
// form ({"wire": true} requests get wire.QueryResponse instead).
type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Count   int        `json:"count"`
}

// handleQuery implements POST /api/query — the manual chart-construction
// path of the mixed-initiative frontend, and (with {"wire": true}) the
// Exec leg of the netbe wire protocol. Like /api/recommend it routes
// through the selected backend, runs under the server's request
// timeout, classifies errors by status, and folds its execution stats
// into the same executor totals and query-latency histogram — so raw
// queries and remote shard partials are first-class citizens of every
// dashboard invariant (histogram count == queries_executed included).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req wire.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	rb, err := s.backendFor(req.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if s.Timeout > 0 {
		// The same deadline /api/recommend runs under; previously raw
		// queries could hold a connection forever.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	// A Traceparent header means a remote caller (netbe) is tracing:
	// open a child-side trace under the caller's span, so the executor
	// spans of this process travel home in the wire response.
	var ctr *telemetry.Trace
	if tid, psid, ok := telemetry.ParseTraceparent(r.Header.Get(telemetry.TraceparentHeader)); ok {
		ctx, ctr = telemetry.WithRemoteTrace(ctx, "child.query", tid, psid)
	}
	start := time.Now()
	res, stats, err := rb.be.Exec(ctx, req.SQL, backend.ExecOptions{
		Lo:                 req.Lo,
		Hi:                 req.Hi,
		Workers:            req.Workers,
		NoSelectionKernels: req.NoSelectionKernels,
		AllowPartial:       req.AllowPartial,
	})
	elapsed := time.Since(start)
	if err != nil {
		writeError(w, statusForError(err), err)
		return
	}
	// Snapshot the child trace now, not after response encoding: the
	// child.query span then measures exactly the execution, so the
	// caller can read wire/encode overhead as the gap between its own
	// span and the grafted subtree.
	var childTrace *telemetry.SpanNode
	if ctr != nil {
		stampExecAttrs(ctr.Root(), stats)
		childTrace = ctr.Finish()
	}
	if stats.ShardsDegraded > 0 {
		s.degradedRequests.Add(1)
	}
	s.tel.ObserveQuery(elapsed)
	var m core.Metrics
	m.RecordExec(stats)
	s.exec.recordQuery(m)
	if req.Wire {
		wresp := wire.QueryResponse{
			Columns: res.Columns,
			Rows:    wire.EncodeRows(res.Rows),
			Stats:   wire.FromExecStats(stats),
		}
		wresp.Trace = childTrace
		writeJSON(w, http.StatusOK, wresp)
		return
	}
	resp := queryResponse{Columns: res.Columns, Count: len(res.Rows), Rows: [][]string{}}
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		resp.Rows = append(resp.Rows, cells)
	}
	writeJSON(w, http.StatusOK, resp)
}

// stampExecAttrs threads one execution's resource counters into span
// attributes — the cost-attribution half of tracing: where the rows
// went, not just where the time went. Zero counters stay off the span.
func stampExecAttrs(sp *telemetry.Span, stats backend.ExecStats) {
	if sp == nil {
		return
	}
	sp.SetAttr("rows_scanned", fmt.Sprintf("%d", stats.RowsScanned))
	sp.SetAttr("groups", fmt.Sprintf("%d", stats.Groups))
	if stats.ShardFanout > 0 {
		sp.SetAttr("shard_fanout", fmt.Sprintf("%d", stats.ShardFanout))
	}
	if stats.NetRetries > 0 {
		sp.SetAttr("net_retries", fmt.Sprintf("%d", stats.NetRetries))
	}
}

// handleTraces implements GET /api/traces: summaries of the retained
// traces, newest first (?limit=N caps the list, default 50).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	sums := s.traces.List(limit)
	if sums == nil {
		sums = []telemetry.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": sums})
}

// handleTraceByID implements GET /api/traces/{id}: the full stored
// span tree for one completed trace.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no retained trace %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// RecommendRequest is the POST /api/recommend payload.
type RecommendRequest struct {
	Table          string   `json:"table"`
	TargetWhere    string   `json:"target_where"`
	Reference      string   `json:"reference"`       // "all" (default), "complement", "custom"
	ReferenceWhere string   `json:"reference_where"` // for "custom"
	K              int      `json:"k"`
	Strategy       string   `json:"strategy"` // "noopt","sharing","comb","combearly"
	Pruning        string   `json:"pruning"`  // "none","ci","mab"
	Distance       string   `json:"distance"` // "EMD" (default), ...
	Dimensions     []string `json:"dimensions"`
	Measures       []string `json:"measures"`
	Aggregates     []string `json:"aggregates"`
	// Cache opts this request out of the shared result cache when set to
	// false; omitted or true uses the cache.
	Cache *bool `json:"cache"`
	// ScanParallelism caps per-query scan workers (0 = GOMAXPROCS; 1
	// forces the serial interpreter).
	ScanParallelism int `json:"scan_parallelism"`
	// Backend selects which registered backend executes the request
	// (empty = the embedded default; see /healthz for the list).
	Backend string `json:"backend"`
	// Trace opts this request into span tracing: the response carries the
	// full span tree under "trace". Off by default — building the tree
	// allocates per span, so clients ask for it explicitly.
	Trace bool `json:"trace"`
	// SlowQueryMS overrides the server's slow-query log threshold for
	// this request, in milliseconds (0 = server default; ignored when no
	// slow log is configured).
	SlowQueryMS float64 `json:"slow_query_ms"`
	// AllowPartial opts this request into degraded results: when the
	// selected backend is a shard router with circuit breakers, queries
	// proceed over the surviving shards instead of failing while a child
	// is down. Responses computed this way carry "degraded": true and
	// are never cached.
	AllowPartial bool `json:"allow_partial"`
	// ServeStale opts this request into stale-on-outage serving: when
	// the backend is entirely unavailable, the last complete result for
	// this request shape (if any) is returned marked "stale": true
	// instead of a 5xx. Requires caching (the default).
	ServeStale bool `json:"serve_stale"`
}

// RecommendedView is one ranked visualization.
type RecommendedView struct {
	Rank      int       `json:"rank"`
	Dimension string    `json:"dimension"`
	Measure   string    `json:"measure"`
	Aggregate string    `json:"aggregate"`
	Utility   float64   `json:"utility"`
	Partial   bool      `json:"partial"`
	Groups    []string  `json:"groups"`
	Target    []float64 `json:"target"`
	Reference []float64 `json:"reference"`
	Chart     string    `json:"chart"`
}

// RecommendResponse is the recommendation result.
type RecommendResponse struct {
	Recommendations []RecommendedView `json:"recommendations"`
	Views           int               `json:"views_evaluated"`
	QueriesExecuted int               `json:"queries_executed"`
	RowsScanned     int64             `json:"rows_scanned"`
	PrunedViews     int               `json:"pruned_views"`
	EarlyStopped    bool              `json:"early_stopped"`
	CacheHits       int               `json:"cache_hits"`
	CacheMisses     int               `json:"cache_misses"`
	RefViewsReused  int               `json:"ref_views_reused"`
	ServedFromCache bool              `json:"served_from_cache"`
	Vectorized      int               `json:"vectorized_queries"`
	Fallback        int               `json:"fallback_queries"`
	FallbackReasons map[string]int    `json:"fallback_reasons,omitempty"`
	SelectionKernel int               `json:"selection_kernels"`
	ResidualPreds   int               `json:"residual_predicates"`
	ScanWorkers     int               `json:"scan_workers"`
	// Shard fan-out cost of this request (zero on leaf backends): queries
	// fanned out, total child executions, and the slowest child.
	ShardQueries     int     `json:"shard_queries"`
	ShardFanout      int     `json:"shard_fanout"`
	ShardStragglerMS float64 `json:"shard_straggler_ms"`
	// Backend names the backend that served the request; Strategy is the
	// strategy actually executed there (capability degradation may turn
	// a phased request into single-pass SHARING). StrategyDegraded flags
	// that rewrite explicitly, with DegradedFrom naming what was asked.
	Backend          string `json:"backend"`
	Strategy         string `json:"strategy"`
	StrategyDegraded bool   `json:"strategy_degraded"`
	DegradedFrom     string `json:"degraded_from,omitempty"`
	// Degraded marks a result computed from partial shard coverage under
	// allow_partial; DegradedShards lists the shard indices that were
	// skipped. Stale marks a result served from the stale-result store
	// under serve_stale while the backend was unavailable.
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedShards []int   `json:"degraded_shards,omitempty"`
	Stale          bool    `json:"stale,omitempty"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	// TraceID identifies the request's trace when it was traced or
	// head-sampled; the completed tree is retrievable from GET
	// /api/traces/{id} while it stays in the trace store. Trace is the
	// tree itself, present only when the request set {"trace": true}
	// (sampled requests get the ID alone). Rendered client-side by
	// seedb -trace.
	TraceID string              `json:"trace_id,omitempty"`
	Trace   *telemetry.SpanNode `json:"trace,omitempty"`
}

// handleRecommend implements POST /api/recommend.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	coreReq := core.Request{
		Table:          req.Table,
		TargetWhere:    req.TargetWhere,
		ReferenceWhere: req.ReferenceWhere,
		Dimensions:     req.Dimensions,
		Measures:       req.Measures,
	}
	switch strings.ToLower(req.Reference) {
	case "", "all":
		coreReq.Reference = core.RefAll
	case "complement":
		coreReq.Reference = core.RefComplement
	case "custom":
		coreReq.Reference = core.RefCustom
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown reference %q", req.Reference))
		return
	}
	for _, a := range req.Aggregates {
		coreReq.Aggs = append(coreReq.Aggs, core.AggFunc(strings.ToUpper(a)))
	}

	opts := core.Options{
		K:                  req.K,
		EnableCache:        req.Cache == nil || *req.Cache,
		ScanParallelism:    req.ScanParallelism,
		SlowQueryThreshold: time.Duration(req.SlowQueryMS * float64(time.Millisecond)),
		AllowPartial:       req.AllowPartial,
		ServeStaleOnError:  req.ServeStale,
	}
	switch strings.ToLower(req.Strategy) {
	case "noopt":
		opts.Strategy = core.NoOpt
	case "sharing":
		opts.Strategy = core.Sharing
	case "", "comb":
		opts.Strategy = core.Comb
	case "combearly", "early":
		opts.Strategy = core.CombEarly
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown strategy %q", req.Strategy))
		return
	}
	switch strings.ToLower(req.Pruning) {
	case "none":
		opts.Pruning = core.NoPruning
	case "", "ci":
		opts.Pruning = core.CIPruning
	case "mab":
		opts.Pruning = core.MABPruning
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown pruning %q", req.Pruning))
		return
	}
	if req.Distance != "" {
		f, err := distance.ParseFunc(strings.ToUpper(req.Distance))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		opts.Distance = f
	}

	rb, err := s.backendFor(req.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx := r.Context()
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	// Tracing: an explicit {"trace": true} always traces (the
	// per-request override); otherwise head sampling may pick the
	// request up, retaining its tree in the trace store without
	// inflating the response.
	var tr *telemetry.Trace
	if req.Trace || (s.traceSample > 0 && telemetry.ShouldSample(s.traceSample)) {
		ctx, tr = telemetry.WithTrace(ctx, "request")
	}
	res, err := rb.engine.Recommend(ctx, coreReq, opts)
	if err != nil {
		writeError(w, statusForError(err), err)
		return
	}
	s.exec.record(res.Metrics)
	if res.Metrics.ShardsDegraded > 0 {
		s.degradedRequests.Add(1)
	}
	if res.Metrics.ServedStale {
		s.staleServes.Add(1)
	}

	resp := RecommendResponse{
		Backend:          rb.name,
		Strategy:         core.EffectiveStrategy(opts.Strategy, rb.be.Capabilities()).String(),
		Recommendations:  []RecommendedView{},
		Views:            res.Metrics.Views,
		QueriesExecuted:  res.Metrics.QueriesExecuted,
		RowsScanned:      res.Metrics.RowsScanned,
		PrunedViews:      res.Metrics.PrunedViews,
		EarlyStopped:     res.Metrics.EarlyStopped,
		CacheHits:        res.Metrics.CacheHits,
		CacheMisses:      res.Metrics.CacheMisses,
		RefViewsReused:   res.Metrics.RefViewsReused,
		ServedFromCache:  res.Metrics.ServedFromCache,
		Vectorized:       res.Metrics.VectorizedQueries,
		Fallback:         res.Metrics.FallbackQueries,
		FallbackReasons:  res.Metrics.FallbackReasons,
		SelectionKernel:  res.Metrics.SelectionKernels,
		ResidualPreds:    res.Metrics.ResidualPredicates,
		ScanWorkers:      res.Metrics.ScanWorkers,
		ShardQueries:     res.Metrics.ShardQueries,
		ShardFanout:      res.Metrics.ShardFanout,
		ShardStragglerMS: float64(res.Metrics.ShardStragglerMax.Microseconds()) / 1000,
		StrategyDegraded: res.Metrics.StrategyDegraded,
		DegradedFrom:     res.Metrics.DegradedFrom,
		Degraded:         res.Metrics.ShardsDegraded > 0,
		DegradedShards:   res.Metrics.DegradedShards,
		Stale:            res.Metrics.ServedStale,
		ElapsedMS:        float64(res.Metrics.Elapsed.Microseconds()) / 1000,
	}
	if tr != nil {
		node := tr.Finish()
		resp.TraceID = tr.ID()
		if req.Trace {
			resp.Trace = node
		}
		s.traces.Add(tr.ID(), node)
	}
	for i, rec := range res.Recommendations {
		title := fmt.Sprintf("%s    [utility %.4f]", rec.View.String(), rec.Utility)
		resp.Recommendations = append(resp.Recommendations, RecommendedView{
			Rank:      i + 1,
			Dimension: rec.View.Dimension,
			Measure:   rec.View.Measure,
			Aggregate: string(rec.View.Agg),
			Utility:   rec.Utility,
			Partial:   rec.Partial,
			Groups:    rec.Groups,
			Target:    rec.Target,
			Reference: rec.Reference,
			Chart:     chart.Render(title, rec.Groups, rec.Target, rec.Reference, chart.Options{ASCII: true}),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseLayout resolves a layout name.
func parseLayout(s string) (sqldb.Layout, error) {
	switch strings.ToLower(s) {
	case "", "col", "column":
		return sqldb.LayoutCol, nil
	case "row":
		return sqldb.LayoutRow, nil
	default:
		return 0, fmt.Errorf("unknown layout %q (want row or col)", s)
	}
}
