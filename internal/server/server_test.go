package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seedb/internal/backend/netbe/wire"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

// newTestServer loads a small census into a fresh server.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	db := sqldb.NewDB()
	spec := dataset.Census().WithRows(4000)
	if _, err := dataset.Build(db, spec, sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db))
	t.Cleanup(srv.Close)
	return srv
}

// postJSON posts v and decodes the response into out, returning status.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	var out map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &out); code != 200 || out["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, out)
	}
	cacheStats, ok := out["cache"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no cache counters: %v", out)
	}
	for _, field := range []string{"hits", "misses", "evictions", "budget_bytes"} {
		if _, ok := cacheStats[field]; !ok {
			t.Errorf("healthz cache stats missing %q: %v", field, cacheStats)
		}
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var out []map[string]any
	if code := getJSON(t, srv.URL+"/api/datasets", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out) != 10 {
		t.Errorf("datasets = %d, want 10", len(out))
	}
}

func TestTablesEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var out []tableInfo
	if code := getJSON(t, srv.URL+"/api/tables", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out) != 1 || out[0].Name != "census" || out[0].Rows != 4000 {
		t.Errorf("tables = %+v", out)
	}
	if len(out[0].Columns) != 14 {
		t.Errorf("columns = %v", out[0].Columns)
	}
}

func TestLoadDatasetEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var out map[string]any
	code := postJSON(t, srv.URL+"/api/datasets/load",
		loadRequest{Name: "housing", Layout: "row", Rows: 100}, &out)
	if code != 200 {
		t.Fatalf("status %d: %v", code, out)
	}
	// Duplicate load conflicts.
	code = postJSON(t, srv.URL+"/api/datasets/load", loadRequest{Name: "housing"}, nil)
	if code != http.StatusConflict {
		t.Errorf("duplicate load status = %d, want 409", code)
	}
	// Unknown dataset.
	code = postJSON(t, srv.URL+"/api/datasets/load", loadRequest{Name: "nope"}, nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown dataset status = %d, want 404", code)
	}
	// Bad layout.
	code = postJSON(t, srv.URL+"/api/datasets/load", loadRequest{Name: "movies", Layout: "diagonal"}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("bad layout status = %d, want 400", code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var out queryResponse
	code := postJSON(t, srv.URL+"/api/query",
		wire.QueryRequest{SQL: "SELECT sex, COUNT(*) FROM census GROUP BY sex ORDER BY sex"}, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Count != 2 || out.Rows[0][0] != "Female" {
		t.Errorf("query result = %+v", out)
	}
	// SQL errors surface as 400 with a JSON error.
	var e errorResponse
	code = postJSON(t, srv.URL+"/api/query", wire.QueryRequest{SQL: "SELECT nosuch FROM census"}, &e)
	if code != http.StatusBadRequest || e.Error == "" {
		t.Errorf("bad query = %d %v", code, e)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var out RecommendResponse
	code := postJSON(t, srv.URL+"/api/recommend", RecommendRequest{
		Table:       "census",
		TargetWhere: "marital = 'Unmarried'",
		Reference:   "complement",
		K:           3,
		Strategy:    "comb",
		Pruning:     "ci",
	}, &out)
	if code != 200 {
		t.Fatalf("status %d: %+v", code, out)
	}
	if len(out.Recommendations) != 3 {
		t.Fatalf("got %d recommendations", len(out.Recommendations))
	}
	r0 := out.Recommendations[0]
	if r0.Rank != 1 || r0.Utility <= 0 || len(r0.Groups) == 0 {
		t.Errorf("rec 0 = %+v", r0)
	}
	if len(r0.Target) != len(r0.Groups) || len(r0.Reference) != len(r0.Groups) {
		t.Error("distribution lengths mismatch")
	}
	if !strings.Contains(r0.Chart, "#") {
		t.Errorf("chart missing bars:\n%s", r0.Chart)
	}
	if out.Views != 40 || out.QueriesExecuted == 0 || out.RowsScanned == 0 {
		t.Errorf("metrics = %+v", out)
	}
}

func TestRecommendEndpointOptions(t *testing.T) {
	srv := newTestServer(t)
	// Custom distance, explicit views, sharing strategy, MAB.
	var out RecommendResponse
	code := postJSON(t, srv.URL+"/api/recommend", RecommendRequest{
		Table:       "census",
		TargetWhere: "marital = 'Unmarried'",
		K:           2,
		Strategy:    "sharing",
		Distance:    "JS",
		Dimensions:  []string{"sex", "race"},
		Measures:    []string{"capital_gain"},
		Aggregates:  []string{"avg", "sum"},
	}, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Views != 4 { // 2 dims × 1 measure × 2 aggs
		t.Errorf("views = %d, want 4", out.Views)
	}
}

func TestRecommendEndpointErrors(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name string
		req  RecommendRequest
		want int
	}{
		{"missing target", RecommendRequest{Table: "census"}, 400},
		{"bad table", RecommendRequest{Table: "zzz", TargetWhere: "a = 1"}, 400},
		{"bad strategy", RecommendRequest{Table: "census", TargetWhere: "sex = 'Female'", Strategy: "warp"}, 400},
		{"bad pruning", RecommendRequest{Table: "census", TargetWhere: "sex = 'Female'", Pruning: "guess"}, 400},
		{"bad distance", RecommendRequest{Table: "census", TargetWhere: "sex = 'Female'", Distance: "COSINE"}, 400},
		{"bad reference", RecommendRequest{Table: "census", TargetWhere: "sex = 'Female'", Reference: "sideways"}, 400},
		{"bad aggregate", RecommendRequest{Table: "census", TargetWhere: "sex = 'Female'", Aggregates: []string{"median"}}, 400},
	}
	for _, c := range cases {
		var e errorResponse
		if code := postJSON(t, srv.URL+"/api/recommend", c.req, &e); code != c.want {
			t.Errorf("%s: status %d, want %d (%v)", c.name, code, c.want, e)
		}
	}
}

func TestMalformedJSONBodies(t *testing.T) {
	srv := newTestServer(t)
	for _, path := range []string{"/api/query", "/api/recommend", "/api/datasets/load"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s malformed body: %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestMethodRouting(t *testing.T) {
	srv := newTestServer(t)
	// Every endpoint rejects wrong HTTP methods with 405: mutating
	// endpoints must not be reachable via GET, and read endpoints must
	// not accept bodies via POST/DELETE.
	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/healthz"},
		{http.MethodGet, "/api/datasets/load"},
		{http.MethodPut, "/api/datasets/load"},
		{http.MethodPost, "/api/datasets"},
		{http.MethodPost, "/api/tables"},
		{http.MethodGet, "/api/query"},
		{http.MethodDelete, "/api/query"},
		{http.MethodGet, "/api/recommend"},
		{http.MethodPut, "/api/recommend"},
		{http.MethodPost, "/api/cache"},
		{http.MethodGet, "/api/cache/clear"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

func TestCacheEndpointsAndWarmRecommend(t *testing.T) {
	srv := newTestServer(t)
	req := map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            3,
	}

	var cold RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &cold); code != 200 {
		t.Fatalf("cold recommend status %d", code)
	}
	if cold.ServedFromCache || cold.QueriesExecuted == 0 {
		t.Fatalf("cold response: %+v", cold)
	}

	var warm RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &warm); code != 200 {
		t.Fatalf("warm recommend status %d", code)
	}
	if !warm.ServedFromCache || warm.QueriesExecuted != 0 {
		t.Fatalf("warm response not served from cache: %+v", warm)
	}
	if len(warm.Recommendations) != len(cold.Recommendations) {
		t.Fatalf("warm returned %d recs, cold %d", len(warm.Recommendations), len(cold.Recommendations))
	}

	// The stats endpoint reflects the traffic.
	var stats map[string]any
	if code := getJSON(t, srv.URL+"/api/cache", &stats); code != 200 {
		t.Fatalf("cache stats status %d", code)
	}
	if hits, _ := stats["hits"].(float64); hits < 1 {
		t.Errorf("cache stats report no hits: %v", stats)
	}
	if entries, _ := stats["entries"].(float64); entries < 1 {
		t.Errorf("cache stats report no entries: %v", stats)
	}

	// Clearing drops the entries; the next identical request recomputes.
	if code := postJSON(t, srv.URL+"/api/cache/clear", map[string]any{}, nil); code != 200 {
		t.Fatalf("cache clear status %d", code)
	}
	var recold RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &recold); code != 200 {
		t.Fatalf("post-clear recommend status %d", code)
	}
	if recold.ServedFromCache {
		t.Fatal("request after clear still served from cache")
	}

	// Opting out bypasses the cache even when warm.
	reqNoCache := map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            3,
		"cache":        false,
	}
	var bypass RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", reqNoCache, &bypass); code != 200 {
		t.Fatalf("no-cache recommend status %d", code)
	}
	if bypass.ServedFromCache || bypass.QueriesExecuted == 0 {
		t.Fatalf("cache=false response: %+v", bypass)
	}
}

func TestEndToEndWorkflow(t *testing.T) {
	// Load → inspect → query → recommend, the full frontend workflow.
	db := sqldb.NewDB()
	srv := httptest.NewServer(New(db))
	defer srv.Close()

	if code := postJSON(t, srv.URL+"/api/datasets/load",
		loadRequest{Name: "bank", Rows: 2000}, nil); code != 200 {
		t.Fatalf("load: %d", code)
	}
	var tables []tableInfo
	getJSON(t, srv.URL+"/api/tables", &tables)
	if len(tables) != 1 || tables[0].Rows != 2000 {
		t.Fatalf("tables = %+v", tables)
	}
	var q queryResponse
	postJSON(t, srv.URL+"/api/query", wire.QueryRequest{SQL: "SELECT COUNT(*) FROM bank"}, &q)
	if q.Rows[0][0] != "2000" {
		t.Fatalf("count = %v", q.Rows)
	}
	var rec RecommendResponse
	code := postJSON(t, srv.URL+"/api/recommend", RecommendRequest{
		Table:       "bank",
		TargetWhere: "housing = 'yes'",
		Reference:   "complement",
		K:           2,
	}, &rec)
	if code != 200 || len(rec.Recommendations) != 2 {
		t.Fatalf("recommend = %d %+v", code, rec)
	}
	fmt.Println(rec.Recommendations[0].Chart)
}

// TestExecutorStats asserts per-request executor counters and their
// process-wide accumulation on /healthz: a cold recommend with
// scan_parallelism > 1 must run its grouped queries on the vectorized
// fast path, and one with scan_parallelism = 1 must use the interpreter.
func TestExecutorStats(t *testing.T) {
	srv := newTestServer(t)
	noCache := false

	var vec RecommendResponse
	req := RecommendRequest{
		Table: "census", TargetWhere: "marital = 'Unmarried'", K: 3,
		Strategy: "sharing", Cache: &noCache, ScanParallelism: 3,
	}
	if code := postJSON(t, srv.URL+"/api/recommend", req, &vec); code != 200 {
		t.Fatalf("status %d", code)
	}
	if vec.Vectorized == 0 || vec.Fallback != 0 {
		t.Errorf("scan_parallelism=3: vectorized=%d fallback=%d, want all vectorized",
			vec.Vectorized, vec.Fallback)
	}
	if vec.ScanWorkers < 2 || vec.ScanWorkers > 3 {
		t.Errorf("scan_workers = %d, want 2-3", vec.ScanWorkers)
	}
	if vec.SelectionKernel == 0 {
		t.Errorf("vectorized run bound no selection kernels: %+v", vec)
	}
	if len(vec.FallbackReasons) != 0 {
		t.Errorf("all-vectorized run reported fallback reasons: %v", vec.FallbackReasons)
	}

	var serial RecommendResponse
	req.ScanParallelism = 1
	if code := postJSON(t, srv.URL+"/api/recommend", req, &serial); code != 200 {
		t.Fatalf("status %d", code)
	}
	if serial.Vectorized != 0 || serial.Fallback == 0 || serial.ScanWorkers != 1 {
		t.Errorf("scan_parallelism=1: vectorized=%d fallback=%d workers=%d, want interpreter only",
			serial.Vectorized, serial.Fallback, serial.ScanWorkers)
	}
	if serial.FallbackReasons["serial execution"] != serial.Fallback {
		t.Errorf("serial run reasons = %v, want all under 'serial execution'", serial.FallbackReasons)
	}

	var health map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	exec, ok := health["executor"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no executor counters: %v", health)
	}
	if got := exec["vectorized_queries"].(float64); int(got) != vec.Vectorized {
		t.Errorf("healthz vectorized_queries = %v, want %d", got, vec.Vectorized)
	}
	if got := exec["fallback_queries"].(float64); int(got) != serial.Fallback {
		t.Errorf("healthz fallback_queries = %v, want %d", got, serial.Fallback)
	}
	if got := exec["max_scan_workers"].(float64); int(got) != vec.ScanWorkers {
		t.Errorf("healthz max_scan_workers = %v, want %d", got, vec.ScanWorkers)
	}
	if got := exec["selection_kernels"].(float64); int(got) != vec.SelectionKernel {
		t.Errorf("healthz selection_kernels = %v, want %d", got, vec.SelectionKernel)
	}
	reasons, ok := exec["fallback_reasons"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no fallback_reasons: %v", exec)
	}
	if got := reasons["serial execution"].(float64); int(got) != serial.Fallback {
		t.Errorf("healthz fallback_reasons[serial execution] = %v, want %d", got, serial.Fallback)
	}
}
