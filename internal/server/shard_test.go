package server

import (
	"net/http/httptest"
	"testing"

	"seedb/internal/backend/sqlbe"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/sqldriver"
)

// newShardedServer loads census, enables a 3-way shard router, and also
// registers a capability-poor database/sql backend for the degradation
// path.
func newShardedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	db := sqldb.NewDB()
	spec := dataset.Census().WithRows(2000)
	if _, err := dataset.Build(db, spec, sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	if err := s.EnableSharding(3); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBackend("sql", sqlbe.New(sqldriver.Open(db), sqlbe.Options{})); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func TestEnableShardingValidation(t *testing.T) {
	s := New(sqldb.NewDB())
	if err := s.EnableSharding(0); err == nil {
		t.Error("0 shards should be rejected")
	}
	// A 1-child router is the valid single-shard baseline.
	if err := s.EnableSharding(1); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableSharding(2); err == nil {
		t.Error("double EnableSharding should be rejected (duplicate backend)")
	}
}

// TestShardBackendServesRecommendations exercises the full HTTP path
// against the shard router: recommend, raw SQL, and healthz counters.
func TestShardBackendServesRecommendations(t *testing.T) {
	_, srv := newShardedServer(t)

	var rec RecommendResponse
	code := postJSON(t, srv.URL+"/api/recommend", map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            3,
		"strategy":     "sharing",
		"backend":      ShardBackendName,
	}, &rec)
	if code != 200 {
		t.Fatalf("recommend via shard backend = %d", code)
	}
	if rec.Backend != ShardBackendName || len(rec.Recommendations) != 3 {
		t.Fatalf("response = backend %q, %d recs", rec.Backend, len(rec.Recommendations))
	}
	if rec.ShardQueries == 0 || rec.ShardFanout < rec.ShardQueries {
		t.Errorf("shard fan-out not reported: queries=%d fanout=%d", rec.ShardQueries, rec.ShardFanout)
	}
	if rec.StrategyDegraded {
		t.Errorf("embedded-children router should not degrade, got %+v", rec)
	}

	// Raw SQL through the router.
	var q queryResponse
	code = postJSON(t, srv.URL+"/api/query", map[string]any{
		"sql":     "SELECT marital, COUNT(*) FROM census GROUP BY marital",
		"backend": ShardBackendName,
	}, &q)
	if code != 200 || q.Count == 0 {
		t.Fatalf("shard query = %d, %+v", code, q)
	}

	// healthz surfaces the shard counters.
	var health struct {
		Executor map[string]any `json:"executor"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	for _, key := range []string{"shard_queries", "shard_fanout", "shard_straggler_max_ms", "strategy_degraded_requests"} {
		if _, ok := health.Executor[key]; !ok {
			t.Errorf("healthz executor missing %q: %+v", key, health.Executor)
		}
	}
	if n, _ := health.Executor["shard_queries"].(float64); n == 0 {
		t.Errorf("healthz shard_queries = %v, want > 0", health.Executor["shard_queries"])
	}
}

// TestStrategyDegradationIsRecorded sends a phased request to the
// capability-poor sql backend and checks the rewrite is reported on the
// response and counted on /healthz — the former silent path.
func TestStrategyDegradationIsRecorded(t *testing.T) {
	_, srv := newShardedServer(t)

	var rec RecommendResponse
	code := postJSON(t, srv.URL+"/api/recommend", map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            2,
		"strategy":     "comb",
		"backend":      "sql",
	}, &rec)
	if code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	if !rec.StrategyDegraded || rec.DegradedFrom != "COMB" || rec.Strategy != "SHARING" {
		t.Errorf("degradation not reported: degraded=%v from=%q strategy=%q",
			rec.StrategyDegraded, rec.DegradedFrom, rec.Strategy)
	}

	// The warm (cached) repeat must still report the degradation.
	var warm RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            2,
		"strategy":     "comb",
		"backend":      "sql",
	}, &warm); code != 200 {
		t.Fatalf("warm recommend = %d", code)
	}
	if !warm.ServedFromCache || !warm.StrategyDegraded {
		t.Errorf("warm response: cached=%v degraded=%v", warm.ServedFromCache, warm.StrategyDegraded)
	}

	var health struct {
		Executor map[string]any `json:"executor"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if n, _ := health.Executor["strategy_degraded_requests"].(float64); n < 2 {
		t.Errorf("strategy_degraded_requests = %v, want >= 2", health.Executor["strategy_degraded_requests"])
	}
}

// TestLoadScattersToShards loads a dataset over HTTP after sharding is
// enabled and confirms the shard backend can serve it.
func TestLoadScattersToShards(t *testing.T) {
	db := sqldb.NewDB()
	s := New(db)
	if err := s.EnableSharding(2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var loaded map[string]any
	if code := postJSON(t, srv.URL+"/api/datasets/load", map[string]any{
		"name": "census", "rows": 600,
	}, &loaded); code != 200 {
		t.Fatalf("load = %d (%+v)", code, loaded)
	}
	var q queryResponse
	code := postJSON(t, srv.URL+"/api/query", map[string]any{
		"sql":     "SELECT COUNT(*) FROM census",
		"backend": ShardBackendName,
	}, &q)
	if code != 200 || len(q.Rows) != 1 || q.Rows[0][0] != "600" {
		t.Fatalf("shard count after load = %d, %+v", code, q)
	}
}
