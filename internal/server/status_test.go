package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/faultbe"
	"seedb/internal/backend/netbe/wire"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
)

// newStatusServer builds a server with a loaded dataset, a tight
// request timeout, and a fault-injectable secondary backend.
func newStatusServer(t *testing.T) (*httptest.Server, *Server, *faultbe.Fault) {
	t.Helper()
	db := sqldb.NewDB()
	spec, err := dataset.ByName("census")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dataset.Build(db, spec.WithRows(300), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	s.Timeout = 250 * time.Millisecond
	fault := faultbe.Wrap(backend.NewEmbedded(db))
	if err := s.RegisterBackend("fault", fault); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, s, fault
}

// postStatus POSTs v and returns the status code plus decoded error (if
// the response was an error payload).
func postStatus(t *testing.T, url string, v any) (int, string) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	return resp.StatusCode, e.Error
}

// TestQueryErrorClassification drives the /api/query status mapping:
// parse failures 400, missing tables on the introspection endpoints
// 404, store outages 502, timeouts 504. Remote retry policies key off
// exactly these codes.
func TestQueryErrorClassification(t *testing.T) {
	srv, _, fault := newStatusServer(t)

	code, msg := postStatus(t, srv.URL+"/api/query", wire.QueryRequest{SQL: "SELEKT broken"})
	if code != http.StatusBadRequest || msg == "" {
		t.Errorf("parse failure = %d %q, want 400", code, msg)
	}

	fault.FailNextExecs(1, fmt.Errorf("child down: %w", backend.ErrUnavailable))
	code, _ = postStatus(t, srv.URL+"/api/query", wire.QueryRequest{SQL: "SELECT COUNT(*) FROM census", Backend: "fault"})
	if code != http.StatusBadGateway {
		t.Errorf("unavailable store = %d, want 502", code)
	}

	// A backend slower than Server.Timeout: the deadline the handler now
	// installs (the /api/recommend one) must fire and map to 504.
	fault.SetExecDelay(10 * time.Second)
	start := time.Now()
	code, _ = postStatus(t, srv.URL+"/api/query", wire.QueryRequest{SQL: "SELECT COUNT(*) FROM census", Backend: "fault"})
	if code != http.StatusGatewayTimeout {
		t.Errorf("timed-out query = %d, want 504", code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timed-out query took %v: Server.Timeout not applied", elapsed)
	}
	fault.SetExecDelay(0)

	resp, err := http.Get(srv.URL + "/api/backend/info?table=nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing table info = %d, want 404", resp.StatusCode)
	}
}

// TestRecommendTimeoutClassification: the recommendation path now
// shares the classifier, so an engine run hitting the server deadline
// reports 504 instead of blaming the client with a 400.
func TestRecommendTimeoutClassification(t *testing.T) {
	srv, _, fault := newStatusServer(t)
	fault.SetExecDelay(10 * time.Second)
	code, _ := postStatus(t, srv.URL+"/api/recommend", RecommendRequest{Table: "census", TargetWhere: "sex = 'Female'", Backend: "fault"})
	if code != http.StatusGatewayTimeout {
		t.Errorf("timed-out recommend = %d, want 504", code)
	}
}

// TestWireEndpoints exercises the four /api/backend/* endpoints'
// happy paths and parameter validation.
func TestWireEndpoints(t *testing.T) {
	srv, _, _ := newStatusServer(t)
	getJSONInto := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}

	var hs wire.Handshake
	if code := getJSONInto("/api/backend/caps", &hs); code != 200 {
		t.Fatalf("caps status %d", code)
	}
	if hs.Proto != wire.ProtoVersion || hs.Backend != DefaultBackendName || !hs.SupportsVectorized {
		t.Errorf("handshake = %+v", hs)
	}

	var ti wire.TableInfo
	if code := getJSONInto("/api/backend/info?table=census", &ti); code != 200 {
		t.Fatalf("info status %d", code)
	}
	if ti.Name != "census" || ti.Rows != 300 || len(ti.Columns) == 0 {
		t.Errorf("info = %+v", ti)
	}

	var ts wire.TableStats
	if code := getJSONInto("/api/backend/stats?table=census", &ts); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if ts.Rows != 300 {
		t.Errorf("stats = %+v", ts)
	}

	var tv wire.TableVersion
	if code := getJSONInto("/api/backend/version?table=census", &tv); code != 200 {
		t.Fatalf("version status %d", code)
	}
	if !tv.OK || tv.Version == "" {
		t.Errorf("version = %+v", tv)
	}

	// Parameter validation: missing table 400, unknown backend 400.
	var e errorResponse
	if code := getJSONInto("/api/backend/info", &e); code != http.StatusBadRequest {
		t.Errorf("missing table param = %d, want 400", code)
	}
	if code := getJSONInto("/api/backend/caps?backend=nosuch", &e); code != http.StatusBadRequest {
		t.Errorf("unknown backend = %d, want 400", code)
	}
}

// TestQueryFoldsIntoExecutorTotals: /api/query executions must land in
// the same executor totals and query-latency histogram as engine
// traffic — the histogram's count equals queries_executed with both
// kinds of traffic mixed, and requests still counts recommendations
// only.
func TestQueryFoldsIntoExecutorTotals(t *testing.T) {
	srv, s, _ := newStatusServer(t)

	for i := 0; i < 3; i++ {
		code, msg := postStatus(t, srv.URL+"/api/query", wire.QueryRequest{SQL: "SELECT sex, COUNT(*) FROM census GROUP BY sex"})
		if code != 200 {
			t.Fatalf("query %d failed: %d %s", i, code, msg)
		}
	}
	code, msg := postStatus(t, srv.URL+"/api/recommend", RecommendRequest{Table: "census", TargetWhere: "sex = 'Female'", K: 2})
	if code != 200 {
		t.Fatalf("recommend failed: %d %s", code, msg)
	}

	requests, _, totals := s.exec.snapshot()
	if requests != 1 {
		t.Errorf("requests = %d, want 1 (raw queries are not recommendations)", requests)
	}
	if totals.QueriesExecuted < 4 {
		t.Errorf("QueriesExecuted = %d, want >= 4 (3 raw + recommend traffic)", totals.QueriesExecuted)
	}
	if totals.QueriesExecuted != totals.VectorizedQueries+totals.FallbackQueries {
		t.Errorf("executed %d != vectorized %d + fallback %d", totals.QueriesExecuted, totals.VectorizedQueries, totals.FallbackQueries)
	}
	if hist := s.tel.QueryLatency.Count(); hist != uint64(totals.QueriesExecuted) {
		t.Errorf("query histogram count = %d, queries_executed = %d — the two paths disagree", hist, totals.QueriesExecuted)
	}

	// A failed query must not advance the executed counters (no stats
	// were produced) nor the histogram.
	before := s.tel.QueryLatency.Count()
	if code, _ := postStatus(t, srv.URL+"/api/query", wire.QueryRequest{SQL: "SELEKT"}); code != 400 {
		t.Fatalf("bad query = %d", code)
	}
	if after := s.tel.QueryLatency.Count(); after != before {
		t.Errorf("failed query observed latency (%d -> %d)", before, after)
	}
}

// TestQueryWireMode: {"wire":true} returns typed values and stats.
func TestQueryWireMode(t *testing.T) {
	srv, _, _ := newStatusServer(t)
	body, _ := json.Marshal(wire.QueryRequest{SQL: "SELECT COUNT(*) FROM census", Wire: true})
	resp, err := http.Post(srv.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr wire.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0].K != "i" || qr.Rows[0][0].I != 300 {
		t.Errorf("wire response = %+v", qr)
	}
	if qr.Stats.RowsScanned == 0 {
		t.Errorf("wire stats = %+v, want RowsScanned > 0", qr.Stats)
	}
}

// TestHealthzCarriesRobustnessCounters: the new counter families are
// present (zero on an idle server) so dashboards can rely on the keys.
func TestHealthzCarriesRobustnessCounters(t *testing.T) {
	srv, _, _ := newStatusServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Executor map[string]any `json:"executor"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shard_partials_cached", "hedged_partials", "hedge_wins", "net_retries"} {
		if _, ok := h.Executor[key]; !ok {
			t.Errorf("healthz executor payload missing %q", key)
		}
	}
}
