package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// newTelemetryServer loads a census big enough that execution dominates
// request handling, and returns both halves so tests can reach server
// methods (EnablePprof, SetSlowQueryLog) directly.
func newTelemetryServer(t *testing.T, rows int) (*Server, *httptest.Server) {
	t.Helper()
	db := sqldb.NewDB()
	spec := dataset.Census().WithRows(rows)
	if _, err := dataset.Build(db, spec, sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

// TestTracedRecommendSpansCoverRequest checks the tentpole acceptance
// bar: a traced /api/recommend response decomposes its wall-clock into
// spans whose direct children sum to at least 90% of the recommend
// span's own duration — the trace explains where the time went rather
// than leaving it in untraced gaps.
func TestTracedRecommendSpansCoverRequest(t *testing.T) {
	_, srv := newTelemetryServer(t, 20000)
	noCache := false
	var resp RecommendResponse
	req := RecommendRequest{Table: "census", TargetWhere: "sex = 'F'", Trace: true, Cache: &noCache}
	if code := postJSON(t, srv.URL+"/api/recommend", req, &resp); code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	if resp.Trace == nil {
		t.Fatal("trace requested but response has no trace")
	}
	if resp.Trace.Name != "request" {
		t.Errorf("trace root = %q, want request", resp.Trace.Name)
	}
	rec := resp.Trace.Find("recommend")
	if rec == nil {
		t.Fatalf("no recommend span:\n%s", resp.Trace.Render())
	}
	if len(rec.Children) == 0 {
		t.Fatalf("recommend span has no children:\n%s", resp.Trace.Render())
	}
	if sum := rec.ChildrenDurMS(); sum < 0.9*rec.DurMS {
		t.Errorf("child spans cover %.3fms of %.3fms (%.0f%%), want >= 90%%:\n%s",
			sum, rec.DurMS, 100*sum/rec.DurMS, resp.Trace.Render())
	}
	for _, name := range []string{"view_enum", "execute", "query", "score"} {
		if resp.Trace.Find(name) == nil {
			t.Errorf("trace missing %q span:\n%s", name, resp.Trace.Render())
		}
	}
}

// TestUntracedRecommendHasNoTrace checks the opt-in: without
// {"trace": true} the response carries no span tree.
func TestUntracedRecommendHasNoTrace(t *testing.T) {
	_, srv := newTelemetryServer(t, 2000)
	var resp RecommendResponse
	req := RecommendRequest{Table: "census", TargetWhere: "sex = 'F'"}
	if code := postJSON(t, srv.URL+"/api/recommend", req, &resp); code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	if resp.Trace != nil {
		t.Errorf("trace present without opt-in:\n%s", resp.Trace.Render())
	}
}

// TestMetricsEndpoint scrapes /metrics after serving a recommendation
// and runs the payload through the self-contained exposition-format
// validator, then spot-checks the advertised families.
func TestMetricsEndpoint(t *testing.T) {
	_, srv := newTelemetryServer(t, 2000)
	var resp RecommendResponse
	req := RecommendRequest{Table: "census", TargetWhere: "sex = 'F'"}
	if code := postJSON(t, srv.URL+"/api/recommend", req, &resp); code != 200 {
		t.Fatalf("recommend = %d", code)
	}

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheusText(body); err != nil {
		t.Fatalf("invalid exposition format: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"seedb_requests_total 1",
		"seedb_queries_executed_total",
		"seedb_vectorized_queries_total",
		"seedb_fallback_queries_total",
		"seedb_rows_scanned_total",
		"seedb_cache_hits_total",
		"seedb_cache_budget_bytes",
		"seedb_request_duration_seconds_bucket",
		"seedb_request_duration_seconds_count 1",
		"seedb_query_duration_seconds_sum",
		"seedb_shard_partial_duration_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The query histogram must count exactly the executed queries — the
	// guard that keeps latency percentiles honest.
	want := "seedb_query_duration_seconds_count " + jsonNumber(resp.QueriesExecuted)
	if !strings.Contains(text, want) {
		t.Errorf("/metrics missing %q (histogram count != queries executed)", want)
	}
}

// jsonNumber formats n the way the exposition writer does.
func jsonNumber(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestPprofGating checks that the profiling endpoints are mounted only
// after EnablePprof.
func TestPprofGating(t *testing.T) {
	_, srv := newTelemetryServer(t, 500)
	res, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 404 {
		t.Errorf("/debug/pprof/cmdline without EnablePprof = %d, want 404", res.StatusCode)
	}

	s2, srv2 := newTelemetryServer(t, 500)
	s2.EnablePprof()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		res, err := http.Get(srv2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Errorf("%s with EnablePprof = %d, want 200", path, res.StatusCode)
		}
	}
}

// TestHealthzConsistentUnderLoad scrapes /healthz concurrently with
// recommendations and asserts the executor invariants hold in every
// snapshot: queries_executed == vectorized + fallback, and the fallback
// reasons sum to the fallback count. Under the old per-field atomics a
// scrape could land mid-record and tear these identities; run with
// -race this also pins the locking.
func TestHealthzConsistentUnderLoad(t *testing.T) {
	_, srv := newTelemetryServer(t, 1000)
	noCache := false
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var resp RecommendResponse
				req := RecommendRequest{Table: "census", TargetWhere: "sex = 'F'", Cache: &noCache}
				postJSON(t, srv.URL+"/api/recommend", req, &resp)
			}
		}()
	}

	for i := 0; i < 40; i++ {
		var out struct {
			Executor struct {
				Queries    int            `json:"queries_executed"`
				Vectorized int            `json:"vectorized_queries"`
				Fallback   int            `json:"fallback_queries"`
				Reasons    map[string]int `json:"fallback_reasons"`
			} `json:"executor"`
		}
		if code := getJSON(t, srv.URL+"/healthz", &out); code != 200 {
			t.Fatalf("healthz = %d", code)
		}
		e := out.Executor
		if e.Queries != e.Vectorized+e.Fallback {
			t.Fatalf("torn snapshot: queries_executed %d != vectorized %d + fallback %d",
				e.Queries, e.Vectorized, e.Fallback)
		}
		sum := 0
		for _, n := range e.Reasons {
			sum += n
		}
		if sum != e.Fallback {
			t.Fatalf("torn snapshot: fallback_reasons sum %d != fallback_queries %d", sum, e.Fallback)
		}
	}
	close(done)
	wg.Wait()
}

// syncBuffer is a writer safe for concurrent slow-log appends.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog wires a slow log with a 1ns threshold (everything is
// slow) and checks both entry kinds arrive as parseable JSON lines with
// the documented fields.
func TestSlowQueryLog(t *testing.T) {
	s, srv := newTelemetryServer(t, 2000)
	var buf syncBuffer
	s.SetSlowQueryLog(&buf, time.Nanosecond)

	noCache := false
	var resp RecommendResponse
	req := RecommendRequest{Table: "census", TargetWhere: "sex = 'F'", Cache: &noCache}
	if code := postJSON(t, srv.URL+"/api/recommend", req, &resp); code != 200 {
		t.Fatalf("recommend = %d", code)
	}

	kinds := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e telemetry.SlowEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("slow-log line is not JSON: %v\n%s", err, sc.Text())
		}
		kinds[e.Kind]++
		if e.Time == "" {
			t.Errorf("slow-log entry has no timestamp: %s", sc.Text())
		}
		if e.ThresholdMS <= 0 || e.ElapsedMS < 0 {
			t.Errorf("slow-log entry has bad durations: %s", sc.Text())
		}
		switch e.Kind {
		case "query":
			if e.SQL == "" || e.Table == "" {
				t.Errorf("slow query entry missing sql/table: %s", sc.Text())
			}
		case "request":
			if e.Table != "census" || e.Queries != resp.QueriesExecuted {
				t.Errorf("slow request entry = %s, want table census, queries %d", sc.Text(), resp.QueriesExecuted)
			}
		default:
			t.Errorf("unknown slow-log kind %q", e.Kind)
		}
	}
	if kinds["query"] == 0 || kinds["request"] != 1 {
		t.Errorf("slow-log kinds = %v, want every query and exactly one request", kinds)
	}
}

// TestRequestSlowThresholdOverride checks the per-request slow_query_ms
// knob: a huge threshold suppresses entries entirely even though the
// server default would flag everything.
func TestRequestSlowThresholdOverride(t *testing.T) {
	s, srv := newTelemetryServer(t, 1000)
	var buf syncBuffer
	s.SetSlowQueryLog(&buf, time.Nanosecond)

	noCache := false
	req := RecommendRequest{Table: "census", TargetWhere: "sex = 'F'", Cache: &noCache, SlowQueryMS: 1e9}
	var resp RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &resp); code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	if got := buf.String(); got != "" {
		t.Errorf("slow log not empty with per-request 1e9ms threshold:\n%s", got)
	}
}
