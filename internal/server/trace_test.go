package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seedb/internal/backend"
	"seedb/internal/backend/netbe"
	"seedb/internal/backend/netbe/wire"
	"seedb/internal/backend/shardbe"
	"seedb/internal/dataset"
	"seedb/internal/sqldb"
	"seedb/internal/telemetry"
)

// newFleetServer stands up a two-process fleet behind one router: the
// census is scattered across two child DBs, each served by its own
// seedb-server over HTTP, and the parent registers a shard router of
// netbe clients as backend "fleet". Queries through it cross a real
// process boundary (wire encoding, headers, the lot) twice.
func newFleetServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	src := sqldb.NewDB()
	spec := dataset.Census().WithRows(6000)
	if _, err := dataset.Build(src, spec, sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	dbs, _ := shardbe.EmbeddedChildren(2)
	tab, _ := src.Table("census")
	if err := shardbe.ScatterTable(src, "census", dbs, shardbe.Blocks{Total: tab.NumRows()}); err != nil {
		t.Fatal(err)
	}
	clients := make([]backend.Backend, 2)
	for i, db := range dbs {
		child := httptest.NewServer(New(db))
		t.Cleanup(child.Close)
		c, err := netbe.New(context.Background(), child.URL,
			netbe.Options{Name: "child" + string(rune('0'+i))})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	router, err := shardbe.New(clients, shardbe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(src)
	if err := s.RegisterBackend("fleet", router); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

// remoteNodes collects every grafted child-process span in the tree.
func remoteNodes(n *telemetry.SpanNode) []*telemetry.SpanNode {
	var out []*telemetry.SpanNode
	var walk func(n *telemetry.SpanNode)
	walk = func(n *telemetry.SpanNode) {
		if n.Attrs["remote"] != "" {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

// TestStitchedCrossProcessTrace drives a traced recommendation through
// a live two-child fleet and pins the distributed-tracing acceptance:
// the response carries ONE stitched tree whose remote child spans —
// executed in the child processes and returned over the wire — sit
// under the router's shard.exec spans, contain the child-side
// plan/scan/finalize work, and account for at least 90% of the remote
// execution wall time. The same trace replays from the parent's trace
// store after the request has completed.
func TestStitchedCrossProcessTrace(t *testing.T) {
	s, srv := newFleetServer(t)
	req := map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            3,
		"strategy":     "sharing",
		"backend":      "fleet",
		"trace":        true,
	}
	var resp RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &resp); code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	if resp.Trace == nil {
		t.Fatal("traced request returned no trace")
	}
	if !isHexID(resp.TraceID, 32) {
		t.Fatalf("trace_id = %q, want 32-hex", resp.TraceID)
	}

	remotes := remoteNodes(resp.Trace)
	if len(remotes) < 2 {
		t.Fatalf("%d remote spans, want >= 2 (one per child process):\n%s",
			len(remotes), resp.Trace.Render())
	}
	procs := map[string]bool{}
	for _, rn := range remotes {
		procs[strings.Fields(rn.Attrs["process"])[0]] = true
		if rn.Name != "child.query" {
			t.Errorf("remote span name = %q, want child.query", rn.Name)
		}
		if rn.Find("sqldb.scan") == nil || rn.Find("sqldb.plan") == nil {
			t.Errorf("remote span lacks child-side plan/scan work:\n%s", rn.Render())
		}
		if cov := rn.ChildrenDurMS(); cov < 0.9*rn.DurMS {
			t.Errorf("remote span coverage %.3fms of %.3fms (<90%%):\n%s",
				cov, rn.DurMS, rn.Render())
		}
	}
	if !procs["child0"] || !procs["child1"] {
		t.Errorf("remote processes %v, want both child0 and child1", procs)
	}
	// Remote subtrees graft under the router's shard.exec spans.
	fan := resp.Trace.Find("shard.fanout")
	if fan == nil {
		t.Fatalf("no shard.fanout span:\n%s", resp.Trace.Render())
	}
	for _, c := range fan.Children {
		if c.Name == "shard.exec" && c.Find("child.query") == nil {
			t.Errorf("shard.exec has no grafted remote subtree:\n%s", c.Render())
		}
	}

	// The completed trace replays from the retention store.
	var stored telemetry.StoredTrace
	if code := getJSON(t, srv.URL+"/api/traces/"+resp.TraceID, &stored); code != 200 {
		t.Fatalf("trace replay = %d", code)
	}
	if stored.ID != resp.TraceID || stored.Root == nil {
		t.Fatalf("stored trace = %+v", stored)
	}
	if len(remoteNodes(stored.Root)) != len(remotes) {
		t.Error("replayed trace lost its remote spans")
	}
	var list struct {
		Traces []telemetry.TraceSummary `json:"traces"`
	}
	if code := getJSON(t, srv.URL+"/api/traces", &list); code != 200 {
		t.Fatalf("trace list = %d", code)
	}
	found := false
	for _, ts := range list.Traces {
		if ts.ID == resp.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s missing from listing %+v", resp.TraceID, list.Traces)
	}
	if got := s.TraceStore().Stats().Sampled; got < 1 {
		t.Errorf("sampled counter = %d", got)
	}
	// An unknown ID is a clean 404.
	if code := getJSON(t, srv.URL+"/api/traces/ffffffffffffffffffffffffffffffff", nil); code != 404 {
		t.Errorf("unknown trace = %d, want 404", code)
	}
}

// TestHeadSampling pins the always-on sampling contract: with p=1 a
// request that never asked for tracing still gets a trace_id (but no
// inline tree — that stays opt-in) and the trace lands in the store;
// with sampling off, an untraced request carries no trace identity.
func TestHeadSampling(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := dataset.Build(db, dataset.Census().WithRows(500), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	s.SetTraceSampling(1)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	req := map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            2,
		"strategy":     "sharing",
	}
	var resp RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &resp); code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	if !isHexID(resp.TraceID, 32) {
		t.Fatalf("sampled request trace_id = %q, want 32-hex", resp.TraceID)
	}
	if resp.Trace != nil {
		t.Error("sampled request leaked an inline trace tree")
	}
	if _, ok := s.TraceStore().Get(resp.TraceID); !ok {
		t.Error("sampled trace not retained")
	}

	// Sampling off: no trace identity unless requested.
	s2 := New(db)
	srv2 := httptest.NewServer(s2)
	t.Cleanup(srv2.Close)
	var resp2 RecommendResponse
	if code := postJSON(t, srv2.URL+"/api/recommend", req, &resp2); code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	if resp2.TraceID != "" || resp2.Trace != nil {
		t.Errorf("unsampled request carried trace identity %q", resp2.TraceID)
	}
}

// TestSlowLogCarriesTraceID pins the slow-log join key: with a
// threshold that classifies everything as slow, both the per-query and
// the whole-request slow-log entries carry the request's trace ID, so
// a slow-log line can be joined to its retained trace.
func TestSlowLogCarriesTraceID(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := dataset.Build(db, dataset.Census().WithRows(500), sqldb.LayoutCol); err != nil {
		t.Fatal(err)
	}
	s := New(db)
	buf := &lockedBuffer{}
	s.SetSlowQueryLog(buf, time.Nanosecond)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	req := map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            2,
		"strategy":     "sharing",
		"trace":        true,
	}
	var resp RecommendResponse
	if code := postJSON(t, srv.URL+"/api/recommend", req, &resp); code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	if resp.TraceID == "" {
		t.Fatal("no trace_id on traced request")
	}

	kinds := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var e telemetry.SlowEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad slow-log line %q: %v", line, err)
		}
		if e.TraceID == resp.TraceID {
			kinds[e.Kind] = true
		}
	}
	if !kinds["query"] || !kinds["request"] {
		t.Errorf("slow-log kinds joined to trace %s = %v, want query and request\nlog:\n%s",
			resp.TraceID, kinds, buf.String())
	}
}

// TestMetricsTraceFamilies: the trace retention counters surface on
// /metrics after a traced request.
func TestMetricsTraceFamilies(t *testing.T) {
	srv := newTestServer(t)
	req := map[string]any{
		"table":        "census",
		"target_where": "marital = 'Unmarried'",
		"k":            2,
		"strategy":     "sharing",
		"trace":        true,
	}
	if code := postJSON(t, srv.URL+"/api/recommend", req, nil); code != 200 {
		t.Fatalf("recommend = %d", code)
	}
	_, body := getBody(t, srv.URL+"/metrics")
	for _, fam := range []string{
		"seedb_traces_sampled_total",
		"seedb_trace_dropped_total",
		"seedb_trace_store_entries",
		"seedb_trace_store_bytes",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("metrics missing %s", fam)
		}
	}
	if !strings.Contains(body, "seedb_traces_sampled_total 1") {
		t.Errorf("sampled counter not incremented:\n%s", body)
	}
}

// TestQueryEndpointChildTrace pins the wire contract for cross-process
// propagation: a /api/query request carrying a Traceparent header gets
// the child process's span tree back in the response; one without the
// header does not pay for tracing at all.
func TestQueryEndpointChildTrace(t *testing.T) {
	srv := newTestServer(t)
	body := `{"sql": "SELECT marital, COUNT(*) FROM census GROUP BY marital", "wire": true}`

	post := func(traceparent string) wire.QueryResponse {
		t.Helper()
		hreq, err := http.NewRequest("POST", srv.URL+"/api/query", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			hreq.Header.Set(telemetry.TraceparentHeader, traceparent)
		}
		hresp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != 200 {
			t.Fatalf("query = %d", hresp.StatusCode)
		}
		var wresp wire.QueryResponse
		if err := json.NewDecoder(hresp.Body).Decode(&wresp); err != nil {
			t.Fatal(err)
		}
		return wresp
	}

	const tp = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	wresp := post(tp)
	if wresp.Trace == nil {
		t.Fatal("traceparent-carrying query returned no child trace")
	}
	if wresp.Trace.Name != "child.query" || wresp.Trace.Find("sqldb.scan") == nil {
		t.Errorf("child trace = %s", wresp.Trace.Render())
	}

	if plain := post(""); plain.Trace != nil {
		t.Error("untraced query paid for a child trace")
	}
}
