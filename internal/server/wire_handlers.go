// Backend introspection endpoints and error classification for the
// netbe wire protocol (internal/backend/netbe/wire). With these four
// GET endpoints plus the typed /api/query path, a remote seedb-server
// is a complete backend.Backend: a netbe client in another process —
// typically a child of a shardbe router — introspects schemas, keys its
// caches off version tokens, and executes queries exactly as an
// in-process backend would.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"seedb/internal/backend"
	"seedb/internal/backend/netbe/wire"
	"seedb/internal/sqldb"
)

// statusForError classifies an error for the HTTP status line, so
// clients — above all the netbe retry policy — can tell a mistake from
// an outage without parsing message text:
//
//	sqldb.ErrParse / anything else client-shaped → 400 (never retry)
//	backend.ErrNoTable                           → 404 (never retry)
//	backend.ErrUnavailable                       → 502 (retryable)
//	context.DeadlineExceeded                     → 504 (retryable)
//
// The deadline check runs first: a timed-out call often wraps the
// deadline error inside backend failures, and "we ran out of time" is
// the more actionable diagnosis.
func statusForError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, backend.ErrNoTable):
		return http.StatusNotFound
	case errors.Is(err, backend.ErrUnavailable):
		return http.StatusBadGateway
	case errors.Is(err, sqldb.ErrParse):
		return http.StatusBadRequest
	default:
		// Unknown executor complaints (unknown column, unsupported
		// construct) are requests the client should not repeat verbatim.
		return http.StatusBadRequest
	}
}

// wireBackend resolves the ?backend= selector for the wire endpoints.
func (s *Server) wireBackend(w http.ResponseWriter, r *http.Request) (*registeredBackend, bool) {
	rb, err := s.backendFor(r.URL.Query().Get("backend"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return rb, true
}

// wireTable extracts the mandatory ?table= parameter.
func wireTable(w http.ResponseWriter, r *http.Request) (string, bool) {
	table := r.URL.Query().Get("table")
	if table == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing table parameter"))
		return "", false
	}
	return table, true
}

// handleBackendCaps implements GET /api/backend/caps — the netbe
// handshake: protocol version plus the selected backend's capability
// flags, so a remote engine degrades for this store exactly as a local
// one would.
func (s *Server) handleBackendCaps(w http.ResponseWriter, r *http.Request) {
	rb, ok := s.wireBackend(w, r)
	if !ok {
		return
	}
	caps := rb.be.Capabilities()
	writeJSON(w, http.StatusOK, wire.Handshake{
		Proto:                   wire.ProtoVersion,
		Backend:                 rb.name,
		SupportsVectorized:      caps.SupportsVectorized,
		SupportsPhasedExecution: caps.SupportsPhasedExecution,
	})
}

// handleBackendInfo implements GET /api/backend/info?table=t: the
// table's schema description. A missing table is 404 (ErrNoTable on the
// client), an introspection outage 502.
func (s *Server) handleBackendInfo(w http.ResponseWriter, r *http.Request) {
	rb, ok := s.wireBackend(w, r)
	if !ok {
		return
	}
	table, ok := wireTable(w, r)
	if !ok {
		return
	}
	ti, err := rb.be.TableInfo(r.Context(), table)
	if err != nil {
		writeError(w, statusForError(err), err)
		return
	}
	writeJSON(w, http.StatusOK, wire.FromTableInfo(ti))
}

// handleBackendStats implements GET /api/backend/stats?table=t: the
// per-column statistics the view generator needs.
func (s *Server) handleBackendStats(w http.ResponseWriter, r *http.Request) {
	rb, ok := s.wireBackend(w, r)
	if !ok {
		return
	}
	table, ok := wireTable(w, r)
	if !ok {
		return
	}
	ts, err := rb.be.TableStats(r.Context(), table)
	if err != nil {
		writeError(w, statusForError(err), err)
		return
	}
	writeJSON(w, http.StatusOK, wire.FromTableStats(ts))
}

// handleBackendVersion implements GET /api/backend/version?table=t: the
// table's current version token. The payload's OK field carries the
// existence bit; the call itself only fails on bad parameters, matching
// TableVersion's (token, ok) shape rather than an error contract.
func (s *Server) handleBackendVersion(w http.ResponseWriter, r *http.Request) {
	rb, ok := s.wireBackend(w, r)
	if !ok {
		return
	}
	table, ok := wireTable(w, r)
	if !ok {
		return
	}
	v, vok := rb.be.TableVersion(r.Context(), table)
	writeJSON(w, http.StatusOK, wire.TableVersion{Version: v, OK: vok})
}
