package sqldb

import "fmt"

// aggKind identifies an aggregate function.
type aggKind uint8

const (
	aggCount aggKind = iota
	aggCountStar
	aggSum
	aggAvg
	aggMin
	aggMax
)

// aggSpec is a planned aggregate slot: the function plus its compiled
// argument expression.
type aggSpec struct {
	kind     aggKind
	arg      evalFn // nil for COUNT(*)
	distinct bool
	// argCol/argType record the base-table column when the argument is a
	// plain column reference (-1 otherwise). The vectorized executor uses
	// them to read the column vector directly instead of calling arg.
	argCol  int
	argType ColumnType
	// src is the aggregate call this slot was planned from. Its argument
	// expressions are base-schema ASTs (slots are planned before the
	// post-aggregation rewrite), which is what lets the shard planner
	// (shardexec.go) re-render a decomposed form of the call as child SQL.
	src *FuncExpr
}

// newAggSpec plans one aggregate function call.
func newAggSpec(f *FuncExpr, schema *Schema) (aggSpec, error) {
	spec := aggSpec{argCol: -1, src: f}
	switch f.Name {
	case "COUNT":
		if f.Star {
			spec.kind = aggCountStar
			return spec, nil
		}
		spec.kind = aggCount
	case "SUM":
		spec.kind = aggSum
	case "AVG":
		spec.kind = aggAvg
	case "MIN":
		spec.kind = aggMin
	case "MAX":
		spec.kind = aggMax
	default:
		return spec, fmt.Errorf("sqldb: unknown aggregate %s", f.Name)
	}
	if len(f.Args) != 1 {
		return spec, fmt.Errorf("sqldb: %s expects exactly one argument", f.Name)
	}
	if IsAggregate(f.Args[0]) {
		return spec, fmt.Errorf("sqldb: nested aggregates are not allowed")
	}
	arg, err := compileScalar(f.Args[0], schema)
	if err != nil {
		return spec, err
	}
	spec.arg = arg
	if c, ok := f.Args[0].(*ColumnExpr); ok {
		if idx, found := schema.Lookup(c.Name); found {
			spec.argCol = idx
			spec.argType = schema.Column(idx).Type
		}
	}
	spec.distinct = f.Distinct
	if spec.distinct && spec.kind != aggCount {
		return spec, fmt.Errorf("sqldb: DISTINCT is only supported with COUNT")
	}
	return spec, nil
}

// aggState is the running accumulator for one aggregate slot within one
// group.
type aggState struct {
	count    int64
	sum      float64
	min, max Value
	seen     bool
	distinct map[string]struct{} // only for COUNT(DISTINCT)
}

// update folds one input row into the accumulator.
func (s *aggState) update(spec *aggSpec, row RowView) {
	if spec.kind == aggCountStar {
		s.count++
		return
	}
	v := spec.arg(row)
	if v.IsNull() {
		return // SQL aggregates skip NULLs
	}
	switch spec.kind {
	case aggCount:
		if spec.distinct {
			if s.distinct == nil {
				s.distinct = make(map[string]struct{})
			}
			s.distinct[string(v.appendKey(nil))] = struct{}{}
			return
		}
		s.count++
	case aggSum, aggAvg:
		f, ok := v.AsFloat()
		if !ok {
			return
		}
		s.count++
		s.sum += f
	case aggMin:
		if !s.seen || v.Compare(s.min) < 0 {
			s.min = v
			s.seen = true
		}
	case aggMax:
		if !s.seen || v.Compare(s.max) > 0 {
			s.max = v
			s.seen = true
		}
	}
}

// merge folds another accumulator (e.g. from a different partition) into s.
func (s *aggState) merge(spec *aggSpec, o *aggState) {
	switch spec.kind {
	case aggCountStar, aggCount:
		if spec.distinct {
			if s.distinct == nil {
				s.distinct = make(map[string]struct{}, len(o.distinct))
			}
			for k := range o.distinct {
				s.distinct[k] = struct{}{}
			}
			return
		}
		s.count += o.count
	case aggSum, aggAvg:
		s.count += o.count
		s.sum += o.sum
	case aggMin:
		if o.seen && (!s.seen || o.min.Compare(s.min) < 0) {
			s.min = o.min
			s.seen = true
		}
	case aggMax:
		if o.seen && (!s.seen || o.max.Compare(s.max) > 0) {
			s.max = o.max
			s.seen = true
		}
	}
}

// final produces the aggregate's result value.
func (s *aggState) final(spec *aggSpec) Value {
	switch spec.kind {
	case aggCountStar:
		return Int(s.count)
	case aggCount:
		if spec.distinct {
			return Int(int64(len(s.distinct)))
		}
		return Int(s.count)
	case aggSum:
		if s.count == 0 {
			return Null()
		}
		return Float(s.sum)
	case aggAvg:
		if s.count == 0 {
			return Null()
		}
		return Float(s.sum / float64(s.count))
	case aggMin:
		if !s.seen {
			return Null()
		}
		return s.min
	case aggMax:
		if !s.seen {
			return Null()
		}
		return s.max
	}
	return Null()
}
