package sqldb

import (
	"math"
	"math/rand"
	"testing"
)

// TestAggStateMergeEqualsSequential pins the mergeability invariant: for
// every aggregate, folding rows into two accumulators and merging them
// must equal folding all rows into one. (Partition-parallel aggregation
// depends on this.)
func TestAggStateMergeEqualsSequential(t *testing.T) {
	schema := MustSchema(Column{Name: "m", Type: TypeFloat})
	rng := rand.New(rand.NewSource(31))

	specs := []struct {
		name string
		sql  string
	}{
		{"count-star", "COUNT(*)"},
		{"count", "COUNT(m)"},
		{"count-distinct", "COUNT(DISTINCT m)"},
		{"sum", "SUM(m)"},
		{"avg", "AVG(m)"},
		{"min", "MIN(m)"},
		{"max", "MAX(m)"},
	}
	for _, sp := range specs {
		stmt := mustParse(t, "SELECT "+sp.sql+" FROM t")
		fe := stmt.Items[0].Expr.(*FuncExpr)
		spec, err := newAggSpec(fe, schema)
		if err != nil {
			t.Fatalf("%s: %v", sp.name, err)
		}
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(40)
			rows := make([][]Value, n)
			for i := range rows {
				if rng.Intn(8) == 0 {
					rows[i] = []Value{Null()}
				} else {
					rows[i] = []Value{Float(float64(rng.Intn(10)))}
				}
			}
			cut := rng.Intn(n + 1)

			var whole, left, right aggState
			for i, r := range rows {
				whole.update(&spec, rowSlice(r))
				if i < cut {
					left.update(&spec, rowSlice(r))
				} else {
					right.update(&spec, rowSlice(r))
				}
			}
			left.merge(&spec, &right)

			a, b := whole.final(&spec), left.final(&spec)
			if a.Kind != b.Kind {
				t.Fatalf("%s trial %d: kinds differ: %v vs %v", sp.name, trial, a, b)
			}
			af, aok := a.AsFloat()
			bf, bok := b.AsFloat()
			if aok != bok || (aok && math.Abs(af-bf) > 1e-9) {
				t.Fatalf("%s trial %d: merged %v != sequential %v", sp.name, trial, b, a)
			}
		}
	}
}

// TestAggStateMergeEmptySides: merging with an empty accumulator is the
// identity in both directions.
func TestAggStateMergeEmptySides(t *testing.T) {
	schema := MustSchema(Column{Name: "m", Type: TypeFloat})
	stmt := mustParse(t, "SELECT MIN(m) FROM t")
	spec, err := newAggSpec(stmt.Items[0].Expr.(*FuncExpr), schema)
	if err != nil {
		t.Fatal(err)
	}
	var full, empty aggState
	full.update(&spec, rowSlice([]Value{Float(5)}))
	full.update(&spec, rowSlice([]Value{Float(2)}))

	merged := full
	merged.merge(&spec, &empty)
	if v := merged.final(&spec); v.F != 2 {
		t.Errorf("merge with empty changed result: %v", v)
	}
	var fresh aggState
	fresh.merge(&spec, &full)
	if v := fresh.final(&spec); v.F != 2 {
		t.Errorf("merge into empty lost state: %v", v)
	}
	// Fully empty MIN finalizes to NULL.
	var never aggState
	if v := never.final(&spec); !v.IsNull() {
		t.Errorf("empty MIN = %v, want NULL", v)
	}
}

// TestPostAggregationExpressionForms exercises the grouped-query
// rewriter over every expression node type.
func TestPostAggregationExpressionForms(t *testing.T) {
	bothLayouts(t, func(t *testing.T, db *DB) {
		rows := queryRows(t, db, `SELECT sex,
			CASE WHEN AVG(hours) > 36 THEN 'hi' ELSE 'lo' END,
			NOT (COUNT(*) > 2),
			AVG(hours) BETWEEN 30 AND 40,
			COUNT(*) IN (2, 3),
			SUM(income) IS NULL,
			-(MIN(hours)),
			ABS(0 - MAX(hours))
			FROM census GROUP BY sex ORDER BY sex`)
		if len(rows) != 2 {
			t.Fatalf("got %d rows", len(rows))
		}
		f := rows[0] // F: avg hours 35, count 3, min 30, max 40
		if f[1].S != "lo" || f[2].Truthy() || !f[3].Truthy() || !f[4].Truthy() || f[5].Truthy() {
			t.Errorf("F row = %v", f)
		}
		if f[6].I != -30 || f[7].I != 40 {
			t.Errorf("F arithmetic over aggregates = %v", f)
		}
		m := rows[1] // M: avg hours ≈ 38.3
		if m[1].S != "hi" {
			t.Errorf("M row = %v", m)
		}
	})
}

// TestLeadingDotNumber covers the ".5" literal form.
func TestLeadingDotNumber(t *testing.T) {
	db := buildDB(t, LayoutCol)
	res, err := db.Query("SELECT COUNT(*) FROM census WHERE income > .5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 5 {
		t.Errorf("count = %v, want 5", res.Rows[0][0])
	}
}

// TestLayoutAccessors covers the trivial layout methods through the
// interface.
func TestLayoutAccessors(t *testing.T) {
	row := NewRowStore("r", testSchema())
	col := NewColStore("c", testSchema())
	if row.Layout() != LayoutRow || col.Layout() != LayoutCol {
		t.Error("layout accessors wrong")
	}
	if row.Layout().String() != "ROW" || col.Layout().String() != "COL" {
		t.Error("layout names wrong")
	}
}

// TestPreparedSQLRoundTrip covers PreparedQuery.SQL.
func TestPreparedSQLRoundTrip(t *testing.T) {
	db := buildDB(t, LayoutCol)
	q, err := db.Prepare("select sex, count(*) from census group by sex")
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT sex, COUNT(*) FROM census GROUP BY sex"
	if q.SQL() != want {
		t.Errorf("SQL() = %q, want %q", q.SQL(), want)
	}
}

// TestCorruptTupleDetection: a row store scan must fail loudly on
// corrupted tuple bytes rather than returning garbage.
func TestCorruptTupleDetection(t *testing.T) {
	rs := NewRowStore("t", MustSchema(Column{Name: "x", Type: TypeInt}))
	if err := rs.AppendRow([]Value{Int(7)}); err != nil {
		t.Fatal(err)
	}
	rs.data[0] = 99 // clobber the field tag
	err := rs.ScanRange(0, 1, nil, func(RowView) error { return nil })
	if err == nil {
		t.Error("corrupt tuple should fail the scan")
	}
}
