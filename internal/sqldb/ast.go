package sqldb

import (
	"fmt"
	"strings"
)

// Expr is a parsed SQL expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// LiteralExpr is a constant value.
type LiteralExpr struct{ Val Value }

// ColumnExpr is a reference to a column by name.
type ColumnExpr struct{ Name string }

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// BinaryExpr is a binary operator application.
type BinaryExpr struct {
	Op   string // +,-,*,/,%,=,!=,<,<=,>,>=,AND,OR,||
	L, R Expr
}

// InExpr is x IN (a, b, ...) or x NOT IN (...).
type InExpr struct {
	X    Expr
	List []Expr
	Neg  bool
}

// IsNullExpr is x IS NULL or x IS NOT NULL.
type IsNullExpr struct {
	X   Expr
	Neg bool
}

// BetweenExpr is x BETWEEN lo AND hi (inclusive).
type BetweenExpr struct {
	X, Lo, Hi Expr
	Neg       bool
}

// CaseExpr is CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // may be nil, meaning NULL
}

// CaseWhen is one WHEN/THEN arm of a CASE expression.
type CaseWhen struct{ Cond, Then Expr }

// FuncExpr is a function call. Aggregate functions (COUNT, SUM, AVG, MIN,
// MAX) are recognized by the planner; COUNT(*) is represented with Star.
type FuncExpr struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (*LiteralExpr) exprNode() {}
func (*ColumnExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*InExpr) exprNode()      {}
func (*IsNullExpr) exprNode()  {}
func (*BetweenExpr) exprNode() {}
func (*CaseExpr) exprNode()    {}
func (*FuncExpr) exprNode()    {}

// String renders the literal as SQL.
func (e *LiteralExpr) String() string {
	switch e.Val.Kind {
	case KindString:
		return "'" + strings.ReplaceAll(e.Val.S, "'", "''") + "'"
	case KindFloat:
		// Keep float literals float-typed through a parse round-trip:
		// integral values (including -0.0) would otherwise print like
		// ints and re-parse as ints.
		s := e.Val.String()
		if !strings.ContainsAny(s, ".eEIN") { // spare Inf/NaN, not parseable anyway
			s += ".0"
		}
		return s
	default:
		return e.Val.String()
	}
}

// sqlIdent renders an identifier in canonical SQL: bare when it is a
// plain identifier that is not a reserved word, double-quoted otherwise
// (the form the lexer accepts for such names). Names containing a double
// quote are not representable in the dialect; they render quoted anyway
// as a best effort.
func sqlIdent(name string) string {
	plain := name != "" && isIdentStart(name[0])
	for i := 1; plain && i < len(name); i++ {
		plain = isIdentPart(name[i])
	}
	if plain && !keywords[strings.ToUpper(name)] {
		return name
	}
	return `"` + name + `"`
}

// String renders the column reference.
func (e *ColumnExpr) String() string {
	if e.Name == "*" {
		return "*"
	}
	return sqlIdent(e.Name)
}

// String renders the unary expression.
func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return "NOT (" + e.X.String() + ")"
	}
	return "-(" + e.X.String() + ")"
}

// String renders the binary expression with explicit parentheses.
func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// String renders the IN expression.
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	op := " IN ("
	if e.Neg {
		op = " NOT IN ("
	}
	return "(" + e.X.String() + op + strings.Join(parts, ", ") + "))"
}

// String renders the IS NULL test.
func (e *IsNullExpr) String() string {
	if e.Neg {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

// String renders the BETWEEN expression.
func (e *BetweenExpr) String() string {
	op := " BETWEEN "
	if e.Neg {
		op = " NOT BETWEEN "
	}
	return "(" + e.X.String() + op + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// String renders the CASE expression.
func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.String())
		b.WriteString(" THEN ")
		b.WriteString(w.Then.String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// String renders the function call.
func (e *FuncExpr) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

// SelectItem is one entry of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed single-table SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	Table    string
	Where    Expr        // may be nil
	GroupBy  []Expr      // may be empty
	Having   Expr        // may be nil; requires GROUP BY or aggregates
	OrderBy  []OrderItem // may be empty
	Limit    int         // -1 when absent
	Offset   int         // 0 when absent
}

// String renders the statement back to SQL (canonical form, used in tests
// for parse/print round-trips).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(sqlIdent(it.Alias))
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(sqlIdent(s.Table))
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", s.Offset)
	}
	return b.String()
}
