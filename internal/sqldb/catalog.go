package sqldb

import (
	"context"
	"fmt"
	"sync"
)

// ColumnStats summarizes one column for the optimizer and for SeeDB's
// view generator (which classifies columns into dimension and measure
// attributes and needs distinct counts for bin-packed GROUP BY planning).
type ColumnStats struct {
	Name     string
	Type     ColumnType
	Distinct int     // exact distinct non-NULL value count
	Nulls    int     // NULL count
	Min, Max float64 // numeric columns only; 0 otherwise
	numeric  bool
}

// HasMinMax reports whether Min/Max are meaningful (numeric column with at
// least one non-NULL value).
func (s ColumnStats) HasMinMax() bool { return s.numeric }

// TableStats holds per-column statistics for a table.
type TableStats struct {
	Table   string
	Rows    int
	Columns []ColumnStats
}

// Column returns stats for the named column.
func (ts *TableStats) Column(name string) (ColumnStats, bool) {
	for _, c := range ts.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return ColumnStats{}, false
}

// statsCache memoizes computed statistics per (table pointer, row count)
// so repeated SeeDB invocations don't rescan.
var statsCache sync.Map // map[statsKey]*TableStats

type statsKey struct {
	t    Table
	rows int
}

// Stats computes (or returns cached) statistics for the named table by a
// single full scan.
func (db *DB) Stats(table string) (*TableStats, error) {
	return db.StatsContext(nil, table)
}

// StatsContext is Stats with cancellation: the statistics scan checks
// ctx every checkEvery rows, so introspecting a huge table stays
// abortable (a nil ctx disables the checks).
func (db *DB) StatsContext(ctx context.Context, table string) (*TableStats, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	t, ok := db.Table(table)
	if !ok {
		return nil, fmt.Errorf("sqldb: table %q does not exist", table)
	}
	key := statsKey{t: t, rows: t.NumRows()}
	if cached, ok := statsCache.Load(key); ok {
		return cached.(*TableStats), nil
	}
	ts, err := computeStats(ctx, t)
	if err != nil {
		return nil, err
	}
	statsCache.Store(key, ts)
	return ts, nil
}

// ComputeStats scans t once and computes exact per-column statistics.
func ComputeStats(t Table) (*TableStats, error) {
	return computeStats(nil, t)
}

// computeStats is ComputeStats with optional cancellation.
func computeStats(ctx context.Context, t Table) (*TableStats, error) {
	schema := t.Schema()
	n := schema.NumColumns()
	ts := &TableStats{Table: t.Name(), Rows: t.NumRows()}
	distinct := make([]map[string]struct{}, n)
	cols := make([]int, n)
	stats := make([]ColumnStats, n)
	for i := 0; i < n; i++ {
		distinct[i] = make(map[string]struct{})
		cols[i] = i
		stats[i] = ColumnStats{Name: schema.Column(i).Name, Type: schema.Column(i).Type}
	}
	var keyBuf []byte
	seen := 0
	err := t.ScanRange(0, t.NumRows(), cols, func(row RowView) error {
		seen++
		if ctx != nil && seen%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for i := 0; i < n; i++ {
			v := row.Value(i)
			if v.IsNull() {
				stats[i].Nulls++
				continue
			}
			keyBuf = v.appendKey(keyBuf[:0])
			distinct[i][string(keyBuf)] = struct{}{}
			if f, ok := v.AsFloat(); ok && v.Kind != KindString {
				if !stats[i].numeric {
					stats[i].numeric = true
					stats[i].Min, stats[i].Max = f, f
				} else {
					if f < stats[i].Min {
						stats[i].Min = f
					}
					if f > stats[i].Max {
						stats[i].Max = f
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		stats[i].Distinct = len(distinct[i])
	}
	ts.Columns = stats
	return ts, nil
}
