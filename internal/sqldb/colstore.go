package sqldb

import (
	"fmt"
	"sync/atomic"
)

// ColStore is a column-oriented table: each attribute is stored in its own
// typed vector, with strings dictionary-encoded. This models the "COL"
// system of the SeeDB paper's evaluation. A scan touches only the column
// vectors a query references, so narrow aggregation queries (the common
// SeeDB case: one dimension + one measure out of dozens of attributes) run
// several times faster than on the row store — the paper observes ~5X.
type ColStore struct {
	name   string
	schema *Schema
	rows   int
	cols   []columnVector
	gen    atomic.Uint64
	// scratch holds coerced values during AppendRow so a mid-row
	// coercion failure leaves every column vector untouched.
	scratch []Value
}

// columnVector is one typed column. Exactly one of the payload slices is
// populated, according to the column's declared type. nulls, when
// non-nil, marks NULL positions.
type columnVector struct {
	typ   ColumnType
	ints  []int64   // TypeInt, TypeBool (0/1)
	flts  []float64 // TypeFloat
	dict  []string  // TypeString: dictionary
	codes []int32   // TypeString: per-row dictionary codes
	index map[string]int32
	nulls []bool // nil when the column has no NULLs so far
}

// NewColStore creates an empty column-oriented table.
func NewColStore(name string, schema *Schema) *ColStore {
	t := &ColStore{name: name, schema: schema}
	t.cols = make([]columnVector, schema.NumColumns())
	for i := range t.cols {
		t.cols[i].typ = schema.Column(i).Type
		if t.cols[i].typ == TypeString {
			t.cols[i].index = make(map[string]int32)
		}
	}
	return t
}

// Name returns the table name.
func (t *ColStore) Name() string { return t.name }

// Schema returns the table schema.
func (t *ColStore) Schema() *Schema { return t.schema }

// Layout returns LayoutCol.
func (t *ColStore) Layout() Layout { return LayoutCol }

// NumRows returns the number of stored rows.
func (t *ColStore) NumRows() int { return t.rows }

// Generation returns the table's content generation (bumped per append).
func (t *ColStore) Generation() uint64 { return t.gen.Load() }

// DictSize returns the dictionary cardinality of a string column, and 0
// for non-string columns. Exposed for catalog statistics.
func (t *ColStore) DictSize(col int) int {
	if col < 0 || col >= len(t.cols) || t.cols[col].typ != TypeString {
		return 0
	}
	return len(t.cols[col].dict)
}

// AppendRow appends one tuple, decomposing it into the column vectors.
// The row is coerced up front so a failure leaves the table unchanged
// (the vectors must never go out of sync, and dataset-version consumers
// assume a failed append has no effect).
func (t *ColStore) AppendRow(vals []Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("sqldb: table %s expects %d values, got %d", t.name, len(t.cols), len(vals))
	}
	if cap(t.scratch) < len(vals) {
		t.scratch = make([]Value, len(vals))
	}
	coerced := t.scratch[:len(vals)]
	for i, raw := range vals {
		v, err := coerce(raw, t.cols[i].typ)
		if err != nil {
			return fmt.Errorf("%w (column %s)", err, t.schema.Column(i).Name)
		}
		coerced[i] = v
	}
	for i, v := range coerced {
		c := &t.cols[i]
		isNull := v.Kind == KindNull
		if isNull {
			if c.nulls == nil {
				c.nulls = make([]bool, t.rows, t.rows+1)
			}
			v = zeroValue(c.typ)
		}
		if c.nulls != nil {
			c.nulls = append(c.nulls, isNull)
		}
		switch c.typ {
		case TypeInt, TypeBool:
			c.ints = append(c.ints, v.I)
		case TypeFloat:
			c.flts = append(c.flts, v.F)
		case TypeString:
			code, ok := c.index[v.S]
			if !ok {
				code = int32(len(c.dict))
				c.dict = append(c.dict, v.S)
				c.index[v.S] = code
			}
			c.codes = append(c.codes, code)
		}
	}
	t.rows++
	t.gen.Add(1)
	return nil
}

// Reserve pre-allocates capacity for n additional rows in every column.
func (t *ColStore) Reserve(n int) {
	for i := range t.cols {
		c := &t.cols[i]
		switch c.typ {
		case TypeInt, TypeBool:
			if cap(c.ints)-len(c.ints) < n {
				g := make([]int64, len(c.ints), len(c.ints)+n)
				copy(g, c.ints)
				c.ints = g
			}
		case TypeFloat:
			if cap(c.flts)-len(c.flts) < n {
				g := make([]float64, len(c.flts), len(c.flts)+n)
				copy(g, c.flts)
				c.flts = g
			}
		case TypeString:
			if cap(c.codes)-len(c.codes) < n {
				g := make([]int32, len(c.codes), len(c.codes)+n)
				copy(g, c.codes)
				c.codes = g
			}
		}
	}
}

// colRowView adapts the columnar layout to the RowView interface for one
// row index. Only the columns listed in the scan's projection are legal to
// access; others return NULL (they were never materialized).
type colRowView struct {
	t      *ColStore
	row    int
	wanted []bool // nil means all columns allowed
}

// Value returns the value of column col at the view's current row.
func (r colRowView) Value(col int) Value {
	if r.wanted != nil && (col >= len(r.wanted) || !r.wanted[col]) {
		return Null()
	}
	c := &r.t.cols[col]
	if c.nulls != nil && c.nulls[r.row] {
		return Null()
	}
	switch c.typ {
	case TypeInt:
		return Int(c.ints[r.row])
	case TypeBool:
		return Bool(c.ints[r.row] != 0)
	case TypeFloat:
		return Float(c.flts[r.row])
	case TypeString:
		return Str(c.dict[c.codes[r.row]])
	default:
		return Null()
	}
}

// wantedMask builds the projection mask for a scan: nil (all columns
// allowed) when cols is nil, else true exactly at the listed indices.
// Both ScanRange and the vectorized executor derive their RowView access
// rules from this one place.
func (t *ColStore) wantedMask(cols []int) []bool {
	if cols == nil {
		return nil
	}
	wanted := make([]bool, len(t.cols))
	for _, c := range cols {
		if c >= 0 && c < len(wanted) {
			wanted[c] = true
		}
	}
	return wanted
}

// ScanRange implements Table. Only the vectors for the requested columns
// are touched; passing nil cols grants access to every column.
func (t *ColStore) ScanRange(lo, hi int, cols []int, fn func(row RowView) error) error {
	lo, hi = clampRange(lo, hi, t.rows)
	view := colRowView{t: t, wanted: t.wantedMask(cols)}
	for i := lo; i < hi; i++ {
		view.row = i
		if err := fn(view); err != nil {
			return err
		}
	}
	return nil
}

var _ Table = (*ColStore)(nil)
