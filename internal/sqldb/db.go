package sqldb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"seedb/internal/telemetry"
)

// DB is an embedded in-memory database: a named collection of tables plus
// a query interface. A DB is safe for concurrent queries; table loading
// must complete before queries begin (the usual analytical bulk-load
// pattern, which is also how the SeeDB experiments operate).
type DB struct {
	mu     sync.RWMutex
	tables map[string]Table
	// epochs counts catalog events (create/register/drop) per table name.
	// Together with the table's row generation it forms the dataset
	// version token that drives cache invalidation: dropping and
	// reloading a table bumps the epoch, so entries cached under the old
	// incarnation can never be served again.
	epochs map[string]uint64
	// id is process-unique, so version tokens from different DB
	// instances never collide (a result cache may be shared by engines
	// over different databases that hold same-named tables).
	id uint64
}

// dbIDs hands out process-unique DB instance ids.
var dbIDs atomic.Uint64

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{
		tables: make(map[string]Table),
		epochs: make(map[string]uint64),
		id:     dbIDs.Add(1),
	}
}

// CreateTable creates a table with the given physical layout and registers
// it under name (case-insensitive).
func (db *DB) CreateTable(name string, schema *Schema, layout Layout) (Table, error) {
	if name == "" {
		return nil, fmt.Errorf("sqldb: empty table name")
	}
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("sqldb: table %q already exists", name)
	}
	var t Table
	switch layout {
	case LayoutRow:
		t = NewRowStore(name, schema)
	case LayoutCol:
		t = NewColStore(name, schema)
	default:
		return nil, fmt.Errorf("sqldb: unknown layout %v", layout)
	}
	db.tables[key] = t
	db.epochs[key]++
	return t, nil
}

// RegisterTable registers an externally constructed table.
func (db *DB) RegisterTable(t Table) error {
	key := strings.ToLower(t.Name())
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; exists {
		return fmt.Errorf("sqldb: table %q already exists", t.Name())
	}
	db.tables[key] = t
	db.epochs[key]++
	return nil
}

// DropTable removes a table; dropping a missing table is an error.
func (db *DB) DropTable(name string) error {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; !exists {
		return fmt.Errorf("sqldb: table %q does not exist", name)
	}
	delete(db.tables, key)
	db.epochs[key]++
	return nil
}

// TableVersion returns an opaque version token for the named table's
// current contents, and whether the table exists. The token combines
// the DB's process-unique instance id, the catalog epoch (bumped
// whenever a table of this name is created, registered or dropped) and
// the table's row generation (bumped on every append), so any load,
// insert or drop-and-reload yields a token never seen before — and
// same-named tables in different DB instances never share one. Cache
// keys embed this token; stale entries become unreachable the moment
// the data changes.
func (db *DB) TableVersion(name string) (string, bool) {
	key := strings.ToLower(name)
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[key]
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%d.%d.%d", db.id, db.epochs[key], t.Generation()), true
}

// Table returns the named table.
func (db *DB) Table(name string) (Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}

// Query parses and executes sql over the full table.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryOpts(sql, ExecOptions{})
}

// QueryContext is Query with cancellation support.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.QueryOpts(sql, ExecOptions{Ctx: ctx})
}

// QueryRange executes sql against base-table rows [lo, hi) only. This is
// the partition primitive used by SeeDB's phased execution framework.
func (db *DB) QueryRange(sql string, lo, hi int) (*Result, error) {
	return db.QueryOpts(sql, ExecOptions{Lo: lo, Hi: hi})
}

// QueryOpts parses and executes sql with full execution options.
func (db *DB) QueryOpts(sql string, opts ExecOptions) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.QueryStmt(stmt, opts)
}

// QueryStmt executes a pre-parsed statement.
func (db *DB) QueryStmt(stmt *SelectStmt, opts ExecOptions) (*Result, error) {
	t, ok := db.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("sqldb: table %q does not exist", stmt.Table)
	}
	// A serial execution (Workers <= 1) never consults the vectorized
	// fast-path analysis — aggregateRange short-circuits to the
	// interpreter first — so skip compiling it (selection kernels
	// included). This matters on fan-out hot paths where many serial
	// child queries compile per request.
	_, sp := telemetry.StartSpan(opts.Ctx, "sqldb.plan")
	p, err := compileForSchemaOpt(stmt, t.Schema(), opts.Workers > 1)
	sp.End()
	if err != nil {
		return nil, err
	}
	p.table = t
	return p.execute(opts)
}

// Prepare compiles sql against the current catalog for repeated execution
// (e.g. once per phase over different row ranges).
func (db *DB) Prepare(sql string) (*PreparedQuery, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	t, ok := db.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("sqldb: table %q does not exist", stmt.Table)
	}
	return &PreparedQuery{db: db, stmt: stmt, table: t}, nil
}

// PreparedQuery is a parsed, table-resolved statement. Plans are compiled
// per execution (plans hold per-run aggregation state-free closures, so a
// fresh compile keeps executions independent and concurrency-safe).
type PreparedQuery struct {
	db    *DB
	stmt  *SelectStmt
	table Table
}

// SQL returns the canonical SQL text of the prepared statement.
func (q *PreparedQuery) SQL() string { return q.stmt.String() }

// Exec executes the prepared query with the given options.
func (q *PreparedQuery) Exec(opts ExecOptions) (*Result, error) {
	_, sp := telemetry.StartSpan(opts.Ctx, "sqldb.plan")
	p, err := compileForSchemaOpt(q.stmt, q.table.Schema(), opts.Workers > 1)
	sp.End()
	if err != nil {
		return nil, err
	}
	p.table = q.table
	return p.execute(opts)
}

// QueryBatch executes the given queries on a pool of `parallelism` workers
// and returns results in input order. A nil error requires every query to
// have succeeded; on error the first failure is returned. This implements
// the "Parallel Query Execution" sharing optimization (Section 4.1): view
// queries run concurrently and share the (in-memory) buffer pool.
func (db *DB) QueryBatch(ctx context.Context, queries []string, parallelism int) ([]*Result, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = db.QueryOpts(queries[i], ExecOptions{Ctx: ctx})
			}
		}()
	}
	for i := range queries {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
