package sqldb

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestCreateDropTable(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("t", testSchema(), LayoutRow); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("T", testSchema(), LayoutRow); err == nil {
		t.Error("duplicate (case-insensitive) create should fail")
	}
	if _, ok := db.Table("t"); !ok {
		t.Error("table lookup failed")
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("t"); err == nil {
		t.Error("double drop should fail")
	}
	if _, err := db.CreateTable("", testSchema(), LayoutRow); err == nil {
		t.Error("empty table name should fail")
	}
	if _, err := db.CreateTable("x", testSchema(), Layout(9)); err == nil {
		t.Error("bad layout should fail")
	}
}

func TestRegisterTable(t *testing.T) {
	db := NewDB()
	rs := NewRowStore("ext", testSchema())
	if err := db.RegisterTable(rs); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable(rs); err == nil {
		t.Error("duplicate register should fail")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "ext" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestAppendRowErrors(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutCol} {
		db := NewDB()
		tab, _ := db.CreateTable("t", testSchema(), layout)
		if err := tab.AppendRow([]Value{Str("F")}); err == nil {
			t.Errorf("[%v] wrong arity should fail", layout)
		}
		if err := tab.AppendRow([]Value{Str("F"), Str("not-int"), Float(1), Int(1)}); err == nil {
			t.Errorf("[%v] type mismatch should fail", layout)
		}
		if !strings.Contains(tab.AppendRow([]Value{Str("F"), Str("x"), Float(1), Int(1)}).Error(), "column") {
			t.Errorf("[%v] error should name the column", layout)
		}
	}
}

func TestNullsInColumnStore(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", MustSchema(
		Column{Name: "a", Type: TypeString},
		Column{Name: "m", Type: TypeFloat},
	), LayoutCol)
	rows := [][]Value{
		{Str("x"), Float(1)},
		{Str("y"), Null()},
		{Null(), Float(3)},
	}
	for _, r := range rows {
		if err := tab.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query("SELECT COUNT(*), COUNT(m), COUNT(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].I != 3 || r[1].I != 2 || r[2].I != 2 {
		t.Errorf("counts = %v, want [3 2 2]", r)
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := buildDB(t, LayoutCol)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := db.Query("SELECT sex, AVG(income), SUM(hours) FROM census GROUP BY sex")
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentQueriesRowStore(t *testing.T) {
	db := buildDB(t, LayoutRow)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := db.Query("SELECT region, COUNT(*) FROM census GROUP BY region")
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestQueryBatch(t *testing.T) {
	db := buildDB(t, LayoutCol)
	queries := []string{
		"SELECT sex, COUNT(*) FROM census GROUP BY sex",
		"SELECT region, COUNT(*) FROM census GROUP BY region",
		"SELECT COUNT(*) FROM census",
	}
	results, err := db.QueryBatch(context.Background(), queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[2].Rows[0][0].I != 6 {
		t.Errorf("count = %v", results[2].Rows[0][0])
	}
}

func TestQueryBatchPropagatesErrors(t *testing.T) {
	db := buildDB(t, LayoutCol)
	queries := []string{
		"SELECT COUNT(*) FROM census",
		"SELECT nosuch FROM census",
	}
	if _, err := db.QueryBatch(context.Background(), queries, 2); err == nil {
		t.Error("batch with a failing query should return an error")
	}
}

func TestQueryBatchParallelismClamping(t *testing.T) {
	db := buildDB(t, LayoutCol)
	// parallelism < 1 and > len(queries) must both work.
	for _, par := range []int{0, -3, 100} {
		res, err := db.QueryBatch(context.Background(), []string{"SELECT COUNT(*) FROM census"}, par)
		if err != nil || len(res) != 1 {
			t.Errorf("parallelism %d: %v, %v", par, res, err)
		}
	}
}

func TestStatsComputation(t *testing.T) {
	db := buildDB(t, LayoutCol)
	ts, err := db.Stats("census")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 6 {
		t.Errorf("rows = %d", ts.Rows)
	}
	sex, ok := ts.Column("sex")
	if !ok || sex.Distinct != 2 {
		t.Errorf("sex distinct = %+v", sex)
	}
	income, _ := ts.Column("income")
	if income.Distinct != 5 || income.Nulls != 1 {
		t.Errorf("income stats = %+v", income)
	}
	if !income.HasMinMax() || income.Min != 10 || income.Max != 50 {
		t.Errorf("income min/max = %+v", income)
	}
	if _, ok := ts.Column("nosuch"); ok {
		t.Error("lookup of missing column should fail")
	}
	// Cached on second call (same pointer).
	ts2, err := db.Stats("census")
	if err != nil || ts2 != ts {
		t.Error("stats should be cached")
	}
	if _, err := db.Stats("nosuch"); err == nil {
		t.Error("stats of missing table should fail")
	}
}

func TestColStoreDictSize(t *testing.T) {
	db := buildDB(t, LayoutCol)
	tab, _ := db.Table("census")
	cs := tab.(*ColStore)
	if got := cs.DictSize(0); got != 2 {
		t.Errorf("sex dict size = %d, want 2", got)
	}
	if got := cs.DictSize(1); got != 0 {
		t.Errorf("int column dict size = %d, want 0", got)
	}
	if got := cs.DictSize(99); got != 0 {
		t.Errorf("out-of-range dict size = %d, want 0", got)
	}
}

func TestReserveDoesNotCorrupt(t *testing.T) {
	for _, layout := range []Layout{LayoutRow, LayoutCol} {
		db := NewDB()
		tab, _ := db.CreateTable("t", testSchema(), layout)
		switch s := tab.(type) {
		case *RowStore:
			s.Reserve(100)
		case *ColStore:
			s.Reserve(100)
		}
		for _, r := range testRows() {
			if err := tab.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		res, err := db.Query("SELECT COUNT(*) FROM t")
		if err != nil || res.Rows[0][0].I != 6 {
			t.Errorf("[%v] after Reserve: %v, %v", layout, res, err)
		}
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Type: TypeInt}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "A", Type: TypeInt}); err == nil {
		t.Error("case-insensitive duplicate should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema(Column{Name: "", Type: TypeInt})
}

func TestSchemaLookupAndString(t *testing.T) {
	s := testSchema()
	if i, ok := s.Lookup("SEX"); !ok || i != 0 {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("missing column lookup should fail")
	}
	if s.NumColumns() != 4 {
		t.Error("NumColumns wrong")
	}
	str := s.String()
	if !strings.Contains(str, "sex TEXT") || !strings.Contains(str, "income FLOAT") {
		t.Errorf("schema string = %s", str)
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "sex" {
		t.Error("Columns() must return a copy")
	}
}

func TestTableVersion(t *testing.T) {
	db := NewDB()
	if _, ok := db.TableVersion("t"); ok {
		t.Fatal("version of missing table")
	}
	tab, err := db.CreateTable("t", MustSchema(Column{Name: "a", Type: TypeInt}), LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	v1, ok := db.TableVersion("t")
	if !ok {
		t.Fatal("no version after create")
	}
	if err := tab.AppendRow([]Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	v2, _ := db.TableVersion("t")
	if v2 == v1 {
		t.Fatalf("append did not change version (%s)", v2)
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", MustSchema(Column{Name: "a", Type: TypeInt}), LayoutRow); err != nil {
		t.Fatal(err)
	}
	v3, _ := db.TableVersion("T") // case-insensitive
	if v3 == v1 || v3 == v2 {
		t.Fatalf("drop+recreate reused version %s (had %s, %s)", v3, v1, v2)
	}
}

func TestTableVersionDistinctAcrossDBs(t *testing.T) {
	// Two DB instances with identically named, identically sized tables
	// must produce different version tokens: a cache shared between
	// engines over different databases must never serve one dataset's
	// results for the other.
	mk := func(val int64) (*DB, string) {
		db := NewDB()
		tab, err := db.CreateTable("t", MustSchema(Column{Name: "a", Type: TypeInt}), LayoutCol)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.AppendRow([]Value{Int(val)}); err != nil {
			t.Fatal(err)
		}
		v, _ := db.TableVersion("t")
		return db, v
	}
	_, v1 := mk(1)
	_, v2 := mk(2)
	if v1 == v2 {
		t.Fatalf("same version token %q across DB instances", v1)
	}
}

func TestColStoreFailedAppendLeavesTableUnchanged(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("t", MustSchema(
		Column{Name: "a", Type: TypeInt},
		Column{Name: "b", Type: TypeFloat},
	), LayoutCol)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow([]Value{Int(1), Float(1.5)}); err != nil {
		t.Fatal(err)
	}
	v1, _ := db.TableVersion("t")
	// Column a coerces fine, column b fails: nothing may stick.
	if err := tab.AppendRow([]Value{Int(2), Str("not-a-float")}); err == nil {
		t.Fatal("bad append succeeded")
	}
	if v2, _ := db.TableVersion("t"); v2 != v1 {
		t.Errorf("failed append changed version %s -> %s", v1, v2)
	}
	if err := tab.AppendRow([]Value{Int(3), Float(3.5)}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT a, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// The second visible row must be the third append's values, not a
	// leftover from the failed row.
	if res.Rows[1][0].I != 3 || res.Rows[1][1].F != 3.5 {
		t.Errorf("row 2 = %v %v, want 3 3.5 (column vectors misaligned)", res.Rows[1][0], res.Rows[1][1])
	}
}
