// Package difftest is a differential test harness for sqldb's two
// aggregation executors: it generates random grouped-aggregate queries
// (dimensions × measures × aggregate functions × WHERE/HAVING/ORDER BY ×
// row sub-ranges) from a seed, executes each one under the Workers=1 row
// interpreter and under a Workers=N parallel vectorized run, and asserts
// row-for-row equality.
//
// Equality is exact to the bit (Kind, int64 payload, float64 bit
// pattern, string bytes). Chunked summation reassociates floating-point
// addition, so the generated float data is restricted to multiples of
// 0.25 with bounded magnitude: every partial sum is exactly
// representable and any association order produces identical bits,
// making exact comparison a legitimate oracle.
//
// The generator deliberately produces queries on both sides of the fast
// path's eligibility line (DISTINCT aggregates, string MIN, expression
// group keys and arguments all fall back to the interpreter; int/float
// group keys exercise the runtime value dictionaries), plus the
// NULL-handling and empty-group edge cases: NULL dimension values, NULL
// measures inside groups, all-NULL groups, predicates selecting zero
// rows, and empty row ranges. WHERE clauses span every column type and
// every selection-kernel shape — comparisons with literals on either
// side, IN/BETWEEN/IS NULL, NULL-literal comparisons, negated
// conjunctions/disjunctions — alongside closure-only residual shapes
// (column-vs-column, arithmetic, function calls), so the hybrid
// kernel+residual filter is differentially checked against the
// interpreter on every run.
package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"seedb/internal/sqldb"
)

// Harness owns the generated table and the query generator.
type Harness struct {
	DB   *sqldb.DB
	rng  *rand.Rand
	rows int
}

// dimension cardinalities of the generated table (d0, d1, d2).
var dimCards = [3]int{3, 8, 40}

// New builds a deterministic random ColStore table "t" with seeded
// contents: three string dimensions (two with NULLs), a bool column, a
// low-cardinality int column, float and int measures with NULLs, and a
// string column used as a COUNT/MIN argument.
func New(seed int64, rows int) (*Harness, error) {
	h := &Harness{DB: sqldb.NewDB(), rng: rand.New(rand.NewSource(seed)), rows: rows}
	schema := sqldb.MustSchema(
		sqldb.Column{Name: "d0", Type: sqldb.TypeString},
		sqldb.Column{Name: "d1", Type: sqldb.TypeString},
		sqldb.Column{Name: "d2", Type: sqldb.TypeString},
		sqldb.Column{Name: "b0", Type: sqldb.TypeBool},
		sqldb.Column{Name: "k0", Type: sqldb.TypeInt},
		sqldb.Column{Name: "m0", Type: sqldb.TypeFloat},
		sqldb.Column{Name: "m1", Type: sqldb.TypeFloat},
		sqldb.Column{Name: "m2", Type: sqldb.TypeInt},
		sqldb.Column{Name: "s0", Type: sqldb.TypeString},
	)
	tab, err := h.DB.CreateTable("t", schema, sqldb.LayoutCol)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		row := []sqldb.Value{
			h.dimValue(0, 0.10),
			h.dimValue(1, 0.08),
			h.dimValue(2, 0),
			h.boolValue(0.12),
			sqldb.Int(int64(h.rng.Intn(5))),
			h.floatValue(0.15),
			h.floatValue(0),
			h.intValue(0.10),
			sqldb.Str(fmt.Sprintf("s%02d", h.rng.Intn(30))),
		}
		if err := tab.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// dimValue picks a dimension value (or NULL with the given probability).
func (h *Harness) dimValue(dim int, nullP float64) sqldb.Value {
	if nullP > 0 && h.rng.Float64() < nullP {
		return sqldb.Null()
	}
	return sqldb.Str(fmt.Sprintf("d%d_%02d", dim, h.rng.Intn(dimCards[dim])))
}

// boolValue picks TRUE/FALSE (or NULL with the given probability).
func (h *Harness) boolValue(nullP float64) sqldb.Value {
	if h.rng.Float64() < nullP {
		return sqldb.Null()
	}
	return sqldb.Bool(h.rng.Intn(2) == 0)
}

// floatValue picks a multiple of 0.25 in [-500, 500] (or NULL). All
// partial sums over such values are exact in float64, so any summation
// order yields identical bits.
func (h *Harness) floatValue(nullP float64) sqldb.Value {
	if nullP > 0 && h.rng.Float64() < nullP {
		return sqldb.Null()
	}
	return sqldb.Float(float64(h.rng.Intn(4001)-2000) * 0.25)
}

// intValue picks an int in [-100, 100] (or NULL).
func (h *Harness) intValue(nullP float64) sqldb.Value {
	if h.rng.Float64() < nullP {
		return sqldb.Null()
	}
	return sqldb.Int(int64(h.rng.Intn(201) - 100))
}

// pick returns one random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// Query is one generated test case.
type Query struct {
	SQL    string
	Lo, Hi int
}

// Gen generates one random grouped-aggregate query with an optional row
// sub-range.
func (h *Harness) Gen() Query {
	rng := h.rng

	// GROUP BY: 0-3 distinct grouping expressions. Plain columns of every
	// type vectorize — k0 (int) and m0/m2 (float/int measures, with
	// NULLs) through runtime value dictionaries — while scalar
	// expressions exercise the interpreter fallback under Workers>1.
	groupPool := []string{"d0", "d1", "d2", "b0", "d0", "d1", "b0", "k0", "m0", "m2", "LOWER(d0)"}
	nGroups := rng.Intn(4)
	var groups []string
	seen := map[string]bool{}
	for len(groups) < nGroups {
		g := pick(rng, groupPool)
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	// The SeeDB combined target/reference flag shape.
	if rng.Float64() < 0.35 {
		groups = append(groups, fmt.Sprintf("CASE WHEN %s THEN 1 ELSE 0 END", h.genPredicate(1)))
	}

	// Aggregates: 1-4, drawn with repetition allowed (duplicates are
	// legal SQL and exercise shared slots).
	aggPool := []string{
		"COUNT(*)", "COUNT(m0)", "COUNT(s0)", "COUNT(b0)",
		"SUM(m0)", "SUM(m1)", "SUM(m2)",
		"AVG(m0)", "AVG(m1)", "AVG(m2)",
		"MIN(m0)", "MIN(m2)", "MAX(m1)", "MAX(m2)", "MIN(b0)",
		// Interpreter-only shapes:
		"COUNT(DISTINCT d1)", "MIN(s0)", "SUM(m0 + m1)", "AVG(ABS(m2))",
	}
	nAggs := 1 + rng.Intn(4)
	var aggs []string
	for i := 0; i < nAggs; i++ {
		aggs = append(aggs, pick(rng, aggPool))
	}

	var b strings.Builder
	b.WriteString("SELECT ")
	items := append(append([]string{}, groups...), aggs...)
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" FROM t")

	if rng.Float64() < 0.55 {
		fmt.Fprintf(&b, " WHERE %s", h.genPredicate(1+rng.Intn(2)))
	}
	if len(groups) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(groups, ", "))
	}
	if rng.Float64() < 0.25 {
		having := []string{
			"COUNT(*) > 2", "COUNT(*) >= 1", "SUM(m1) > 0",
			"AVG(m1) < 100", "MIN(m2) < 0", "COUNT(m0) > 1",
		}
		fmt.Fprintf(&b, " HAVING %s", pick(rng, having))
	}
	if rng.Float64() < 0.45 && len(items) > 0 {
		n := 1 + rng.Intn(2)
		var keys []string
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("%d", 1+rng.Intn(len(items)))
			if rng.Intn(2) == 0 {
				k += " DESC"
			}
			keys = append(keys, k)
		}
		fmt.Fprintf(&b, " ORDER BY %s", strings.Join(keys, ", "))
	}
	if rng.Float64() < 0.2 {
		fmt.Fprintf(&b, " LIMIT %d", rng.Intn(20))
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " OFFSET %d", rng.Intn(5))
		}
	}

	q := Query{SQL: b.String(), Hi: 0}
	switch rng.Intn(10) {
	case 0, 1, 2: // random sub-range
		q.Lo = rng.Intn(h.rows)
		q.Hi = q.Lo + rng.Intn(h.rows-q.Lo+1)
	case 3: // empty range
		q.Lo = rng.Intn(h.rows)
		q.Hi = q.Lo
	case 4: // single row
		q.Lo = rng.Intn(h.rows)
		q.Hi = q.Lo + 1
	}
	return q
}

// genPredicate builds a random WHERE-style predicate of n clauses. The
// pool covers every selection-kernel shape over every column type —
// string ordering (dictionary match tables), literal-on-the-left
// comparisons, NULL-literal comparisons, IN with NULL elements, negated
// composites — plus residual-only shapes (column-vs-column, arithmetic,
// function calls) so hybrid kernel+residual filters occur naturally.
func (h *Harness) genPredicate(n int) string {
	rng := h.rng
	clauses := []string{
		"d1 = 'd1_03'", "d0 != 'd0_01'", "d2 = 'd2_17'",
		"m1 > 50.25", "m1 <= -10", "m0 IS NULL", "m0 IS NOT NULL",
		"b0 = TRUE", "b0 IS NULL", "k0 IN (1, 2)", "k0 = 4",
		"m2 BETWEEN -20 AND 35", "m2 NOT BETWEEN 0 AND 10",
		"NOT (d1 = 'd1_00')", "d0 IN ('d0_00', 'd0_02')",
		"m0 > m1", "m2 % 3 = 0",
		// String ordering and membership over dictionary codes.
		"s0 >= 's15'", "d2 < 'd2_20'", "s0 BETWEEN 's05' AND 's20'",
		"s0 NOT IN ('s01', 's07', 's29')",
		// Literal-on-the-left and cross-kind numeric comparisons.
		"14.5 < m2", "0 = k0", "m2 >= -20.5",
		// NULL-comparison edges: never TRUE, under either polarity.
		"d1 = NULL", "m0 != NULL", "NOT (m1 < NULL)",
		"k0 IN (1, NULL, 3)",
		// Bare-column truthiness and negated composites.
		"b0", "NOT b0", "NOT (m1 >= 0.25 AND d1 = 'd1_01')",
		"NOT (b0 = FALSE OR m2 > 50)",
		// Residual-only shapes (closure path inside the workers).
		"ABS(m2) < 50", "m0 <= m1 + 10",
	}
	parts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		parts = append(parts, pick(rng, clauses))
	}
	op := " AND "
	if rng.Intn(2) == 0 {
		op = " OR "
	}
	return strings.Join(parts, op)
}

// Stats summarizes one differential run.
type Stats struct {
	Queries    int
	Vectorized int // queries the Workers=N run executed on the fast path
	Fallback   int // queries that fell back to the interpreter
	Kernels    int // selection kernels bound across all vectorized runs
	Residuals  int // predicate conjuncts left on the closure path
}

// Run generates and checks n queries, executing each under Workers=1 and
// under the given worker count, and returns an error describing the
// first divergence.
func (h *Harness) Run(n, workers int) (Stats, error) {
	var st Stats
	for i := 0; i < n; i++ {
		q := h.Gen()
		st.Queries++
		serial, err := h.DB.QueryOpts(q.SQL, sqldb.ExecOptions{Lo: q.Lo, Hi: q.Hi, Workers: 1})
		if err != nil {
			return st, fmt.Errorf("query %d serial failed: %v (sql: %s)", i, err, q.SQL)
		}
		par, err := h.DB.QueryOpts(q.SQL, sqldb.ExecOptions{Lo: q.Lo, Hi: q.Hi, Workers: workers})
		if err != nil {
			return st, fmt.Errorf("query %d workers=%d failed: %v (sql: %s)", i, workers, err, q.SQL)
		}
		if par.Stats.Vectorized {
			st.Vectorized++
			st.Kernels += par.Stats.SelectionKernels
			st.Residuals += par.Stats.ResidualPredicates
		} else {
			st.Fallback++
		}
		if err := equalResults(serial, par); err != nil {
			return st, fmt.Errorf("query %d diverged (workers=%d, range [%d,%d)): %v\nsql: %s",
				i, workers, q.Lo, q.Hi, err, q.SQL)
		}
	}
	return st, nil
}

// equalResults compares two results exactly, row for row.
func equalResults(a, b *sqldb.Result) error {
	if len(a.Columns) != len(b.Columns) {
		return fmt.Errorf("column count %d vs %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return fmt.Errorf("column %d name %q vs %q", i, a.Columns[i], b.Columns[i])
		}
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row count %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if len(ra) != len(rb) {
			return fmt.Errorf("row %d width %d vs %d", i, len(ra), len(rb))
		}
		for j := range ra {
			if !equalValue(ra[j], rb[j]) {
				return fmt.Errorf("row %d col %d: %s (%v) vs %s (%v)",
					i, j, ra[j].String(), ra[j].Kind, rb[j].String(), rb[j].Kind)
			}
		}
	}
	if a.Stats.RowsScanned != b.Stats.RowsScanned {
		return fmt.Errorf("rows scanned %d vs %d", a.Stats.RowsScanned, b.Stats.RowsScanned)
	}
	if a.Stats.Groups != b.Stats.Groups {
		return fmt.Errorf("groups %d vs %d", a.Stats.Groups, b.Stats.Groups)
	}
	return nil
}

// equalValue is bit-exact Value equality: same kind and identical
// payload bits (distinguishing NaN payloads and -0.0 from +0.0).
func equalValue(a, b sqldb.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case sqldb.KindNull:
		return true
	case sqldb.KindFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case sqldb.KindString:
		return a.S == b.S
	default:
		return a.I == b.I
	}
}
