package difftest

import (
	"runtime"
	"testing"
)

// TestDifferential runs the generator under several seeds, checking every
// query for exact agreement between the Workers=1 interpreter and the
// parallel vectorized executor (and its fallback). The worker counts
// exceed GOMAXPROCS on small machines on purpose: chunked execution and
// merging must be correct regardless of physical parallelism.
func TestDifferential(t *testing.T) {
	const queriesPerSeed = 600
	seeds := []int64{1, 2, 3}
	workerSweep := []int{2, 4, 5}
	if gmp := runtime.GOMAXPROCS(0); gmp > 5 {
		workerSweep = append(workerSweep, gmp)
	}
	for i, seed := range seeds {
		workers := workerSweep[i%len(workerSweep)]
		h, err := New(seed, 2500)
		if err != nil {
			t.Fatal(err)
		}
		st, err := h.Run(queriesPerSeed, workers)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.Queries != queriesPerSeed {
			t.Fatalf("seed %d: ran %d queries, want %d", seed, st.Queries, queriesPerSeed)
		}
		// The generator must exercise both executors heavily; a collapse
		// to one side would quietly gut the differential coverage.
		if st.Vectorized < queriesPerSeed/4 {
			t.Errorf("seed %d: only %d/%d queries vectorized", seed, st.Vectorized, st.Queries)
		}
		if st.Fallback < queriesPerSeed/20 {
			t.Errorf("seed %d: only %d/%d queries hit the interpreter fallback", seed, st.Fallback, st.Queries)
		}
		// Predicate compilation must actually engage: vectorized runs
		// should bind selection kernels, and the hybrid residual path
		// (closure conjuncts inside kernel-filtered scans) must occur too.
		if st.Kernels == 0 {
			t.Errorf("seed %d: no selection kernels bound across %d vectorized queries", seed, st.Vectorized)
		}
		if st.Residuals == 0 {
			t.Errorf("seed %d: no residual predicate conjuncts exercised", seed)
		}
		t.Logf("seed %d workers %d: %d queries, %d vectorized (%d kernels, %d residuals), %d fallback",
			seed, workers, st.Queries, st.Vectorized, st.Kernels, st.Residuals, st.Fallback)
	}
}

// TestDifferentialTinyTables covers degenerate table sizes where chunk
// boundaries collapse (fewer rows than workers, empty table).
func TestDifferentialTinyTables(t *testing.T) {
	for _, rows := range []int{1, 2, 3, 7} {
		h, err := New(77, rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Run(150, 4); err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
	}
}
