package difftest

// Sharded differential sweep: every generated query executes once
// against the unsharded harness table and once through a shard router
// whose embedded children hold contiguous blocks of the same rows, and
// the results must match bit for bit — row order, value kinds, float
// payload bits, RowsScanned and Groups included. The harness's float
// data is exactly summable (multiples of 0.25), so partial-sum
// reassociation across shard boundaries cannot introduce ulp noise and
// exact comparison remains a legitimate oracle, exactly as it is for the
// parallel vectorized executor.
//
// The sweep inherits the generator's whole grammar — COUNT(DISTINCT),
// string MIN, expression aggregates and group keys, HAVING, ORDER BY,
// LIMIT/OFFSET, row sub-ranges (which exercise the router's global→local
// range mapping), empty ranges and zero-row predicates — and adds the
// shard-specific edges: one shard (degenerate), shard counts that leave
// children empty, and single-row tables.

import (
	"context"
	"fmt"

	"seedb/internal/backend"
	"seedb/internal/backend/shardbe"
	"seedb/internal/sqldb"
)

// Sharded builds a shard router over n embedded children holding
// contiguous blocks of the harness table, so the router's global row
// order equals the generated insertion order.
func (h *Harness) Sharded(shards int) (*shardbe.Router, error) {
	dbs, bes := shardbe.EmbeddedChildren(shards)
	if err := shardbe.ScatterTable(h.DB, "t", dbs, shardbe.Blocks{Total: h.rows}); err != nil {
		return nil, err
	}
	return shardbe.New(bes, shardbe.Options{})
}

// RunSharded generates and checks n queries, executing each unsharded
// (Workers=1, the byte-stable serial interpreter) and through a router
// over the given shard count, with the given per-child scan worker
// count. It returns an error describing the first divergence.
func (h *Harness) RunSharded(n, shards, workers int) (Stats, error) {
	var st Stats
	router, err := h.Sharded(shards)
	if err != nil {
		return st, err
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		q := h.Gen()
		st.Queries++
		serial, err := h.DB.QueryOpts(q.SQL, sqldb.ExecOptions{Lo: q.Lo, Hi: q.Hi, Workers: 1})
		if err != nil {
			return st, fmt.Errorf("query %d unsharded failed: %v (sql: %s)", i, err, q.SQL)
		}
		rows, stats, err := router.Exec(ctx, q.SQL, backend.ExecOptions{Lo: q.Lo, Hi: q.Hi, Workers: workers})
		if err != nil {
			return st, fmt.Errorf("query %d sharded (%d shards) failed: %v (sql: %s)", i, shards, err, q.SQL)
		}
		if stats.Vectorized {
			st.Vectorized++
			st.Kernels += stats.SelectionKernels
			st.Residuals += stats.ResidualPredicates
		} else {
			st.Fallback++
		}
		sharded := &sqldb.Result{
			Columns: rows.Columns,
			Rows:    rows.Rows,
			Stats:   sqldb.ExecStats{RowsScanned: stats.RowsScanned, Groups: stats.Groups},
		}
		// Align the incidental stats equalResults does not cover; the
		// comparison below then checks columns, every value bit, and the
		// RowsScanned/Groups counters.
		sharded.Stats.Vectorized = serial.Stats.Vectorized
		sharded.Stats.Workers = serial.Stats.Workers
		sharded.Stats.FallbackReason = serial.Stats.FallbackReason
		sharded.Stats.SelectionKernels = serial.Stats.SelectionKernels
		sharded.Stats.ResidualPredicates = serial.Stats.ResidualPredicates
		if err := equalResults(serial, sharded); err != nil {
			return st, fmt.Errorf("query %d diverged (shards=%d, workers=%d, range [%d,%d)): %v\nsql: %s\nchild sql: %s",
				i, shards, workers, q.Lo, q.Hi, err, q.SQL, childSQLOf(q.SQL, h))
		}
	}
	return st, nil
}

// childSQLOf renders the partial statement the router would send each
// shard, for failure diagnostics.
func childSQLOf(sql string, h *Harness) string {
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return "<unparseable>"
	}
	t, ok := h.DB.Table(stmt.Table)
	if !ok {
		return "<no table>"
	}
	sp, err := sqldb.NewShardPlan(stmt, t.Schema())
	if err != nil {
		return "<no shard plan: " + err.Error() + ">"
	}
	return sp.ChildSQL()
}
