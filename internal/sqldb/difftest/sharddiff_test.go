package difftest

import "testing"

// TestShardedDifferential sweeps the generated query grammar against
// shard routers of 1, 2, 3 and 5 children over 3 seeds, asserting
// bit-exact agreement with the unsharded interpreter. Odd shard counts
// against the fixed row count make child block sizes uneven on purpose.
func TestShardedDifferential(t *testing.T) {
	const queriesPerSeed = 250
	seeds := []int64{11, 12, 13}
	shardSweep := []int{1, 2, 3, 5}
	for si, seed := range seeds {
		for _, shards := range shardSweep {
			h, err := New(seed, 1500)
			if err != nil {
				t.Fatal(err)
			}
			// Alternate child-side scan parallelism: serial children one
			// round, vectorized children (their own difftest-proven merge)
			// the next — the shard merge must be exact over both.
			workers := 1
			if (si+shards)%2 == 0 {
				workers = 4
			}
			st, err := h.RunSharded(queriesPerSeed, shards, workers)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if st.Queries != queriesPerSeed {
				t.Fatalf("seed %d shards %d: ran %d queries, want %d", seed, shards, st.Queries, queriesPerSeed)
			}
			t.Logf("seed %d shards %d workers %d: %d queries, %d vectorized, %d fallback",
				seed, shards, workers, st.Queries, st.Vectorized, st.Fallback)
		}
	}
}

// TestShardedDifferentialTinyTables covers the shard-specific degenerate
// shapes: tables smaller than the shard count (so children are empty)
// and single-row tables. (The query generator needs at least one row to
// draw sub-ranges from, so the empty-table edge is covered by the
// explicit zero-row assertions in the shardbe unit tests instead.)
func TestShardedDifferentialTinyTables(t *testing.T) {
	for _, rows := range []int{1, 2, 3, 7} {
		h, err := New(99, rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.RunSharded(120, 5, 2); err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
	}
}
