package difftest

import (
	"runtime"
	"testing"
)

// TestSynthDifferential feeds synthetic-spec-generated data (Zipf,
// weighted, hierarchy, correlated measures, NULLs) through the full
// query grammar and requires bit-exact agreement between the Workers=1
// interpreter and the parallel vectorized executor, across three seeds.
func TestSynthDifferential(t *testing.T) {
	const queriesPerSeed = 300
	seeds := []int64{11, 12, 13}
	workerSweep := []int{2, 4, 5}
	if gmp := runtime.GOMAXPROCS(0); gmp > 5 {
		workerSweep = append(workerSweep, gmp)
	}
	for i, seed := range seeds {
		workers := workerSweep[i%len(workerSweep)]
		h, err := NewSynth(seed, 2500)
		if err != nil {
			t.Fatal(err)
		}
		st, err := h.Run(queriesPerSeed, workers)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The synthetic data must drive both executors, like the
		// handwritten table does.
		if st.Vectorized < queriesPerSeed/4 {
			t.Errorf("seed %d: only %d/%d queries vectorized", seed, st.Vectorized, st.Queries)
		}
		if st.Fallback < queriesPerSeed/20 {
			t.Errorf("seed %d: only %d/%d queries hit the interpreter fallback", seed, st.Fallback, st.Queries)
		}
		if st.Kernels == 0 || st.Residuals == 0 {
			t.Errorf("seed %d: predicate paths under-exercised (%d kernels, %d residuals)",
				seed, st.Kernels, st.Residuals)
		}
		t.Logf("seed %d workers %d: %d queries, %d vectorized (%d kernels, %d residuals), %d fallback",
			seed, workers, st.Queries, st.Vectorized, st.Kernels, st.Residuals, st.Fallback)
	}
}

// TestSynthDifferentialSharded runs the same synthetic table unsharded
// vs through shard routers with 2 and 3 embedded children, three seeds
// each, requiring bit-exact results (RowsScanned and Groups included).
func TestSynthDifferentialSharded(t *testing.T) {
	const queriesPerCase = 150
	for _, shards := range []int{2, 3} {
		for _, seed := range []int64{11, 12, 13} {
			h, err := NewSynth(seed, 2000)
			if err != nil {
				t.Fatal(err)
			}
			st, err := h.RunSharded(queriesPerCase, shards, 3)
			if err != nil {
				t.Fatalf("shards=%d seed %d: %v", shards, seed, err)
			}
			t.Logf("shards %d seed %d: %d queries, %d vectorized, %d fallback",
				shards, seed, st.Queries, st.Vectorized, st.Fallback)
		}
	}
}

// TestSynthHarnessSelectivity guards the value-name collision the
// harness relies on: generator predicates like d2 = 'd2_17' must select
// actual rows from the synthetic table, or the differential sweep would
// quietly degrade to empty-result comparisons.
func TestSynthHarnessSelectivity(t *testing.T) {
	h, err := NewSynth(11, 2500)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []string{
		"SELECT COUNT(*) FROM t WHERE d0 = 'd0_01'",
		"SELECT COUNT(*) FROM t WHERE d1 = 'd1_03'",
		"SELECT COUNT(*) FROM t WHERE d2 = 'd2_17'",
		"SELECT COUNT(*) FROM t WHERE s0 >= 's15'",
		"SELECT COUNT(*) FROM t WHERE m0 IS NULL",
		"SELECT COUNT(*) FROM t WHERE b0 IS NULL",
	} {
		res, err := h.DB.Query(probe)
		if err != nil {
			t.Fatalf("%s: %v", probe, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I == 0 {
			t.Errorf("%s selected no rows; predicate pool no longer overlaps synthetic values", probe)
		}
	}
}
